file(REMOVE_RECURSE
  "libterasem.a"
)
