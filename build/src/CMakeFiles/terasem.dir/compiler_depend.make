# Empty compiler generated dependencies file for terasem.
# This may be replaced when dependencies are built.
