src/CMakeFiles/terasem.dir/poly/legendre.cpp.o: \
 /root/repo/src/poly/legendre.cpp /usr/include/stdc-predef.h \
 /root/repo/src/poly/legendre.hpp
