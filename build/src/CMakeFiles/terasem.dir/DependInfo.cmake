
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csr.cpp" "src/CMakeFiles/terasem.dir/common/csr.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/common/csr.cpp.o.d"
  "/root/repo/src/core/dealias.cpp" "src/CMakeFiles/terasem.dir/core/dealias.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/dealias.cpp.o.d"
  "/root/repo/src/core/helmholtz.cpp" "src/CMakeFiles/terasem.dir/core/helmholtz.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/helmholtz.cpp.o.d"
  "/root/repo/src/core/operators.cpp" "src/CMakeFiles/terasem.dir/core/operators.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/operators.cpp.o.d"
  "/root/repo/src/core/pressure.cpp" "src/CMakeFiles/terasem.dir/core/pressure.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/pressure.cpp.o.d"
  "/root/repo/src/core/probe.cpp" "src/CMakeFiles/terasem.dir/core/probe.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/probe.cpp.o.d"
  "/root/repo/src/core/space.cpp" "src/CMakeFiles/terasem.dir/core/space.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/core/space.cpp.o.d"
  "/root/repo/src/fem/fem.cpp" "src/CMakeFiles/terasem.dir/fem/fem.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/fem/fem.cpp.o.d"
  "/root/repo/src/gs/gather_scatter.cpp" "src/CMakeFiles/terasem.dir/gs/gather_scatter.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/gs/gather_scatter.cpp.o.d"
  "/root/repo/src/io/vtk.cpp" "src/CMakeFiles/terasem.dir/io/vtk.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/io/vtk.cpp.o.d"
  "/root/repo/src/mesh/build.cpp" "src/CMakeFiles/terasem.dir/mesh/build.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/mesh/build.cpp.o.d"
  "/root/repo/src/mesh/spec.cpp" "src/CMakeFiles/terasem.dir/mesh/spec.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/mesh/spec.cpp.o.d"
  "/root/repo/src/ns/navier_stokes.cpp" "src/CMakeFiles/terasem.dir/ns/navier_stokes.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/ns/navier_stokes.cpp.o.d"
  "/root/repo/src/osref/orr_sommerfeld.cpp" "src/CMakeFiles/terasem.dir/osref/orr_sommerfeld.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/osref/orr_sommerfeld.cpp.o.d"
  "/root/repo/src/partition/rsb.cpp" "src/CMakeFiles/terasem.dir/partition/rsb.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/partition/rsb.cpp.o.d"
  "/root/repo/src/poly/basis1d.cpp" "src/CMakeFiles/terasem.dir/poly/basis1d.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/poly/basis1d.cpp.o.d"
  "/root/repo/src/poly/filter.cpp" "src/CMakeFiles/terasem.dir/poly/filter.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/poly/filter.cpp.o.d"
  "/root/repo/src/poly/lagrange.cpp" "src/CMakeFiles/terasem.dir/poly/lagrange.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/poly/lagrange.cpp.o.d"
  "/root/repo/src/poly/legendre.cpp" "src/CMakeFiles/terasem.dir/poly/legendre.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/poly/legendre.cpp.o.d"
  "/root/repo/src/poly/quadrature.cpp" "src/CMakeFiles/terasem.dir/poly/quadrature.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/poly/quadrature.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/terasem.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/sim/machine.cpp.o.d"
  "/root/repo/src/solver/coarse.cpp" "src/CMakeFiles/terasem.dir/solver/coarse.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/coarse.cpp.o.d"
  "/root/repo/src/solver/fdm.cpp" "src/CMakeFiles/terasem.dir/solver/fdm.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/fdm.cpp.o.d"
  "/root/repo/src/solver/overlap.cpp" "src/CMakeFiles/terasem.dir/solver/overlap.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/overlap.cpp.o.d"
  "/root/repo/src/solver/projection.cpp" "src/CMakeFiles/terasem.dir/solver/projection.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/projection.cpp.o.d"
  "/root/repo/src/solver/schwarz.cpp" "src/CMakeFiles/terasem.dir/solver/schwarz.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/schwarz.cpp.o.d"
  "/root/repo/src/solver/xxt.cpp" "src/CMakeFiles/terasem.dir/solver/xxt.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/solver/xxt.cpp.o.d"
  "/root/repo/src/tensor/linalg.cpp" "src/CMakeFiles/terasem.dir/tensor/linalg.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/tensor/linalg.cpp.o.d"
  "/root/repo/src/tensor/mxm.cpp" "src/CMakeFiles/terasem.dir/tensor/mxm.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/tensor/mxm.cpp.o.d"
  "/root/repo/src/tensor/tensor_apply.cpp" "src/CMakeFiles/terasem.dir/tensor/tensor_apply.cpp.o" "gcc" "src/CMakeFiles/terasem.dir/tensor/tensor_apply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
