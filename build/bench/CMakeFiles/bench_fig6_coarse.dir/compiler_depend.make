# Empty compiler generated dependencies file for bench_fig6_coarse.
# This may be replaced when dependencies are built.
