file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_coarse.dir/bench_fig6_coarse.cpp.o"
  "CMakeFiles/bench_fig6_coarse.dir/bench_fig6_coarse.cpp.o.d"
  "bench_fig6_coarse"
  "bench_fig6_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
