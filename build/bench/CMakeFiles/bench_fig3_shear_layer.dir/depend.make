# Empty dependencies file for bench_fig3_shear_layer.
# This may be replaced when dependencies are built.
