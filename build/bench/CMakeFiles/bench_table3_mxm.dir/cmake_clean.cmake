file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mxm.dir/bench_table3_mxm.cpp.o"
  "CMakeFiles/bench_table3_mxm.dir/bench_table3_mxm.cpp.o.d"
  "bench_table3_mxm"
  "bench_table3_mxm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mxm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
