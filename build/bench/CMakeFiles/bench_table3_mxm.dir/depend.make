# Empty dependencies file for bench_table3_mxm.
# This may be replaced when dependencies are built.
