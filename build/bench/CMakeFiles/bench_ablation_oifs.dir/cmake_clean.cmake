file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oifs.dir/bench_ablation_oifs.cpp.o"
  "CMakeFiles/bench_ablation_oifs.dir/bench_ablation_oifs.cpp.o.d"
  "bench_ablation_oifs"
  "bench_ablation_oifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
