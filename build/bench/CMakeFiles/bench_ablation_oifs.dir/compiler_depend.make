# Empty compiler generated dependencies file for bench_ablation_oifs.
# This may be replaced when dependencies are built.
