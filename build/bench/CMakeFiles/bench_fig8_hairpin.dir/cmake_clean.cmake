file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hairpin.dir/bench_fig8_hairpin.cpp.o"
  "CMakeFiles/bench_fig8_hairpin.dir/bench_fig8_hairpin.cpp.o.d"
  "bench_fig8_hairpin"
  "bench_fig8_hairpin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hairpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
