# Empty dependencies file for bench_fig8_hairpin.
# This may be replaced when dependencies are built.
