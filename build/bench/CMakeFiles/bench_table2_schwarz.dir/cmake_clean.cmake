file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_schwarz.dir/bench_table2_schwarz.cpp.o"
  "CMakeFiles/bench_table2_schwarz.dir/bench_table2_schwarz.cpp.o.d"
  "bench_table2_schwarz"
  "bench_table2_schwarz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
