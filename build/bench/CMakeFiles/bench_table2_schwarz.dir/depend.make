# Empty dependencies file for bench_table2_schwarz.
# This may be replaced when dependencies are built.
