file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_orr_sommerfeld.dir/bench_table1_orr_sommerfeld.cpp.o"
  "CMakeFiles/bench_table1_orr_sommerfeld.dir/bench_table1_orr_sommerfeld.cpp.o.d"
  "bench_table1_orr_sommerfeld"
  "bench_table1_orr_sommerfeld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_orr_sommerfeld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
