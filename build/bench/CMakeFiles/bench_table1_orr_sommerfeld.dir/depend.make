# Empty dependencies file for bench_table1_orr_sommerfeld.
# This may be replaced when dependencies are built.
