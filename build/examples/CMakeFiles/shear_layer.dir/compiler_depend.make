# Empty compiler generated dependencies file for shear_layer.
# This may be replaced when dependencies are built.
