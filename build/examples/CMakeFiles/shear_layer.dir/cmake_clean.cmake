file(REMOVE_RECURSE
  "CMakeFiles/shear_layer.dir/shear_layer.cpp.o"
  "CMakeFiles/shear_layer.dir/shear_layer.cpp.o.d"
  "shear_layer"
  "shear_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shear_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
