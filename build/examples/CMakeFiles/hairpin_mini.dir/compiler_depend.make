# Empty compiler generated dependencies file for hairpin_mini.
# This may be replaced when dependencies are built.
