file(REMOVE_RECURSE
  "CMakeFiles/hairpin_mini.dir/hairpin_mini.cpp.o"
  "CMakeFiles/hairpin_mini.dir/hairpin_mini.cpp.o.d"
  "hairpin_mini"
  "hairpin_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hairpin_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
