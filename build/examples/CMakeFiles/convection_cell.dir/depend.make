# Empty dependencies file for convection_cell.
# This may be replaced when dependencies are built.
