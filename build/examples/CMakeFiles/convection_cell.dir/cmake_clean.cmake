file(REMOVE_RECURSE
  "CMakeFiles/convection_cell.dir/convection_cell.cpp.o"
  "CMakeFiles/convection_cell.dir/convection_cell.cpp.o.d"
  "convection_cell"
  "convection_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convection_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
