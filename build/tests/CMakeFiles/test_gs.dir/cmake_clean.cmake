file(REMOVE_RECURSE
  "CMakeFiles/test_gs.dir/test_gs.cpp.o"
  "CMakeFiles/test_gs.dir/test_gs.cpp.o.d"
  "test_gs"
  "test_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
