file(REMOVE_RECURSE
  "CMakeFiles/test_schwarz.dir/test_schwarz.cpp.o"
  "CMakeFiles/test_schwarz.dir/test_schwarz.cpp.o.d"
  "test_schwarz"
  "test_schwarz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
