file(REMOVE_RECURSE
  "CMakeFiles/test_osref.dir/test_osref.cpp.o"
  "CMakeFiles/test_osref.dir/test_osref.cpp.o.d"
  "test_osref"
  "test_osref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
