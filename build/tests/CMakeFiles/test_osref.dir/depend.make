# Empty dependencies file for test_osref.
# This may be replaced when dependencies are built.
