// Thread-count invariance and steady-state allocation tests for the
// OpenMP-parallel element-loop hot paths.
//
// Every parallel element loop in the library uses schedule(static) and
// writes only its own element's [e*npe, (e+1)*npe) block (or a private
// arena slab), so results must be BITWISE identical at any thread count
// — verified here with memcmp between 1-thread and 4-thread runs.  The
// fused convection kernel is additionally checked against an unfused
// gradient + dot-product reference (EXPECT_NEAR: FMA contraction makes
// that comparison tolerance-based, not bitwise).
//
// The file also overrides global operator new/delete with a counting
// allocator to prove NavierStokes::step performs zero heap allocations
// for field-length temporaries once the persistent scratch is warm.
#include <gtest/gtest.h>

#include <cstdint>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/dealias.hpp"
#include "core/operators.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "poly/filter.hpp"
#include "solver/schwarz.hpp"
#include "tensor/workspace.hpp"

// ---------------------------------------------------------------------
// Counting allocator: when g_track is set, every global allocation of at
// least g_threshold bytes bumps g_hits.  Malloc-backed so the overrides
// stay trivially correct; the sized/array delete forms forward to the
// same free.
// ---------------------------------------------------------------------
static std::atomic<bool> g_track{false};
static std::atomic<long> g_hits{0};
static std::atomic<std::size_t> g_threshold{0};

void* operator new(std::size_t n) {
  if (g_track.load(std::memory_order_relaxed) &&
      n >= g_threshold.load(std::memory_order_relaxed))
    g_hits.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using tsem::build_mesh;
using tsem::Space;
using tsem::TensorWork;

Space box3d(int k, int order) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  return Space(build_mesh(spec, order));
}

std::vector<double> smooth_field(const tsem::Mesh& m, int which) {
  std::vector<double> u(m.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double x = m.x[i], y = m.y[i];
    const double z = m.dim == 3 ? m.z[i] : 0.0;
    switch (which) {
      case 0: u[i] = std::sin(3 * x) * std::cos(2 * y) + 0.3 * z; break;
      case 1: u[i] = std::cos(x + 2 * y) * (1.0 + 0.5 * z * z); break;
      default: u[i] = x * y + std::sin(z + x); break;
    }
  }
  return u;
}

/// Run `body` with the OpenMP thread count forced to `nt`, restoring the
/// previous setting afterwards.  Without OpenMP this is a plain call.
template <class F>
void with_threads(int nt, F&& body) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(nt);
  body();
  omp_set_num_threads(saved);
#else
  (void)nt;
  body();
#endif
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------------
// Workspace arena unit behavior.
// ---------------------------------------------------------------------

TEST(Workspace, GrowsMonotonicallyAndKeepsPointerOnReuse) {
  tsem::Workspace ws;
  double* p1 = ws.get(64);
  double* p2 = ws.get(32);  // smaller request reuses the same slab
  EXPECT_EQ(p1, p2);
  for (int i = 0; i < 64; ++i) p1[i] = i;
  (void)ws.get(64);
  EXPECT_EQ(p1[63], 63.0);  // non-growing get preserves contents
}

// Every slab the arena hands out is cache-line / AVX-512 aligned so the
// SIMD mxm kernels can assume at least 64-byte alignment for their
// staging buffers (workspace.hpp kAlign).
TEST(Workspace, SlabsAre64ByteAligned) {
  static_assert(tsem::Workspace::kAlign == 64);
  tsem::Workspace ws;
  // Odd sizes force re-allocations; alignment must hold through growth.
  for (std::size_t n : {1u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    double* p = ws.get(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % tsem::Workspace::kAlign,
              0u)
        << "slab of " << n << " doubles misaligned";
  }
}

TEST(Workspace, ThreadsReceiveDistinctSlabs) {
#ifdef _OPENMP
  tsem::Workspace ws;
  constexpr int kThreads = 4;
  double* ptrs[kThreads] = {nullptr, nullptr, nullptr, nullptr};
  with_threads(kThreads, [&] {
#pragma omp parallel num_threads(kThreads)
    {
      const int tid = omp_get_thread_num();
      double* p = ws.get(128);
      p[0] = tid;  // touch: a shared slab would race/overwrite
      ptrs[tid] = p;
    }
  });
  std::set<double*> uniq;
  for (double* p : ptrs)
    if (p) uniq.insert(p);
  // However many threads the runtime actually provided, every slab
  // handed out must be distinct.
  int provided = 0;
  for (double* p : ptrs)
    if (p) ++provided;
  EXPECT_EQ(static_cast<int>(uniq.size()), provided);
  EXPECT_GE(ws.slabs_in_use(), 1);
#else
  GTEST_SKIP() << "compiled without OpenMP";
#endif
}

// ---------------------------------------------------------------------
// Bitwise thread-count invariance of every parallelized element loop.
// ---------------------------------------------------------------------

TEST(ThreadInvariance, StiffnessGradientConvectFilter3D) {
  Space s = box3d(2, 6);
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  const auto u = smooth_field(m, 0);
  const auto v0 = smooth_field(m, 0);
  const auto v1 = smooth_field(m, 1);
  const auto v2 = smooth_field(m, 2);
  const double* vel[3] = {v0.data(), v1.data(), v2.data()};
  const auto fmat = tsem::filter_matrix(m.order, 0.1);

  struct Result {
    std::vector<double> stiff, gx, gy, gz, conv, filt;
  };
  auto run = [&]() {
    Result r;
    TensorWork work;  // fresh arena per run: slab layout can't leak over
    r.stiff.assign(nl, 0.0);
    tsem::apply_stiffness_local(m, u.data(), r.stiff.data(), work);
    r.gx.assign(nl, 0.0);
    r.gy.assign(nl, 0.0);
    r.gz.assign(nl, 0.0);
    double* grad[3] = {r.gx.data(), r.gy.data(), r.gz.data()};
    tsem::gradient_local(m, u.data(), grad, work);
    r.conv.assign(nl, 0.0);
    tsem::convect_local(m, vel, u.data(), r.conv.data(), work);
    r.filt = u;
    tsem::apply_filter_local(m, fmat, r.filt.data(), work);
    return r;
  };

  Result serial, threaded;
  with_threads(1, [&] { serial = run(); });
  with_threads(4, [&] { threaded = run(); });
  EXPECT_TRUE(bitwise_equal(serial.stiff, threaded.stiff));
  EXPECT_TRUE(bitwise_equal(serial.gx, threaded.gx));
  EXPECT_TRUE(bitwise_equal(serial.gy, threaded.gy));
  EXPECT_TRUE(bitwise_equal(serial.gz, threaded.gz));
  EXPECT_TRUE(bitwise_equal(serial.conv, threaded.conv));
  EXPECT_TRUE(bitwise_equal(serial.filt, threaded.filt));
}

TEST(ThreadInvariance, StiffnessDiagonal3D) {
  Space s = box3d(2, 5);
  std::vector<double> serial, threaded;
  with_threads(1, [&] { serial = tsem::stiffness_diagonal_local(s.mesh()); });
  with_threads(4,
               [&] { threaded = tsem::stiffness_diagonal_local(s.mesh()); });
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

TEST(ThreadInvariance, DealiasedConvection3D) {
  Space s = box3d(2, 5);
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  const auto u = smooth_field(m, 0);
  const auto v0 = smooth_field(m, 1);
  const auto v1 = smooth_field(m, 2);
  const auto v2 = smooth_field(m, 0);
  const double* vel[3] = {v0.data(), v1.data(), v2.data()};
  tsem::DealiasedConvection dc(m);

  auto run = [&](std::vector<double>& out) {
    TensorWork work;
    out.assign(nl, 0.0);
    dc.apply(vel, u.data(), out.data(), work);
  };
  std::vector<double> serial, threaded;
  with_threads(1, [&] { run(serial); });
  with_threads(4, [&] { run(threaded); });
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

TEST(ThreadInvariance, SchwarzApply) {
  // 2D pressure system: exercises the FDM local-solve loop with ghost
  // exchange and the serial coarse correction.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  Space s(build_mesh(spec, 6));
  tsem::PressureSystem psys(s, s.make_mask(0xF));
  tsem::SchwarzOptions sopt;
  tsem::SchwarzPrecond sp(psys, sopt);

  const std::size_t np = psys.nloc();
  std::vector<double> r(np);
  for (std::size_t i = 0; i < np; ++i)
    r[i] = std::sin(0.37 * static_cast<double>(i) + 0.2);

  std::vector<double> serial(np), threaded(np);
  with_threads(1, [&] { sp.apply(r.data(), serial.data()); });
  with_threads(4, [&] { sp.apply(r.data(), threaded.data()); });
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

// ---------------------------------------------------------------------
// Fused convection kernel vs the unfused gradient + dot reference.
// ---------------------------------------------------------------------

TEST(Convection, FusedMatchesGradientDotReference) {
  Space s = box3d(2, 6);
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  const auto u = smooth_field(m, 0);
  const auto v0 = smooth_field(m, 1);
  const auto v1 = smooth_field(m, 2);
  const auto v2 = smooth_field(m, 0);
  const double* vel[3] = {v0.data(), v1.data(), v2.data()};

  TensorWork work;
  std::vector<double> conv(nl);
  tsem::convect_local(m, vel, u.data(), conv.data(), work);

  // Unfused reference: materialize the three gradient fields, then dot.
  std::vector<double> gx(nl), gy(nl), gz(nl);
  double* grad[3] = {gx.data(), gy.data(), gz.data()};
  tsem::gradient_local(m, u.data(), grad, work);
  for (std::size_t i = 0; i < nl; ++i) {
    const double ref = v0[i] * gx[i] + v1[i] * gy[i] + v2[i] * gz[i];
    // FMA contraction in the fused kernel makes this tolerance-based.
    EXPECT_NEAR(conv[i], ref, 1e-12 * (1.0 + std::fabs(ref)));
  }
}

// ---------------------------------------------------------------------
// Full time-stepper thread invariance and zero-allocation steady state.
// ---------------------------------------------------------------------

tsem::NsOptions ns_options() {
  tsem::NsOptions opt;
  opt.dt = 2e-3;
  opt.viscosity = 1e-2;
  opt.torder = 2;
  opt.proj_len = 4;
  opt.filter_alpha = 0.05;
  return opt;
}

void set_initial(tsem::NavierStokes& ns, const tsem::Mesh& m) {
  for (std::size_t i = 0; i < m.nlocal(); ++i) {
    const double x = m.x[i], y = m.y[i], z = m.z[i];
    const double bub = x * (1 - x) * y * (1 - y) * z * (1 - z);
    ns.u(0)[i] = 16.0 * bub * std::sin(3 * y);
    ns.u(1)[i] = 16.0 * bub * std::cos(2 * x + z);
    ns.u(2)[i] = 8.0 * bub;
  }
}

TEST(ThreadInvariance, NavierStokesStep) {
  constexpr std::uint32_t kAllFaces = 0x3Fu;
  auto run = [&](int nthreads, std::vector<double>* out) {
    Space s = box3d(2, 5);
    tsem::NavierStokes ns(s, kAllFaces, ns_options());
    set_initial(ns, s.mesh());
    with_threads(nthreads, [&] {
      for (int n = 0; n < 5; ++n) ns.step();
    });
    out[0] = ns.u(0);
    out[1] = ns.u(1);
    out[2] = ns.u(2);
    out[3] = ns.pressure();
  };
  std::vector<double> serial[4], threaded[4];
  run(1, serial);
  run(4, threaded);
  for (int c = 0; c < 4; ++c)
    EXPECT_TRUE(bitwise_equal(serial[c], threaded[c])) << "field " << c;
}

TEST(Allocation, SteadyStateStepIsAllocationFree) {
  constexpr std::uint32_t kAllFaces = 0x3Fu;
  Space s = box3d(2, 6);  // nl = 8 * 343 = 2744, np = 8 * 125 = 1000
  tsem::NavierStokes ns(s, kAllFaces, ns_options());
  set_initial(ns, s.mesh());

  // Warm up: BDF ramp, operator caches, projection window fill AND one
  // basis restart (proj_len = 4), solver scratch high-water marks.
  for (int n = 0; n < 12; ++n) {
    auto st = ns.step();
    ASSERT_FALSE(st.failed);
  }

  // Count every allocation that could hold a field-length temporary:
  // min(nl, np) * sizeof(double) = 1000 * 8 = 8000 bytes.  Smaller
  // allocations (metrics nodes, the per-step JSON trace event at ~4.4 KB)
  // are outside the claim.
  g_threshold.store(8000);
  g_hits.store(0);
  g_track.store(true);
  for (int n = 0; n < 3; ++n) ns.step();
  g_track.store(false);
  EXPECT_EQ(g_hits.load(), 0)
      << "steady-state step allocated field-length temporaries";
}

}  // namespace
