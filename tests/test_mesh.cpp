// Tests for mesh building: numbering, metrics, boundary tagging,
// refinement, periodicity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mesh/build.hpp"
#include "mesh/spec.hpp"

namespace {

using tsem::build_mesh;

TEST(MeshBuild, Box2DCounts) {
  const int kx = 3, ky = 2, n = 4;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 3, kx),
                                tsem::linspace(0, 2, ky));
  const auto m = build_mesh(spec, n);
  EXPECT_EQ(m.nelem, kx * ky);
  EXPECT_EQ(m.npe, (n + 1) * (n + 1));
  // C0 global nodes of a conforming kx x ky box: (kx*n+1)*(ky*n+1).
  EXPECT_EQ(m.nglob, (kx * n + 1) * (ky * n + 1));
  EXPECT_EQ(m.nvert, (kx + 1) * (ky + 1));
}

TEST(MeshBuild, Box3DCounts) {
  const int k = 2, n = 3;
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  const auto m = build_mesh(spec, n);
  EXPECT_EQ(m.nelem, k * k * k);
  const int npts = k * n + 1;
  EXPECT_EQ(m.nglob, npts * npts * npts);
  EXPECT_EQ(m.nvert, (k + 1) * (k + 1) * (k + 1));
}

TEST(MeshBuild, PeriodicBoxMergesFaces) {
  const int k = 4, n = 5;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  spec.periodic_x = spec.periodic_y = true;
  const auto m = build_mesh(spec, n);
  EXPECT_EQ(m.nglob, (k * n) * (k * n));  // fully periodic torus
  // No boundary nodes at all.
  for (auto b : m.bdry_bits) EXPECT_EQ(b, 0u);
}

TEST(MeshBuild, Periodic3DTorus) {
  const int k = 2, n = 3;
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  spec.periodic_x = spec.periodic_y = spec.periodic_z = true;
  const auto m = build_mesh(spec, n);
  EXPECT_EQ(m.nglob, (k * n) * (k * n) * (k * n));
  for (auto b : m.bdry_bits) EXPECT_EQ(b, 0u);
  EXPECT_EQ(m.nvert, k * k * k);
}

TEST(MeshBuild, MassSumsToAreaAffine) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2, 3),
                                tsem::linspace(-1, 1, 2));
  const auto m = build_mesh(spec, 6);
  double area = 0.0;
  for (double v : m.bm) area += v;
  EXPECT_NEAR(area, 4.0, 1e-12);
}

TEST(MeshBuild, MassSumsToAreaAnnulus) {
  const double r0 = 0.5, r1 = 2.0;
  auto spec = tsem::annulus_spec(r0, r1, 3, 12, 1.5);
  const auto m = build_mesh(spec, 8);
  double area = 0.0;
  for (double v : m.bm) area += v;
  EXPECT_NEAR(area, M_PI * (r1 * r1 - r0 * r0), 1e-6);
}

TEST(MeshBuild, AnnulusIsConformingAndTagged) {
  auto spec = tsem::annulus_spec(1.0, 3.0, 2, 8, 1.0);
  const auto m = build_mesh(spec, 5);
  // Closed annulus: every radial line of elements shares faces with both
  // azimuthal neighbors; global node count = (kr*N+1) * (kt*N).
  EXPECT_EQ(m.nglob, (2 * 5 + 1) * (8 * 5));
  // Inner (tag 0) and outer (tag 1) boundary nodes both exist.
  bool has_inner = false, has_outer = false;
  for (std::size_t i = 0; i < m.bdry_bits.size(); ++i) {
    if (m.bdry_bits[i] & 1u) {
      has_inner = true;
      EXPECT_NEAR(std::hypot(m.x[i], m.y[i]), 1.0, 1e-10);
    }
    if (m.bdry_bits[i] & 2u) {
      has_outer = true;
      EXPECT_NEAR(std::hypot(m.x[i], m.y[i]), 3.0, 1e-10);
    }
  }
  EXPECT_TRUE(has_inner);
  EXPECT_TRUE(has_outer);
}

TEST(MeshBuild, QuadRefineQuadruplesElements) {
  auto spec = tsem::annulus_spec(1.0, 2.0, 2, 6, 1.2);
  auto fine = tsem::quad_refine(spec);
  EXPECT_EQ(fine.elems.size(), spec.elems.size() * 4);
  const auto mc = build_mesh(spec, 4);
  const auto mf = build_mesh(fine, 4);
  // Curved geometry preserved: both converge to the exact annulus area,
  // and the refined mesh is closer (quadrature of the curved Jacobian).
  const double exact = M_PI * (4.0 - 1.0);
  double a0 = 0.0, a1 = 0.0;
  for (double v : mc.bm) a0 += v;
  for (double v : mf.bm) a1 += v;
  EXPECT_NEAR(a0, exact, 1e-4);
  EXPECT_NEAR(a1, exact, 1e-6);
  EXPECT_LT(std::fabs(a1 - exact), std::fabs(a0 - exact));
}

TEST(MeshBuild, OctRefine3D) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1, 1));
  auto fine = tsem::oct_refine(spec);
  EXPECT_EQ(fine.elems.size(), 8u);
  const auto m = build_mesh(fine, 3);
  double vol = 0.0;
  for (double v : m.bm) vol += v;
  EXPECT_NEAR(vol, 1.0, 1e-12);
}

TEST(MeshBuild, MetricsIdentityOnUnitReferenceElement) {
  auto spec = tsem::box_spec_2d({-1.0, 1.0}, {-1.0, 1.0});
  const auto m = build_mesh(spec, 7);
  for (std::size_t i = 0; i < m.nlocal(); ++i) {
    EXPECT_NEAR(m.jac[i], 1.0, 1e-12);
    EXPECT_NEAR(m.metric(0, 0)[i], 1.0, 1e-12);
    EXPECT_NEAR(m.metric(0, 1)[i], 0.0, 1e-12);
    EXPECT_NEAR(m.metric(1, 1)[i], 1.0, 1e-12);
  }
}

TEST(MeshBuild, BoundaryTagsOnBoxSides) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, 4);
  for (std::size_t i = 0; i < m.nlocal(); ++i) {
    const bool xlo = std::fabs(m.x[i]) < 1e-12;
    const bool xhi = std::fabs(m.x[i] - 1.0) < 1e-12;
    const bool ylo = std::fabs(m.y[i]) < 1e-12;
    const bool yhi = std::fabs(m.y[i] - 1.0) < 1e-12;
    EXPECT_EQ((m.bdry_bits[i] >> tsem::kFaceXLo) & 1u, xlo ? 1u : 0u);
    EXPECT_EQ((m.bdry_bits[i] >> tsem::kFaceXHi) & 1u, xhi ? 1u : 0u);
    EXPECT_EQ((m.bdry_bits[i] >> tsem::kFaceYLo) & 1u, ylo ? 1u : 0u);
    EXPECT_EQ((m.bdry_bits[i] >> tsem::kFaceYHi) & 1u, yhi ? 1u : 0u);
  }
}

TEST(MeshBuild, BumpChannelVolumeReduced) {
  auto flat = tsem::box_spec_3d(tsem::linspace(0, 4, 4),
                                tsem::linspace(0, 2, 2),
                                tsem::linspace(0, 1, 2));
  auto bump = tsem::bump_channel_spec(tsem::linspace(0, 4, 4),
                                      tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 1, 2), 1.0, 1.0, 0.5,
                                      0.2);
  const auto mf = build_mesh(flat, 4);
  const auto mb = build_mesh(bump, 4);
  double vf = 0.0, vb = 0.0;
  for (double v : mf.bm) vf += v;
  for (double v : mb.bm) vb += v;
  EXPECT_LT(vb, vf);
  EXPECT_GT(vb, 0.9 * vf);
  EXPECT_EQ(mb.nglob, mf.nglob);  // same topology
}

}  // namespace
