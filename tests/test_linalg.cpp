// Unit tests for the dense/banded/complex factorizations and eigensolvers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "tensor/linalg.hpp"

namespace {

std::vector<double> random_spd(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> g(static_cast<std::size_t>(n) * n);
  for (auto& v : g) v = dist(rng);
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) a[i * n + j] += g[k * n + i] * g[k * n + j];
      if (i == j) a[i * n + j] += n;  // well conditioned
    }
  return a;
}

TEST(Blas1, DotNormAxpy) {
  std::vector<double> x = {1.0, 2.0, -3.0};
  std::vector<double> y = {4.0, -1.0, 2.0};
  EXPECT_NEAR(tsem::dot(x.data(), y.data(), 3), 1 * 4 - 2 - 6, 1e-15);
  EXPECT_NEAR(tsem::norm2(x.data(), 3), std::sqrt(14.0), 1e-15);
  tsem::axpy(2.0, x.data(), y.data(), 3);
  EXPECT_NEAR(y[0], 6.0, 1e-15);
  EXPECT_NEAR(y[2], -4.0, 1e-15);
}

TEST(Cholesky, RoundTrip) {
  const int n = 12;
  auto a = random_spd(n, 7);
  const auto a0 = a;
  ASSERT_TRUE(tsem::cholesky_factor(a.data(), n));
  std::vector<double> x(n), b(n, 0.0);
  for (int i = 0; i < n; ++i) x[i] = std::sin(i + 1.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b[i] += a0[i * n + j] * x[j];
  tsem::cholesky_solve(a.data(), n, b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_FALSE(tsem::cholesky_factor(a.data(), 2));
}

TEST(Lu, RoundTripWithPivoting) {
  const int n = 10;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = dist(rng);
  a[0] = 0.0;  // force a pivot swap
  const auto a0 = a;
  std::vector<int> piv(n);
  ASSERT_TRUE(tsem::lu_factor(a.data(), n, piv.data()));
  std::vector<double> x(n), b(n, 0.0);
  for (int i = 0; i < n; ++i) x[i] = std::cos(0.7 * i);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b[i] += a0[i * n + j] * x[j];
  tsem::lu_solve(a.data(), piv.data(), n, b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-10);
}

TEST(Lu, DetectsSingular) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};
  std::vector<int> piv(2);
  EXPECT_FALSE(tsem::lu_factor(a.data(), 2, piv.data()));
}

TEST(Invert, MatchesIdentity) {
  const int n = 8;
  auto a = random_spd(n, 11);
  const auto a0 = a;
  ASSERT_TRUE(tsem::invert(a.data(), n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) s += a0[i * n + k] * a[k * n + j];
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-10);
    }
}

TEST(BandedCholesky, MatchesDenseSolve) {
  // 1D Laplacian (tridiagonal, kd = 1) plus identity.
  const int n = 50, kd = 1;
  std::vector<double> band(static_cast<std::size_t>(n) * (kd + 1), 0.0);
  for (int i = 0; i < n; ++i) {
    band[i * 2 + 0] = 3.0;                 // diagonal
    if (i > 0) band[i * 2 + 1] = -1.0;     // sub-diagonal A(i, i-1)
  }
  tsem::BandedCholesky chol;
  ASSERT_TRUE(chol.factor(band, n, kd));
  std::vector<double> x(n), b(n, 0.0);
  for (int i = 0; i < n; ++i) x[i] = std::sin(0.2 * i);
  for (int i = 0; i < n; ++i) {
    b[i] += 3.0 * x[i];
    if (i > 0) b[i] -= x[i - 1];
    if (i < n - 1) b[i] -= x[i + 1];
  }
  chol.solve(b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-11);
}

TEST(BandedCholesky, WideBandRoundTrip) {
  const int n = 40, kd = 7;
  // SPD banded matrix: diagonally dominant with decaying off-diagonals.
  std::vector<double> band(static_cast<std::size_t>(n) * (kd + 1), 0.0);
  for (int i = 0; i < n; ++i) {
    band[i * (kd + 1)] = 2.0 * kd + 1.0;
    for (int d = 1; d <= kd && i - d >= 0; ++d)
      band[i * (kd + 1) + d] = -1.0 / d;
  }
  tsem::BandedCholesky chol;
  ASSERT_TRUE(chol.factor(band, n, kd));
  std::vector<double> x(n), b(n, 0.0);
  for (int i = 0; i < n; ++i) x[i] = 1.0 + 0.1 * i;
  // b = A x using the band.
  for (int i = 0; i < n; ++i) {
    b[i] += (2.0 * kd + 1.0) * x[i];
    for (int d = 1; d <= kd; ++d) {
      if (i - d >= 0) b[i] += (-1.0 / d) * x[i - d];
      if (i + d < n) b[i] += (-1.0 / d) * x[i + d];
    }
  }
  chol.solve(b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-9);
}

TEST(ComplexLu, RoundTrip) {
  using C = tsem::Complex;
  const int n = 6;
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<C> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = C(dist(rng), dist(rng));
  const auto a0 = a;
  std::vector<int> piv(n);
  ASSERT_TRUE(tsem::zlu_factor(a.data(), n, piv.data()));
  std::vector<C> x(n), b(n, C(0, 0));
  for (int i = 0; i < n; ++i) x[i] = C(std::sin(i + 1.0), std::cos(i * 0.5));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b[i] += a0[i * n + j] * x[j];
  tsem::zlu_solve(a.data(), piv.data(), n, b.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(b[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(SymEig, DiagonalizesSpdMatrix) {
  const int n = 9;
  const auto a = random_spd(n, 13);
  std::vector<double> vals, vecs;
  tsem::sym_eig(a.data(), n, vals, vecs);
  for (int i = 1; i < n; ++i) EXPECT_LE(vals[i - 1], vals[i]);
  // A v_i = lambda_i v_i and V orthonormal.
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) {
      double av = 0.0;
      for (int k = 0; k < n; ++k) av += a[r * n + k] * vecs[k * n + c];
      EXPECT_NEAR(av, vals[c] * vecs[r * n + c], 1e-9);
    }
  }
  for (int c1 = 0; c1 < n; ++c1)
    for (int c2 = 0; c2 < n; ++c2) {
      double d = 0.0;
      for (int r = 0; r < n; ++r) d += vecs[r * n + c1] * vecs[r * n + c2];
      EXPECT_NEAR(d, c1 == c2 ? 1.0 : 0.0, 1e-10);
    }
}

TEST(GeneralizedSymEig, SolvesPencilWithBOrthonormalVectors) {
  const int n = 7;
  const auto a = random_spd(n, 17);
  const auto b = random_spd(n, 19);
  std::vector<double> vals, z;
  tsem::generalized_sym_eig(a.data(), b.data(), n, vals, z);
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) {
      double az = 0.0, bz = 0.0;
      for (int k = 0; k < n; ++k) {
        az += a[r * n + k] * z[k * n + c];
        bz += b[r * n + k] * z[k * n + c];
      }
      EXPECT_NEAR(az, vals[c] * bz, 1e-8);
    }
  }
  // Z^T B Z = I.
  for (int c1 = 0; c1 < n; ++c1)
    for (int c2 = 0; c2 < n; ++c2) {
      double s = 0.0;
      for (int r = 0; r < n; ++r)
        for (int k = 0; k < n; ++k)
          s += z[r * n + c1] * b[r * n + k] * z[k * n + c2];
      EXPECT_NEAR(s, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
}

TEST(TridiagEig, MatchesAnalyticLaplacianSpectrum) {
  // Tridiagonal (-1, 2, -1) has eigenvalues 2 - 2 cos(k pi / (n+1)).
  const int n = 16;
  std::vector<double> d(n, 2.0), e(n, -1.0), z(static_cast<std::size_t>(n) * n,
                                               0.0);
  for (int i = 0; i < n; ++i) z[i * n + i] = 1.0;
  // tridiag_eig expects e[i] as the coupling between i-1 and i with e[0]
  // unused.
  e[0] = 0.0;
  ASSERT_TRUE(tsem::tridiag_eig(d, e, z, n));
  for (int k = 0; k < n; ++k) {
    const double exact = 2.0 - 2.0 * std::cos((k + 1) * M_PI / (n + 1));
    EXPECT_NEAR(d[k], exact, 1e-11);
  }
  // Eigenvector residual check for the smallest eigenpair.
  for (int r = 0; r < n; ++r) {
    double tv = 2.0 * z[r * n + 0];
    if (r > 0) tv -= z[(r - 1) * n + 0];
    if (r < n - 1) tv -= z[(r + 1) * n + 0];
    EXPECT_NEAR(tv, d[0] * z[r * n + 0], 1e-10);
  }
}

}  // namespace
