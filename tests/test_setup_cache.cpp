// Tests for the shape-keyed shared setup cache (fleet/setup_cache.hpp)
// and the serializable setup artifacts it publishes
// (solver/setup_bundle.hpp).
//
// Everything here is single-process: serialization round-trips, key
// derivation, and the slot protocol driven directly against the shm
// arena.  The end-to-end fork drills (torn publish, cold relaunch,
// bit-identity under the supervisor) live in test_fleet.cpp, which keeps
// its parent process free of OpenMP regions before fork().
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/space.hpp"
#include "fleet/setup_cache.hpp"
#include "io/binfile.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "solver/overlap.hpp"
#include "solver/schwarz.hpp"
#include "solver/setup_bundle.hpp"

namespace {

using tsem::ByteReader;
using tsem::ByteWriter;
using tsem::GatherScatter;
using tsem::GhostExchange;
using tsem::Mesh;
using tsem::SetupBundle;
using tsem::fleet::JobSpec;
using tsem::fleet::SetupCache;
using tsem::fleet::SetupKey;

Mesh test_mesh(int k = 2, int order = 4) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0.0, 6.28, k),
                                tsem::linspace(0.0, 6.28, k));
  spec.periodic_x = spec.periodic_y = true;
  return tsem::build_mesh(spec, order);
}

// ---- Artifact serialization -----------------------------------------

TEST(SetupBundleIo, MeshRoundTripsBitwise) {
  const Mesh m = test_mesh();
  std::vector<std::uint8_t> bytes;
  tsem::serialize_mesh(m, &bytes);
  Mesh back;
  ASSERT_TRUE(tsem::deserialize_mesh(bytes, &back));
  EXPECT_EQ(back.dim, m.dim);
  EXPECT_EQ(back.order, m.order);
  EXPECT_EQ(back.nelem, m.nelem);
  EXPECT_EQ(back.npe, m.npe);
  EXPECT_EQ(back.nglob, m.nglob);
  EXPECT_EQ(back.nvert, m.nvert);
  EXPECT_EQ(back.node_id, m.node_id);
  EXPECT_EQ(back.vert_id, m.vert_id);
  EXPECT_EQ(back.bdry_bits, m.bdry_bits);
  // FP64 payloads must round-trip bit for bit, not just approximately —
  // the cache's digest contract depends on it.
  EXPECT_EQ(std::memcmp(back.x.data(), m.x.data(),
                        m.x.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(back.g.data(), m.g.data(),
                        m.g.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(back.drdx.data(), m.drdx.data(),
                        m.drdx.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(back.bm.data(), m.bm.data(),
                        m.bm.size() * sizeof(double)), 0);
}

TEST(SetupBundleIo, MeshRejectsTruncatedAndCorruptPayloads) {
  const Mesh m = test_mesh();
  std::vector<std::uint8_t> bytes;
  tsem::serialize_mesh(m, &bytes);
  Mesh back;
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> t(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(tsem::deserialize_mesh(t, &back)) << "cut=" << cut;
  }
  // Out-of-range node id: structural validation must reject it.
  std::vector<std::uint8_t> bad = bytes;
  {
    Mesh tmp;
    ASSERT_TRUE(tsem::deserialize_mesh(bad, &tmp));
    tmp.node_id[0] = tmp.nglob + 7;
    tsem::serialize_mesh(tmp, &bad);
  }
  EXPECT_FALSE(tsem::deserialize_mesh(bad, &back));
  // Trailing garbage is a framing defect, not padding.
  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(tsem::deserialize_mesh(bad, &back));
}

TEST(SetupBundleIo, GatherScatterRoundTripsAndValidates) {
  const Mesh m = test_mesh();
  const GatherScatter gs(m.node_id);
  ByteWriter w;
  gs.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();

  GatherScatter back;
  ByteReader r(bytes);
  ASSERT_TRUE(back.deserialize(r));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.nlocal(), gs.nlocal());
  EXPECT_EQ(back.nglobal(), gs.nglobal());
  EXPECT_EQ(back.dense_id(), gs.dense_id());
  // The replayed structure must reduce identically (bitwise): same
  // groups, same member order, same accumulation order.
  std::vector<double> u(gs.nlocal()), v;
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = 1.0 + 0.125 * static_cast<double>(i % 17);
  v = u;
  gs.op(u.data());
  back.op(v.data());
  EXPECT_EQ(std::memcmp(u.data(), v.data(), u.size() * sizeof(double)), 0);

  // Truncation and structural defects are rejected with the object
  // unchanged.
  for (const std::size_t cut : {std::size_t{5}, bytes.size() / 2}) {
    GatherScatter g2;
    ByteReader tr(bytes.data(), cut);
    EXPECT_FALSE(g2.deserialize(tr));
    EXPECT_EQ(g2.nlocal(), 0u);
  }
}

TEST(SetupBundleIo, GhostExchangeRoundTripsAndValidatesShape) {
  const Mesh m = test_mesh(3, 4);
  const int ng1 = 3, nlayers = 1;
  const GhostExchange gx(m, ng1, nlayers);
  ByteWriter w;
  gx.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();

  ByteReader r(bytes);
  const auto back = GhostExchange::deserialize(r, m, ng1, nlayers);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back->nslots(), gx.nslots());
  EXPECT_EQ(back->tang_slots(), gx.tang_slots());

  // exchange() on the replayed pattern is bitwise the builder's.
  std::vector<double> p(static_cast<std::size_t>(m.nelem) * ng1 * ng1);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = std::sin(0.01 * static_cast<double>(i));
  std::vector<double> ga(static_cast<std::size_t>(nlayers) * gx.nslots());
  std::vector<double> gb(ga.size());
  gx.exchange(p.data(), ga.data());
  back->exchange(p.data(), gb.data());
  EXPECT_EQ(std::memcmp(ga.data(), gb.data(), ga.size() * sizeof(double)),
            0);

  // Parameter or mesh mismatches are rejected, not silently adopted.
  {
    ByteReader r2(bytes);
    EXPECT_EQ(GhostExchange::deserialize(r2, m, ng1 + 1, nlayers), nullptr);
  }
  {
    ByteReader r2(bytes);
    EXPECT_EQ(GhostExchange::deserialize(r2, m, ng1, nlayers + 1), nullptr);
  }
  {
    const Mesh other = test_mesh(2, 4);  // fewer elements: nslots mismatch
    ByteReader r2(bytes);
    EXPECT_EQ(GhostExchange::deserialize(r2, other, ng1, nlayers), nullptr);
  }
}

TEST(SetupBundleIo, SchwarzFdmRoundTripsBitwise) {
  const Mesh m = test_mesh(2, 4);
  std::vector<int> fdm_of;
  const auto fdm = tsem::build_schwarz_fdm(m, 3, 1, &fdm_of);
  ASSERT_FALSE(fdm.empty());
  std::vector<std::uint8_t> bytes;
  tsem::serialize_schwarz_fdm(fdm, fdm_of, &bytes);

  std::vector<tsem::FdmLocal> back;
  std::vector<int> back_of;
  ASSERT_TRUE(tsem::deserialize_schwarz_fdm(bytes, m.nelem, &back, &back_of));
  EXPECT_EQ(back_of, fdm_of);
  ASSERT_EQ(back.size(), fdm.size());
  // Serialize the replayed family again: byte-stability implies every
  // FP64 field round-tripped exactly.
  std::vector<std::uint8_t> again;
  tsem::serialize_schwarz_fdm(back, back_of, &again);
  EXPECT_EQ(again, bytes);

  // Wrong element count and out-of-range map entries are rejected.
  EXPECT_FALSE(
      tsem::deserialize_schwarz_fdm(bytes, m.nelem + 1, &back, &back_of));
}

TEST(SetupBundleIo, SpaceReplayCtorMatchesColdBuild) {
  const tsem::Space cold(test_mesh());
  ByteWriter w;
  cold.gs().serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();
  GatherScatter g;
  ByteReader r(bytes);
  ASSERT_TRUE(g.deserialize(r));
  const tsem::Space warm(test_mesh(), std::move(g));
  EXPECT_EQ(warm.mult(), cold.mult());
  EXPECT_EQ(std::memcmp(warm.bm_assembled().data(),
                        cold.bm_assembled().data(),
                        cold.bm_assembled().size() * sizeof(double)), 0);
  EXPECT_EQ(warm.volume(), cold.volume());
}

TEST(SetupBundleIo, BundleFramingRoundTripsAndRejectsDefects) {
  SetupBundle b;
  b.mesh = {1, 2, 3};
  b.fdm = {};  // empty sections are preserved as empty
  b.xxt = {9};
  b.dealias = std::vector<std::uint8_t>(300, 0x5a);
  b.mxm = {7, 7};
  b.ghost = {4, 5};
  b.gs = {6};
  const std::vector<std::uint8_t> enc = tsem::encode_setup_bundle(b);

  SetupBundle back;
  ASSERT_TRUE(tsem::decode_setup_bundle(enc, &back));
  EXPECT_EQ(back.mesh, b.mesh);
  EXPECT_TRUE(back.fdm.empty());
  EXPECT_EQ(back.xxt, b.xxt);
  EXPECT_EQ(back.dealias, b.dealias);
  EXPECT_EQ(back.mxm, b.mxm);
  EXPECT_EQ(back.ghost, b.ghost);
  EXPECT_EQ(back.gs, b.gs);

  // Truncations anywhere must fail cleanly (the zero-copy reader sees
  // whatever a torn publish left behind).
  for (std::size_t cut = 0; cut < enc.size(); cut += 7)
    EXPECT_FALSE(tsem::decode_setup_bundle(enc.data(), cut, &back));
  // Bad magic / bumped version / trailing garbage.
  std::vector<std::uint8_t> bad = enc;
  bad[0] ^= 0xff;
  EXPECT_FALSE(tsem::decode_setup_bundle(bad, &back));
  bad = enc;
  bad[4] ^= 0x01;
  EXPECT_FALSE(tsem::decode_setup_bundle(bad, &back));
  bad = enc;
  bad.push_back(0);
  EXPECT_FALSE(tsem::decode_setup_bundle(bad, &back));
}

// ---- Key derivation -------------------------------------------------

TEST(SetupKeys, DistinctShapesGetDistinctKeys) {
  JobSpec a;
  a.mesh_k = 2;
  a.order = 4;
  JobSpec b = a;

  EXPECT_EQ(tsem::fleet::setup_key_for(a).digest,
            tsem::fleet::setup_key_for(b).digest);
  // Physics parameters must NOT split the key...
  b.reynolds = 99.0;
  b.dt = 0.002;
  b.steps = 1000;
  b.priority = 3;
  EXPECT_EQ(tsem::fleet::setup_key_for(a).digest,
            tsem::fleet::setup_key_for(b).digest);
  // ...but every setup input must.
  b = a;
  b.mesh_k = 3;
  EXPECT_NE(tsem::fleet::setup_key_for(a).text,
            tsem::fleet::setup_key_for(b).text);
  b = a;
  b.order = 5;
  EXPECT_NE(tsem::fleet::setup_key_for(a).text,
            tsem::fleet::setup_key_for(b).text);
  b = a;
  b.dealias = !a.dealias;
  EXPECT_NE(tsem::fleet::setup_key_for(a).text,
            tsem::fleet::setup_key_for(b).text);

  // distinct_setup_keys dedups by digest in first-appearance order.
  JobSpec c = a;
  c.order = 6;
  const auto keys = tsem::fleet::distinct_setup_keys({a, b, a, c, b});
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].digest, tsem::fleet::setup_key_for(a).digest);
  EXPECT_EQ(keys[1].digest, tsem::fleet::setup_key_for(b).digest);
  EXPECT_EQ(keys[2].digest, tsem::fleet::setup_key_for(c).digest);
}

// ---- Slot protocol (single process against the shm arena) -----------

std::vector<JobSpec> two_shape_jobs() {
  JobSpec a;
  a.mesh_k = 2;
  a.order = 4;
  JobSpec b = a;
  b.order = 3;
  return {a, b, a, b};
}

TEST(SetupCacheProtocol, ClaimPublishHitLifecycle) {
  const auto jobs = two_shape_jobs();
  SetupCache cache(jobs);
  cache.seal();
  ASSERT_EQ(cache.nslots(), 2);  // one per distinct key

  const SetupKey key = tsem::fleet::setup_key_for(jobs[0]);
  EXPECT_TRUE(cache.publish_pending(key.digest));

  // First reader claims; a concurrent reader of the same key misses
  // (Building is not worth waiting on from inside a worker).
  SetupCache::Lookup claim = cache.lookup(key);
  ASSERT_EQ(claim.outcome, SetupCache::Outcome::Claimed);
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Miss);
  EXPECT_TRUE(cache.publish_pending(key.digest));

  const std::vector<std::uint8_t> payload(1024, 0xab);
  ASSERT_TRUE(cache.publish(claim.slot, payload));
  EXPECT_FALSE(cache.publish_pending(key.digest));

  SetupCache::Lookup hit = cache.lookup(key);
  ASSERT_EQ(hit.outcome, SetupCache::Outcome::Hit);
  ASSERT_EQ(hit.size, payload.size());
  EXPECT_EQ(std::memcmp(hit.data, payload.data(), payload.size()), 0);
  EXPECT_TRUE(cache.confirm(hit));

  // The other key's slot is untouched.
  const SetupKey other = tsem::fleet::setup_key_for(jobs[1]);
  EXPECT_TRUE(cache.publish_pending(other.digest));
  EXPECT_EQ(cache.lookup(other).outcome, SetupCache::Outcome::Claimed);

  // Eviction invalidates outstanding Hits (generation moved) and makes
  // the key claimable again.
  cache.evict(hit.slot);
  EXPECT_FALSE(cache.confirm(hit));
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Claimed);

  const SetupCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.publishes, 1u);
  EXPECT_EQ(st.evictions, 1u);
}

TEST(SetupCacheProtocol, TornPublishIsRejectedByCrcAndEvicted) {
  const auto jobs = two_shape_jobs();
  SetupCache cache(jobs);
  cache.seal();
  const SetupKey key = tsem::fleet::setup_key_for(jobs[0]);
  SetupCache::Lookup claim = cache.lookup(key);
  ASSERT_EQ(claim.outcome, SetupCache::Outcome::Claimed);

  // Non-constant payload, so a half-copied prefix cannot alias the full
  // payload's checksum.
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  ASSERT_TRUE(cache.publish(claim.slot, payload, /*torn_for_test=*/true));

  // The word says Ready, the CRC says torn: the ENTRY is quarantined
  // (evicted), and the key becomes claimable for a clean rebuild.
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Corrupt);
  EXPECT_GE(cache.stats().evictions, 1u);
  SetupCache::Lookup re = cache.lookup(key);
  ASSERT_EQ(re.outcome, SetupCache::Outcome::Claimed);
  ASSERT_TRUE(cache.publish(re.slot, payload));
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Hit);
}

TEST(SetupCacheProtocol, OversizedPublishDisablesEntry) {
  const auto jobs = two_shape_jobs();
  SetupCache cache(jobs, /*entry_kb_override=*/1);  // 1 KiB slots
  cache.seal();
  const SetupKey key = tsem::fleet::setup_key_for(jobs[0]);
  SetupCache::Lookup claim = cache.lookup(key);
  ASSERT_EQ(claim.outcome, SetupCache::Outcome::Claimed);
  const std::vector<std::uint8_t> big(8192, 1);
  EXPECT_FALSE(cache.publish(claim.slot, big));
  // Disabled: no longer pending, and every later lookup goes cold
  // without claiming (Miss), so the fleet cannot wedge on the key.
  EXPECT_FALSE(cache.publish_pending(key.digest));
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Miss);
  EXPECT_EQ(cache.stats().publish_failures, 1u);
}

TEST(SetupCacheProtocol, DeadBuilderSlotsAreReaped) {
  const auto jobs = two_shape_jobs();
  SetupCache cache(jobs);
  cache.seal();
  const SetupKey key = tsem::fleet::setup_key_for(jobs[0]);
  ASSERT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Claimed);

  // Wrong pid: nothing reaped.  Right pid (in-process, our own): the
  // Building slot returns to Empty and the key is claimable again.
  EXPECT_EQ(cache.evict_dead_builder(999999), 0);
  EXPECT_EQ(cache.evict_dead_builder(static_cast<int>(::getpid())), 1);
  EXPECT_EQ(cache.lookup(key).outcome, SetupCache::Outcome::Claimed);
}

}  // namespace
