// Tests for the rank-parallel execution backend (src/mp/): the fork +
// shared-memory runtime and the three distributed communication patterns
// of the executed tier.  The load-bearing claims are BITWISE: the
// executed gather-scatter, Schwarz ghost exchange, and XXT tree walk
// must reproduce the single-process kernels exactly, on real forked
// ranks moving real bytes through the shm channels.
//
// Fork-safety note: rank functions are serial (no OpenMP) by design —
// see the caveat in mp/runtime.hpp.  Production kernels used as
// references run in the parent only.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <random>
#include <utility>
#include <vector>

#include "core/operators.hpp"
#include "fem/fem.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "mp/dist_gs.hpp"
#include "mp/dist_schwarz.hpp"
#include "mp/dist_xxt.hpp"
#include "mp/overlap.hpp"
#include "mp/runtime.hpp"
#include "mp/shm.hpp"
#include "sim/cluster.hpp"
#include "solver/overlap.hpp"
#include "solver/schwarz.hpp"
#include "solver/xxt.hpp"

namespace {

using tsem::GatherScatter;
using tsem::GsOp;
using tsem::Mesh;
using tsem::mp::DistGhost;
using tsem::mp::DistGsPlan;
using tsem::mp::DistXxtPlan;
using tsem::mp::GsChannels;
using tsem::mp::GsScratch;
using tsem::mp::MpOptions;
using tsem::mp::MpRank;
using tsem::mp::MpSession;
using tsem::mp::OverlapSplit;
using tsem::mp::Phase;

Mesh box3d(int kx, int ky, int kz, int order) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, kx, kx),
                                tsem::linspace(0, ky, ky),
                                tsem::linspace(0, kz, kz));
  return build_mesh(spec, order);
}

// Channels for every neighbor pair of a dist-gs plan, both directions,
// allocated in the session arena (parent, pre-fork).
std::vector<GsChannels> make_gs_channels(MpSession& s, const DistGsPlan& plan,
                                         std::size_t nslots) {
  std::map<std::pair<int, int>, tsem::mp::ShmChannel*> by_pair;
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < rk.nbrs.size(); ++i)
      by_pair[{r, rk.nbrs[i]}] = s.channel(rk.send_ix[i].size(), nslots);
  }
  std::vector<GsChannels> out(static_cast<std::size_t>(plan.nranks));
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (int q : rk.nbrs) {
      out[static_cast<std::size_t>(r)].to.push_back(by_pair.at({r, q}));
      out[static_cast<std::size_t>(r)].from.push_back(by_pair.at({q, r}));
    }
  }
  return out;
}

std::vector<double> random_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> u(n);
  for (auto& v : u) v = dist(rng);
  return u;
}

// Shared-id layout with heavy multiplicity for the pure-gs tests:
// element-major ids that alias across elements like a 1D C0 chain.
std::vector<std::int64_t> chain_ids(int nelem, int npe) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(nelem) * npe);
  for (int e = 0; e < nelem; ++e)
    for (int j = 0; j < npe; ++j)
      ids[static_cast<std::size_t>(e) * npe + j] = e * (npe - 1) + j;
  return ids;
}

// ---- runtime: barrier / allreduce / failure propagation --------------

TEST(MpRuntime, AllreduceIsDeterministicAcrossRanksAndRuns) {
  const int P = 4, reps = 40;
  MpOptions opt;
  opt.nranks = P;
  MpSession session(opt);
  double* results = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  // Inputs flow through shm so parent and ranks sum the SAME doubles —
  // recomputing an expression on both sides would let FP contraction
  // differences masquerade as runtime bugs.
  double* inputs = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  const auto vals = random_field(static_cast<std::size_t>(P) * reps, 3);
  std::memcpy(inputs, vals.data(), vals.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        for (int i = 0; i < reps; ++i) {
          const double mine =
              inputs[static_cast<std::size_t>(ctx.rank()) * reps + i];
          double sum = 0.0;
          if (!ctx.allreduce_sum(mine, &sum)) return 1;
          results[static_cast<std::size_t>(ctx.rank()) * reps + i] = sum;
        }
        return ctx.barrier() ? 0 : 1;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  for (int i = 0; i < reps; ++i) {
    // The contract is ascending-rank summation, bitwise on every rank.
    double expect = 0.0;
    for (int r = 0; r < P; ++r)
      expect += vals[static_cast<std::size_t>(r) * reps + i];
    for (int r = 0; r < P; ++r)
      ASSERT_EQ(results[static_cast<std::size_t>(r) * reps + i], expect)
          << "rank " << r << " rep " << i;
  }
}

TEST(MpRuntime, RankFailureConvertsBlockedPeersToErrorNotHang) {
  MpOptions opt;
  opt.nranks = 2;
  opt.comm_timeout_ms = 10000;  // abort flag should unblock far sooner
  MpSession session(opt);
  auto* ch = session.channel(4);

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        if (ctx.rank() == 1) return 7;  // fail without ever sending
        double buf[4];
        return ctx.recv(ch, buf, 4) ? 0 : 2;  // must unblock via abort
      },
      &err);
  EXPECT_FALSE(ok);
  EXPECT_NE(err.find("rank 1"), std::string::npos) << err;
}

TEST(MpRuntime, ChannelRingCarriesBackToBackMessages) {
  MpOptions opt;
  opt.nranks = 2;
  MpSession session(opt);
  const int msgs = 8, words = 3;
  auto* ch = session.channel(words, /*nslots=*/2);  // ring smaller than msgs
  double* got = session.shared_doubles(static_cast<std::size_t>(msgs) * words);

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        if (ctx.rank() == 0) {
          double buf[words];
          for (int m = 0; m < msgs; ++m) {
            for (int w = 0; w < words; ++w) buf[w] = 100.0 * m + w;
            if (!ctx.send(ch, buf, words)) return 1;
          }
          return 0;
        }
        for (int m = 0; m < msgs; ++m)
          if (!ctx.recv(ch, got + static_cast<std::size_t>(m) * words, words))
            return 1;
        return 0;
      },
      &err);
  ASSERT_TRUE(ok) << err;
  for (int m = 0; m < msgs; ++m)
    for (int w = 0; w < words; ++w)
      EXPECT_EQ(got[static_cast<std::size_t>(m) * words + w], 100.0 * m + w);
}

TEST(MpRuntime, PhaseTimersAggregatePerRank) {
  MpOptions opt;
  opt.nranks = 2;
  MpSession session(opt);
  std::string err;
  ASSERT_TRUE(session.run(
      [&](MpRank& ctx) {
        ctx.phase_add(Phase::Gs, 0.25 * (ctx.rank() + 1));
        ctx.phase_add(Phase::Gs, 0.25 * (ctx.rank() + 1));
        ctx.phase_add(Phase::Coarse, 1.0);
        return 0;
      },
      &err))
      << err;
  EXPECT_DOUBLE_EQ(session.phase_seconds(0, Phase::Gs), 0.5);
  EXPECT_DOUBLE_EQ(session.phase_seconds(1, Phase::Gs), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Gs), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Coarse), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Compute), 0.0);
}

// ---- distributed gather-scatter --------------------------------------

TEST(DistGs, ReferenceExecutorBitwiseMatchesProductionAllOps) {
  const int nelem = 24, npe = 5, nranks = 4;
  const auto ids = chain_ids(nelem, npe);
  std::vector<int> elem_rank(nelem);
  for (int e = 0; e < nelem; ++e) elem_rank[e] = e % nranks;  // scattered
  const DistGsPlan plan = tsem::mp::build_dist_gs(ids, npe, elem_rank, nranks);
  ASSERT_EQ(plan.nglobal, ids.size());

  const GatherScatter gs(ids);
  for (GsOp op : {GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max}) {
    const auto u0 = random_field(ids.size(), 42);
    std::vector<double> a = u0, b = u0;
    gs.op(a.data(), op);
    tsem::mp::dist_gs_reference(plan, b.data(), op);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "op " << static_cast<int>(op);
  }
}

TEST(DistGs, PlanNeighborsMatchCommProfileAndWordsDominate) {
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 8;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  for (int p : {2, 4, 8}) {
    const auto sched = sim.schedule(p);
    const DistGsPlan plan =
        tsem::mp::build_dist_gs(m.node_id, npe, sched.elem_rank, p);
    for (int r = 0; r < p; ++r) {
      const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
      int nbrs = 0;
      for (int q = 0; q < p; ++q) {
        const std::int64_t prof = sched.gs.pair_words(r, q);
        const auto it = std::find(rk.nbrs.begin(), rk.nbrs.end(), q);
        if (prof > 0) {
          // Same pair structure; raw copies carry at least the profile's
          // one-word-per-shared-id volume (dist_gs.hpp, bitwise contract).
          ASSERT_NE(it, rk.nbrs.end()) << "P" << p << " pair " << r << "," << q;
          const std::size_t i =
              static_cast<std::size_t>(it - rk.nbrs.begin());
          EXPECT_GE(static_cast<std::int64_t>(rk.send_ix[i].size()), prof);
          ++nbrs;
        } else {
          EXPECT_EQ(it, rk.nbrs.end());
        }
      }
      EXPECT_EQ(nbrs, static_cast<int>(rk.nbrs.size()));
    }
  }
}

TEST(DistGs, ExecutedRanksBitwiseMatchProductionOnRsbPartition) {
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);

  for (int p : {2, 4}) {
    const auto sched = sim.schedule(p);
    const DistGsPlan plan =
        tsem::mp::build_dist_gs(m.node_id, npe, sched.elem_rank, p);

    for (GsOp op : {GsOp::Add, GsOp::Max}) {
      MpOptions opt;
      opt.nranks = p;
      MpSession session(opt);
      const auto channels = make_gs_channels(session, plan, 1);
      double* u_shared = session.shared_doubles(plan.nglobal);
      double* out_shared = session.shared_doubles(plan.nglobal);
      const auto u0 = random_field(plan.nglobal, 7 + p);
      std::memcpy(u_shared, u0.data(), plan.nglobal * sizeof(double));

      std::string err;
      const bool ok = session.run(
          [&](MpRank& ctx) {
            const auto& rk =
                plan.ranks[static_cast<std::size_t>(ctx.rank())];
            std::vector<double> u(rk.nlocal);
            for (std::size_t l = 0; l < rk.nlocal; ++l)
              u[l] = u_shared[plan.global_index(ctx.rank(), l)];
            GsScratch scratch;
            // begin/finish split: the interior reduce happens while
            // neighbor messages are nominally in flight.
            if (!tsem::mp::dist_gs_begin(
                    rk, ctx, channels[static_cast<std::size_t>(ctx.rank())],
                    u.data(), op, scratch))
              return 1;
            if (!tsem::mp::dist_gs_finish(
                    rk, ctx, channels[static_cast<std::size_t>(ctx.rank())],
                    u.data(), op, scratch))
              return 1;
            for (std::size_t l = 0; l < rk.nlocal; ++l)
              out_shared[plan.global_index(ctx.rank(), l)] = u[l];
            return 0;
          },
          &err);
      ASSERT_TRUE(ok) << "P" << p << ": " << err;

      std::vector<double> ref = u0;
      GatherScatter(m.node_id).op(ref.data(), op);
      ASSERT_EQ(0, std::memcmp(ref.data(), out_shared,
                               plan.nglobal * sizeof(double)))
          << "P" << p << " op " << static_cast<int>(op);
    }
  }
}

// ---- distributed Schwarz ghost exchange ------------------------------

TEST(DistSchwarz, ExecutedExchangeAndScatterAddBitwiseMatchProduction) {
  const Mesh m = box3d(4, 2, 2, 4);
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.schwarz_overlap = 2;  // multi-layer: exercises the channel rings
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  const tsem::GhostExchange& gx = *sim.ghost_exchange();
  const auto sched = sim.schedule(4);

  const DistGhost ghost(gx, sched.elem_rank, 4);
  const std::size_t npe_press = ghost.npress_per_elem();
  const std::size_t spe =
      static_cast<std::size_t>(2 * gx.dim()) * gx.tang_slots();
  const std::size_t np_glob = static_cast<std::size_t>(m.nelem) * npe_press;
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();

  MpOptions opt;
  opt.nranks = 4;
  MpSession session(opt);
  const auto channels =
      make_gs_channels(session, ghost.plan(),
                       static_cast<std::size_t>(gx.nlayers()));
  double* p_shared = session.shared_doubles(np_glob);
  double* ghost_shared = session.shared_doubles(ng_glob);
  double* v_shared = session.shared_doubles(ng_glob);
  double* pacc_shared = session.shared_doubles(np_glob);

  const auto p0 = random_field(np_glob, 11);
  const auto v0 = random_field(ng_glob, 13);
  std::memcpy(p_shared, p0.data(), np_glob * sizeof(double));
  std::memcpy(v_shared, v0.data(), ng_glob * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        const int r = ctx.rank();
        const auto& rk = ghost.plan().ranks[static_cast<std::size_t>(r)];
        const std::size_t ns = rk.nlocal;
        std::vector<double> p_loc(rk.elems.size() * npe_press);
        std::vector<double> g_loc(static_cast<std::size_t>(gx.nlayers()) * ns);
        std::vector<double> v_loc(g_loc.size());
        for (std::size_t e = 0; e < rk.elems.size(); ++e) {
          std::memcpy(p_loc.data() + e * npe_press,
                      p_shared + static_cast<std::size_t>(rk.elems[e]) *
                                     npe_press,
                      npe_press * sizeof(double));
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(
                v_loc.data() + static_cast<std::size_t>(l) * ns + e * spe,
                v_shared + static_cast<std::size_t>(l) * gx.nslots() +
                    static_cast<std::size_t>(rk.elems[e]) * spe,
                spe * sizeof(double));
        }
        DistGhost::Scratch scratch;
        const GsChannels& ch = channels[static_cast<std::size_t>(r)];
        // Overlapped form: all layers in flight, then a barrier standing
        // in for interior compute, then completion.
        if (!ghost.exchange_begin(r, ctx, ch, p_loc.data(), scratch)) return 1;
        if (!ctx.barrier()) return 1;
        if (!ghost.exchange_finish(r, ctx, ch, p_loc.data(), g_loc.data(),
                                   scratch))
          return 1;
        for (std::size_t e = 0; e < rk.elems.size(); ++e)
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(
                ghost_shared + static_cast<std::size_t>(l) * gx.nslots() +
                    static_cast<std::size_t>(rk.elems[e]) * spe,
                g_loc.data() + static_cast<std::size_t>(l) * ns + e * spe,
                spe * sizeof(double));

        if (!ghost.scatter_add(r, ctx, ch, v_loc.data(), p_loc.data(),
                               scratch))
          return 2;
        for (std::size_t e = 0; e < rk.elems.size(); ++e)
          std::memcpy(pacc_shared +
                          static_cast<std::size_t>(rk.elems[e]) * npe_press,
                      p_loc.data() + e * npe_press,
                      npe_press * sizeof(double));
        return 0;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  std::vector<double> ghost_ref(ng_glob);
  gx.exchange(p0.data(), ghost_ref.data());
  ASSERT_EQ(0, std::memcmp(ghost_ref.data(), ghost_shared,
                           ng_glob * sizeof(double)));

  std::vector<double> p_ref = p0;
  gx.scatter_add(v0.data(), p_ref.data());
  ASSERT_EQ(0,
            std::memcmp(p_ref.data(), pacc_shared, np_glob * sizeof(double)));
}

// ---- distributed XXT -------------------------------------------------

TEST(DistXxt, ExecutedTreeWalkBitwiseMatchesReferenceAndSolvesA) {
  const int nx = 20, n = nx * nx, P = 4;
  const auto a = tsem::poisson5(nx, nx);
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }
  const auto nd = tsem::nested_dissection(a, x, y, z, 4);
  const tsem::XxtSolver xxt(a, nd);

  DistXxtPlan plan = tsem::mp::build_dist_xxt(xxt, P);
  ASSERT_EQ(plan.levels, 2);

  // Schedule fidelity: the executed per-level fan-in words are exactly
  // the odd-edge carries of the measured tree (edge_msg_words heap), and
  // never exceed the billed per-level maxima (which also cover the
  // even-child edges a colocated parent absorbs for free).
  const auto& edges = xxt.edge_msg_words();
  const auto billed = xxt.level_msg_words_at(plan.levels);
  ASSERT_EQ(static_cast<int>(plan.level_max_words.size()), plan.levels);
  for (int s = 0; s < plan.levels; ++s) {
    std::int64_t odd_max = 0;
    const int base = 1 << (plan.levels - s);
    for (int m = 1; m < base; m += 2)
      odd_max = std::max(odd_max, edges[static_cast<std::size_t>(base + m)]);
    EXPECT_EQ(plan.level_max_words[static_cast<std::size_t>(s)], odd_max)
        << "level " << s;
    EXPECT_LE(plan.level_max_words[static_cast<std::size_t>(s)],
              billed[static_cast<std::size_t>(plan.levels - 1 - s)]);
  }

  // Every dof owned by exactly one rank.
  {
    std::vector<int> owner(static_cast<std::size_t>(n), -1);
    for (const auto& rk : plan.ranks)
      for (auto d : rk.owned) {
        ASSERT_EQ(owner[static_cast<std::size_t>(d)], -1);
        owner[static_cast<std::size_t>(d)] = rk.rank;
      }
    for (int d = 0; d < n; ++d)
      ASSERT_EQ(owner[static_cast<std::size_t>(d)], plan.rank_of_dof[d]);
  }

  const auto b = random_field(static_cast<std::size_t>(n), 23);
  std::vector<double> ref(static_cast<std::size_t>(n));
  tsem::mp::dist_xxt_reference(plan, b.data(), ref.data());

  MpOptions opt;
  opt.nranks = P;
  MpSession session(opt);
  plan.attach_channels(session);
  double* b_shared = session.shared_doubles(static_cast<std::size_t>(n));
  double* out_shared = session.shared_doubles(static_cast<std::size_t>(n));
  std::memcpy(b_shared, b.data(), b.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        tsem::mp::XxtScratch scratch;
        return tsem::mp::dist_xxt_solve(plan, ctx.rank(), ctx, b_shared,
                                        out_shared, scratch)
                   ? 0
                   : 1;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  // Executed == single-process reference, bitwise.
  ASSERT_EQ(0, std::memcmp(ref.data(), out_shared,
                           static_cast<std::size_t>(n) * sizeof(double)));

  // And it actually solves A0 x = b (association differs from the
  // sequential solver, so this one is a tolerance check).
  std::vector<double> seq(static_cast<std::size_t>(n));
  xxt.solve(b.data(), seq.data());
  double maxerr = 0.0;
  for (int i = 0; i < n; ++i)
    maxerr = std::max(maxerr, std::fabs(seq[static_cast<std::size_t>(i)] -
                                        out_shared[i]));
  EXPECT_LT(maxerr, 1e-8);
}

// ---- overlap engine --------------------------------------------------

// Expected classification computed independently of the plan: an element
// is boundary iff one of its dof ids also appears on an element owned by
// a different rank (cross-rank shared dof).
std::vector<char> expected_boundary(const std::vector<std::int64_t>& ids,
                                    int npe,
                                    const std::vector<int>& elem_rank) {
  const int nelem = static_cast<int>(elem_rank.size());
  std::map<std::int64_t, std::pair<int, bool>> seen;  // id -> (rank, multi)
  for (int e = 0; e < nelem; ++e)
    for (int j = 0; j < npe; ++j) {
      const std::int64_t id = ids[static_cast<std::size_t>(e) * npe + j];
      auto [it, fresh] = seen.emplace(id, std::make_pair(elem_rank[e], false));
      if (!fresh && it->second.first != elem_rank[e]) it->second.second = true;
    }
  std::vector<char> bnd(static_cast<std::size_t>(nelem), 0);
  for (int e = 0; e < nelem; ++e)
    for (int j = 0; j < npe; ++j)
      if (seen[ids[static_cast<std::size_t>(e) * npe + j]].second) {
        bnd[static_cast<std::size_t>(e)] = 1;
        break;
      }
  return bnd;
}

TEST(Overlap, ClassifierCoversElementsOnceWithSharedDofBoundary) {
  struct Case {
    std::vector<std::int64_t> ids;
    int npe;
    std::vector<int> elem_rank;
    int p;
  };
  std::vector<Case> cases;
  {
    // Random partition of the chain layout (scattered ranks).
    Case c;
    const int nelem = 30, p = 5;
    c.npe = 4;
    c.ids = chain_ids(nelem, c.npe);
    c.p = p;
    std::mt19937 rng(99);
    for (int e = 0; e < nelem; ++e)
      c.elem_rank.push_back(static_cast<int>(rng() % p));
    cases.push_back(std::move(c));
  }
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe_m = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  for (int p : {2, 4}) {
    Case c;
    c.ids = m.node_id;
    c.npe = npe_m;
    c.elem_rank = sim.schedule(p).elem_rank;
    c.p = p;
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    const DistGsPlan plan =
        tsem::mp::build_dist_gs(c.ids, c.npe, c.elem_rank, c.p);
    const auto bnd = expected_boundary(c.ids, c.npe, c.elem_rank);
    for (int r = 0; r < c.p; ++r) {
      const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
      const OverlapSplit split = tsem::mp::classify_elements(rk, c.npe);
      // Every local element exactly once, both lists ascending.
      EXPECT_TRUE(std::is_sorted(split.interior.begin(), split.interior.end()));
      EXPECT_TRUE(std::is_sorted(split.boundary.begin(), split.boundary.end()));
      std::vector<std::int32_t> all = split.interior;
      all.insert(all.end(), split.boundary.begin(), split.boundary.end());
      std::sort(all.begin(), all.end());
      ASSERT_EQ(all.size(), rk.elems.size());
      for (std::size_t i = 0; i < all.size(); ++i)
        ASSERT_EQ(all[i], static_cast<std::int32_t>(i));
      // Boundary exactly the elements touching a cross-rank shared dof.
      for (std::int32_t le : split.interior)
        EXPECT_FALSE(bnd[static_cast<std::size_t>(rk.elems[le])])
            << "P" << c.p << " rank " << r << " elem " << rk.elems[le];
      for (std::int32_t le : split.boundary)
        EXPECT_TRUE(bnd[static_cast<std::size_t>(rk.elems[le])])
            << "P" << c.p << " rank " << r << " elem " << rk.elems[le];
    }
  }
}

TEST(Overlap, SplitElementSweepsReproduceFullKernelsBitwise) {
  // The element-list kernels swept boundary-then-interior over every
  // rank must reproduce the full OpenMP element loop bitwise — the
  // disjoint-blocks half of the overlap bitwise argument.
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  const auto sched = sim.schedule(4);
  const DistGsPlan plan =
      tsem::mp::build_dist_gs(m.node_id, npe, sched.elem_rank, 4);

  const auto u0 = random_field(m.node_id.size(), 31);
  tsem::TensorWork work;
  std::vector<double> w_full(m.node_id.size());
  tsem::apply_helmholtz_local(m, 1.0, 0.5, u0.data(), w_full.data(), work);
  std::vector<double> a_full(m.node_id.size());
  tsem::apply_stiffness_local(m, u0.data(), a_full.data(), work);

  std::vector<double> w_split(m.node_id.size(), -1.0);
  std::vector<double> a_split(m.node_id.size(), -1.0);
  for (int r = 0; r < 4; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    const OverlapSplit split = tsem::mp::classify_elements(rk, npe);
    for (const auto* list : {&split.boundary, &split.interior}) {
      std::vector<std::int32_t> geo(list->size());
      for (std::size_t i = 0; i < list->size(); ++i)
        geo[i] = rk.elems[(*list)[i]];
      tsem::apply_helmholtz_local_elems(m, 1.0, 0.5, geo.data(), nullptr,
                                        geo.size(), u0.data(),
                                        w_split.data(), work);
      tsem::apply_stiffness_local_elems(m, geo.data(), nullptr, geo.size(),
                                        u0.data(), a_split.data(), work);
    }
  }
  EXPECT_EQ(0, std::memcmp(w_full.data(), w_split.data(),
                           w_full.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(a_full.data(), a_split.data(),
                           a_full.size() * sizeof(double)));
}

// One forked overlapped-gs run: compute w = 1.5 u + elem_id per element
// block through the overlap driver, return the assembled global field
// (and optionally each rank's exchange seconds).
std::vector<double> run_overlapped_gs(const std::vector<std::int64_t>& ids,
                                      int npe,
                                      const std::vector<int>& elem_rank,
                                      int p, bool overlapped,
                                      const std::vector<double>& u0,
                                      std::vector<double>* exchange_s) {
  const DistGsPlan plan = tsem::mp::build_dist_gs(ids, npe, elem_rank, p);
  std::vector<OverlapSplit> splits;
  for (int r = 0; r < p; ++r)
    splits.push_back(
        tsem::mp::classify_elements(plan.ranks[static_cast<std::size_t>(r)],
                                    npe));
  MpOptions opt;
  opt.nranks = p;
  MpSession session(opt);
  const auto channels = make_gs_channels(session, plan, 1);
  double* u_shared = session.shared_doubles(plan.nglobal);
  double* out_shared = session.shared_doubles(plan.nglobal);
  double* tx_shared = session.shared_doubles(static_cast<std::size_t>(p));
  std::memcpy(u_shared, u0.data(), plan.nglobal * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        const int r = ctx.rank();
        const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
        const auto& split = splits[static_cast<std::size_t>(r)];
        std::vector<double> u(rk.nlocal), w(rk.nlocal);
        for (std::size_t l = 0; l < rk.nlocal; ++l)
          u[l] = u_shared[plan.global_index(r, l)];
        const auto compute = [&](const std::int32_t* ls, std::size_t nn) {
          for (std::size_t i = 0; i < nn; ++i) {
            const std::size_t le = static_cast<std::size_t>(ls[i]);
            const double ge = rk.elems[le];
            for (int j = 0; j < npe; ++j)
              w[le * static_cast<std::size_t>(npe) + j] =
                  1.5 * u[le * static_cast<std::size_t>(npe) + j] + ge;
          }
        };
        GsScratch scratch;
        tsem::mp::OverlapTimes ot;
        if (!tsem::mp::overlapped_gs_apply(
                rk, split, ctx, channels[static_cast<std::size_t>(r)],
                w.data(), GsOp::Add, scratch, compute, overlapped, &ot))
          return 1;
        tx_shared[r] = ot.exchange;
        for (std::size_t l = 0; l < rk.nlocal; ++l)
          out_shared[plan.global_index(r, l)] = w[l];
        return 0;
      },
      &err);
  EXPECT_TRUE(ok) << err;
  if (exchange_s) exchange_s->assign(tx_shared, tx_shared + p);
  return std::vector<double>(out_shared, out_shared + plan.nglobal);
}

TEST(Overlap, GsApplyOverlappedBitwiseEqualsSerializedAndProduction) {
  struct Case {
    std::vector<std::int64_t> ids;
    int npe;
    std::vector<int> elem_rank;
    int p;
  };
  std::vector<Case> cases;
  {
    // Random partition over the chain layout at P=3.
    Case c;
    const int nelem = 30;
    c.npe = 4;
    c.p = 3;
    c.ids = chain_ids(nelem, c.npe);
    std::mt19937 rng(17);
    for (int e = 0; e < nelem; ++e)
      c.elem_rank.push_back(static_cast<int>(rng() % c.p));
    cases.push_back(std::move(c));
  }
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe_m = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  for (int p : {2, 4}) {
    Case c;
    c.ids = m.node_id;
    c.npe = npe_m;
    c.elem_rank = sim.schedule(p).elem_rank;
    c.p = p;
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    const std::size_t n = c.ids.size();
    const auto u0 = random_field(n, 53u + static_cast<unsigned>(c.p));
    const auto ser = run_overlapped_gs(c.ids, c.npe, c.elem_rank, c.p,
                                       false, u0, nullptr);
    const auto ovl = run_overlapped_gs(c.ids, c.npe, c.elem_rank, c.p,
                                       true, u0, nullptr);
    // Production reference: same per-element compute on the global
    // element-major field, then the single-process gather-scatter.
    std::vector<double> ref(n);
    const int nelem = static_cast<int>(c.elem_rank.size());
    for (int e = 0; e < nelem; ++e)
      for (int j = 0; j < c.npe; ++j) {
        const std::size_t g = static_cast<std::size_t>(e) * c.npe + j;
        ref[g] = 1.5 * u0[g] + static_cast<double>(e);
      }
    GatherScatter(c.ids).op(ref.data(), GsOp::Add);
    ASSERT_EQ(0, std::memcmp(ser.data(), ref.data(), n * sizeof(double)))
        << "serialized vs production, P" << c.p;
    ASSERT_EQ(0, std::memcmp(ovl.data(), ser.data(), n * sizeof(double)))
        << "overlapped vs serialized, P" << c.p;
  }
}

TEST(Overlap, SlowNeighborFinishBlocksForLateMessages) {
  // Rank 1 delays every publish by 20ms (TSEM_MP_SEND_DELAY seam): the
  // overlapped schedule must still produce bitwise-correct results —
  // finish blocks for the late messages — and rank 0's exchange wait
  // must actually absorb the delay.
  const int nelem = 16, npe = 4, p = 2;
  const auto ids = chain_ids(nelem, npe);
  std::vector<int> elem_rank(nelem);
  for (int e = 0; e < nelem; ++e) elem_rank[e] = e < nelem / 2 ? 0 : 1;
  const auto u0 = random_field(ids.size(), 61);

  ASSERT_EQ(0, ::setenv("TSEM_MP_SEND_DELAY", "1:20000", 1));
  std::vector<double> exchange_s;
  const auto ovl =
      run_overlapped_gs(ids, npe, elem_rank, p, true, u0, &exchange_s);
  ::unsetenv("TSEM_MP_SEND_DELAY");

  std::vector<double> ref(ids.size());
  for (int e = 0; e < nelem; ++e)
    for (int j = 0; j < npe; ++j) {
      const std::size_t g = static_cast<std::size_t>(e) * npe + j;
      ref[g] = 1.5 * u0[g] + static_cast<double>(e);
    }
  GatherScatter(ids).op(ref.data(), GsOp::Add);
  ASSERT_EQ(0,
            std::memcmp(ovl.data(), ref.data(), ref.size() * sizeof(double)));
  ASSERT_EQ(exchange_s.size(), static_cast<std::size_t>(p));
  EXPECT_GE(exchange_s[0], 0.010) << "rank 0 did not wait for the slow "
                                     "neighbor's delayed publish";
}

// One forked overlapped Schwarz run (ghost exchange + local FDM solves
// through the overlap driver); returns the global ghost volume and local
// solution component.
struct SchwarzExecOut {
  std::vector<double> ghost, z;
};
SchwarzExecOut run_overlapped_schwarz(const tsem::GhostExchange& gx,
                                      const DistGhost& ghost,
                                      const tsem::SchwarzLocalSolver& sl,
                                      const std::vector<double>& p0, int p,
                                      bool overlapped) {
  const std::size_t npe_press = ghost.npress_per_elem();
  const std::size_t spe =
      static_cast<std::size_t>(2 * gx.dim()) * gx.tang_slots();
  const std::size_t np_glob = p0.size();
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();
  std::vector<OverlapSplit> splits;
  for (int r = 0; r < p; ++r)
    splits.push_back(tsem::mp::classify_elements(
        ghost.plan().ranks[static_cast<std::size_t>(r)], ghost.plan().npe));

  MpOptions opt;
  opt.nranks = p;
  MpSession session(opt);
  const auto channels = make_gs_channels(
      session, ghost.plan(), static_cast<std::size_t>(gx.nlayers()));
  double* p_shared = session.shared_doubles(np_glob);
  double* ghost_shared = session.shared_doubles(ng_glob);
  double* z_shared = session.shared_doubles(np_glob);
  std::memcpy(p_shared, p0.data(), np_glob * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        const int r = ctx.rank();
        const auto& rk = ghost.plan().ranks[static_cast<std::size_t>(r)];
        const auto& split = splits[static_cast<std::size_t>(r)];
        const std::size_t ns = rk.nlocal;
        const std::size_t ne = rk.elems.size();
        std::vector<double> p_loc(ne * npe_press);
        std::vector<double> z_loc(ne * npe_press, 0.0);
        std::vector<double> g_loc(static_cast<std::size_t>(gx.nlayers()) * ns);
        std::vector<double> v_loc(g_loc.size());
        std::vector<double> lwork(sl.work_doubles());
        std::vector<std::int32_t> geo;
        for (std::size_t e = 0; e < ne; ++e)
          std::memcpy(p_loc.data() + e * npe_press,
                      p_shared + static_cast<std::size_t>(rk.elems[e]) *
                                     npe_press,
                      npe_press * sizeof(double));
        const auto solve = [&](const std::int32_t* ls, std::size_t nn) {
          if (nn == 0) return;
          geo.resize(nn);
          for (std::size_t i = 0; i < nn; ++i) geo[i] = rk.elems[ls[i]];
          sl.solve_elems(geo.data(), ls, nn, p_loc.data(), g_loc.data(), ns,
                         z_loc.data(), v_loc.data(), lwork.data());
        };
        DistGhost::Scratch scratch;
        tsem::mp::OverlapTimes ot;
        if (!tsem::mp::overlapped_ghost_exchange(
                ghost, split, r, ctx, channels[static_cast<std::size_t>(r)],
                p_loc.data(), g_loc.data(), scratch, solve, overlapped, &ot))
          return 1;
        for (std::size_t e = 0; e < ne; ++e) {
          std::memcpy(z_shared + static_cast<std::size_t>(rk.elems[e]) *
                                     npe_press,
                      z_loc.data() + e * npe_press,
                      npe_press * sizeof(double));
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(
                ghost_shared + static_cast<std::size_t>(l) * gx.nslots() +
                    static_cast<std::size_t>(rk.elems[e]) * spe,
                g_loc.data() + static_cast<std::size_t>(l) * ns + e * spe,
                spe * sizeof(double));
        }
        return 0;
      },
      &err);
  EXPECT_TRUE(ok) << err;
  SchwarzExecOut out;
  out.ghost.assign(ghost_shared, ghost_shared + ng_glob);
  out.z.assign(z_shared, z_shared + np_glob);
  return out;
}

TEST(Overlap, SchwarzGhostExchangeOverlappedBitwiseWithLocalSolves) {
  const Mesh m = box3d(4, 2, 2, 3);  // ng1 = 2, overlap 1
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.schwarz_overlap = 1;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  const tsem::GhostExchange& gx = *sim.ghost_exchange();
  const tsem::SchwarzLocalSolver sl(m, gx.ng1(), gx.nlayers());

  std::size_t npress = 1;
  for (int d = 0; d < gx.dim(); ++d)
    npress *= static_cast<std::size_t>(gx.ng1());
  const std::size_t np_glob = static_cast<std::size_t>(m.nelem) * npress;
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();
  const auto p0 = random_field(np_glob, 43);

  // Production reference: single-process exchange + full element sweep
  // of the same local solver.
  std::vector<double> ghost_ref(ng_glob);
  gx.exchange(p0.data(), ghost_ref.data());
  std::vector<double> z_ref(np_glob, 0.0);
  {
    std::vector<std::int32_t> all(static_cast<std::size_t>(m.nelem));
    std::iota(all.begin(), all.end(), 0);
    std::vector<double> vout(ng_glob);
    std::vector<double> lwork(sl.work_doubles());
    sl.solve_elems(all.data(), nullptr, all.size(), p0.data(),
                   ghost_ref.data(), gx.nslots(), z_ref.data(), vout.data(),
                   lwork.data());
  }

  for (int p : {2, 4}) {
    const auto sched = sim.schedule(p);
    const DistGhost ghost(gx, sched.elem_rank, p);
    const auto ser = run_overlapped_schwarz(gx, ghost, sl, p0, p, false);
    const auto ovl = run_overlapped_schwarz(gx, ghost, sl, p0, p, true);
    ASSERT_EQ(0, std::memcmp(ser.ghost.data(), ghost_ref.data(),
                             ng_glob * sizeof(double)))
        << "P" << p;
    ASSERT_EQ(0, std::memcmp(ser.z.data(), z_ref.data(),
                             np_glob * sizeof(double)))
        << "P" << p;
    ASSERT_EQ(0, std::memcmp(ovl.ghost.data(), ser.ghost.data(),
                             ng_glob * sizeof(double)))
        << "P" << p;
    ASSERT_EQ(0, std::memcmp(ovl.z.data(), ser.z.data(),
                             np_glob * sizeof(double)))
        << "P" << p;
  }
}

// ---- oversubscription ------------------------------------------------

TEST(MpRuntime, OversubscribedRanksKeepRingBackpressureAndDeterminism) {
  // pexec = 2 x cores (at least 8): more ranks than cores, so every spin
  // wait runs against descheduled peers.  The ring (nslots=2, far fewer
  // than the message count) exercises producer backpressure; the
  // stretched watchdog must produce no false kills; the allreduce must
  // stay bitwise deterministic on every rank.
  const long ncores = ::sysconf(_SC_NPROCESSORS_ONLN);
  const int P = static_cast<int>(std::max(8L, 2 * std::max(1L, ncores)));
  const int reps = 20, words = 4;

  MpOptions opt;
  opt.nranks = P;
  opt.watchdog_ms = 30000;  // stretched by the session's oversub factor
  opt.comm_timeout_ms = 60000;
  MpSession session(opt);
  EXPECT_GE(session.oversubscription(), 2);
  EXPECT_GE(session.options().watchdog_ms,
            30000 * session.oversubscription());

  // Ring topology: rank r sends to (r+1) % P, receives from (r-1+P) % P.
  std::vector<tsem::mp::ShmChannel*> ring;
  for (int r = 0; r < P; ++r) ring.push_back(session.channel(words, 2));
  double* sums = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  const auto vals = random_field(static_cast<std::size_t>(P) * reps, 71);
  double* inputs = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  std::memcpy(inputs, vals.data(), vals.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        const int r = ctx.rank();
        const int prev = (r - 1 + P) % P;
        double out[words], in[words];
        for (int i = 0; i < reps; ++i) {
          for (int w = 0; w < words; ++w) out[w] = 1000.0 * r + 10.0 * i + w;
          if (!ctx.send(ring[static_cast<std::size_t>(r)], out, words))
            return 1;
          if (!ctx.recv(ring[static_cast<std::size_t>(prev)], in, words))
            return 2;
          for (int w = 0; w < words; ++w)
            if (in[w] != 1000.0 * prev + 10.0 * i + w) return 3;
          double sum = 0.0;
          if (!ctx.allreduce_sum(
                  inputs[static_cast<std::size_t>(r) * reps + i], &sum))
            return 4;
          sums[static_cast<std::size_t>(r) * reps + i] = sum;
        }
        return 0;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  for (int i = 0; i < reps; ++i) {
    double expect = 0.0;
    for (int r = 0; r < P; ++r)
      expect += vals[static_cast<std::size_t>(r) * reps + i];
    for (int r = 0; r < P; ++r)
      ASSERT_EQ(sums[static_cast<std::size_t>(r) * reps + i], expect)
          << "rank " << r << " rep " << i;
  }
}

}  // namespace
