// Tests for the rank-parallel execution backend (src/mp/): the fork +
// shared-memory runtime and the three distributed communication patterns
// of the executed tier.  The load-bearing claims are BITWISE: the
// executed gather-scatter, Schwarz ghost exchange, and XXT tree walk
// must reproduce the single-process kernels exactly, on real forked
// ranks moving real bytes through the shm channels.
//
// Fork-safety note: rank functions are serial (no OpenMP) by design —
// see the caveat in mp/runtime.hpp.  Production kernels used as
// references run in the parent only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "fem/fem.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "mp/dist_gs.hpp"
#include "mp/dist_schwarz.hpp"
#include "mp/dist_xxt.hpp"
#include "mp/runtime.hpp"
#include "mp/shm.hpp"
#include "sim/cluster.hpp"
#include "solver/overlap.hpp"
#include "solver/xxt.hpp"

namespace {

using tsem::GatherScatter;
using tsem::GsOp;
using tsem::Mesh;
using tsem::mp::DistGhost;
using tsem::mp::DistGsPlan;
using tsem::mp::DistXxtPlan;
using tsem::mp::GsChannels;
using tsem::mp::GsScratch;
using tsem::mp::MpOptions;
using tsem::mp::MpRank;
using tsem::mp::MpSession;
using tsem::mp::Phase;

Mesh box3d(int kx, int ky, int kz, int order) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, kx, kx),
                                tsem::linspace(0, ky, ky),
                                tsem::linspace(0, kz, kz));
  return build_mesh(spec, order);
}

// Channels for every neighbor pair of a dist-gs plan, both directions,
// allocated in the session arena (parent, pre-fork).
std::vector<GsChannels> make_gs_channels(MpSession& s, const DistGsPlan& plan,
                                         std::size_t nslots) {
  std::map<std::pair<int, int>, tsem::mp::ShmChannel*> by_pair;
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < rk.nbrs.size(); ++i)
      by_pair[{r, rk.nbrs[i]}] = s.channel(rk.send_ix[i].size(), nslots);
  }
  std::vector<GsChannels> out(static_cast<std::size_t>(plan.nranks));
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (int q : rk.nbrs) {
      out[static_cast<std::size_t>(r)].to.push_back(by_pair.at({r, q}));
      out[static_cast<std::size_t>(r)].from.push_back(by_pair.at({q, r}));
    }
  }
  return out;
}

std::vector<double> random_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> u(n);
  for (auto& v : u) v = dist(rng);
  return u;
}

// Shared-id layout with heavy multiplicity for the pure-gs tests:
// element-major ids that alias across elements like a 1D C0 chain.
std::vector<std::int64_t> chain_ids(int nelem, int npe) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(nelem) * npe);
  for (int e = 0; e < nelem; ++e)
    for (int j = 0; j < npe; ++j)
      ids[static_cast<std::size_t>(e) * npe + j] = e * (npe - 1) + j;
  return ids;
}

// ---- runtime: barrier / allreduce / failure propagation --------------

TEST(MpRuntime, AllreduceIsDeterministicAcrossRanksAndRuns) {
  const int P = 4, reps = 40;
  MpOptions opt;
  opt.nranks = P;
  MpSession session(opt);
  double* results = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  // Inputs flow through shm so parent and ranks sum the SAME doubles —
  // recomputing an expression on both sides would let FP contraction
  // differences masquerade as runtime bugs.
  double* inputs = session.shared_doubles(static_cast<std::size_t>(P) * reps);
  const auto vals = random_field(static_cast<std::size_t>(P) * reps, 3);
  std::memcpy(inputs, vals.data(), vals.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        for (int i = 0; i < reps; ++i) {
          const double mine =
              inputs[static_cast<std::size_t>(ctx.rank()) * reps + i];
          double sum = 0.0;
          if (!ctx.allreduce_sum(mine, &sum)) return 1;
          results[static_cast<std::size_t>(ctx.rank()) * reps + i] = sum;
        }
        return ctx.barrier() ? 0 : 1;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  for (int i = 0; i < reps; ++i) {
    // The contract is ascending-rank summation, bitwise on every rank.
    double expect = 0.0;
    for (int r = 0; r < P; ++r)
      expect += vals[static_cast<std::size_t>(r) * reps + i];
    for (int r = 0; r < P; ++r)
      ASSERT_EQ(results[static_cast<std::size_t>(r) * reps + i], expect)
          << "rank " << r << " rep " << i;
  }
}

TEST(MpRuntime, RankFailureConvertsBlockedPeersToErrorNotHang) {
  MpOptions opt;
  opt.nranks = 2;
  opt.comm_timeout_ms = 10000;  // abort flag should unblock far sooner
  MpSession session(opt);
  auto* ch = session.channel(4);

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        if (ctx.rank() == 1) return 7;  // fail without ever sending
        double buf[4];
        return ctx.recv(ch, buf, 4) ? 0 : 2;  // must unblock via abort
      },
      &err);
  EXPECT_FALSE(ok);
  EXPECT_NE(err.find("rank 1"), std::string::npos) << err;
}

TEST(MpRuntime, ChannelRingCarriesBackToBackMessages) {
  MpOptions opt;
  opt.nranks = 2;
  MpSession session(opt);
  const int msgs = 8, words = 3;
  auto* ch = session.channel(words, /*nslots=*/2);  // ring smaller than msgs
  double* got = session.shared_doubles(static_cast<std::size_t>(msgs) * words);

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        if (ctx.rank() == 0) {
          double buf[words];
          for (int m = 0; m < msgs; ++m) {
            for (int w = 0; w < words; ++w) buf[w] = 100.0 * m + w;
            if (!ctx.send(ch, buf, words)) return 1;
          }
          return 0;
        }
        for (int m = 0; m < msgs; ++m)
          if (!ctx.recv(ch, got + static_cast<std::size_t>(m) * words, words))
            return 1;
        return 0;
      },
      &err);
  ASSERT_TRUE(ok) << err;
  for (int m = 0; m < msgs; ++m)
    for (int w = 0; w < words; ++w)
      EXPECT_EQ(got[static_cast<std::size_t>(m) * words + w], 100.0 * m + w);
}

TEST(MpRuntime, PhaseTimersAggregatePerRank) {
  MpOptions opt;
  opt.nranks = 2;
  MpSession session(opt);
  std::string err;
  ASSERT_TRUE(session.run(
      [&](MpRank& ctx) {
        ctx.phase_add(Phase::Gs, 0.25 * (ctx.rank() + 1));
        ctx.phase_add(Phase::Gs, 0.25 * (ctx.rank() + 1));
        ctx.phase_add(Phase::Coarse, 1.0);
        return 0;
      },
      &err))
      << err;
  EXPECT_DOUBLE_EQ(session.phase_seconds(0, Phase::Gs), 0.5);
  EXPECT_DOUBLE_EQ(session.phase_seconds(1, Phase::Gs), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Gs), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Coarse), 1.0);
  EXPECT_DOUBLE_EQ(session.phase_max_seconds(Phase::Compute), 0.0);
}

// ---- distributed gather-scatter --------------------------------------

TEST(DistGs, ReferenceExecutorBitwiseMatchesProductionAllOps) {
  const int nelem = 24, npe = 5, nranks = 4;
  const auto ids = chain_ids(nelem, npe);
  std::vector<int> elem_rank(nelem);
  for (int e = 0; e < nelem; ++e) elem_rank[e] = e % nranks;  // scattered
  const DistGsPlan plan = tsem::mp::build_dist_gs(ids, npe, elem_rank, nranks);
  ASSERT_EQ(plan.nglobal, ids.size());

  const GatherScatter gs(ids);
  for (GsOp op : {GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max}) {
    const auto u0 = random_field(ids.size(), 42);
    std::vector<double> a = u0, b = u0;
    gs.op(a.data(), op);
    tsem::mp::dist_gs_reference(plan, b.data(), op);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "op " << static_cast<int>(op);
  }
}

TEST(DistGs, PlanNeighborsMatchCommProfileAndWordsDominate) {
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 8;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  for (int p : {2, 4, 8}) {
    const auto sched = sim.schedule(p);
    const DistGsPlan plan =
        tsem::mp::build_dist_gs(m.node_id, npe, sched.elem_rank, p);
    for (int r = 0; r < p; ++r) {
      const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
      int nbrs = 0;
      for (int q = 0; q < p; ++q) {
        const std::int64_t prof = sched.gs.pair_words(r, q);
        const auto it = std::find(rk.nbrs.begin(), rk.nbrs.end(), q);
        if (prof > 0) {
          // Same pair structure; raw copies carry at least the profile's
          // one-word-per-shared-id volume (dist_gs.hpp, bitwise contract).
          ASSERT_NE(it, rk.nbrs.end()) << "P" << p << " pair " << r << "," << q;
          const std::size_t i =
              static_cast<std::size_t>(it - rk.nbrs.begin());
          EXPECT_GE(static_cast<std::int64_t>(rk.send_ix[i].size()), prof);
          ++nbrs;
        } else {
          EXPECT_EQ(it, rk.nbrs.end());
        }
      }
      EXPECT_EQ(nbrs, static_cast<int>(rk.nbrs.size()));
    }
  }
}

TEST(DistGs, ExecutedRanksBitwiseMatchProductionOnRsbPartition) {
  const Mesh m = box3d(4, 2, 2, 3);
  const int npe = static_cast<int>(m.node_id.size()) / m.nelem;
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_schwarz = false;
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);

  for (int p : {2, 4}) {
    const auto sched = sim.schedule(p);
    const DistGsPlan plan =
        tsem::mp::build_dist_gs(m.node_id, npe, sched.elem_rank, p);

    for (GsOp op : {GsOp::Add, GsOp::Max}) {
      MpOptions opt;
      opt.nranks = p;
      MpSession session(opt);
      const auto channels = make_gs_channels(session, plan, 1);
      double* u_shared = session.shared_doubles(plan.nglobal);
      double* out_shared = session.shared_doubles(plan.nglobal);
      const auto u0 = random_field(plan.nglobal, 7 + p);
      std::memcpy(u_shared, u0.data(), plan.nglobal * sizeof(double));

      std::string err;
      const bool ok = session.run(
          [&](MpRank& ctx) {
            const auto& rk =
                plan.ranks[static_cast<std::size_t>(ctx.rank())];
            std::vector<double> u(rk.nlocal);
            for (std::size_t l = 0; l < rk.nlocal; ++l)
              u[l] = u_shared[plan.global_index(ctx.rank(), l)];
            GsScratch scratch;
            // begin/finish split: the interior reduce happens while
            // neighbor messages are nominally in flight.
            if (!tsem::mp::dist_gs_begin(
                    rk, ctx, channels[static_cast<std::size_t>(ctx.rank())],
                    u.data(), op, scratch))
              return 1;
            if (!tsem::mp::dist_gs_finish(
                    rk, ctx, channels[static_cast<std::size_t>(ctx.rank())],
                    u.data(), op, scratch))
              return 1;
            for (std::size_t l = 0; l < rk.nlocal; ++l)
              out_shared[plan.global_index(ctx.rank(), l)] = u[l];
            return 0;
          },
          &err);
      ASSERT_TRUE(ok) << "P" << p << ": " << err;

      std::vector<double> ref = u0;
      GatherScatter(m.node_id).op(ref.data(), op);
      ASSERT_EQ(0, std::memcmp(ref.data(), out_shared,
                               plan.nglobal * sizeof(double)))
          << "P" << p << " op " << static_cast<int>(op);
    }
  }
}

// ---- distributed Schwarz ghost exchange ------------------------------

TEST(DistSchwarz, ExecutedExchangeAndScatterAddBitwiseMatchProduction) {
  const Mesh m = box3d(4, 2, 2, 4);
  tsem::ClusterOptions copt;
  copt.max_ranks = 4;
  copt.schwarz_overlap = 2;  // multi-layer: exercises the channel rings
  copt.build_coarse = false;
  const tsem::ClusterSim sim(m, copt);
  const tsem::GhostExchange& gx = *sim.ghost_exchange();
  const auto sched = sim.schedule(4);

  const DistGhost ghost(gx, sched.elem_rank, 4);
  const std::size_t npe_press = ghost.npress_per_elem();
  const std::size_t spe =
      static_cast<std::size_t>(2 * gx.dim()) * gx.tang_slots();
  const std::size_t np_glob = static_cast<std::size_t>(m.nelem) * npe_press;
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();

  MpOptions opt;
  opt.nranks = 4;
  MpSession session(opt);
  const auto channels =
      make_gs_channels(session, ghost.plan(),
                       static_cast<std::size_t>(gx.nlayers()));
  double* p_shared = session.shared_doubles(np_glob);
  double* ghost_shared = session.shared_doubles(ng_glob);
  double* v_shared = session.shared_doubles(ng_glob);
  double* pacc_shared = session.shared_doubles(np_glob);

  const auto p0 = random_field(np_glob, 11);
  const auto v0 = random_field(ng_glob, 13);
  std::memcpy(p_shared, p0.data(), np_glob * sizeof(double));
  std::memcpy(v_shared, v0.data(), ng_glob * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        const int r = ctx.rank();
        const auto& rk = ghost.plan().ranks[static_cast<std::size_t>(r)];
        const std::size_t ns = rk.nlocal;
        std::vector<double> p_loc(rk.elems.size() * npe_press);
        std::vector<double> g_loc(static_cast<std::size_t>(gx.nlayers()) * ns);
        std::vector<double> v_loc(g_loc.size());
        for (std::size_t e = 0; e < rk.elems.size(); ++e) {
          std::memcpy(p_loc.data() + e * npe_press,
                      p_shared + static_cast<std::size_t>(rk.elems[e]) *
                                     npe_press,
                      npe_press * sizeof(double));
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(
                v_loc.data() + static_cast<std::size_t>(l) * ns + e * spe,
                v_shared + static_cast<std::size_t>(l) * gx.nslots() +
                    static_cast<std::size_t>(rk.elems[e]) * spe,
                spe * sizeof(double));
        }
        DistGhost::Scratch scratch;
        const GsChannels& ch = channels[static_cast<std::size_t>(r)];
        // Overlapped form: all layers in flight, then a barrier standing
        // in for interior compute, then completion.
        if (!ghost.exchange_begin(r, ctx, ch, p_loc.data(), scratch)) return 1;
        if (!ctx.barrier()) return 1;
        if (!ghost.exchange_finish(r, ctx, ch, p_loc.data(), g_loc.data(),
                                   scratch))
          return 1;
        for (std::size_t e = 0; e < rk.elems.size(); ++e)
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(
                ghost_shared + static_cast<std::size_t>(l) * gx.nslots() +
                    static_cast<std::size_t>(rk.elems[e]) * spe,
                g_loc.data() + static_cast<std::size_t>(l) * ns + e * spe,
                spe * sizeof(double));

        if (!ghost.scatter_add(r, ctx, ch, v_loc.data(), p_loc.data(),
                               scratch))
          return 2;
        for (std::size_t e = 0; e < rk.elems.size(); ++e)
          std::memcpy(pacc_shared +
                          static_cast<std::size_t>(rk.elems[e]) * npe_press,
                      p_loc.data() + e * npe_press,
                      npe_press * sizeof(double));
        return 0;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  std::vector<double> ghost_ref(ng_glob);
  gx.exchange(p0.data(), ghost_ref.data());
  ASSERT_EQ(0, std::memcmp(ghost_ref.data(), ghost_shared,
                           ng_glob * sizeof(double)));

  std::vector<double> p_ref = p0;
  gx.scatter_add(v0.data(), p_ref.data());
  ASSERT_EQ(0,
            std::memcmp(p_ref.data(), pacc_shared, np_glob * sizeof(double)));
}

// ---- distributed XXT -------------------------------------------------

TEST(DistXxt, ExecutedTreeWalkBitwiseMatchesReferenceAndSolvesA) {
  const int nx = 20, n = nx * nx, P = 4;
  const auto a = tsem::poisson5(nx, nx);
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }
  const auto nd = tsem::nested_dissection(a, x, y, z, 4);
  const tsem::XxtSolver xxt(a, nd);

  DistXxtPlan plan = tsem::mp::build_dist_xxt(xxt, P);
  ASSERT_EQ(plan.levels, 2);

  // Schedule fidelity: the executed per-level fan-in words are exactly
  // the odd-edge carries of the measured tree (edge_msg_words heap), and
  // never exceed the billed per-level maxima (which also cover the
  // even-child edges a colocated parent absorbs for free).
  const auto& edges = xxt.edge_msg_words();
  const auto billed = xxt.level_msg_words_at(plan.levels);
  ASSERT_EQ(static_cast<int>(plan.level_max_words.size()), plan.levels);
  for (int s = 0; s < plan.levels; ++s) {
    std::int64_t odd_max = 0;
    const int base = 1 << (plan.levels - s);
    for (int m = 1; m < base; m += 2)
      odd_max = std::max(odd_max, edges[static_cast<std::size_t>(base + m)]);
    EXPECT_EQ(plan.level_max_words[static_cast<std::size_t>(s)], odd_max)
        << "level " << s;
    EXPECT_LE(plan.level_max_words[static_cast<std::size_t>(s)],
              billed[static_cast<std::size_t>(plan.levels - 1 - s)]);
  }

  // Every dof owned by exactly one rank.
  {
    std::vector<int> owner(static_cast<std::size_t>(n), -1);
    for (const auto& rk : plan.ranks)
      for (auto d : rk.owned) {
        ASSERT_EQ(owner[static_cast<std::size_t>(d)], -1);
        owner[static_cast<std::size_t>(d)] = rk.rank;
      }
    for (int d = 0; d < n; ++d)
      ASSERT_EQ(owner[static_cast<std::size_t>(d)], plan.rank_of_dof[d]);
  }

  const auto b = random_field(static_cast<std::size_t>(n), 23);
  std::vector<double> ref(static_cast<std::size_t>(n));
  tsem::mp::dist_xxt_reference(plan, b.data(), ref.data());

  MpOptions opt;
  opt.nranks = P;
  MpSession session(opt);
  plan.attach_channels(session);
  double* b_shared = session.shared_doubles(static_cast<std::size_t>(n));
  double* out_shared = session.shared_doubles(static_cast<std::size_t>(n));
  std::memcpy(b_shared, b.data(), b.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](MpRank& ctx) {
        tsem::mp::XxtScratch scratch;
        return tsem::mp::dist_xxt_solve(plan, ctx.rank(), ctx, b_shared,
                                        out_shared, scratch)
                   ? 0
                   : 1;
      },
      &err);
  ASSERT_TRUE(ok) << err;

  // Executed == single-process reference, bitwise.
  ASSERT_EQ(0, std::memcmp(ref.data(), out_shared,
                           static_cast<std::size_t>(n) * sizeof(double)));

  // And it actually solves A0 x = b (association differs from the
  // sequential solver, so this one is a tolerance check).
  std::vector<double> seq(static_cast<std::size_t>(n));
  xxt.solve(b.data(), seq.data());
  double maxerr = 0.0;
  for (int i = 0; i < n; ++i)
    maxerr = std::max(maxerr, std::fabs(seq[static_cast<std::size_t>(i)] -
                                        out_shared[i]));
  EXPECT_LT(maxerr, 1e-8);
}

}  // namespace
