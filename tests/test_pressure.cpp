// Tests for the P_N x P_{N-2} coupling: divergence/gradient adjointness,
// exactness, and the consistent Poisson operator E.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "solver/cg.hpp"

namespace {

using tsem::build_mesh;
using tsem::PressureSystem;
using tsem::Space;

std::vector<double> random_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Pressure, DivergenceExactForLinearSolenoidalField) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 2, 2));
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0xF));
  std::vector<double> ux(s.nlocal()), uy(s.nlocal());
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < ux.size(); ++i) {
    ux[i] = 2.0 * m.x[i] + m.y[i];
    uy[i] = -2.0 * m.y[i] + 0.5;
  }
  const double* u[2] = {ux.data(), uy.data()};
  std::vector<double> dp(p.nloc());
  p.divergence(u, dp.data());
  for (double v : dp) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Pressure, DivergenceMatchesAnalyticWeighted) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0xF));
  std::vector<double> ux(s.nlocal()), uy(s.nlocal());
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < ux.size(); ++i) {
    ux[i] = m.x[i] * m.x[i];  // div = 2x + 3y^2
    uy[i] = m.y[i] * m.y[i] * m.y[i];
  }
  const double* u[2] = {ux.data(), uy.data()};
  std::vector<double> dp(p.nloc());
  p.divergence(u, dp.data());
  // (D u)_q = w_q J_q div(u)(xi_q).
  const auto& pbm = p.pbm();
  for (std::size_t q = 0; q < dp.size(); ++q) {
    const double div = 2.0 * p.px()[q] + 3.0 * p.py()[q] * p.py()[q];
    EXPECT_NEAR(dp[q], pbm[q] * div, 1e-12);
  }
}

TEST(Pressure, GradientIsTransposeOfDivergence) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 8, 1.3);
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0x3));
  const auto uxv = random_field(s.nlocal(), 3);
  const auto uyv = random_field(s.nlocal(), 5);
  const auto pv = random_field(p.nloc(), 7);
  const double* u[2] = {uxv.data(), uyv.data()};
  std::vector<double> du(p.nloc());
  p.divergence(u, du.data());
  double lhs = 0.0;
  for (std::size_t q = 0; q < du.size(); ++q) lhs += du[q] * pv[q];

  std::vector<double> wx(s.nlocal()), wy(s.nlocal());
  double* w[2] = {wx.data(), wy.data()};
  p.gradient_t(pv.data(), w);
  double rhs = 0.0;
  for (std::size_t i = 0; i < wx.size(); ++i)
    rhs += wx[i] * uxv[i] + wy[i] * uyv[i];
  EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::fabs(lhs)));
}

TEST(Pressure, GradientTranspose3D) {
  auto spec = tsem::bump_channel_spec(tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 1, 1), 1.0, 1.0, 0.6,
                                      0.2);
  Space s(build_mesh(spec, 5));
  PressureSystem p(s, s.make_mask(0x3F));
  const auto ux = random_field(s.nlocal(), 11);
  const auto uy = random_field(s.nlocal(), 13);
  const auto uz = random_field(s.nlocal(), 17);
  const auto pv = random_field(p.nloc(), 19);
  const double* u[3] = {ux.data(), uy.data(), uz.data()};
  std::vector<double> du(p.nloc());
  p.divergence(u, du.data());
  double lhs = 0.0;
  for (std::size_t q = 0; q < du.size(); ++q) lhs += du[q] * pv[q];
  std::vector<double> wx(s.nlocal()), wy(s.nlocal()), wz(s.nlocal());
  double* w[3] = {wx.data(), wy.data(), wz.data()};
  p.gradient_t(pv.data(), w);
  double rhs = 0.0;
  for (std::size_t i = 0; i < wx.size(); ++i)
    rhs += wx[i] * ux[i] + wy[i] * uy[i] + wz[i] * uz[i];
  EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::fabs(lhs)));
}

TEST(Pressure, EIsSymmetricAndAnnihilatesConstants) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  Space s(build_mesh(spec, 5));
  PressureSystem p(s, s.make_mask(0xF));  // enclosed: Dirichlet everywhere
  const std::size_t n = p.nloc();

  std::vector<double> ones(n, 1.0), e1(n);
  p.apply_E(ones.data(), e1.data());
  for (double v : e1) EXPECT_NEAR(v, 0.0, 1e-11);

  const auto a = random_field(n, 23);
  const auto b = random_field(n, 29);
  std::vector<double> ea(n), eb(n);
  p.apply_E(a.data(), ea.data());
  p.apply_E(b.data(), eb.data());
  double ab = 0.0, ba = 0.0, aa = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ab += b[i] * ea[i];
    ba += a[i] * eb[i];
    aa += a[i] * ea[i];
  }
  EXPECT_NEAR(ab, ba, 1e-9 * (1.0 + std::fabs(ab)));
  EXPECT_GT(aa, -1e-12);  // positive semidefinite
}

TEST(Pressure, ESolveConvergesWithIdentityPrecond) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0xF));
  const std::size_t n = p.nloc();

  // Manufactured consistent RHS: g = E p* for a mean-free p*.
  auto pstar = random_field(n, 31);
  p.remove_mean(pstar.data());
  std::vector<double> g(n), sol(n, 0.0);
  p.apply_E(pstar.data(), g.data());

  auto apply = [&](const double* x, double* y) { p.apply_E(x, y); };
  auto dot = [](const double* x, const double* y) {
    (void)x;
    return 0.0;  // replaced below
  };
  (void)dot;
  auto pdot = [n](const double* x, const double* y) {
    double s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) s2 += x[i] * y[i];
    return s2;
  };
  tsem::CgOptions opt;
  opt.tol = 1e-10;
  opt.max_iter = 3000;
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), pdot, g.data(),
                       sol.data(), opt);
  EXPECT_TRUE(res.converged);
  p.remove_mean(sol.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sol[i], pstar[i], 1e-6);
}

}  // namespace
