// Unit tests for quadrature rules, interpolation/differentiation matrices,
// the 1D basis, and the Fischer-Mullen filter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "poly/basis1d.hpp"
#include "poly/filter.hpp"
#include "poly/lagrange.hpp"
#include "poly/legendre.hpp"
#include "poly/quadrature.hpp"

namespace {

double integrate(const tsem::Quadrature& q, double (*f)(double)) {
  double s = 0.0;
  for (std::size_t i = 0; i < q.z.size(); ++i) s += q.w[i] * f(q.z[i]);
  return s;
}

TEST(Legendre, KnownValues) {
  // P_2(x) = (3x^2 - 1)/2, P_3(x) = (5x^3 - 3x)/2.
  const double x = 0.3;
  EXPECT_NEAR(tsem::legendre(2, x).p, 0.5 * (3 * x * x - 1), 1e-15);
  EXPECT_NEAR(tsem::legendre(3, x).p, 0.5 * (5 * x * x * x - 3 * x), 1e-15);
  EXPECT_NEAR(tsem::legendre(3, x).dp, 0.5 * (15 * x * x - 3), 1e-14);
  // Endpoint derivative P_n'(1) = n(n+1)/2.
  EXPECT_NEAR(tsem::legendre(6, 1.0).dp, 21.0, 1e-12);
}

class QuadratureExactness : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureExactness, GaussLobattoExactThrough2Nminus3) {
  const int npts = GetParam();
  const auto q = tsem::gauss_lobatto(npts);
  const int maxdeg = 2 * npts - 3;
  for (int deg = 0; deg <= maxdeg; ++deg) {
    double s = 0.0;
    for (int i = 0; i < npts; ++i) s += q.w[i] * std::pow(q.z[i], deg);
    const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
    EXPECT_NEAR(s, exact, 1e-12) << "npts=" << npts << " deg=" << deg;
  }
}

TEST_P(QuadratureExactness, GaussExactThrough2Nminus1) {
  const int npts = GetParam();
  const auto q = tsem::gauss(npts);
  const int maxdeg = 2 * npts - 1;
  for (int deg = 0; deg <= maxdeg; ++deg) {
    double s = 0.0;
    for (int i = 0; i < npts; ++i) s += q.w[i] * std::pow(q.z[i], deg);
    const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
    EXPECT_NEAR(s, exact, 1e-12) << "npts=" << npts << " deg=" << deg;
  }
}

TEST_P(QuadratureExactness, NodesAscendingSymmetricWeightsPositive) {
  const int npts = GetParam();
  for (const auto& q : {tsem::gauss_lobatto(npts), tsem::gauss(npts)}) {
    for (int i = 1; i < npts; ++i) EXPECT_LT(q.z[i - 1], q.z[i]);
    double wsum = 0.0;
    for (int i = 0; i < npts; ++i) {
      EXPECT_GT(q.w[i], 0.0);
      EXPECT_NEAR(q.z[i], -q.z[npts - 1 - i], 1e-13);
      wsum += q.w[i];
    }
    EXPECT_NEAR(wsum, 2.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureExactness,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 17, 24));

TEST(GaussLobatto, MatchesTabulatedN4) {
  // GLL points for N=4: 0, +-sqrt(3/7), +-1; weights 32/45, 49/90, 1/10.
  const auto q = tsem::gauss_lobatto(5);
  EXPECT_NEAR(q.z[1], -std::sqrt(3.0 / 7.0), 1e-14);
  EXPECT_NEAR(q.z[2], 0.0, 1e-14);
  EXPECT_NEAR(q.w[0], 0.1, 1e-14);
  EXPECT_NEAR(q.w[1], 49.0 / 90.0, 1e-14);
  EXPECT_NEAR(q.w[2], 32.0 / 45.0, 1e-14);
}

TEST(Quadrature, SmoothIntegrandConverges) {
  const auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - std::exp(-1.0);
  EXPECT_NEAR(integrate(tsem::gauss_lobatto(10), f), exact, 1e-13);
  EXPECT_NEAR(integrate(tsem::gauss(8), f), exact, 1e-13);
}

TEST(Lagrange, InterpolationReproducesPolynomials) {
  const auto from = tsem::gauss_lobatto(8).z;
  std::vector<double> to = {-0.9, -0.33, 0.0, 0.41, 0.77, 1.0};
  const auto j = tsem::interpolation_matrix(from, to);
  // Degree-7 polynomial is reproduced exactly.
  for (int deg = 0; deg <= 7; ++deg) {
    for (std::size_t i = 0; i < to.size(); ++i) {
      double s = 0.0;
      for (std::size_t c = 0; c < from.size(); ++c)
        s += j[i * from.size() + c] * std::pow(from[c], deg);
      EXPECT_NEAR(s, std::pow(to[i], deg), 1e-11);
    }
  }
}

TEST(Lagrange, InterpolationRowsSumToOne) {
  const auto from = tsem::gauss_lobatto(6).z;
  const std::vector<double> to = {-1.0, -0.5, 0.123, 0.9};
  const auto j = tsem::interpolation_matrix(from, to);
  for (std::size_t i = 0; i < to.size(); ++i) {
    double s = 0.0;
    for (std::size_t c = 0; c < from.size(); ++c) s += j[i * from.size() + c];
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Lagrange, DerivativeMatrixExactForPolynomials) {
  const auto x = tsem::gauss_lobatto(9).z;
  const auto d = tsem::derivative_matrix(x);
  const int n = static_cast<int>(x.size());
  for (int deg = 0; deg <= 8; ++deg) {
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int c = 0; c < n; ++c) s += d[i * n + c] * std::pow(x[c], deg);
      const double exact = deg == 0 ? 0.0 : deg * std::pow(x[i], deg - 1);
      EXPECT_NEAR(s, exact, 1e-10);
    }
  }
}

TEST(Basis1D, StiffnessMatchesQuadratureAndIsSymmetric) {
  const auto& b = tsem::Basis1D::get(7);
  const int n = b.npts();
  // A-hat must be symmetric PSD with nullspace = constants.
  std::vector<double> ones(n, 1.0);
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(b.ahat[i * n + j], b.ahat[j * n + i], 1e-12);
      row += b.ahat[i * n + j] * ones[j];
    }
    EXPECT_NEAR(row, 0.0, 1e-10);
  }
  // Energy of u = x on [-1,1]: integral of (u')^2 = 2.
  double e = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) e += b.z[i] * b.ahat[i * n + j] * b.z[j];
  EXPECT_NEAR(e, 2.0, 1e-12);
}

TEST(Basis1D, CachedInstanceIsStable) {
  const auto* first = &tsem::Basis1D::get(11);
  const auto* second = &tsem::Basis1D::get(11);
  EXPECT_EQ(first, second);
}

TEST(Filter, AlphaZeroIsIdentity) {
  const auto f = tsem::filter_matrix(8, 0.0);
  const int n = 9;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(f[i * n + j], i == j ? 1.0 : 0.0, 1e-14);
}

TEST(Filter, PreservesPolynomialsUpToNminus1) {
  const int order = 9;
  const auto f = tsem::filter_matrix(order, 0.7);
  const auto& z = tsem::Basis1D::get(order).z;
  const int n = order + 1;
  for (int deg = 0; deg < order; ++deg) {
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int j = 0; j < n; ++j) s += f[i * n + j] * std::pow(z[j], deg);
      EXPECT_NEAR(s, std::pow(z[i], deg), 1e-10) << "deg=" << deg;
    }
  }
}

TEST(Filter, FullStrengthAnnihilatesTopMode) {
  // With alpha=1 the result is exactly the degree-(N-1) interpolant:
  // applying the filter twice equals applying it once (projection).
  const int order = 7, n = order + 1;
  const auto f = tsem::filter_matrix(order, 1.0);
  std::vector<double> f2(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        f2[i * n + j] += f[i * n + k] * f[k * n + j];
  for (int i = 0; i < n * n; ++i) EXPECT_NEAR(f2[i], f[i], 1e-11);
}

TEST(Filter, PartialStrengthDampsTopModeByAlpha) {
  // The N-th Legendre mode is an eigenvector of Pi with eigenvalue 0, so
  // F_alpha scales it by exactly (1 - alpha).
  const int order = 6, n = order + 1;
  const double alpha = 0.3;
  const auto f = tsem::filter_matrix(order, alpha);
  const auto& z = tsem::Basis1D::get(order).z;
  std::vector<double> u(n), fu(n, 0.0);
  for (int i = 0; i < n; ++i) u[i] = tsem::legendre(order, z[i]).p;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) fu[i] += f[i * n + j] * u[j];
  // Compare against (1-alpha) * u + alpha * (interpolant of P_N through
  // N-1 grid).  P_N interpolated down and up is NOT zero pointwise, but
  // the difference F u - u must equal alpha * (Pi u - u); verify via the
  // alpha=1 matrix.
  const auto f1 = tsem::filter_matrix(order, 1.0);
  for (int i = 0; i < n; ++i) {
    double piu = 0.0;
    for (int j = 0; j < n; ++j) piu += f1[i * n + j] * u[j];
    EXPECT_NEAR(fu[i], (1.0 - alpha) * u[i] + alpha * piu, 1e-12);
  }
}

}  // namespace
