// Cross-module property sweeps: spectral convergence across dimension,
// order, and mesh deformation; operator identities; solver invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "core/helmholtz.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "fem/fem.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "partition/rsb.hpp"
#include "poly/filter.hpp"
#include "solver/cg.hpp"
#include "solver/coarse.hpp"
#include "solver/schwarz.hpp"
#include "solver/xxt.hpp"
#include "tests/convergence_contract.hpp"

namespace {

using tsem::build_mesh;
using tsem::Space;

// ---- Helmholtz solve exactness across (order, h2, deformation) -------------

struct HelmholtzCase {
  int order;
  double h2;
  bool deformed;
};

class HelmholtzSweep : public ::testing::TestWithParam<HelmholtzCase> {};

TEST_P(HelmholtzSweep, RecoversManufacturedSolution) {
  const auto [order, h2, deformed] = GetParam();
  tsem::MeshSpec2D spec;
  if (deformed) {
    // Smoothly deformed 2x2 box (polynomial maps, conforming).
    for (int ej = 0; ej < 2; ++ej)
      for (int ei = 0; ei < 2; ++ei) {
        const double x0 = ei * 0.5, y0 = ej * 0.5;
        spec.elems.push_back([x0, y0](double r, double s) {
          const double x = x0 + 0.25 * (r + 1.0);
          const double y = y0 + 0.25 * (s + 1.0);
          // shear + bend, vanishing on the outer boundary
          return std::array<double, 2>{
              x + 0.05 * x * (1 - x) * y * (1 - y),
              y + 0.07 * x * (1 - x) * y * (1 - y)};
        });
      }
    spec.x_lo = spec.y_lo = 0.0;
    spec.x_hi = spec.y_hi = 1.0;
    spec.classify = [](double x, double y, double) {
      const double tol = 1e-9;
      if (std::fabs(x) < tol) return tsem::kFaceXLo;
      if (std::fabs(x - 1) < tol) return tsem::kFaceXHi;
      if (std::fabs(y) < tol) return tsem::kFaceYLo;
      return tsem::kFaceYHi;
    };
  } else {
    spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2), tsem::linspace(0, 1, 2));
  }
  Space s(build_mesh(spec, order));
  const auto& m = s.mesh();
  auto mask = s.make_mask(0xF);
  tsem::HelmholtzOp a(s, 1.0, h2, mask);

  // b = A u* for a masked C0 field u*; recover u*.
  std::vector<double> ustar(s.nlocal()), b(s.nlocal()), u(s.nlocal(), 0.0);
  for (std::size_t i = 0; i < ustar.size(); ++i)
    ustar[i] = std::sin(2.1 * m.x[i]) * std::cos(1.3 * m.y[i]);
  s.daverage(ustar.data());
  for (std::size_t i = 0; i < ustar.size(); ++i) ustar[i] *= mask[i];
  a.apply(ustar.data(), b.data());

  tsem::CgOptions opt;
  opt.tol = 1e-12;
  opt.max_iter = 6000;
  auto res = tsem::pcg(
      s.nlocal(), [&](const double* x, double* y) { a.apply(x, y); },
      tsem::jacobi_precond(a.diagonal()),
      [&](const double* x, const double* y) { return s.glsum_dot(x, y); },
      b.data(), u.data(), opt);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(u[i], ustar[i], 1e-8);

  // Same system preconditioned by the FP32 Jacobi diagonal: held to the
  // relaxed convergence contract (tests/convergence_contract.hpp) instead
  // of bitwise equality — iteration count within +2 of an FP64 baseline
  // and the same solution to the outer tolerance scale.  The contract
  // pair runs at a production-representative tolerance; the 1e-12 solve
  // above sits at FP64 roundoff, where any preconditioner perturbation
  // stretches the stagnating tail beyond the contract's scope.
  tsem::CgOptions copt = opt;
  copt.tol = 1e-10;
  std::vector<double> u64(s.nlocal(), 0.0), u32(s.nlocal(), 0.0);
  auto apply_a = [&](const double* x, double* y) { a.apply(x, y); };
  auto dot = [&](const double* x, const double* y) {
    return s.glsum_dot(x, y);
  };
  auto base = tsem::pcg(s.nlocal(), apply_a,
                        tsem::jacobi_precond(a.diagonal()), dot, b.data(),
                        u64.data(), copt);
  const auto& idg32 = a.inv_diagonal_f32();
  auto res32 = tsem::pcg(
      s.nlocal(), apply_a,
      [&](const double* r, double* z) {
        for (std::size_t i = 0; i < idg32.size(); ++i)
          z[i] = static_cast<double>(static_cast<float>(r[i]) * idg32[i]);
      },
      dot, b.data(), u32.data(), copt);
  // +4: the Jacobi diagonal is a weaker preconditioner than Schwarz, so
  // near the tolerance the FP32 demotion costs a couple more iterations
  // than the pressure-solve contract's +2 (see tests/test_precision.cpp).
  EXPECT_CONVERGENCE_CONTRACT(base, res32, 4, copt.tol);
  tsem::testing::expect_solutions_close(u64.data(), u32.data(), s.nlocal(),
                                        1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HelmholtzSweep,
    ::testing::Values(HelmholtzCase{4, 0.0, false},
                      HelmholtzCase{4, 10.0, false},
                      HelmholtzCase{7, 0.0, true},
                      HelmholtzCase{7, 100.0, true},
                      HelmholtzCase{10, 1.0, true},
                      HelmholtzCase{5, 1e4, false}));

// ---- Poisson spectral convergence in 3D -------------------------------------

TEST(PoissonConvergence3D, Spectral) {
  auto err_at = [](int order) {
    auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 2),
                                  tsem::linspace(0, 1, 2),
                                  tsem::linspace(0, 1, 1));
    Space s(build_mesh(spec, order));
    const auto& m = s.mesh();
    auto mask = s.make_mask(0x3F);
    tsem::HelmholtzOp a(s, 1.0, 0.0, mask);
    std::vector<double> uex(s.nlocal()), b(s.nlocal()), u(s.nlocal(), 0.0);
    for (std::size_t i = 0; i < b.size(); ++i) {
      uex[i] = std::sin(M_PI * m.x[i]) * std::sin(M_PI * m.y[i]) *
               std::sin(M_PI * m.z[i]);
      b[i] = 3.0 * M_PI * M_PI * uex[i] * m.bm[i];
    }
    s.dssum(b.data());
    for (std::size_t i = 0; i < b.size(); ++i) b[i] *= mask[i];
    tsem::CgOptions opt;
    opt.tol = 1e-12;
    opt.max_iter = 4000;
    tsem::pcg(
        s.nlocal(), [&](const double* x, double* y) { a.apply(x, y); },
        tsem::jacobi_precond(a.diagonal()),
        [&](const double* x, const double* y) { return s.glsum_dot(x, y); },
        b.data(), u.data(), opt);
    double e = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i)
      e = std::max(e, std::fabs(u[i] - uex[i]));
    return e;
  };
  const double e4 = err_at(4), e8 = err_at(8);
  EXPECT_LT(e8, 1e-3 * e4);
  EXPECT_LT(e8, 1e-7);
}

// ---- E operator invariants across orders ------------------------------------

class EOperator : public ::testing::TestWithParam<int> {};

TEST_P(EOperator, SymmetricPsdAndSolvable) {
  const int order = GetParam();
  auto spec = tsem::annulus_spec(0.7, 1.9, 2, 6, 1.3);
  Space s(build_mesh(spec, order));
  tsem::PressureSystem p(s, s.make_mask(0x3));
  const std::size_t n = p.nloc();
  std::mt19937 rng(order);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(n), b(n), ea(n), eb(n);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  p.apply_E(a.data(), ea.data());
  p.apply_E(b.data(), eb.data());
  double ab = 0, ba = 0, aa = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ab += b[i] * ea[i];
    ba += a[i] * eb[i];
    aa += a[i] * ea[i];
  }
  EXPECT_NEAR(ab, ba, 1e-8 * (1 + std::fabs(ab)));
  EXPECT_GT(aa, -1e-10);

  // Schwarz-preconditioned solve of a manufactured system.
  tsem::SchwarzPrecond prec(p, {});
  std::vector<double> pstar(n), g(n), sol(n, 0.0);
  for (auto& v : pstar) v = dist(rng);
  p.remove_mean_plain(pstar.data());
  p.apply_E(pstar.data(), g.data());
  tsem::CgOptions opt;
  opt.tol = 1e-8;
  opt.relative = true;
  opt.max_iter = 2000;
  auto res = tsem::pcg(
      n,
      [&](const double* x, double* y) {
        p.apply_E(x, y);
        p.remove_mean_plain(y);
      },
      [&](const double* r, double* z) {
        prec.apply(r, z);
        p.remove_mean_plain(z);
      },
      [n](const double* x, const double* y) {
        double s2 = 0;
        for (std::size_t i = 0; i < n; ++i) s2 += x[i] * y[i];
        return s2;
      },
      g.data(), sol.data(), opt);
  // On coarse curved meshes at low order E has near-null pressure modes
  // (weak inf-sup), so sol may differ from pstar along them while being
  // an equally valid pressure: assert instead that the residual is tiny
  // and that the velocity-impacting part D^T (sol - pstar) vanishes.
  EXPECT_LT(res.final_residual, 1e-5 * res.initial_residual + 1e-12);
  const auto mask = s.make_mask(0x3);
  std::vector<double> diff(n), wx(s.nlocal()), wy(s.nlocal());
  for (std::size_t i = 0; i < n; ++i) diff[i] = sol[i] - pstar[i];
  double* w[2] = {wx.data(), wy.data()};
  p.gradient_t(diff.data(), w);
  for (int c = 0; c < 2; ++c) {
    s.gs().op(w[c]);
    for (std::size_t i = 0; i < s.nlocal(); ++i)
      EXPECT_NEAR(mask[i] * w[c][i] * s.bm_inv()[i], 0.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, EOperator, ::testing::Values(5, 7, 9));

// ---- XXT on the unstructured vertex Laplacian -------------------------------

class XxtVertex : public ::testing::TestWithParam<int> {};

TEST_P(XxtVertex, ExactOnPinnedNeumannOperator) {
  const int levels = GetParam();
  auto spec = tsem::annulus_spec(0.6, 2.0, 3, 12, 1.4);
  const auto m = build_mesh(spec, 4);
  const auto a0 = tsem::pin_dof(tsem::q1_vertex_laplacian(m), 0);
  std::vector<double> vx, vy, vz;
  tsem::vertex_coords(m, vx, vy, vz);
  tsem::XxtCoarse xxt(a0, vx, vy, vz, levels);
  tsem::RedundantLuCoarse lu(a0);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> b(a0.n()), s1(a0.n()), s2(a0.n());
  for (auto& v : b) v = dist(rng);
  b[0] = 0.0;
  xxt.solve(b.data(), s1.data());
  lu.solve(b.data(), s2.data());
  for (int i = 0; i < a0.n(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Levels, XxtVertex, ::testing::Values(0, 2, 4, 6));

// ---- filter damping is monotone in alpha ------------------------------------

class FilterSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterSweep, TopModeDampedByExactlyAlpha) {
  const double alpha = GetParam();
  const int order = 8, n = order + 1;
  const auto f = tsem::filter_matrix(order, alpha);
  const auto f1 = tsem::filter_matrix(order, 1.0);
  // F_alpha = (1-alpha) I + alpha Pi, linear in alpha by construction;
  // verify the actual matrix satisfies the affine identity.
  for (int i = 0; i < n * n; ++i) {
    const double eye = (i % (n + 1) == 0) ? 1.0 : 0.0;
    EXPECT_NEAR(f[i], (1.0 - alpha) * eye + alpha * f1[i], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, FilterSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5, 0.8));

// ---- gather-scatter communication conservation across partitioners ----------

class GsProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(GsProfileSweep, PairwiseVolumeIsSymmetricAndConserved) {
  const int nparts = GetParam();
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 8),
                                tsem::linspace(0, 1, 8));
  const auto m = build_mesh(spec, 4);
  const auto part = tsem::block_partition(m.nelem, nparts);
  const auto prof = tsem::gs_comm_profile(m.node_id, m.npe, part, nparts);
  // Every word sent is received: with the symmetric pairwise exchange the
  // total sent must be even and each rank's neighbor count positive when
  // it shares an interface.
  std::int64_t total = 0;
  for (int r = 0; r < nparts; ++r) {
    total += prof.send_words[r];
    if (prof.send_words[r] > 0) {
      EXPECT_GT(prof.neighbors[r], 0);
    }
  }
  EXPECT_EQ(total % 2, 0);
  EXPECT_GT(total, 0);
}

INSTANTIATE_TEST_SUITE_P(Parts, GsProfileSweep, ::testing::Values(2, 4, 8, 16));

// ---- mass conservation under dssum -------------------------------------------

TEST(Conservation, DssumPreservesWeightedIntegral) {
  auto spec = tsem::annulus_spec(0.8, 1.7, 2, 8, 1.1);
  Space s(build_mesh(spec, 6));
  const auto& m = s.mesh();
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> f(s.nlocal());
  for (auto& v : f) v = dist(rng);
  // integrate(B_L f) == glsum-style sum of assembled (B f): both count
  // each global node's quadrature contribution once.
  const double direct = s.integrate(f.data());
  std::vector<double> bf(s.nlocal());
  for (std::size_t i = 0; i < bf.size(); ++i) bf[i] = m.bm[i] * f[i];
  s.dssum(bf.data());
  double assembled = 0.0;
  const auto& mult = s.mult();
  for (std::size_t i = 0; i < bf.size(); ++i) assembled += bf[i] / mult[i];
  // Not equal in general for discontinuous f; make f C0 first.
  std::vector<double> fc = f;
  s.daverage(fc.data());
  const double direct_c = s.integrate(fc.data());
  std::vector<double> bfc(s.nlocal());
  for (std::size_t i = 0; i < bfc.size(); ++i) bfc[i] = m.bm[i] * fc[i];
  s.dssum(bfc.data());
  double assembled_c = 0.0;
  for (std::size_t i = 0; i < bfc.size(); ++i) assembled_c += bfc[i] / mult[i];
  EXPECT_NEAR(assembled_c, direct_c, 1e-10 * (1.0 + std::fabs(direct_c)));
  (void)direct;
  (void)assembled;
}

}  // namespace
