// Bench smoke tests: run the scaling benches at reduced scale, parse the
// emitted terasem-bench-1 JSON with the in-repo reader, and assert the
// schema plus the paper's shape invariants — the measured tier is
// present and its schedule quantities equal an independent ClusterSim
// recomputation on the same mesh, the dual/single speedup lands in the
// paper's band, and the extrapolated tier scales near-linearly from 512
// to 2048 nodes.
//
// TSEM_FIG6_BIN / TSEM_TABLE4_BIN are injected by tests/CMakeLists.txt as
// $<TARGET_FILE:...> of the bench targets.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "obs/json.hpp"
#include "sim/cluster.hpp"

namespace {

using tsem::obs::Json;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Json run_bench(const std::string& bin, const std::string& args,
               const std::string& report_name) {
  const std::string dir = ::testing::TempDir();
  const std::string cmd = "TSEM_BENCH_DIR=\"" + dir + "\" \"" + bin + "\" " +
                          args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;
  const std::string text = slurp(dir + "/BENCH_" + report_name + ".json");
  EXPECT_FALSE(text.empty()) << "no report written by " << cmd;
  Json doc;
  std::string err;
  EXPECT_TRUE(Json::parse(text, &doc, &err)) << err;
  return doc;
}

void check_schema(const Json& doc, const std::string& name) {
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "terasem-bench-1");
  ASSERT_NE(doc.find("name"), nullptr);
  EXPECT_EQ(doc.find("name")->as_string(), name);
  ASSERT_NE(doc.find("meta"), nullptr);
  ASSERT_NE(doc.find("cases"), nullptr);
  ASSERT_TRUE(doc.find("cases")->is_array());
  ASSERT_GT(doc.find("cases")->size(), 0u);
}

const Json* find_case(const Json& doc, const std::string& name) {
  for (const auto& c : doc.find("cases")->items())
    if (c.find("name") && c.find("name")->as_string() == name) return &c;
  return nullptr;
}

double field(const Json& c, const std::string& key) {
  const Json* v = c.find(key);
  EXPECT_NE(v, nullptr) << "missing field " << key;
  return v ? v->as_double() : 0.0;
}

TEST(BenchSmoke, Fig6TiersAndMeasuredScheduleFidelity) {
  const Json doc = run_bench(TSEM_FIG6_BIN, "--pmax 8 --sizes 63 --pexec 2",
                             "fig6_coarse");
  check_schema(doc, "fig6_coarse");

  // ---- executed tier: real forked ranks, bitwise-checked tree walk ----
  ASSERT_NE(doc.find("meta")->find("pexec"), nullptr);
  EXPECT_EQ(doc.find("meta")->find("pexec")->as_int(), 2);
  {
    const Json* c = find_case(doc, "n3969/P2/executed");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("tier")->as_string(), "executed");
    ASSERT_NE(c->find("bitwise_vs_reference"), nullptr);
    EXPECT_TRUE(c->find("bitwise_vs_reference")->as_bool());
    EXPECT_GT(field(*c, "exec_seconds_coarse"), 0.0);
    EXPECT_LT(field(*c, "xxt_err_vs_lu"), 1e-6);
    const Json* words = c->find("xxt_level_words_executed");
    ASSERT_NE(words, nullptr);
    ASSERT_EQ(static_cast<int>(words->size()), 1);  // log2(P) levels
    EXPECT_GT(words->items()[0].as_int(), 0);
  }

  // Both tiers present, split exactly at pmax.
  for (int p = 1; p <= 2048; p *= 2) {
    const Json* c = find_case(doc, "n3969/P" + std::to_string(p));
    ASSERT_NE(c, nullptr) << "P=" << p;
    ASSERT_NE(c->find("tier"), nullptr);
    EXPECT_EQ(c->find("tier")->as_string(),
              p <= 8 ? "measured" : "extrapolated");
    for (const char* key :
         {"sim_seconds_xxt", "sim_seconds_redundant_lu",
          "sim_seconds_distrib_ainv", "sim_seconds_latency_bound"})
      EXPECT_GE(field(*c, key), 0.0);
    if (p <= 8) {
      // The measured tier carries the real factor's schedule and the
      // solve was verified against banded LU inside the bench.
      EXPECT_LT(field(*c, "xxt_err_vs_lu"), 1e-6);
      EXPECT_GT(field(*c, "xxt_nnz"), 0.0);
      const Json* words = c->find("xxt_level_words");
      ASSERT_NE(words, nullptr);
      ASSERT_TRUE(words->is_array());
      int lev = 0;
      while ((1 << lev) < p) ++lev;
      EXPECT_EQ(static_cast<int>(words->size()), lev);
      std::int64_t sum = 0;
      for (const auto& w : words->items()) sum += w.as_int();
      if (p > 1) EXPECT_GT(sum, 0);
      EXPECT_LE(sum, static_cast<std::int64_t>(field(*c, "xxt_msg_words")));
    } else {
      EXPECT_EQ(c->find("xxt_level_words"), nullptr);
    }
  }

  // XXT must beat both baselines at scale even in the extrapolated tier
  // (the paper's headline Fig 6 shape).
  const Json* c2048 = find_case(doc, "n3969/P2048");
  EXPECT_LT(field(*c2048, "sim_seconds_xxt"),
            field(*c2048, "sim_seconds_redundant_lu"));
  EXPECT_LT(field(*c2048, "sim_seconds_xxt"),
            field(*c2048, "sim_seconds_distrib_ainv"));
  EXPECT_GE(field(*c2048, "sim_seconds_xxt"),
            field(*c2048, "sim_seconds_latency_bound"));
}

TEST(BenchSmoke, Table4MeasuredTierMatchesClusterSimAndPaperShape) {
  const std::string args =
      "--order 3 --refine 1 --pmax 16 --pexec 2 --steps 6";
  const Json doc = run_bench(TSEM_TABLE4_BIN, args, "table4_scaling");
  check_schema(doc, "table4_scaling");

  // ---- executed tier: real ranks reproduce every kernel bitwise ----
  {
    EXPECT_EQ(doc.find("meta")->find("pexec")->as_int(), 2);
    const Json* c = find_case(doc, "executed/P2");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("tier")->as_string(), "executed");
    for (const char* key : {"bitwise_gs", "bitwise_schwarz", "bitwise_coarse",
                            "bitwise_allreduce"}) {
      ASSERT_NE(c->find(key), nullptr) << key;
      EXPECT_TRUE(c->find(key)->as_bool()) << key;
    }
    for (const char* key :
         {"exec_seconds_compute", "exec_seconds_gs", "exec_seconds_allreduce",
          "exec_seconds_coarse"})
      EXPECT_GT(field(*c, key), 0.0) << key;
    // Overlapped mode: same kernels through the overlap drivers, bitwise
    // equal to the serialized pass, with its own timing row.
    ASSERT_NE(c->find("bitwise_overlap_vs_serialized"), nullptr);
    EXPECT_TRUE(c->find("bitwise_overlap_vs_serialized")->as_bool());
    for (const char* key :
         {"exec_seconds_compute_overlapped", "exec_seconds_gs_overlapped"})
      EXPECT_GT(field(*c, key), 0.0) << key;
    ASSERT_NE(c->find("overlap_efficiency"), nullptr);
    EXPECT_LE(field(*c, "overlap_efficiency"), 1.0);
    EXPECT_GE(c->find("oversubscription")->as_int(), 1);
    // Raw-copy executed payloads dominate the profile's dedup'd counts
    // (the refinement that buys the bitwise guarantee, dist_gs.hpp).
    EXPECT_GE(c->find("gs_max_send_words_executed")->as_int(),
              c->find("gs_max_send_words_profile")->as_int());
    EXPECT_GT(c->find("schwarz_max_send_words_executed")->as_int(), 0);
  }

  // ---- measured tier present with the full schedule provenance ----
  const Json* meta = doc.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("pmax_measured")->as_int(), 16);
  const int nelem = static_cast<int>(meta->find("measured_nelem")->as_int());
  EXPECT_EQ(nelem, 1024);  // 128 base elements, one oct-refinement

  // Independent recomputation: the same mesh and options the bench used
  // must yield exactly the schedule quantities in the JSON.
  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 8, 8), tsem::linspace(0, 4, 4),
      {0.0, 0.3, 0.7, 1.2, 2.0}, 2.5, 2.0, 0.8, 0.3);
  spec = tsem::oct_refine(spec);
  const tsem::Mesh mesh = tsem::build_mesh(spec, 3);
  ASSERT_EQ(mesh.nelem, nelem);
  tsem::ClusterOptions copt;
  copt.max_ranks = 16;
  const tsem::ClusterSim cluster(mesh, copt);

  for (int p : {8, 16}) {
    const tsem::RankSchedule sched = cluster.schedule(p);
    for (const char* cfg : {"single/std", "dual/std", "single/perf",
                            "dual/perf"}) {
      const Json* c = find_case(
          doc, "measured/P" + std::to_string(p) + "/" + cfg);
      ASSERT_NE(c, nullptr) << p << " " << cfg;
      EXPECT_EQ(c->find("tier")->as_string(), "measured");
      EXPECT_EQ(c->find("max_rank_elems")->as_int(), sched.max_rank_elems);
      EXPECT_EQ(c->find("gs_max_send_words")->as_int(),
                sched.gs.max_send_words());
      EXPECT_EQ(c->find("gs_max_neighbors")->as_int(),
                sched.gs.max_neighbors());
      EXPECT_EQ(c->find("gs_total_words")->as_int(), sched.gs.total_words());
      EXPECT_EQ(c->find("schwarz_max_send_words")->as_int(),
                sched.schwarz.max_send_words());
      EXPECT_EQ(c->find("xxt_max_rank_nnz")->as_int(),
                sched.xxt_max_rank_nnz);
      EXPECT_EQ(c->find("coarse_n")->as_int(), sched.coarse_n);
      const Json* words = c->find("xxt_level_words");
      ASSERT_NE(words, nullptr);
      ASSERT_EQ(words->size(), sched.xxt_level_words.size());
      for (std::size_t i = 0; i < sched.xxt_level_words.size(); ++i)
        EXPECT_EQ(words->items()[i].as_int(), sched.xxt_level_words[i]);
      // The phase breakdown must account for the whole simulated time.
      const double total = field(*c, "sim_seconds");
      const double sum = field(*c, "sim_seconds_compute") +
                         field(*c, "sim_seconds_gs") +
                         field(*c, "sim_seconds_allreduce") +
                         field(*c, "sim_seconds_coarse");
      EXPECT_NEAR(sum, total, 1e-9 * total);
    }
  }

  // ---- the paper's shape invariants ----
  // Dual/single speedup in [1.2, 1.8] in both tiers (paper: 1.46 std,
  // 1.64 perf).
  auto dual_gain = [&](const std::string& prefix, const char* kernel) {
    const Json* cs = find_case(doc, prefix + "/single/" + kernel);
    const Json* cd = find_case(doc, prefix + "/dual/" + kernel);
    EXPECT_NE(cs, nullptr) << prefix;
    EXPECT_NE(cd, nullptr) << prefix;
    return field(*cs, "sim_seconds") / field(*cd, "sim_seconds");
  };
  for (const char* kernel : {"std", "perf"}) {
    for (int p : {8, 16}) {
      const double g = dual_gain("measured/P" + std::to_string(p), kernel);
      EXPECT_GE(g, 1.2) << kernel << " P=" << p;
      EXPECT_LE(g, 1.8) << kernel << " P=" << p;
    }
    for (int p : {512, 1024, 2048}) {
      const double g =
          dual_gain("extrapolated/P" + std::to_string(p), kernel);
      EXPECT_GE(g, 1.2) << kernel << " P=" << p;
      EXPECT_LE(g, 1.8) << kernel << " P=" << p;
    }
  }

  // Near-linear modeled scaling 512 -> 2048 (paper: ~3.9x of ideal 4x).
  const Json* e512 = find_case(doc, "extrapolated/P512/dual/perf");
  const Json* e2048 = find_case(doc, "extrapolated/P2048/dual/perf");
  ASSERT_NE(e512, nullptr);
  ASSERT_NE(e2048, nullptr);
  EXPECT_EQ(e512->find("tier")->as_string(), "extrapolated");
  const double speedup =
      field(*e512, "sim_seconds") / field(*e2048, "sim_seconds");
  EXPECT_GE(speedup, 3.0);
  EXPECT_LE(speedup, 4.0);

  // Measured tier itself must strong-scale: more ranks, less time.
  EXPECT_GT(field(*find_case(doc, "measured/P8/dual/perf"), "sim_seconds"),
            field(*find_case(doc, "measured/P16/dual/perf"), "sim_seconds"));
}

}  // namespace
