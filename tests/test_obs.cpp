// Observability layer tests: JSON value model round-trips, the metrics
// registry (counters / histograms / scoped timers / event trace), the
// BenchReport file format, and the end-to-end instrumentation wired into
// pcg, the Schwarz preconditioner, the XXT coarse solver, gather-scatter,
// and NavierStokes::step.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "solver/cg.hpp"
#include "solver/schwarz.hpp"

namespace {

using tsem::obs::Json;
using tsem::obs::MetricsRegistry;

// ---- Json ------------------------------------------------------------

TEST(Json, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_EQ(Json(true).type(), Json::Type::Bool);
  EXPECT_EQ(Json(7).as_int(), 7);
  EXPECT_EQ(Json(std::int64_t{1} << 40).as_int(), std::int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  // Cross-type numeric reads.
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);
  EXPECT_EQ(Json(3.9).as_int(), 3);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.members()[0].first, "zeta");
  EXPECT_EQ(j.members()[1].first, "alpha");
  EXPECT_EQ(j.members()[2].first, "mid");
  EXPECT_EQ(j.find("alpha")->as_int(), 2);
  EXPECT_EQ(j.find("absent"), nullptr);
}

TEST(Json, DumpCompactAndPretty) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"].push_back(true);
  j["b"].push_back(Json());
  EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":[true,null]}");
  EXPECT_NE(j.dump(2).find("\n  \"a\": 1"), std::string::npos);
}

TEST(Json, RoundTripPreservesTypesAndValues) {
  Json j = Json::object();
  j["int"] = 42;
  j["big"] = (std::int64_t{1} << 60);
  j["dbl"] = 0.1;
  j["whole_dbl"] = 3.0;  // must stay a Double through the cycle
  j["neg"] = -17;
  j["str"] = "line\n\"quoted\"\t\\slash";
  j["flag"] = false;
  j["nothing"] = Json();
  Json arr = Json::array();
  for (int i = 0; i < 5; ++i) arr.push_back(i * 1.5);
  j["arr"] = std::move(arr);
  Json nested = Json::object();
  nested["k"] = "v";
  j["obj"] = std::move(nested);

  for (int indent : {0, 2}) {
    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(j.dump(indent), &back, &err)) << err;
    EXPECT_TRUE(back == j) << j.dump(indent);
    EXPECT_EQ(back.find("whole_dbl")->type(), Json::Type::Double);
    EXPECT_EQ(back.find("int")->type(), Json::Type::Int);
  }
}

TEST(Json, NonFiniteSerializesAsNull) {
  Json j = Json::array();
  j.push_back(std::nan(""));
  j.push_back(std::numeric_limits<double>::infinity());
  j.push_back(1.5);
  EXPECT_EQ(j.dump(), "[null,null,1.5]");
}

TEST(Json, ParseRejectsMalformedInput) {
  Json out;
  EXPECT_FALSE(Json::parse("", &out));
  EXPECT_FALSE(Json::parse("{", &out));
  EXPECT_FALSE(Json::parse("[1,]", &out));
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &out));
  EXPECT_FALSE(Json::parse("nul", &out));
  EXPECT_FALSE(Json::parse("1 2", &out));  // trailing garbage
  EXPECT_FALSE(Json::parse("\"unterminated", &out));
  std::string err;
  EXPECT_FALSE(Json::parse("[1, oops]", &out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Json, EveryTruncatedPrefixFailsCleanly) {
  // A fleet worker killed mid-write can leave an arbitrary prefix of a
  // result document; every such prefix must parse to a structured error,
  // never a silently-accepted partial value.
  Json doc = Json::object();
  doc["schema"] = "terasem-fleet-job-1";
  doc["digest"] = "00c0ffee";
  doc["values"] = Json::array();
  doc["values"].push_back(1);
  doc["values"].push_back(-2.5e3);
  doc["values"].push_back(true);
  doc["values"].push_back(Json());  // null
  Json nested = Json::object();
  nested["deep"] = "x\"esc\\ape\n";
  doc["nested"] = std::move(nested);
  for (int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    for (std::size_t len = 0; len < text.size(); ++len) {
      Json out;
      Json::ParseError err;
      EXPECT_FALSE(Json::parse(std::string_view(text).substr(0, len), &out,
                               &err))
          << "prefix of length " << len << " parsed";
      EXPECT_FALSE(err.message.empty());
    }
    Json out;
    ASSERT_TRUE(Json::parse(text, &out, static_cast<std::string*>(nullptr)));
    EXPECT_TRUE(out == doc);
  }
}

TEST(Json, ParseErrorCarriesPosition) {
  Json out;
  Json::ParseError err;
  ASSERT_FALSE(Json::parse("{\n  \"a\": oops\n}", &out, &err));
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.column, 8);
  EXPECT_EQ(err.offset, 9u);
  EXPECT_FALSE(err.message.empty());
  const std::string s = err.to_string();
  EXPECT_NE(s.find("line 2"), std::string::npos) << s;
  EXPECT_NE(s.find("column 8"), std::string::npos) << s;
}

TEST(Json, GarbageBytesNeverCrashTheParser) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 64);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text(static_cast<std::size_t>(len(rng)), '\0');
    for (char& c : text) c = static_cast<char>(byte(rng));
    Json out;
    Json::ParseError err;
    (void)Json::parse(text, &out, &err);  // must return, not crash
  }
}

TEST(Json, ParseFileRoundTripAndFailureModes) {
  const std::string path = "test_obs_parse_file.json";
  Json doc = Json::object();
  doc["k"] = 42;
  {
    std::ofstream f(path);
    f << doc.dump(2);
  }
  Json back;
  Json::ParseError err;
  ASSERT_TRUE(Json::parse_file(path, &back, &err)) << err.to_string();
  EXPECT_TRUE(back == doc);

  // Truncated on disk: structured failure naming the file.
  {
    std::ofstream f(path);
    f << doc.dump(2).substr(0, 5);
  }
  EXPECT_FALSE(Json::parse_file(path, &back, &err));
  EXPECT_FALSE(err.message.empty());
  std::remove(path.c_str());

  // Missing file: failure, not a crash.
  EXPECT_FALSE(Json::parse_file(path, &back, &err));
  EXPECT_NE(err.message.find(path), std::string::npos) << err.message;
}

TEST(Json, ParseHandlesEscapesAndNumbers) {
  Json out;
  ASSERT_TRUE(Json::parse(R"(["aAb", -1.5e3, 0.25, 10])", &out));
  EXPECT_EQ(out.items()[0].as_string(), "aAb");
  EXPECT_DOUBLE_EQ(out.items()[1].as_double(), -1500.0);
  EXPECT_EQ(out.items()[1].type(), Json::Type::Double);
  EXPECT_DOUBLE_EQ(out.items()[2].as_double(), 0.25);
  EXPECT_EQ(out.items()[3].type(), Json::Type::Int);
}

// ---- MetricsRegistry -------------------------------------------------

TEST(Metrics, CountersAndHistograms) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("t/c").add(5);
  reg.counter("t/c").increment();
  EXPECT_EQ(reg.counter("t/c").value(), 6);

  auto& h = reg.histogram("t/h");
  h.record(2.0);
  h.record(-1.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);

  const Json snap = reg.snapshot();
  EXPECT_EQ(snap.find("counters")->find("t/c")->as_int(), 6);
  EXPECT_EQ(snap.find("stats")->find("t/h")->find("count")->as_int(), 3);

  reg.reset();
  EXPECT_EQ(reg.counter("t/c").value(), 0);
  EXPECT_EQ(reg.histogram("t/h").count(), 0);
}

TEST(Metrics, EventRingBufferDropsOldest) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.set_max_events(3);
  for (int i = 0; i < 5; ++i) {
    Json e = Json::object();
    e["i"] = i;
    reg.emit(std::move(e));
  }
  const Json snap = reg.snapshot();
  const auto& events = snap.find("events")->items();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].find("i")->as_int(), 2);  // oldest two dropped
  EXPECT_EQ(events[2].find("i")->as_int(), 4);
  EXPECT_EQ(snap.find("events_dropped")->as_int(), 2);
  reg.set_max_events(4096);
  reg.reset();
}

TEST(Metrics, ScopedTimersNestLabels) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  {
    tsem::obs::ScopedTimer outer("outer");
    { const tsem::obs::ScopedTimer inner("inner"); }
    outer.stop();
    // After an explicit stop, a new timer starts a fresh root label.
    const tsem::obs::ScopedTimer after("after");
  }
  EXPECT_EQ(reg.histogram("time/outer").count(), 1);
  EXPECT_EQ(reg.histogram("time/outer/inner").count(), 1);
  EXPECT_EQ(reg.histogram("time/after").count(), 1);
  EXPECT_GE(reg.histogram("time/outer").min(), 0.0);
}

TEST(Metrics, RecordSolveClassifiesByStatus) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  tsem::obs::record_solve("mysolver", 12, 1.0, 1e-9, "converged");
  tsem::obs::record_solve("mysolver", 30, 2.0, 1e-3, "stalled");
  EXPECT_EQ(reg.counter("mysolver/solves").value(), 2);
  EXPECT_EQ(reg.counter("mysolver/iterations").value(), 42);
  EXPECT_EQ(reg.counter("mysolver/status/converged").value(), 1);
  EXPECT_EQ(reg.counter("mysolver/status/stalled").value(), 1);
  EXPECT_EQ(reg.histogram("mysolver/iterations").count(), 2);
  EXPECT_DOUBLE_EQ(reg.histogram("mysolver/residual/initial").max(), 2.0);
}

// ---- BenchReport -----------------------------------------------------

TEST(BenchReport, WritesSchemaValidFileAndRoundTrips) {
  char tmpl[] = "/tmp/tsem_obs_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  ASSERT_EQ(setenv("TSEM_BENCH_DIR", tmpl, 1), 0);

  MetricsRegistry::instance().reset();
  tsem::obs::count("demo/counter", 3);

  tsem::obs::BenchReport report("unit_demo");
  report.meta()["purpose"] = "test";
  Json& c = report.add_case("case0");
  c["wall_seconds"] = 0.125;
  c["iterations"] = 7;
  const std::string path = report.write();
  unsetenv("TSEM_BENCH_DIR");
  ASSERT_EQ(path, std::string(tmpl) + "/BENCH_unit_demo.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(ss.str(), &parsed, &err)) << err;
  EXPECT_TRUE(parsed == report.to_json());

  EXPECT_EQ(parsed.find("schema")->as_string(), "terasem-bench-1");
  EXPECT_EQ(parsed.find("name")->as_string(), "unit_demo");
  EXPECT_EQ(parsed.find("meta")->find("purpose")->as_string(), "test");
  const auto& cases = parsed.find("cases")->items();
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].find("name")->as_string(), "case0");
  EXPECT_DOUBLE_EQ(cases[0].find("wall_seconds")->as_double(), 0.125);
  if (tsem::obs::enabled()) {
    EXPECT_EQ(
        parsed.find("metrics")->find("counters")->find("demo/counter")->as_int(),
        3);
  }
  std::remove(path.c_str());
  std::remove(tmpl);
}

// ---- end-to-end instrumentation --------------------------------------

TEST(ObsIntegration, SchwarzXxtPcgGsInstrumentedOnSmallSolve) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();

  // Small annulus pressure solve with the full stack: Schwarz (FDM local
  // solves + XXT coarse grid) preconditioning CG on E.
  auto spec = tsem::annulus_spec(0.7, 1.9, 2, 6, 1.3);
  tsem::Space s(tsem::build_mesh(spec, 5));
  tsem::PressureSystem p(s, s.make_mask(0x3));
  tsem::SchwarzPrecond prec(p, {});
  const std::size_t n = p.nloc();

  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> pstar(n), g(n), sol(n, 0.0);
  for (auto& v : pstar) v = dist(rng);
  p.remove_mean_plain(pstar.data());
  p.apply_E(pstar.data(), g.data());

  auto apply = [&](const double* x, double* y) {
    p.apply_E(x, y);
    p.remove_mean_plain(y);
  };
  auto dot = [n](const double* a, const double* b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    return acc;
  };
  auto precond = [&](const double* r, double* z) {
    prec.apply(r, z);
    p.remove_mean_plain(z);
  };
  tsem::CgOptions opt;
  opt.tol = 1e-6;
  opt.relative = true;
  const auto res =
      tsem::pcg(n, apply, precond, dot, g.data(), sol.data(), opt);
  // On coarse curved meshes E has near-null pressure modes, so CG stalls
  // at an attainable floor (~1e-5 relative here) instead of hitting tol;
  // either way the residual must drop by orders of magnitude and the
  // solve must be recorded under whatever status it finished with.
  ASSERT_LT(res.final_residual, 1e-4 * res.initial_residual + 1e-12);

  // pcg recorded the solve...
  EXPECT_EQ(reg.counter("pcg/solves").value(), 1);
  const std::string status_key =
      std::string("pcg/status/") + to_string(res.status);
  EXPECT_EQ(reg.counter(status_key).value(), 1);
  EXPECT_EQ(reg.counter("pcg/iterations").value(), res.iterations);
  EXPECT_DOUBLE_EQ(reg.histogram("pcg/residual/final").max(),
                   res.final_residual);
  // ...Schwarz counted one apply per precond call with per-phase times...
  const auto applies = reg.counter("schwarz/applies").value();
  EXPECT_GE(applies, res.iterations);
  EXPECT_EQ(reg.counter("schwarz/local_solves").value(),
            applies * s.mesh().nelem);
  EXPECT_EQ(reg.histogram("time/schwarz/apply").count(), applies);
  EXPECT_EQ(reg.histogram("time/schwarz/apply/local").count(), applies);
  EXPECT_EQ(reg.histogram("time/schwarz/apply/coarse").count(), applies);
  // ...the XXT coarse solver logged factor + per-solve message volume...
  EXPECT_EQ(reg.counter("xxt/solves").value(), applies);
  EXPECT_EQ(reg.histogram("time/xxt/factor").count(), 1);
  // msg_words can be 0 when the tiny coarse grid fits one dissection
  // leaf; the factor's flop count is always positive.
  EXPECT_GE(reg.counter("xxt/msg_words").value(), 0);
  EXPECT_GT(reg.counter("xxt/flops").value(), 0);
  // ...and gather-scatter counted its exchange words (E applies use gs).
  EXPECT_GT(reg.counter("gs/ops").value(), 0);
  EXPECT_GT(reg.counter("gs/words").value(), 0);
  reg.reset();
}

TEST(ObsIntegration, NavierStokesStepEmitsStructuredEvent) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = MetricsRegistry::instance();
  reg.reset();

  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, 3),
                                tsem::linspace(0, 2 * M_PI, 3));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space s(tsem::build_mesh(spec, 5));
  const auto& m = s.mesh();
  tsem::NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  tsem::NavierStokes ns(s, 0u, opt);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
  }
  const auto st1 = ns.step();
  const auto st2 = ns.step();

  const Json snap = reg.snapshot();
  const auto& events = snap.find("events")->items();
  // Select the ns/step events rather than asserting the stream length:
  // under TSEM_PRECOND_FP32 the Schwarz setup adds a schwarz_precision
  // event, and this test is about the step event's shape either way.
  std::vector<const Json*> steps;
  for (const auto& ev : events)
    if (const Json* name = ev.find("event");
        name && name->as_string() == "ns/step")
      steps.push_back(&ev);
  ASSERT_EQ(steps.size(), 2u);
  const Json& e = *steps[1];
  EXPECT_EQ(e.find("step")->as_int(), st2.step);
  EXPECT_EQ(e.find("pressure_iters")->as_int(), st2.pressure_iters);
  EXPECT_EQ(e.find("pressure_status")->as_string(),
            to_string(st2.pressure_status));
  EXPECT_EQ(e.find("attempts")->as_int(), st2.attempts);
  EXPECT_FALSE(e.find("failed")->as_bool());
  ASSERT_EQ(e.find("helmholtz_iters")->size(), 3u);
  EXPECT_EQ(e.find("helmholtz_iters")->items()[0].as_int(),
            st2.helmholtz_iters[0]);

  EXPECT_EQ(reg.counter("ns/steps").value(), 2);
  EXPECT_EQ(reg.histogram("time/ns/step").count(), 2);
  // Inner solves run under the active ns/step phase, so their timers pick
  // up the nested label.
  EXPECT_EQ(reg.histogram("time/ns/step/pressure/solve").count(), 2);
  EXPECT_GE(reg.histogram("time/ns/step/helmholtz/solve").count(), 2);
  EXPECT_EQ(reg.histogram("ns/pressure_iters").count(), 2);
  (void)st1;
  reg.reset();
}

}  // namespace
