// Mixed-precision preconditioner tests (DESIGN.md "Precision policy").
//
// The FP32 Schwarz/FDM and Jacobi paths deliberately break the repo's
// bitwise contract, so these tests assert the replacement contract from
// tests/convergence_contract.hpp instead: FP32 building blocks agree
// with their FP64 twins to single-precision tolerance, the FP32
// preconditioner stays symmetric, and outer FP64 solves preconditioned
// in FP32 converge within a small iteration delta of the FP64 baseline.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/helmholtz.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "solver/fdm.hpp"
#include "solver/overlap.hpp"
#include "solver/precision.hpp"
#include "solver/schwarz.hpp"
#include "tests/convergence_contract.hpp"

namespace {

using tsem::build_mesh;
using tsem::FdmLocal;
using tsem::PrecondPrecision;
using tsem::PressureSystem;
using tsem::SchwarzOptions;
using tsem::SchwarzPrecond;
using tsem::Space;

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

double max_rel_diff(const double* a, const double* b, std::size_t n) {
  double scale = 0.0, maxdiff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scale = std::max(scale, std::abs(a[i]));
    maxdiff = std::max(maxdiff, std::abs(a[i] - b[i]));
  }
  return maxdiff / (scale > 0.0 ? scale : 1.0);
}

TEST(PrecisionPolicy, ParseRules) {
  EXPECT_EQ(tsem::precond_precision_parse(nullptr), PrecondPrecision::Fp64);
  EXPECT_EQ(tsem::precond_precision_parse(""), PrecondPrecision::Fp64);
  EXPECT_EQ(tsem::precond_precision_parse("0"), PrecondPrecision::Fp64);
  EXPECT_EQ(tsem::precond_precision_parse("1"), PrecondPrecision::Fp32);
  EXPECT_EQ(tsem::precond_precision_parse("on"), PrecondPrecision::Fp32);
  EXPECT_STREQ(tsem::precond_precision_name(PrecondPrecision::Fp64), "fp64");
  EXPECT_STREQ(tsem::precond_precision_name(PrecondPrecision::Fp32), "fp32");
}

TEST(PrecisionPolicy, EnvControlsDefaultOptions) {
  ASSERT_EQ(setenv("TSEM_PRECOND_FP32", "1", 1), 0);
  EXPECT_EQ(SchwarzOptions{}.precision, PrecondPrecision::Fp32);
  EXPECT_EQ(tsem::HelmholtzSolveOptions{}.precond_precision,
            PrecondPrecision::Fp32);
  ASSERT_EQ(setenv("TSEM_PRECOND_FP32", "0", 1), 0);
  EXPECT_EQ(SchwarzOptions{}.precision, PrecondPrecision::Fp64);
  unsetenv("TSEM_PRECOND_FP32");
  EXPECT_EQ(SchwarzOptions{}.precision, PrecondPrecision::Fp64);
}

// The FP32 batched FDM solve mirrors solve_batch stage for stage; its
// result must match to single-precision accuracy (the factor matrices and
// every intermediate are floats, so ~1e-5 relative, not 1e-12).
TEST(FdmLocalF32, BatchSolveMatchesFp64ToSinglePrecision) {
  for (int dim : {2, 3}) {
    std::array<std::vector<double>, 3> pts;
    pts[0] = {0.0, 0.08, 0.3, 0.55, 0.78, 1.0};
    pts[1] = {0.0, 0.1, 0.4, 0.62, 0.85, 1.1};
    pts[2] = {0.0, 0.09, 0.33, 0.58, 0.8, 1.05};
    FdmLocal fdm(pts, dim);
    const std::size_t sz = fdm.size();
    const int nb = 5;
    const auto r = random_vec(nb * sz, 11 + dim);
    std::vector<double> z64(nb * sz), work64(3 * nb * sz);
    fdm.solve_batch(r.data(), z64.data(), nb, work64.data());

    std::vector<float> r32(nb * sz), z32(nb * sz), work32(3 * nb * sz);
    for (std::size_t i = 0; i < r.size(); ++i)
      r32[i] = static_cast<float>(r[i]);
    fdm.solve_batch_f32(r32.data(), z32.data(), nb, work32.data());

    std::vector<double> z32p(nb * sz);
    for (std::size_t i = 0; i < z32p.size(); ++i)
      z32p[i] = static_cast<double>(z32[i]);
    EXPECT_LT(max_rel_diff(z64.data(), z32p.data(), nb * sz), 1e-4)
        << "dim " << dim;
  }
}

// The float ghost-exchange overloads must reproduce the double path to
// FP32 rounding: same slots filled, same adjoint structure.
TEST(GhostExchangeF32, MatchesDoubleExchange) {
  auto spec = tsem::annulus_spec(0.9, 2.1, 2, 6, 1.2);
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0x3));
  tsem::GhostExchange gx(p, 2);
  const std::size_t n = p.nloc();
  const std::size_t ns = gx.nslots();
  const auto pv = random_vec(n, 13);

  std::vector<double> ghost64(2 * ns);
  gx.exchange(pv.data(), ghost64.data());
  std::vector<float> ghost32(2 * ns);
  gx.exchange(pv.data(), ghost32.data());
  for (std::size_t i = 0; i < 2 * ns; ++i)
    EXPECT_NEAR(static_cast<double>(ghost32[i]), ghost64[i],
                1e-5 * (1.0 + std::abs(ghost64[i])))
        << "slot " << i;
}

TEST(GhostExchangeF32, ScatterAddMatchesDoubleAndStaysAdjoint) {
  auto spec = tsem::annulus_spec(0.9, 2.1, 2, 6, 1.2);
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0x3));
  tsem::GhostExchange gx(p, 1);
  const std::size_t n = p.nloc();
  const std::size_t ns = gx.nslots();
  const auto vv = random_vec(ns, 17);
  std::vector<float> vv32(ns);
  for (std::size_t i = 0; i < ns; ++i) vv32[i] = static_cast<float>(vv[i]);

  std::vector<double> back64(n, 0.0), back32(n, 0.0);
  gx.scatter_add(vv.data(), back64.data());
  gx.scatter_add(vv32.data(), back32.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back32[i], back64[i], 1e-5 * (1.0 + std::abs(back64[i])))
        << "dof " << i;

  // Adjointness <exchange_f32(p), v> == <p, scatter_add_f32(v)> up to
  // FP32 rounding — the property Schwarz symmetry rests on.
  const auto pv = random_vec(n, 19);
  std::vector<float> ghost32(ns);
  gx.exchange(pv.data(), ghost32.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < ns; ++i)
    lhs += static_cast<double>(ghost32[i]) * vv[i];
  std::vector<double> back(n, 0.0);
  gx.scatter_add(vv32.data(), back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < n; ++i) rhs += back[i] * pv[i];
  EXPECT_NEAR(lhs, rhs, 1e-4 * (1.0 + std::abs(lhs)));
}

TEST(SchwarzFp32, EffectivePrecisionDowngradesForFemP1) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 6, 1.2);
  Space s(build_mesh(spec, 5));
  PressureSystem p(s, s.make_mask(0x3));
  SchwarzOptions opt;
  opt.precision = PrecondPrecision::Fp32;
  opt.local = SchwarzOptions::Local::FemP1;
  SchwarzPrecond prec(p, opt);
  EXPECT_EQ(prec.precision(), PrecondPrecision::Fp64);

  SchwarzOptions fdm_opt;
  fdm_opt.precision = PrecondPrecision::Fp32;
  SchwarzPrecond fdm_prec(p, fdm_opt);
  EXPECT_EQ(fdm_prec.precision(), PrecondPrecision::Fp32);
}

// FP32 Schwarz apply: close to the FP64 apply (single-precision relative
// error) and still symmetric — both required for it to remain a valid
// PCG preconditioner.
TEST(SchwarzFp32, ApplyCloseToFp64AndSymmetric) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 8, 1.2);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  const std::size_t n = p.nloc();

  SchwarzOptions o64;
  SchwarzPrecond m64(p, o64);
  SchwarzOptions o32 = o64;
  o32.precision = PrecondPrecision::Fp32;
  SchwarzPrecond m32(p, o32);

  const auto r = random_vec(n, 23);
  std::vector<double> z64(n), z32(n);
  m64.apply(r.data(), z64.data());
  m32.apply(r.data(), z32.data());
  EXPECT_LT(max_rel_diff(z64.data(), z32.data(), n), 1e-4);

  const auto a = random_vec(n, 29);
  const auto b = random_vec(n, 31);
  std::vector<double> ma(n), mb(n);
  m32.apply(a.data(), ma.data());
  m32.apply(b.data(), mb.data());
  double ab = 0.0, ba = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ab += b[i] * ma[i];
    ba += a[i] * mb[i];
  }
  EXPECT_NEAR(ab, ba, 1e-6 * (1.0 + std::abs(ab)));
}

// The headline contract (ISSUE acceptance): an outer FP64 pressure PCG
// preconditioned by the FP32 Schwarz/FDM converges within +2 iterations
// of the FP64-preconditioned baseline and to the same tolerance.
TEST(SchwarzFp32, PressureSolveIterationContract) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 8, 1.2);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  const std::size_t n = p.nloc();

  auto pstar = random_vec(n, 41);
  p.remove_mean(pstar.data());
  std::vector<double> g(n);
  p.apply_E(pstar.data(), g.data());

  tsem::PressureSolveOptions popt;
  popt.tol = 1e-8;
  popt.zero_guess = true;

  auto run = [&](SchwarzPrecond& prec, std::vector<double>& dp) {
    auto precond = [&](const double* r, double* z) {
      prec.apply(r, z);
      p.remove_mean(z);
    };
    return tsem::solve_pressure(p, precond, nullptr, g.data(), dp.data(),
                                popt);
  };

  SchwarzOptions o64;
  SchwarzPrecond m64(p, o64);
  std::vector<double> dp64(n, 0.0);
  const auto base = run(m64, dp64);

  SchwarzOptions o32 = o64;
  o32.precision = PrecondPrecision::Fp32;
  SchwarzPrecond m32(p, o32);
  std::vector<double> dp32(n, 0.0);
  const auto got = run(m32, dp32);

  EXPECT_CONVERGENCE_CONTRACT(base.cg, got.cg, 2, popt.tol);
  // Both converged the same FP64 system to 1e-8; the iterates may differ
  // but the answers agree to the outer tolerance scale.
  tsem::testing::expect_solutions_close(dp64.data(), dp32.data(), n, 1e-5);
}

// Same contract for the FP32 Jacobi preconditioner in the Helmholtz
// component solves.
TEST(HelmholtzFp32, JacobiPrecondIterationContract) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  Space s(build_mesh(spec, 6));
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  tsem::HelmholtzOp A(s, 0.01, 25.0, s.make_mask(0xF));

  std::vector<double> bc(nl, 0.0), rhs(nl);
  for (std::size_t i = 0; i < nl; ++i)
    rhs[i] = m.bm[i] * std::sin(3.0 * m.x[i]) * std::cos(2.0 * m.y[i]);

  tsem::HelmholtzSolveOptions opt;
  opt.tol = 1e-10;
  opt.zero_guess = true;
  opt.precond_precision = PrecondPrecision::Fp64;
  tsem::TensorWork work;

  std::vector<double> u64(nl, 0.0), u32(nl, 0.0);
  const auto base = tsem::helmholtz_solve(A, bc, rhs, u64, opt, work);

  opt.precond_precision = PrecondPrecision::Fp32;
  const auto got = tsem::helmholtz_solve(A, bc, rhs, u32, opt, work);

  EXPECT_CONVERGENCE_CONTRACT(base, got, 2, opt.tol);
  tsem::testing::expect_solutions_close(u64.data(), u32.data(), nl, 1e-6);
}

// The FP32 inverse diagonal the Jacobi path consumes must be the demoted
// reciprocal of the assembled diagonal.
TEST(HelmholtzFp32, InverseDiagonalIsDemotedReciprocal) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  Space s(build_mesh(spec, 5));
  tsem::HelmholtzOp A(s, 1.0, 4.0, s.make_mask(0xF));
  const auto& dg = A.diagonal();
  const auto& idg = A.inv_diagonal_f32();
  ASSERT_EQ(dg.size(), idg.size());
  for (std::size_t i = 0; i < dg.size(); ++i)
    ASSERT_EQ(idg[i], static_cast<float>(1.0 / dg[i])) << "dof " << i;
}

}  // namespace
