// Tests for recursive spectral bisection and the partitioning baselines,
// including the communication-quality property the paper uses RSB for.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "partition/rsb.hpp"

namespace {

using tsem::build_mesh;

TEST(ElementGraph, BoxAdjacency) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 3, 3),
                                tsem::linspace(0, 2, 2));
  const auto m = build_mesh(spec, 3);
  const auto adj = tsem::element_graph(m);
  ASSERT_EQ(adj.size(), 6u);
  // Corner element (0,0) has 2 neighbors; middle-edge elements 3.
  EXPECT_EQ(adj[0].size(), 2u);
  EXPECT_EQ(adj[1].size(), 3u);
}

TEST(Fiedler, SeparatesABarbell) {
  // Two cliques joined by one edge: the Fiedler vector must have opposite
  // signs on the two cliques.
  std::vector<std::vector<int>> adj(8);
  auto connect = [&](int a, int b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) connect(i, j);
  for (int i = 4; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) connect(i, j);
  connect(3, 4);
  const auto f = tsem::fiedler_vector(adj);
  for (int i = 0; i < 4; ++i)
    for (int j = 4; j < 8; ++j) EXPECT_LT(f[i] * f[j], 0.0);
}

int count_cut_edges(const std::vector<std::vector<int>>& adj,
                    const std::vector<int>& part) {
  int cut = 0;
  for (std::size_t e = 0; e < adj.size(); ++e)
    for (int nbr : adj[e])
      if (part[e] != part[nbr]) ++cut;
  return cut / 2;
}

TEST(Rsb, BalancedAndBetterThanNaive) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 8, 8),
                                tsem::linspace(0, 8, 8));
  const auto m = build_mesh(spec, 3);
  const auto adj = tsem::element_graph(m);
  const int nparts = 4;
  const auto rsb = tsem::recursive_spectral_bisection(m, nparts);
  const auto naive = tsem::block_partition(m.nelem, nparts);

  // Perfect balance (power-of-two splits of 64 elements).
  std::vector<int> count(nparts, 0);
  for (int e = 0; e < m.nelem; ++e) {
    ASSERT_GE(rsb[e], 0);
    ASSERT_LT(rsb[e], nparts);
    ++count[rsb[e]];
  }
  for (int p = 0; p < nparts; ++p) EXPECT_EQ(count[p], m.nelem / nparts);

  EXPECT_LE(count_cut_edges(adj, rsb), count_cut_edges(adj, naive));
}

TEST(Rsb, ReducesGsCommunicationVsScattered) {
  // Note: on a theta-major-ordered annulus the contiguous block partition
  // is already wedge-shaped and near-optimal, so the meaningful baseline
  // is a scattered (round-robin) assignment — the situation RSB exists to
  // avoid (paper §6: "contiguous groups of elements are distributed").
  auto spec = tsem::annulus_spec(0.5, 2.0, 4, 16, 1.3);
  const auto m = build_mesh(spec, 5);
  const int nparts = 8;
  const auto rsb = tsem::recursive_spectral_bisection(m, nparts);
  std::vector<int> scattered(m.nelem);
  for (int e = 0; e < m.nelem; ++e) scattered[e] = e % nparts;
  const auto prof_rsb = tsem::gs_comm_profile(m.node_id, m.npe, rsb, nparts);
  const auto prof_sc =
      tsem::gs_comm_profile(m.node_id, m.npe, scattered, nparts);
  std::int64_t w_rsb = 0, w_sc = 0;
  for (auto v : prof_rsb.send_words) w_rsb += v;
  for (auto v : prof_sc.send_words) w_sc += v;
  EXPECT_LT(w_rsb, w_sc / 2);
  // And RSB should be comparable to the geometric partitioner.
  const auto rcb = tsem::recursive_coordinate_bisection(m, nparts);
  const auto prof_rcb = tsem::gs_comm_profile(m.node_id, m.npe, rcb, nparts);
  std::int64_t w_rcb = 0;
  for (auto v : prof_rcb.send_words) w_rcb += v;
  EXPECT_LE(w_rsb, 2 * w_rcb);
}

TEST(Rcb, GeometricPartitionIsBalanced) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 4, 4),
                                tsem::linspace(0, 4, 4),
                                tsem::linspace(0, 2, 2));
  const auto m = build_mesh(spec, 2);
  const int nparts = 8;
  const auto rcb = tsem::recursive_coordinate_bisection(m, nparts);
  std::vector<int> count(nparts, 0);
  for (int e = 0; e < m.nelem; ++e) ++count[rcb[e]];
  for (int p = 0; p < nparts; ++p) EXPECT_EQ(count[p], m.nelem / nparts);
}

TEST(BlockPartition, CoversAllRanks) {
  const auto part = tsem::block_partition(10, 4);
  std::set<int> used(part.begin(), part.end());
  EXPECT_EQ(used.size(), 4u);
  EXPECT_EQ(part.front(), 0);
  EXPECT_EQ(part.back(), 3);
}

}  // namespace
