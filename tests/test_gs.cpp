// Tests for the gather-scatter utility and its communication profile.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"

namespace {

using tsem::GatherScatter;
using tsem::GsOp;

TEST(GatherScatter, AddReducesGroups) {
  // ids: {0, 1, 1, 2, 0, 3}: groups {0,4} and {1,2}.
  std::vector<std::int64_t> ids = {0, 1, 1, 2, 0, 3};
  GatherScatter gs(ids);
  EXPECT_EQ(gs.ngroups(), 2u);
  EXPECT_EQ(gs.nglobal(), 4);
  std::vector<double> u = {1, 2, 3, 4, 5, 6};
  gs.op(u.data(), GsOp::Add);
  EXPECT_DOUBLE_EQ(u[0], 6.0);
  EXPECT_DOUBLE_EQ(u[4], 6.0);
  EXPECT_DOUBLE_EQ(u[1], 5.0);
  EXPECT_DOUBLE_EQ(u[2], 5.0);
  EXPECT_DOUBLE_EQ(u[3], 4.0);
  EXPECT_DOUBLE_EQ(u[5], 6.0);
}

TEST(GatherScatter, MinMaxMulOps) {
  std::vector<std::int64_t> ids = {7, 7, 7};
  GatherScatter gs(ids);
  std::vector<double> u = {2, -3, 5};
  auto v = u;
  gs.op(v.data(), GsOp::Min);
  EXPECT_DOUBLE_EQ(v[0], -3.0);
  v = u;
  gs.op(v.data(), GsOp::Max);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
  v = u;
  gs.op(v.data(), GsOp::Mul);
  EXPECT_DOUBLE_EQ(v[1], -30.0);
}

TEST(GatherScatter, VectorMode) {
  std::vector<std::int64_t> ids = {0, 1, 0};
  GatherScatter gs(ids);
  // 2 dofs per node, AoS.
  std::vector<double> u = {1, 10, 2, 20, 3, 30};
  gs.op_vec(u.data(), 2, GsOp::Add);
  EXPECT_DOUBLE_EQ(u[0], 4.0);
  EXPECT_DOUBLE_EQ(u[1], 40.0);
  EXPECT_DOUBLE_EQ(u[4], 4.0);
  EXPECT_DOUBLE_EQ(u[5], 40.0);
  EXPECT_DOUBLE_EQ(u[2], 2.0);
}

TEST(GatherScatter, AddIsIdempotentAfterAveraging) {
  // dssum of an already-summed-and-averaged field is stable.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  const auto m = build_mesh(spec, 5);
  GatherScatter gs(m.node_id);
  std::vector<double> u(m.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = std::sin(3 * m.x[i]) + m.y[i];
  auto v = u;  // already C0 (same value on all copies)
  gs.op(v.data(), GsOp::Add);
  const auto mult = gs.multiplicity();
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(v[i], u[i] * mult[i], 1e-12);
}

TEST(GatherScatter, MultiplicityMatchesMeshTopology) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, 3);
  GatherScatter gs(m.node_id);
  const auto mult = gs.multiplicity();
  // The center vertex of a 2x2 element box has multiplicity 4; interior
  // element nodes 1; shared edges 2.
  double maxmult = 0;
  for (double v : mult) maxmult = std::max(maxmult, v);
  EXPECT_DOUBLE_EQ(maxmult, 4.0);
  // Sum of 1/mult = number of global nodes.
  double s = 0;
  for (double v : mult) s += 1.0 / v;
  EXPECT_NEAR(s, static_cast<double>(m.nglob), 1e-9);
}

TEST(GatherScatter, LocalGlobalRoundTrip) {
  std::vector<std::int64_t> ids = {5, 3, 5, 9};
  GatherScatter gs(ids);
  EXPECT_EQ(gs.nglobal(), 3);
  std::vector<double> u = {1, 2, 3, 4};
  std::vector<double> ug(3);
  gs.local_to_global(u.data(), ug.data());
  // dense order follows sorted ids: 3 -> 0, 5 -> 1, 9 -> 2.
  EXPECT_DOUBLE_EQ(ug[0], 2.0);
  EXPECT_DOUBLE_EQ(ug[1], 4.0);
  EXPECT_DOUBLE_EQ(ug[2], 4.0);
  std::vector<double> v(4);
  gs.global_to_local(ug.data(), v.data());
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 4.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
}

TEST(GatherScatter, OpVecMatchesRepeatedScalarOp) {
  // op_vec(u, m) must equal m independent op() calls on the de-interleaved
  // components, for every reduction.  m = 19 crosses the internal
  // component-chunk width, exercising the chunked path.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 2, 4));
  const auto m = build_mesh(spec, 4);
  GatherScatter gs(m.node_id);
  const int nc = 19;
  const std::size_t n = m.nlocal();
  std::vector<double> base(n * nc);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.5, 2.0);  // >0 so Mul is tame
  for (auto& v : base) v = dist(rng);
  for (GsOp o : {GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max}) {
    auto vec = base;
    gs.op_vec(vec.data(), nc, o);
    for (int c = 0; c < nc; ++c) {
      std::vector<double> comp(n);
      for (std::size_t i = 0; i < n; ++i) comp[i] = base[i * nc + c];
      gs.op(comp.data(), o);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_DOUBLE_EQ(vec[i * nc + c], comp[i])
            << "op " << static_cast<int>(o) << " comp " << c << " node " << i;
    }
  }
}

TEST(CommProfile, TwoRankStrip) {
  // 4 elements in a row, order N: ranks {0,0,1,1}: interface = one GLL
  // line shared between elements 1 and 2.
  const int n = 4;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 4, 4),
                                tsem::linspace(0, 1, 1));
  const auto m = build_mesh(spec, n);
  const std::vector<int> owner = {0, 0, 1, 1};
  const auto prof = tsem::gs_comm_profile(m.node_id, m.npe, owner, 2);
  EXPECT_EQ(prof.nranks, 2);
  EXPECT_EQ(prof.neighbors[0], 1);
  EXPECT_EQ(prof.neighbors[1], 1);
  // N+1 nodes on the shared line, each sent once in each direction.
  EXPECT_EQ(prof.send_words[0], n + 1);
  EXPECT_EQ(prof.send_words[1], n + 1);
}

TEST(CommProfile, FourRankQuadrants) {
  const int n = 3, k = 4;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  const auto m = build_mesh(spec, n);
  std::vector<int> owner(m.nelem);
  for (int e = 0; e < m.nelem; ++e) {
    const int i = e % k, j = e / k;
    owner[e] = (i >= k / 2) + 2 * (j >= k / 2);
  }
  const auto prof = tsem::gs_comm_profile(m.node_id, m.npe, owner, 4);
  // Every rank touches the center crosspoint, so all ranks are mutual
  // neighbors.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(prof.neighbors[r], 3);
  // Interface per rank: half the domain side twice = 2*(k/2*n+1)-ish
  // words to the two adjacent ranks plus 3 copies of the center point.
  // Exact count: nodes on the two half-interfaces excluding the center:
  // each sent to 1 other rank; center sent to 3.
  const int half_line = (k / 2) * n + 1;  // nodes on a half-interface line
  const std::int64_t expect = 2 * (half_line - 1) + 3;
  for (int r = 0; r < 4; ++r) EXPECT_EQ(prof.send_words[r], expect);
}

// Reference implementation of the communication profile using the original
// map/set formulation; the production version was rewritten as a sort-based
// sweep and must agree exactly.
tsem::CommProfile profile_reference(const std::vector<std::int64_t>& ids,
                                    int npe, const std::vector<int>& owner,
                                    int nranks) {
  tsem::CommProfile prof;
  prof.nranks = nranks;
  prof.neighbors.assign(nranks, 0);
  prof.send_words.assign(nranks, 0);
  std::map<std::int64_t, std::set<int>> node_ranks;
  for (std::size_t i = 0; i < ids.size(); ++i)
    node_ranks[ids[i]].insert(owner[i / npe]);
  std::set<std::pair<int, int>> nbr;
  for (const auto& [id, ranks] : node_ranks) {
    if (ranks.size() < 2) continue;
    for (int r : ranks) {
      prof.send_words[r] += static_cast<std::int64_t>(ranks.size()) - 1;
      for (int q : ranks)
        if (q != r) nbr.emplace(r, q);
    }
  }
  for (const auto& [r, q] : nbr) ++prof.neighbors[r];
  return prof;
}

TEST(CommProfile, SweepMatchesReferenceOn3dBlockPartition) {
  // Table-4-style mesh: 4x4x2 spectral elements, block-partitioned among
  // 8 ranks (2x2x2 blocks), so ranks share faces, edges, AND corners —
  // every multiplicity class the sweep must handle.
  const int n = 3;
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 4),
                                tsem::linspace(0, 1, 4),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, n);
  ASSERT_EQ(m.nelem, 32);
  std::vector<int> owner(m.nelem);
  for (int e = 0; e < m.nelem; ++e) {
    const int i = e % 4, j = (e / 4) % 4, k = e / 16;
    owner[e] = (i >= 2) + 2 * (j >= 2) + 4 * k;
  }
  const auto got = tsem::gs_comm_profile(m.node_id, m.npe, owner, 8);
  const auto want = profile_reference(m.node_id, m.npe, owner, 8);
  ASSERT_EQ(got.nranks, want.nranks);
  EXPECT_EQ(got.neighbors, want.neighbors);
  EXPECT_EQ(got.send_words, want.send_words);
  // Sanity: full 2x2x2 rank grid means every rank neighbors all 7 others.
  for (int r = 0; r < 8; ++r) EXPECT_EQ(got.neighbors[r], 7);
  EXPECT_GT(got.max_send_words(), 0);
}

TEST(CommProfile, SweepMatchesReferenceOnRandomPartition) {
  // Adversarial scattered ownership: elements assigned round-robin-ish so
  // interfaces are everywhere and some ranks may touch no shared node.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 5),
                                tsem::linspace(0, 1, 5));
  const auto m = build_mesh(spec, 2);
  std::mt19937 rng(123);
  std::vector<int> owner(m.nelem);
  for (auto& r : owner) r = static_cast<int>(rng() % 6);
  const auto got = tsem::gs_comm_profile(m.node_id, m.npe, owner, 6);
  const auto want = profile_reference(m.node_id, m.npe, owner, 6);
  EXPECT_EQ(got.neighbors, want.neighbors);
  EXPECT_EQ(got.send_words, want.send_words);
}

}  // namespace
