// Tests for the gather-scatter utility and its communication profile.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"

namespace {

using tsem::GatherScatter;
using tsem::GsOp;

TEST(GatherScatter, AddReducesGroups) {
  // ids: {0, 1, 1, 2, 0, 3}: groups {0,4} and {1,2}.
  std::vector<std::int64_t> ids = {0, 1, 1, 2, 0, 3};
  GatherScatter gs(ids);
  EXPECT_EQ(gs.ngroups(), 2u);
  EXPECT_EQ(gs.nglobal(), 4);
  std::vector<double> u = {1, 2, 3, 4, 5, 6};
  gs.op(u.data(), GsOp::Add);
  EXPECT_DOUBLE_EQ(u[0], 6.0);
  EXPECT_DOUBLE_EQ(u[4], 6.0);
  EXPECT_DOUBLE_EQ(u[1], 5.0);
  EXPECT_DOUBLE_EQ(u[2], 5.0);
  EXPECT_DOUBLE_EQ(u[3], 4.0);
  EXPECT_DOUBLE_EQ(u[5], 6.0);
}

TEST(GatherScatter, MinMaxMulOps) {
  std::vector<std::int64_t> ids = {7, 7, 7};
  GatherScatter gs(ids);
  std::vector<double> u = {2, -3, 5};
  auto v = u;
  gs.op(v.data(), GsOp::Min);
  EXPECT_DOUBLE_EQ(v[0], -3.0);
  v = u;
  gs.op(v.data(), GsOp::Max);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
  v = u;
  gs.op(v.data(), GsOp::Mul);
  EXPECT_DOUBLE_EQ(v[1], -30.0);
}

TEST(GatherScatter, VectorMode) {
  std::vector<std::int64_t> ids = {0, 1, 0};
  GatherScatter gs(ids);
  // 2 dofs per node, AoS.
  std::vector<double> u = {1, 10, 2, 20, 3, 30};
  gs.op_vec(u.data(), 2, GsOp::Add);
  EXPECT_DOUBLE_EQ(u[0], 4.0);
  EXPECT_DOUBLE_EQ(u[1], 40.0);
  EXPECT_DOUBLE_EQ(u[4], 4.0);
  EXPECT_DOUBLE_EQ(u[5], 40.0);
  EXPECT_DOUBLE_EQ(u[2], 2.0);
}

TEST(GatherScatter, AddIsIdempotentAfterAveraging) {
  // dssum of an already-summed-and-averaged field is stable.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 3),
                                tsem::linspace(0, 1, 3));
  const auto m = build_mesh(spec, 5);
  GatherScatter gs(m.node_id);
  std::vector<double> u(m.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = std::sin(3 * m.x[i]) + m.y[i];
  auto v = u;  // already C0 (same value on all copies)
  gs.op(v.data(), GsOp::Add);
  const auto mult = gs.multiplicity();
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(v[i], u[i] * mult[i], 1e-12);
}

TEST(GatherScatter, MultiplicityMatchesMeshTopology) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, 3);
  GatherScatter gs(m.node_id);
  const auto mult = gs.multiplicity();
  // The center vertex of a 2x2 element box has multiplicity 4; interior
  // element nodes 1; shared edges 2.
  double maxmult = 0;
  for (double v : mult) maxmult = std::max(maxmult, v);
  EXPECT_DOUBLE_EQ(maxmult, 4.0);
  // Sum of 1/mult = number of global nodes.
  double s = 0;
  for (double v : mult) s += 1.0 / v;
  EXPECT_NEAR(s, static_cast<double>(m.nglob), 1e-9);
}

TEST(GatherScatter, LocalGlobalRoundTrip) {
  std::vector<std::int64_t> ids = {5, 3, 5, 9};
  GatherScatter gs(ids);
  EXPECT_EQ(gs.nglobal(), 3);
  std::vector<double> u = {1, 2, 3, 4};
  std::vector<double> ug(3);
  gs.local_to_global(u.data(), ug.data());
  // dense order follows sorted ids: 3 -> 0, 5 -> 1, 9 -> 2.
  EXPECT_DOUBLE_EQ(ug[0], 2.0);
  EXPECT_DOUBLE_EQ(ug[1], 4.0);
  EXPECT_DOUBLE_EQ(ug[2], 4.0);
  std::vector<double> v(4);
  gs.global_to_local(ug.data(), v.data());
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 4.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
}

TEST(CommProfile, TwoRankStrip) {
  // 4 elements in a row, order N: ranks {0,0,1,1}: interface = one GLL
  // line shared between elements 1 and 2.
  const int n = 4;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 4, 4),
                                tsem::linspace(0, 1, 1));
  const auto m = build_mesh(spec, n);
  const std::vector<int> owner = {0, 0, 1, 1};
  const auto prof = tsem::gs_comm_profile(m.node_id, m.npe, owner, 2);
  EXPECT_EQ(prof.nranks, 2);
  EXPECT_EQ(prof.neighbors[0], 1);
  EXPECT_EQ(prof.neighbors[1], 1);
  // N+1 nodes on the shared line, each sent once in each direction.
  EXPECT_EQ(prof.send_words[0], n + 1);
  EXPECT_EQ(prof.send_words[1], n + 1);
}

TEST(CommProfile, FourRankQuadrants) {
  const int n = 3, k = 4;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  const auto m = build_mesh(spec, n);
  std::vector<int> owner(m.nelem);
  for (int e = 0; e < m.nelem; ++e) {
    const int i = e % k, j = e / k;
    owner[e] = (i >= k / 2) + 2 * (j >= k / 2);
  }
  const auto prof = tsem::gs_comm_profile(m.node_id, m.npe, owner, 4);
  // Every rank touches the center crosspoint, so all ranks are mutual
  // neighbors.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(prof.neighbors[r], 3);
  // Interface per rank: half the domain side twice = 2*(k/2*n+1)-ish
  // words to the two adjacent ranks plus 3 copies of the center point.
  // Exact count: nodes on the two half-interfaces excluding the center:
  // each sent to 1 other rank; center sent to 3.
  const int half_line = (k / 2) * n + 1;  // nodes on a half-interface line
  const std::int64_t expect = 2 * (half_line - 1) + 3;
  for (int r = 0; r < 4; ++r) EXPECT_EQ(prof.send_words[r], expect);
}

}  // namespace
