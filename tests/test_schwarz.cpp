// Tests for the additive overlapping Schwarz preconditioner on the
// consistent Poisson operator E.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "solver/cg.hpp"
#include "solver/overlap.hpp"
#include "solver/precision.hpp"
#include "solver/schwarz.hpp"

namespace {

using tsem::build_mesh;
using tsem::PressureSystem;
using tsem::SchwarzOptions;
using tsem::SchwarzPrecond;
using tsem::Space;

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(GhostExchange, MirrorsNeighborValues2D) {
  // Two elements side by side: ghosts across the shared face must be the
  // neighbor's first-layer values; ghosts at physical boundaries are 0.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2, 2),
                                tsem::linspace(0, 1, 1));
  Space s(build_mesh(spec, 5));  // ng1 = 4
  PressureSystem p(s, s.make_mask(0xF));
  tsem::GhostExchange gx(p, 2);
  const std::size_t n = p.nloc();
  std::vector<double> pv(n);
  for (std::size_t i = 0; i < n; ++i) pv[i] = static_cast<double>(i);
  std::vector<double> ghost(2 * gx.nslots());
  gx.exchange(pv.data(), ghost.data());

  const int ng = p.ng1();
  // Element 0, face x-hi (f=1), layer l, tangential t corresponds to
  // element 1's dof at (i=l, j=t).
  for (int l = 0; l < 2; ++l) {
    for (int t = 0; t < ng; ++t) {
      const std::size_t slot = (0 * 4 + 1) * static_cast<std::size_t>(ng) + t;
      const double got = ghost[l * gx.nslots() + slot];
      const double expect = pv[static_cast<std::size_t>(ng) * ng +  // elem 1
                               t * ng + l];
      EXPECT_DOUBLE_EQ(got, expect);
    }
  }
  // Element 0, face x-lo: physical boundary -> zero ghosts.
  for (int l = 0; l < 2; ++l)
    for (int t = 0; t < ng; ++t) {
      const std::size_t slot = (0 * 4 + 0) * static_cast<std::size_t>(ng) + t;
      EXPECT_DOUBLE_EQ(ghost[l * gx.nslots() + slot], 0.0);
    }
}

TEST(GhostExchange, ScatterAddIsTransposeOfExchange) {
  // <exchange(p), v> == <p, scatter_add(v)> — the exchange pair is
  // adjoint, which additive Schwarz symmetry relies on.
  auto spec = tsem::annulus_spec(0.9, 2.1, 2, 6, 1.2);
  Space s(build_mesh(spec, 6));
  PressureSystem p(s, s.make_mask(0x3));
  tsem::GhostExchange gx(p, 1);
  const std::size_t n = p.nloc();
  const auto pv = random_vec(n, 3);
  const auto vv = random_vec(gx.nslots(), 5);
  std::vector<double> ghost(gx.nslots());
  gx.exchange(pv.data(), ghost.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < gx.nslots(); ++i) lhs += ghost[i] * vv[i];
  std::vector<double> back(n, 0.0);
  gx.scatter_add(vv.data(), back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < n; ++i) rhs += back[i] * pv[i];
  EXPECT_NEAR(lhs, rhs, 1e-11 * (1.0 + std::fabs(lhs)));
}

TEST(Schwarz, PreconditionerIsSymmetric) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 8, 1.2);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  SchwarzOptions opt;
  // This asserts FP64-level symmetry, so pin the precision regardless of
  // the ambient TSEM_PRECOND_FP32 default; the FP32 apply's symmetry is
  // covered at its own tolerance in test_precision.
  opt.precision = tsem::PrecondPrecision::Fp64;
  SchwarzPrecond prec(p, opt);
  const std::size_t n = p.nloc();
  const auto a = random_vec(n, 7);
  const auto b = random_vec(n, 9);
  std::vector<double> ma(n), mb(n);
  prec.apply(a.data(), ma.data());
  prec.apply(b.data(), mb.data());
  double ab = 0.0, ba = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ab += b[i] * ma[i];
    ba += a[i] * mb[i];
  }
  EXPECT_NEAR(ab, ba, 1e-9 * (1.0 + std::fabs(ab)));
}

int solve_iterations(PressureSystem& p, const SchwarzOptions* opt,
                     double tol = 1e-5) {
  const std::size_t n = p.nloc();
  auto pstar = random_vec(n, 41);
  p.remove_mean(pstar.data());
  std::vector<double> g(n), sol(n, 0.0);
  p.apply_E(pstar.data(), g.data());

  std::unique_ptr<SchwarzPrecond> prec;
  if (opt) prec = std::make_unique<SchwarzPrecond>(p, *opt);
  auto apply = [&](const double* x, double* y) { p.apply_E(x, y); };
  auto pdot = [n](const double* x, const double* y) {
    double s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) s2 += x[i] * y[i];
    return s2;
  };
  auto precond = [&](const double* r, double* z) {
    if (prec) {
      prec->apply(r, z);
      p.remove_mean(z);
    } else {
      std::copy(r, r + n, z);
    }
  };
  tsem::CgOptions copt;
  copt.tol = tol;
  copt.max_iter = 4000;
  auto res = tsem::pcg(n, apply, precond, pdot, g.data(), sol.data(), copt);
  EXPECT_TRUE(res.converged);
  return res.iterations;
}

TEST(Schwarz, AcceleratesPressureSolve) {
  auto spec = tsem::annulus_spec(0.6, 2.4, 3, 10, 1.4);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  const int plain = solve_iterations(p, nullptr);
  SchwarzOptions opt;  // FDM + coarse
  const int schwarz = solve_iterations(p, &opt);
  EXPECT_LT(schwarz, plain / 2);
}

TEST(Schwarz, CoarseGridMatters) {
  auto spec = tsem::annulus_spec(0.6, 2.4, 3, 10, 1.4);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  SchwarzOptions with;
  SchwarzOptions without;
  without.use_coarse = false;
  const int iw = solve_iterations(p, &with);
  const int iwo = solve_iterations(p, &without);
  EXPECT_LT(iw, iwo);
}

TEST(Schwarz, FemOverlapOrdering) {
  auto spec = tsem::annulus_spec(0.7, 2.2, 2, 8, 1.3);
  Space s(build_mesh(spec, 7));
  PressureSystem p(s, s.make_mask(0x3));
  SchwarzOptions fem0, fem1, fem3;
  fem0.local = fem1.local = fem3.local = SchwarzOptions::Local::FemP1;
  fem0.overlap = 0;
  fem1.overlap = 1;
  fem3.overlap = 3;
  const int i0 = solve_iterations(p, &fem0);
  const int i1 = solve_iterations(p, &fem1);
  const int i3 = solve_iterations(p, &fem3);
  // Overlap helps (paper Table 2): N_o = 1 beats N_o = 0; N_o = 3 is at
  // least comparable to N_o = 1.
  EXPECT_LT(i1, i0);
  EXPECT_LE(i3, i1 + 2);
}

TEST(GhostExchange, MirrorsNeighborValues3D) {
  // Two elements stacked in z; check the ghost across the shared z-face.
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 2, 2));
  Space s(build_mesh(spec, 5));  // ng1 = 4
  PressureSystem p(s, s.make_mask(0x3F));
  tsem::GhostExchange gx(p, 1);
  const std::size_t n = p.nloc();
  std::vector<double> pv(n);
  for (std::size_t i = 0; i < n; ++i) pv[i] = static_cast<double>(i) + 1.0;
  std::vector<double> ghost(gx.nslots());
  gx.exchange(pv.data(), ghost.data());

  const int ng = p.ng1();
  const int nt = ng * ng;
  // Element 0, face z-hi (f = 5), tangential t = (i, j): neighbor dof is
  // element 1's node (i, j, k=0).
  for (int t = 0; t < nt; ++t) {
    const std::size_t slot = (0 * 6 + 5) * static_cast<std::size_t>(nt) + t;
    const int i = t % ng, j = t / ng;
    const double expect =
        pv[static_cast<std::size_t>(ng) * ng * ng +  // element 1
           (0 * ng + j) * ng + i];
    EXPECT_DOUBLE_EQ(ghost[slot], expect);
  }
  // Element 0, face z-lo: physical boundary, zero ghosts.
  for (int t = 0; t < nt; ++t) {
    const std::size_t slot = (0 * 6 + 4) * static_cast<std::size_t>(nt) + t;
    EXPECT_DOUBLE_EQ(ghost[slot], 0.0);
  }
}

TEST(GhostExchange, AdjointIn3D) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 2, 2),
                                tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 2, 2));
  Space s(build_mesh(spec, 4));
  PressureSystem p(s, s.make_mask(0x3F));
  tsem::GhostExchange gx(p, 1);
  const std::size_t n = p.nloc();
  const auto pv = random_vec(n, 21);
  const auto vv = random_vec(gx.nslots(), 23);
  std::vector<double> ghost(gx.nslots());
  gx.exchange(pv.data(), ghost.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < gx.nslots(); ++i) lhs += ghost[i] * vv[i];
  std::vector<double> back(n, 0.0);
  gx.scatter_add(vv.data(), back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < n; ++i) rhs += back[i] * pv[i];
  EXPECT_NEAR(lhs, rhs, 1e-11 * (1.0 + std::fabs(lhs)));
}

TEST(Schwarz, LocalSolverSweepMatchesPrecondBitwise) {
  // SchwarzLocalSolver (the mp executed tier's fork-safe element-list
  // entry point) driven over all elements with the production ghost
  // volumes, plus one scatter_add, must reproduce SchwarzPrecond::apply
  // bitwise (FP64 Fdm local, no coarse term).
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 2, 2),
                                tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1.3, 1));
  Space s(build_mesh(spec, 4));  // ng1 = 3 > overlap
  PressureSystem p(s, s.make_mask(0x3F));
  SchwarzOptions opt;
  opt.use_coarse = false;
  opt.overlap = 1;
  opt.precision = tsem::PrecondPrecision::Fp64;
  const SchwarzPrecond pre(p, opt);
  const tsem::GhostExchange& gx = *pre.ghost_exchange();

  const auto r = random_vec(p.nloc(), 29);
  std::vector<double> z(p.nloc());
  pre.apply(r.data(), z.data());

  const tsem::SchwarzLocalSolver sl(s.mesh(), p.ng1(), opt.overlap);
  std::vector<double> ghost(static_cast<std::size_t>(gx.nlayers()) *
                            gx.nslots());
  gx.exchange(r.data(), ghost.data());
  std::vector<double> z2(p.nloc(), 0.0);
  std::vector<double> vout(ghost.size());
  std::vector<double> work(sl.work_doubles());
  std::vector<std::int32_t> all(static_cast<std::size_t>(s.mesh().nelem));
  for (std::size_t e = 0; e < all.size(); ++e)
    all[e] = static_cast<std::int32_t>(e);
  sl.solve_elems(all.data(), nullptr, all.size(), r.data(), ghost.data(),
                 gx.nslots(), z2.data(), vout.data(), work.data());
  gx.scatter_add(vout.data(), z2.data());

  ASSERT_EQ(0, std::memcmp(z.data(), z2.data(), z.size() * sizeof(double)));
}

TEST(Schwarz, Works3D) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  Space s(build_mesh(spec, 5));
  PressureSystem p(s, s.make_mask(0x3F));
  const int plain = solve_iterations(p, nullptr, 1e-6);
  SchwarzOptions opt;
  const int schwarz = solve_iterations(p, &opt, 1e-6);
  EXPECT_LT(schwarz, plain);
}

}  // namespace
