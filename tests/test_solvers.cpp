// Tests for FDM local solves, the XXT coarse solver and its baselines,
// and the CG driver.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "fem/fem.hpp"
#include "solver/cg.hpp"
#include "solver/coarse.hpp"
#include "solver/fdm.hpp"
#include "solver/xxt.hpp"
#include "tensor/linalg.hpp"

namespace {

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Fdm, MatchesDenseSolve2D) {
  // Nonuniform grids in each direction.
  std::array<std::vector<double>, 3> pts;
  pts[0] = {-0.3, 0.0, 0.4, 0.9, 1.5, 1.9, 2.2};  // 5 interior
  pts[1] = {-0.2, 0.1, 0.5, 1.1, 1.4};            // 3 interior
  tsem::FdmLocal fdm(pts, 2);
  const int mx = 5, my = 3, n = mx * my;
  ASSERT_EQ(fdm.extent(0), mx);
  ASSERT_EQ(fdm.extent(1), my);

  // Dense operator: B_y (x) A_x + A_y (x) B_x.
  std::vector<double> ax, bx, ay, by;
  tsem::fem1d_operators(pts[0], ax, bx);
  tsem::fem1d_operators(pts[1], ay, by);
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int j1 = 0; j1 < my; ++j1)
    for (int i1 = 0; i1 < mx; ++i1)
      for (int j2 = 0; j2 < my; ++j2)
        for (int i2 = 0; i2 < mx; ++i2) {
          double v = 0.0;
          if (j1 == j2) v += by[j1] * ax[i1 * mx + i2];
          if (i1 == i2) v += ay[j1 * my + j2] * bx[i1];
          a[(j1 * mx + i1) * n + (j2 * mx + i2)] = v;
        }

  const auto r = random_vec(n, 3);
  std::vector<double> z(n), work(3 * n);
  fdm.solve(r.data(), z.data(), work.data());

  auto dense = a;
  ASSERT_TRUE(tsem::cholesky_factor(dense.data(), n));
  auto zref = r;
  tsem::cholesky_solve(dense.data(), n, zref.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(z[i], zref[i], 1e-10);
}

TEST(Fdm, MatchesDenseSolve3D) {
  std::array<std::vector<double>, 3> pts;
  pts[0] = {0.0, 0.3, 0.7, 1.0, 1.2};
  pts[1] = {0.0, 0.2, 0.9, 1.3};
  pts[2] = {-0.1, 0.4, 0.8, 1.1};
  tsem::FdmLocal fdm(pts, 3);
  const int mx = 3, my = 2, mz = 2, n = mx * my * mz;

  std::vector<double> a1[3], b1[3];
  for (int d = 0; d < 3; ++d) tsem::fem1d_operators(pts[d], a1[d], b1[d]);
  const int m[3] = {mx, my, mz};
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  auto idx = [&](int i, int j, int k) { return (k * my + j) * mx + i; };
  for (int k1 = 0; k1 < mz; ++k1)
    for (int j1 = 0; j1 < my; ++j1)
      for (int i1 = 0; i1 < mx; ++i1)
        for (int k2 = 0; k2 < mz; ++k2)
          for (int j2 = 0; j2 < my; ++j2)
            for (int i2 = 0; i2 < mx; ++i2) {
              double v = 0.0;
              if (j1 == j2 && k1 == k2) v += b1[2][k1] * b1[1][j1] * a1[0][i1 * m[0] + i2];
              if (i1 == i2 && k1 == k2) v += b1[2][k1] * a1[1][j1 * m[1] + j2] * b1[0][i1];
              if (i1 == i2 && j1 == j2) v += a1[2][k1 * m[2] + k2] * b1[1][j1] * b1[0][i1];
              a[idx(i1, j1, k1) * n + idx(i2, j2, k2)] = v;
            }

  const auto r = random_vec(n, 7);
  std::vector<double> z(n), work(3 * n);
  fdm.solve(r.data(), z.data(), work.data());
  auto dense = a;
  ASSERT_TRUE(tsem::cholesky_factor(dense.data(), n));
  auto zref = r;
  tsem::cholesky_solve(dense.data(), n, zref.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(z[i], zref[i], 1e-10);
}

// solve_batch must reproduce per-element solve() BITWISE: the Schwarz
// preconditioner batches its local solves, and the PR-3 thread-count
// invariance of the whole pressure solve rides on batched == sequential.
TEST(Fdm, BatchedSolveMatchesSequentialBitwise) {
  for (int dim = 2; dim <= 3; ++dim) {
    std::array<std::vector<double>, 3> pts;
    pts[0] = {-0.3, 0.0, 0.4, 0.9, 1.5, 1.9, 2.2};
    pts[1] = {-0.2, 0.1, 0.5, 1.1, 1.4};
    pts[2] = {0.0, 0.3, 0.9, 1.2};
    tsem::FdmLocal fdm(pts, dim);
    const std::size_t n = fdm.size();
    const int nb = 7;  // deliberately not a divisor-friendly count
    const auto r = random_vec(n * nb, 11);
    std::vector<double> zseq(n * nb), zbat(n * nb, -1.0);
    std::vector<double> w1(3 * n), wb(3 * n * nb);
    for (int e = 0; e < nb; ++e)
      fdm.solve(r.data() + e * n, zseq.data() + e * n, w1.data());
    fdm.solve_batch(r.data(), zbat.data(), nb, wb.data());
    for (std::size_t i = 0; i < zseq.size(); ++i)
      ASSERT_EQ(zbat[i], zseq[i]) << "dim " << dim << " entry " << i;
    // In-place batch (z aliasing r) must give the same answer.
    std::vector<double> zi = r;
    fdm.solve_batch(zi.data(), zi.data(), nb, wb.data());
    for (std::size_t i = 0; i < zseq.size(); ++i)
      ASSERT_EQ(zi[i], zseq[i]) << "aliased, dim " << dim << " entry " << i;
  }
}

class XxtLevels : public ::testing::TestWithParam<int> {};

TEST_P(XxtLevels, ExactSolveOnPoisson5) {
  const int nlevels = GetParam();
  const int nx = 9;
  const auto a = tsem::poisson5(nx, nx);
  const int n = a.n();
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }
  const auto nd = tsem::nested_dissection(a, x, y, z, nlevels);
  tsem::XxtSolver solver(a, nd);
  const auto b = random_vec(n, 13);
  std::vector<double> sol(n), check(n);
  solver.solve(b.data(), sol.data());
  a.matvec(sol.data(), check.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, XxtLevels, ::testing::Values(0, 1, 2, 3, 4));

TEST(Xxt, SparsityAndCommBounds) {
  const int nx = 31;  // n = 961
  const auto a = tsem::poisson5(nx, nx);
  const int n = a.n();
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }
  const auto nd = tsem::nested_dissection(a, x, y, z, 4);  // 16 subdomains
  tsem::XxtSolver solver(a, nd);
  // X must be genuinely sparse: far below the dense n^2/2.
  EXPECT_LT(solver.nnz(), static_cast<std::int64_t>(n) * n / 4);
  // Exactness at this size too.
  const auto b = random_vec(n, 17);
  std::vector<double> sol(n), check(n);
  solver.solve(b.data(), sol.data());
  a.matvec(sol.data(), check.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-8);
}

TEST(Xxt, CommVolumeScalesLikeSqrtN) {
  // Paper claim (2D): per-solve communication ~ c sqrt(n) log2 P, i.e.
  // sublinear in n.  Quadrupling n should roughly double the critical
  // path volume, not quadruple it.
  auto critical_words = [](int nx, int nlevels) {
    const auto a = tsem::poisson5(nx, nx);
    const int n = a.n();
    std::vector<double> x(n), y(n), z;
    for (int j = 0; j < nx; ++j)
      for (int i = 0; i < nx; ++i) {
        x[j * nx + i] = i;
        y[j * nx + i] = j;
      }
    const auto nd = tsem::nested_dissection(a, x, y, z, nlevels);
    tsem::XxtSolver solver(a, nd);
    std::int64_t c = 0;
    for (auto v : solver.level_msg_words()) c += v;
    return c;
  };
  const auto c15 = critical_words(15, 4);
  const auto c31 = critical_words(31, 4);  // ~4.3x the dofs
  EXPECT_LT(static_cast<double>(c31),
            2.0 * std::sqrt(31.0 * 31 / (15.0 * 15)) *
                static_cast<double>(c15));
}

TEST(CoarseBackends, AllAgree) {
  const int nx = 12;
  const auto a = tsem::poisson5(nx, nx);
  const int n = a.n();
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }
  tsem::XxtCoarse xxt(a, x, y, z, 3);
  tsem::RedundantLuCoarse lu(a);
  tsem::DistributedInvCoarse inv(a);
  const auto b = random_vec(n, 21);
  std::vector<double> s1(n), s2(n), s3(n);
  xxt.solve(b.data(), s1.data());
  lu.solve(b.data(), s2.data());
  inv.solve(b.data(), s3.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-8);
    EXPECT_NEAR(s1[i], s3[i], 1e-8);
  }
}

TEST(PinDof, RegularizesSingularNeumann) {
  // 1D Neumann Laplacian (singular): pin dof 0, then solve consistency.
  const int n = 10;
  std::vector<tsem::Triplet> trip;
  for (int i = 0; i < n; ++i) {
    double d = 0.0;
    if (i > 0) {
      trip.push_back({i, i - 1, -1.0});
      d += 1.0;
    }
    if (i < n - 1) {
      trip.push_back({i, i + 1, -1.0});
      d += 1.0;
    }
    trip.push_back({i, i, d});
  }
  tsem::CsrMatrix a(n, std::move(trip));
  const auto ap = tsem::pin_dof(a, 0);
  tsem::RedundantLuCoarse solver(ap);
  // b consistent (zero mean), b[0] forced to 0 as the precond does.
  std::vector<double> b(n, 1.0);
  b[n - 1] = -static_cast<double>(n - 1);
  b[0] = 0.0;
  std::vector<double> sol(n);
  solver.solve(b.data(), sol.data());
  // Residual on non-pinned rows of the ORIGINAL operator.
  std::vector<double> r(n);
  a.matvec(sol.data(), r.data());
  for (int i = 1; i < n - 1; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

TEST(Cg, SolvesSpdSystemAndRecordsHistory) {
  const int n = 40;
  // SPD tridiagonal system.
  auto apply = [n](const double* x, double* y) {
    for (int i = 0; i < n; ++i) {
      double s = 3.0 * x[i];
      if (i > 0) s -= x[i - 1];
      if (i < n - 1) s -= x[i + 1];
      y[i] = s;
    }
  };
  auto dot = [n](const double* x, const double* y) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  };
  const auto b = random_vec(n, 25);
  std::vector<double> x(n, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-12;
  opt.record_history = true;
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), opt);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.history.size(), 2u);
  EXPECT_LT(res.final_residual, 1e-12);
  std::vector<double> check(n);
  apply(x.data(), check.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

// --- SolveStatus exit-path suite -------------------------------------
//
// One test per terminal status.  Shared invariant, asserted on EVERY
// path: with record_history on, history.size() == iterations + 1 (entry
// zero is the initial residual; each completed iteration appends one).

namespace status_suite {

constexpr int kN = 40;

void tridiag(const double* x, double* y) {
  for (int i = 0; i < kN; ++i) {
    double s = 3.0 * x[i];
    if (i > 0) s -= x[i - 1];
    if (i < kN - 1) s -= x[i + 1];
    y[i] = s;
  }
}

double dotn(const double* x, const double* y) {
  double s = 0.0;
  for (int i = 0; i < kN; ++i) s += x[i] * y[i];
  return s;
}

void check_invariant(const tsem::CgResult& res) {
  ASSERT_EQ(res.history.size(), static_cast<std::size_t>(res.iterations) + 1);
  if (std::isfinite(res.initial_residual))
    EXPECT_DOUBLE_EQ(res.history.front(), res.initial_residual);
  else  // poisoned rhs: both must be the same NaN entry (NaN != NaN)
    EXPECT_TRUE(std::isnan(res.history.front()));
}

}  // namespace status_suite

TEST(CgStatus, Converged) {
  using namespace status_suite;
  const auto b = random_vec(kN, 31);
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-10;
  opt.record_history = true;
  const auto res = tsem::pcg(kN, tridiag, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::Converged);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.iterations, 0);
  check_invariant(res);
  EXPECT_DOUBLE_EQ(res.history.back(), res.final_residual);
  EXPECT_LE(res.final_residual, 1e-10);
}

TEST(CgStatus, MaxIter) {
  using namespace status_suite;
  const auto b = random_vec(kN, 33);
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-30;  // unattainable
  opt.max_iter = 5;
  opt.record_history = true;
  const auto res = tsem::pcg(kN, tridiag, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::MaxIter);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 5);
  check_invariant(res);
  EXPECT_TRUE(std::isfinite(res.final_residual));
}

TEST(CgStatus, StalledWhenResidualStopsImproving) {
  using namespace status_suite;
  // A condition number of ~1e12 sends unpreconditioned CG through a long
  // residual plateau (the classic hump before superlinear convergence
  // kicks in); a modest stall window gives up inside it.  The graded
  // off-diagonal coupling keeps the matrix SPD.
  std::vector<double> d(kN);
  for (int i = 0; i < kN; ++i) d[i] = std::pow(10.0, 12.0 * i / (kN - 1));
  auto apply = [&d](const double* x, double* y) {
    for (int i = 0; i < kN; ++i) {
      double s = d[i] * x[i];
      if (i > 0) s += 0.1 * std::sqrt(d[i] * d[i - 1]) * x[i - 1];
      if (i < kN - 1) s += 0.1 * std::sqrt(d[i] * d[i + 1]) * x[i + 1];
      y[i] = s;
    }
  };
  const auto b = random_vec(kN, 35);
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-30;  // out of reach within the stall window
  opt.relative = false;
  opt.max_iter = 10000;
  opt.stall_window = 25;
  opt.record_history = true;
  const auto res = tsem::pcg(kN, apply, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::Stalled);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.iterations, 0);
  check_invariant(res);
  EXPECT_TRUE(std::isfinite(res.final_residual));
  EXPECT_DOUBLE_EQ(res.history.back(), res.final_residual);
  // A stall is a soft failure: the recovery ladder keeps the iterate.
  EXPECT_FALSE(tsem::is_hard_failure(res.status));
}

TEST(CgStatus, BreakdownOnIndefiniteOperator) {
  using namespace status_suite;
  auto negate = [](const double* x, double* y) {
    for (int i = 0; i < kN; ++i) y[i] = -x[i];  // negative definite: pAp < 0
  };
  const auto b = random_vec(kN, 37);
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.record_history = true;
  const auto res = tsem::pcg(kN, negate, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::Breakdown);
  EXPECT_EQ(res.iterations, 0);
  check_invariant(res);
  // x was never updated, so the reported residual is the (finite) initial.
  EXPECT_TRUE(std::isfinite(res.final_residual));
  EXPECT_DOUBLE_EQ(res.final_residual, res.initial_residual);
  EXPECT_TRUE(tsem::is_hard_failure(res.status));
}

TEST(CgStatus, NonFinitePoisonedRhs) {
  using namespace status_suite;
  auto b = random_vec(kN, 39);
  b[7] = std::nan("");
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.record_history = true;
  const auto res = tsem::pcg(kN, tridiag, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::NonFinite);
  EXPECT_EQ(res.iterations, 0);
  check_invariant(res);
  // x must be untouched by the poisoned solve.
  for (int i = 0; i < kN; ++i) EXPECT_DOUBLE_EQ(x[i], 0.0);
}

TEST(CgStatus, NonFiniteMidSolveReportsLastFiniteResidual) {
  using namespace status_suite;
  // Operator turns sour on the 4th apply (one for the initial residual,
  // two healthy iterations, then a NaN that poisons p.A.p before the
  // third iteration can complete).
  int calls = 0;
  auto flaky = [&calls](const double* x, double* y) {
    tridiag(x, y);
    if (++calls >= 4) y[0] = std::nan("");
  };
  const auto b = random_vec(kN, 41);
  std::vector<double> x(kN, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-30;  // keep iterating until the fault fires
  opt.record_history = true;
  const auto res = tsem::pcg(kN, flaky, tsem::identity_precond(kN), dotn,
                             b.data(), x.data(), opt);
  EXPECT_EQ(res.status, tsem::SolveStatus::NonFinite);
  EXPECT_EQ(res.iterations, 2);
  check_invariant(res);
  // The stale-residual bug fix: final_residual is the last FINITE norm,
  // not NaN and not the initial residual.
  EXPECT_TRUE(std::isfinite(res.final_residual));
  EXPECT_DOUBLE_EQ(res.final_residual, res.history.back());
  EXPECT_LT(res.final_residual, res.initial_residual);
}

TEST(Cg, JacobiReducesIterationsOnScaledSystem) {
  const int n = 60;
  std::vector<double> diag(n);
  for (int i = 0; i < n; ++i) diag[i] = 1.0 + 99.0 * i / (n - 1);
  auto apply = [&](const double* x, double* y) {
    for (int i = 0; i < n; ++i) {
      double s = diag[i] * x[i];
      if (i > 0) s -= 0.3 * x[i - 1];
      if (i < n - 1) s -= 0.3 * x[i + 1];
      y[i] = s;
    }
  };
  auto dot = [n](const double* x, const double* y) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  };
  const auto b = random_vec(n, 27);
  tsem::CgOptions opt;
  opt.tol = 1e-10;
  std::vector<double> x1(n, 0.0), x2(n, 0.0);
  auto r1 = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                      x1.data(), opt);
  auto r2 = tsem::pcg(n, apply, tsem::jacobi_precond(diag), dot, b.data(),
                      x2.data(), opt);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

}  // namespace
