// Integration tests: Space, Helmholtz/stiffness operators, gradient,
// filter, and spectrally convergent Poisson solves with Jacobi PCG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/helmholtz.hpp"
#include "core/operators.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "poly/filter.hpp"
#include "solver/cg.hpp"

namespace {

using tsem::build_mesh;
using tsem::Space;
using tsem::TensorWork;

Space make_box_space_2d(int k, int order) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, k),
                                tsem::linspace(0, 1, k));
  return Space(build_mesh(spec, order));
}

TEST(Space, VolumeAndIntegration) {
  auto s = make_box_space_2d(3, 6);
  EXPECT_NEAR(s.volume(), 1.0, 1e-12);
  std::vector<double> u(s.nlocal());
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = m.x[i] * m.y[i];
  EXPECT_NEAR(s.integrate(u.data()), 0.25, 1e-12);
}

TEST(Space, MaskZeroOnTaggedBoundary) {
  auto s = make_box_space_2d(2, 5);
  const auto mask = s.make_mask(1u << tsem::kFaceXLo);
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (std::fabs(m.x[i]) < 1e-12)
      EXPECT_EQ(mask[i], 0.0);
    else
      EXPECT_EQ(mask[i], 1.0);
  }
}

TEST(Stiffness, MatchesDirichletEnergy) {
  // u^T A u == integral |grad u|^2 for polynomial u (exact quadrature on
  // affine elements up to the basis degree).
  auto s = make_box_space_2d(2, 8);
  const auto& m = s.mesh();
  std::vector<double> u(s.nlocal()), au(s.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = m.x[i] * m.x[i] + 2.0 * m.x[i] * m.y[i];
  TensorWork work;
  tsem::apply_stiffness_local(m, u.data(), au.data(), work);
  double energy = 0.0;  // local bilinear form: sum u_L . (A_L u_L)
  for (std::size_t i = 0; i < u.size(); ++i) energy += u[i] * au[i];
  // grad u = (2x + 2y, 2x); integral over [0,1]^2 of (2x+2y)^2 + 4x^2
  // = integral 4x^2+8xy+4y^2+4x^2 = 8/3 + 2 + 4/3 = 6.
  EXPECT_NEAR(energy, 6.0, 1e-10);
}

TEST(Stiffness, AnnihilatesConstants) {
  auto spec = tsem::annulus_spec(0.7, 2.0, 2, 8, 1.3);
  Space s(build_mesh(spec, 6));
  std::vector<double> u(s.nlocal(), 1.0), au(s.nlocal());
  TensorWork work;
  tsem::apply_stiffness_local(s.mesh(), u.data(), au.data(), work);
  s.dssum(au.data());
  for (double v : au) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Stiffness, GlobalOperatorIsSymmetric) {
  auto spec = tsem::annulus_spec(0.8, 1.9, 2, 6, 1.2);
  Space s(build_mesh(spec, 5));
  auto mask = s.make_mask(0x3);
  tsem::HelmholtzOp H(s, 1.0, 0.7, mask);
  // Symmetry in the 1/mult-weighted dot: v.(Hu) == u.(Hv) for C0 fields.
  const auto& m = s.mesh();
  std::vector<double> u(s.nlocal()), v(s.nlocal()), hu(s.nlocal()),
      hv(s.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = std::sin(m.x[i]) * m.y[i];
    v[i] = std::cos(m.y[i]) + m.x[i] * m.x[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] *= mask[i];
    v[i] *= mask[i];
  }
  H.apply(u.data(), hu.data());
  H.apply(v.data(), hv.data());
  EXPECT_NEAR(s.glsum_dot(v.data(), hu.data()),
              s.glsum_dot(u.data(), hv.data()), 1e-9);
}

TEST(StiffnessDiagonal, MatchesOperatorColumns) {
  // diag(A)_i = e_i . A e_i on the local (unassembled) operator.
  auto spec = tsem::annulus_spec(0.9, 1.8, 1, 6, 1.0);
  const auto m = build_mesh(spec, 4);
  const auto diag = tsem::stiffness_diagonal_local(m);
  TensorWork work;
  std::vector<double> e(m.nlocal(), 0.0), ae(m.nlocal());
  // Check a scattering of entries in the first element.
  for (int n : {0, 3, 7, 12, 24}) {
    std::fill(e.begin(), e.end(), 0.0);
    e[n] = 1.0;
    tsem::apply_stiffness_local(m, e.data(), ae.data(), work);
    EXPECT_NEAR(ae[n], diag[n], 1e-10 * (1.0 + std::fabs(diag[n])));
  }
}

TEST(StiffnessDiagonal3D, MatchesOperatorColumns) {
  auto spec = tsem::bump_channel_spec(tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 1, 1), 1.0, 1.0, 0.6,
                                      0.15);
  const auto m = build_mesh(spec, 4);
  const auto diag = tsem::stiffness_diagonal_local(m);
  TensorWork work;
  std::vector<double> e(m.nlocal(), 0.0), ae(m.nlocal());
  for (int n : {0, 11, 37, 62, 99}) {
    std::fill(e.begin(), e.end(), 0.0);
    e[n] = 1.0;
    tsem::apply_stiffness_local(m, e.data(), ae.data(), work);
    EXPECT_NEAR(ae[n], diag[n], 1e-10 * (1.0 + std::fabs(diag[n])));
  }
}

TEST(Gradient, ExactForPolynomials) {
  // Skewed bilinear elements: the mapping is polynomial, so a polynomial
  // field in (x, y) is exactly representable and its gradient exact.
  tsem::MeshSpec2D spec;
  spec.elems.push_back([](double r, double s) {
    return std::array<double, 2>{r + 0.1 * s + 0.05 * r * s, s - 0.2 * r};
  });
  spec.elems.push_back([](double r, double s) {
    return std::array<double, 2>{2.15 + r + 0.1 * s + 0.05 * (r + 2) * s,
                                 s - 0.2 * (r + 2)};
  });
  const auto m = build_mesh(spec, 7);
  std::vector<double> u(m.nlocal()), gx(m.nlocal()), gy(m.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = m.x[i] * m.x[i] * m.y[i] - 3.0 * m.y[i];
  double* grad[2] = {gx.data(), gy.data()};
  TensorWork work;
  tsem::gradient_local(m, u.data(), grad, work);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(gx[i], 2.0 * m.x[i] * m.y[i], 1e-10);
    EXPECT_NEAR(gy[i], m.x[i] * m.x[i] - 3.0, 1e-10);
  }
}

TEST(Gradient, SpectrallyAccurateOnCurvedMesh) {
  // On the trig-mapped annulus exactness is impossible; verify spectral
  // decay of the gradient error with N instead.
  auto err_at = [](int order) {
    auto spec = tsem::annulus_spec(1.0, 2.5, 2, 10, 1.1);
    const auto m = build_mesh(spec, order);
    std::vector<double> u(m.nlocal()), gx(m.nlocal()), gy(m.nlocal());
    for (std::size_t i = 0; i < u.size(); ++i)
      u[i] = m.x[i] * m.x[i] * m.y[i] - 3.0 * m.y[i];
    double* grad[2] = {gx.data(), gy.data()};
    TensorWork work;
    tsem::gradient_local(m, u.data(), grad, work);
    double e = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i)
      e = std::max(e, std::fabs(gy[i] - (m.x[i] * m.x[i] - 3.0)));
    return e;
  };
  const double e5 = err_at(5), e9 = err_at(9), e13 = err_at(13);
  EXPECT_LT(e9, e5 * 1e-2);
  EXPECT_LT(e13, 1e-9);
}

TEST(Convection, MatchesAnalyticDirectional) {
  auto s = make_box_space_2d(3, 7);
  const auto& m = s.mesh();
  std::vector<double> vx(s.nlocal()), vy(s.nlocal()), u(s.nlocal()),
      c(s.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i) {
    vx[i] = 1.0 + m.y[i];
    vy[i] = m.x[i];
    u[i] = m.x[i] * m.y[i];
  }
  const double* vel[2] = {vx.data(), vy.data()};
  TensorWork work;
  tsem::convect_local(m, vel, u.data(), c.data(), work);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double exact = (1.0 + m.y[i]) * m.y[i] + m.x[i] * m.x[i];
    EXPECT_NEAR(c[i], exact, 1e-9);
  }
}

TEST(FilterLocal, PreservesLowOrderField) {
  auto s = make_box_space_2d(2, 8);
  const auto& m = s.mesh();
  std::vector<double> u(s.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i)
    u[i] = 1.0 + m.x[i] + m.y[i] * m.y[i];
  auto v = u;
  const auto f = tsem::filter_matrix(m.order, 0.5);
  TensorWork work;
  tsem::apply_filter_local(m, f, v.data(), work);
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_NEAR(v[i], u[i], 1e-9);
}

// ---- spectral convergence of the Poisson solve -----------------------------

double poisson_error(int order) {
  auto s = make_box_space_2d(2, order);
  const auto& m = s.mesh();
  auto mask = s.make_mask(0xF);  // Dirichlet on all four sides
  tsem::HelmholtzOp A(s, 1.0, 0.0, mask);

  // Exact: u = sin(pi x) sin(pi y), f = 2 pi^2 u.
  std::vector<double> uex(s.nlocal()), b(s.nlocal()), u(s.nlocal(), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    uex[i] = std::sin(M_PI * m.x[i]) * std::sin(M_PI * m.y[i]);
    b[i] = 2.0 * M_PI * M_PI * uex[i] * m.bm[i];
  }
  s.dssum(b.data());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] *= mask[i];

  auto apply = [&](const double* x, double* y) { A.apply(x, y); };
  auto dot = [&](const double* x, const double* y) {
    return s.glsum_dot(x, y);
  };
  tsem::CgOptions opt;
  opt.tol = 1e-12;
  opt.max_iter = 5000;
  auto res = tsem::pcg(s.nlocal(), apply, tsem::jacobi_precond(A.diagonal()),
                       dot, b.data(), u.data(), opt);
  EXPECT_TRUE(res.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i)
    err = std::max(err, std::fabs(u[i] - uex[i]));
  return err;
}

TEST(PoissonSolve, SpectralConvergence2D) {
  const double e4 = poisson_error(4);
  const double e8 = poisson_error(8);
  const double e12 = poisson_error(12);
  EXPECT_LT(e8, e4 * 1e-2);
  EXPECT_LT(e12, 1e-9);
}

TEST(PoissonSolve, DeformedMesh3D) {
  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 2, 2), tsem::linspace(0, 2, 2),
      tsem::linspace(0, 1, 1), 1.0, 1.0, 0.7, 0.2);
  Space s(build_mesh(spec, 6));
  const auto& m = s.mesh();
  auto mask = s.make_mask(0x3F);
  tsem::HelmholtzOp A(s, 1.0, 2.0, mask);

  // Manufactured solution vanishing on all box faces is unavailable on
  // the deformed bottom; instead verify residual consistency: build b
  // from a random-ish C0 masked field u* and recover it.
  std::vector<double> ustar(s.nlocal()), b(s.nlocal()), u(s.nlocal(), 0.0);
  for (std::size_t i = 0; i < ustar.size(); ++i)
    ustar[i] = std::sin(m.x[i] + 0.5 * m.y[i]) * (1.0 + 0.3 * m.z[i]);
  s.daverage(ustar.data());
  for (std::size_t i = 0; i < ustar.size(); ++i) ustar[i] *= mask[i];
  A.apply(ustar.data(), b.data());

  auto apply = [&](const double* x, double* y) { A.apply(x, y); };
  auto dot = [&](const double* x, const double* y) {
    return s.glsum_dot(x, y);
  };
  tsem::CgOptions opt;
  opt.tol = 1e-11;
  opt.max_iter = 4000;
  auto res = tsem::pcg(s.nlocal(), apply, tsem::jacobi_precond(A.diagonal()),
                       dot, b.data(), u.data(), opt);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(u[i], ustar[i], 1e-7);
}

// -------------------------------------------------------------------------
// Multi-field fused operators: per-field results must be BITWISE equal to
// the single-field kernels (same per-field expressions, shared streaming).
// -------------------------------------------------------------------------

std::vector<double> wave_field(const tsem::Mesh& m, int which) {
  std::vector<double> u(m.nlocal());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double z = m.dim == 3 ? m.z[i] : 0.0;
    u[i] = std::sin((1 + which) * m.x[i] + 0.3 * which) *
               std::cos(m.y[i] - 0.2 * which) +
           0.1 * which * z;
  }
  return u;
}

void check_multi_matches_single(const Space& s) {
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  // 9 fields exercises the kMaxFusedFields=8 chunking path.
  const int nf = 9;
  std::vector<std::vector<double>> u(nf);
  for (int f = 0; f < nf; ++f) u[f] = wave_field(m, f);
  std::vector<const double*> up(nf);
  for (int f = 0; f < nf; ++f) up[f] = u[f].data();
  const double* vel[3] = {u[0].data(), u[1].data(),
                          m.dim == 3 ? u[2].data() : nullptr};
  tsem::TensorWork w1, w2;

  // Stiffness.
  std::vector<std::vector<double>> ws(nf, std::vector<double>(nl)),
      wm(nf, std::vector<double>(nl));
  std::vector<double*> wp(nf);
  for (int f = 0; f < nf; ++f) wp[f] = wm[f].data();
  for (int f = 0; f < nf; ++f)
    tsem::apply_stiffness_local(m, u[f].data(), ws[f].data(), w1);
  tsem::apply_stiffness_local_multi(m, up.data(), wp.data(), nf, w2);
  for (int f = 0; f < nf; ++f)
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(wm[f][i], ws[f][i]) << "stiffness field " << f;

  // Helmholtz.
  for (int f = 0; f < nf; ++f)
    tsem::apply_helmholtz_local(m, 0.7, 1.3, u[f].data(), ws[f].data(), w1);
  tsem::apply_helmholtz_local_multi(m, 0.7, 1.3, up.data(), wp.data(), nf,
                                    w2);
  for (int f = 0; f < nf; ++f)
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(wm[f][i], ws[f][i]) << "helmholtz field " << f;

  // Gradient.
  const int nc = 3;  // test a pointer-table stride of dim for 3 fields
  std::vector<std::vector<double>> gs(nc * m.dim, std::vector<double>(nl)),
      gm(nc * m.dim, std::vector<double>(nl));
  for (int f = 0; f < nc; ++f) {
    double* g[3];
    for (int c = 0; c < m.dim; ++c) g[c] = gs[f * m.dim + c].data();
    tsem::gradient_local(m, u[f].data(), g, w1);
  }
  std::vector<double*> gp(nc * m.dim);
  for (std::size_t i = 0; i < gp.size(); ++i) gp[i] = gm[i].data();
  tsem::gradient_local_multi(m, up.data(), gp.data(), nc, w2);
  for (std::size_t f = 0; f < gp.size(); ++f)
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(gm[f][i], gs[f][i]) << "gradient slot " << f;

  // Convection (shared advecting velocity).
  for (int f = 0; f < nf; ++f)
    tsem::convect_local(m, vel, u[f].data(), ws[f].data(), w1);
  tsem::convect_local_multi(m, vel, up.data(), wp.data(), nf, w2);
  for (int f = 0; f < nf; ++f)
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(wm[f][i], ws[f][i]) << "convect field " << f;

  // Filter (in place).
  const auto fmat = tsem::filter_matrix(m.order, 0.15);
  std::vector<std::vector<double>> fs = u, fm = u;
  std::vector<double*> fp(nf);
  for (int f = 0; f < nf; ++f) fp[f] = fm[f].data();
  for (int f = 0; f < nf; ++f)
    tsem::apply_filter_local(m, fmat, fs[f].data(), w1);
  tsem::apply_filter_local_multi(m, fmat, fp.data(), nf, w2);
  for (int f = 0; f < nf; ++f)
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(fm[f][i], fs[f][i]) << "filter field " << f;
}

TEST(MultiField, FusedOperatorsMatchSingleFieldBitwise2D) {
  check_multi_matches_single(make_box_space_2d(3, 7));
}

TEST(MultiField, FusedOperatorsMatchSingleFieldBitwise3D) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  check_multi_matches_single(Space(build_mesh(spec, 6)));
}

// The lockstep multi-rhs solver must reproduce sequential helmholtz_solve
// exactly: same iterates (bitwise), same iteration counts and statuses.
TEST(MultiField, LockstepHelmholtzSolveMatchesSequential) {
  auto s = make_box_space_2d(3, 6);
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  auto mask = s.make_mask(0xF);
  tsem::HelmholtzOp A(s, 0.01, 25.0, mask);

  const int nf = 3;
  std::vector<std::vector<double>> bc(nf, std::vector<double>(nl, 0.0));
  std::vector<std::vector<double>> rhs(nf, std::vector<double>(nl));
  for (int f = 0; f < nf; ++f) {
    auto g = wave_field(m, f);
    for (std::size_t i = 0; i < nl; ++i) rhs[f][i] = m.bm[i] * g[i];
    // Inhomogeneous Dirichlet data for one field to cover the lift path.
    if (f == 1)
      for (std::size_t i = 0; i < nl; ++i) bc[f][i] = 0.25 * m.x[i];
  }

  tsem::HelmholtzSolveOptions opt;
  opt.tol = 1e-10;
  opt.zero_guess = true;
  tsem::TensorWork work;

  std::vector<std::vector<double>> useq(nf, std::vector<double>(nl, 0.0));
  std::vector<tsem::CgResult> rseq(nf);
  for (int f = 0; f < nf; ++f)
    rseq[f] = tsem::helmholtz_solve(A, bc[f], rhs[f], useq[f], opt, work);

  std::vector<std::vector<double>> umul(nf, std::vector<double>(nl, 0.0));
  const std::vector<double>* bcp[3] = {&bc[0], &bc[1], &bc[2]};
  const std::vector<double>* rp[3] = {&rhs[0], &rhs[1], &rhs[2]};
  std::vector<double>* up[3] = {&umul[0], &umul[1], &umul[2]};
  tsem::CgResult rmul[3];
  const int nfail =
      tsem::helmholtz_solve_multi(A, bcp, rp, up, nf, opt, work, nullptr,
                                  rmul);
  EXPECT_EQ(nfail, nf);
  for (int f = 0; f < nf; ++f) {
    EXPECT_EQ(rmul[f].iterations, rseq[f].iterations) << "field " << f;
    EXPECT_EQ(rmul[f].status, rseq[f].status) << "field " << f;
    EXPECT_EQ(rmul[f].converged, rseq[f].converged);
    EXPECT_EQ(rmul[f].initial_residual, rseq[f].initial_residual);
    EXPECT_EQ(rmul[f].final_residual, rseq[f].final_residual);
    for (std::size_t i = 0; i < nl; ++i)
      ASSERT_EQ(umul[f][i], useq[f][i]) << "field " << f << " entry " << i;
  }
}

}  // namespace
