// Tests for the VTK writer and multi-species transport.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/binfile.hpp"
#include "io/vtk.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Crash-safe atomic writes ---------------------------------------

TEST(AtomicWrite, WritesAndReplacesWithoutLeavingTemp) {
  const std::string path = "test_io_atomic.bin";
  std::string err;
  const std::string v1 = "first contents";
  ASSERT_TRUE(tsem::write_file_atomic(path, v1.data(), v1.size(), &err))
      << err;
  EXPECT_EQ(slurp(path), v1);
  // The temp file must not survive a successful write.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  const std::string v2 = "replacement, different length";
  ASSERT_TRUE(tsem::write_file_atomic(path, v2.data(), v2.size(), &err));
  EXPECT_EQ(slurp(path), v2);
  std::remove(path.c_str());
}

TEST(AtomicWrite, TornTempNeverClobbersTheRealFile) {
  // Model a writer killed mid-write: the real file exists, and a partial
  // ".tmp" is left behind.  The real file must be untouched, and the next
  // atomic write must simply overwrite the stale temp.
  const std::string path = "test_io_atomic_torn.bin";
  std::string err;
  const std::string good = "durable checkpoint bytes";
  ASSERT_TRUE(tsem::write_file_atomic(path, good.data(), good.size(), &err));
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "TSEMCKPT torn mid-wr";  // prefix of a would-be new version
  }
  EXPECT_EQ(slurp(path), good);  // old version fully intact

  const std::string next = "next full version";
  ASSERT_TRUE(tsem::write_file_atomic(path, next.data(), next.size(), &err));
  EXPECT_EQ(slurp(path), next);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailsCleanlyWhenDirectoryMissing) {
  std::string err;
  EXPECT_FALSE(tsem::write_file_atomic("no_such_dir_xyz/file.bin", "x", 1,
                                       &err));
  EXPECT_FALSE(err.empty());
}

TEST(BinFile, ContainerRoundTripsAndRejectsTornPrefixes) {
  const char magic[8] = {'T', 'S', 'E', 'M', 'T', 'E', 'S', 'T'};
  tsem::BinFileWriter w(magic, 3);
  tsem::ByteWriter payload;
  payload.put<std::uint64_t>(0xdeadbeefcafe1234ull);
  payload.put_vec({1.0, 2.5, -3.0});
  w.add_section(7, payload.take());
  const std::string path = "test_io_container.bin";
  std::string err;
  ASSERT_TRUE(w.write(path, &err)) << err;

  std::map<std::uint32_t, std::vector<std::uint8_t>> sections;
  ASSERT_TRUE(tsem::read_bin_file(path, magic, 3, &sections, &err)) << err;
  ASSERT_EQ(sections.count(7u), 1u);
  tsem::ByteReader rd(sections[7]);
  std::uint64_t tag = 0;
  std::vector<double> vec;
  ASSERT_TRUE(rd.get(&tag));
  EXPECT_EQ(tag, 0xdeadbeefcafe1234ull);
  ASSERT_TRUE(rd.get_vec(&vec));
  EXPECT_EQ(vec, (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_TRUE(rd.exhausted());

  // Every truncation of the container must be rejected with a message —
  // this is the validation a torn non-atomic write would have relied on.
  const std::string whole = slurp(path);
  for (std::size_t len = 0; len < whole.size(); len += 3) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(whole.data(), static_cast<std::streamsize>(len));
    f.close();
    err.clear();
    EXPECT_FALSE(tsem::read_bin_file(path, magic, 3, &sections, &err))
        << "truncation to " << len << " bytes accepted";
    EXPECT_FALSE(err.empty());
  }
  std::remove(path.c_str());
}

TEST(Vtk, WritesParsableUnstructuredGrid2D) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  const auto m = tsem::build_mesh(spec, 3);
  std::vector<double> f(m.nlocal());
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = m.x[i] + 2 * m.y[i];
  const std::string path = "test_io_2d.vtk";
  ASSERT_TRUE(tsem::write_vtk(m, {{"field", f.data()}}, path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t npoints = 0;
  long ncells = 0;
  bool has_field = false;
  while (std::getline(in, line)) {
    if (line.rfind("POINTS", 0) == 0)
      npoints = std::stoul(line.substr(7));
    else if (line.rfind("CELLS ", 0) == 0)
      ncells = std::stol(line.substr(6));
    else if (line.find("SCALARS field") != std::string::npos)
      has_field = true;
  }
  EXPECT_EQ(npoints, m.nlocal());
  EXPECT_EQ(ncells, 4L * 3 * 3);  // K * N^2 sub-quads
  EXPECT_TRUE(has_field);
  std::remove(path.c_str());
}

TEST(Vtk, Writes3DHexCells) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1, 1),
                                tsem::linspace(0, 1, 1));
  const auto m = tsem::build_mesh(spec, 2);
  const std::string path = "test_io_3d.vtk";
  std::vector<double> f(m.nlocal(), 1.0);
  ASSERT_TRUE(tsem::write_vtk(m, {{"one", f.data()}}, path));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("CELLS 8 72"), std::string::npos);  // 2^3 hexes, 9 ints
  // Cell type 12 = VTK_HEXAHEDRON.
  EXPECT_NE(all.find("CELL_TYPES 8"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MultiSpecies, IndependentDiffusionRates) {
  // Two species with different diffusivities on a periodic box, zero
  // velocity: each decays as its own heat equation.
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, 4),
                                tsem::linspace(0, 2 * M_PI, 4));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space s(tsem::build_mesh(spec, 7));
  const auto& m = s.mesh();
  tsem::NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.1;
  tsem::NavierStokes ns(s, 0u, opt);
  const int a = ns.add_scalar(0u, 0.05);
  const int b = ns.add_scalar(0u, 0.2);
  EXPECT_EQ(ns.nscalars(), 2);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    const double mode = std::sin(m.x[i]) * std::sin(m.y[i]);
    ns.scalar(a)[i] = mode;
    ns.scalar(b)[i] = mode;
  }
  for (int n = 0; n < 15; ++n) ns.step();
  const double da = std::exp(-2.0 * 0.05 * ns.time());
  const double db = std::exp(-2.0 * 0.2 * ns.time());
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    const double mode = std::sin(m.x[i]) * std::sin(m.y[i]);
    EXPECT_NEAR(ns.scalar(a)[i], da * mode, 3e-5);
    EXPECT_NEAR(ns.scalar(b)[i], db * mode, 3e-5);
  }
}

TEST(MultiSpecies, AdvectedTogetherWithFlow) {
  // Passive tracers in a rigid-rotation-like Taylor-Green field stay
  // bounded and conserve their integral (periodic, no sources).
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, 4),
                                tsem::linspace(0, 2 * M_PI, 4));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space s(tsem::build_mesh(spec, 7));
  const auto& m = s.mesh();
  tsem::NsOptions opt;
  opt.dt = 0.02;
  opt.viscosity = 0.05;
  tsem::NavierStokes ns(s, 0u, opt);
  ns.add_scalar(0u, 0.01);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
    ns.scalar()[i] = 1.0 + 0.5 * std::cos(m.x[i]);
  }
  const double mass0 = s.integrate(ns.scalar().data());
  for (int n = 0; n < 10; ++n) ns.step();
  const double mass1 = s.integrate(ns.scalar().data());
  EXPECT_NEAR(mass1, mass0, 1e-3 * std::fabs(mass0));
  for (double v : ns.scalar()) {
    EXPECT_GT(v, 0.3);
    EXPECT_LT(v, 1.7);
  }
}

}  // namespace
