// Tests for the fault-tolerant ensemble fleet engine (src/fleet/).
//
// Fork-safety note: these tests never run solver code in the test
// process itself — every NavierStokes step happens inside a forked
// worker.  "Fault-free baselines" for bit-identity checks are therefore
// computed by a second fleet run (same specs, faults cleared), keeping
// the parent free of OpenMP parallel regions before fork().
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fleet/proc.hpp"
#include "fleet/spec.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/worker.hpp"
#include "obs/json.hpp"
#include "resilience/fault_injector.hpp"

namespace {

using tsem::ProcessFault;
using tsem::fleet::FleetEvent;
using tsem::fleet::FleetReport;
using tsem::fleet::JobSpec;
using tsem::fleet::SweepSpec;
using tsem::obs::Json;

// Tiny canonical base sweep: 2x2 periodic Taylor-Green box, order 4.
// Every test derives from this so jobs stay in the few-millisecond range.
SweepSpec base_sweep(const std::string& name, const std::string& workdir) {
  SweepSpec s;
  s.name = name;
  s.base.mesh_k = 2;
  s.base.order = 4;
  s.base.dt = 0.01;
  s.base.steps = 6;
  s.base.reynolds = 20.0;
  s.base.checkpoint_every = 2;
  s.fleet.concurrency = 2;
  s.fleet.watchdog_ms = 8000;  // generous: only hang tests shrink this
  s.fleet.max_attempts = 3;
  s.fleet.backoff_base_ms = 2;
  s.fleet.poll_ms = 2;
  s.fleet.workdir = workdir;
  return s;
}

FleetReport must_run(const SweepSpec& s) {
  FleetReport r;
  std::string err;
  const bool ok = tsem::fleet::run_fleet(s, &r, &err);
  EXPECT_TRUE(ok) << err;
  return r;
}

// Fault-free twin of `s` in its own workdir; returns index -> digest.
std::map<int, std::string> baseline_digests(SweepSpec s,
                                            const std::string& workdir) {
  s.faults.clear();
  s.fleet.quantum_steps = 0;
  s.fleet.workdir = workdir;
  const FleetReport r = must_run(s);
  std::map<int, std::string> d;
  for (const auto& out : r.jobs) {
    EXPECT_TRUE(out.completed) << out.spec.name << ": " << out.failure;
    if (out.completed) d[out.spec.index] = out.result.digest;
  }
  return d;
}

int count_events(const FleetReport& r, const std::string& type) {
  int n = 0;
  for (const FleetEvent& e : r.events)
    if (e.type == type) ++n;
  return n;
}

// RAII env var for the worker-side seams (pacing, env fault).
struct ScopedEnv {
  std::string key;
  ScopedEnv(const std::string& k, const std::string& v) : key(k) {
    ::setenv(k.c_str(), v.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(key.c_str()); }
};

// ---- Sweep expansion ------------------------------------------------

TEST(FleetSpec, SweepExpansionIsDeterministic) {
  const std::string text = R"({
    "name": "exp",
    "case": { "mesh_k": 2, "order": 4, "dt": 0.01, "steps": 4,
              "reynolds": 20.0, "checkpoint_every": 2 },
    "sweep": { "reynolds": [10, 20], "order": [3, 4], "steps": [4, 6] },
    "faults": [ { "job": 3, "fault": "kill@2" } ]
  })";
  SweepSpec s;
  std::string err;
  ASSERT_TRUE(tsem::fleet::parse_sweep_text(text, &s, &err)) << err;

  const auto jobs = tsem::fleet::expand_sweep(s);
  ASSERT_EQ(jobs.size(), 8u);  // 2 reynolds x 2 order x 2 steps

  // Same spec, same queue: identical order, names, and parameters.
  const auto again = tsem::fleet::expand_sweep(s);
  ASSERT_EQ(again.size(), jobs.size());
  std::set<std::string> names;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, static_cast<int>(i));
    EXPECT_EQ(jobs[i].name, again[i].name);
    EXPECT_EQ(jobs[i].reynolds, again[i].reynolds);
    EXPECT_EQ(jobs[i].order, again[i].order);
    EXPECT_EQ(jobs[i].steps, again[i].steps);
    names.insert(jobs[i].name);
  }
  EXPECT_EQ(names.size(), jobs.size());  // names are unique

  // Fixed axis order: reynolds outermost, steps innermost.
  EXPECT_DOUBLE_EQ(jobs[0].reynolds, 10.0);
  EXPECT_EQ(jobs[0].order, 3);
  EXPECT_EQ(jobs[0].steps, 4);
  EXPECT_EQ(jobs[1].steps, 6);
  EXPECT_EQ(jobs[2].order, 4);
  EXPECT_DOUBLE_EQ(jobs[4].reynolds, 20.0);

  // The spec's fault plan lands on the expanded index.
  EXPECT_EQ(jobs[3].fault.kind, ProcessFault::Kind::KillWorker);
  EXPECT_EQ(jobs[3].fault.step, 2);
  EXPECT_EQ(jobs[2].fault.kind, ProcessFault::Kind::None);
}

TEST(FleetSpec, RejectsUnknownKeysAndMalformedDocs) {
  SweepSpec s;
  std::string err;
  // A typo'd sweep axis must fail loudly, not silently run the base case.
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"sweep": {"reynold": [10]}})", &s, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
  EXPECT_FALSE(tsem::fleet::parse_sweep_text("[1,2,3]", &s, &err));
  EXPECT_FALSE(tsem::fleet::parse_sweep_text("{ truncated", &s, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"faults": [{"job": 0, "fault": "explode@1"}]})", &s, &err));
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"case": {"dt": -0.5}})", &s, &err));
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"fleet": {"concurrency": 0}})", &s, &err));
}

TEST(FleetSpec, CacheSchedulerAndPriorityKeysParseStrictly) {
  SweepSpec s;
  std::string err;
  ASSERT_TRUE(tsem::fleet::parse_sweep_text(R"({
    "sweep": { "reynolds": [10, 20], "order": [3, 4] },
    "fleet": { "cache": false, "cache_entry_kb": 256,
               "scheduler": "fifo" },
    "priorities": [ { "job": 2, "priority": 3 } ]
  })", &s, &err)) << err;
  EXPECT_FALSE(s.fleet.cache);
  EXPECT_EQ(s.fleet.cache_entry_kb, 256);
  EXPECT_EQ(s.fleet.scheduler, tsem::fleet::FleetOptions::Scheduler::Fifo);
  const auto jobs = tsem::fleet::expand_sweep(s);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[2].priority, 3);
  EXPECT_EQ(jobs[0].priority, 0);

  // Strict parsing stays strict around the new keys.
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"fleet": {"scheduler": "lifo"}})", &s, &err));
  EXPECT_NE(err.find("scheduler"), std::string::npos) << err;
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"fleet": {"cache_kb": 1}})", &s, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"fleet": {"cache_entry_kb": -4}})", &s, &err));
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"priorities": [{"job": 0, "prio": 1}]})", &s, &err));
  EXPECT_FALSE(tsem::fleet::parse_sweep_text(
      R"({"priorities": [{"job": 0}]})", &s, &err));
}

// ---- Process-fault plumbing -----------------------------------------

TEST(FleetFaults, ProcessFaultParsesAndFormats) {
  ProcessFault f;
  std::string err;
  ASSERT_TRUE(tsem::parse_process_fault("kill@5", &f, &err)) << err;
  EXPECT_EQ(f.kind, ProcessFault::Kind::KillWorker);
  EXPECT_EQ(f.step, 5);
  EXPECT_EQ(f.attempt, 1);
  ASSERT_TRUE(tsem::parse_process_fault("hang@3#2", &f, &err));
  EXPECT_EQ(f.kind, ProcessFault::Kind::Hang);
  EXPECT_EQ(f.attempt, 2);
  ASSERT_TRUE(tsem::parse_process_fault("torn@4#0", &f, &err));
  EXPECT_EQ(f.kind, ProcessFault::Kind::TornCheckpoint);
  EXPECT_EQ(f.attempt, 0);  // every attempt
  EXPECT_EQ(tsem::format_process_fault(f), "torn@4#0");
  ASSERT_TRUE(tsem::parse_process_fault("none", &f, &err));
  EXPECT_EQ(f.kind, ProcessFault::Kind::None);
  ASSERT_TRUE(tsem::parse_process_fault("", &f, &err));
  EXPECT_EQ(f.kind, ProcessFault::Kind::None);

  EXPECT_FALSE(tsem::parse_process_fault("kill", &f, &err));
  EXPECT_FALSE(tsem::parse_process_fault("boom@3", &f, &err));
  EXPECT_FALSE(tsem::parse_process_fault("kill@x", &f, &err));
  EXPECT_FALSE(tsem::parse_process_fault("kill@2#z", &f, &err));
}

TEST(FleetFaults, EnvSeamActivatesAndToleratesGarbage) {
  {
    ScopedEnv env(tsem::kProcessFaultEnvVar, "hang@2");
    const ProcessFault f = tsem::process_fault_from_env();
    EXPECT_EQ(f.kind, ProcessFault::Kind::Hang);
    EXPECT_EQ(f.step, 2);
  }
  {
    ScopedEnv env(tsem::kProcessFaultEnvVar, "not-a-fault");
    EXPECT_EQ(tsem::process_fault_from_env().kind, ProcessFault::Kind::None);
  }
  EXPECT_EQ(tsem::process_fault_from_env().kind, ProcessFault::Kind::None);
}

TEST(FleetFaults, KillPlanIsSeededAndDeterministic) {
  tsem::FaultInjector a(1234), b(1234), c(77);
  const auto pa = a.plan_worker_kills(16, 3, 6);
  const auto pb = b.plan_worker_kills(16, 3, 6);
  ASSERT_EQ(pa.size(), 3u);
  std::set<int> jobs;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].first, pb[i].first);
    EXPECT_EQ(pa[i].second.step, pb[i].second.step);
    EXPECT_EQ(pa[i].second.kind, ProcessFault::Kind::KillWorker);
    EXPECT_GE(pa[i].second.step, 1);
    EXPECT_LE(pa[i].second.step, 6);
    EXPECT_GE(pa[i].first, 0);
    EXPECT_LT(pa[i].first, 16);
    jobs.insert(pa[i].first);
  }
  EXPECT_EQ(jobs.size(), pa.size());  // distinct jobs
  // A different seed is allowed to (and here does) pick a different plan.
  const auto pc = c.plan_worker_kills(16, 3, 6);
  bool same = pa.size() == pc.size();
  for (std::size_t i = 0; same && i < pa.size(); ++i)
    same = pa[i].first == pc[i].first && pa[i].second.step == pc[i].second.step;
  EXPECT_FALSE(same);
}

// ---- Fleet execution ------------------------------------------------

TEST(Fleet, SingleJobCompletesWithResult) {
  SweepSpec s = base_sweep("single", "fleet_t_single");
  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.completed, 1);
  EXPECT_EQ(r.quarantined, 0);
  EXPECT_EQ(r.retries, 0);
  const auto& out = r.jobs[0];
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.launches, 1);
  EXPECT_EQ(out.result.steps_done, 6);
  EXPECT_EQ(out.result.resumed_from_step, 0);
  EXPECT_EQ(out.result.digest.size(), 8u);
  EXPECT_GT(out.result.final_time, 0.0);
  EXPECT_GT(out.result.kinetic_energy, 0.0);
  EXPECT_EQ(count_events(r, "launch"), 1);
  EXPECT_EQ(count_events(r, "complete"), 1);

  // The result file on disk round-trips through the hardened reader.
  tsem::fleet::JobResult res;
  std::string err;
  ASSERT_TRUE(tsem::fleet::read_job_result(
      tsem::fleet::job_paths(s.fleet.workdir, 0).result, &res, &err))
      << err;
  EXPECT_EQ(res.digest, out.result.digest);
}

TEST(Fleet, KilledWorkerRetriesAndResumesBitIdentical) {
  SweepSpec s = base_sweep("kill", "fleet_t_kill");
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("kill@5#1", &f, &err)) << err;
  s.faults.emplace_back(0, f);

  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  const auto& out = r.jobs[0];
  ASSERT_TRUE(out.completed) << out.failure;
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(r.retries, 1);
  EXPECT_EQ(count_events(r, "crash"), 1);
  EXPECT_EQ(count_events(r, "retry"), 1);
  // Checkpoints land at steps 2 and 4; the kill fires before step 5, so
  // attempt 2 resumes from the step-4 checkpoint.
  EXPECT_EQ(out.result.resumed_from_step, 4);

  const auto base = baseline_digests(s, "fleet_t_kill_base");
  EXPECT_EQ(out.result.digest, base.at(0));
}

TEST(Fleet, TornCheckpointWriteLeavesPriorCheckpointResumable) {
  SweepSpec s = base_sweep("torn", "fleet_t_torn");
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("torn@4#1", &f, &err)) << err;
  s.faults.emplace_back(0, f);

  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  const auto& out = r.jobs[0];
  ASSERT_TRUE(out.completed) << out.failure;
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(r.retries, 1);
  // The worker died mid-write of the step-4 checkpoint, leaving only a
  // torn ".tmp".  Atomic rename semantics mean the step-2 checkpoint is
  // still the one at the real path — attempt 2 resumes from step 2, and
  // the final state is bit-identical to a fault-free run.
  EXPECT_EQ(out.result.resumed_from_step, 2);
  const auto base = baseline_digests(s, "fleet_t_torn_base");
  EXPECT_EQ(out.result.digest, base.at(0));
}

TEST(Fleet, WatchdogKillsHungWorkerAndJobRecovers) {
  SweepSpec s = base_sweep("hang", "fleet_t_hang");
  s.fleet.watchdog_ms = 400;
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("hang@3#1", &f, &err)) << err;
  s.faults.emplace_back(0, f);

  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  const auto& out = r.jobs[0];
  ASSERT_TRUE(out.completed) << out.failure;
  EXPECT_EQ(out.hang_kills, 1);
  EXPECT_EQ(r.hang_kills, 1);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(count_events(r, "hang_kill"), 1);
  // Hang fired before step 3; the step-2 checkpoint carries attempt 2.
  EXPECT_EQ(out.result.resumed_from_step, 2);
  const auto base = baseline_digests(s, "fleet_t_hang_base");
  EXPECT_EQ(out.result.digest, base.at(0));
}

TEST(Fleet, RetryExhaustionQuarantinesWhileFleetCompletes) {
  SweepSpec s = base_sweep("quar", "fleet_t_quar");
  s.reynolds = {10.0, 20.0, 30.0, 40.0};
  s.fleet.max_attempts = 2;
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("kill@2#0", &f, &err)) << err;
  s.faults.emplace_back(1, f);  // dies on EVERY attempt

  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 4u);
  EXPECT_EQ(r.completed, 3);
  EXPECT_EQ(r.quarantined, 1);
  EXPECT_EQ(r.retries, 1);  // one reschedule, then the cap
  EXPECT_EQ(count_events(r, "quarantine"), 1);

  const auto& bad = r.jobs[1];
  EXPECT_FALSE(bad.completed);
  EXPECT_TRUE(bad.quarantined);
  EXPECT_EQ(bad.attempts, 2);
  // The quarantine report captures the exit detail and the worker log.
  EXPECT_NE(bad.failure.find("injected kill"), std::string::npos)
      << bad.failure;
  EXPECT_NE(bad.failure.find("log tail"), std::string::npos);
  EXPECT_NE(bad.failure.find("[worker]"), std::string::npos);
  for (int i : {0, 2, 3}) EXPECT_TRUE(r.jobs[i].completed);
}

TEST(Fleet, PreemptionRoundRobinsAndStaysBitIdentical) {
  SweepSpec s = base_sweep("preempt", "fleet_t_preempt");
  s.reynolds = {10.0, 20.0, 30.0};
  s.base.steps = 8;
  s.fleet.concurrency = 1;  // forces the queue to share one slot
  s.fleet.quantum_steps = 2;
  ScopedEnv pace("TSEM_FLEET_STEP_SLEEP_US", "3000");

  const FleetReport r = must_run(s);
  EXPECT_EQ(r.completed, 3);
  EXPECT_EQ(r.quarantined, 0);
  EXPECT_EQ(r.retries, 0);  // preemption must not consume attempts
  EXPECT_GE(r.preemptions, 3);
  EXPECT_EQ(count_events(r, "preempt"), r.preemptions);
  bool any_resumed = false;
  for (const auto& out : r.jobs) {
    ASSERT_TRUE(out.completed) << out.spec.name << ": " << out.failure;
    EXPECT_EQ(out.attempts, 1);
    // Every fork is either the single attempt or a preemption relaunch.
    EXPECT_EQ(out.launches, 1 + out.preemptions);
    any_resumed |= out.result.resumed_from_step > 0;
  }
  EXPECT_TRUE(any_resumed);

  const auto base = baseline_digests(s, "fleet_t_preempt_base");
  for (const auto& out : r.jobs)
    EXPECT_EQ(out.result.digest, base.at(out.spec.index)) << out.spec.name;
}

// ---- Report schema --------------------------------------------------

TEST(Fleet, ReportSchemaRoundTripsAsBenchJson) {
  SweepSpec s = base_sweep("report", "fleet_t_report");
  s.reynolds = {10.0, 20.0};
  s.fleet.max_attempts = 1;
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("kill@2#0", &f, &err)) << err;
  s.faults.emplace_back(1, f);  // one quarantine, so both shapes appear
  const FleetReport r = must_run(s);
  ASSERT_EQ(r.completed, 1);
  ASSERT_EQ(r.quarantined, 1);

  const Json doc = r.to_json("ensemble");
  Json back;
  ASSERT_TRUE(Json::parse(doc.dump(2), &back, &err)) << err;
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.find("schema")->as_string(), "terasem-bench-1");
  EXPECT_EQ(back.find("name")->as_string(), "ensemble");

  const Json* meta = back.find("meta");
  ASSERT_TRUE(meta && meta->is_object());
  EXPECT_EQ(meta->find("sweep")->as_string(), "report");
  EXPECT_EQ(meta->find("jobs")->as_int(), 2);
  EXPECT_EQ(meta->find("completed")->as_int(), 1);
  EXPECT_EQ(meta->find("quarantined")->as_int(), 1);
  const Json* events = meta->find("events");
  ASSERT_TRUE(events && events->is_array());
  EXPECT_EQ(static_cast<int>(events->items().size()),
            static_cast<int>(r.events.size()));
  ASSERT_TRUE(meta->find("worker_counters") &&
              meta->find("worker_counters")->is_object());

  const Json* cases = back.find("cases");
  ASSERT_TRUE(cases && cases->is_array());
  ASSERT_EQ(cases->items().size(), 2u);
  for (const Json& c : cases->items()) {
    ASSERT_TRUE(c.find("name") && c.find("completed") && c.find("attempts"));
    if (c.find("completed")->as_bool()) {
      ASSERT_TRUE(c.find("digest"));
      EXPECT_EQ(c.find("digest")->as_string().size(), 8u);
    } else {
      ASSERT_TRUE(c.find("failure"));
    }
  }

  // write_bench_json honors $TSEM_BENCH_DIR and emits a parseable file.
  ScopedEnv dir("TSEM_BENCH_DIR", s.fleet.workdir);
  const std::string path = r.write_bench_json("ensemble_test");
  ASSERT_FALSE(path.empty());
  Json from_disk;
  Json::ParseError perr;
  ASSERT_TRUE(Json::parse_file(path, &from_disk, &perr)) << perr.to_string();
  EXPECT_EQ(from_disk.find("schema")->as_string(), "terasem-bench-1");
  std::remove(path.c_str());
}

// ---- End-to-end fault drill (ISSUE acceptance criterion) ------------
//
// A 16-job sweep under seeded worker kills, one injected hang, one torn
// checkpoint write, and one always-crashing job, with preemptive
// scheduling on: every non-quarantined job must finish bit-identical to
// a fault-free run of the same specs, and the report must account for
// every retry, preemption, and quarantine.

TEST(Fleet, EndToEndFaultDrill) {
  SweepSpec s = base_sweep("drill", "fleet_t_drill");
  s.reynolds = {15.0, 20.0, 25.0, 30.0};
  s.order = {3, 4};
  s.dt = {0.008, 0.01};
  s.base.steps = 8;
  s.fleet.concurrency = 4;
  s.fleet.quantum_steps = 3;
  s.fleet.watchdog_ms = 600;
  ASSERT_EQ(tsem::fleet::expand_sweep(s).size(), 16u);

  // Seeded, deterministic fault plan: 3 kills from the injector, then a
  // hang, a torn checkpoint, and a quarantine case on jobs the kill plan
  // left alone.
  tsem::FaultInjector inj(2024);
  s.faults = inj.plan_worker_kills(16, 3, 6);
  std::set<int> taken;
  for (const auto& [job, fault] : s.faults) taken.insert(job);
  std::vector<int> free_jobs;
  for (int j = 0; j < 16 && free_jobs.size() < 3; ++j)
    if (!taken.count(j)) free_jobs.push_back(j);
  ASSERT_EQ(free_jobs.size(), 3u);
  std::string err;
  ProcessFault hang, torn, always;
  ASSERT_TRUE(tsem::parse_process_fault("hang@2#1", &hang, &err));
  ASSERT_TRUE(tsem::parse_process_fault("torn@4#1", &torn, &err));
  ASSERT_TRUE(tsem::parse_process_fault("kill@1#0", &always, &err));
  s.faults.emplace_back(free_jobs[0], hang);
  s.faults.emplace_back(free_jobs[1], torn);
  s.faults.emplace_back(free_jobs[2], always);

  ScopedEnv pace("TSEM_FLEET_STEP_SLEEP_US", "2000");
  const FleetReport r = must_run(s);

  // Terminal accounting: 15 complete, the always-crasher quarantined.
  EXPECT_EQ(r.completed, 15);
  EXPECT_EQ(r.quarantined, 1);
  EXPECT_TRUE(r.jobs[free_jobs[2]].quarantined);
  EXPECT_EQ(r.jobs[free_jobs[2]].attempts, s.fleet.max_attempts);
  EXPECT_FALSE(r.jobs[free_jobs[2]].failure.empty());

  // Every injected fault burned exactly the attempts it was scripted to:
  // 3 kills + 1 hang + 1 torn (one retry each) + 2 retries before the
  // quarantine cap.
  EXPECT_EQ(r.retries, 3 + 1 + 1 + (s.fleet.max_attempts - 1));
  EXPECT_EQ(r.hang_kills, 1);
  EXPECT_GE(r.preemptions, 1);  // quantum 3 with a 4-wide pool, 16 jobs

  // The report records every incident: event counts match the totals.
  EXPECT_EQ(count_events(r, "retry"), r.retries);
  EXPECT_EQ(count_events(r, "preempt"), r.preemptions);
  EXPECT_EQ(count_events(r, "hang_kill"), r.hang_kills);
  EXPECT_EQ(count_events(r, "quarantine"), 1);
  EXPECT_EQ(count_events(r, "complete"), 15);
  EXPECT_EQ(count_events(r, "crash"),
            3 + 1 + s.fleet.max_attempts);  // kills + torn + always-crasher
  int launches = 0;
  for (const auto& out : r.jobs) launches += out.launches;
  EXPECT_EQ(count_events(r, "launch"), launches);

  // Bit-identity: every non-quarantined job's final state digest matches
  // a fault-free run of the same spec.
  const auto base = baseline_digests(s, "fleet_t_drill_base");
  for (const auto& out : r.jobs) {
    if (out.quarantined) continue;
    ASSERT_TRUE(out.completed) << out.spec.name << ": " << out.failure;
    EXPECT_EQ(out.result.steps_done, out.spec.steps);
    EXPECT_EQ(out.result.digest, base.at(out.spec.index)) << out.spec.name;
  }
}

// ---- Retry backoff (bounded, UB-free) -------------------------------

TEST(FleetBackoff, BackoffClampsShiftAndSaturatesAtCap) {
  tsem::fleet::FleetOptions opt;
  opt.backoff_base_ms = 10;
  opt.backoff_max_ms = 30000;
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 1), 10);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 2), 20);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 5), 160);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 12), 20480);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 13), 30000);  // saturated
  // The old expression shifted by attempt-1 directly: UB at attempt 32
  // and beyond.  The clamped form must stay exact and capped forever.
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 31), 30000);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 32), 30000);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 40), 30000);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 1000000), 30000);
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 0), 10);   // defensive clamp
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, -3), 10);

  opt.backoff_max_ms = 0;  // cap of zero means "no delay ever"
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 4), 0);
  opt.backoff_base_ms = 0;  // disabled backoff stays disabled
  opt.backoff_max_ms = 30000;
  EXPECT_EQ(tsem::fleet::retry_backoff_ms(opt, 7), 0);
}

TEST(Fleet, FortyAttemptLadderStaysBoundedAndQuarantines) {
  SweepSpec s = base_sweep("ladder", "fleet_t_ladder");
  s.base.steps = 2;
  s.fleet.max_attempts = 40;  // would be 2^39 ms at attempt 40 unclamped
  s.fleet.backoff_base_ms = 1;
  s.fleet.backoff_max_ms = 4;
  std::string err;
  ProcessFault f;
  ASSERT_TRUE(tsem::parse_process_fault("kill@1#0", &f, &err)) << err;
  s.faults.emplace_back(0, f);

  const auto t0 = std::chrono::steady_clock::now();
  const FleetReport r = must_run(s);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_TRUE(r.jobs[0].quarantined);
  EXPECT_EQ(r.jobs[0].attempts, 40);
  EXPECT_EQ(r.retries, 39);
  EXPECT_EQ(count_events(r, "retry"), 39);
  // Every scheduled delay obeys the cap: 1, 2, 4, then 4ms forever.
  int capped = 0;
  for (const FleetEvent& e : r.events) {
    if (e.type != "retry") continue;
    const auto pos = e.detail.find("backoff ");
    ASSERT_NE(pos, std::string::npos) << e.detail;
    const int ms = std::atoi(e.detail.c_str() + pos + 8);
    EXPECT_GE(ms, 1);
    EXPECT_LE(ms, 4);
    capped += ms == 4;
  }
  EXPECT_EQ(capped, 37);
  // 39 retries at <= 4ms backoff each: the whole ladder is sub-minute by
  // a wide margin (an unclamped shift would wedge it for days).
  EXPECT_LT(wall, 60.0);
  const Json doc = r.to_json("ladder");
  EXPECT_EQ(doc.find("meta")->find("backoff_max_ms")->as_int(), 4);
}

// ---- Supervisor-death drill (SIGPIPE orphan exit) --------------------

TEST(FleetWorker, OrphanedWorkerExitsCleanlyWhenSupervisorPipeCloses) {
  const std::string workdir = "fleet_t_orphan";
  ::mkdir(workdir.c_str(), 0777);
  JobSpec job;
  job.name = "orphan";
  job.index = 0;
  job.steps = 400;  // far more steps than the pipe will stay open for
  job.checkpoint_every = 0;
  ScopedEnv pace("TSEM_FLEET_STEP_SLEEP_US", "2000");

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    tsem::fleet::worker_main(job, workdir, fds[1], 1);  // never returns
  }
  ::close(fds[1]);
  // Play supervisor long enough to hear the worker alive, then die: the
  // read end closes and the next heartbeat write raises EPIPE (SIGPIPE
  // is ignored in worker_main), which the worker maps to a clean
  // kExitOrphaned exit instead of dying silently mid-step.
  char c;
  ASSERT_GT(tsem::fleet::xread(fds[0], &c, 1), 0);
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(tsem::fleet::xwaitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << tsem::fleet::wait_status_str(status);
  EXPECT_EQ(WEXITSTATUS(status), tsem::fleet::kExitOrphaned)
      << tsem::fleet::wait_status_str(status);
}

// ---- EINTR hardening -------------------------------------------------

namespace eintr {
void on_alarm(int) {}  // exists only to interrupt syscalls

// Deliver SIGALRM every 2ms with SA_RESTART OFF, so every long syscall
// in scope keeps returning EINTR.
struct ScopedStorm {
  struct sigaction old_sa {};
  itimerval old_it {};
  ScopedStorm() {
    struct sigaction sa {};
    sa.sa_handler = on_alarm;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: the whole point
    sigaction(SIGALRM, &sa, &old_sa);
    itimerval it{};
    it.it_interval.tv_usec = 2000;
    it.it_value.tv_usec = 2000;
    setitimer(ITIMER_REAL, &it, &old_it);
  }
  ~ScopedStorm() {
    setitimer(ITIMER_REAL, &old_it, nullptr);
    sigaction(SIGALRM, &old_sa, nullptr);
  }
};
}  // namespace eintr

TEST(FleetProc, XpollHonorsTimeoutUnderEintrStorm) {
  eintr::ScopedStorm storm;
  const auto t0 = std::chrono::steady_clock::now();
  // No fds: a plain ::poll would return EINTR after ~2ms; xpoll must
  // re-arm with the remaining window and sleep out the full timeout.
  const int rc = tsem::fleet::xpoll(nullptr, 0, 150);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(rc, 0);
  EXPECT_GE(ms, 120.0);
}

TEST(Fleet, SupervisorLoopSurvivesEintrStorm) {
  // The supervisor's poll / drain / waitpid path runs entirely under the
  // interrupt storm; with bare syscalls this run flakes with spurious
  // failures (EINTR from poll) or misread heartbeats (truncated drains).
  eintr::ScopedStorm storm;
  SweepSpec s = base_sweep("eintr", "fleet_t_eintr");
  s.reynolds = {10.0, 20.0};
  ScopedEnv pace("TSEM_FLEET_STEP_SLEEP_US", "1000");
  const FleetReport r = must_run(s);
  EXPECT_EQ(r.completed, 2);
  EXPECT_EQ(r.quarantined, 0);
  for (const auto& out : r.jobs)
    EXPECT_TRUE(out.completed) << out.spec.name << ": " << out.failure;
}

// ---- Setup-cache drills ---------------------------------------------
//
// The in-process protocol tests (torn CRC rejection, claim races, slot
// disabling) live in test_setup_cache.cpp; here the whole fleet runs the
// cache under injected publish/attach faults with the answers checked
// bit for bit against a cache-off twin.

TEST(FleetCache, DrillSurvivesTornPublishAndAttachFaultsBitIdentically) {
  SweepSpec s = base_sweep("cachedrill", "fleet_t_cachedrill");
  s.reynolds = {10.0, 15.0, 20.0, 25.0};
  s.order = {4, 3};  // two distinct shape keys in flight at once
  s.fleet.concurrency = 4;
  s.fleet.cache = true;
  ProcessFault tornpub, cachefail;
  std::string err;
  // Job 0: first builder of the order-4 key publishes a torn entry (the
  // word flips Ready but half the payload is missing) and dies; the next
  // reader must reject it by CRC, evict the ENTRY, and rebuild clean.
  ASSERT_TRUE(tsem::parse_process_fault("tornpub@1#1", &tornpub, &err)) << err;
  // Job 3: its first attach aborts as if the entry decoded corrupt; the
  // supervisor owes it a cold relaunch that costs no retry-ladder attempt.
  ASSERT_TRUE(tsem::parse_process_fault("cachefail@1#1", &cachefail, &err))
      << err;
  s.faults.emplace_back(0, tornpub);
  s.faults.emplace_back(3, cachefail);

  const FleetReport r = must_run(s);
  EXPECT_EQ(r.completed, 8);
  EXPECT_EQ(r.quarantined, 0);
  EXPECT_GE(r.cache_hits, 2);
  EXPECT_GE(r.cache_publishes, 2);  // both keys end up published clean
  // The torn entry was quarantined (worker-side CRC rejection bumps the
  // shared evictions counter) and at least one job took the free cold
  // lane, which the supervisor logs as a cache_cold_retry event.
  EXPECT_GE(r.cache_evictions, 1);
  EXPECT_GE(r.cold_retries, 1);
  EXPECT_GE(count_events(r, "cache_cold_retry"), 1);

  // A poisoned cache must cost wall time, never an answer: every job's
  // digest matches a fault-free cache-OFF twin bit for bit.
  SweepSpec off = s;
  off.fleet.cache = false;
  const auto ref = baseline_digests(off, "fleet_t_cachedrill_off");
  for (const auto& out : r.jobs) {
    ASSERT_TRUE(out.completed) << out.spec.name << ": " << out.failure;
    ASSERT_EQ(ref.count(out.spec.index), 1u);
    EXPECT_EQ(out.result.digest, ref.at(out.spec.index))
        << out.spec.name << ": cache-hit state diverged from cold state";
  }
}

TEST(FleetCache, CorruptAttachRelaunchesColdWithoutBurningAnAttempt) {
  SweepSpec s = base_sweep("cachefree", "fleet_t_cachefree");
  s.fleet.concurrency = 1;
  s.fleet.cache = true;
  ProcessFault f;
  std::string err;
  ASSERT_TRUE(tsem::parse_process_fault("cachefail@1#1", &f, &err)) << err;
  s.faults.emplace_back(0, f);

  const FleetReport r = must_run(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  const auto& out = r.jobs[0];
  ASSERT_TRUE(out.completed) << out.failure;
  // kExitCacheFailed is not a crash: the relaunch is free (attempts
  // stays 1) but it did fork twice, and exactly once via the cold lane.
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.launches, 2);
  EXPECT_EQ(r.cold_retries, 1);
  EXPECT_EQ(r.retries, 0);

  SweepSpec off = s;
  off.fleet.cache = false;
  const auto ref = baseline_digests(off, "fleet_t_cachefree_off");
  EXPECT_EQ(out.result.digest, ref.at(0));
}

// ---- Measured-time scheduler ----------------------------------------

TEST(FleetSched, SjfLaunchesShortJobsFirstAndPriorityLanesDominate) {
  // 2 reynolds x orders {5, 3}: jobs 0,2 are order 5 (prior 125*steps),
  // jobs 1,3 are order 3 (prior 27*steps).  Cache off and concurrency 1
  // so launch order is exactly the scheduler's choice.
  SweepSpec s = base_sweep("sjf", "fleet_t_sjf");
  s.reynolds = {10.0, 20.0};
  s.order = {5, 3};
  s.fleet.concurrency = 1;
  s.fleet.cache = false;
  s.fleet.scheduler = tsem::fleet::FleetOptions::Scheduler::Sjf;

  const FleetReport r = must_run(s);
  EXPECT_EQ(r.completed, 4);
  std::vector<int> order;
  for (const FleetEvent& e : r.events)
    if (e.type == "launch") order.push_back(e.job);
  // Under the prior the order-3 jobs go first (tie on the key broken by
  // index); once job 1 completes, its measured rate keeps job 3 ahead of
  // the unmeasured order-5 prior (which calibrates ~4.6x larger).
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));

  // A priority lane beats every estimate: flag the LONGEST job urgent
  // and it launches first, with the rest still shortest-first.
  SweepSpec p = s;
  p.fleet.workdir = "fleet_t_sjf_prio";
  p.priorities.emplace_back(2, 1);
  const FleetReport rp = must_run(p);
  EXPECT_EQ(rp.completed, 4);
  std::vector<int> porder;
  for (const FleetEvent& e : rp.events)
    if (e.type == "launch") porder.push_back(e.job);
  ASSERT_EQ(porder.size(), 4u);
  EXPECT_EQ(porder[0], 2);
  // Within the default lane the order-3 job still beats the remaining
  // order-5 job (its prior calibrates ~4.6x shorter).  Jobs 3 vs 0 then
  // compare two MEASURED keys — real wall times, not asserted here.
  EXPECT_LT(std::find(porder.begin(), porder.end(), 1),
            std::find(porder.begin(), porder.end(), 0));

  // Scheduling policy reorders launches, never answers: Fifo twin runs
  // 0,1,2,3 and lands on identical digests.
  SweepSpec q = s;
  q.fleet.workdir = "fleet_t_sjf_fifo";
  q.fleet.scheduler = tsem::fleet::FleetOptions::Scheduler::Fifo;
  const FleetReport rq = must_run(q);
  std::vector<int> forder;
  for (const FleetEvent& e : rq.events)
    if (e.type == "launch") forder.push_back(e.job);
  EXPECT_EQ(forder, (std::vector<int>{0, 1, 2, 3}));
  std::map<int, std::string> sjf_digest, fifo_digest;
  for (const auto& out : r.jobs)
    if (out.completed) sjf_digest[out.spec.index] = out.result.digest;
  for (const auto& out : rq.jobs)
    if (out.completed) fifo_digest[out.spec.index] = out.result.digest;
  EXPECT_EQ(sjf_digest, fifo_digest);
}

}  // namespace
