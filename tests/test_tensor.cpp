// Unit tests for the mxm kernel family and tensor-product application.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/kernels_fixed.hpp"
#include "tensor/mxm.hpp"
#include "tensor/tensor_apply.hpp"

namespace {

using tsem::mxm_at;
using tsem::mxm_blocked;
using tsem::mxm_bt;
using tsem::mxm_f2;
using tsem::mxm_f3;
using tsem::mxm_generic;

std::vector<double> random_matrix(int rows, int cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = dist(rng);
  return m;
}

std::vector<double> reference_mxm(const std::vector<double>& a, int m,
                                  const std::vector<double>& b, int k, int n) {
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (int i = 0; i < m; ++i)
    for (int l = 0; l < k; ++l)
      for (int j = 0; j < n; ++j)
        c[i * n + j] += a[i * k + l] * b[l * n + j];
  return c;
}

struct MxmShape {
  int m, k, n;
};

class MxmKernels : public ::testing::TestWithParam<MxmShape> {};

TEST_P(MxmKernels, AllVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  const auto a = random_matrix(m, k, 17);
  const auto b = random_matrix(k, n, 31);
  const auto ref = reference_mxm(a, m, b, k, n);

  using Kernel = void (*)(const double*, int, const double*, int, double*,
                          int);
  const Kernel kernels[] = {mxm_generic, mxm_blocked, mxm_f2, mxm_f3};
  for (Kernel kern : kernels) {
    std::vector<double> c(static_cast<std::size_t>(m) * n, -999.0);
    kern(a.data(), m, b.data(), k, c.data(), n);
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(c[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MxmKernels,
    ::testing::Values(MxmShape{1, 1, 1}, MxmShape{2, 14, 2},
                      MxmShape{14, 2, 14}, MxmShape{16, 14, 16},
                      MxmShape{16, 14, 196}, MxmShape{256, 14, 16},
                      MxmShape{14, 16, 14}, MxmShape{16, 16, 256},
                      MxmShape{196, 16, 14}, MxmShape{7, 33, 5},
                      MxmShape{40, 40, 40}));

// mxm() dispatches through the autotuned table.  Whatever variant the
// tuner selected for a shape, the dispatcher must agree BITWISE with a
// direct call to that variant — the guarantee behind thread-count and
// run-to-run reproducibility (selection is fixed per process).
TEST(Mxm, ShapeDispatchMatchesSelectedVariant) {
  const MxmShape shapes[] = {{64, 8, 8},   {8, 8, 64},  {16, 16, 16},
                             {100, 7, 3},  {3, 7, 100}, {5, 30, 5},
                             {40, 30, 12}, {12, 30, 40}};
  for (const auto& s : shapes) {
    const auto a = random_matrix(s.m, s.k, 101);
    const auto b = random_matrix(s.k, s.n, 103);
    const std::size_t sz = static_cast<std::size_t>(s.m) * s.n;
    std::vector<double> c_dispatch(sz, -1.0), c_variant(sz, -2.0);
    tsem::mxm(a.data(), s.m, b.data(), s.k, c_dispatch.data(), s.n);
    const char* sel = tsem::mxm_selected_name(s.m, s.k, s.n);
    const tsem::MxmVariant* v = tsem::mxm_variant_by_name(sel);
    ASSERT_NE(v, nullptr) << "unknown selected variant " << sel;
    v->fn(a.data(), s.m, b.data(), s.k, c_variant.data(), s.n);
    for (std::size_t i = 0; i < sz; ++i)
      ASSERT_EQ(c_dispatch[i], c_variant[i])
          << "shape " << s.m << "x" << s.k << "x" << s.n << " entry " << i
          << " variant " << sel;
    const auto ref = reference_mxm(a, s.m, b, s.k, s.n);
    for (std::size_t i = 0; i < sz; ++i)
      ASSERT_NEAR(c_dispatch[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])));
  }
}

// Exhaustive correctness sweep: EVERY registered variant (scalar and
// SIMD) against the naive reference over every shape the discretization
// can produce, m, k, n in {2..16}.  SIMD variants reassociate the
// contraction with FMA, so the bound is relative, not bitwise — this is
// the documented accuracy contract for the whole kernel family.
TEST(MxmRegistry, AllRegisteredVariantsSweepAllSmallShapes) {
  const auto& reg = tsem::mxm_registry();
  ASSERT_GE(reg.size(), 4u);  // the four scalar kernels at minimum
  for (int m = 2; m <= 16; ++m)
    for (int k = 2; k <= 16; ++k)
      for (int n = 2; n <= 16; ++n) {
        const auto a = random_matrix(m, k, 1000 + m);
        const auto b =
            random_matrix(k, n, 2000 + 16 * k + n);
        const auto ref = reference_mxm(a, m, b, k, n);
        std::vector<double> c(static_cast<std::size_t>(m) * n);
        for (const auto& v : reg) {
          std::fill(c.begin(), c.end(), -999.0);
          v.fn(a.data(), m, b.data(), k, c.data(), n);
          for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(c[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])))
                << v.name << " " << m << "x" << k << "x" << n << " entry "
                << i;
        }
      }
}

// Same sweep for the B-transposed registry feeding mxm_bt.
TEST(MxmRegistry, AllBtVariantsSweepAllSmallShapes) {
  const auto& reg = tsem::mxm_bt_registry();
  ASSERT_GE(reg.size(), 1u);
  for (int m = 2; m <= 16; ++m)
    for (int k = 2; k <= 16; ++k)
      for (int n = 2; n <= 16; ++n) {
        const auto a = random_matrix(m, k, 3000 + m);
        const auto b = random_matrix(k, n, 4000 + 16 * k + n);
        const auto ref = reference_mxm(a, m, b, k, n);
        std::vector<double> bt(static_cast<std::size_t>(n) * k);
        for (int i = 0; i < k; ++i)
          for (int j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
        std::vector<double> c(static_cast<std::size_t>(m) * n);
        for (const auto& v : reg) {
          std::fill(c.begin(), c.end(), -999.0);
          v.fn(a.data(), m, bt.data(), k, c.data(), n);
          for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(c[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])))
                << v.name << " " << m << "x" << k << "x" << n << " entry "
                << i;
        }
      }
}

// Determinism contract: the table is built ONCE per process and never
// changes, so repeated init calls return the identical selection digest,
// every selection names a registered variant, and mxm_selected_name is
// consistent with the digest.  (Winners near a timing tie may differ
// BETWEEN processes — TSEM_MXM_KERNEL pins them when cross-process
// reproducibility matters; see DESIGN.md.)
TEST(MxmRegistry, AutotunerSelectionsAreDeterministic) {
  tsem::mxm_autotune_init();
  const auto first = tsem::mxm_autotune_selections();
  ASSERT_FALSE(first.empty());
  for (const auto& [shape, name] : first)
    EXPECT_NE(tsem::mxm_variant_by_name(name.c_str()), nullptr)
        << shape << " selected unregistered variant " << name;
  for (int round = 0; round < 3; ++round) {
    tsem::mxm_autotune_init();  // idempotent: must NOT re-tune
    const auto again = tsem::mxm_autotune_selections();
    ASSERT_EQ(first.size(), again.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].first, again[i].first);
      EXPECT_EQ(first[i].second, again[i].second)
          << "selection for " << first[i].first << " changed on re-init";
    }
  }
  // The dispatch-table lookups agree with the published digest for the
  // square tuned shapes (digest labels are "small/dxdxd").
  for (const auto& [shape, name] : first) {
    if (shape.rfind("small/", 0) != 0) continue;
    int d = 0;
    ASSERT_EQ(std::sscanf(shape.c_str(), "small/%dx", &d), 1);
    EXPECT_EQ(name, tsem::mxm_selected_name(d, d, d)) << shape;
  }
}

// TSEM_MXM_KERNEL pins every mxm() shape to one named variant, bypassing
// the timing pass entirely (cross-process reproducibility escape hatch).
TEST(MxmRegistry, EnvForcedKernelPinsDispatch) {
  ASSERT_EQ(setenv("TSEM_MXM_KERNEL", "generic", 1), 0);
  tsem::detail::mxm_autotune_reset_for_testing();
  tsem::mxm_autotune_init();
  EXPECT_STREQ(tsem::mxm_selected_name(8, 8, 8), "generic");
  EXPECT_STREQ(tsem::mxm_selected_name(12, 12, 144), "generic");
  EXPECT_STREQ(tsem::mxm_selected_name(100, 7, 3), "generic");
  const auto a = random_matrix(9, 9, 7);
  const auto b = random_matrix(9, 9, 8);
  std::vector<double> c_forced(81), c_direct(81);
  tsem::mxm(a.data(), 9, b.data(), 9, c_forced.data(), 9);
  mxm_generic(a.data(), 9, b.data(), 9, c_direct.data(), 9);
  for (int i = 0; i < 81; ++i) ASSERT_EQ(c_forced[i], c_direct[i]);
  unsetenv("TSEM_MXM_KERNEL");
  tsem::detail::mxm_autotune_reset_for_testing();
  tsem::mxm_autotune_init();  // leave the process on the tuned table
}

// Fixed-(m,k,n) tier: covered shapes route to compile-time-extent
// instantiations.  The loop form is the same ascending-l row update as
// mxm_generic, but the restrict-qualified constant-extent loops vectorize
// differently (that is the tier's entire purpose), so the guarantee is
// the kernel family's relative accuracy contract, not bitwise.
TEST(MxmFixed, CoveredShapesMatchGenericToFamilyBound) {
  for (int d = 2; d <= 16; ++d) {
    EXPECT_TRUE(tsem::mxm_fixed_covers(d, d, d));
    EXPECT_TRUE(tsem::mxm_fixed_covers(d, d, d * d));
    for (int n : {d, d * d}) {
      const auto a = random_matrix(d, d, 500 + d);
      const auto b = random_matrix(d, n, 600 + d);
      const std::size_t sz = static_cast<std::size_t>(d) * n;
      std::vector<double> c_fixed(sz, -1.0), c_gen(sz, -2.0);
      tsem::mxm_fixed_dispatch(a.data(), d, b.data(), d, c_fixed.data(), n);
      mxm_generic(a.data(), d, b.data(), d, c_gen.data(), n);
      for (std::size_t i = 0; i < sz; ++i)
        ASSERT_NEAR(c_fixed[i], c_gen[i],
                    1e-12 * (1.0 + std::fabs(c_gen[i])))
            << "shape " << d << "x" << d << "x" << n << " entry " << i;
    }
  }
  EXPECT_FALSE(tsem::mxm_fixed_covers(17, 17, 17));  // above the tier
  EXPECT_FALSE(tsem::mxm_fixed_covers(8, 9, 8));     // non-cube k
  EXPECT_FALSE(tsem::mxm_fixed_covers(8, 8, 24));    // n != d, d^2
}

TEST(MxmFixed, FallbackShapesMatchGenericToFamilyBound) {
  struct Shape { int m, k, n; };
  // Outside coverage: tall, wide, non-square-k — exercise both f2 (m > n)
  // and f3 (m <= n) fallback arms.  The fallback carries the registry's
  // relative accuracy contract, not bitwise: the dot-product (f2/f3) and
  // row-update (generic) loop forms contract into FMA differently at
  // vector tails under -march=native.
  const Shape shapes[] = {{17, 17, 17}, {40, 8, 5}, {5, 8, 40},
                          {8, 9, 8},    {8, 8, 24}};
  for (const auto& s : shapes) {
    ASSERT_FALSE(tsem::mxm_fixed_covers(s.m, s.k, s.n));
    const auto a = random_matrix(s.m, s.k, 700 + s.m);
    const auto b = random_matrix(s.k, s.n, 800 + s.n);
    const std::size_t sz = static_cast<std::size_t>(s.m) * s.n;
    std::vector<double> c_fixed(sz, -1.0), c_gen(sz, -2.0);
    tsem::mxm_fixed_dispatch(a.data(), s.m, b.data(), s.k, c_fixed.data(),
                             s.n);
    mxm_generic(a.data(), s.m, b.data(), s.k, c_gen.data(), s.n);
    for (std::size_t i = 0; i < sz; ++i)
      ASSERT_NEAR(c_fixed[i], c_gen[i],
                  1e-12 * (1.0 + std::fabs(c_gen[i])))
          << "shape " << s.m << "x" << s.k << "x" << s.n << " entry " << i;
  }
}

// The "fixed" variant is an ordinary registry member (so the sweep tests
// above already cover it); the AVX-512 family must appear iff the runtime
// reports the ISA, and mxm_isa_runtime_name must be consistent with it.
TEST(MxmRegistry, Avx512FamilyPresenceMatchesRuntime) {
  const bool runtime_avx512 =
      std::string_view(tsem::mxm_isa_runtime_name()) == "avx512";
  const bool registered =
      tsem::mxm_variant_by_name("avx512_b8x8") != nullptr;
  if (registered) {
    EXPECT_TRUE(runtime_avx512)
        << "avx512 kernels registered without runtime support";
    EXPECT_NE(tsem::mxm_variant_by_name("avx512_b4x16"), nullptr);
  }
  // "fixed" is unconditional.
  EXPECT_NE(tsem::mxm_variant_by_name("fixed"), nullptr);
}

// A TSEM_MXM_KERNEL value naming no registered variant must NOT silently
// fall back: the table still autotunes (dispatch keeps working), and the
// fallback is observable — a pin_fallbacks count plus an event naming the
// requested and actual kernels.
TEST(MxmRegistry, UnknownKernelPinWarnsAndFallsBackObservably) {
  if (!tsem::obs::enabled()) GTEST_SKIP() << "obs compiled out";
  auto& reg = tsem::obs::MetricsRegistry::instance();
  reg.reset();
  ASSERT_EQ(setenv("TSEM_MXM_KERNEL", "no_such_kernel", 1), 0);
  tsem::detail::mxm_autotune_reset_for_testing();
  tsem::mxm_autotune_init();

  // Dispatch still works and selects a real variant.
  const char* sel = tsem::mxm_selected_name(8, 8, 8);
  ASSERT_NE(tsem::mxm_variant_by_name(sel), nullptr);
  const auto a = random_matrix(8, 8, 901);
  const auto b = random_matrix(8, 8, 902);
  const auto ref = reference_mxm(a, 8, b, 8, 8);
  std::vector<double> c(64);
  tsem::mxm(a.data(), 8, b.data(), 8, c.data(), 8);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(c[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])));

  EXPECT_GE(reg.counter("mxm/autotune/pin_fallbacks").value(), 1);
  const tsem::obs::Json snap = reg.snapshot();
  const auto& events = snap.find("events")->items();
  bool found = false;
  for (const auto& e : events) {
    const auto* type = e.find("type");
    if (!type || type->as_string() != "mxm_kernel_pin_fallback") continue;
    found = true;
    EXPECT_EQ(e.find("requested")->as_string(), "no_such_kernel");
    EXPECT_NE(tsem::mxm_variant_by_name(
                  e.find("actual")->as_string().c_str()),
              nullptr);
  }
  EXPECT_TRUE(found) << "no mxm_kernel_pin_fallback event emitted";

  unsetenv("TSEM_MXM_KERNEL");
  tsem::detail::mxm_autotune_reset_for_testing();
  tsem::mxm_autotune_init();
  reg.reset();
}

TEST(Mxm, TransposedVariants) {
  const int m = 6, k = 9, n = 7;
  const auto a = random_matrix(m, k, 3);
  const auto b = random_matrix(k, n, 5);
  const auto ref = reference_mxm(a, m, b, k, n);

  // mxm_bt: pass B^T stored (n x k).
  std::vector<double> bt(static_cast<std::size_t>(n) * k);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  mxm_bt(a.data(), m, bt.data(), k, c.data(), n);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-13);

  // mxm_at: pass A^T stored (k x m).
  std::vector<double> at(static_cast<std::size_t>(k) * m);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  mxm_at(at.data(), m, b.data(), k, c.data(), n);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-13);
}

TEST(Mxm, FixedSizeKernel) {
  const auto a = random_matrix(8, 5, 11);
  const auto b = random_matrix(5, 12, 13);
  const auto ref = reference_mxm(a, 8, b, 5, 12);
  std::vector<double> c(8 * 12);
  tsem::mxm_fixed<8, 5, 12>(a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-13);
}

// Kronecker-product reference for tensor_apply checks.
std::vector<double> kron(const std::vector<double>& a, int ma, int na,
                         const std::vector<double>& b, int mb, int nb) {
  std::vector<double> k(static_cast<std::size_t>(ma * mb) * (na * nb));
  for (int ia = 0; ia < ma; ++ia)
    for (int ja = 0; ja < na; ++ja)
      for (int ib = 0; ib < mb; ++ib)
        for (int jb = 0; jb < nb; ++jb)
          k[(ia * mb + ib) * (na * nb) + (ja * nb + jb)] =
              a[ia * na + ja] * b[ib * nb + jb];
  return k;
}

TEST(TensorApply, TwoDMatchesKronecker) {
  const int mx = 4, nx = 5, my = 3, ny = 6;
  const auto ax = random_matrix(mx, nx, 1);
  const auto ay = random_matrix(my, ny, 2);
  const auto u = random_matrix(ny, nx, 3);  // u[i + nx*j]

  // Reference: (Ay kron Ax) acting on u ordered with x fastest.
  const auto op = kron(ay, my, ny, ax, mx, nx);
  std::vector<double> ref(static_cast<std::size_t>(mx) * my, 0.0);
  for (int r = 0; r < mx * my; ++r)
    for (int c = 0; c < nx * ny; ++c) ref[r] += op[r * (nx * ny) + c] * u[c];

  std::vector<double> out(static_cast<std::size_t>(mx) * my);
  std::vector<double> work(static_cast<std::size_t>(ny) * mx);
  tsem::tensor2_apply(ax.data(), mx, nx, ay.data(), my, ny, u.data(),
                      out.data(), work.data());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-12);
}

TEST(TensorApply, ThreeDMatchesKronecker) {
  const int mx = 3, nx = 4, my = 2, ny = 3, mz = 4, nz = 2;
  const auto ax = random_matrix(mx, nx, 4);
  const auto ay = random_matrix(my, ny, 5);
  const auto az = random_matrix(mz, nz, 6);
  const auto u = random_matrix(nz * ny, nx, 7);

  const auto zy = kron(az, mz, nz, ay, my, ny);
  const auto op = kron(zy, mz * my, nz * ny, ax, mx, nx);
  const int nin = nx * ny * nz, nout = mx * my * mz;
  std::vector<double> ref(nout, 0.0);
  for (int r = 0; r < nout; ++r)
    for (int c = 0; c < nin; ++c) ref[r] += op[r * nin + c] * u[c];

  std::vector<double> out(nout);
  std::vector<double> work(static_cast<std::size_t>(nz) * ny * mx +
                           static_cast<std::size_t>(nz) * my * mx);
  tsem::tensor3_apply(ax.data(), mx, nx, ay.data(), my, ny, az.data(), mz, nz,
                      u.data(), out.data(), work.data());
  for (int i = 0; i < nout; ++i) EXPECT_NEAR(out[i], ref[i], 1e-12);
}

TEST(TensorApply, SingleDirectionConsistent3D) {
  const int n = 5;
  const auto a = random_matrix(n, n, 8);
  const auto u = random_matrix(n * n, n, 9);
  std::vector<double> eye(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) eye[i * n + i] = 1.0;

  std::vector<double> full(u.size()), partial(u.size());
  std::vector<double> work(2 * u.size());

  tsem::tensor3_apply(a.data(), n, n, eye.data(), n, n, eye.data(), n, n,
                      u.data(), full.data(), work.data());
  tsem::tensor3_apply_x(a.data(), n, n, n, u.data(), partial.data());
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(full[i], partial[i], 1e-12);

  tsem::tensor3_apply(eye.data(), n, n, a.data(), n, n, eye.data(), n, n,
                      u.data(), full.data(), work.data());
  tsem::tensor3_apply_y(a.data(), n, n, n, u.data(), partial.data());
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(full[i], partial[i], 1e-12);

  tsem::tensor3_apply(eye.data(), n, n, eye.data(), n, n, a.data(), n, n,
                      u.data(), full.data(), work.data());
  tsem::tensor3_apply_z(a.data(), n, n, n, u.data(), partial.data());
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_NEAR(full[i], partial[i], 1e-12);
}

}  // namespace
