// Relaxed-contract assertions for solver paths that are NOT bitwise
// reproducible (DESIGN.md "Precision policy").
//
// The repo's default test contract is bitwise equality: scalar kernel
// variants, thread counts, and fleet retries must not change a single
// ULP.  A preconditioner, though, only steers the Krylov iteration — any
// s.p.d.-ish approximation converges to the same answer — so paths that
// perturb ONLY the preconditioner (the FP32 Schwarz/FDM and Jacobi
// applications) are held to a weaker, but still falsifiable, contract:
//
//   1. iteration count within a small additive delta of the baseline,
//   2. the achieved residual meets the same tolerance the baseline met,
//   3. the solutions agree to a tolerance set by the outer solve (both
//      converged to `tol`, so they differ by O(tol * ||x||), not O(eps)).
//
// EXPECT_CONVERGENCE_CONTRACT is the shared rig for both the new
// mixed-precision tests and retrofitted baseline tests.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "solver/cg.hpp"

namespace tsem::testing {

/// Assert `got` (the perturbed-path solve) against `base` (the reference
/// solve of the same system): both converged, iterations within
/// `max_extra_iters`, and the achieved relative residual within
/// `residual_slack` of the baseline's — or below `tol`, the tolerance
/// both solves were asked for.  The `tol` escape matters because a
/// baseline can overshoot the tolerance by orders of magnitude on its
/// final iteration; the perturbed path stopping anywhere under `tol` is
/// still a correct solve.
inline void expect_convergence_contract(const CgResult& base,
                                        const CgResult& got,
                                        int max_extra_iters,
                                        double tol = 0.0,
                                        double residual_slack = 10.0) {
  EXPECT_TRUE(base.converged) << "baseline solve did not converge";
  EXPECT_TRUE(got.converged) << "contract-path solve did not converge";
  EXPECT_EQ(got.status, SolveStatus::Converged);
  EXPECT_LE(got.iterations, base.iterations + max_extra_iters)
      << "contract path took " << got.iterations << " iterations vs baseline "
      << base.iterations << " (+" << max_extra_iters << " allowed)";
  // Compare achieved RELATIVE residuals: both solves may start from
  // different initial residuals only if the caller changed the problem,
  // which this contract forbids.
  const double base_rel = base.final_residual /
                          (base.initial_residual > 0 ? base.initial_residual
                                                     : 1.0);
  const double got_rel =
      got.final_residual /
      (got.initial_residual > 0 ? got.initial_residual : 1.0);
  EXPECT_LE(got_rel, std::max(tol, base_rel * residual_slack))
      << "contract path achieved relative residual " << got_rel
      << " vs baseline " << base_rel << " (tol " << tol << ")";
}

/// Assert two converged solutions agree to `rtol` in the max norm
/// relative to the solution scale (part 3 of the contract).
inline void expect_solutions_close(const double* a, const double* b,
                                   std::size_t n, double rtol) {
  double scale = 0.0, maxdiff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scale = std::max(scale, std::abs(a[i]));
    maxdiff = std::max(maxdiff, std::abs(a[i] - b[i]));
  }
  if (scale == 0.0) scale = 1.0;
  EXPECT_LE(maxdiff, rtol * scale)
      << "solutions differ by " << maxdiff << " (scale " << scale << ")";
}

#define EXPECT_CONVERGENCE_CONTRACT(base, got, max_extra_iters, ...)     \
  ::tsem::testing::expect_convergence_contract((base), (got),            \
                                               (max_extra_iters),        \
                                               ##__VA_ARGS__)

}  // namespace tsem::testing
