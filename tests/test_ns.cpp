// Integration tests for the Navier-Stokes integrator: Taylor-Green decay
// (exact solution), steady Poiseuille flow, divergence-free enforcement,
// temporal convergence, OIFS vs EXT, and scalar transport.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"

namespace {

using tsem::build_mesh;
using tsem::NavierStokes;
using tsem::NsOptions;
using tsem::Space;

// 2D Taylor-Green: u = sin x cos y f(t), v = -cos x sin y f(t),
// f(t) = exp(-2 nu t), p = (cos 2x + cos 2y) f^2 / 4 on [0,2pi]^2.
struct TaylorGreen {
  double nu;
  double u(double x, double y, double t) const {
    return std::sin(x) * std::cos(y) * std::exp(-2.0 * nu * t);
  }
  double v(double x, double y, double t) const {
    return -std::cos(x) * std::sin(y) * std::exp(-2.0 * nu * t);
  }
};

Space periodic_box(int k, int order) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, k),
                                tsem::linspace(0, 2 * M_PI, k));
  spec.periodic_x = spec.periodic_y = true;
  return Space(build_mesh(spec, order));
}

double taylor_green_error(NsOptions opt, int k, int order, int steps) {
  Space s = periodic_box(k, order);
  const auto& m = s.mesh();
  TaylorGreen tg{opt.viscosity};
  NavierStokes ns(s, 0u, opt);  // fully periodic: no Dirichlet tags
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = tg.u(m.x[i], m.y[i], 0.0);
    ns.u(1)[i] = tg.v(m.x[i], m.y[i], 0.0);
  }
  for (int n = 0; n < steps; ++n) ns.step();
  double err = 0.0;
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    err = std::max(err, std::fabs(ns.u(0)[i] - tg.u(m.x[i], m.y[i], ns.time())));
    err = std::max(err, std::fabs(ns.u(1)[i] - tg.v(m.x[i], m.y[i], ns.time())));
  }
  return err;
}

TEST(NavierStokes, TaylorGreenDecaysAccurately) {
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.torder = 2;
  opt.proj_len = 8;
  const double err = taylor_green_error(opt, 4, 8, 30);
  EXPECT_LT(err, 2e-4);
}

TEST(NavierStokes, SecondOrderTemporalConvergence) {
  NsOptions opt;
  opt.viscosity = 0.05;
  opt.torder = 2;
  opt.proj_len = 0;
  opt.helm_tol = 1e-12;
  opt.pres_tol = 1e-11;
  // Same final time T = 0.4 with dt and dt/2.
  opt.dt = 0.04;
  const double e1 = taylor_green_error(opt, 4, 8, 10);
  opt.dt = 0.02;
  const double e2 = taylor_green_error(opt, 4, 8, 20);
  // Order >= ~1.7 observed slope.
  EXPECT_LT(e2, e1 / 3.0);
}

TEST(NavierStokes, ExtConvectionAlsoConverges) {
  NsOptions opt;
  opt.viscosity = 0.05;
  opt.convection = NsOptions::Convection::Ext;
  opt.dt = 0.005;
  const double err = taylor_green_error(opt, 4, 8, 40);
  EXPECT_LT(err, 2e-4);
}

TEST(NavierStokes, VelocityIsDiscretelyDivergenceFree) {
  NsOptions opt;
  opt.dt = 0.02;
  opt.viscosity = 0.02;
  opt.pres_tol = 1e-9;
  Space s = periodic_box(4, 7);
  const auto& m = s.mesh();
  TaylorGreen tg{opt.viscosity};
  NavierStokes ns(s, 0u, opt);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = tg.u(m.x[i], m.y[i], 0.0);
    ns.u(1)[i] = tg.v(m.x[i], m.y[i], 0.0);
  }
  for (int n = 0; n < 5; ++n) {
    const auto st = ns.step();
    EXPECT_LT(st.divergence, 1e-7) << "step " << n;
  }
}

TEST(NavierStokes, PoiseuilleIsSteadyWithBodyForce) {
  // Channel y in [-1,1], periodic in x; U = 1 - y^2 sustained by
  // f_x = 2 nu.  Walls are Dirichlet (tags YLo | YHi).
  const double nu = 0.05;
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, 3),
                                tsem::linspace(-1, 1, 2));
  spec.periodic_x = true;
  Space s(build_mesh(spec, 9));
  const auto& m = s.mesh();
  NsOptions opt;
  opt.dt = 0.02;
  opt.viscosity = nu;
  opt.pres_tol = 1e-10;
  opt.helm_tol = 1e-11;
  NavierStokes ns(s, (1u << tsem::kFaceYLo) | (1u << tsem::kFaceYHi), opt);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = 1.0 - m.y[i] * m.y[i];
    ns.u(1)[i] = 0.0;
  }
  const std::size_t nl = s.nlocal();
  ns.set_forcing([nu, nl](const NavierStokes&, double,
                          const std::array<double*, 3>& f) {
    for (std::size_t i = 0; i < nl; ++i) f[0][i] += 2.0 * nu;
  });
  for (int n = 0; n < 10; ++n) ns.step();
  for (std::size_t i = 0; i < nl; ++i) {
    EXPECT_NEAR(ns.u(0)[i], 1.0 - m.y[i] * m.y[i], 5e-7);
    EXPECT_NEAR(ns.u(1)[i], 0.0, 5e-7);
  }
}

TEST(NavierStokes, Bdf3RunsStableAndAccurate) {
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.torder = 3;
  opt.filter_alpha = 0.1;  // the paper: filtering stabilizes 3rd order
  const double err = taylor_green_error(opt, 4, 8, 30);
  EXPECT_LT(err, 5e-4);
}

TEST(NavierStokes, UnforcedEnergyDecaysMonotonically) {
  // Viscous decay with no forcing: KE must be non-increasing.
  NsOptions opt;
  opt.dt = 0.02;
  opt.viscosity = 0.1;
  Space s = periodic_box(3, 7);
  const auto& m = s.mesh();
  NavierStokes ns(s, 0u, opt);
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(2.0 * m.y[i]);
    ns.u(1)[i] = std::cos(m.x[i] + 0.3);
  }
  double prev = 1e300;
  for (int n = 0; n < 12; ++n) {
    ns.step();
    const double ke = ns.kinetic_energy();
    EXPECT_LT(ke, prev * (1.0 + 1e-10)) << "step " << n;
    prev = ke;
  }
}

TEST(NavierStokes, ScalarIsAdvectedAndDiffused) {
  // Pure diffusion check: zero velocity, scalar decays like the heat
  // equation mode sin(x)sin(y) -> exp(-2 kappa t).
  const double kappa = 0.1;
  Space s = periodic_box(4, 7);
  const auto& m = s.mesh();
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.1;
  NavierStokes ns(s, 0u, opt);
  ns.add_scalar(0u, kappa);
  for (std::size_t i = 0; i < s.nlocal(); ++i)
    ns.scalar()[i] = std::sin(m.x[i]) * std::sin(m.y[i]);
  const int steps = 20;
  for (int n = 0; n < steps; ++n) ns.step();
  const double decay = std::exp(-2.0 * kappa * ns.time());
  for (std::size_t i = 0; i < s.nlocal(); ++i)
    EXPECT_NEAR(ns.scalar()[i],
                decay * std::sin(m.x[i]) * std::sin(m.y[i]), 2e-5);
}

TEST(NavierStokes, FilterKeepsSolutionAccurate) {
  // With a smooth solution the alpha = 0.2 filter must not destroy
  // accuracy (Table 1's message: slight degradation only).
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.filter_alpha = 0.0;
  const double e0 = taylor_green_error(opt, 4, 8, 20);
  opt.filter_alpha = 0.2;
  const double ef = taylor_green_error(opt, 4, 8, 20);
  EXPECT_LT(ef, 20.0 * (e0 + 1e-8));
  EXPECT_LT(ef, 1e-3);
}

TEST(NavierStokes, DealiasedConvectionMatchesTaylorGreen) {
  // Over-integrated convection must reproduce the exact decay as well as
  // (or better than) the collocation form on a smooth solution.
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.dealias = true;
  const double err = taylor_green_error(opt, 4, 8, 25);
  EXPECT_LT(err, 2e-4);
}

TEST(NavierStokes, DealiasedConservesEnergyBetterWhenMarginal) {
  // At marginal resolution, the aliasing error of collocation convection
  // spuriously injects energy; over-integration does not.  Compare the
  // inviscid-limit energy drift over a short horizon.
  auto run = [](bool dealias) {
    auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 4),
                                  tsem::linspace(0, 1, 4));
    spec.periodic_x = spec.periodic_y = true;
    Space s(build_mesh(spec, 5));  // deliberately under-resolved
    const auto& m = s.mesh();
    NsOptions opt;
    opt.dt = 0.002;
    opt.viscosity = 1e-6;  // nearly inviscid
    opt.dealias = dealias;
    opt.pres_tol = 1e-8;
    NavierStokes ns(s, 0u, opt);
    const double rho = 20.0;
    for (std::size_t i = 0; i < s.nlocal(); ++i) {
      const double y = m.y[i];
      ns.u(0)[i] = (y <= 0.5) ? std::tanh(rho * (y - 0.25))
                              : std::tanh(rho * (0.75 - y));
      ns.u(1)[i] = 0.05 * std::sin(2.0 * M_PI * m.x[i]);
    }
    const double e0 = ns.kinetic_energy();
    for (int n = 0; n < 40; ++n) ns.step();
    return std::fabs(ns.kinetic_energy() - e0) / e0;
  };
  const double drift_collocated = run(false);
  const double drift_dealiased = run(true);
  // Both should be small over this horizon; dealiasing must not be worse.
  EXPECT_LT(drift_dealiased, 0.05);
  EXPECT_LE(drift_dealiased, 2.0 * drift_collocated + 1e-4);
}

TEST(NavierStokes, ProjectionReducesPressureIterations) {
  NsOptions base;
  base.dt = 0.01;
  base.viscosity = 0.05;
  base.pres_tol = 1e-8;

  auto run = [&](int proj_len) {
    NsOptions opt = base;
    opt.proj_len = proj_len;
    Space s = periodic_box(4, 7);
    const auto& m = s.mesh();
    TaylorGreen tg{opt.viscosity};
    NavierStokes ns(s, 0u, opt);
    for (std::size_t i = 0; i < s.nlocal(); ++i) {
      ns.u(0)[i] = tg.u(m.x[i], m.y[i], 0.0);
      ns.u(1)[i] = tg.v(m.x[i], m.y[i], 0.0);
    }
    int total = 0;
    for (int n = 0; n < 12; ++n) total += ns.step().pressure_iters;
    return total;
  };
  const int without = run(0);
  const int with = run(10);
  EXPECT_LT(with, without);
}

}  // namespace
