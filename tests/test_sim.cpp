// Tests for the simulated-machine cost model.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace {

using tsem::MachineParams;

TEST(Machine, BasicCosts) {
  MachineParams m;
  m.alpha = 1e-5;
  m.beta = 1e-8;
  m.flop_rate = 1e8;
  EXPECT_DOUBLE_EQ(m.msg_time(100), 1e-5 + 100 * 1e-8);
  EXPECT_DOUBLE_EQ(m.compute_time(1e8), 1.0);
}

TEST(Machine, AllgatherScalesLogarithmicallyInLatency) {
  MachineParams m;
  m.alpha = 1e-5;
  m.beta = 0.0;  // isolate latency
  const double t4 = tsem::allgather_time(m, 4, 1000);
  const double t16 = tsem::allgather_time(m, 16, 1000);
  EXPECT_DOUBLE_EQ(t4, 2e-5);
  EXPECT_DOUBLE_EQ(t16, 4e-5);
  EXPECT_DOUBLE_EQ(tsem::allgather_time(m, 1, 1000), 0.0);
}

TEST(Machine, AllgatherCostsNLog2PWords) {
  // The paper bills the gather-everything alternatives at n log2 P words
  // (see sim/machine.cpp); verify that model.
  // Includes the x4 mesh-bisection contention factor (see machine.cpp).
  MachineParams m;
  m.alpha = 0.0;
  m.beta = 1e-9;
  EXPECT_NEAR(tsem::allgather_time(m, 2, 1000), 4 * 1000 * 1e-9, 1e-15);
  EXPECT_NEAR(tsem::allgather_time(m, 1024, 1000), 40 * 1000 * 1e-9, 1e-15);
}

TEST(Machine, TreeFanCountsBothDirections) {
  MachineParams m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  const std::int64_t words[3] = {100, 50, 25};
  const double t = tsem::tree_fan_time(m, words, 3);
  EXPECT_NEAR(t, 2.0 * (3e-6 + 175 * 1e-9), 1e-15);
}

TEST(Machine, LatencyBoundMatchesPaperCurve) {
  MachineParams m;
  m.alpha = 50e-6;
  EXPECT_NEAR(tsem::latency_bound(m, 1024), 50e-6 * 2 * 10, 1e-12);
  // The paper's Fig 6 curve reads ~1 ms at P = 2048.
  EXPECT_NEAR(tsem::latency_bound(tsem::MachineParams::asci_red(false, false),
                                  2048),
              1.1e-3, 2e-4);
}

TEST(Machine, AsciRedTiersOrdering) {
  const auto ss = MachineParams::asci_red(false, false);
  const auto sp = MachineParams::asci_red(false, true);
  const auto ds = MachineParams::asci_red(true, false);
  const auto dp = MachineParams::asci_red(true, true);
  EXPECT_LT(ss.flop_rate, sp.flop_rate);
  EXPECT_LT(ss.flop_rate, ds.flop_rate);
  EXPECT_LT(ds.flop_rate, dp.flop_rate);
  // Dual-processor efficiency < 2x (shared memory bus, paper: 82%).
  EXPECT_LT(dp.flop_rate, 2.0 * sp.flop_rate);
}

}  // namespace
