// Tests for the simulated-machine cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "bench/hairpin_model.hpp"
#include "sim/machine.hpp"

namespace {

using tsem::MachineParams;

TEST(Machine, BasicCosts) {
  MachineParams m;
  m.alpha = 1e-5;
  m.beta = 1e-8;
  m.flop_rate = 1e8;
  EXPECT_DOUBLE_EQ(m.msg_time(100), 1e-5 + 100 * 1e-8);
  EXPECT_DOUBLE_EQ(m.compute_time(1e8), 1.0);
}

TEST(Machine, AllgatherScalesLogarithmicallyInLatency) {
  MachineParams m;
  m.alpha = 1e-5;
  m.beta = 0.0;  // isolate latency
  const double t4 = tsem::allgather_time(m, 4, 1000);
  const double t16 = tsem::allgather_time(m, 16, 1000);
  EXPECT_DOUBLE_EQ(t4, 2e-5);
  EXPECT_DOUBLE_EQ(t16, 4e-5);
  EXPECT_DOUBLE_EQ(tsem::allgather_time(m, 1, 1000), 0.0);
}

TEST(Machine, AllgatherCostsNLog2PWords) {
  // The paper bills the gather-everything alternatives at n log2 P words
  // (see sim/machine.cpp); verify that model.
  // Includes the x4 mesh-bisection contention factor (see machine.cpp).
  MachineParams m;
  m.alpha = 0.0;
  m.beta = 1e-9;
  EXPECT_NEAR(tsem::allgather_time(m, 2, 1000), 4 * 1000 * 1e-9, 1e-15);
  EXPECT_NEAR(tsem::allgather_time(m, 1024, 1000), 40 * 1000 * 1e-9, 1e-15);
}

TEST(Machine, TreeFanCountsBothDirections) {
  MachineParams m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  const std::int64_t words[3] = {100, 50, 25};
  const double t = tsem::tree_fan_time(m, words, 3);
  EXPECT_NEAR(t, 2.0 * (3e-6 + 175 * 1e-9), 1e-15);
}

TEST(Machine, LatencyBoundMatchesPaperCurve) {
  MachineParams m;
  m.alpha = 50e-6;
  EXPECT_NEAR(tsem::latency_bound(m, 1024), 50e-6 * 2 * 10, 1e-12);
  // The paper's Fig 6 curve reads ~1 ms at P = 2048.
  EXPECT_NEAR(tsem::latency_bound(tsem::MachineParams::asci_red(false, false),
                                  2048),
              1.1e-3, 2e-4);
}

// ---- golden-value regression locks ------------------------------------
//
// Every reproduced table and figure is a deterministic function of the
// four primitives below and the ASCI-Red calibration constants.  The
// expected values here are hand-computed closed forms written as
// literals, so a calibration-constant or recursion change can never
// silently shift the scaling studies: it must come through this file.

TEST(MachineGolden, AsciRedCalibrationConstants) {
  const auto ss = MachineParams::asci_red(false, false);
  EXPECT_DOUBLE_EQ(ss.alpha, 50e-6);
  EXPECT_DOUBLE_EQ(ss.beta, 8.0 / 310e6);
  EXPECT_DOUBLE_EQ(ss.flop_rate, 90e6);
  EXPECT_DOUBLE_EQ(MachineParams::asci_red(false, true).flop_rate, 95e6);
  // Dual-processor gains: 1.46x (std.), 1.64x (perf., 82% efficiency).
  EXPECT_DOUBLE_EQ(MachineParams::asci_red(true, false).flop_rate,
                   90e6 * 1.46);
  EXPECT_DOUBLE_EQ(MachineParams::asci_red(true, true).flop_rate,
                   95e6 * 1.64);
}

TEST(MachineGolden, AllreduceClosedForm) {
  // allreduce = log2(P) * (alpha + words*beta).  On asci-red std at
  // P = 256, 1 word: 8 * (50e-6 + 8/310e6) = 4.0020645161290322e-4 s.
  const auto m = MachineParams::asci_red(false, false);
  EXPECT_NEAR(tsem::allreduce_time(m, 256, 1), 4.0020645161290322e-4, 1e-15);
  // Non-power-of-two P rounds stages up: P = 6 -> 3 stages.
  EXPECT_NEAR(tsem::allreduce_time(m, 6, 1), 1.5007741935483871e-4, 1e-15);
  EXPECT_DOUBLE_EQ(tsem::allreduce_time(m, 1, 1), 0.0);
}

TEST(MachineGolden, AllgatherClosedForm) {
  // allgather = log2(P) * (alpha + 4*words*beta), the x4 being the mesh
  // bisection-contention factor.  asci-red std, P = 1024, n = 10142
  // (the paper's coarse size): 10 * (50e-6 + 4*10142*8/310e6)
  // = 1.0969161290322581e-2 s.
  const auto m = MachineParams::asci_red(false, false);
  EXPECT_NEAR(tsem::allgather_time(m, 1024, 10142), 1.0969161290322581e-2,
              1e-14);
  EXPECT_DOUBLE_EQ(tsem::allgather_time(m, 1, 10142), 0.0);
}

TEST(MachineGolden, TreeFanClosedForm) {
  // tree_fan = 2 * sum_l (alpha + words[l]*beta): fan-in plus the
  // mirroring fan-out.  asci-red std with levels {100, 50, 25}:
  // 2 * (3*50e-6 + 175*8/310e6) = 3.0903225806451611e-4 s.
  const auto m = MachineParams::asci_red(false, false);
  const std::int64_t words[3] = {100, 50, 25};
  EXPECT_NEAR(tsem::tree_fan_time(m, words, 3), 3.0903225806451611e-4, 1e-15);
  EXPECT_DOUBLE_EQ(tsem::tree_fan_time(m, words, 0), 0.0);
}

TEST(MachineGolden, LatencyBoundClosedForm) {
  // latency_bound = 2 * alpha * log2(P): 1.1e-3 s exactly at P = 2048 on
  // asci-red (the paper's Fig 6 floor, ~1 ms).
  const auto m = MachineParams::asci_red(false, false);
  EXPECT_DOUBLE_EQ(tsem::latency_bound(m, 2048), 1.1e-3);
  EXPECT_DOUBLE_EQ(tsem::latency_bound(m, 2), 1e-4);
  EXPECT_DOUBLE_EQ(tsem::latency_bound(m, 1), 0.0);
}

// The shared pressure-iteration transient (Fig 8 / Table 4): a single
// definition in hairpin_model.hpp so the two reproductions cannot drift.
TEST(HairpinModel, PressureTransientProfile) {
  EXPECT_DOUBLE_EQ(tsem::hairpin::transient_pressure_iters(0), 300.0);
  const auto prof = tsem::hairpin::pressure_iteration_profile(26);
  ASSERT_EQ(prof.size(), 26u);
  for (int n = 0; n < 26; ++n) {
    EXPECT_DOUBLE_EQ(prof[n], 40.0 + 260.0 * std::exp(-n / 4.0));
    if (n > 0) EXPECT_LT(prof[n], prof[n - 1]);  // monotone decay
  }
  // Settles into the paper's 30-50 band by mid-run.
  EXPECT_LT(prof[15], 50.0);
  EXPECT_GT(prof.back(), 40.0);
  EXPECT_LT(prof.back(), 41.0);
}

TEST(Machine, AsciRedTiersOrdering) {
  const auto ss = MachineParams::asci_red(false, false);
  const auto sp = MachineParams::asci_red(false, true);
  const auto ds = MachineParams::asci_red(true, false);
  const auto dp = MachineParams::asci_red(true, true);
  EXPECT_LT(ss.flop_rate, sp.flop_rate);
  EXPECT_LT(ss.flop_rate, ds.flop_rate);
  EXPECT_LT(ds.flop_rate, dp.flop_rate);
  // Dual-processor efficiency < 2x (shared memory bus, paper: 82%).
  EXPECT_LT(dp.flop_rate, 2.0 * sp.flop_rate);
}

}  // namespace
