// Resilience layer tests: SolveStatus classification in pcg, deterministic
// fault injection, checkpoint/restart integrity, and the NavierStokes
// recovery ladder end-to-end (poisoned solve -> escalation -> halved-dt
// retry -> completed run).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "solver/cg.hpp"

namespace {

using tsem::build_mesh;
using tsem::CgOptions;
using tsem::FaultInjector;
using tsem::FaultSite;
using tsem::NavierStokes;
using tsem::NsOptions;
using tsem::NsState;
using tsem::SolveStatus;
using tsem::Space;
using tsem::StepStats;

// ---------------------------------------------------------------------------
// pcg exit classification
// ---------------------------------------------------------------------------

double plain_dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

TEST(SolveStatus, DiagonalSystemConverges) {
  const std::size_t n = 32;
  std::vector<double> d(n), b(n, 1.0), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 + static_cast<double>(i);
  auto apply = [&](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) ap[i] = d[i] * p[i];
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  CgOptions opt;
  opt.tol = 1e-12;
  opt.relative = true;
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), opt);
  EXPECT_EQ(res.status, SolveStatus::Converged);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(tsem::is_hard_failure(res.status));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0 / d[i], 1e-10);
}

TEST(SolveStatus, UnattainableAbsoluteToleranceStalls) {
  // 1D Dirichlet Laplacian: the recursive CG residual stagnates at the
  // roundoff floor (unlike a diagonal system, where it can hit exact 0).
  const std::size_t n = 100;
  std::vector<double> b(n), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(0.37 * static_cast<double>(i) + 1.0);
  auto apply = [n](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = 2.0 * p[i];
      if (i > 0) v -= p[i - 1];
      if (i < n - 1) v -= p[i + 1];
      ap[i] = v;
    }
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  CgOptions opt;
  opt.tol = 1e-300;  // far below the roundoff floor
  opt.relative = false;
  opt.max_iter = 100000;
  opt.stall_window = 20;
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), opt);
  EXPECT_EQ(res.status, SolveStatus::Stalled);
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(tsem::is_hard_failure(res.status));
  // The iterate is still the best attainable solution, not garbage.
  std::vector<double> ax(n);
  apply(x.data(), ax.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  // The stall guard fired long before the iteration budget.
  EXPECT_LT(res.iterations, 1000);
}

TEST(SolveStatus, IndefiniteOperatorIsBreakdownNotNan) {
  const std::size_t n = 8;
  std::vector<double> b(n, 1.0), x(n, 0.0);
  auto apply = [n](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) ap[i] = -p[i];  // negative definite
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), CgOptions{});
  EXPECT_EQ(res.status, SolveStatus::Breakdown);
  EXPECT_TRUE(tsem::is_hard_failure(res.status));
  // The pre-escalation silent-`break` bug returned MaxIter semantics with
  // converged=false; the x untouched contract still holds.
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], 0.0);
}

TEST(SolveStatus, NanRhsIsNonFiniteBeforeTouchingX) {
  const std::size_t n = 8;
  std::vector<double> b(n, 1.0), x(n, 3.0);
  b[4] = std::numeric_limits<double>::quiet_NaN();
  auto apply = [n](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) ap[i] = p[i];
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), CgOptions{});
  EXPECT_EQ(res.status, SolveStatus::NonFinite);
  EXPECT_EQ(res.iterations, 0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], 3.0);  // untouched
}

TEST(SolveStatus, NanOperatorIsNonFinite) {
  const std::size_t n = 8;
  std::vector<double> b(n, 1.0), x(n, 0.0);
  auto apply = [n](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i)
      ap[i] = std::numeric_limits<double>::quiet_NaN() * p[i];
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), CgOptions{});
  EXPECT_EQ(res.status, SolveStatus::NonFinite);
}

TEST(SolveStatus, IterationBudgetExhaustedIsMaxIter) {
  const std::size_t n = 50;
  std::vector<double> d(n), b(n, 1.0), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 + static_cast<double>(i);
  auto apply = [&](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) ap[i] = d[i] * p[i];
  };
  auto dot = [n](const double* a, const double* c) {
    return plain_dot(a, c, n);
  };
  CgOptions opt;
  opt.tol = 1e-14;
  opt.relative = true;
  opt.max_iter = 3;
  auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot, b.data(),
                       x.data(), opt);
  EXPECT_EQ(res.status, SolveStatus::MaxIter);
  EXPECT_EQ(res.iterations, 3);
  EXPECT_FALSE(tsem::is_hard_failure(res.status));
}

TEST(SolveStatus, JacobiPrecondOwnsItsDiagonal) {
  // Regression: jacobi_precond used to capture a const& that dangled when
  // called with a temporary (e.g. jacobi_precond(h.diagonal() + ...)).
  auto prec = tsem::jacobi_precond(std::vector<double>{2.0, 4.0, 8.0});
  // The temporary vector is gone; the callable must still own the values.
  const double r[3] = {2.0, 4.0, 8.0};
  double z[3] = {0.0, 0.0, 0.0};
  prec(r, z);
  EXPECT_EQ(z[0], 1.0);
  EXPECT_EQ(z[1], 1.0);
  EXPECT_EQ(z[2], 1.0);
}

// ---------------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameFaults) {
  std::vector<double> a(100, 1.0), b(100, 1.0);
  FaultInjector f1(42), f2(42);
  auto i1 = f1.poison_nan(a.data(), a.size(), 5);
  auto i2 = f2.poison_nan(b.data(), b.size(), 5);
  EXPECT_EQ(i1, i2);
  ASSERT_EQ(i1.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::isnan(a[i]), std::isnan(b[i]));
  }
  // And the streams keep agreeing after the first draw.
  EXPECT_EQ(f1.draw(), f2.draw());
}

TEST(FaultInjector, DifferentSeedDifferentFaults) {
  std::vector<double> a(1000, 1.0), b(1000, 1.0);
  FaultInjector f1(1), f2(2);
  auto i1 = f1.poison_nan(a.data(), a.size(), 8);
  auto i2 = f2.poison_nan(b.data(), b.size(), 8);
  EXPECT_NE(i1, i2);
}

// ---------------------------------------------------------------------------
// Checkpoint/restart
// ---------------------------------------------------------------------------

Space periodic_box(int k, int order) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, k),
                                tsem::linspace(0, 2 * M_PI, k));
  spec.periodic_x = spec.periodic_y = true;
  return Space(build_mesh(spec, order));
}

NsOptions small_opts() {
  NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.torder = 2;
  opt.proj_len = 4;
  return opt;
}

void set_taylor_green(NavierStokes& ns, const Space& s) {
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
  }
}

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripPreservesStateBitExactly) {
  TempFile ck("ckpt_roundtrip.bin");
  Space s = periodic_box(4, 6);
  NavierStokes ns(s, 0u, small_opts());
  set_taylor_green(ns, s);
  for (int i = 0; i < 4; ++i) ns.step();

  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(ns, ck.path, &err)) << err;
  NsState st;
  ASSERT_TRUE(tsem::load_checkpoint(ck.path, &st, &err)) << err;

  const NsState ref = ns.export_state();
  EXPECT_EQ(st.step, ref.step);
  EXPECT_EQ(st.time, ref.time);
  EXPECT_EQ(st.dt, ref.dt);
  EXPECT_EQ(st.order_ramp, ref.order_ramp);
  EXPECT_EQ(st.flops_total, ref.flops_total);
  ASSERT_EQ(st.u[0].size(), ref.u[0].size());
  EXPECT_EQ(0, std::memcmp(st.u[0].data(), ref.u[0].data(),
                           ref.u[0].size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(st.p.data(), ref.p.data(),
                           ref.p.size() * sizeof(double)));
  ASSERT_EQ(st.proj_q.size(), ref.proj_q.size());
}

TEST(Checkpoint, RestoredRunContinuesBitIdentically) {
  TempFile ck("ckpt_continue.bin");
  Space s = periodic_box(4, 6);

  // Run A: integrate, checkpoint mid-run, continue.
  NavierStokes a(s, 0u, small_opts());
  set_taylor_green(a, s);
  for (int i = 0; i < 5; ++i) a.step();
  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(a, ck.path, &err)) << err;
  std::vector<StepStats> cont_a;
  for (int i = 0; i < 3; ++i) cont_a.push_back(a.step());

  // Run B: fresh solver restored from the checkpoint.
  NavierStokes b(s, 0u, small_opts());
  ASSERT_TRUE(tsem::restore_checkpoint(b, ck.path, &err)) << err;
  std::vector<StepStats> cont_b;
  for (int i = 0; i < 3; ++i) cont_b.push_back(b.step());

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cont_a[i].step, cont_b[i].step);
    EXPECT_EQ(cont_a[i].time, cont_b[i].time);
    EXPECT_EQ(cont_a[i].pressure_iters, cont_b[i].pressure_iters);
    EXPECT_EQ(cont_a[i].helmholtz_iters, cont_b[i].helmholtz_iters);
    EXPECT_EQ(cont_a[i].divergence, cont_b[i].divergence);
    EXPECT_EQ(cont_a[i].cfl, cont_b[i].cfl);
    EXPECT_EQ(cont_a[i].flops, cont_b[i].flops);
  }
  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(a.u(c).size(), b.u(c).size());
    EXPECT_EQ(0, std::memcmp(a.u(c).data(), b.u(c).data(),
                             a.u(c).size() * sizeof(double)))
        << "velocity component " << c << " diverged after restart";
  }
}

TEST(Checkpoint, CorruptedPayloadIsRejected) {
  TempFile ck("ckpt_corrupt.bin");
  Space s = periodic_box(3, 5);
  NavierStokes ns(s, 0u, small_opts());
  set_taylor_green(ns, s);
  ns.step();
  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(ns, ck.path, &err)) << err;

  // Flip bytes past the 20-byte header: payload CRC must catch it.
  FaultInjector fi(7);
  ASSERT_TRUE(fi.corrupt_file(ck.path, 3, 20, &err)) << err;
  NsState st;
  err.clear();
  EXPECT_FALSE(tsem::load_checkpoint(ck.path, &st, &err));
  EXPECT_FALSE(err.empty());

  // And restore_checkpoint must leave the solver untouched.
  NavierStokes fresh(s, 0u, small_opts());
  const std::vector<double> before = fresh.u(0);
  err.clear();
  EXPECT_FALSE(tsem::restore_checkpoint(fresh, ck.path, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(before, fresh.u(0));
}

TEST(Checkpoint, CorruptedHeaderIsRejected) {
  TempFile ck("ckpt_badhdr.bin");
  Space s = periodic_box(3, 5);
  NavierStokes ns(s, 0u, small_opts());
  ns.step();
  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(ns, ck.path, &err)) << err;
  FaultInjector fi(11);
  ASSERT_TRUE(fi.corrupt_file(ck.path, 2, 0, &err)) << err;
  // Corruption limited to the first bytes would still be caught by the
  // header CRC / magic check even before any payload is read.
  std::fstream f(ck.path,
                 std::ios::in | std::ios::out | std::ios::binary);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(0);
  f.write(&c, 1);
  f.close();
  NsState st;
  err.clear();
  EXPECT_FALSE(tsem::load_checkpoint(ck.path, &st, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  TempFile ck("ckpt_trunc.bin");
  Space s = periodic_box(3, 5);
  NavierStokes ns(s, 0u, small_opts());
  ns.step();
  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(ns, ck.path, &err)) << err;
  FaultInjector fi(13);
  ASSERT_TRUE(fi.truncate_file(ck.path, 0.6, &err)) << err;
  NsState st;
  err.clear();
  EXPECT_FALSE(tsem::load_checkpoint(ck.path, &st, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Checkpoint, MismatchedDiscretizationIsRejected) {
  TempFile ck("ckpt_mismatch.bin");
  Space s = periodic_box(4, 6);
  NavierStokes ns(s, 0u, small_opts());
  ns.step();
  std::string err;
  ASSERT_TRUE(tsem::save_checkpoint(ns, ck.path, &err)) << err;

  Space other = periodic_box(3, 5);  // different dof counts
  NavierStokes target(other, 0u, small_opts());
  err.clear();
  EXPECT_FALSE(tsem::restore_checkpoint(target, ck.path, &err));
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Recovery ladder end-to-end
// ---------------------------------------------------------------------------

TEST(Recovery, PoisonedPressureSolveEscalatesToHalvedDt) {
  Space s = periodic_box(4, 6);
  NsOptions opt = small_opts();
  opt.resilience.max_dt_halvings = 2;
  NavierStokes ns(s, 0u, opt);
  set_taylor_green(ns, s);

  // Poison the pressure rhs of step 5 on attempts 1-3 so the ladder must
  // climb all the way to a halved-dt retry (attempt 4) to get through.
  int hook_hits = 0;
  ns.set_fault_hook([&](FaultSite site, int step, int attempt,
                        int /*component*/, double* data, std::size_t n) {
    if (site == FaultSite::PressureRhs && step == 5 && attempt <= 3) {
      FaultInjector fi(100 + static_cast<std::uint64_t>(attempt));
      fi.poison_nan(data, n, 2);
      ++hook_hits;
    }
  });

  std::vector<StepStats> stats;
  for (int i = 0; i < 8; ++i) stats.push_back(ns.step());

  EXPECT_EQ(hook_hits, 3);
  const StepStats& f = stats[4];  // step 5
  EXPECT_FALSE(f.failed);
  EXPECT_TRUE(f.recovered);
  EXPECT_EQ(f.attempts, 4);
  EXPECT_EQ(f.dt_halvings, 1);
  EXPECT_TRUE(f.projection_flushed);
  EXPECT_TRUE(f.precond_fallback);
  EXPECT_EQ(f.dt, opt.dt * 0.5);
  EXPECT_EQ(f.pressure_status, SolveStatus::Converged);

  // Clean steps before and after: single attempt at the nominal dt.
  EXPECT_EQ(stats[3].attempts, 1);
  EXPECT_EQ(stats[3].dt, opt.dt);
  EXPECT_EQ(stats[5].attempts, 1);
  EXPECT_EQ(stats[5].dt, opt.dt);
  EXPECT_FALSE(stats[5].failed);

  // The run stayed finite and physical through the fault.
  for (double v : ns.u(0)) ASSERT_TRUE(std::isfinite(v));
  for (double v : ns.pressure()) ASSERT_TRUE(std::isfinite(v));
  EXPECT_LT(stats.back().divergence, 1e-4);
}

TEST(Recovery, PoisonedHelmholtzRhsRecoversWithoutDtChange) {
  Space s = periodic_box(4, 6);
  NavierStokes ns(s, 0u, small_opts());
  set_taylor_green(ns, s);

  ns.set_fault_hook([&](FaultSite site, int step, int attempt, int component,
                        double* data, std::size_t n) {
    if (site == FaultSite::HelmholtzRhs && step == 3 && attempt == 1 &&
        component == 0) {
      FaultInjector fi(5);
      fi.poison_nan(data, n, 1);
    }
  });

  std::vector<StepStats> stats;
  for (int i = 0; i < 4; ++i) stats.push_back(ns.step());

  const StepStats& f = stats[2];
  EXPECT_FALSE(f.failed);
  EXPECT_TRUE(f.recovered);
  EXPECT_EQ(f.attempts, 2);  // rung 1 (zero guess) already clears it
  EXPECT_EQ(f.dt_halvings, 0);
  EXPECT_TRUE(f.projection_flushed);
  EXPECT_FALSE(f.precond_fallback);
  for (double v : ns.u(0)) ASSERT_TRUE(std::isfinite(v));
}

TEST(Recovery, DisabledResilienceRecordsFailureWithoutRetry) {
  Space s = periodic_box(4, 6);
  NsOptions opt = small_opts();
  opt.resilience.enabled = false;
  NavierStokes ns(s, 0u, opt);
  set_taylor_green(ns, s);

  ns.set_fault_hook([&](FaultSite site, int step, int /*attempt*/,
                        int /*component*/, double* data, std::size_t n) {
    if (site == FaultSite::PressureRhs && step == 2) {
      FaultInjector fi(3);
      fi.poison_nan(data, n, 1);
    }
  });

  ns.step();
  StepStats f = ns.step();
  EXPECT_TRUE(f.failed);
  EXPECT_FALSE(f.recovered);
  EXPECT_EQ(f.attempts, 1);
  EXPECT_EQ(f.pressure_status, SolveStatus::NonFinite);
}

TEST(Recovery, CflWatchdogRejectsPreemptively) {
  Space s = periodic_box(4, 6);
  NsOptions opt = small_opts();
  opt.resilience.cfl_limit = 1e-6;  // any nonzero flow trips it
  opt.resilience.max_dt_halvings = 2;
  NavierStokes ns(s, 0u, opt);
  set_taylor_green(ns, s);

  StepStats f = ns.step();
  EXPECT_TRUE(f.cfl_rejected);
  EXPECT_EQ(f.dt_halvings, 2);  // capped by max_dt_halvings
  EXPECT_EQ(f.dt, opt.dt * 0.25);
  EXPECT_FALSE(f.failed);
  EXPECT_TRUE(f.recovered);
}

}  // namespace
