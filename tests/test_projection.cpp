// Tests for the successive-RHS projection accelerator (Fischer '98).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "solver/cg.hpp"
#include "solver/projection.hpp"

namespace {

// SPD test operator: tridiagonal (-1, 3, -1).
constexpr int kN = 64;
void apply_op(const double* x, double* y) {
  for (int i = 0; i < kN; ++i) {
    double s = 3.0 * x[i];
    if (i > 0) s -= x[i - 1];
    if (i < kN - 1) s -= x[i + 1];
    y[i] = s;
  }
}

double plain_dot(const double* a, const double* b) {
  double s = 0.0;
  for (int i = 0; i < kN; ++i) s += a[i] * b[i];
  return s;
}

std::vector<double> slow_rhs(double t) {
  // Slowly varying RHS family, as in time stepping.
  std::vector<double> g(kN);
  for (int i = 0; i < kN; ++i)
    g[i] = std::sin(0.3 * i + t) + 0.5 * std::cos(0.11 * i - 2.0 * t);
  return g;
}

TEST(Projection, ExactRhsReuseNeedsNoIterations) {
  tsem::SolutionProjection proj(kN, 5);
  auto apply = [](const double* x, double* y) { apply_op(x, y); };

  // Solve once, feed the solution into the basis, then re-pose the SAME
  // system: the projected guess must already satisfy it.
  const auto g = slow_rhs(0.0);
  std::vector<double> p0(kN, 0.0), r(kN), x(kN, 0.0);
  proj.project(g.data(), p0.data(), r.data());
  tsem::CgOptions opt;
  opt.tol = 1e-13;
  x = p0;
  tsem::pcg(static_cast<std::size_t>(kN), apply,
            tsem::identity_precond(kN), plain_dot, g.data(), x.data(), opt);
  proj.update(x.data(), p0.data(), apply);

  const double res0 = proj.project(g.data(), p0.data(), r.data());
  EXPECT_LT(res0, 1e-10);
  for (int i = 0; i < kN; ++i) EXPECT_NEAR(p0[i], x[i], 1e-9);
}

TEST(Projection, ReducesResidualAcrossSlowSequence) {
  tsem::SolutionProjection proj(kN, 10);
  auto apply = [](const double* x, double* y) { apply_op(x, y); };
  tsem::CgOptions opt;
  opt.tol = 1e-12;

  double first_res0 = 0.0, last_res0 = 0.0;
  for (int step = 0; step < 12; ++step) {
    const auto g = slow_rhs(0.05 * step);
    std::vector<double> p0(kN), r(kN), x(kN);
    const double res0 = proj.project(g.data(), p0.data(), r.data());
    if (step == 0) first_res0 = res0;
    last_res0 = res0;
    x = p0;
    tsem::pcg(static_cast<std::size_t>(kN), apply,
              tsem::identity_precond(kN), plain_dot, g.data(), x.data(),
              opt);
    proj.update(x.data(), p0.data(), apply);
  }
  // After the basis warms up, the pre-iteration residual drops by orders
  // of magnitude (paper Fig 4: ~2.5 decades).
  EXPECT_LT(last_res0, 1e-2 * first_res0);
}

TEST(Projection, BasisStaysEOrthonormal) {
  tsem::SolutionProjection proj(kN, 6);
  auto apply = [](const double* x, double* y) { apply_op(x, y); };
  tsem::CgOptions opt;
  opt.tol = 1e-13;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (int step = 0; step < 6; ++step) {
    std::vector<double> g(kN);
    for (auto& v : g) v = dist(rng);
    std::vector<double> p0(kN), r(kN), x(kN);
    proj.project(g.data(), p0.data(), r.data());
    x = p0;
    tsem::pcg(static_cast<std::size_t>(kN), apply,
              tsem::identity_precond(kN), plain_dot, g.data(), x.data(),
              opt);
    proj.update(x.data(), p0.data(), apply);
  }
  EXPECT_EQ(proj.size(), 6);
  // Orthonormality is verified indirectly: projecting any of the stored
  // directions' images must reproduce them exactly.  Use a random probe:
  // ||g - E P g|| <= ||g|| and projecting twice is idempotent.
  std::vector<double> g(kN), p0(kN), r(kN), p1(kN), r1(kN);
  for (auto& v : g) v = dist(rng);
  proj.project(g.data(), p0.data(), r.data());
  // Pose the reduced residual again: its projection must vanish.
  const double res2 = proj.project(r.data(), p1.data(), r1.data());
  double nrm = 0.0;
  for (int i = 0; i < kN; ++i) nrm += p1[i] * p1[i];
  EXPECT_LT(std::sqrt(nrm), 1e-8);
  (void)res2;
}

TEST(Projection, WindowRestartKeepsWorking) {
  tsem::SolutionProjection proj(kN, 3);
  auto apply = [](const double* x, double* y) { apply_op(x, y); };
  tsem::CgOptions opt;
  opt.tol = 1e-12;
  for (int step = 0; step < 9; ++step) {
    const auto g = slow_rhs(0.02 * step);
    std::vector<double> p0(kN), r(kN), x(kN);
    proj.project(g.data(), p0.data(), r.data());
    x = p0;
    tsem::pcg(static_cast<std::size_t>(kN), apply,
              tsem::identity_precond(kN), plain_dot, g.data(), x.data(),
              opt);
    proj.update(x.data(), p0.data(), apply);
    EXPECT_LE(proj.size(), 3);
  }
  // Still beneficial right after restarts.
  const auto g = slow_rhs(0.02 * 9);
  std::vector<double> p0(kN), r(kN);
  const double res0 = proj.project(g.data(), p0.data(), r.data());
  double gn = 0.0;
  for (int i = 0; i < kN; ++i) gn += g[i] * g[i];
  EXPECT_LT(res0, std::sqrt(gn));
}

}  // namespace
