// Tests for spectral point probing (element location + evaluation).
#include <gtest/gtest.h>

#include <cmath>

#include "core/probe.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"

namespace {

using tsem::build_mesh;
using tsem::FieldProbe;

TEST(Probe, ExactOnAffineBox) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2, 3),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, 6);
  FieldProbe probe(m);
  std::vector<double> f(m.nlocal());
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = 3.0 * m.x[i] * m.x[i] - m.y[i] + 0.5 * m.x[i] * m.y[i];
  for (double x : {0.05, 0.7, 1.33, 1.999}) {
    for (double y : {0.01, 0.44, 0.93}) {
      double v = 0.0;
      ASSERT_TRUE(probe.sample(f.data(), x, y, 0.0, &v));
      EXPECT_NEAR(v, 3 * x * x - y + 0.5 * x * y, 1e-11);
    }
  }
}

TEST(Probe, SpectrallyAccurateOnCurvedAnnulus) {
  auto spec = tsem::annulus_spec(0.8, 1.9, 2, 10, 1.2);
  const auto m = build_mesh(spec, 10);
  FieldProbe probe(m);
  std::vector<double> f(m.nlocal());
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(2.0 * m.x[i]) * std::cos(m.y[i]);
  for (double th : {0.13, 1.7, 3.9, 5.5}) {
    for (double r : {0.85, 1.2, 1.85}) {
      const double x = r * std::cos(th), y = r * std::sin(th);
      double v = 0.0;
      ASSERT_TRUE(probe.sample(f.data(), x, y, 0.0, &v))
          << "r=" << r << " th=" << th;
      EXPECT_NEAR(v, std::sin(2 * x) * std::cos(y), 1e-7);
    }
  }
}

TEST(Probe, Works3DOnDeformedMesh) {
  auto spec = tsem::bump_channel_spec(tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 2, 2),
                                      tsem::linspace(0, 1, 1), 1.0, 1.0, 0.6,
                                      0.15);
  const auto m = build_mesh(spec, 6);
  FieldProbe probe(m);
  std::vector<double> f(m.nlocal());
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = m.x[i] + 2.0 * m.y[i] * m.z[i];
  double v = 0.0;
  ASSERT_TRUE(probe.sample(f.data(), 0.5, 1.5, 0.7, &v));
  EXPECT_NEAR(v, 0.5 + 2.0 * 1.5 * 0.7, 1e-9);
  // A point above the bump apex, inside the deformed element.
  ASSERT_TRUE(probe.sample(f.data(), 1.0, 1.0, 0.5, &v));
  EXPECT_NEAR(v, 1.0 + 2.0 * 1.0 * 0.5, 1e-8);
}

TEST(Probe, RejectsOutsidePoints) {
  auto spec = tsem::annulus_spec(1.0, 2.0, 2, 8, 1.0);
  const auto m = build_mesh(spec, 5);
  FieldProbe probe(m);
  std::vector<double> f(m.nlocal(), 1.0);
  double v;
  EXPECT_FALSE(probe.sample(f.data(), 0.0, 0.0, 0.0, &v));  // in the hole
  EXPECT_FALSE(probe.sample(f.data(), 5.0, 0.0, 0.0, &v));  // outside
}

TEST(Probe, GridNodesRoundTrip) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 2),
                                tsem::linspace(0, 1, 2));
  const auto m = build_mesh(spec, 4);
  FieldProbe probe(m);
  std::vector<double> f(m.nlocal());
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = std::exp(m.x[i] - m.y[i]);
  // Sampling exactly at nodes returns the nodal value.
  for (std::size_t i : {0ul, 7ul, 13ul, 24ul}) {
    double v;
    ASSERT_TRUE(probe.sample(f.data(), m.x[i], m.y[i], 0.0, &v));
    EXPECT_NEAR(v, f[i], 1e-11);
  }
}

}  // namespace
