// Tests for the low-order FEM substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fem/fem.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "tensor/linalg.hpp"

namespace {

TEST(Fem1D, UniformGridMatchesClassicStencil) {
  // Uniform spacing h: stiffness tridiag (-1, 2, -1)/h, lumped mass h.
  const double h = 0.25;
  std::vector<double> pts = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<double> a, b;
  tsem::fem1d_operators(pts, a, b);
  const int m = 3;
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(a[i * m + i], 2.0 / h, 1e-13);
    if (i + 1 < m) EXPECT_NEAR(a[i * m + i + 1], -1.0 / h, 1e-13);
    EXPECT_NEAR(b[i], h, 1e-13);
  }
}

TEST(Fem1D, EnergyExactForLinearFunctions) {
  std::vector<double> pts = {0.0, 0.1, 0.35, 0.6, 1.0};
  std::vector<double> a, b;
  tsem::fem1d_operators(pts, a, b);
  // u = x restricted to the interior (Dirichlet values dropped):
  // full energy of u=x on (0,1) is 1; interior-only quadratic form equals
  // the energy of the hat-interpolant minus boundary couplings, so just
  // verify symmetry and positive-definiteness here.
  const int m = 3;
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) EXPECT_NEAR(a[i * m + j], a[j * m + i], 1e-14);
  auto chol = a;
  EXPECT_TRUE(tsem::cholesky_factor(chol.data(), m));
}

TEST(P1Laplacian2D, UniformGridIsFivePointStencil) {
  // On a uniform right-triangulated grid the P1 Laplacian reduces to the
  // standard 5-point stencil (4, -1, -1, -1, -1) (scaled by 1).
  const auto xs = tsem::linspace(0, 1, 4);  // 5 points, 3 interior
  const auto a = tsem::p1_laplacian_2d(xs, xs);
  const int m = 3, n = m * m;
  // Center point (1,1) -> index 4.
  EXPECT_NEAR(a[4 * n + 4], 4.0, 1e-12);
  EXPECT_NEAR(a[4 * n + 3], -1.0, 1e-12);
  EXPECT_NEAR(a[4 * n + 5], -1.0, 1e-12);
  EXPECT_NEAR(a[4 * n + 1], -1.0, 1e-12);
  EXPECT_NEAR(a[4 * n + 7], -1.0, 1e-12);
  // Diagonal neighbors vanish for this triangulation.
  EXPECT_NEAR(a[4 * n + 0], 0.0, 1e-12);
  EXPECT_NEAR(a[4 * n + 8], 0.0, 1e-12);
}

TEST(P1Laplacian2D, SpdOnGradedGrid) {
  std::vector<double> xs = {0.0, 0.05, 0.15, 0.4, 0.8, 1.0};
  std::vector<double> ys = {0.0, 0.3, 0.5, 0.9, 1.0};
  auto a = tsem::p1_laplacian_2d(xs, ys);
  const int n = static_cast<int>((xs.size() - 2) * (ys.size() - 2));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(a[i * n + j], a[j * n + i], 1e-12);
  EXPECT_TRUE(tsem::cholesky_factor(a.data(), n));
}

TEST(P1Laplacian3D, MatchesSevenPointOnUniformGrid) {
  const auto xs = tsem::linspace(0, 1, 4);
  const auto a = tsem::p1_laplacian_3d(xs, xs, xs);
  const int m = 3, n = m * m * m;
  const int c = (1 * m + 1) * m + 1;  // center
  const double h = 1.0 / 4.0;
  // 7-point stencil scaled by h: 6h, -h on the 6 face neighbors.
  EXPECT_NEAR(a[c * n + c], 6.0 * h, 1e-12);
  EXPECT_NEAR(a[c * n + c - 1], -h, 1e-12);
  EXPECT_NEAR(a[c * n + c + m], -h, 1e-12);
  EXPECT_NEAR(a[c * n + c + m * m], -h, 1e-12);
}

TEST(Q1VertexLaplacian, NullspaceAndPartitionOfEnergy) {
  auto spec = tsem::annulus_spec(0.8, 2.0, 2, 8, 1.2);
  const auto m = tsem::build_mesh(spec, 4);
  const auto a0 = tsem::q1_vertex_laplacian(m);
  EXPECT_EQ(a0.n(), static_cast<int>(m.nvert));
  // Pure Neumann Laplacian: A0 * 1 = 0.
  std::vector<double> ones(m.nvert, 1.0), y(m.nvert);
  a0.matvec(ones.data(), y.data());
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-10);
  // Energy of a linear function x: integral |grad x|^2 = area.
  std::vector<double> vx, vy, vz;
  tsem::vertex_coords(m, vx, vy, vz);
  a0.matvec(vx.data(), y.data());
  double e = 0.0;
  for (std::size_t i = 0; i < vx.size(); ++i) e += vx[i] * y[i];
  // Q1 cells have straight edges, so the coarse energy equals the area of
  // the polygonal approximation of the annulus — about 10% low at kt = 8
  // — and must converge toward the exact area under refinement.
  const double exact = M_PI * (4.0 - 0.64);
  EXPECT_NEAR(e, exact, 0.12 * exact);
  const auto mf = tsem::build_mesh(tsem::quad_refine(spec), 4);
  const auto a0f = tsem::q1_vertex_laplacian(mf);
  std::vector<double> fx, fy, fz, yf(mf.nvert);
  tsem::vertex_coords(mf, fx, fy, fz);
  a0f.matvec(fx.data(), yf.data());
  double ef = 0.0;
  for (std::size_t i = 0; i < fx.size(); ++i) ef += fx[i] * yf[i];
  EXPECT_LT(std::fabs(ef - exact), std::fabs(e - exact));
}

TEST(Poisson5, MatchesLaplacianEigenvalue) {
  // Smallest eigenvalue of the nx x nx Dirichlet 5-point Laplacian is
  // 4 sin^2(pi/(2(nx+1))) * 2; verify via the Rayleigh quotient of the
  // exact eigenvector sin(pi i h) sin(pi j h).
  const int nx = 15;
  const auto a = tsem::poisson5(nx, nx);
  std::vector<double> v(nx * nx), y(nx * nx);
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i)
      v[j * nx + i] = std::sin(M_PI * (i + 1) / (nx + 1)) *
                      std::sin(M_PI * (j + 1) / (nx + 1));
  a.matvec(v.data(), y.data());
  double num = 0.0, den = 0.0;
  for (int i = 0; i < nx * nx; ++i) {
    num += v[i] * y[i];
    den += v[i] * v[i];
  }
  const double s = std::sin(M_PI / (2.0 * (nx + 1)));
  EXPECT_NEAR(num / den, 8.0 * s * s, 1e-10);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  std::vector<tsem::Triplet> t = {{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, -1.0},
                                  {0, 1, 0.5}, {1, 1, 4.0}};
  tsem::CsrMatrix a(2, t);
  EXPECT_EQ(a.nnz(), 4u);
  std::vector<double> x = {1.0, 2.0}, y(2);
  a.matvec(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 8.0);
}

}  // namespace
