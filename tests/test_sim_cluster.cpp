// Tests for the measured-schedule simulated cluster engine
// (sim/cluster.hpp) and the exposures it relies on: the pairwise
// gather-scatter exchange lists, the XXT tree schedule, the Schwarz
// ghost-exchange profile, and the pcg allreduce schedule.  The point of
// this suite is that the quantities the scaling benches report are
// *measured from the real data structures* — every schedule is recomputed
// here by an independent method and compared.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "core/pressure.hpp"
#include "core/space.hpp"
#include "fem/fem.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "partition/rsb.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "solver/cg.hpp"
#include "solver/coarse.hpp"
#include "solver/schwarz.hpp"
#include "solver/xxt.hpp"

namespace {

using tsem::build_mesh;
using tsem::ClusterOptions;
using tsem::ClusterSim;
using tsem::CommProfile;
using tsem::gs_comm_profile;
using tsem::MachineParams;
using tsem::Mesh;

Mesh box3d(int kx, int ky, int kz, int order) {
  auto spec = tsem::box_spec_3d(tsem::linspace(0, kx, kx),
                                tsem::linspace(0, ky, ky),
                                tsem::linspace(0, kz, kz));
  return build_mesh(spec, order);
}

// Independent accounting of one profile: the pairwise list must be
// symmetric (a->b == b->a words: each shared id counted once per sharing
// pair), and the per-rank aggregates must be exactly its marginals.
void check_profile_consistency(const CommProfile& prof) {
  std::vector<std::int64_t> send(prof.nranks, 0);
  std::vector<int> nbrs(prof.nranks, 0);
  for (const auto& e : prof.pairs) {
    ASSERT_GE(e.from, 0);
    ASSERT_LT(e.from, prof.nranks);
    ASSERT_NE(e.from, e.to);
    ASSERT_GT(e.words, 0);
    EXPECT_EQ(e.words, prof.pair_words(e.to, e.from))
        << "asymmetric exchange " << e.from << " <-> " << e.to;
    send[e.from] += e.words;
    ++nbrs[e.from];
  }
  for (int r = 0; r < prof.nranks; ++r) {
    EXPECT_EQ(send[r], prof.send_words[r]);
    EXPECT_EQ(nbrs[r], prof.neighbors[r]);
  }
}

// Mesh constant: every global node shared by k elements contributes
// k*(k-1) words when each element is its own rank — the finest
// granularity any partition can reach.
std::int64_t element_granularity_words(const Mesh& m) {
  std::map<std::int64_t, int> mult;
  for (auto id : m.node_id) ++mult[id];
  std::int64_t total = 0;
  for (const auto& [id, k] : mult)
    total += static_cast<std::int64_t>(k) * (k - 1);
  return total;
}

TEST(GsProfile, SymmetricPairwiseExchangeOnRsbAndRandomPartitions) {
  const Mesh m = box3d(4, 4, 4, 3);
  // RSB partitions at several machine sizes.
  for (int p : {2, 4, 8, 16}) {
    const auto part = tsem::recursive_spectral_bisection(m, p);
    check_profile_consistency(gs_comm_profile(m.node_id, m.npe, part, p));
  }
  // A random (unstructured, non-power-of-two) partition.
  std::mt19937 rng(2026);
  std::vector<int> rnd(m.nelem);
  for (auto& r : rnd) r = static_cast<int>(rng() % 5);
  check_profile_consistency(gs_comm_profile(m.node_id, m.npe, rnd, 5));
}

TEST(GsProfile, TotalWordsInvariantAtElementGranularity) {
  const Mesh m = box3d(4, 4, 4, 3);
  const std::int64_t c = element_granularity_words(m);
  ASSERT_GT(c, 0);
  // With every element its own rank, the profile total equals the mesh
  // constant sum_nodes k(k-1) regardless of element order: permuting the
  // element->rank bijection cannot change it.
  std::vector<int> ident(m.nelem), perm(m.nelem);
  for (int e = 0; e < m.nelem; ++e) ident[e] = e;
  std::mt19937 rng(7);
  perm = ident;
  std::shuffle(perm.begin(), perm.end(), rng);
  EXPECT_EQ(gs_comm_profile(m.node_id, m.npe, ident, m.nelem).total_words(),
            c);
  EXPECT_EQ(gs_comm_profile(m.node_id, m.npe, perm, m.nelem).total_words(),
            c);
  // Coarser machines merge sharing elements into one rank, which can only
  // dedup exchanges: every partition's total is bounded by the constant,
  // and refining along the RSB hierarchy is monotone nondecreasing.
  std::int64_t prev = 0;
  for (int p : {2, 4, 8, 16, 32}) {
    const auto part = tsem::recursive_spectral_bisection(m, p);
    const std::int64_t t =
        gs_comm_profile(m.node_id, m.npe, part, p).total_words();
    EXPECT_LE(t, c);
    EXPECT_GE(t, prev) << "refining " << p / 2 << " -> " << p
                       << " ranks lost exchange words";
    prev = t;
  }
}

TEST(ClusterSim, RsbHierarchyMatchesDirectPartitions) {
  const Mesh m = box3d(4, 4, 4, 3);
  ClusterOptions opt;
  opt.max_ranks = 8;
  opt.build_schwarz = false;
  opt.build_coarse = false;
  const ClusterSim sim(m, opt);
  // The engine derives every coarser machine from ONE max_ranks RSB call
  // by dropping low bits; that must agree with running RSB directly at
  // each P (the top-down bit assignment makes the hierarchy nested).
  for (int p : {1, 2, 4, 8}) {
    const auto sched = sim.schedule(p);
    EXPECT_EQ(sched.elem_rank, tsem::recursive_spectral_bisection(m, p));
    // And the schedule's profile must equal a direct recomputation.
    const auto ref = gs_comm_profile(m.node_id, m.npe, sched.elem_rank, p);
    EXPECT_EQ(sched.gs.send_words, ref.send_words);
    EXPECT_EQ(sched.gs.neighbors, ref.neighbors);
    ASSERT_EQ(sched.gs.pairs.size(), ref.pairs.size());
    for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
      EXPECT_EQ(sched.gs.pairs[i].from, ref.pairs[i].from);
      EXPECT_EQ(sched.gs.pairs[i].to, ref.pairs[i].to);
      EXPECT_EQ(sched.gs.pairs[i].words, ref.pairs[i].words);
    }
  }
}

// ---- XXT schedule fidelity ---------------------------------------------

// Reference recomputation of the per-edge fan-in words from the exposed
// factor structure, by a different rule than the solver uses: tree edge
// u -> parent(u) carries column k iff supp(X e_k) touches at least one
// dissection leaf inside subtree(u) AND at least one outside (the
// partial sum must cross the edge exactly when the column's support
// straddles it).
std::vector<std::int64_t> reference_edge_words(const tsem::XxtSolver& xxt) {
  const int nl = xxt.nlevels();
  const auto& cp = xxt.col_ptr();
  const auto& rows = xxt.rows();
  const auto& leaf_of = xxt.dissection().leaf_of;
  const int nleaf = 1 << nl;
  std::vector<std::int64_t> edge(static_cast<std::size_t>(2) << nl, 0);
  auto is_ancestor = [&](int u, int leaf) {
    int h = nleaf + leaf;
    while (h > u) h >>= 1;
    return h == u;
  };
  std::vector<char> touched(nleaf, 0);
  for (int k = 0; k < xxt.n(); ++k) {
    std::fill(touched.begin(), touched.end(), 0);
    for (std::int32_t p = cp[k]; p < cp[k + 1]; ++p)
      touched[leaf_of[rows[p]]] = 1;
    for (int u = 2; u < 2 * nleaf; ++u) {
      bool inside = false, outside = false;
      for (int lf = 0; lf < nleaf; ++lf) {
        if (!touched[lf]) continue;
        (is_ancestor(u, lf) ? inside : outside) = true;
      }
      if (inside && outside) edge[u] += 1;
    }
  }
  return edge;
}

TEST(XxtSchedule, EdgeAndLevelWordsMatchReferenceRecomputation) {
  const auto a = tsem::poisson5(20, 20);  // n = 400
  const int n = a.n();
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 20; ++i) {
      x[j * 20 + i] = i;
      y[j * 20 + i] = j;
    }
  const auto nd = tsem::nested_dissection(a, x, y, z, 4);
  const tsem::XxtSolver xxt(a, nd);

  // Per-leaf nonzeros must sum to the factor's total nonzero count: the
  // level schedule is an accounting of the real structure of X, nothing
  // is dropped or double-counted.
  std::int64_t leaf_sum = 0;
  for (auto v : xxt.leaf_nnz()) leaf_sum += v;
  EXPECT_EQ(leaf_sum, xxt.nnz());
  EXPECT_EQ(xxt.max_rank_nnz(0), xxt.nnz());
  EXPECT_EQ(xxt.max_rank_nnz(xxt.nlevels()), xxt.max_leaf_nnz());

  const auto ref = reference_edge_words(xxt);
  ASSERT_EQ(ref.size(), xxt.edge_msg_words().size());
  for (std::size_t u = 2; u < ref.size(); ++u)
    EXPECT_EQ(xxt.edge_msg_words()[u], ref[u]) << "edge " << u;

  // Level maxima and totals derive from the same per-edge words.
  std::vector<std::int64_t> level(xxt.nlevels(), 0);
  std::int64_t total = 0;
  for (std::size_t u = 2; u < ref.size(); ++u) {
    if (ref[u] == 0) continue;
    int depth = 0;
    for (std::size_t v = u >> 1; v > 1; v >>= 1) ++depth;
    level[depth] = std::max(level[depth], ref[u]);
    total += ref[u];
  }
  EXPECT_EQ(xxt.level_msg_words(), level);
  EXPECT_EQ(xxt.total_msg_words(), total);
  for (int l = 0; l <= xxt.nlevels(); ++l) {
    const auto at = xxt.level_msg_words_at(l);
    ASSERT_EQ(static_cast<int>(at.size()), l);
    for (int d = 0; d < l; ++d) EXPECT_EQ(at[d], level[d]);
  }
}

TEST(XxtSchedule, TreeFanTimeMonotoneNondecreasingInP) {
  // Fixed global coarse size, growing machine: each extra level adds the
  // next tree edge to the critical path, so the measured fan time can
  // only grow; the per-rank nonzero load can only shrink.
  const Mesh m = box3d(4, 4, 2, 3);
  ClusterOptions opt;
  opt.max_ranks = 16;
  opt.build_schwarz = false;
  const ClusterSim sim(m, opt);
  ASSERT_NE(sim.xxt(), nullptr);
  const auto mach = MachineParams::asci_red(false, false);
  double prev_t = -1.0;
  std::int64_t prev_nnz = sim.xxt()->nnz() + 1;
  for (int p = 1; p <= 16; p *= 2) {
    const auto sched = sim.schedule(p);
    const double t = tsem::tree_fan_time(
        mach, sched.xxt_level_words.data(),
        static_cast<int>(sched.xxt_level_words.size()));
    EXPECT_GE(t, prev_t) << "tree fan time decreased at P=" << p;
    EXPECT_LE(sched.xxt_max_rank_nnz, prev_nnz);
    EXPECT_GT(sched.xxt_max_rank_nnz, 0);
    prev_t = t;
    prev_nnz = sched.xxt_max_rank_nnz;
  }
}

// ---- pcg allreduce schedule --------------------------------------------

TEST(PcgDotSchedule, CountMatchesDocumentedConstants) {
  // 1D Laplacian, identity preconditioner: every dot() is one scalar
  // allreduce in a message-passing run.  The count must equal the closed
  // form documented next to kPcgSetupDots/kPcgDotsPerIteration, which the
  // cluster engine bills from.
  const std::size_t n = 50;
  auto apply = [n](const double* p, double* ap) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = 2.0 * p[i];
      if (i > 0) v -= p[i - 1];
      if (i + 1 < n) v -= p[i + 1];
      ap[i] = v;
    }
  };
  long ndots = 0;
  auto dot = [n, &ndots](const double* u, const double* v) {
    ++ndots;
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u[i] * v[i];
    return s;
  };
  std::vector<double> b(n, 1.0), x(n, 0.0);
  tsem::CgOptions opt;
  opt.tol = 1e-10;
  const auto res = tsem::pcg(n, apply, tsem::identity_precond(n), dot,
                             b.data(), x.data(), opt);
  ASSERT_TRUE(res.converged);
  ASSERT_GT(res.iterations, 5);
  EXPECT_EQ(ndots, tsem::kPcgSetupDots +
                       tsem::kPcgDotsPerIteration * res.iterations - 1);
}

// ---- cluster schedules vs the production solver stack ------------------

TEST(ClusterSchedule, SchwarzProfileMatchesProductionPreconditioner) {
  // The engine profiles a mesh-level GhostExchange; the production
  // SchwarzPrecond builds its own from the PressureSystem.  Under the
  // same partition they must produce identical pairwise exchange lists —
  // the bench's Schwarz volumes are the preconditioner's real ones.
  tsem::Space s(box3d(3, 3, 2, 5));
  const Mesh& m = s.mesh();
  tsem::PressureSystem psys(s, s.make_mask(0x3F));
  tsem::SchwarzOptions sopt;
  sopt.overlap = 1;
  sopt.use_coarse = false;
  const tsem::SchwarzPrecond prec(psys, sopt);
  ASSERT_NE(prec.ghost_exchange(), nullptr);

  ClusterOptions copt;
  copt.max_ranks = 4;
  copt.build_coarse = false;
  const ClusterSim sim(m, copt);
  ASSERT_NE(sim.ghost_exchange(), nullptr);

  const auto sched = sim.schedule(4);
  EXPECT_EQ(sched.schwarz_gs_per_apply, 2 * sopt.overlap);
  const CommProfile ref =
      prec.ghost_exchange()->comm_profile(sched.elem_rank, 4);
  EXPECT_EQ(sched.schwarz.send_words, ref.send_words);
  EXPECT_EQ(sched.schwarz.neighbors, ref.neighbors);
  ASSERT_EQ(sched.schwarz.pairs.size(), ref.pairs.size());
  for (std::size_t i = 0; i < ref.pairs.size(); ++i)
    EXPECT_EQ(sched.schwarz.pairs[i].words, ref.pairs[i].words);
  check_profile_consistency(sched.schwarz);
}

TEST(ClusterStepTime, GoldenPhaseBreakdown) {
  tsem::RankSchedule s;
  s.nranks = 4;
  s.nelem = 8;
  s.max_rank_elems = 2;
  s.gs.nranks = 4;
  s.gs.neighbors = {1, 2, 1, 0};
  s.gs.send_words = {10, 20, 5, 0};
  s.schwarz.nranks = 4;
  s.schwarz.neighbors = {1, 1, 0, 0};
  s.schwarz.send_words = {4, 4, 0, 0};
  s.schwarz_gs_per_apply = 2;
  s.xxt_level_words = {7, 3};
  s.xxt_max_rank_nnz = 100;

  MachineParams m;
  m.alpha = 1e-3;
  m.beta = 1e-6;
  m.flop_rate = 1e6;

  // The busiest gs rank is rank 1: 2 messages + 20 words.
  EXPECT_NEAR(tsem::gs_op_time(m, s.gs), 2e-3 + 20e-6, 1e-15);

  tsem::StepShape shape;
  shape.flops = 1e6;
  shape.gs_ops = 2;
  shape.allreduces = 3;
  shape.schwarz_applies = 5;
  shape.coarse_solves = 4;
  const tsem::PhaseTimes t = tsem::cluster_step_time(s, m, shape);
  // compute: 1e6 flops * (2/8 elements) / 1e6 flop/s.
  EXPECT_NEAR(t.compute, 0.25, 1e-15);
  // gs: 2 ops * 2.02e-3 + 5 applies * 2 ops * 1.004e-3.
  EXPECT_NEAR(t.gs, 2 * 2.02e-3 + 10 * 1.004e-3, 1e-12);
  // allreduce: 3 * log2(4) * (alpha + beta).
  EXPECT_NEAR(t.allreduce, 3 * 2 * (1e-3 + 1e-6), 1e-12);
  // coarse: 4 * (2*((alpha+7*beta)+(alpha+3*beta)) + 4*100/1e6).
  EXPECT_NEAR(t.coarse, 4 * (2 * (2e-3 + 10e-6) + 4e-4), 1e-12);
  EXPECT_NEAR(t.total(), t.compute + t.gs + t.allreduce + t.coarse, 1e-15);
}

}  // namespace
