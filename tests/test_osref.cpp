// Orr-Sommerfeld reference solver validation against the classical
// Orszag (1971) eigenvalue and internal consistency checks.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "osref/orr_sommerfeld.hpp"

namespace {

using tsem::solve_orr_sommerfeld;

TEST(OrrSommerfeld, MatchesOrszagEigenvalueRe10000) {
  // Orszag (JFM 1971): Re = 10000, alpha = 1:
  // c = 0.23752649 + 0.00373967i.
  const auto res =
      solve_orr_sommerfeld(1e4, 1.0, 128, {0.23, 0.004});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.c.real(), 0.23752649, 1e-6);
  EXPECT_NEAR(res.c.imag(), 0.00373967, 1e-6);
}

TEST(OrrSommerfeld, Re7500ModeIsUnstableAndResolutionConverged) {
  const auto a = solve_orr_sommerfeld(7500.0, 1.0, 96, {0.24, 0.003});
  const auto b = solve_orr_sommerfeld(7500.0, 1.0, 144, {0.24, 0.003});
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_GT(a.growth_rate(), 0.0);  // Re = 7500 > Re_crit = 5772
  EXPECT_NEAR(a.c.real(), b.c.real(), 1e-9);
  EXPECT_NEAR(a.c.imag(), b.c.imag(), 1e-9);
}

TEST(OrrSommerfeld, SubcriticalModeIsStable) {
  const auto res = solve_orr_sommerfeld(4000.0, 1.0, 96, {0.26, 0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.growth_rate(), 0.0);  // Re < Re_crit
}

TEST(OrrSommerfeld, EigenfunctionSatisfiesBoundaryConditions) {
  const auto res = solve_orr_sommerfeld(7500.0, 1.0, 96, {0.24, 0.003});
  ASSERT_TRUE(res.converged);
  const int n = static_cast<int>(res.y.size()) - 1;
  EXPECT_LT(std::abs(res.v[0]), 1e-10);
  EXPECT_LT(std::abs(res.v[n]), 1e-10);
  // u ~ v' also vanishes at walls (clamped).
  EXPECT_LT(std::abs(res.u[0]), 1e-7);
  EXPECT_LT(std::abs(res.u[n]), 1e-7);
}

TEST(OrrSommerfeld, ChebyshevEvalInterpolates) {
  const auto res = solve_orr_sommerfeld(7500.0, 1.0, 96, {0.24, 0.003});
  // Exact at grid points; smooth in between.
  for (int j : {5, 20, 48}) {
    const auto v = tsem::chebyshev_eval(res.y, res.v, res.y[j]);
    EXPECT_LT(std::abs(v - res.v[j]), 1e-12);
  }
  const auto mid = tsem::chebyshev_eval(res.y, res.v, 0.1234);
  EXPECT_LT(std::abs(mid), 1.0);  // normalized eigenfunction magnitude
}

}  // namespace
