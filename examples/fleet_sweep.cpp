// Run a declarative ensemble sweep under the fault-tolerant fleet engine.
//
//   ./fleet_sweep ../examples/sweep_taylor_green.json
//
// The JSON spec describes a base Taylor-Green case, sweep axes, and the
// fleet policy (concurrency, watchdog, retry/backoff, preemption quantum)
// — see src/fleet/spec.hpp for the document shape.  Each expanded job
// runs in its own crash-isolated worker process with heartbeat
// supervision and atomic checkpoints; a crashed, hung, or preempted job
// resumes from its last good checkpoint bit-identically.  Try it:
// `kill -9` a worker mid-run and watch the retry in the event log.
//
// Writes BENCH_fleet_sweep.json ($TSEM_BENCH_DIR honored) with one case
// per job and the full supervisor event log in meta.
#include <cstdio>

#include "fleet/spec.hpp"
#include "fleet/supervisor.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
  const char* path =
      argc > 1 ? argv[1] : "../examples/sweep_taylor_green.json";

  tsem::obs::Json doc;
  tsem::obs::Json::ParseError perr;
  if (!tsem::obs::Json::parse_file(path, &doc, &perr)) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path,
                 perr.to_string().c_str());
    return 1;
  }
  tsem::fleet::SweepSpec spec;
  std::string err;
  if (!tsem::fleet::parse_sweep(doc, &spec, &err)) {
    std::fprintf(stderr, "%s: %s\n", path, err.c_str());
    return 1;
  }

  const auto jobs = tsem::fleet::expand_sweep(spec);
  std::printf("sweep '%s': %zu jobs, concurrency %d, workdir %s\n",
              spec.name.c_str(), jobs.size(), spec.fleet.concurrency,
              spec.fleet.workdir.c_str());

  tsem::fleet::FleetReport report;
  if (!tsem::fleet::run_fleet(spec, &report, &err)) {
    std::fprintf(stderr, "fleet failed: %s\n", err.c_str());
    return 1;
  }

  for (const auto& out : report.jobs) {
    if (out.completed)
      std::printf("  %-40s digest %s  KE %.6f  (%d attempt%s%s)\n",
                  out.spec.name.c_str(), out.result.digest.c_str(),
                  out.result.kinetic_energy, out.attempts,
                  out.attempts == 1 ? "" : "s",
                  out.preemptions > 0 ? ", preempted" : "");
    else
      std::printf("  %-40s QUARANTINED after %d attempts\n",
                  out.spec.name.c_str(), out.attempts);
  }
  std::printf(
      "%d/%zu completed in %.2f s  (retries %d, preemptions %d, "
      "hang kills %d)\n",
      report.completed, report.jobs.size(), report.wall_seconds,
      report.retries, report.preemptions, report.hang_kills);
  for (const auto& e : report.events)
    if (e.type != "launch" && e.type != "complete")
      std::printf("  [%7.3fs] %-10s job %d attempt %d step %d  %s\n", e.t,
                  e.type.c_str(), e.job, e.attempt, e.step,
                  e.detail.c_str());

  const std::string out = report.write_bench_json("fleet_sweep");
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  return report.quarantined == 0 ? 0 : 2;
}
