// resilient_restart: the solver resilience layer end to end.
//
// A 2D Taylor-Green vortex is integrated while a deterministic
// FaultInjector poisons the pressure solve of one chosen step, forcing
// NavierStokes::step through its escalation ladder (zero guesses ->
// preconditioner fallback -> halved dt).  Mid-run the state is
// checkpointed; a second solver restores it and continues bit-identically.
// Finally the checkpoint file is deliberately corrupted to show the loader
// rejecting it with a diagnosable error instead of restarting from
// garbage.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"

namespace {

tsem::Space periodic_box(int k, int order) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, k),
                                tsem::linspace(0, 2 * M_PI, k));
  spec.periodic_x = spec.periodic_y = true;
  return tsem::Space(tsem::build_mesh(spec, order));
}

void init_taylor_green(tsem::NavierStokes& ns, const tsem::Space& s) {
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
  }
}

void print_stats(const tsem::StepStats& st) {
  std::printf("  step %2d  t=%.4f  dt=%.5f  p_it=%3d  div=%8.2e", st.step,
              st.time, st.dt, st.pressure_iters, st.divergence);
  if (st.recovered)
    std::printf("  RECOVERED (attempts=%d, halvings=%d%s%s)", st.attempts,
                st.dt_halvings, st.projection_flushed ? ", proj-flush" : "",
                st.precond_fallback ? ", diag-precond" : "");
  std::printf("\n");
}

}  // namespace

int main() {
  const char* ckpt = "resilient_restart.ckpt";
  tsem::Space space = periodic_box(4, 7);

  tsem::NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 0.05;
  opt.torder = 2;
  opt.proj_len = 8;
  opt.resilience.max_dt_halvings = 2;

  tsem::NavierStokes ns(space, 0u, opt);
  init_taylor_green(ns, space);

  // Poison the pressure rhs of step 4, attempts 1-3: the ladder has to
  // climb to a halved-dt retry before the step goes through.
  ns.set_fault_hook([](tsem::FaultSite site, int step, int attempt,
                       int /*component*/, double* data, std::size_t n) {
    if (site == tsem::FaultSite::PressureRhs && step == 4 && attempt <= 3) {
      tsem::FaultInjector fi(1234u + static_cast<std::uint64_t>(attempt));
      fi.poison_nan(data, n, 2);
      std::printf("  [fault] NaN injected into pressure rhs, attempt %d\n",
                  attempt);
    }
  });

  std::printf("phase 1: integrate through an injected pressure fault\n");
  for (int i = 0; i < 6; ++i) print_stats(ns.step());

  std::string err;
  if (!tsem::save_checkpoint(ns, ckpt, &err)) {
    std::fprintf(stderr, "checkpoint failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("phase 2: checkpoint written after step %d\n",
              ns.export_state().step);

  // Continue the original run.
  ns.set_fault_hook(nullptr);
  std::printf("phase 3: original run continues\n");
  tsem::StepStats last_a{};
  for (int i = 0; i < 3; ++i) {
    last_a = ns.step();
    print_stats(last_a);
  }

  // Restore into a fresh solver and continue the same three steps.
  tsem::NavierStokes restored(space, 0u, opt);
  if (!tsem::restore_checkpoint(restored, ckpt, &err)) {
    std::fprintf(stderr, "restore failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("phase 4: restored run continues from the checkpoint\n");
  tsem::StepStats last_b{};
  for (int i = 0; i < 3; ++i) {
    last_b = restored.step();
    print_stats(last_b);
  }
  const bool identical =
      last_a.time == last_b.time && last_a.divergence == last_b.divergence &&
      0 == std::memcmp(ns.u(0).data(), restored.u(0).data(),
                       ns.u(0).size() * sizeof(double));
  std::printf("  restored continuation bit-identical: %s\n",
              identical ? "yes" : "NO");

  // Corrupt the checkpoint and show the loader refusing it.
  tsem::FaultInjector fi(99);
  fi.corrupt_file(ckpt, 4, 20);
  tsem::NsState state;
  if (!tsem::load_checkpoint(ckpt, &state, &err))
    std::printf("phase 5: corrupted checkpoint rejected: %s\n", err.c_str());
  else
    std::printf("phase 5: ERROR — corrupted checkpoint was accepted\n");

  std::remove(ckpt);
  return identical ? 0 : 1;
}
