// hairpin_mini: 3D boundary layer over a wall-mounted roughness bump.
//
// A laptop-scale version of the paper's flagship application (§7, Fig 7):
// impulsively started flow over a smooth hemispherical-roughness stand-in
// on the bottom wall of a channel, with a Blasius-like inflow profile.
// Exercises the full 3D production path: deformed hexahedral elements,
// OIFS convection, Schwarz + XXT-coarse pressure solves, projection, and
// the per-step iteration statistics reported in Fig 8.
//
// usage: hairpin_mini [steps] [N]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "io/vtk.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"

int main(int argc, char** argv) {
  const int nsteps = argc > 1 ? std::atoi(argv[1]) : 10;
  const int order = argc > 2 ? std::atoi(argv[2]) : 7;

  // Channel 8 x 4 x 2 with a bump of height 0.3, radius 0.8 at (2.5, 2).
  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 8, 6), tsem::linspace(0, 4, 3),
      {0.0, 0.4, 1.0, 2.0}, 2.5, 2.0, 0.8, 0.3);
  spec.periodic_y = true;  // spanwise periodic
  tsem::Space space(tsem::build_mesh(spec, order));
  const auto& m = space.mesh();
  std::printf("hairpin_mini: K=%d N=%d, %lld velocity gridpoints\n",
              m.nelem, order, static_cast<long long>(m.nglob));

  tsem::NsOptions opt;
  opt.dt = 0.01;
  opt.viscosity = 1.0 / 1600.0;  // paper's benchmarking Reynolds number
  opt.filter_alpha = 0.1;
  opt.pres_tol = 1e-5;
  opt.proj_len = 20;
  opt.pressure_mean_free = false;  // outflow fixes the pressure level

  // Dirichlet: inflow (x-lo), bottom wall (z-lo), top (z-hi, free-stream).
  // Outflow (x-hi) is left natural (do-nothing).
  const std::uint32_t dirichlet = (1u << tsem::kFaceXLo) |
                                  (1u << tsem::kFaceZLo) |
                                  (1u << tsem::kFaceZHi);
  tsem::NavierStokes ns(space, dirichlet, opt);

  // Impulsive start: Blasius-like profile u(z) = erf-ish ramp with
  // boundary layer thickness delta = 1.2 R (paper §7), zero at the wall.
  const double delta = 1.2 * 0.8;
  for (std::size_t i = 0; i < space.nlocal(); ++i) {
    const double z = m.z[i];
    ns.u(0)[i] = std::tanh(1.2 * z / delta);
    ns.u(1)[i] = 0.0;
    ns.u(2)[i] = 0.0;
  }

  std::printf("%5s %8s %6s %7s %7s %10s\n", "step", "time", "CFL", "p-its",
              "H-its", "div");
  for (int n = 1; n <= nsteps; ++n) {
    const auto st = ns.step();
    std::printf("%5d %8.3f %6.2f %7d %7d %10.2e\n", n, st.time, st.cfl,
                st.pressure_iters, st.helmholtz_iters[0], st.divergence);
    if (!std::isfinite(st.divergence)) return 1;
  }
  std::printf("modeled flops so far: %.3e (see bench_table4_scaling for "
              "the ASCI-Red projection)\n", ns.total_flops());
  if (tsem::write_vtk(m,
                      {{"u", ns.u(0).data()},
                       {"v", ns.u(1).data()},
                       {"w", ns.u(2).data()}},
                      "hairpin_mini.vtk"))
    std::printf("wrote hairpin_mini.vtk (open in ParaView/VisIt)\n");
  return 0;
}
