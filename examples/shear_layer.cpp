// shear_layer: the paper's Fig 3 workload as a runnable application.
//
// Double shear layer roll-up on the doubly periodic unit square:
//   u = tanh(rho (y - 1/4))  (y <= 1/2),  tanh(rho (3/4 - y))  (y > 1/2)
//   v = 0.05 sin(2 pi x)
// at high Reynolds number, integrated with the filter-stabilized BDF2 /
// OIFS scheme.  Without the filter this problem blows up at any
// reasonable resolution (paper §2); with alpha = 0.3 it rolls up cleanly.
//
// Writes vorticity snapshots as CSV (x, y, omega) for plotting and prints
// the kinetic-energy / max-vorticity history.
//
// usage: shear_layer [K1d] [N] [alpha] [tfinal]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/operators.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"

namespace {

void write_vorticity(const tsem::NavierStokes& ns, const std::string& path) {
  const auto& space = ns.space();
  const auto& m = space.mesh();
  std::vector<double> gx(space.nlocal()), gy(space.nlocal()),
      wz(space.nlocal());
  double* grad[2] = {gx.data(), gy.data()};
  tsem::TensorWork work;
  // omega_z = dv/dx - du/dy
  tsem::gradient_local(m, ns.u(1).data(), grad, work);
  for (std::size_t i = 0; i < wz.size(); ++i) wz[i] = gx[i];
  tsem::gradient_local(m, ns.u(0).data(), grad, work);
  for (std::size_t i = 0; i < wz.size(); ++i) wz[i] -= gy[i];

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;
  std::fprintf(f, "x,y,omega\n");
  for (std::size_t i = 0; i < wz.size(); ++i)
    std::fprintf(f, "%.6f,%.6f,%.6e\n", m.x[i], m.y[i], wz[i]);
  std::fclose(f);
}

double max_vorticity(const tsem::NavierStokes& ns) {
  const auto& space = ns.space();
  const auto& m = space.mesh();
  std::vector<double> gx(space.nlocal()), gy(space.nlocal());
  double* grad[2] = {gx.data(), gy.data()};
  tsem::TensorWork work;
  tsem::gradient_local(m, ns.u(1).data(), grad, work);
  std::vector<double> wz = gx;
  tsem::gradient_local(m, ns.u(0).data(), grad, work);
  double mx = 0.0;
  for (std::size_t i = 0; i < wz.size(); ++i)
    mx = std::max(mx, std::fabs(wz[i] - gy[i]));
  return mx;
}

}  // namespace

int main(int argc, char** argv) {
  const int k1d = argc > 1 ? std::atoi(argv[1]) : 16;
  const int order = argc > 2 ? std::atoi(argv[2]) : 8;
  const double alpha = argc > 3 ? std::atof(argv[3]) : 0.3;
  const double tfinal = argc > 4 ? std::atof(argv[4]) : 0.4;

  const double rho = 30.0;  // "thick" layer
  const double re = 1e5;

  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, k1d),
                                tsem::linspace(0, 1, k1d));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space space(tsem::build_mesh(spec, order));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = 0.002;
  opt.viscosity = 1.0 / re;
  opt.filter_alpha = alpha;
  opt.pres_tol = 1e-6;
  opt.proj_len = 12;
  tsem::NavierStokes ns(space, 0u, opt);
  for (std::size_t i = 0; i < space.nlocal(); ++i) {
    const double y = m.y[i];
    ns.u(0)[i] = (y <= 0.5) ? std::tanh(rho * (y - 0.25))
                            : std::tanh(rho * (0.75 - y));
    ns.u(1)[i] = 0.05 * std::sin(2.0 * M_PI * m.x[i]);
  }

  std::printf("shear layer: K=%dx%d N=%d alpha=%.2f Re=%g dt=%g\n", k1d, k1d,
              order, alpha, re, opt.dt);
  const int nsteps = static_cast<int>(tfinal / opt.dt + 0.5);
  for (int n = 1; n <= nsteps; ++n) {
    const auto st = ns.step();
    if (n % 25 == 0 || n == nsteps) {
      std::printf(
          "step %4d  t=%.3f  CFL=%.2f  p-its=%3d  KE=%.6f  max|w|=%.2f\n", n,
          st.time, st.cfl, st.pressure_iters, ns.kinetic_energy(),
          max_vorticity(ns));
      if (!std::isfinite(ns.kinetic_energy())) {
        std::printf("blow-up detected (run without filter to reproduce "
                    "the paper's unfiltered failure)\n");
        return 1;
      }
    }
  }
  write_vorticity(ns, "shear_layer_vorticity.csv");
  std::printf("wrote shear_layer_vorticity.csv\n");
  return 0;
}
