// quickstart: solve a Poisson problem with the spectral element method.
//
//   -lap(u) = f  on an annulus,  u = 0 on both circles,
//
// exercising the core public API: mesh spec -> Mesh -> Space, a
// matrix-free Helmholtz operator, and Jacobi-preconditioned conjugate
// gradients.  Prints a spectral-convergence table: the error drops
// exponentially with the polynomial order N (paper §2).
//
// Manufactured solution: u = sin(pi (r^2 - r0^2)/(r1^2 - r0^2)) ... kept
// simple below with u = (r^2 - r0^2)(r1^2 - r^2); f = -lap u computed
// analytically.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/helmholtz.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "solver/cg.hpp"

namespace {

constexpr double kR0 = 0.5, kR1 = 1.5;

double exact(double x, double y) {
  const double r2 = x * x + y * y;
  return (r2 - kR0 * kR0) * (kR1 * kR1 - r2);
}

// -lap of exact: with u = (r^2-a)(b-r^2) = -r^4 + (a+b) r^2 - ab,
// lap(r^4) = 16 r^2, lap(r^2) = 4 -> lap u = -16 r^2 + 4(a+b).
double rhs(double x, double y) {
  const double r2 = x * x + y * y;
  return 16.0 * r2 - 4.0 * (kR0 * kR0 + kR1 * kR1);
}

double solve_at_order(int order, int* iters) {
  auto spec = tsem::annulus_spec(kR0, kR1, 2, 8, 1.0);
  tsem::Space space(tsem::build_mesh(spec, order));
  const auto& mesh = space.mesh();

  // Dirichlet on both boundary tags (0 = inner circle, 1 = outer).
  const auto mask = space.make_mask(0x3);
  tsem::HelmholtzOp laplace(space, 1.0, 0.0, mask);

  // Weak rhs: b = mask .* QQ^T (B f).
  std::vector<double> b(space.nlocal()), u(space.nlocal(), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = mesh.bm[i] * rhs(mesh.x[i], mesh.y[i]);
  space.dssum(b.data());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] *= mask[i];

  tsem::CgOptions opt;
  opt.tol = 1e-12;
  opt.max_iter = 20000;
  auto result = tsem::pcg(
      space.nlocal(), [&](const double* x, double* y) { laplace.apply(x, y); },
      tsem::jacobi_precond(laplace.diagonal()),
      [&](const double* x, double* y) { return space.glsum_dot(x, y); },
      b.data(), u.data(), opt);
  *iters = result.iterations;

  double err = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i)
    err = std::max(err, std::fabs(u[i] - exact(mesh.x[i], mesh.y[i])));
  return err;
}

}  // namespace

int main() {
  std::printf("terasem quickstart: -lap(u) = f on an annulus, K = 16\n");
  std::printf("%4s  %12s  %8s\n", "N", "max error", "CG iters");
  for (int order : {3, 5, 7, 9, 11, 13}) {
    int iters = 0;
    const double err = solve_at_order(order, &iters);
    std::printf("%4d  %12.3e  %8d\n", order, err, iters);
  }
  std::printf("\nExpect exponential decay of the error with N "
              "(spectral convergence).\n");
  return 0;
}
