// convection_cell: Rayleigh-Benard convection with Boussinesq coupling.
//
// Demonstrates the multiple-species transport support the paper mentions
// (§1): the temperature field is advected/diffused alongside the
// momentum equations and feeds back through a buoyancy body force
//   f_y = Ra Pr theta,   nu = Pr,   kappa = 1.
// Box [0,2] x [0,1], hot bottom (theta = 1), cold top (theta = 0),
// no-slip walls; supercritical Ra drives a steady convection roll whose
// Nusselt number is printed.
//
// usage: convection_cell [Ra] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/operators.hpp"
#include "core/probe.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"

namespace {

// Nusselt number: 1 + <v theta> / (kappa dT / H) volume average.
double nusselt(const tsem::NavierStokes& ns) {
  const auto& space = ns.space();
  std::vector<double> vth(space.nlocal());
  for (std::size_t i = 0; i < vth.size(); ++i)
    vth[i] = ns.u(1)[i] * ns.scalar()[i];
  return 1.0 + space.integrate(vth.data()) / space.volume();
}

}  // namespace

int main(int argc, char** argv) {
  const double ra = argc > 1 ? std::atof(argv[1]) : 5e4;
  const int nsteps = argc > 2 ? std::atoi(argv[2]) : 400;
  const double pr = 0.71;

  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2, 4),
                                tsem::linspace(0, 1, 2));
  tsem::Space space(tsem::build_mesh(spec, 9));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = 2e-3;
  opt.viscosity = pr;  // nondimensionalization: nu = Pr, kappa = 1
  opt.pres_tol = 1e-6;
  opt.proj_len = 20;
  opt.filter_alpha = 0.05;
  const std::uint32_t walls = (1u << tsem::kFaceXLo) | (1u << tsem::kFaceXHi) |
                              (1u << tsem::kFaceYLo) | (1u << tsem::kFaceYHi);
  tsem::NavierStokes ns(space, walls, opt);
  // Temperature: Dirichlet at top/bottom only (insulated side walls).
  ns.add_scalar((1u << tsem::kFaceYLo) | (1u << tsem::kFaceYHi), 1.0);

  // Conduction profile + a small roll-seeding perturbation.
  for (std::size_t i = 0; i < space.nlocal(); ++i) {
    ns.scalar()[i] = 1.0 - m.y[i] +
                     0.01 * std::sin(M_PI * m.y[i]) *
                         std::cos(0.5 * M_PI * m.x[i]);
  }
  ns.set_forcing([ra, pr, &space](const tsem::NavierStokes& flow, double,
                                  const std::array<double*, 3>& f) {
    const auto& theta = flow.scalar();
    for (std::size_t i = 0; i < space.nlocal(); ++i)
      f[1][i] += ra * pr * theta[i];
  });

  std::printf("Rayleigh-Benard: Ra=%g Pr=%g, K=8, N=9\n", ra, pr);
  for (int n = 1; n <= nsteps; ++n) {
    const auto st = ns.step();
    if (n % 50 == 0 || n == nsteps)
      std::printf("step %4d  t=%.3f  KE=%.5f  Nu=%.4f  p-its=%d\n", n,
                  st.time, ns.kinetic_energy(), nusselt(ns),
                  st.pressure_iters);
  }
  // Spectrally exact mid-height temperature profile via point probing.
  tsem::FieldProbe probe(m);
  std::printf("\nmid-height temperature profile (x, theta):\n");
  for (int i = 0; i <= 8; ++i) {
    const double x = 2.0 * i / 8.0;
    double th = 0.0;
    if (probe.sample(ns.scalar().data(), std::min(1.999, std::max(1e-3, x)),
                     0.5, 0.0, &th))
      std::printf("  %5.3f  %8.4f\n", x, th);
  }

  const double nu_final = nusselt(ns);
  std::printf("\nfinal Nusselt number: %.4f (Nu > 1 indicates active "
              "convection; Nu = 1 is pure conduction)\n", nu_final);
  return nu_final > 1.01 ? 0 : 1;
}
