#include "gs/gather_scatter.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace tsem {

GatherScatter::GatherScatter(const std::int64_t* ids, std::size_t n) {
  nlocal_ = n;
  // Sort local indices by id to find groups and assign dense ids.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return ids[a] < ids[b] || (ids[a] == ids[b] && a < b);
  });
  dense_id_.resize(n);
  group_offset_.push_back(0);
  std::size_t i = 0;
  std::int64_t dense = -1;
  while (i < n) {
    std::size_t j = i;
    while (j < n && ids[order[j]] == ids[order[i]]) ++j;
    ++dense;
    for (std::size_t k = i; k < j; ++k) dense_id_[order[k]] = dense;
    if (j - i >= 2) {
      for (std::size_t k = i; k < j; ++k) gather_ix_.push_back(order[k]);
      group_offset_.push_back(static_cast<std::int32_t>(gather_ix_.size()));
    }
    i = j;
  }
  nglobal_ = dense + 1;
}

namespace {

template <typename T>
inline T reduce_init(GsOp o) {
  switch (o) {
    case GsOp::Add: return T(0);
    case GsOp::Mul: return T(1);
    case GsOp::Min: return std::numeric_limits<T>::infinity();
    case GsOp::Max: return -std::numeric_limits<T>::infinity();
  }
  return T(0);
}

template <typename T>
inline T reduce_apply(GsOp o, T a, T b) {
  switch (o) {
    case GsOp::Add: return a + b;
    case GsOp::Mul: return a * b;
    case GsOp::Min: return a < b ? a : b;
    case GsOp::Max: return a > b ? a : b;
  }
  return a;
}

}  // namespace

// Shared reduce-and-broadcast kernel for op (m == 1) and op_vec (AoS
// stride m).  One walk over each group covers a chunk of up to
// kGsChunk components, so the gather index list is traversed
// ceil(m / kGsChunk) times instead of m times, and the scalar and
// vector paths share one OpenMP guard.
template <typename T>
void GatherScatter::run_groups(T* u, int m, GsOp o) const {
  constexpr int kGsChunk = 16;
  const std::size_t ng = ngroups();
  const std::size_t sm = static_cast<std::size_t>(m);
  for (int c0 = 0; c0 < m; c0 += kGsChunk) {
    const int nc = std::min(kGsChunk, m - c0);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (ng > 4096)
#endif
    for (std::size_t g = 0; g < ng; ++g) {
      const std::int32_t b = group_offset_[g];
      const std::int32_t e = group_offset_[g + 1];
      T acc[kGsChunk];
      for (int c = 0; c < nc; ++c) acc[c] = reduce_init<T>(o);
      for (std::int32_t k = b; k < e; ++k) {
        const T* row = u + static_cast<std::size_t>(gather_ix_[k]) * sm + c0;
        for (int c = 0; c < nc; ++c) acc[c] = reduce_apply<T>(o, acc[c], row[c]);
      }
      for (std::int32_t k = b; k < e; ++k) {
        T* row = u + static_cast<std::size_t>(gather_ix_[k]) * sm + c0;
        for (int c = 0; c < nc; ++c) row[c] = acc[c];
      }
    }
  }
  if constexpr (obs::kEnabled) {
    obs::count("gs/ops");
    obs::count("gs/words",
               static_cast<std::int64_t>(gather_ix_.size()) * m);
  }
}

template void GatherScatter::run_groups<double>(double*, int, GsOp) const;
template void GatherScatter::run_groups<float>(float*, int, GsOp) const;

void GatherScatter::op(double* u, GsOp o) const { run_groups(u, 1, o); }

void GatherScatter::op_f32(float* u, GsOp o) const { run_groups(u, 1, o); }

void GatherScatter::op_vec(double* u, int m, GsOp o) const {
  run_groups(u, m, o);
}

void GatherScatter::serialize(ByteWriter& w) const {
  w.put<std::uint64_t>(nlocal_);
  w.put<std::int64_t>(nglobal_);
  w.put_pod_vec(dense_id_);
  w.put_pod_vec(gather_ix_);
  w.put_pod_vec(group_offset_);
}

bool GatherScatter::deserialize(ByteReader& r) {
  std::uint64_t nlocal = 0;
  std::int64_t nglobal = 0;
  std::vector<std::int64_t> dense;
  std::vector<std::int32_t> gix, goff;
  if (!r.get(&nlocal) || !r.get(&nglobal) || !r.get_pod_vec(&dense) ||
      !r.get_pod_vec(&gix) || !r.get_pod_vec(&goff))
    return false;
  if (nglobal < 0 || dense.size() != nlocal) return false;
  for (const std::int64_t id : dense)
    if (id < 0 || id >= nglobal) return false;
  // group_offset_ is either empty (no shared groups) or a monotone
  // offset table starting at 0 and ending at gather_ix_.size().
  if (goff.empty()) {
    if (!gix.empty()) return false;
  } else {
    if (goff.front() != 0 ||
        goff.back() != static_cast<std::int32_t>(gix.size()))
      return false;
    for (std::size_t g = 1; g < goff.size(); ++g)
      if (goff[g] < goff[g - 1]) return false;
  }
  for (const std::int32_t ix : gix)
    if (ix < 0 || static_cast<std::uint64_t>(ix) >= nlocal) return false;
  nlocal_ = static_cast<std::size_t>(nlocal);
  nglobal_ = nglobal;
  dense_id_ = std::move(dense);
  gather_ix_ = std::move(gix);
  group_offset_ = std::move(goff);
  return true;
}

std::vector<double> GatherScatter::multiplicity() const {
  std::vector<double> mult(nlocal_, 1.0);
  for (std::size_t g = 0; g < ngroups(); ++g) {
    const std::int32_t b = group_offset_[g];
    const std::int32_t e = group_offset_[g + 1];
    for (std::int32_t k = b; k < e; ++k)
      mult[gather_ix_[k]] = static_cast<double>(e - b);
  }
  return mult;
}

void GatherScatter::local_to_global(const double* u, double* ug) const {
  std::fill(ug, ug + nglobal_, 0.0);
  for (std::size_t i = 0; i < nlocal_; ++i) ug[dense_id_[i]] += u[i];
}

void GatherScatter::global_to_local(const double* ug, double* u) const {
  for (std::size_t i = 0; i < nlocal_; ++i) u[i] = ug[dense_id_[i]];
}

std::int64_t CommProfile::max_send_words() const {
  std::int64_t m = 0;
  for (auto v : send_words) m = std::max(m, v);
  return m;
}

int CommProfile::max_neighbors() const {
  int m = 0;
  for (auto v : neighbors) m = std::max(m, v);
  return m;
}

std::int64_t CommProfile::total_words() const {
  std::int64_t t = 0;
  for (auto v : send_words) t += v;
  return t;
}

std::int64_t CommProfile::pair_words(int from, int to) const {
  const auto it = std::lower_bound(
      pairs.begin(), pairs.end(), std::make_pair(from, to),
      [](const Edge& e, const std::pair<int, int>& k) {
        return e.from < k.first || (e.from == k.first && e.to < k.second);
      });
  if (it == pairs.end() || it->from != from || it->to != to) return 0;
  return it->words;
}

CommProfile gs_comm_profile(const std::vector<std::int64_t>& ids, int npe,
                            const std::vector<int>& elem_rank, int nranks) {
  TSEM_REQUIRE(npe > 0);
  TSEM_REQUIRE(ids.size() % static_cast<std::size_t>(npe) == 0);
  const std::size_t nelem = ids.size() / npe;
  TSEM_REQUIRE(elem_rank.size() == nelem);

  // Flat (id, rank) pairs, sorted and deduplicated, replace the old
  // map<id, set<rank>>: one allocation and an O(n log n) sort instead of
  // a node allocation per distinct (id, rank) — the profile is built on
  // Table-4-sized meshes where that map dominated setup time.
  std::vector<std::pair<std::int64_t, int>> pairs;
  pairs.reserve(ids.size());
  for (std::size_t e = 0; e < nelem; ++e) {
    const int r = elem_rank[e];
    TSEM_REQUIRE(r >= 0 && r < nranks);
    for (int n = 0; n < npe; ++n) pairs.emplace_back(ids[e * npe + n], r);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  CommProfile prof;
  prof.nranks = nranks;
  prof.send_words.assign(nranks, 0);
  // Sweep runs of equal id.  A run of k >= 2 distinct ranks means a
  // pairwise exchange: each sharing rank sends this id's value to every
  // other sharing rank (the stand-alone gs utility's pairwise mode).
  // nbr_pairs keeps one entry per (id, ordered rank pair) so a sort +
  // run-length pass below yields the pairwise exchange list.
  std::vector<std::pair<int, int>> nbr_pairs;
  for (std::size_t i = 0; i < pairs.size();) {
    std::size_t j = i;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    const std::int64_t k = static_cast<std::int64_t>(j - i);
    if (k >= 2) {
      for (std::size_t a = i; a < j; ++a) {
        prof.send_words[pairs[a].second] += k - 1;
        for (std::size_t b = i; b < j; ++b)
          if (b != a) nbr_pairs.emplace_back(pairs[a].second, pairs[b].second);
      }
    }
    i = j;
  }
  std::sort(nbr_pairs.begin(), nbr_pairs.end());
  prof.neighbors.assign(nranks, 0);
  for (std::size_t i = 0; i < nbr_pairs.size();) {
    std::size_t j = i;
    while (j < nbr_pairs.size() && nbr_pairs[j] == nbr_pairs[i]) ++j;
    prof.pairs.push_back({nbr_pairs[i].first, nbr_pairs[i].second,
                          static_cast<std::int64_t>(j - i)});
    ++prof.neighbors[nbr_pairs[i].first];
    i = j;
  }
  return prof;
}

}  // namespace tsem
