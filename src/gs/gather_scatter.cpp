#include "gs/gather_scatter.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>

#include "common/check.hpp"

namespace tsem {

GatherScatter::GatherScatter(const std::int64_t* ids, std::size_t n) {
  nlocal_ = n;
  // Sort local indices by id to find groups and assign dense ids.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return ids[a] < ids[b] || (ids[a] == ids[b] && a < b);
  });
  dense_id_.resize(n);
  group_offset_.push_back(0);
  std::size_t i = 0;
  std::int64_t dense = -1;
  while (i < n) {
    std::size_t j = i;
    while (j < n && ids[order[j]] == ids[order[i]]) ++j;
    ++dense;
    for (std::size_t k = i; k < j; ++k) dense_id_[order[k]] = dense;
    if (j - i >= 2) {
      for (std::size_t k = i; k < j; ++k) gather_ix_.push_back(order[k]);
      group_offset_.push_back(static_cast<std::int32_t>(gather_ix_.size()));
    }
    i = j;
  }
  nglobal_ = dense + 1;
}

namespace {

inline double reduce_init(GsOp o) {
  switch (o) {
    case GsOp::Add: return 0.0;
    case GsOp::Mul: return 1.0;
    case GsOp::Min: return std::numeric_limits<double>::infinity();
    case GsOp::Max: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double reduce_apply(GsOp o, double a, double b) {
  switch (o) {
    case GsOp::Add: return a + b;
    case GsOp::Mul: return a * b;
    case GsOp::Min: return a < b ? a : b;
    case GsOp::Max: return a > b ? a : b;
  }
  return a;
}

}  // namespace

void GatherScatter::op(double* u, GsOp o) const {
  const std::size_t ng = ngroups();
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (ng > 4096)
#endif
  for (std::size_t g = 0; g < ng; ++g) {
    const std::int32_t b = group_offset_[g];
    const std::int32_t e = group_offset_[g + 1];
    double acc = reduce_init(o);
    for (std::int32_t k = b; k < e; ++k)
      acc = reduce_apply(o, acc, u[gather_ix_[k]]);
    for (std::int32_t k = b; k < e; ++k) u[gather_ix_[k]] = acc;
  }
}

void GatherScatter::op_vec(double* u, int m, GsOp o) const {
  const std::size_t ng = ngroups();
  for (std::size_t g = 0; g < ng; ++g) {
    const std::int32_t b = group_offset_[g];
    const std::int32_t e = group_offset_[g + 1];
    for (int c = 0; c < m; ++c) {
      double acc = reduce_init(o);
      for (std::int32_t k = b; k < e; ++k)
        acc = reduce_apply(o, acc, u[static_cast<std::size_t>(gather_ix_[k]) * m + c]);
      for (std::int32_t k = b; k < e; ++k)
        u[static_cast<std::size_t>(gather_ix_[k]) * m + c] = acc;
    }
  }
}

std::vector<double> GatherScatter::multiplicity() const {
  std::vector<double> mult(nlocal_, 1.0);
  for (std::size_t g = 0; g < ngroups(); ++g) {
    const std::int32_t b = group_offset_[g];
    const std::int32_t e = group_offset_[g + 1];
    for (std::int32_t k = b; k < e; ++k)
      mult[gather_ix_[k]] = static_cast<double>(e - b);
  }
  return mult;
}

void GatherScatter::local_to_global(const double* u, double* ug) const {
  std::fill(ug, ug + nglobal_, 0.0);
  for (std::size_t i = 0; i < nlocal_; ++i) ug[dense_id_[i]] += u[i];
}

void GatherScatter::global_to_local(const double* ug, double* u) const {
  for (std::size_t i = 0; i < nlocal_; ++i) u[i] = ug[dense_id_[i]];
}

std::int64_t CommProfile::max_send_words() const {
  std::int64_t m = 0;
  for (auto v : send_words) m = std::max(m, v);
  return m;
}

int CommProfile::max_neighbors() const {
  int m = 0;
  for (auto v : neighbors) m = std::max(m, v);
  return m;
}

CommProfile gs_comm_profile(const std::vector<std::int64_t>& ids, int npe,
                            const std::vector<int>& elem_rank, int nranks) {
  TSEM_REQUIRE(npe > 0);
  TSEM_REQUIRE(ids.size() % static_cast<std::size_t>(npe) == 0);
  const std::size_t nelem = ids.size() / npe;
  TSEM_REQUIRE(elem_rank.size() == nelem);

  // For every global id, the set of ranks that own a copy.
  std::map<std::int64_t, std::set<int>> ranks_of;
  for (std::size_t e = 0; e < nelem; ++e) {
    const int r = elem_rank[e];
    TSEM_REQUIRE(r >= 0 && r < nranks);
    for (int n = 0; n < npe; ++n) ranks_of[ids[e * npe + n]].insert(r);
  }

  CommProfile prof;
  prof.nranks = nranks;
  prof.send_words.assign(nranks, 0);
  std::vector<std::set<int>> nbr(nranks);
  for (const auto& [id, rs] : ranks_of) {
    if (rs.size() < 2) continue;
    // Pairwise exchange: each sharing rank sends this id's value to every
    // other sharing rank (the stand-alone gs utility's pairwise mode).
    for (int r : rs) {
      prof.send_words[r] += static_cast<std::int64_t>(rs.size()) - 1;
      for (int q : rs)
        if (q != r) nbr[r].insert(q);
    }
  }
  prof.neighbors.resize(nranks);
  for (int r = 0; r < nranks; ++r)
    prof.neighbors[r] = static_cast<int>(nbr[r].size());
  return prof;
}

}  // namespace tsem
