// Gather-scatter utility (paper §6, ref. [27]).
//
// The principal communication kernel of the code: residual-vector
// assembly ("direct stiffness summation").  Data is stored
// element-by-element; nodal values shared by adjacent elements are
// exchanged and reduced in a single local-to-local transformation —
// there are no separate gather and scatter phases.
//
// Mirrors the paper's two-call interface:
//     handle = gs_init(global_node_numbers, n)
//     ierr   = gs_op(u, op, handle)
// as   GatherScatter gs(ids);  gs.op(u, GsOp::Add);
// with the same general commutative/associative operation set and a
// vector mode for multiple degrees of freedom per node.
//
// The numerics are executed in-process; CommProfile reports, for a given
// element-to-rank partition, the exact pairwise exchange lists a
// message-passing execution would need (used by the simulated-machine
// cost models).
#pragma once

#include <cstdint>
#include <vector>

#include "io/binfile.hpp"

namespace tsem {

enum class GsOp { Add, Mul, Min, Max };

class GatherScatter {
 public:
  GatherScatter() = default;
  /// ids[i] is the global number of local value i; values with equal ids
  /// are reduced together.
  GatherScatter(const std::int64_t* ids, std::size_t n);
  explicit GatherScatter(const std::vector<std::int64_t>& ids)
      : GatherScatter(ids.data(), ids.size()) {}

  /// Exchange-and-reduce in place: after the call every member of a
  /// shared-id group holds the reduction over the group.
  void op(double* u, GsOp o = GsOp::Add) const;

  /// Single-precision exchange-and-reduce, for the FP32 Schwarz ghost
  /// path (DESIGN.md "Precision policy"): same groups, same reduction
  /// order, float arithmetic — results carry float rounding by design.
  void op_f32(float* u, GsOp o = GsOp::Add) const;

  /// Vector mode: u holds m consecutive values per node (AoS layout).
  void op_vec(double* u, int m, GsOp o = GsOp::Add) const;

  /// Multiplicity (number of local copies) of each local value.
  [[nodiscard]] std::vector<double> multiplicity() const;

  [[nodiscard]] std::size_t nlocal() const { return nlocal_; }
  /// Number of shared-id groups (ids with multiplicity >= 2).
  [[nodiscard]] std::size_t ngroups() const {
    return group_offset_.empty() ? 0 : group_offset_.size() - 1;
  }

  /// Sum local values into a compact global vector (size = #distinct ids,
  /// indexed by dense id order) and the reverse broadcast.  Used by the
  /// coarse-grid solvers where a globally indexed vector is required.
  void local_to_global(const double* u, double* ug) const;
  void global_to_local(const double* ug, double* u) const;
  [[nodiscard]] std::int64_t nglobal() const { return nglobal_; }
  /// Dense global index of local value i (in [0, nglobal)).
  [[nodiscard]] const std::vector<std::int64_t>& dense_id() const {
    return dense_id_;
  }

  /// Byte round-trip for the fleet setup cache: building the groups is a
  /// sort over every local node, so shape-identical workers replay the
  /// finished structure instead.  deserialize fully validates the group
  /// tables (sizes, ranges, monotone offsets) and returns false — object
  /// unchanged — on any structural defect; it never trusts the bytes.
  void serialize(ByteWriter& w) const;
  [[nodiscard]] bool deserialize(ByteReader& r);

 private:
  /// Shared kernel behind op/op_f32/op_vec: reduce-and-broadcast with AoS
  /// stride m, chunked so each group is walked once per <=16 components.
  /// Templated over the scalar type (double and float instantiations
  /// live in the .cpp).
  template <typename T>
  void run_groups(T* u, int m, GsOp o) const;

  std::size_t nlocal_ = 0;
  std::int64_t nglobal_ = 0;
  std::vector<std::int64_t> dense_id_;   // local -> dense global
  std::vector<std::int32_t> gather_ix_;  // members of shared groups
  std::vector<std::int32_t> group_offset_;
};

/// Message-passing profile of a gather-scatter under an element partition.
struct CommProfile {
  int nranks = 0;
  /// For each rank: number of distinct neighbor ranks it exchanges with.
  std::vector<int> neighbors;
  /// For each rank: total words sent per gs_op (sum over neighbors of the
  /// number of shared interface nodes with that neighbor).
  std::vector<std::int64_t> send_words;
  /// One pairwise exchange per ordered neighbor pair, sorted by
  /// (from, to): `words` interface values sent from -> to per gs_op (each
  /// shared id counted once per sharing-rank pair, so the list is
  /// symmetric: pair_words(a, b) == pair_words(b, a)).
  struct Edge {
    int from = 0, to = 0;
    std::int64_t words = 0;
  };
  std::vector<Edge> pairs;
  [[nodiscard]] std::int64_t max_send_words() const;
  [[nodiscard]] int max_neighbors() const;
  /// Sum of send_words over all ranks (every exchanged word, both
  /// directions of each pair).
  [[nodiscard]] std::int64_t total_words() const;
  /// Words sent from -> to per gs_op (0 when the ranks share no ids).
  [[nodiscard]] std::int64_t pair_words(int from, int to) const;
};

/// Compute the exchange profile: ids per local node (element-major),
/// npe nodes per element, elem_rank[e] in [0, nranks).
CommProfile gs_comm_profile(const std::vector<std::int64_t>& ids, int npe,
                            const std::vector<int>& elem_rank, int nranks);

}  // namespace tsem
