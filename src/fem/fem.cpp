#include "fem/fem.hpp"

#include <array>
#include <cmath>

#include "common/check.hpp"

namespace tsem {

void fem1d_operators(const std::vector<double>& pts, std::vector<double>& a,
                     std::vector<double>& b_lumped) {
  const int n = static_cast<int>(pts.size());
  TSEM_REQUIRE(n >= 3);
  const int m = n - 2;
  a.assign(static_cast<std::size_t>(m) * m, 0.0);
  b_lumped.assign(m, 0.0);
  for (int i = 0; i < m; ++i) {
    const int g = i + 1;
    const double hl = pts[g] - pts[g - 1];
    const double hr = pts[g + 1] - pts[g];
    TSEM_REQUIRE(hl > 0.0 && hr > 0.0);
    a[i * m + i] = 1.0 / hl + 1.0 / hr;
    if (i + 1 < m) {
      a[i * m + i + 1] = -1.0 / hr;
      a[(i + 1) * m + i] = -1.0 / hr;
    }
    b_lumped[i] = 0.5 * (hl + hr);
  }
}

namespace {

// Accumulate the P1 stiffness of one triangle into a dense matrix over
// global point indices (index < 0 marks a Dirichlet node, dropped).
void add_triangle(double* a, int n, const std::array<int, 3>& idx,
                  const std::array<double, 3>& px,
                  const std::array<double, 3>& py) {
  const double b0 = py[1] - py[2], b1 = py[2] - py[0], b2 = py[0] - py[1];
  const double c0 = px[2] - px[1], c1 = px[0] - px[2], c2 = px[1] - px[0];
  const double area2 = px[0] * b0 + px[1] * b1 + px[2] * b2;  // 2*area
  TSEM_REQUIRE(std::fabs(area2) > 0.0);
  const double coef = 1.0 / (2.0 * std::fabs(area2));
  const double b[3] = {b0, b1, b2};
  const double c[3] = {c0, c1, c2};
  for (int i = 0; i < 3; ++i) {
    if (idx[i] < 0) continue;
    for (int j = 0; j < 3; ++j) {
      if (idx[j] < 0) continue;
      a[idx[i] * n + idx[j]] += coef * (b[i] * b[j] + c[i] * c[j]);
    }
  }
}

// P1 stiffness of a tetrahedron from vertex coordinates.
void add_tet(double* a, int n, const std::array<int, 4>& idx,
             const std::array<std::array<double, 3>, 4>& p) {
  // Gradients of the barycentric basis: solve from the edge matrix.
  double m[9];
  for (int c = 0; c < 3; ++c) {
    m[0 * 3 + c] = p[1][c] - p[0][c];
    m[1 * 3 + c] = p[2][c] - p[0][c];
    m[2 * 3 + c] = p[3][c] - p[0][c];
  }
  const double det = m[0] * (m[4] * m[8] - m[5] * m[7]) -
                     m[1] * (m[3] * m[8] - m[5] * m[6]) +
                     m[2] * (m[3] * m[7] - m[4] * m[6]);
  TSEM_REQUIRE(std::fabs(det) > 0.0);
  const double vol = std::fabs(det) / 6.0;
  // inverse transpose of m gives gradients of barycentric coords 1..3.
  const double inv[9] = {
      (m[4] * m[8] - m[5] * m[7]) / det, (m[2] * m[7] - m[1] * m[8]) / det,
      (m[1] * m[5] - m[2] * m[4]) / det, (m[5] * m[6] - m[3] * m[8]) / det,
      (m[0] * m[8] - m[2] * m[6]) / det, (m[2] * m[3] - m[0] * m[5]) / det,
      (m[3] * m[7] - m[4] * m[6]) / det, (m[1] * m[6] - m[0] * m[7]) / det,
      (m[0] * m[4] - m[1] * m[3]) / det};
  double g[4][3];
  for (int c = 0; c < 3; ++c) {
    g[1][c] = inv[c * 3 + 0];
    g[2][c] = inv[c * 3 + 1];
    g[3][c] = inv[c * 3 + 2];
    g[0][c] = -(g[1][c] + g[2][c] + g[3][c]);
  }
  for (int i = 0; i < 4; ++i) {
    if (idx[i] < 0) continue;
    for (int j = 0; j < 4; ++j) {
      if (idx[j] < 0) continue;
      double s = 0.0;
      for (int c = 0; c < 3; ++c) s += g[i][c] * g[j][c];
      a[idx[i] * n + idx[j]] += vol * s;
    }
  }
}

}  // namespace

std::vector<double> p1_laplacian_2d(const std::vector<double>& xs,
                                    const std::vector<double>& ys) {
  const int nx = static_cast<int>(xs.size());
  const int ny = static_cast<int>(ys.size());
  TSEM_REQUIRE(nx >= 3 && ny >= 3);
  const int mx = nx - 2, my = ny - 2;
  const int n = mx * my;
  auto interior = [&](int i, int j) -> int {
    if (i <= 0 || i >= nx - 1 || j <= 0 || j >= ny - 1) return -1;
    return (j - 1) * mx + (i - 1);
  };
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j + 1 < ny; ++j) {
    for (int i = 0; i + 1 < nx; ++i) {
      const std::array<int, 3> t1 = {interior(i, j), interior(i + 1, j),
                                     interior(i + 1, j + 1)};
      const std::array<int, 3> t2 = {interior(i, j), interior(i + 1, j + 1),
                                     interior(i, j + 1)};
      add_triangle(a.data(), n, t1, {xs[i], xs[i + 1], xs[i + 1]},
                   {ys[j], ys[j], ys[j + 1]});
      add_triangle(a.data(), n, t2, {xs[i], xs[i + 1], xs[i]},
                   {ys[j], ys[j + 1], ys[j + 1]});
    }
  }
  return a;
}

std::vector<double> p1_laplacian_3d(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    const std::vector<double>& zs) {
  const int nx = static_cast<int>(xs.size());
  const int ny = static_cast<int>(ys.size());
  const int nz = static_cast<int>(zs.size());
  TSEM_REQUIRE(nx >= 3 && ny >= 3 && nz >= 3);
  const int mx = nx - 2, my = ny - 2, mz = nz - 2;
  const int n = mx * my * mz;
  auto interior = [&](int i, int j, int k) -> int {
    if (i <= 0 || i >= nx - 1 || j <= 0 || j >= ny - 1 || k <= 0 ||
        k >= nz - 1)
      return -1;
    return ((k - 1) * my + (j - 1)) * mx + (i - 1);
  };
  // Kuhn split of the unit cube into 6 tets (vertex order: binary corners).
  static const int kTets[6][4] = {{0, 1, 3, 7}, {0, 1, 5, 7}, {0, 2, 3, 7},
                                  {0, 2, 6, 7}, {0, 4, 5, 7}, {0, 4, 6, 7}};
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int k = 0; k + 1 < nz; ++k)
    for (int j = 0; j + 1 < ny; ++j)
      for (int i = 0; i + 1 < nx; ++i) {
        int cid[8];
        std::array<std::array<double, 3>, 8> cpt;
        for (int c = 0; c < 8; ++c) {
          const int ii = i + (c & 1), jj = j + ((c >> 1) & 1),
                    kk = k + ((c >> 2) & 1);
          cid[c] = interior(ii, jj, kk);
          cpt[c] = {xs[ii], ys[jj], zs[kk]};
        }
        for (const auto& t : kTets) {
          add_tet(a.data(), n, {cid[t[0]], cid[t[1]], cid[t[2]], cid[t[3]]},
                  {cpt[t[0]], cpt[t[1]], cpt[t[2]], cpt[t[3]]});
        }
      }
  return a;
}

CsrMatrix q1_vertex_laplacian(const Mesh& mesh) {
  const int nv = static_cast<int>(mesh.nvert);
  std::vector<Triplet> trip;
  const int n1 = mesh.n1d();
  // 2-point Gauss quadrature in each direction.
  const double gq = 1.0 / std::sqrt(3.0);
  if (mesh.dim == 2) {
    for (int e = 0; e < mesh.nelem; ++e) {
      double cx[4], cy[4];
      for (int c = 0; c < 4; ++c) {
        const int a = c & 1, b = (c >> 1) & 1;
        const std::size_t idx = static_cast<std::size_t>(e) * mesh.npe +
                                static_cast<std::size_t>(b * mesh.order) * n1 +
                                a * mesh.order;
        cx[c] = mesh.x[idx];
        cy[c] = mesh.y[idx];
      }
      double k[4][4] = {};
      for (int qj = 0; qj < 2; ++qj)
        for (int qi = 0; qi < 2; ++qi) {
          const double r = (qi == 0 ? -gq : gq), s = (qj == 0 ? -gq : gq);
          // dN/dr, dN/ds for N_c = (1 +- r)(1 +- s)/4.
          double dr[4], ds[4];
          for (int c = 0; c < 4; ++c) {
            const double sr = (c & 1) ? 1.0 : -1.0;
            const double ss = (c & 2) ? 1.0 : -1.0;
            dr[c] = sr * (1.0 + ss * s) * 0.25;
            ds[c] = ss * (1.0 + sr * r) * 0.25;
          }
          double xr = 0, xs = 0, yr = 0, ys = 0;
          for (int c = 0; c < 4; ++c) {
            xr += dr[c] * cx[c];
            xs += ds[c] * cx[c];
            yr += dr[c] * cy[c];
            ys += ds[c] * cy[c];
          }
          const double jac = xr * ys - xs * yr;
          TSEM_REQUIRE(jac > 0.0);
          double gx[4], gy[4];
          for (int c = 0; c < 4; ++c) {
            gx[c] = (dr[c] * ys - ds[c] * yr) / jac;
            gy[c] = (-dr[c] * xs + ds[c] * xr) / jac;
          }
          for (int a = 0; a < 4; ++a)
            for (int b = 0; b < 4; ++b)
              k[a][b] += (gx[a] * gx[b] + gy[a] * gy[b]) * jac;
        }
      const std::int64_t* v = &mesh.vert_id[static_cast<std::size_t>(e) * 4];
      for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
          trip.push_back({static_cast<std::int32_t>(v[a]),
                          static_cast<std::int32_t>(v[b]), k[a][b]});
    }
  } else {
    for (int e = 0; e < mesh.nelem; ++e) {
      double cx[8], cy[8], cz[8];
      for (int c = 0; c < 8; ++c) {
        const int a = c & 1, b = (c >> 1) & 1, d = (c >> 2) & 1;
        const std::size_t idx =
            static_cast<std::size_t>(e) * mesh.npe +
            (static_cast<std::size_t>(d * mesh.order) * n1 + b * mesh.order) *
                n1 +
            a * mesh.order;
        cx[c] = mesh.x[idx];
        cy[c] = mesh.y[idx];
        cz[c] = mesh.z[idx];
      }
      double k[8][8] = {};
      for (int qk = 0; qk < 2; ++qk)
        for (int qj = 0; qj < 2; ++qj)
          for (int qi = 0; qi < 2; ++qi) {
            const double r = (qi == 0 ? -gq : gq), s = (qj == 0 ? -gq : gq),
                         t = (qk == 0 ? -gq : gq);
            double dr[8], ds[8], dt[8];
            for (int c = 0; c < 8; ++c) {
              const double sr = (c & 1) ? 1.0 : -1.0;
              const double ss = (c & 2) ? 1.0 : -1.0;
              const double st = (c & 4) ? 1.0 : -1.0;
              dr[c] = sr * (1 + ss * s) * (1 + st * t) * 0.125;
              ds[c] = ss * (1 + sr * r) * (1 + st * t) * 0.125;
              dt[c] = st * (1 + sr * r) * (1 + ss * s) * 0.125;
            }
            double xr = 0, xs = 0, xt = 0, yr = 0, ys = 0, yt = 0, zr = 0,
                   zs = 0, zt = 0;
            for (int c = 0; c < 8; ++c) {
              xr += dr[c] * cx[c];
              xs += ds[c] * cx[c];
              xt += dt[c] * cx[c];
              yr += dr[c] * cy[c];
              ys += ds[c] * cy[c];
              yt += dt[c] * cy[c];
              zr += dr[c] * cz[c];
              zs += ds[c] * cz[c];
              zt += dt[c] * cz[c];
            }
            const double jac = xr * (ys * zt - yt * zs) -
                               xs * (yr * zt - yt * zr) +
                               xt * (yr * zs - ys * zr);
            TSEM_REQUIRE(jac > 0.0);
            const double rx = (ys * zt - yt * zs) / jac;
            const double ry = (xt * zs - xs * zt) / jac;
            const double rz = (xs * yt - xt * ys) / jac;
            const double sx = (yt * zr - yr * zt) / jac;
            const double sy = (xr * zt - xt * zr) / jac;
            const double sz = (xt * yr - xr * yt) / jac;
            const double tx = (yr * zs - ys * zr) / jac;
            const double ty = (xs * zr - xr * zs) / jac;
            const double tz = (xr * ys - xs * yr) / jac;
            double gx[8], gy[8], gz[8];
            for (int c = 0; c < 8; ++c) {
              gx[c] = dr[c] * rx + ds[c] * sx + dt[c] * tx;
              gy[c] = dr[c] * ry + ds[c] * sy + dt[c] * ty;
              gz[c] = dr[c] * rz + ds[c] * sz + dt[c] * tz;
            }
            for (int a = 0; a < 8; ++a)
              for (int b = 0; b < 8; ++b)
                k[a][b] +=
                    (gx[a] * gx[b] + gy[a] * gy[b] + gz[a] * gz[b]) * jac;
          }
      const std::int64_t* v = &mesh.vert_id[static_cast<std::size_t>(e) * 8];
      for (int a = 0; a < 8; ++a)
        for (int b = 0; b < 8; ++b)
          trip.push_back({static_cast<std::int32_t>(v[a]),
                          static_cast<std::int32_t>(v[b]), k[a][b]});
    }
  }
  return CsrMatrix(nv, std::move(trip));
}

void vertex_coords(const Mesh& mesh, std::vector<double>& vx,
                   std::vector<double>& vy, std::vector<double>& vz) {
  vx.assign(mesh.nvert, 0.0);
  vy.assign(mesh.nvert, 0.0);
  vz.assign(mesh.nvert, 0.0);
  const int ncorner = 1 << mesh.dim;
  const int n1 = mesh.n1d();
  for (int e = 0; e < mesh.nelem; ++e) {
    for (int c = 0; c < ncorner; ++c) {
      const int a = c & 1, b = (c >> 1) & 1, d = (c >> 2) & 1;
      std::size_t idx = static_cast<std::size_t>(e) * mesh.npe;
      if (mesh.dim == 2)
        idx += static_cast<std::size_t>(b * mesh.order) * n1 + a * mesh.order;
      else
        idx += (static_cast<std::size_t>(d * mesh.order) * n1 +
                b * mesh.order) *
                   n1 +
               a * mesh.order;
      const auto v = mesh.vert_id[static_cast<std::size_t>(e) * ncorner + c];
      vx[v] = mesh.x[idx];
      vy[v] = mesh.y[idx];
      if (mesh.dim == 3) vz[v] = mesh.z[idx];
    }
  }
}

CsrMatrix poisson5(int nx, int ny) {
  const int n = nx * ny;
  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [nx](int i, int j) { return j * nx + i; };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const std::int32_t r = id(i, j);
      trip.push_back({r, r, 4.0});
      if (i > 0) trip.push_back({r, id(i - 1, j), -1.0});
      if (i < nx - 1) trip.push_back({r, id(i + 1, j), -1.0});
      if (j > 0) trip.push_back({r, id(i, j - 1), -1.0});
      if (j < ny - 1) trip.push_back({r, id(i, j + 1), -1.0});
    }
  return CsrMatrix(n, std::move(trip));
}

}  // namespace tsem
