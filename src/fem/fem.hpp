// Low-order finite element substrate.
//
// Three roles in the paper's solver stack:
//   * 1D P1 stiffness/mass on arbitrary point sets — the building blocks
//     of the tensor-product Schwarz local problems (paper eq. (2) form)
//     consumed by the fast diagonalization method;
//   * P1 (simplex) Laplacians on tensor subgrids — the paper's
//     "FEM-based" Schwarz local-solve baseline (Fig 5 left, Table 2),
//     which requires a real factorization instead of FDM;
//   * Q1 Laplacian on the spectral element vertex mesh — the coarse-grid
//     operator A_0 — and the 5-point-stencil Poisson matrices of the
//     Fig 6 coarse-solver study.
#pragma once

#include <vector>

#include "common/csr.hpp"
#include "mesh/mesh.hpp"

namespace tsem {

/// 1D P1 FEM on nodes pts[0..n-1] with homogeneous Dirichlet at both
/// endpoints: dense (n-2)^2 stiffness over the interior nodes and the
/// lumped-mass diagonal.
void fem1d_operators(const std::vector<double>& pts, std::vector<double>& a,
                     std::vector<double>& b_lumped);

/// P1 Laplacian on the tensor grid xs x ys (each quad cell split into two
/// triangles), homogeneous Dirichlet on the outer ring.  Returns the dense
/// matrix over the (nx-2)*(ny-2) interior points, x fastest.
std::vector<double> p1_laplacian_2d(const std::vector<double>& xs,
                                    const std::vector<double>& ys);

/// P1 Laplacian on the tensor grid xs x ys x zs (each hex cell split into
/// six tetrahedra), Dirichlet on the outer shell.  Dense over interior
/// points, x fastest.
std::vector<double> p1_laplacian_3d(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    const std::vector<double>& zs);

/// Q1 (bi/trilinear) Laplacian assembled on the spectral element vertex
/// mesh — the coarse-grid operator A_0 (paper §5).  One Q1 cell per
/// spectral element, using the element corner coordinates.
CsrMatrix q1_vertex_laplacian(const Mesh& mesh);

/// Vertex coordinates (nvert entries per component) extracted from the
/// mesh corner data, for partitioning / nested dissection of A_0.
void vertex_coords(const Mesh& mesh, std::vector<double>& vx,
                   std::vector<double>& vy, std::vector<double>& vz);

/// 5-point-stencil Poisson matrix on an nx x ny interior grid of the unit
/// square (Dirichlet boundary eliminated) — the Fig 6 model problem
/// (nx = ny = 63 -> n = 3969; 127 -> 16129).
CsrMatrix poisson5(int nx, int ny);

}  // namespace tsem
