// Legendre polynomial evaluation by three-term recurrence.
#pragma once

namespace tsem {

struct LegendreEval {
  double p;    ///< P_n(x)
  double dp;   ///< P_n'(x)
  double pm1;  ///< P_{n-1}(x)
};

/// Evaluate P_n and its derivative at x (|x| <= 1 expected but not
/// required).  n >= 0.
LegendreEval legendre(int n, double x);

}  // namespace tsem
