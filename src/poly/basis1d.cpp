#include "poly/basis1d.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "common/check.hpp"
#include "poly/lagrange.hpp"
#include "poly/quadrature.hpp"

namespace tsem {
namespace {

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

Basis1D build_basis(int order) {
  TSEM_REQUIRE(order >= 1);
  Basis1D b;
  b.order = order;
  auto q = gauss_lobatto(order + 1);
  b.z = std::move(q.z);
  b.w = std::move(q.w);
  b.d = derivative_matrix(b.z);
  const int n = order + 1;
  b.dt.resize(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b.dt[j * n + i] = b.d[i * n + j];
  b.ahat.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) s += b.w[k] * b.d[k * n + i] * b.d[k * n + j];
      b.ahat[i * n + j] = s;
    }
  return b;
}

}  // namespace

const Basis1D& Basis1D::get(int order) {
  static std::map<int, std::unique_ptr<Basis1D>> cache;
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& slot = cache[order];
  if (!slot) slot = std::make_unique<Basis1D>(build_basis(order));
  return *slot;
}

const std::vector<double>& gll_to_gll(int n_from, int n_to) {
  static std::map<std::pair<int, int>, std::unique_ptr<std::vector<double>>>
      cache;
  const auto& from = Basis1D::get(n_from).z;
  const auto& to = Basis1D::get(n_to).z;
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& slot = cache[{n_from, n_to}];
  if (!slot)
    slot = std::make_unique<std::vector<double>>(
        interpolation_matrix(from, to));
  return *slot;
}

namespace {

struct GaussCache {
  std::vector<double> z;
  std::vector<double> w;
};

const GaussCache& gauss_cache(int npts) {
  static std::map<int, std::unique_ptr<GaussCache>> cache;
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& slot = cache[npts];
  if (!slot) {
    auto q = gauss(npts);
    slot = std::make_unique<GaussCache>(
        GaussCache{std::move(q.z), std::move(q.w)});
  }
  return *slot;
}

}  // namespace

const std::vector<double>& gll_to_gauss(int order, int gauss_pts) {
  static std::map<std::pair<int, int>, std::unique_ptr<std::vector<double>>>
      cache;
  const auto& gz = gauss_cache(gauss_pts).z;
  const auto& from = Basis1D::get(order).z;
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& slot = cache[{order, gauss_pts}];
  if (!slot)
    slot = std::make_unique<std::vector<double>>(
        interpolation_matrix(from, gz));
  return *slot;
}

const std::vector<double>& gauss_nodes(int npts) { return gauss_cache(npts).z; }

const std::vector<double>& gauss_weights(int npts) {
  return gauss_cache(npts).w;
}

}  // namespace tsem
