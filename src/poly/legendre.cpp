#include "poly/legendre.hpp"

namespace tsem {

LegendreEval legendre(int n, double x) {
  if (n == 0) return {1.0, 0.0, 0.0};
  double pm1 = 1.0;  // P_0
  double p = x;      // P_1
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  // (1-x^2) P_n' = n (P_{n-1} - x P_n)
  const double om = 1.0 - x * x;
  double dp;
  if (om > 1e-14) {
    dp = n * (pm1 - x * p) / om;
  } else {
    // Endpoint limit: P_n'(+-1) = (+-1)^{n-1} n(n+1)/2.
    const double sign = (x > 0.0) ? 1.0 : ((n % 2 == 0) ? -1.0 : 1.0);
    dp = sign * 0.5 * n * (n + 1.0);
  }
  return {p, dp, pm1};
}

}  // namespace tsem
