#include "poly/quadrature.hpp"

#include <cmath>

#include "common/check.hpp"
#include "poly/legendre.hpp"

namespace tsem {

Quadrature gauss_lobatto(int npts) {
  TSEM_REQUIRE(npts >= 2);
  const int n = npts - 1;  // polynomial order
  Quadrature q;
  q.z.resize(npts);
  q.w.resize(npts);
  q.z.front() = -1.0;
  q.z.back() = 1.0;
  // Interior nodes: roots of P_n'.  Newton from Chebyshev-Lobatto guesses.
  for (int i = 1; i < n; ++i) {
    double x = -std::cos(M_PI * i / n);
    for (int it = 0; it < 100; ++it) {
      const auto ev = legendre(n, x);
      // f = P_n'; f' = P_n'' = (2x P_n' - n(n+1) P_n) / (1 - x^2)
      const double f = ev.dp;
      const double fp = (2.0 * x * ev.dp - n * (n + 1.0) * ev.p) /
                        (1.0 - x * x);
      const double dx = f / fp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    q.z[i] = x;
  }
  for (int i = 0; i <= n; ++i) {
    const auto ev = legendre(n, q.z[i]);
    q.w[i] = 2.0 / (n * (n + 1.0) * ev.p * ev.p);
  }
  return q;
}

Quadrature gauss(int npts) {
  TSEM_REQUIRE(npts >= 1);
  const int n = npts;
  Quadrature q;
  q.z.resize(npts);
  q.w.resize(npts);
  for (int i = 0; i < (n + 1) / 2; ++i) {
    // Tricomi-style initial guess, roots ordered descending for this loop.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    for (int it = 0; it < 100; ++it) {
      const auto ev = legendre(n, x);
      const double dx = ev.p / ev.dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    const auto ev = legendre(n, x);
    const double w = 2.0 / ((1.0 - x * x) * ev.dp * ev.dp);
    q.z[n - 1 - i] = x;
    q.w[n - 1 - i] = w;
    q.z[i] = -x;
    q.w[i] = w;
  }
  if (n % 2 == 1) {
    const auto ev = legendre(n, 0.0);
    q.z[n / 2] = 0.0;
    q.w[n / 2] = 2.0 / (ev.dp * ev.dp);
  }
  return q;
}

}  // namespace tsem
