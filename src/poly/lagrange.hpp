// Barycentric Lagrange interpolation and differentiation matrices.
#pragma once

#include <vector>

namespace tsem {

/// Barycentric weights for the node set x (distinct nodes).
std::vector<double> barycentric_weights(const std::vector<double>& x);

/// Interpolation matrix J (to.size() x from.size()) with
/// J[i][j] = h_j(to[i]) where h_j are the Lagrange cardinal polynomials on
/// the `from` nodes.  Exact (row of the identity) when to[i] coincides
/// with a source node.
std::vector<double> interpolation_matrix(const std::vector<double>& from,
                                         const std::vector<double>& to);

/// Differentiation matrix D (n x n) with D[i][j] = h_j'(x[i]).
std::vector<double> derivative_matrix(const std::vector<double>& x);

}  // namespace tsem
