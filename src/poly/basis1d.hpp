// Cached one-dimensional spectral element basis data.
//
// All multi-dimensional operators are tensor products of these 1D
// ingredients (paper eq. 2): the GLL nodes/weights, the nodal
// differentiation matrix D-hat, the diagonal mass matrix B-hat = diag(w),
// and the 1D stiffness matrix A-hat = D^T diag(w) D.
#pragma once

#include <vector>

namespace tsem {

struct Basis1D {
  int order = 0;                ///< polynomial order N
  std::vector<double> z;        ///< N+1 GLL nodes
  std::vector<double> w;        ///< N+1 GLL weights (diagonal of B-hat)
  std::vector<double> d;        ///< (N+1)^2 differentiation matrix
  std::vector<double> dt;       ///< transpose of d
  std::vector<double> ahat;     ///< (N+1)^2 1D stiffness D^T W D

  [[nodiscard]] int npts() const { return order + 1; }

  /// Shared, lazily built, immutable basis for order N (thread-safe).
  static const Basis1D& get(int order);
};

/// Interpolation matrix from the GLL(N_from) grid to the GLL(N_to) grid,
/// (N_to+1) x (N_from+1), cached.
const std::vector<double>& gll_to_gll(int n_from, int n_to);

/// Interpolation matrix from the GLL(N) grid to the M-point Gauss grid,
/// M x (N+1), cached.  Used by the P_N x P_{N-2} pressure coupling.
const std::vector<double>& gll_to_gauss(int order, int gauss_pts);

/// Gauss rule cache (for the pressure mesh).
const std::vector<double>& gauss_nodes(int npts);
const std::vector<double>& gauss_weights(int npts);

}  // namespace tsem
