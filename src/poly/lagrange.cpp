#include "poly/lagrange.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tsem {

std::vector<double> barycentric_weights(const std::vector<double>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<double> w(n, 1.0);
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < n; ++k) {
      if (k != j) w[j] *= (x[j] - x[k]);
    }
    TSEM_REQUIRE(w[j] != 0.0);
    w[j] = 1.0 / w[j];
  }
  return w;
}

std::vector<double> interpolation_matrix(const std::vector<double>& from,
                                         const std::vector<double>& to) {
  const int nf = static_cast<int>(from.size());
  const int nt = static_cast<int>(to.size());
  const auto w = barycentric_weights(from);
  std::vector<double> j(static_cast<std::size_t>(nt) * nf, 0.0);
  for (int i = 0; i < nt; ++i) {
    // Exact hit: emit a row of the identity.
    int hit = -1;
    for (int c = 0; c < nf; ++c) {
      if (to[i] == from[c] || std::fabs(to[i] - from[c]) < 1e-14) {
        hit = c;
        break;
      }
    }
    if (hit >= 0) {
      j[i * nf + hit] = 1.0;
      continue;
    }
    double denom = 0.0;
    for (int c = 0; c < nf; ++c) denom += w[c] / (to[i] - from[c]);
    for (int c = 0; c < nf; ++c)
      j[i * nf + c] = (w[c] / (to[i] - from[c])) / denom;
  }
  return j;
}

std::vector<double> derivative_matrix(const std::vector<double>& x) {
  const int n = static_cast<int>(x.size());
  const auto w = barycentric_weights(x);
  std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    double diag = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dij = (w[j] / w[i]) / (x[i] - x[j]);
      d[i * n + j] = dij;
      diag -= dij;
    }
    d[i * n + i] = diag;
  }
  return d;
}

}  // namespace tsem
