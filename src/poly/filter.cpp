#include "poly/filter.hpp"

#include "common/check.hpp"
#include "poly/basis1d.hpp"
#include "tensor/mxm.hpp"

namespace tsem {

std::vector<double> filter_matrix(int order, double alpha) {
  TSEM_REQUIRE(order >= 2);
  TSEM_REQUIRE(alpha >= 0.0 && alpha <= 1.0);
  const int n = order + 1;
  const auto& down = gll_to_gll(order, order - 1);  // n-1 x n
  const auto& up = gll_to_gll(order - 1, order);    // n x n-1
  std::vector<double> pi(static_cast<std::size_t>(n) * n);
  mxm_generic(up.data(), n, down.data(), n - 1, pi.data(), n);
  std::vector<double> f(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      f[i * n + j] = alpha * pi[i * n + j] +
                     (1.0 - alpha) * (i == j ? 1.0 : 0.0);
  return f;
}

}  // namespace tsem
