// Gauss and Gauss-Lobatto-Legendre quadrature rules on [-1, 1].
//
// The spectral element method collocates velocity on the Gauss-Lobatto
// (GL in the paper's terminology) points — which include the element
// boundary, enabling C0 assembly — and pressure on the interior Gauss
// points (the P_N x P_{N-2} method).
#pragma once

#include <vector>

namespace tsem {

struct Quadrature {
  std::vector<double> z;  ///< nodes, ascending in [-1, 1]
  std::vector<double> w;  ///< positive weights, sum = 2
};

/// Gauss-Lobatto-Legendre rule with npts >= 2 points (exact through degree
/// 2*npts - 3).
Quadrature gauss_lobatto(int npts);

/// Gauss-Legendre rule with npts >= 1 points (exact through degree
/// 2*npts - 1).
Quadrature gauss(int npts);

}  // namespace tsem
