// Fischer-Mullen interpolation-based filter (paper §2, ref. [11]).
//
// F_alpha = (1 - alpha) I + alpha * Pi_{N-1}, where Pi_{N-1} interpolates
// down to the GLL grid of order N-1 and back, annihilating the N-th mode
// in each element.  alpha = 0 is no filtering, alpha = 1 full suppression
// of the N-th mode.  Applied once per timestep to each velocity component
// (one 1D matrix per direction — pure tensor-product work, no
// communication).
#pragma once

#include <vector>

namespace tsem {

/// The (N+1) x (N+1) 1D filter matrix for strength alpha in [0, 1].
std::vector<double> filter_matrix(int order, double alpha);

}  // namespace tsem
