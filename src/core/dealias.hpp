// Over-integrated ("dealiased", 3/2-rule) convection operator.
//
// The paper's collocation convection under-integrates the cubic
// nonlinearity (u.grad)u; the resulting aliasing errors are one of the
// instability sources the Fischer-Mullen filter controls.  The
// alternative, adopted by this solver family later (Nek5000's
// over-integration), evaluates the nonlinear integrand on a finer Gauss
// quadrature (M ~ 3(N+1)/2 points) where it is integrated exactly,
// eliminating the aliasing at ~2x the convection cost.  Provided here as
// the paper's natural extension, and exercised by the ablation bench.
//
// apply() returns the WEAK local form
//     out = I_f^T ( W_f J_f (v . grad u)|_fine ),
// i.e. the convection term pre-multiplied by the (fine) mass — callers
// assemble with dssum and multiply by the inverse assembled mass, just
// like any other weak term.
#pragma once

#include <memory>
#include <vector>

#include "mesh/mesh.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

class ByteWriter;
class ByteReader;

class DealiasedConvection {
 public:
  /// fine_pts = 0 selects the 3/2 rule: M = ceil(3 (N+1) / 2).
  explicit DealiasedConvection(const Mesh& mesh, int fine_pts = 0);

  [[nodiscard]] int fine_pts() const { return mfine_; }

  /// Append the interpolation/differentiation matrices and fine-grid
  /// metrics to w (setup cache, DESIGN.md "Setup cache").
  void serialize(ByteWriter& w) const;
  /// Rebuild from r against `mesh` (which must be the mesh the payload
  /// was recorded on — enforced structurally here, semantically by the
  /// cache key).  Returns nullptr on a truncated or mismatched payload.
  static std::unique_ptr<DealiasedConvection> deserialize(ByteReader& r,
                                                          const Mesh& mesh);

  /// out = weak-form (vel . grad u), element-local.  vel: dim components.
  void apply(const double* const* vel, const double* u, double* out,
             TensorWork& work) const;

 private:
  DealiasedConvection() = default;  // deserialize() fills every member
  const Mesh* mesh_ = nullptr;
  int dim_ = 0, n1_ = 0, mfine_ = 0;
  std::size_t nfe_ = 0;             // fine nodes per element
  std::vector<double> if_, ift_;    // interpolation (M x n1) + transpose
  std::vector<double> dif_, dift_;  // d/dr then interpolate (M x n1) + ^T
  std::vector<double> jw_;          // W_f J_f per fine node (all elements)
  std::vector<double> md_;          // (dr_j/dx_c)_fine, component-major
  [[nodiscard]] const double* metric_f(int c, int j) const {
    return md_.data() +
           (static_cast<std::size_t>(c) * dim_ + j) * jw_.size();
  }
};

}  // namespace tsem
