#include "core/space.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tsem {

Space::Space(Mesh mesh) : mesh_(std::move(mesh)), gs_(mesh_.node_id) {
  init_derived();
}

Space::Space(Mesh mesh, GatherScatter gs)
    : mesh_(std::move(mesh)), gs_(std::move(gs)) {
  TSEM_REQUIRE(gs_.nlocal() == mesh_.nlocal());
  init_derived();
}

void Space::init_derived() {
  mult_ = gs_.multiplicity();
  bma_ = mesh_.bm;
  gs_.op(bma_.data());
  bmi_.resize(bma_.size());
  for (std::size_t i = 0; i < bma_.size(); ++i) {
    TSEM_REQUIRE(bma_[i] > 0.0);
    bmi_[i] = 1.0 / bma_[i];
  }
  volume_ = 0.0;
  for (std::size_t i = 0; i < mesh_.bm.size(); ++i) volume_ += mesh_.bm[i];
}

void Space::daverage(double* u) const {
  gs_.op(u);
  for (std::size_t i = 0; i < mult_.size(); ++i) u[i] /= mult_[i];
}

std::vector<double> Space::make_mask(std::uint32_t tag_bits) const {
  std::vector<double> mask(nlocal(), 1.0);
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (mesh_.bdry_bits[i] & tag_bits) mask[i] = 0.0;
  // A node Dirichlet in any element copy must be Dirichlet in all copies.
  gs_.op(mask.data(), GsOp::Min);
  return mask;
}

double Space::integrate(const double* u) const {
  // bm is the local (unassembled) quadrature weight, so summing bm*u over
  // all local copies counts each global node exactly once in the integral
  // sense.
  double s = 0.0;
  for (std::size_t i = 0; i < mesh_.bm.size(); ++i) s += mesh_.bm[i] * u[i];
  return s;
}

double Space::glsum_dot(const double* u, const double* v) const {
  // Assumes u and v are C0 (equal on shared copies); divide by
  // multiplicity so each global node contributes once.
  double s = 0.0;
  for (std::size_t i = 0; i < mult_.size(); ++i) s += u[i] * v[i] / mult_[i];
  return s;
}

double Space::l2_norm(const double* u) const {
  double s = 0.0;
  for (std::size_t i = 0; i < mesh_.bm.size(); ++i)
    s += mesh_.bm[i] * u[i] * u[i];
  return std::sqrt(s);
}

}  // namespace tsem
