// P_N x P_{N-2} pressure coupling (paper §4).
//
// Velocity lives on the GLL(N)^d element grids (C0); pressure lives on
// the interior Gauss(N-2)^d grids (discontinuous, no interelement
// continuity).  This file provides the discrete divergence D
// (velocity -> pressure), its transpose D^T (the pressure gradient
// force), and the Stokes Schur complement E = D B^{-1} D^T — the
// consistent Poisson operator that governs the pressure and dominates
// the stiffness of unsteady incompressible flow.
//
// All metric data on the Gauss mesh is exact: the coordinate derivatives
// (polynomials of degree <= N) are interpolated from the GLL grid before
// the rational metric combinations are formed.
#pragma once

#include <functional>
#include <vector>

#include "core/space.hpp"
#include "solver/cg.hpp"
#include "solver/projection.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

class PressureSystem {
 public:
  /// vmask: the velocity Dirichlet mask entering B^{-1} (the same mask
  /// used by the Helmholtz solves).  For fully enclosed flows E is
  /// singular with nullspace = constants; see remove_mean().
  PressureSystem(const Space& vspace, std::vector<double> vmask);

  /// Gauss points per direction (= N - 1).
  [[nodiscard]] int ng1() const { return ng1_; }
  /// Pressure dofs per element.
  [[nodiscard]] int npe() const { return npe_; }
  /// Total pressure dofs (= K * (N-1)^d).
  [[nodiscard]] std::size_t nloc() const {
    return static_cast<std::size_t>(vspace_->mesh().nelem) * npe_;
  }

  /// dp = -D u is NOT applied here: this computes dp = D u (the discrete
  /// weighted divergence); u is an array of dim component fields.
  void divergence(const double* const* u, double* dp) const;

  /// w_c = (D^T p)_c, element-local (unassembled) velocity fields.
  void gradient_t(const double* p, double* const* w) const;

  /// ep = E p = D Q (Q^T B Q)^{-1} mask Q^T D^T p.
  void apply_E(const double* p, double* ep) const;

  /// Pressure quadrature weights (W_g * J_g) — the pressure mass diagonal.
  [[nodiscard]] const std::vector<double>& pbm() const { return pbm_; }

  /// Subtract the pbm-weighted mean — the physical normalization of the
  /// pressure (zero volume average).
  void remove_mean(double* p) const;

  /// Subtract the plain (unweighted) mean: the ORTHOGONAL projector onto
  /// the complement of the constant nullspace in the Euclidean dot
  /// product.  This is the projector that must be used inside CG (the
  /// weighted one is not symmetric there and stalls the iteration).
  void remove_mean_plain(double* p) const;

  /// Physical coordinates of the pressure (Gauss) nodes.
  [[nodiscard]] const std::vector<double>& px() const { return px_; }
  [[nodiscard]] const std::vector<double>& py() const { return py_; }
  [[nodiscard]] const std::vector<double>& pz() const { return pz_; }

  [[nodiscard]] const Space& vspace() const { return *vspace_; }
  [[nodiscard]] const std::vector<double>& vmask() const { return vmask_; }

  /// W_g J_g dr_j/dx_i at the Gauss nodes (component-major like Mesh::g).
  [[nodiscard]] const double* pgeo(int i, int j) const {
    return pg_.data() + (static_cast<std::size_t>(i) * dim_ + j) * nloc();
  }

 private:
  const Space* vspace_;
  std::vector<double> vmask_;
  int dim_;
  int ng1_;
  int npe_;
  std::vector<double> pg_;   // dim^2 * nloc
  std::vector<double> pbm_;  // nloc
  std::vector<double> px_, py_, pz_;
  // 1D coupling matrices: ig (Gauss x GLL interpolation), dg = ig * Dhat,
  // and their transposes.
  std::vector<double> ig_, dg_, igt_, dgt_;
  mutable TensorWork work_;
  // apply_E velocity-length temporaries (D^T p before B^{-1} masking),
  // sized lazily on first use so E applications never allocate in steady
  // state.  Kept out of work_ because gradient_t/divergence draw element
  // scratch from that arena while these fields are live.
  mutable std::vector<double> et_[3];
};

struct PressureSolveOptions {
  double tol = 1e-6;  ///< relative to the FULL rhs norm (see NsOptions)
  int max_iter = 4000;
  /// Project the rhs and iterates onto the mean-free quotient (enclosed /
  /// fully periodic flows where E has the constant nullspace).
  bool mean_free = true;
  /// Skip the projection initial guess and start CG from zero — the
  /// resilience layer's first escalation when the warm path went bad.
  bool zero_guess = false;
};

struct PressureSolveResult {
  CgResult cg;
  double res0 = 0.0;     ///< residual before iteration (after projection)
  int apply_count = 0;   ///< E applications (flops accounting upstream)
  int precond_count = 0; ///< preconditioner applications
};

/// Persistent buffers for solve_pressure: the working rhs, the projection
/// guess and residual, and the CG Krylov vectors.  A caller solving every
/// time step keeps one alive so steady-state pressure solves never touch
/// the allocator.
struct PressureSolveScratch {
  std::vector<double> rhs, p0, r;
  CgScratch cg;
};

/// Projected, preconditioned CG solve of E dp = g.  `precond` computes
/// z = M^{-1} r (pass nullptr for identity); `proj` is the
/// successive-RHS projection accelerator (nullptr disables; the basis is
/// only updated when the solve did not hard-fail, so a poisoned attempt
/// cannot pollute it).  dp holds the correction on return; on a
/// NonFinite/Breakdown exit it is left zeroed.  The returned SolveStatus
/// feeds the time stepper's recovery policy.  Pass a persistent `scratch`
/// to make repeated solves allocation-free.
PressureSolveResult solve_pressure(
    const PressureSystem& psys,
    const std::function<void(const double*, double*)>& precond,
    SolutionProjection* proj, const double* g, double* dp,
    const PressureSolveOptions& opt, PressureSolveScratch* scratch = nullptr);

}  // namespace tsem
