#include "core/pressure.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "poly/basis1d.hpp"
#include "tensor/mxm.hpp"

namespace tsem {

PressureSystem::PressureSystem(const Space& vspace, std::vector<double> vmask)
    : vspace_(&vspace), vmask_(std::move(vmask)) {
  const Mesh& m = vspace.mesh();
  TSEM_REQUIRE(m.order >= 3);
  TSEM_REQUIRE(vmask_.size() == m.nlocal());
  dim_ = m.dim;
  ng1_ = m.order - 1;
  npe_ = 1;
  for (int d = 0; d < dim_; ++d) npe_ *= ng1_;

  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  ig_ = gll_to_gauss(m.order, ng1_);  // ng1 x n1
  dg_.assign(static_cast<std::size_t>(ng1_) * n1, 0.0);
  mxm_generic(ig_.data(), ng1_, b.d.data(), n1, dg_.data(), n1);
  igt_.resize(ig_.size());
  dgt_.resize(dg_.size());
  for (int i = 0; i < ng1_; ++i)
    for (int j = 0; j < n1; ++j) {
      igt_[j * ng1_ + i] = ig_[i * n1 + j];
      dgt_[j * ng1_ + i] = dg_[i * n1 + j];
    }

  const auto& gw = gauss_weights(ng1_);
  const std::size_t nploc = nloc();
  pg_.resize(static_cast<std::size_t>(dim_) * dim_ * nploc);
  pbm_.resize(nploc);
  px_.resize(nploc);
  py_.resize(nploc);
  if (dim_ == 3) pz_.resize(nploc);

  // Per element: coordinate derivatives on the GLL grid, interpolated to
  // the Gauss grid; then metrics, Jacobian and weights at the Gauss nodes.
  const std::size_t vnpe = m.npe;
  std::vector<double> work(4 * static_cast<std::size_t>(vnpe) +
                           4 * static_cast<std::size_t>(npe_));
  if (dim_ == 2) {
    std::vector<double> xr(npe_), xs(npe_), yr(npe_), ys(npe_), cx(npe_),
        cy(npe_);
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * vnpe;
      const std::size_t poff = static_cast<std::size_t>(e) * npe_;
      // d/dr at Gauss = (ig (x) dg), d/ds = (dg (x) ig).
      tensor2_apply(dg_.data(), ng1_, n1, ig_.data(), ng1_, n1,
                    m.x.data() + off, xr.data(), work.data());
      tensor2_apply(ig_.data(), ng1_, n1, dg_.data(), ng1_, n1,
                    m.x.data() + off, xs.data(), work.data());
      tensor2_apply(dg_.data(), ng1_, n1, ig_.data(), ng1_, n1,
                    m.y.data() + off, yr.data(), work.data());
      tensor2_apply(ig_.data(), ng1_, n1, dg_.data(), ng1_, n1,
                    m.y.data() + off, ys.data(), work.data());
      tensor2_apply(ig_.data(), ng1_, n1, ig_.data(), ng1_, n1,
                    m.x.data() + off, cx.data(), work.data());
      tensor2_apply(ig_.data(), ng1_, n1, ig_.data(), ng1_, n1,
                    m.y.data() + off, cy.data(), work.data());
      for (int j = 0; j < ng1_; ++j)
        for (int i = 0; i < ng1_; ++i) {
          const int q = j * ng1_ + i;
          const double jac = xr[q] * ys[q] - xs[q] * yr[q];
          TSEM_REQUIRE(jac > 0.0);
          const double w = gw[i] * gw[j];
          const double wj = w * jac;
          pbm_[poff + q] = wj;
          px_[poff + q] = cx[q];
          py_[poff + q] = cy[q];
          // dr/dx = ys/J, ds/dx = -yr/J, dr/dy = -xs/J, ds/dy = xr/J.
          pg_[(0 * 2 + 0) * nploc + poff + q] = wj * (ys[q] / jac);
          pg_[(0 * 2 + 1) * nploc + poff + q] = wj * (-yr[q] / jac);
          pg_[(1 * 2 + 0) * nploc + poff + q] = wj * (-xs[q] / jac);
          pg_[(1 * 2 + 1) * nploc + poff + q] = wj * (xr[q] / jac);
        }
    }
  } else {
    std::vector<double> d[9], cc[3];
    for (auto& v : d) v.resize(npe_);
    for (auto& v : cc) v.resize(npe_);
    const double* coords[3] = {nullptr, nullptr, nullptr};
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * vnpe;
      const std::size_t poff = static_cast<std::size_t>(e) * npe_;
      coords[0] = m.x.data() + off;
      coords[1] = m.y.data() + off;
      coords[2] = m.z.data() + off;
      for (int c = 0; c < 3; ++c) {
        tensor3_apply(dg_.data(), ng1_, n1, ig_.data(), ng1_, n1, ig_.data(),
                      ng1_, n1, coords[c], d[c * 3 + 0].data(), work.data());
        tensor3_apply(ig_.data(), ng1_, n1, dg_.data(), ng1_, n1, ig_.data(),
                      ng1_, n1, coords[c], d[c * 3 + 1].data(), work.data());
        tensor3_apply(ig_.data(), ng1_, n1, ig_.data(), ng1_, n1, dg_.data(),
                      ng1_, n1, coords[c], d[c * 3 + 2].data(), work.data());
        tensor3_apply(ig_.data(), ng1_, n1, ig_.data(), ng1_, n1, ig_.data(),
                      ng1_, n1, coords[c], cc[c].data(), work.data());
      }
      for (int k = 0; k < ng1_; ++k)
        for (int j = 0; j < ng1_; ++j)
          for (int i = 0; i < ng1_; ++i) {
            const int q = (k * ng1_ + j) * ng1_ + i;
            const double xr = d[0][q], xs = d[1][q], xt = d[2][q];
            const double yr = d[3][q], ys = d[4][q], yt = d[5][q];
            const double zr = d[6][q], zs = d[7][q], zt = d[8][q];
            const double jac = xr * (ys * zt - yt * zs) -
                               xs * (yr * zt - yt * zr) +
                               xt * (yr * zs - ys * zr);
            TSEM_REQUIRE(jac > 0.0);
            const double w = gw[i] * gw[j] * gw[k];
            const double wj = w * jac;
            pbm_[poff + q] = wj;
            px_[poff + q] = cc[0][q];
            py_[poff + q] = cc[1][q];
            pz_[poff + q] = cc[2][q];
            const double dr[9] = {
                (ys * zt - yt * zs) / jac, (yt * zr - yr * zt) / jac,
                (yr * zs - ys * zr) / jac, (xt * zs - xs * zt) / jac,
                (xr * zt - xt * zr) / jac, (xs * zr - xr * zs) / jac,
                (xs * yt - xt * ys) / jac, (xt * yr - xr * yt) / jac,
                (xr * ys - xs * yr) / jac};
            // dr[xi*3 + rj] = d r_{rj} / d x_{xi}; pgeo(i, j) stores
            // WJ * dr_j/dx_i.
            for (int xi = 0; xi < 3; ++xi)
              for (int rj = 0; rj < 3; ++rj)
                pg_[(static_cast<std::size_t>(xi) * 3 + rj) * nploc + poff +
                    q] = wj * dr[xi * 3 + rj];
          }
    }
  }
}

void PressureSystem::divergence(const double* const* u, double* dp) const {
  const Mesh& m = vspace_->mesh();
  const int n1 = m.n1d();
  const std::size_t nploc = nloc();
  std::fill(dp, dp + nploc, 0.0);
  double* work = work_.get(static_cast<std::size_t>(m.npe) * 4 + npe_);
  double* deriv = work + static_cast<std::size_t>(m.npe) * 4;
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    const std::size_t poff = static_cast<std::size_t>(e) * npe_;
    for (int c = 0; c < dim_; ++c) {
      for (int j = 0; j < dim_; ++j) {
        // derivative along reference direction j, at Gauss points
        if (dim_ == 2) {
          const double* ax = (j == 0) ? dg_.data() : ig_.data();
          const double* ay = (j == 1) ? dg_.data() : ig_.data();
          tensor2_apply(ax, ng1_, n1, ay, ng1_, n1, u[c] + off, deriv, work);
        } else {
          const double* ax = (j == 0) ? dg_.data() : ig_.data();
          const double* ay = (j == 1) ? dg_.data() : ig_.data();
          const double* az = (j == 2) ? dg_.data() : ig_.data();
          tensor3_apply(ax, ng1_, n1, ay, ng1_, n1, az, ng1_, n1, u[c] + off,
                        deriv, work);
        }
        const double* pgij = pgeo(c, j) + poff;
        for (int q = 0; q < npe_; ++q) dp[poff + q] += pgij[q] * deriv[q];
      }
    }
  }
}

void PressureSystem::gradient_t(const double* p, double* const* w) const {
  const Mesh& m = vspace_->mesh();
  const int n1 = m.n1d();
  const std::size_t nl = m.nlocal();
  for (int c = 0; c < dim_; ++c) std::fill(w[c], w[c] + nl, 0.0);
  double* work = work_.get(static_cast<std::size_t>(m.npe) * 4 + npe_ + m.npe);
  double* t = work + static_cast<std::size_t>(m.npe) * 4;
  double* out = t + npe_;
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    const std::size_t poff = static_cast<std::size_t>(e) * npe_;
    for (int c = 0; c < dim_; ++c) {
      for (int j = 0; j < dim_; ++j) {
        const double* pgij = pgeo(c, j) + poff;
        for (int q = 0; q < npe_; ++q) t[q] = pgij[q] * p[poff + q];
        if (dim_ == 2) {
          const double* ax = (j == 0) ? dgt_.data() : igt_.data();
          const double* ay = (j == 1) ? dgt_.data() : igt_.data();
          tensor2_apply(ax, n1, ng1_, ay, n1, ng1_, t, out, work);
        } else {
          const double* ax = (j == 0) ? dgt_.data() : igt_.data();
          const double* ay = (j == 1) ? dgt_.data() : igt_.data();
          const double* az = (j == 2) ? dgt_.data() : igt_.data();
          tensor3_apply(ax, n1, ng1_, ay, n1, ng1_, az, n1, ng1_, t, out,
                        work);
        }
        for (int q = 0; q < m.npe; ++q) w[c][off + q] += out[q];
      }
    }
  }
}

void PressureSystem::apply_E(const double* p, double* ep) const {
  const Mesh& m = vspace_->mesh();
  const std::size_t nl = m.nlocal();
  for (int c = 0; c < dim_; ++c)
    if (et_[c].size() < nl) et_[c].resize(nl);
  double* t[3] = {et_[0].data(), et_[1].data(),
                  dim_ == 3 ? et_[2].data() : nullptr};
  gradient_t(p, t);
  const auto& bmi = vspace_->bm_inv();
  for (int c = 0; c < dim_; ++c) {
    vspace_->gs().op(t[c]);
    for (std::size_t i = 0; i < nl; ++i) t[c][i] *= bmi[i] * vmask_[i];
  }
  divergence(t, ep);
}

void PressureSystem::remove_mean_plain(double* p) const {
  const std::size_t n = nloc();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += p[i];
  const double mean = sum / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) p[i] -= mean;
}

void PressureSystem::remove_mean(double* p) const {
  const std::size_t n = nloc();
  double vol = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    vol += pbm_[i];
    sum += pbm_[i] * p[i];
  }
  const double mean = sum / vol;
  for (std::size_t i = 0; i < n; ++i) p[i] -= mean;
}

PressureSolveResult solve_pressure(
    const PressureSystem& psys,
    const std::function<void(const double*, double*)>& precond,
    SolutionProjection* proj, const double* g, double* dp,
    const PressureSolveOptions& opt, PressureSolveScratch* scratch) {
  const obs::ScopedTimer timer("pressure/solve");
  const std::size_t np = psys.nloc();
  PressureSolveResult out;

  PressureSolveScratch local;
  PressureSolveScratch& scr = scratch ? *scratch : local;
  if (scr.rhs.size() < np) {
    scr.rhs.resize(np);
    scr.p0.resize(np);
    scr.r.resize(np);
  }
  std::vector<double>& rhs = scr.rhs;
  std::copy(g, g + np, rhs.data());
  if (opt.mean_free) psys.remove_mean_plain(rhs.data());

  auto applyE = [&](const double* x, double* y) {
    psys.apply_E(x, y);
    // Keep the Krylov space on the mean-free quotient (E preserves it
    // exactly in exact arithmetic; this suppresses roundoff drift of the
    // singular mode).
    if (opt.mean_free) psys.remove_mean_plain(y);
    ++out.apply_count;
  };
  auto pdot = [np](const double* a, const double* b) {
    double s = 0.0;
    for (std::size_t i = 0; i < np; ++i) s += a[i] * b[i];
    return s;
  };
  auto prec = [&](const double* r, double* z) {
    if (precond) {
      precond(r, z);
      ++out.precond_count;
      if (opt.mean_free) psys.remove_mean_plain(z);
    } else {
      std::copy(r, r + np, z);
    }
  };

  std::fill(dp, dp + np, 0.0);
  std::vector<double>& p0 = scr.p0;
  std::fill(p0.begin(), p0.end(), 0.0);
  const bool use_proj = proj != nullptr && !opt.zero_guess;
  if (use_proj) {
    out.res0 = proj->project(rhs.data(), p0.data(), scr.r.data());
    std::copy(p0.data(), p0.data() + np, dp);
  }

  // Tolerance relative to the FULL rhs norm (not the projection-reduced
  // residual), so projection genuinely reduces the iteration count.
  double gnorm = 0.0;
  for (std::size_t i = 0; i < np; ++i) gnorm += rhs[i] * rhs[i];
  gnorm = std::sqrt(gnorm);
  CgOptions copt;
  copt.tol = opt.tol * (gnorm > 0.0 ? gnorm : 1.0);
  copt.max_iter = opt.max_iter;
  out.cg = pcg(np, applyE, prec, pdot, rhs.data(), dp, copt, &scr.cg);
  if (!use_proj) out.res0 = out.cg.initial_residual;

  if (is_hard_failure(out.cg.status)) {
    // dp is garbage; zero it so the caller's state stays consistent, and
    // leave the projection basis untouched.
    std::fill(dp, dp + np, 0.0);
    return out;
  }
  if (proj) proj->update(dp, p0.data(), applyE);
  if (opt.mean_free) psys.remove_mean_plain(dp);
  return out;
}

}  // namespace tsem

