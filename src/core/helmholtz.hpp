// Global Helmholtz operator H = h1 * A + h2 * B on a masked C0 space
// (paper §4): the diagonally dominant operator governing each velocity
// component in the split Stokes problem, solved with Jacobi-preconditioned
// conjugate gradients.
#pragma once

#include <vector>

#include "core/space.hpp"
#include "solver/cg.hpp"
#include "solver/precision.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

class HelmholtzOp {
 public:
  /// mask: Dirichlet mask (from Space::make_mask); h1 multiplies the
  /// stiffness (e.g. 1/Re), h2 the mass (e.g. bdf0/dt); h2 may be 0 for a
  /// pure Poisson operator.
  HelmholtzOp(const Space& space, double h1, double h2,
              std::vector<double> mask);

  /// w = mask .* QQ^T (h1 A_L + h2 B_L) u for a C0, masked input u.
  void apply(const double* u, double* w) const;

  /// Fused apply over nf independent fields (one element sweep streams the
  /// derivative matrices and G factors across all fields; see
  /// apply_helmholtz_local_multi).  w[f] is bitwise identical to nf
  /// separate apply() calls.
  void apply_multi(const double* const* u, double* const* w, int nf) const;

  /// Assembled, masked diagonal (1.0 at masked nodes) for Jacobi.
  [[nodiscard]] const std::vector<double>& diagonal() const { return diag_; }

  /// Float inverse diagonal for the FP32 Jacobi preconditioner (DESIGN.md
  /// "Precision policy"): one float multiply replaces a double divide per
  /// dof.  Demoted once from diagonal() at construction.
  [[nodiscard]] const std::vector<float>& inv_diagonal_f32() const {
    return inv_diag32_;
  }

  [[nodiscard]] const Space& space() const { return *space_; }
  [[nodiscard]] const std::vector<double>& mask() const { return mask_; }
  [[nodiscard]] double h1() const { return h1_; }
  [[nodiscard]] double h2() const { return h2_; }

 private:
  const Space* space_;
  double h1_, h2_;
  std::vector<double> mask_;
  std::vector<double> diag_;
  std::vector<float> inv_diag32_;
  mutable TensorWork work_;
};

struct HelmholtzSolveOptions {
  double tol = 1e-9;  ///< relative to the initial residual
  int max_iter = 4000;
  /// Start CG from zero instead of the previous solution in `out` — the
  /// resilience layer's first escalation when a warm start went bad.
  bool zero_guess = false;
  /// Precision of the Jacobi preconditioner application (the CG iteration
  /// itself stays FP64).  Defaults from TSEM_PRECOND_FP32; under Fp32 the
  /// iterate path shifts within the convergence-contract bounds
  /// (tests/convergence_contract.hpp), so it is off wherever bitwise
  /// reproducibility is required.
  PrecondPrecision precond_precision = precond_precision_from_env();
};

/// Persistent buffers for helmholtz_solve: the Dirichlet lift, assembled
/// rhs, operator scratch, CG iterate and the Krylov vectors.  Callers
/// that solve every time step hold one so steady-state solves never touch
/// the allocator.  Kept OUTSIDE the TensorWork arena on purpose: the
/// solve passes that arena down into apply_helmholtz_local, which would
/// clobber any slab the solve itself had claimed (see workspace.hpp).
struct HelmholtzSolveScratch {
  std::vector<double> ub, b, t, x;
  CgScratch cg;
  // Per-field buffers for helmholtz_solve_multi (kept separate from the
  // single-field members so mixing both entry points on one scratch is
  // safe).
  std::vector<std::vector<double>> mub, mb, mt, mx;
  std::vector<CgScratch> mcg;
};

/// Dirichlet-lifted Jacobi-PCG solve of H u = rhs_weak on the operator's
/// masked C0 space.  `bcvals` carries the Dirichlet values (read where the
/// operator's mask is 0); `rhs_weak` is the unassembled weak-form rhs;
/// `out` holds the previous solution on entry (warm start unless
/// zero_guess) and the solution on return.  The returned CgResult carries
/// the SolveStatus the time stepper's recovery policy keys on; on a
/// NonFinite/Breakdown exit `out` is left untouched.  Pass a persistent
/// `scratch` to make repeated solves allocation-free.
CgResult helmholtz_solve(const HelmholtzOp& h,
                         const std::vector<double>& bcvals,
                         const std::vector<double>& rhs_weak,
                         std::vector<double>& out,
                         const HelmholtzSolveOptions& opt, TensorWork& work,
                         HelmholtzSolveScratch* scratch = nullptr);

/// Field cap for helmholtz_solve_multi (stack-sized pointer arrays).
inline constexpr int kMaxSolveFields = 8;

/// Lockstep multi-field variant of helmholtz_solve: nf independent
/// right-hand sides of the SAME operator are solved in one CG loop whose
/// operator applies are fused (apply_multi), so the element data streams
/// once per iteration for all fields instead of once per field.
///
/// Each field runs its own CG recurrence (its own alpha/beta/dots) and
/// drops out of the fused apply the moment it exits, so per-field iterates,
/// iteration counts and statuses are bitwise identical to nf sequential
/// helmholtz_solve calls.  results[0..nf-1] receives each field's CgResult.
///
/// Commit semantics mirror a sequential loop that stops at the first
/// failure (failed = hard failure, or MaxIter when maxiter_is_failure):
/// out[f] is committed in field order up to and including the first failed
/// field (hard-failed fields keep the caller's data, as in
/// helmholtz_solve), and fields after it are left untouched.  Returns the
/// index of the first failed field, or nf when every field succeeded.
int helmholtz_solve_multi(const HelmholtzOp& h,
                          const std::vector<double>* const* bcvals,
                          const std::vector<double>* const* rhs_weak,
                          std::vector<double>* const* out, int nf,
                          const HelmholtzSolveOptions& opt, TensorWork& work,
                          HelmholtzSolveScratch* scratch, CgResult* results,
                          bool maxiter_is_failure = false);

}  // namespace tsem
