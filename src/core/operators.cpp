#include "core/operators.hpp"

#include "common/check.hpp"
#include "poly/basis1d.hpp"

namespace tsem {
namespace {

void stiffness_elem_2d(const Basis1D& b, const double* g, std::size_t nl,
                       std::size_t off, int npe, const double* u, double* w,
                       double* ur, double* us, double* t) {
  const int n1 = b.npts();
  tensor2_apply_x(b.d.data(), n1, n1, u, ur);
  tensor2_apply_y(b.d.data(), n1, n1, u, us);
  const double* grr = g + 0 * nl + off;
  const double* grs = g + 1 * nl + off;
  const double* gss = g + 2 * nl + off;
  for (int n = 0; n < npe; ++n) {
    const double wr = grr[n] * ur[n] + grs[n] * us[n];
    const double ws = grs[n] * ur[n] + gss[n] * us[n];
    ur[n] = wr;
    us[n] = ws;
  }
  tensor2_apply_x(b.dt.data(), n1, n1, ur, w);
  tensor2_apply_y(b.dt.data(), n1, n1, us, t);
  for (int n = 0; n < npe; ++n) w[n] += t[n];
}

void stiffness_elem_3d(const Basis1D& b, const double* g, std::size_t nl,
                       std::size_t off, int npe, const double* u, double* w,
                       double* ur, double* us, double* ut, double* t) {
  const int n1 = b.npts();
  tensor3_apply_x(b.d.data(), n1, n1, n1, u, ur);
  tensor3_apply_y(b.d.data(), n1, n1, n1, u, us);
  tensor3_apply_z(b.d.data(), n1, n1, n1, u, ut);
  const double* grr = g + 0 * nl + off;
  const double* grs = g + 1 * nl + off;
  const double* grt = g + 2 * nl + off;
  const double* gss = g + 3 * nl + off;
  const double* gst = g + 4 * nl + off;
  const double* gtt = g + 5 * nl + off;
  for (int n = 0; n < npe; ++n) {
    const double wr = grr[n] * ur[n] + grs[n] * us[n] + grt[n] * ut[n];
    const double ws = grs[n] * ur[n] + gss[n] * us[n] + gst[n] * ut[n];
    const double wt = grt[n] * ur[n] + gst[n] * us[n] + gtt[n] * ut[n];
    ur[n] = wr;
    us[n] = ws;
    ut[n] = wt;
  }
  tensor3_apply_x(b.dt.data(), n1, n1, n1, ur, w);
  tensor3_apply_y(b.dt.data(), n1, n1, n1, us, t);
  for (int n = 0; n < npe; ++n) w[n] += t[n];
  tensor3_apply_z(b.dt.data(), n1, n1, n1, ut, t);
  for (int n = 0; n < npe; ++n) w[n] += t[n];
}

// Fused stiffness element kernels: derivative applies per field with hot
// D matrices, then ONE pointwise pass that loads each G factor once and
// serves every field.  Per-field expressions match stiffness_elem_* so
// results are bitwise identical to per-field calls.
void stiffness_elem_2d_multi(const Basis1D& b, const double* g,
                             std::size_t nl, std::size_t off, int npe,
                             const double* const* u, double* const* w,
                             int nfc, double* slab) {
  const int n1 = b.npts();
  double* ur = slab;                                      // nfc * npe
  double* us = slab + static_cast<std::size_t>(nfc) * npe;  // nfc * npe
  double* t = us + static_cast<std::size_t>(nfc) * npe;     // npe
  for (int f = 0; f < nfc; ++f) {
    tensor2_apply_x(b.d.data(), n1, n1, u[f] + off, ur + f * npe);
    tensor2_apply_y(b.d.data(), n1, n1, u[f] + off, us + f * npe);
  }
  const double* grr = g + 0 * nl + off;
  const double* grs = g + 1 * nl + off;
  const double* gss = g + 2 * nl + off;
  for (int n = 0; n < npe; ++n) {
    const double vrr = grr[n], vrs = grs[n], vss = gss[n];
    for (int f = 0; f < nfc; ++f) {
      double* urf = ur + f * npe;
      double* usf = us + f * npe;
      const double wr = vrr * urf[n] + vrs * usf[n];
      const double ws = vrs * urf[n] + vss * usf[n];
      urf[n] = wr;
      usf[n] = ws;
    }
  }
  for (int f = 0; f < nfc; ++f) {
    tensor2_apply_x(b.dt.data(), n1, n1, ur + f * npe, w[f] + off);
    tensor2_apply_y(b.dt.data(), n1, n1, us + f * npe, t);
    double* wf = w[f] + off;
    for (int n = 0; n < npe; ++n) wf[n] += t[n];
  }
}

void stiffness_elem_3d_multi(const Basis1D& b, const double* g,
                             std::size_t nl, std::size_t off, int npe,
                             const double* const* u, double* const* w,
                             int nfc, double* slab) {
  const int n1 = b.npts();
  double* ur = slab;
  double* us = slab + static_cast<std::size_t>(nfc) * npe;
  double* ut = us + static_cast<std::size_t>(nfc) * npe;
  double* t = ut + static_cast<std::size_t>(nfc) * npe;  // npe
  for (int f = 0; f < nfc; ++f) {
    tensor3_apply_x(b.d.data(), n1, n1, n1, u[f] + off, ur + f * npe);
    tensor3_apply_y(b.d.data(), n1, n1, n1, u[f] + off, us + f * npe);
    tensor3_apply_z(b.d.data(), n1, n1, n1, u[f] + off, ut + f * npe);
  }
  const double* grr = g + 0 * nl + off;
  const double* grs = g + 1 * nl + off;
  const double* grt = g + 2 * nl + off;
  const double* gss = g + 3 * nl + off;
  const double* gst = g + 4 * nl + off;
  const double* gtt = g + 5 * nl + off;
  for (int n = 0; n < npe; ++n) {
    const double vrr = grr[n], vrs = grs[n], vrt = grt[n];
    const double vss = gss[n], vst = gst[n], vtt = gtt[n];
    for (int f = 0; f < nfc; ++f) {
      double* urf = ur + f * npe;
      double* usf = us + f * npe;
      double* utf = ut + f * npe;
      const double wr = vrr * urf[n] + vrs * usf[n] + vrt * utf[n];
      const double ws = vrs * urf[n] + vss * usf[n] + vst * utf[n];
      const double wt = vrt * urf[n] + vst * usf[n] + vtt * utf[n];
      urf[n] = wr;
      usf[n] = ws;
      utf[n] = wt;
    }
  }
  for (int f = 0; f < nfc; ++f) {
    double* wf = w[f] + off;
    tensor3_apply_x(b.dt.data(), n1, n1, n1, ur + f * npe, wf);
    tensor3_apply_y(b.dt.data(), n1, n1, n1, us + f * npe, t);
    for (int n = 0; n < npe; ++n) wf[n] += t[n];
    tensor3_apply_z(b.dt.data(), n1, n1, n1, ut + f * npe, t);
    for (int n = 0; n < npe; ++n) wf[n] += t[n];
  }
}

}  // namespace

void apply_stiffness_local(const Mesh& m, const double* u, double* w,
                           TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const std::size_t nl = m.nlocal();
  const int npe = m.npe;
  // Each element writes only its own [off, off + npe) block and reads
  // per-thread arena scratch, so the static schedule is deterministic and
  // bitwise thread-count independent.
  if (m.dim == 2) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      double* priv = work.get(3 * static_cast<std::size_t>(npe));
      const std::size_t off = static_cast<std::size_t>(e) * npe;
      stiffness_elem_2d(b, m.g.data(), nl, off, npe, u + off, w + off, priv,
                        priv + npe, priv + 2 * static_cast<std::size_t>(npe));
    }
  } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      double* priv = work.get(4 * static_cast<std::size_t>(npe));
      const std::size_t off = static_cast<std::size_t>(e) * npe;
      stiffness_elem_3d(b, m.g.data(), nl, off, npe, u + off, w + off, priv,
                        priv + npe, priv + 2 * static_cast<std::size_t>(npe),
                        priv + 3 * static_cast<std::size_t>(npe));
    }
  }
}

void apply_helmholtz_local(const Mesh& m, double h1, double h2,
                           const double* u, double* w, TensorWork& work) {
  apply_stiffness_local(m, u, w, work);
  const std::size_t nl = m.nlocal();
  for (std::size_t i = 0; i < nl; ++i) w[i] = h1 * w[i] + h2 * m.bm[i] * u[i];
}

void apply_stiffness_local_elems(const Mesh& m, const std::int32_t* elems,
                                 const std::int32_t* blk, std::size_t nelems,
                                 const double* u, double* w,
                                 TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const std::size_t nl = m.nlocal();
  const int npe = m.npe;
  // Serial by contract (header): the fork-safe mp entry point.  The
  // element kernels take the metric offset and the field pointers
  // separately, which is what lets a packed rank-local field ride the
  // global mesh geometry.
  if (m.dim == 2) {
    double* priv = work.get(3 * static_cast<std::size_t>(npe));
    for (std::size_t i = 0; i < nelems; ++i) {
      const std::size_t goff =
          static_cast<std::size_t>(elems[i]) * static_cast<std::size_t>(npe);
      const std::size_t foff =
          static_cast<std::size_t>(blk ? blk[i] : elems[i]) *
          static_cast<std::size_t>(npe);
      stiffness_elem_2d(b, m.g.data(), nl, goff, npe, u + foff, w + foff,
                        priv, priv + npe,
                        priv + 2 * static_cast<std::size_t>(npe));
    }
  } else {
    double* priv = work.get(4 * static_cast<std::size_t>(npe));
    for (std::size_t i = 0; i < nelems; ++i) {
      const std::size_t goff =
          static_cast<std::size_t>(elems[i]) * static_cast<std::size_t>(npe);
      const std::size_t foff =
          static_cast<std::size_t>(blk ? blk[i] : elems[i]) *
          static_cast<std::size_t>(npe);
      stiffness_elem_3d(b, m.g.data(), nl, goff, npe, u + foff, w + foff,
                        priv, priv + npe,
                        priv + 2 * static_cast<std::size_t>(npe),
                        priv + 3 * static_cast<std::size_t>(npe));
    }
  }
}

void apply_helmholtz_local_elems(const Mesh& m, double h1, double h2,
                                 const std::int32_t* elems,
                                 const std::int32_t* blk, std::size_t nelems,
                                 const double* u, double* w,
                                 TensorWork& work) {
  apply_stiffness_local_elems(m, elems, blk, nelems, u, w, work);
  const int npe = m.npe;
  for (std::size_t i = 0; i < nelems; ++i) {
    const double* bm = m.bm.data() + static_cast<std::size_t>(elems[i]) *
                                         static_cast<std::size_t>(npe);
    const std::size_t foff =
        static_cast<std::size_t>(blk ? blk[i] : elems[i]) *
        static_cast<std::size_t>(npe);
    for (int n = 0; n < npe; ++n)
      w[foff + n] = h1 * w[foff + n] + h2 * bm[n] * u[foff + n];
  }
}

std::vector<double> stiffness_diagonal_local(const Mesh& m) {
  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  const std::size_t nl = m.nlocal();
  std::vector<double> diag(nl, 0.0);
  // Column c of D-hat squared, summed against the G factors along the
  // active direction; cross terms hit only the node itself (see the
  // derivation in DESIGN.md / standard SEM references).
  std::vector<double> d2(static_cast<std::size_t>(n1) * n1);
  for (int q = 0; q < n1; ++q)
    for (int a = 0; a < n1; ++a) d2[q * n1 + a] = b.d[q * n1 + a] * b.d[q * n1 + a];

  if (m.dim == 2) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * m.npe;
      const double* grr = m.g.data() + 0 * nl + off;
      const double* grs = m.g.data() + 1 * nl + off;
      const double* gss = m.g.data() + 2 * nl + off;
      for (int bb = 0; bb < n1; ++bb)
        for (int a = 0; a < n1; ++a) {
          double s = 0.0;
          for (int q = 0; q < n1; ++q) {
            s += d2[q * n1 + a] * grr[bb * n1 + q];
            s += d2[q * n1 + bb] * gss[q * n1 + a];
          }
          s += 2.0 * b.d[a * n1 + a] * b.d[bb * n1 + bb] * grs[bb * n1 + a];
          diag[off + bb * n1 + a] = s;
        }
    }
  } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * m.npe;
      const double* g0 = m.g.data() + 0 * nl + off;
      const double* g1 = m.g.data() + 1 * nl + off;
      const double* g2 = m.g.data() + 2 * nl + off;
      const double* g3 = m.g.data() + 3 * nl + off;
      const double* g4 = m.g.data() + 4 * nl + off;
      const double* g5 = m.g.data() + 5 * nl + off;
      for (int c = 0; c < n1; ++c)
        for (int bb = 0; bb < n1; ++bb)
          for (int a = 0; a < n1; ++a) {
            double s = 0.0;
            for (int q = 0; q < n1; ++q) {
              s += d2[q * n1 + a] * g0[(c * n1 + bb) * n1 + q];
              s += d2[q * n1 + bb] * g3[(c * n1 + q) * n1 + a];
              s += d2[q * n1 + c] * g5[(q * n1 + bb) * n1 + a];
            }
            const int n = (c * n1 + bb) * n1 + a;
            s += 2.0 * b.d[a * n1 + a] * b.d[bb * n1 + bb] * g1[n];
            s += 2.0 * b.d[a * n1 + a] * b.d[c * n1 + c] * g2[n];
            s += 2.0 * b.d[bb * n1 + bb] * b.d[c * n1 + c] * g4[n];
            diag[off + n] = s;
          }
    }
  }
  return diag;
}

void gradient_local(const Mesh& m, const double* u, double* const* grad,
                    TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  const int npe = m.npe;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    double* buf = work.get(3 * static_cast<std::size_t>(npe));
    double* ur = buf;
    double* us = buf + npe;
    double* ut = buf + 2 * static_cast<std::size_t>(npe);
    const std::size_t off = static_cast<std::size_t>(e) * npe;
    if (m.dim == 2) {
      tensor2_apply_x(b.d.data(), n1, n1, u + off, ur);
      tensor2_apply_y(b.d.data(), n1, n1, u + off, us);
      const double* rx = m.metric(0, 0) + off;
      const double* ry = m.metric(0, 1) + off;
      const double* sx = m.metric(1, 0) + off;
      const double* sy = m.metric(1, 1) + off;
      for (int n = 0; n < npe; ++n) {
        grad[0][off + n] = rx[n] * ur[n] + sx[n] * us[n];
        grad[1][off + n] = ry[n] * ur[n] + sy[n] * us[n];
      }
    } else {
      tensor3_apply_x(b.d.data(), n1, n1, n1, u + off, ur);
      tensor3_apply_y(b.d.data(), n1, n1, n1, u + off, us);
      tensor3_apply_z(b.d.data(), n1, n1, n1, u + off, ut);
      for (int c = 0; c < 3; ++c) {
        const double* rc = m.metric(0, c) + off;
        const double* sc = m.metric(1, c) + off;
        const double* tc = m.metric(2, c) + off;
        double* gc = grad[c] + off;
        for (int n = 0; n < npe; ++n)
          gc[n] = rc[n] * ur[n] + sc[n] * us[n] + tc[n] * ut[n];
      }
    }
  }
}

void convect_local(const Mesh& m, const double* const* vel, const double* u,
                   double* conv, TensorWork& work) {
  // Fused gradient + dot product: the reference derivatives stay in the
  // element-sized thread slab and the chain rule feeds the velocity dot
  // product directly, instead of materializing dim nlocal-length gradient
  // fields (3 full-field round trips through memory per call).
  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  const int npe = m.npe;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    double* buf = work.get(3 * static_cast<std::size_t>(npe));
    double* ur = buf;
    double* us = buf + npe;
    double* ut = buf + 2 * static_cast<std::size_t>(npe);
    const std::size_t off = static_cast<std::size_t>(e) * npe;
    if (m.dim == 2) {
      tensor2_apply_x(b.d.data(), n1, n1, u + off, ur);
      tensor2_apply_y(b.d.data(), n1, n1, u + off, us);
      const double* rx = m.metric(0, 0) + off;
      const double* ry = m.metric(0, 1) + off;
      const double* sx = m.metric(1, 0) + off;
      const double* sy = m.metric(1, 1) + off;
      const double* v0 = vel[0] + off;
      const double* v1 = vel[1] + off;
      for (int n = 0; n < npe; ++n) {
        const double gx = rx[n] * ur[n] + sx[n] * us[n];
        const double gy = ry[n] * ur[n] + sy[n] * us[n];
        conv[off + n] = v0[n] * gx + v1[n] * gy;
      }
    } else {
      tensor3_apply_x(b.d.data(), n1, n1, n1, u + off, ur);
      tensor3_apply_y(b.d.data(), n1, n1, n1, u + off, us);
      tensor3_apply_z(b.d.data(), n1, n1, n1, u + off, ut);
      const double* v0 = vel[0] + off;
      const double* v1 = vel[1] + off;
      const double* v2 = vel[2] + off;
      const double* rx = m.metric(0, 0) + off;
      const double* sx = m.metric(1, 0) + off;
      const double* tx = m.metric(2, 0) + off;
      const double* ry = m.metric(0, 1) + off;
      const double* sy = m.metric(1, 1) + off;
      const double* ty = m.metric(2, 1) + off;
      const double* rz = m.metric(0, 2) + off;
      const double* sz = m.metric(1, 2) + off;
      const double* tz = m.metric(2, 2) + off;
      for (int n = 0; n < npe; ++n) {
        const double gx = rx[n] * ur[n] + sx[n] * us[n] + tx[n] * ut[n];
        const double gy = ry[n] * ur[n] + sy[n] * us[n] + ty[n] * ut[n];
        const double gz = rz[n] * ur[n] + sz[n] * us[n] + tz[n] * ut[n];
        conv[off + n] = v0[n] * gx + v1[n] * gy + v2[n] * gz;
      }
    }
  }
}

void apply_filter_local(const Mesh& m, const std::vector<double>& f,
                        double* u, TensorWork& work) {
  const int n1 = m.n1d();
  const int npe = m.npe;
  TSEM_REQUIRE(static_cast<int>(f.size()) == n1 * n1);
  // One fetch serves both branches: the 3D path needs
  // nz*ny*mx + nz*my*mx = 2*npe of scratch plus npe for the result, the
  // 2D path npe + npe.  Fetched inside the loop because each thread needs
  // its own slab; work.get keeps the pointer stable per thread, so the
  // per-element cost is an index load and a size check.
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    double* buf = work.get(3 * static_cast<std::size_t>(npe));
    const std::size_t off = static_cast<std::size_t>(e) * npe;
    if (m.dim == 2) {
      tensor2_apply(f.data(), n1, n1, f.data(), n1, n1, u + off, buf + npe,
                    buf);
      for (int n = 0; n < npe; ++n) u[off + n] = buf[npe + n];
    } else {
      tensor3_apply(f.data(), n1, n1, f.data(), n1, n1, f.data(), n1, n1,
                    u + off, buf + 2 * static_cast<std::size_t>(npe), buf);
      for (int n = 0; n < npe; ++n)
        u[off + n] = buf[2 * static_cast<std::size_t>(npe) + n];
    }
  }
}

void apply_stiffness_local_multi(const Mesh& m, const double* const* u,
                                 double* const* w, int nf, TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const std::size_t nl = m.nlocal();
  const int npe = m.npe;
  const int dslabs = m.dim;  // derivative buffers per field
  for (int f0 = 0; f0 < nf; f0 += kMaxFusedFields) {
    const int nfc = std::min(nf - f0, kMaxFusedFields);
    const double* const* uc = u + f0;
    double* const* wc = w + f0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      double* slab = work.get(
          (static_cast<std::size_t>(dslabs) * nfc + 1) * npe);
      const std::size_t off = static_cast<std::size_t>(e) * npe;
      if (m.dim == 2)
        stiffness_elem_2d_multi(b, m.g.data(), nl, off, npe, uc, wc, nfc,
                                slab);
      else
        stiffness_elem_3d_multi(b, m.g.data(), nl, off, npe, uc, wc, nfc,
                                slab);
    }
  }
}

void apply_helmholtz_local_multi(const Mesh& m, double h1, double h2,
                                 const double* const* u, double* const* w,
                                 int nf, TensorWork& work) {
  apply_stiffness_local_multi(m, u, w, nf, work);
  const std::size_t nl = m.nlocal();
  // One pass over the mass matrix serves every field.
  for (std::size_t i = 0; i < nl; ++i) {
    const double bmv = h2 * m.bm[i];
    for (int f = 0; f < nf; ++f) w[f][i] = h1 * w[f][i] + bmv * u[f][i];
  }
}

void gradient_local_multi(const Mesh& m, const double* const* u,
                          double* const* grad, int nf, TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  const int npe = m.npe;
  for (int f0 = 0; f0 < nf; f0 += kMaxFusedFields) {
    const int nfc = std::min(nf - f0, kMaxFusedFields);
    const double* const* uc = u + f0;
    double* const* gc = grad + static_cast<std::size_t>(f0) * m.dim;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      double* slab =
          work.get(3 * static_cast<std::size_t>(nfc) * npe);
      double* ur = slab;
      double* us = slab + static_cast<std::size_t>(nfc) * npe;
      double* ut = us + static_cast<std::size_t>(nfc) * npe;
      const std::size_t off = static_cast<std::size_t>(e) * npe;
      if (m.dim == 2) {
        for (int f = 0; f < nfc; ++f) {
          tensor2_apply_x(b.d.data(), n1, n1, uc[f] + off, ur + f * npe);
          tensor2_apply_y(b.d.data(), n1, n1, uc[f] + off, us + f * npe);
        }
        const double* rx = m.metric(0, 0) + off;
        const double* ry = m.metric(0, 1) + off;
        const double* sx = m.metric(1, 0) + off;
        const double* sy = m.metric(1, 1) + off;
        for (int n = 0; n < npe; ++n) {
          const double vrx = rx[n], vry = ry[n], vsx = sx[n], vsy = sy[n];
          for (int f = 0; f < nfc; ++f) {
            const double urn = ur[f * npe + n], usn = us[f * npe + n];
            gc[f * 2 + 0][off + n] = vrx * urn + vsx * usn;
            gc[f * 2 + 1][off + n] = vry * urn + vsy * usn;
          }
        }
      } else {
        for (int f = 0; f < nfc; ++f) {
          tensor3_apply_x(b.d.data(), n1, n1, n1, uc[f] + off, ur + f * npe);
          tensor3_apply_y(b.d.data(), n1, n1, n1, uc[f] + off, us + f * npe);
          tensor3_apply_z(b.d.data(), n1, n1, n1, uc[f] + off, ut + f * npe);
        }
        for (int c = 0; c < 3; ++c) {
          const double* rc = m.metric(0, c) + off;
          const double* sc = m.metric(1, c) + off;
          const double* tc = m.metric(2, c) + off;
          for (int n = 0; n < npe; ++n) {
            const double vr = rc[n], vs = sc[n], vt = tc[n];
            for (int f = 0; f < nfc; ++f)
              gc[f * 3 + c][off + n] = vr * ur[f * npe + n] +
                                       vs * us[f * npe + n] +
                                       vt * ut[f * npe + n];
          }
        }
      }
    }
  }
}

void convect_local_multi(const Mesh& m, const double* const* vel,
                         const double* const* u, double* const* conv, int nf,
                         TensorWork& work) {
  const auto& b = Basis1D::get(m.order);
  const int n1 = b.npts();
  const int npe = m.npe;
  for (int f0 = 0; f0 < nf; f0 += kMaxFusedFields) {
    const int nfc = std::min(nf - f0, kMaxFusedFields);
    const double* const* uc = u + f0;
    double* const* cc = conv + f0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int e = 0; e < m.nelem; ++e) {
      double* slab =
          work.get(3 * static_cast<std::size_t>(nfc) * npe);
      double* ur = slab;
      double* us = slab + static_cast<std::size_t>(nfc) * npe;
      double* ut = us + static_cast<std::size_t>(nfc) * npe;
      const std::size_t off = static_cast<std::size_t>(e) * npe;
      if (m.dim == 2) {
        for (int f = 0; f < nfc; ++f) {
          tensor2_apply_x(b.d.data(), n1, n1, uc[f] + off, ur + f * npe);
          tensor2_apply_y(b.d.data(), n1, n1, uc[f] + off, us + f * npe);
        }
        const double* rx = m.metric(0, 0) + off;
        const double* ry = m.metric(0, 1) + off;
        const double* sx = m.metric(1, 0) + off;
        const double* sy = m.metric(1, 1) + off;
        const double* v0 = vel[0] + off;
        const double* v1 = vel[1] + off;
        for (int n = 0; n < npe; ++n) {
          const double vrx = rx[n], vry = ry[n], vsx = sx[n], vsy = sy[n];
          const double w0 = v0[n], w1 = v1[n];
          for (int f = 0; f < nfc; ++f) {
            const double urn = ur[f * npe + n], usn = us[f * npe + n];
            const double gx = vrx * urn + vsx * usn;
            const double gy = vry * urn + vsy * usn;
            cc[f][off + n] = w0 * gx + w1 * gy;
          }
        }
      } else {
        for (int f = 0; f < nfc; ++f) {
          tensor3_apply_x(b.d.data(), n1, n1, n1, uc[f] + off, ur + f * npe);
          tensor3_apply_y(b.d.data(), n1, n1, n1, uc[f] + off, us + f * npe);
          tensor3_apply_z(b.d.data(), n1, n1, n1, uc[f] + off, ut + f * npe);
        }
        const double* v0 = vel[0] + off;
        const double* v1 = vel[1] + off;
        const double* v2 = vel[2] + off;
        const double* rx = m.metric(0, 0) + off;
        const double* sx = m.metric(1, 0) + off;
        const double* tx = m.metric(2, 0) + off;
        const double* ry = m.metric(0, 1) + off;
        const double* sy = m.metric(1, 1) + off;
        const double* ty = m.metric(2, 1) + off;
        const double* rz = m.metric(0, 2) + off;
        const double* sz = m.metric(1, 2) + off;
        const double* tz = m.metric(2, 2) + off;
        for (int n = 0; n < npe; ++n) {
          const double w0 = v0[n], w1 = v1[n], w2 = v2[n];
          for (int f = 0; f < nfc; ++f) {
            const double urn = ur[f * npe + n];
            const double usn = us[f * npe + n];
            const double utn = ut[f * npe + n];
            const double gx = rx[n] * urn + sx[n] * usn + tx[n] * utn;
            const double gy = ry[n] * urn + sy[n] * usn + ty[n] * utn;
            const double gz = rz[n] * urn + sz[n] * usn + tz[n] * utn;
            cc[f][off + n] = w0 * gx + w1 * gy + w2 * gz;
          }
        }
      }
    }
  }
}

void apply_filter_local_multi(const Mesh& m, const std::vector<double>& f,
                              double* const* u, int nf, TensorWork& work) {
  const int n1 = m.n1d();
  const int npe = m.npe;
  TSEM_REQUIRE(static_cast<int>(f.size()) == n1 * n1);
  // The filter matrix stays register/cache hot across the fields of one
  // element; the scratch slab is reused serially per field, so it does not
  // scale with nf.
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    double* buf = work.get(3 * static_cast<std::size_t>(npe));
    const std::size_t off = static_cast<std::size_t>(e) * npe;
    for (int ff = 0; ff < nf; ++ff) {
      if (m.dim == 2) {
        tensor2_apply(f.data(), n1, n1, f.data(), n1, n1, u[ff] + off,
                      buf + npe, buf);
        for (int n = 0; n < npe; ++n) u[ff][off + n] = buf[npe + n];
      } else {
        tensor3_apply(f.data(), n1, n1, f.data(), n1, n1, f.data(), n1, n1,
                      u[ff] + off, buf + 2 * static_cast<std::size_t>(npe),
                      buf);
        for (int n = 0; n < npe; ++n)
          u[ff][off + n] = buf[2 * static_cast<std::size_t>(npe) + n];
      }
    }
  }
}

double stiffness_flops(const Mesh& m) {
  const double n = m.order;
  if (m.dim == 3)
    return m.nelem * (12.0 * n * n * n * n + 15.0 * n * n * n);
  return m.nelem * (8.0 * n * n * n + 8.0 * n * n);
}

}  // namespace tsem
