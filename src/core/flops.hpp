// Modeled flop counts for the performance studies (Fig 8, Table 4).
//
// The paper instruments the code and reads hardware counters; we model
// the dominant kernels analytically (the two agree within a few percent
// for tensor-product codes since >90% of flops are in the mxm kernels).
#pragma once

#include "core/pressure.hpp"
#include "mesh/mesh.hpp"

namespace tsem {

/// Cost of one (m x n) x (n x n x ...) tensor-product application in d
/// dims: 2 m n^d + 2 m^2 n^(d-1) + ... (successive contractions).
inline double tensor_apply_flops(int m, int n, int d) {
  double f = 0.0;
  double pre = 1.0;   // product of already-contracted output extents
  double post = 1.0;  // product of not-yet-contracted input extents
  for (int i = 0; i < d - 1; ++i) post *= n;
  for (int i = 0; i < d; ++i) {
    f += 2.0 * m * n * pre * post;
    pre *= m;
    if (i < d - 1) post /= n;
  }
  return f;
}

/// One local convection evaluation (u.grad)v over the mesh.
inline double convection_flops(const Mesh& m) {
  const int n1 = m.order + 1;
  const double per_elem =
      m.dim * tensor_apply_flops(n1, n1, 1) * m.npe / n1  // derivatives
      + (2.0 * m.dim * m.dim + 2.0 * m.dim) * m.npe;      // chain rule + dot
  return per_elem * m.nelem;
}

/// One application of E = D B^{-1} D^T.
inline double e_apply_flops(const PressureSystem& p) {
  const Mesh& m = p.vspace().mesh();
  const int n1 = m.order + 1;
  const int ng = p.ng1();
  // gradient_t + divergence: dim^2 mixed tensor applies each.
  const double ta = tensor_apply_flops(ng, n1, m.dim);
  return m.nelem * (2.0 * m.dim * m.dim * (ta + 2.0 * p.npe())) +
         3.0 * m.nlocal();
}

}  // namespace tsem
