// A spectral element function space: mesh + C0 connectivity + boundary
// masks.  This is the object user code builds first; operators and
// solvers are constructed on top of it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "mesh/mesh.hpp"

namespace tsem {

class Space {
 public:
  explicit Space(Mesh mesh);

  /// Setup-cache replay (DESIGN.md "Setup cache"): adopt a finished
  /// connectivity instead of re-sorting every local node id.  gs must be
  /// the gather-scatter of exactly this mesh's node_id (the builder
  /// serialized it from a shape-identical Space); nlocal is required to
  /// match, everything else is the caller's contract.
  Space(Mesh mesh, GatherScatter gs);

  [[nodiscard]] const Mesh& mesh() const { return mesh_; }
  [[nodiscard]] const GatherScatter& gs() const { return gs_; }
  [[nodiscard]] std::size_t nlocal() const { return mesh_.nlocal(); }

  /// Direct stiffness summation: shared nodes are summed (Q Q^T).
  void dssum(double* u) const { gs_.op(u); }

  /// Make a C0 field: dssum followed by division by multiplicity.
  void daverage(double* u) const;

  /// Node multiplicity (copies across elements).
  [[nodiscard]] const std::vector<double>& mult() const { return mult_; }

  /// Assembled (dssum'd) diagonal mass matrix, stored redundantly on every
  /// local copy; and its inverse.
  [[nodiscard]] const std::vector<double>& bm_assembled() const {
    return bma_;
  }
  [[nodiscard]] const std::vector<double>& bm_inv() const { return bmi_; }

  /// Dirichlet mask for the given set of boundary tags: 0 at nodes lying
  /// on any face whose tag is in the set, 1 elsewhere.
  [[nodiscard]] std::vector<double> make_mask(std::uint32_t tag_bits) const;

  /// Integral of a field over the domain (sum bm * u counting each global
  /// node once).
  [[nodiscard]] double integrate(const double* u) const;
  /// Domain volume/area.
  [[nodiscard]] double volume() const { return volume_; }

  /// Global (assembled) inner products: each shared node counted once.
  [[nodiscard]] double glsum_dot(const double* u, const double* v) const;
  [[nodiscard]] double l2_norm(const double* u) const;

 private:
  void init_derived();

  Mesh mesh_;
  GatherScatter gs_;
  std::vector<double> mult_;
  std::vector<double> bma_;
  std::vector<double> bmi_;
  double volume_ = 0.0;
};

}  // namespace tsem
