// Matrix-free element-local operator kernels (paper §3).
//
// All kernels operate on the element-by-element storage and do NOT
// perform assembly; callers compose them with Space::dssum and masks to
// obtain the global SPD operators (see helmholtz.hpp, pressure.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

/// w = A_L u : the unassembled stiffness (discrete Laplacian) of eq. (4),
///   A^k = (D_r D_s D_t)^T [G_ij] (D_r D_s D_t),
/// evaluated as 2d tensor contractions + pointwise work per element.
void apply_stiffness_local(const Mesh& m, const double* u, double* w,
                           TensorWork& work);

/// w = h1 * A_L u + h2 * B_L u (local Helmholtz).
void apply_helmholtz_local(const Mesh& m, double h1, double h2,
                           const double* u, double* w, TensorWork& work);

// ---------------------------------------------------------------------------
// Element-list variants (DESIGN.md "Overlap protocol").
//
// Apply the same per-element kernels to an explicit list of elements:
// elems[i] names the mesh element whose geometry (metric factors, mass)
// is used, and blk[i] — when blk is non-null — gives the npe-sized block
// of that element in u and w.  Pass blk = nullptr when u/w are full
// element-major fields (blocks coincide with elems); pass rank-local
// block indices when u/w are packed rank-local fields (the mp executed
// tier's layout, a subsequence of the global element-major layout).
//
// The loops are SERIAL by design: these are the fork-safe entry points
// the mp rank processes drive their interior/boundary element sweeps
// through (mp/runtime.hpp's OpenMP caveat), and each element's
// arithmetic is expression-identical to the full kernels above — so a
// sweep over any disjoint element partition (e.g. interior then
// boundary) reproduces the full loop's result bitwise.

/// w blocks = A_L u blocks for the listed elements.
void apply_stiffness_local_elems(const Mesh& m, const std::int32_t* elems,
                                 const std::int32_t* blk, std::size_t nelems,
                                 const double* u, double* w,
                                 TensorWork& work);

/// w blocks = h1 * A_L u + h2 * B_L u for the listed elements.
void apply_helmholtz_local_elems(const Mesh& m, double h1, double h2,
                                 const std::int32_t* elems,
                                 const std::int32_t* blk, std::size_t nelems,
                                 const double* u, double* w,
                                 TensorWork& work);

/// Diagonal of the local stiffness matrix (for Jacobi preconditioning).
std::vector<double> stiffness_diagonal_local(const Mesh& m);

/// Physical-space gradient at the GLL nodes: for each direction c,
/// grad[c] = du/dx_c, via the chain rule with the stored metrics.
/// grad must point to dim arrays of length nlocal.
void gradient_local(const Mesh& m, const double* u, double* const* grad,
                    TensorWork& work);

/// conv = (vel . grad) u  evaluated pointwise at the GLL nodes
/// (collocation form); vel is an array of dim component fields.
void convect_local(const Mesh& m, const double* const* vel, const double* u,
                   double* conv, TensorWork& work);

/// Apply the 1D filter matrix f (built by filter_matrix) to every element
/// in every direction: u <- (F (x) F (x) F) u.
void apply_filter_local(const Mesh& m, const std::vector<double>& f,
                        double* u, TensorWork& work);

// ---------------------------------------------------------------------------
// Multi-field fused variants.
//
// The velocity step applies the same operator to several fields (three
// velocity components, plus scalars); the single-field kernels re-stream
// the derivative matrices, metric terms and G factors once per field.
// The *_multi variants below sweep all nf fields inside ONE element loop:
// the D matrices stay hot across fields and every metric/G factor is
// loaded once per node, not once per node per field.  Fields are
// processed in groups of kMaxFusedFields (arena sizing bound); each
// field's arithmetic is expression-for-expression identical to the
// single-field kernel, so per-field results are bitwise equal to nf
// separate calls.

inline constexpr int kMaxFusedFields = 8;

/// w[f] = A_L u[f] for f = 0..nf-1.
void apply_stiffness_local_multi(const Mesh& m, const double* const* u,
                                 double* const* w, int nf, TensorWork& work);

/// w[f] = h1 * A_L u[f] + h2 * B_L u[f].
void apply_helmholtz_local_multi(const Mesh& m, double h1, double h2,
                                 const double* const* u, double* const* w,
                                 int nf, TensorWork& work);

/// grad[f * dim + c] = d u[f] / dx_c  (nf scalar fields, dim components
/// each; the metric terms stream once across all fields).
void gradient_local_multi(const Mesh& m, const double* const* u,
                          double* const* grad, int nf, TensorWork& work);

/// conv[f] = (vel . grad) u[f] with ONE shared advecting velocity.
void convect_local_multi(const Mesh& m, const double* const* vel,
                         const double* const* u, double* const* conv, int nf,
                         TensorWork& work);

/// u[f] <- (F (x) F (x) F) u[f] for all fields (filter matrix hot across
/// fields).
void apply_filter_local_multi(const Mesh& m, const std::vector<double>& f,
                              double* const* u, int nf, TensorWork& work);

/// Flop count for one local stiffness application over the whole mesh
/// (paper §3: 12 N^4 + 15 N^3 per element in 3D) — used by the
/// performance model.
double stiffness_flops(const Mesh& m);

}  // namespace tsem
