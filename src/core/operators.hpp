// Matrix-free element-local operator kernels (paper §3).
//
// All kernels operate on the element-by-element storage and do NOT
// perform assembly; callers compose them with Space::dssum and masks to
// obtain the global SPD operators (see helmholtz.hpp, pressure.hpp).
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

/// w = A_L u : the unassembled stiffness (discrete Laplacian) of eq. (4),
///   A^k = (D_r D_s D_t)^T [G_ij] (D_r D_s D_t),
/// evaluated as 2d tensor contractions + pointwise work per element.
void apply_stiffness_local(const Mesh& m, const double* u, double* w,
                           TensorWork& work);

/// w = h1 * A_L u + h2 * B_L u (local Helmholtz).
void apply_helmholtz_local(const Mesh& m, double h1, double h2,
                           const double* u, double* w, TensorWork& work);

/// Diagonal of the local stiffness matrix (for Jacobi preconditioning).
std::vector<double> stiffness_diagonal_local(const Mesh& m);

/// Physical-space gradient at the GLL nodes: for each direction c,
/// grad[c] = du/dx_c, via the chain rule with the stored metrics.
/// grad must point to dim arrays of length nlocal.
void gradient_local(const Mesh& m, const double* u, double* const* grad,
                    TensorWork& work);

/// conv = (vel . grad) u  evaluated pointwise at the GLL nodes
/// (collocation form); vel is an array of dim component fields.
void convect_local(const Mesh& m, const double* const* vel, const double* u,
                   double* conv, TensorWork& work);

/// Apply the 1D filter matrix f (built by filter_matrix) to every element
/// in every direction: u <- (F (x) F (x) F) u.
void apply_filter_local(const Mesh& m, const std::vector<double>& f,
                        double* u, TensorWork& work);

/// Flop count for one local stiffness application over the whole mesh
/// (paper §3: 12 N^4 + 15 N^3 per element in 3D) — used by the
/// performance model.
double stiffness_flops(const Mesh& m);

}  // namespace tsem
