#include "core/helmholtz.hpp"

#include "common/check.hpp"
#include "core/operators.hpp"

namespace tsem {

HelmholtzOp::HelmholtzOp(const Space& space, double h1, double h2,
                         std::vector<double> mask)
    : space_(&space), h1_(h1), h2_(h2), mask_(std::move(mask)) {
  TSEM_REQUIRE(mask_.size() == space.nlocal());
  const auto& m = space.mesh();
  auto diag_a = stiffness_diagonal_local(m);
  diag_.resize(space.nlocal());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    diag_[i] = h1_ * diag_a[i] + h2_ * m.bm[i];
  space.gs().op(diag_.data());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    if (mask_[i] == 0.0) diag_[i] = 1.0;
}

void HelmholtzOp::apply(const double* u, double* w) const {
  apply_helmholtz_local(space_->mesh(), h1_, h2_, u, w, work_);
  space_->gs().op(w);
  for (std::size_t i = 0; i < mask_.size(); ++i) w[i] *= mask_[i];
}

}  // namespace tsem
