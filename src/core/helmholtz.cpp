#include "core/helmholtz.hpp"

#include "common/check.hpp"
#include "core/operators.hpp"
#include "obs/metrics.hpp"

namespace tsem {

HelmholtzOp::HelmholtzOp(const Space& space, double h1, double h2,
                         std::vector<double> mask)
    : space_(&space), h1_(h1), h2_(h2), mask_(std::move(mask)) {
  TSEM_REQUIRE(mask_.size() == space.nlocal());
  const auto& m = space.mesh();
  auto diag_a = stiffness_diagonal_local(m);
  diag_.resize(space.nlocal());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    diag_[i] = h1_ * diag_a[i] + h2_ * m.bm[i];
  space.gs().op(diag_.data());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    if (mask_[i] == 0.0) diag_[i] = 1.0;
}

void HelmholtzOp::apply(const double* u, double* w) const {
  apply_helmholtz_local(space_->mesh(), h1_, h2_, u, w, work_);
  space_->gs().op(w);
  for (std::size_t i = 0; i < mask_.size(); ++i) w[i] *= mask_[i];
}

CgResult helmholtz_solve(const HelmholtzOp& h,
                         const std::vector<double>& bcvals,
                         const std::vector<double>& rhs_weak,
                         std::vector<double>& out,
                         const HelmholtzSolveOptions& opt, TensorWork& work,
                         HelmholtzSolveScratch* scratch) {
  const obs::ScopedTimer timer("helmholtz/solve");
  const Space& space = h.space();
  const Mesh& m = space.mesh();
  const std::vector<double>& mask = h.mask();
  const std::size_t nl = space.nlocal();
  TSEM_REQUIRE(bcvals.size() == nl && rhs_weak.size() == nl &&
               out.size() == nl);

  HelmholtzSolveScratch local;
  HelmholtzSolveScratch& scr = scratch ? *scratch : local;
  if (scr.ub.size() < nl) {
    scr.ub.resize(nl);
    scr.b.resize(nl);
    scr.t.resize(nl);
    scr.x.resize(nl);
  }
  double* const ub = scr.ub.data();
  double* const b = scr.b.data();
  double* const t = scr.t.data();
  double* const x = scr.x.data();

  // Lift: ub carries the Dirichlet values, zero elsewhere.
  for (std::size_t i = 0; i < nl; ++i) {
    ub[i] = (1.0 - mask[i]) * bcvals[i];
    b[i] = rhs_weak[i];
  }
  space.gs().op(b);
  apply_helmholtz_local(m, h.h1(), h.h2(), ub, t, work);
  space.gs().op(t);
  for (std::size_t i = 0; i < nl; ++i) b[i] = (b[i] - t[i]) * mask[i];

  // Initial guess: previous solution minus the lift (or zero).
  if (opt.zero_guess)
    for (std::size_t i = 0; i < nl; ++i) x[i] = 0.0;
  else
    for (std::size_t i = 0; i < nl; ++i) x[i] = (out[i] - ub[i]) * mask[i];

  auto apply = [&](const double* xx, double* yy) { h.apply(xx, yy); };
  auto dot = [&](const double* a2, const double* b2) {
    return space.glsum_dot(a2, b2);
  };
  // Reference the operator's diagonal in place: jacobi_precond would copy
  // the field-length vector on every call.
  const std::vector<double>& dg = h.diagonal();
  auto prec = [&dg](const double* r, double* z) {
    for (std::size_t i = 0; i < dg.size(); ++i) z[i] = r[i] / dg[i];
  };
  CgOptions copt;
  copt.tol = opt.tol;
  copt.relative = true;
  copt.max_iter = opt.max_iter;
  auto res = pcg(nl, apply, prec, dot, b, x, copt, &scr.cg);
  // On a hard failure x is garbage; keep the caller's field intact so the
  // recovery ladder can retry from a consistent state.
  if (!is_hard_failure(res.status))
    for (std::size_t i = 0; i < nl; ++i) out[i] = x[i] + ub[i];
  return res;
}

}  // namespace tsem
