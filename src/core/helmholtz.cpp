#include "core/helmholtz.hpp"

#include "common/check.hpp"
#include "core/operators.hpp"
#include "obs/metrics.hpp"

namespace tsem {

HelmholtzOp::HelmholtzOp(const Space& space, double h1, double h2,
                         std::vector<double> mask)
    : space_(&space), h1_(h1), h2_(h2), mask_(std::move(mask)) {
  TSEM_REQUIRE(mask_.size() == space.nlocal());
  const auto& m = space.mesh();
  auto diag_a = stiffness_diagonal_local(m);
  diag_.resize(space.nlocal());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    diag_[i] = h1_ * diag_a[i] + h2_ * m.bm[i];
  space.gs().op(diag_.data());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    if (mask_[i] == 0.0) diag_[i] = 1.0;
  inv_diag32_.resize(diag_.size());
  for (std::size_t i = 0; i < diag_.size(); ++i)
    inv_diag32_[i] = static_cast<float>(1.0 / diag_[i]);
}

void HelmholtzOp::apply(const double* u, double* w) const {
  apply_helmholtz_local(space_->mesh(), h1_, h2_, u, w, work_);
  space_->gs().op(w);
  for (std::size_t i = 0; i < mask_.size(); ++i) w[i] *= mask_[i];
}

void HelmholtzOp::apply_multi(const double* const* u, double* const* w,
                              int nf) const {
  apply_helmholtz_local_multi(space_->mesh(), h1_, h2_, u, w, nf, work_);
  for (int f = 0; f < nf; ++f) {
    space_->gs().op(w[f]);
    double* wf = w[f];
    for (std::size_t i = 0; i < mask_.size(); ++i) wf[i] *= mask_[i];
  }
}

CgResult helmholtz_solve(const HelmholtzOp& h,
                         const std::vector<double>& bcvals,
                         const std::vector<double>& rhs_weak,
                         std::vector<double>& out,
                         const HelmholtzSolveOptions& opt, TensorWork& work,
                         HelmholtzSolveScratch* scratch) {
  const obs::ScopedTimer timer("helmholtz/solve");
  const Space& space = h.space();
  const Mesh& m = space.mesh();
  const std::vector<double>& mask = h.mask();
  const std::size_t nl = space.nlocal();
  TSEM_REQUIRE(bcvals.size() == nl && rhs_weak.size() == nl &&
               out.size() == nl);

  HelmholtzSolveScratch local;
  HelmholtzSolveScratch& scr = scratch ? *scratch : local;
  if (scr.ub.size() < nl) {
    scr.ub.resize(nl);
    scr.b.resize(nl);
    scr.t.resize(nl);
    scr.x.resize(nl);
  }
  double* const ub = scr.ub.data();
  double* const b = scr.b.data();
  double* const t = scr.t.data();
  double* const x = scr.x.data();

  // Lift: ub carries the Dirichlet values, zero elsewhere.
  for (std::size_t i = 0; i < nl; ++i) {
    ub[i] = (1.0 - mask[i]) * bcvals[i];
    b[i] = rhs_weak[i];
  }
  space.gs().op(b);
  apply_helmholtz_local(m, h.h1(), h.h2(), ub, t, work);
  space.gs().op(t);
  for (std::size_t i = 0; i < nl; ++i) b[i] = (b[i] - t[i]) * mask[i];

  // Initial guess: previous solution minus the lift (or zero).
  if (opt.zero_guess)
    for (std::size_t i = 0; i < nl; ++i) x[i] = 0.0;
  else
    for (std::size_t i = 0; i < nl; ++i) x[i] = (out[i] - ub[i]) * mask[i];

  auto apply = [&](const double* xx, double* yy) { h.apply(xx, yy); };
  auto dot = [&](const double* a2, const double* b2) {
    return space.glsum_dot(a2, b2);
  };
  // Reference the operator's diagonal in place: jacobi_precond would copy
  // the field-length vector on every call.  Under the FP32 policy the
  // scale runs as a float multiply (demote, multiply, promote) — the
  // branch is hoisted out of the dof loop.
  const std::vector<double>& dg = h.diagonal();
  const std::vector<float>& idg32 = h.inv_diagonal_f32();
  const bool prec32 = opt.precond_precision == PrecondPrecision::Fp32;
  if (prec32) obs::count("helmholtz/fp32_precond_solves");
  auto prec = [&dg, &idg32, prec32](const double* r, double* z) {
    if (prec32) {
      for (std::size_t i = 0; i < idg32.size(); ++i)
        z[i] = static_cast<double>(static_cast<float>(r[i]) * idg32[i]);
    } else {
      for (std::size_t i = 0; i < dg.size(); ++i) z[i] = r[i] / dg[i];
    }
  };
  CgOptions copt;
  copt.tol = opt.tol;
  copt.relative = true;
  copt.max_iter = opt.max_iter;
  auto res = pcg(nl, apply, prec, dot, b, x, copt, &scr.cg);
  // On a hard failure x is garbage; keep the caller's field intact so the
  // recovery ladder can retry from a consistent state.
  if (!is_hard_failure(res.status))
    for (std::size_t i = 0; i < nl; ++i) out[i] = x[i] + ub[i];
  return res;
}

int helmholtz_solve_multi(const HelmholtzOp& h,
                          const std::vector<double>* const* bcvals,
                          const std::vector<double>* const* rhs_weak,
                          std::vector<double>* const* out, int nf,
                          const HelmholtzSolveOptions& opt, TensorWork& work,
                          HelmholtzSolveScratch* scratch, CgResult* results,
                          bool maxiter_is_failure) {
  const obs::ScopedTimer timer("helmholtz/solve");
  const Space& space = h.space();
  const Mesh& m = space.mesh();
  const std::vector<double>& mask = h.mask();
  const std::size_t nl = space.nlocal();
  TSEM_REQUIRE(nf >= 1 && nf <= kMaxSolveFields);
  for (int f = 0; f < nf; ++f)
    TSEM_REQUIRE(bcvals[f]->size() == nl && rhs_weak[f]->size() == nl &&
                 out[f]->size() == nl);

  HelmholtzSolveScratch local;
  HelmholtzSolveScratch& scr = scratch ? *scratch : local;
  if (static_cast<int>(scr.mub.size()) < nf) {
    scr.mub.resize(nf);
    scr.mb.resize(nf);
    scr.mt.resize(nf);
    scr.mx.resize(nf);
    scr.mcg.resize(nf);
  }
  for (int f = 0; f < nf; ++f) {
    if (scr.mub[f].size() < nl) {
      scr.mub[f].resize(nl);
      scr.mb[f].resize(nl);
      scr.mt[f].resize(nl);
      scr.mx[f].resize(nl);
    }
    scr.mcg[f].ensure(nl);
  }

  // Setup, field by field where the work is field-local and fused where an
  // element sweep is involved.  Every per-field statement matches
  // helmholtz_solve line for line, so the iterates are bitwise identical
  // to nf sequential solves.
  const double* ubp[kMaxSolveFields];
  double* tp[kMaxSolveFields];
  for (int f = 0; f < nf; ++f) {
    double* const ub = scr.mub[f].data();
    double* const b = scr.mb[f].data();
    const double* bc = bcvals[f]->data();
    const double* rw = rhs_weak[f]->data();
    for (std::size_t i = 0; i < nl; ++i) {
      ub[i] = (1.0 - mask[i]) * bc[i];
      b[i] = rw[i];
    }
    space.gs().op(b);
    ubp[f] = ub;
    tp[f] = scr.mt[f].data();
  }
  apply_helmholtz_local_multi(m, h.h1(), h.h2(), ubp, tp, nf, work);
  for (int f = 0; f < nf; ++f) {
    space.gs().op(tp[f]);
    double* const b = scr.mb[f].data();
    const double* t = tp[f];
    const double* ub = ubp[f];
    double* const x = scr.mx[f].data();
    const double* o = out[f]->data();
    for (std::size_t i = 0; i < nl; ++i) b[i] = (b[i] - t[i]) * mask[i];
    if (opt.zero_guess)
      for (std::size_t i = 0; i < nl; ++i) x[i] = 0.0;
    else
      for (std::size_t i = 0; i < nl; ++i) x[i] = (o[i] - ub[i]) * mask[i];
  }

  const std::vector<double>& dg = h.diagonal();
  const std::vector<float>& idg32 = h.inv_diagonal_f32();
  const bool prec32 = opt.precond_precision == PrecondPrecision::Fp32;
  if (prec32) obs::count("helmholtz/fp32_precond_solves");
  auto prec = [&dg, &idg32, prec32, nl](const double* r, double* z) {
    if (prec32) {
      for (std::size_t i = 0; i < nl; ++i)
        z[i] = static_cast<double>(static_cast<float>(r[i]) * idg32[i]);
    } else {
      for (std::size_t i = 0; i < nl; ++i) z[i] = r[i] / dg[i];
    }
  };
  auto dot = [&space](const double* a2, const double* b2) {
    return space.glsum_dot(a2, b2);
  };

  // Per-field CG state, mirroring pcg() exactly (cg.hpp); a field whose
  // recurrence exits simply drops out of the fused applies.
  struct Field {
    double* r;
    double* z;
    double* p;
    double* ap;
    double rnorm, target, rz, best, last_finite;
    int best_it;
    bool active;
    bool entered;  // reached the iteration loop (not a setup exit)
  } st[kMaxSolveFields];

  {
    const double* xin[kMaxSolveFields];
    double* apout[kMaxSolveFields];
    for (int f = 0; f < nf; ++f) {
      st[f].r = scr.mcg[f].r.data();
      st[f].z = scr.mcg[f].z.data();
      st[f].p = scr.mcg[f].p.data();
      st[f].ap = scr.mcg[f].ap.data();
      xin[f] = scr.mx[f].data();
      apout[f] = st[f].ap;
    }
    h.apply_multi(xin, apout, nf);
  }

  int nactive = 0;
  for (int f = 0; f < nf; ++f) {
    Field& s = st[f];
    CgResult& res = results[f];
    res = CgResult{};
    const double* b = scr.mb[f].data();
    for (std::size_t i = 0; i < nl; ++i) s.r[i] = b[i] - s.ap[i];
    s.rnorm = std::sqrt(dot(s.r, s.r));
    res.initial_residual = s.rnorm;
    s.active = false;
    s.entered = false;
    if (!std::isfinite(s.rnorm)) {
      res.status = SolveStatus::NonFinite;
      res.final_residual = s.rnorm;
      continue;
    }
    s.target = opt.tol * (s.rnorm > 0 ? s.rnorm : 1.0);
    if (s.rnorm <= s.target) {
      res.converged = true;
      res.status = SolveStatus::Converged;
      res.final_residual = s.rnorm;
      continue;
    }
    prec(s.r, s.z);
    for (std::size_t i = 0; i < nl; ++i) s.p[i] = s.z[i];
    s.rz = dot(s.r, s.z);
    s.best = s.rnorm;
    s.last_finite = s.rnorm;
    s.best_it = 0;
    s.active = true;
    s.entered = true;
    res.status = SolveStatus::MaxIter;
    ++nactive;
  }

  const CgOptions copt;  // stall_window default, as in helmholtz_solve
  for (int it = 1; it <= opt.max_iter && nactive > 0; ++it) {
    const double* pp[kMaxSolveFields];
    double* app[kMaxSolveFields];
    int idx[kMaxSolveFields];
    int na = 0;
    for (int f = 0; f < nf; ++f)
      if (st[f].active) {
        pp[na] = st[f].p;
        app[na] = st[f].ap;
        idx[na] = f;
        ++na;
      }
    h.apply_multi(pp, app, na);
    for (int a = 0; a < na; ++a) {
      const int f = idx[a];
      Field& s = st[f];
      CgResult& res = results[f];
      const double pap = dot(s.p, s.ap);
      if (!(pap > 0.0)) {
        res.status = std::isfinite(pap) ? SolveStatus::Breakdown
                                        : SolveStatus::NonFinite;
        s.active = false;
        --nactive;
        continue;
      }
      const double alpha = s.rz / pap;
      double* const x = scr.mx[f].data();
      for (std::size_t i = 0; i < nl; ++i) {
        x[i] += alpha * s.p[i];
        s.r[i] -= alpha * s.ap[i];
      }
      s.rnorm = std::sqrt(dot(s.r, s.r));
      res.iterations = it;
      if (!std::isfinite(s.rnorm)) {
        res.status = SolveStatus::NonFinite;
        s.active = false;
        --nactive;
        continue;
      }
      s.last_finite = s.rnorm;
      if (s.rnorm <= s.target) {
        res.converged = true;
        res.status = SolveStatus::Converged;
        s.active = false;
        --nactive;
        continue;
      }
      if (s.rnorm < 0.999 * s.best) {
        s.best = s.rnorm;
        s.best_it = it;
      } else if (it - s.best_it >= copt.stall_window) {
        res.status = SolveStatus::Stalled;
        s.active = false;
        --nactive;
        continue;
      }
      prec(s.r, s.z);
      const double rz_new = dot(s.r, s.z);
      const double beta = rz_new / s.rz;
      s.rz = rz_new;
      for (std::size_t i = 0; i < nl; ++i) s.p[i] = s.z[i] + beta * s.p[i];
    }
  }
  // pcg's epilogue for every field that entered the loop (break or
  // MaxIter): report the last finite residual.  Setup exits already set
  // final_residual themselves.
  for (int f = 0; f < nf; ++f)
    if (st[f].entered)
      results[f].final_residual =
          std::isfinite(st[f].rnorm) ? st[f].rnorm : st[f].last_finite;

  // Commit + obs in FIELD ORDER, stopping after the first failed field —
  // exactly the trace a sequential per-field loop with early exit leaves.
  int first_fail = nf;
  for (int f = 0; f < nf; ++f) {
    CgResult& res = results[f];
    obs::record_solve("pcg", res.iterations, res.initial_residual,
                      res.final_residual, to_string(res.status));
    if (!is_hard_failure(res.status)) {
      double* o = out[f]->data();
      const double* x = scr.mx[f].data();
      const double* ub = scr.mub[f].data();
      for (std::size_t i = 0; i < nl; ++i) o[i] = x[i] + ub[i];
    }
    const bool failed =
        is_hard_failure(res.status) ||
        (maxiter_is_failure && res.status == SolveStatus::MaxIter);
    if (failed) {
      first_fail = f;
      break;
    }
  }
  return first_fail;
}

}  // namespace tsem
