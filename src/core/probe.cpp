#include "core/probe.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "poly/basis1d.hpp"
#include "poly/lagrange.hpp"

namespace tsem {

FieldProbe::FieldProbe(const Mesh& mesh) : mesh_(&mesh), n1_(mesh.n1d()) {
  bbox_.resize(mesh.nelem);
  for (int e = 0; e < mesh.nelem; ++e) {
    auto& b = bbox_[e];
    b = {1e300, -1e300, 1e300, -1e300, 1e300, -1e300};
    const std::size_t off = static_cast<std::size_t>(e) * mesh.npe;
    for (int n = 0; n < mesh.npe; ++n) {
      b[0] = std::min(b[0], mesh.x[off + n]);
      b[1] = std::max(b[1], mesh.x[off + n]);
      b[2] = std::min(b[2], mesh.y[off + n]);
      b[3] = std::max(b[3], mesh.y[off + n]);
      if (mesh.dim == 3) {
        b[4] = std::min(b[4], mesh.z[off + n]);
        b[5] = std::max(b[5], mesh.z[off + n]);
      }
    }
    // Inflate: curved faces can bulge past the nodal hull slightly.
    const double pad =
        0.05 * std::max({b[1] - b[0], b[3] - b[2],
                         mesh.dim == 3 ? b[5] - b[4] : 0.0});
    b[0] -= pad;
    b[1] += pad;
    b[2] -= pad;
    b[3] += pad;
    if (mesh.dim == 3) {
      b[4] -= pad;
      b[5] += pad;
    }
  }
}

void FieldProbe::basis1d(double r, std::vector<double>& h,
                         std::vector<double>& hd) const {
  const auto& b = Basis1D::get(mesh_->order);
  const std::vector<double> pt = {r};
  const auto row = interpolation_matrix(b.z, pt);  // 1 x n1
  h = row;
  // h_j'(r) = sum_k l_k(r) D[k][j] (h_j' is degree N-1, exactly
  // representable on the GLL grid).
  hd.assign(n1_, 0.0);
  for (int j = 0; j < n1_; ++j) {
    double s = 0.0;
    for (int k = 0; k < n1_; ++k) s += row[k] * b.d[k * n1_ + j];
    hd[j] = s;
  }
}

bool FieldProbe::newton(int elem, const double* target,
                        std::array<double, 3>& rst) const {
  const Mesh& m = *mesh_;
  const int dim = m.dim;
  const std::size_t off = static_cast<std::size_t>(elem) * m.npe;
  const double* coords[3] = {m.x.data() + off, m.y.data() + off,
                             dim == 3 ? m.z.data() + off : nullptr};
  rst = {0.0, 0.0, 0.0};
  std::vector<double> h[3], hd[3];
  for (int it = 0; it < 50; ++it) {
    for (int d = 0; d < dim; ++d) basis1d(rst[d], h[d], hd[d]);
    // Evaluate x(r) and the Jacobian dx/dr.
    double xr[3] = {0, 0, 0};
    double jac[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
    if (dim == 2) {
      for (int j = 0; j < n1_; ++j)
        for (int i = 0; i < n1_; ++i) {
          const double w = h[0][i] * h[1][j];
          const double wr = hd[0][i] * h[1][j];
          const double ws = h[0][i] * hd[1][j];
          for (int c = 0; c < 2; ++c) {
            const double v = coords[c][j * n1_ + i];
            xr[c] += w * v;
            jac[c * 2 + 0] += wr * v;
            jac[c * 2 + 1] += ws * v;
          }
        }
    } else {
      for (int k = 0; k < n1_; ++k)
        for (int j = 0; j < n1_; ++j)
          for (int i = 0; i < n1_; ++i) {
            const double hh = h[0][i] * h[1][j] * h[2][k];
            const double wr = hd[0][i] * h[1][j] * h[2][k];
            const double ws = h[0][i] * hd[1][j] * h[2][k];
            const double wt = h[0][i] * h[1][j] * hd[2][k];
            const std::size_t idx =
                (static_cast<std::size_t>(k) * n1_ + j) * n1_ + i;
            for (int c = 0; c < 3; ++c) {
              const double v = coords[c][idx];
              xr[c] += hh * v;
              jac[c * 3 + 0] += wr * v;
              jac[c * 3 + 1] += ws * v;
              jac[c * 3 + 2] += wt * v;
            }
          }
    }
    double res[3] = {target[0] - xr[0], target[1] - xr[1],
                     dim == 3 ? target[2] - xr[2] : 0.0};
    double rn = 0.0;
    for (int c = 0; c < dim; ++c) rn += res[c] * res[c];
    // Solve jac * dr = res.
    double dr[3] = {0, 0, 0};
    if (dim == 2) {
      const double det = jac[0] * jac[3] - jac[1] * jac[2];
      if (std::fabs(det) < 1e-300) return false;
      dr[0] = (res[0] * jac[3] - res[1] * jac[1]) / det;
      dr[1] = (jac[0] * res[1] - jac[2] * res[0]) / det;
    } else {
      const double det =
          jac[0] * (jac[4] * jac[8] - jac[5] * jac[7]) -
          jac[1] * (jac[3] * jac[8] - jac[5] * jac[6]) +
          jac[2] * (jac[3] * jac[7] - jac[4] * jac[6]);
      if (std::fabs(det) < 1e-300) return false;
      const double inv[9] = {
          (jac[4] * jac[8] - jac[5] * jac[7]) / det,
          (jac[2] * jac[7] - jac[1] * jac[8]) / det,
          (jac[1] * jac[5] - jac[2] * jac[4]) / det,
          (jac[5] * jac[6] - jac[3] * jac[8]) / det,
          (jac[0] * jac[8] - jac[2] * jac[6]) / det,
          (jac[2] * jac[3] - jac[0] * jac[5]) / det,
          (jac[3] * jac[7] - jac[4] * jac[6]) / det,
          (jac[1] * jac[6] - jac[0] * jac[7]) / det,
          (jac[0] * jac[4] - jac[1] * jac[3]) / det};
      for (int a = 0; a < 3; ++a)
        for (int c = 0; c < 3; ++c) dr[a] += inv[a * 3 + c] * res[c];
    }
    bool small = true;
    for (int c = 0; c < dim; ++c) {
      rst[c] += dr[c];
      // Keep the iterate in a sane neighborhood of the reference cube.
      rst[c] = std::min(2.0, std::max(-2.0, rst[c]));
      if (std::fabs(dr[c]) > 1e-13) small = false;
    }
    if (small && rn < 1e-24 * (1.0 + mesh_->bbox_diag())) break;
    if (small) break;
  }
  const double tol = 1.0 + 1e-8;
  for (int c = 0; c < dim; ++c)
    if (std::fabs(rst[c]) > tol) return false;
  return true;
}

bool FieldProbe::locate(double x, double y, double z, int* elem,
                        std::array<double, 3>* rst) const {
  const double target[3] = {x, y, z};
  for (int e = 0; e < mesh_->nelem; ++e) {
    const auto& b = bbox_[e];
    if (x < b[0] || x > b[1] || y < b[2] || y > b[3]) continue;
    if (mesh_->dim == 3 && (z < b[4] || z > b[5])) continue;
    std::array<double, 3> r;
    if (newton(e, target, r)) {
      *elem = e;
      *rst = r;
      return true;
    }
  }
  return false;
}

double FieldProbe::eval(const double* field, int elem,
                        const std::array<double, 3>& rst) const {
  const Mesh& m = *mesh_;
  const std::size_t off = static_cast<std::size_t>(elem) * m.npe;
  std::vector<double> h[3], hd[3];
  for (int d = 0; d < m.dim; ++d) basis1d(rst[d], h[d], hd[d]);
  double s = 0.0;
  if (m.dim == 2) {
    for (int j = 0; j < n1_; ++j)
      for (int i = 0; i < n1_; ++i)
        s += h[0][i] * h[1][j] * field[off + j * n1_ + i];
  } else {
    for (int k = 0; k < n1_; ++k)
      for (int j = 0; j < n1_; ++j)
        for (int i = 0; i < n1_; ++i)
          s += h[0][i] * h[1][j] * h[2][k] *
               field[off + (static_cast<std::size_t>(k) * n1_ + j) * n1_ + i];
  }
  return s;
}

bool FieldProbe::sample(const double* field, double x, double y, double z,
                        double* out) const {
  int elem;
  std::array<double, 3> rst;
  if (!locate(x, y, z, &elem, &rst)) return false;
  *out = eval(field, elem, rst);
  return true;
}

}  // namespace tsem
