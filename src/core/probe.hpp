// Spectral field probing: evaluate element fields at arbitrary physical
// points (history points, line samples, comparison against experiments —
// the paper's §1 motivation of "comparative numerical and experimental
// studies" needs exactly this).
//
// locate() inverts the element mapping x(r) by Newton iteration using
// the same tensor-product Lagrange basis the discretization uses, so
// evaluation is spectrally accurate — no low-order interpolation step.
#pragma once

#include <array>
#include <vector>

#include "mesh/mesh.hpp"

namespace tsem {

class FieldProbe {
 public:
  explicit FieldProbe(const Mesh& mesh);

  /// Find the element containing (x, y[, z]) and its reference
  /// coordinates.  Returns false if the point lies in no element.
  bool locate(double x, double y, double z, int* elem,
              std::array<double, 3>* rst) const;

  /// Evaluate a field (element-by-element storage) at a located point.
  [[nodiscard]] double eval(const double* field, int elem,
                            const std::array<double, 3>& rst) const;

  /// locate + eval in one call; returns false if the point is outside.
  bool sample(const double* field, double x, double y, double z,
              double* out) const;

 private:
  /// 1D Lagrange basis values (and derivative values) at r on GLL nodes.
  void basis1d(double r, std::vector<double>& h, std::vector<double>& hd)
      const;
  bool newton(int elem, const double* target, std::array<double, 3>& rst)
      const;

  const Mesh* mesh_;
  int n1_;
  // Element bounding boxes (slightly inflated) for candidate search.
  std::vector<std::array<double, 6>> bbox_;
};

}  // namespace tsem
