#include "core/dealias.hpp"

#include <cmath>

#include "common/check.hpp"
#include "io/binfile.hpp"
#include "poly/basis1d.hpp"
#include "poly/lagrange.hpp"
#include "tensor/mxm.hpp"

namespace tsem {

DealiasedConvection::DealiasedConvection(const Mesh& mesh, int fine_pts)
    : mesh_(&mesh), dim_(mesh.dim), n1_(mesh.n1d()) {
  mfine_ = fine_pts > 0 ? fine_pts : (3 * n1_ + 1) / 2;
  TSEM_REQUIRE(mfine_ >= n1_);
  nfe_ = 1;
  for (int d = 0; d < dim_; ++d) nfe_ *= mfine_;

  const auto& b = Basis1D::get(mesh.order);
  if_ = gll_to_gauss(mesh.order, mfine_);  // M x n1
  dif_.assign(static_cast<std::size_t>(mfine_) * n1_, 0.0);
  mxm_generic(if_.data(), mfine_, b.d.data(), n1_, dif_.data(), n1_);
  ift_.resize(if_.size());
  dift_.resize(dif_.size());
  for (int i = 0; i < mfine_; ++i)
    for (int j = 0; j < n1_; ++j) {
      ift_[j * mfine_ + i] = if_[i * n1_ + j];
      dift_[j * mfine_ + i] = dif_[i * n1_ + j];
    }

  // Fine-grid metrics per element: interpolate the (polynomial)
  // coordinate derivatives, then form the rational metric terms — exact,
  // as in the pressure-mesh setup.
  const auto& gw = gauss_weights(mfine_);
  const std::size_t total = static_cast<std::size_t>(mesh.nelem) * nfe_;
  jw_.resize(total);
  md_.resize(static_cast<std::size_t>(dim_) * dim_ * total);
  TensorWork work;
  double* scratch = work.get(3 * nfe_ + nfe_);
  std::vector<double> d(9 * nfe_);
  const double* coords[3] = {mesh.x.data(), mesh.y.data(),
                             dim_ == 3 ? mesh.z.data() : nullptr};
  for (int e = 0; e < mesh.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * mesh.npe;
    const std::size_t foff = static_cast<std::size_t>(e) * nfe_;
    for (int c = 0; c < dim_; ++c) {
      for (int j = 0; j < dim_; ++j) {
        const double* ax = (j == 0) ? dif_.data() : if_.data();
        const double* ay = (j == 1) ? dif_.data() : if_.data();
        if (dim_ == 2) {
          tensor2_apply(ax, mfine_, n1_, ay, mfine_, n1_, coords[c] + off,
                        d.data() + (c * dim_ + j) * nfe_, scratch);
        } else {
          const double* az = (j == 2) ? dif_.data() : if_.data();
          tensor3_apply(ax, mfine_, n1_, ay, mfine_, n1_, az, mfine_, n1_,
                        coords[c] + off, d.data() + (c * dim_ + j) * nfe_,
                        scratch);
        }
      }
    }
    for (std::size_t q = 0; q < nfe_; ++q) {
      double wq = 1.0;
      std::size_t rem = q;
      for (int dd = 0; dd < dim_; ++dd) {
        wq *= gw[rem % mfine_];
        rem /= mfine_;
      }
      if (dim_ == 2) {
        const double xr = d[0 * nfe_ + q], xs = d[1 * nfe_ + q];
        const double yr = d[2 * nfe_ + q], ys = d[3 * nfe_ + q];
        const double jac = xr * ys - xs * yr;
        TSEM_REQUIRE(jac > 0.0);
        jw_[foff + q] = wq * jac;
        md_[(0 * 2 + 0) * total + foff + q] = ys / jac;   // dr/dx
        md_[(0 * 2 + 1) * total + foff + q] = -yr / jac;  // ds/dx
        md_[(1 * 2 + 0) * total + foff + q] = -xs / jac;  // dr/dy
        md_[(1 * 2 + 1) * total + foff + q] = xr / jac;   // ds/dy
      } else {
        const double xr = d[0 * nfe_ + q], xs = d[1 * nfe_ + q],
                     xt = d[2 * nfe_ + q];
        const double yr = d[3 * nfe_ + q], ys = d[4 * nfe_ + q],
                     yt = d[5 * nfe_ + q];
        const double zr = d[6 * nfe_ + q], zs = d[7 * nfe_ + q],
                     zt = d[8 * nfe_ + q];
        const double jac = xr * (ys * zt - yt * zs) -
                           xs * (yr * zt - yt * zr) +
                           xt * (yr * zs - ys * zr);
        TSEM_REQUIRE(jac > 0.0);
        jw_[foff + q] = wq * jac;
        const double dr[9] = {
            (ys * zt - yt * zs) / jac, (yt * zr - yr * zt) / jac,
            (yr * zs - ys * zr) / jac, (xt * zs - xs * zt) / jac,
            (xr * zt - xt * zr) / jac, (xs * zr - xr * zs) / jac,
            (xs * yt - xt * ys) / jac, (xt * yr - xr * yt) / jac,
            (xr * ys - xs * yr) / jac};
        // dr[xi*3 + rj] = d r_rj / d x_xi.
        for (int xi = 0; xi < 3; ++xi)
          for (int rj = 0; rj < 3; ++rj)
            md_[(static_cast<std::size_t>(xi) * 3 + rj) * total + foff + q] =
                dr[xi * 3 + rj];
      }
    }
  }
}

void DealiasedConvection::apply(const double* const* vel, const double* u,
                                double* out, TensorWork& work) const {
  const Mesh& m = *mesh_;
  const std::size_t total = jw_.size();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    double* buf = work.get((2 * dim_ + 3) * nfe_ + 3 * nfe_);
    double* urf = buf;               // dim fine derivative fields
    double* vf = urf + dim_ * nfe_;  // dim fine velocity fields
    double* sf = vf + dim_ * nfe_;   // product accumulator
    double* scratch = sf + nfe_;     // tensor workspace (2 nfe_ +)
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    const std::size_t foff = static_cast<std::size_t>(e) * nfe_;
    // du/dr_j and velocity components on the fine grid.
    for (int j = 0; j < dim_; ++j) {
      const double* ax = (j == 0) ? dif_.data() : if_.data();
      const double* ay = (j == 1) ? dif_.data() : if_.data();
      if (dim_ == 2)
        tensor2_apply(ax, mfine_, n1_, ay, mfine_, n1_, u + off,
                      urf + j * nfe_, scratch);
      else
        tensor3_apply(ax, mfine_, n1_, ay, mfine_, n1_,
                      (j == 2) ? dif_.data() : if_.data(), mfine_, n1_,
                      u + off, urf + j * nfe_, scratch);
    }
    for (int c = 0; c < dim_; ++c) {
      if (dim_ == 2)
        tensor2_apply(if_.data(), mfine_, n1_, if_.data(), mfine_, n1_,
                      vel[c] + off, vf + c * nfe_, scratch);
      else
        tensor3_apply(if_.data(), mfine_, n1_, if_.data(), mfine_, n1_,
                      if_.data(), mfine_, n1_, vel[c] + off, vf + c * nfe_,
                      scratch);
    }
    // s = W J sum_c v_c sum_j (dr_j/dx_c) du/dr_j on the fine grid.
    for (std::size_t q = 0; q < nfe_; ++q) {
      double s = 0.0;
      for (int c = 0; c < dim_; ++c) {
        double dudxc = 0.0;
        for (int j = 0; j < dim_; ++j)
          dudxc += metric_f(c, j)[foff + q] * urf[j * nfe_ + q];
        s += vf[c * nfe_ + q] * dudxc;
      }
      sf[q] = jw_[foff + q] * s;
    }
    // Project back: out = I^T s (weak form on the GLL nodes).
    if (dim_ == 2)
      tensor2_apply(ift_.data(), n1_, mfine_, ift_.data(), n1_, mfine_, sf,
                    out + off, scratch);
    else
      tensor3_apply(ift_.data(), n1_, mfine_, ift_.data(), n1_, mfine_,
                    ift_.data(), n1_, mfine_, sf, out + off, scratch);
  }
  (void)total;
}

void DealiasedConvection::serialize(ByteWriter& w) const {
  w.put<std::int32_t>(dim_);
  w.put<std::int32_t>(n1_);
  w.put<std::int32_t>(mfine_);
  w.put<std::uint64_t>(nfe_);
  w.put_vec(if_);
  w.put_vec(ift_);
  w.put_vec(dif_);
  w.put_vec(dift_);
  w.put_vec(jw_);
  w.put_vec(md_);
}

std::unique_ptr<DealiasedConvection> DealiasedConvection::deserialize(
    ByteReader& r, const Mesh& mesh) {
  auto d = std::unique_ptr<DealiasedConvection>(new DealiasedConvection());
  std::int32_t dim = 0, n1 = 0, mfine = 0;
  std::uint64_t nfe = 0;
  if (!r.get(&dim) || !r.get(&n1) || !r.get(&mfine) || !r.get(&nfe))
    return nullptr;
  if (dim != mesh.dim || n1 != mesh.n1d() || mfine < n1) return nullptr;
  if (!r.get_vec(&d->if_) || !r.get_vec(&d->ift_) || !r.get_vec(&d->dif_) ||
      !r.get_vec(&d->dift_) || !r.get_vec(&d->jw_) || !r.get_vec(&d->md_))
    return nullptr;
  std::size_t want_nfe = 1;
  for (int k = 0; k < dim; ++k) want_nfe *= static_cast<std::size_t>(mfine);
  const std::size_t total = static_cast<std::size_t>(mesh.nelem) * want_nfe;
  const std::size_t mat = static_cast<std::size_t>(mfine) * n1;
  if (nfe != want_nfe || d->if_.size() != mat || d->ift_.size() != mat ||
      d->dif_.size() != mat || d->dift_.size() != mat ||
      d->jw_.size() != total ||
      d->md_.size() != static_cast<std::size_t>(dim) * dim * total)
    return nullptr;
  d->mesh_ = &mesh;
  d->dim_ = dim;
  d->n1_ = n1;
  d->mfine_ = mfine;
  d->nfe_ = want_nfe;
  return d;
}

}  // namespace tsem
