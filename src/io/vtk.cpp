#include "io/vtk.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace tsem {

bool write_vtk(const Mesh& mesh, const std::vector<VtkField>& fields,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t npts = mesh.nlocal();
  const int n1 = mesh.n1d();
  const int order = mesh.order;

  std::fprintf(f, "# vtk DataFile Version 3.0\n");
  std::fprintf(f, "terasem spectral element field\n");
  std::fprintf(f, "ASCII\nDATASET UNSTRUCTURED_GRID\n");
  std::fprintf(f, "POINTS %zu double\n", npts);
  for (std::size_t i = 0; i < npts; ++i)
    std::fprintf(f, "%.9g %.9g %.9g\n", mesh.x[i], mesh.y[i],
                 mesh.dim == 3 ? mesh.z[i] : 0.0);

  // Each element contributes N^d linear sub-cells over its GLL grid.
  const long cells_per_elem =
      mesh.dim == 2 ? static_cast<long>(order) * order
                    : static_cast<long>(order) * order * order;
  const long ncells = cells_per_elem * mesh.nelem;
  const int verts = mesh.dim == 2 ? 4 : 8;
  std::fprintf(f, "CELLS %ld %ld\n", ncells, ncells * (verts + 1));
  for (int e = 0; e < mesh.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * mesh.npe;
    if (mesh.dim == 2) {
      for (int j = 0; j < order; ++j)
        for (int i = 0; i < order; ++i) {
          const std::size_t p00 = off + static_cast<std::size_t>(j) * n1 + i;
          std::fprintf(f, "4 %zu %zu %zu %zu\n", p00, p00 + 1, p00 + n1 + 1,
                       p00 + n1);
        }
    } else {
      for (int k = 0; k < order; ++k)
        for (int j = 0; j < order; ++j)
          for (int i = 0; i < order; ++i) {
            const std::size_t p =
                off + (static_cast<std::size_t>(k) * n1 + j) * n1 + i;
            const std::size_t dz = static_cast<std::size_t>(n1) * n1;
            std::fprintf(f, "8 %zu %zu %zu %zu %zu %zu %zu %zu\n", p, p + 1,
                         p + n1 + 1, p + n1, p + dz, p + dz + 1,
                         p + dz + n1 + 1, p + dz + n1);
          }
    }
  }
  std::fprintf(f, "CELL_TYPES %ld\n", ncells);
  const int ctype = mesh.dim == 2 ? 9 : 12;  // VTK_QUAD / VTK_HEXAHEDRON
  for (long c = 0; c < ncells; ++c) std::fprintf(f, "%d\n", ctype);

  if (!fields.empty()) {
    std::fprintf(f, "POINT_DATA %zu\n", npts);
    for (const auto& field : fields) {
      TSEM_REQUIRE(field.data != nullptr);
      std::fprintf(f, "SCALARS %s double 1\nLOOKUP_TABLE default\n",
                   field.name.c_str());
      for (std::size_t i = 0; i < npts; ++i)
        std::fprintf(f, "%.9g\n", field.data[i]);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace tsem
