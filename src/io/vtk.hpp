// Legacy VTK output of spectral element fields.
//
// Writes the GLL point cloud as an unstructured grid of linear
// quads/hexahedra (each element's GLL subgrid is split into N^d cells),
// with any number of named point fields — enough for ParaView/VisIt to
// render the Fig 1/Fig 7-style visualizations.
#pragma once

#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace tsem {

struct VtkField {
  std::string name;
  const double* data;  ///< nlocal values (element-by-element storage)
};

/// Write mesh + fields to `path` in legacy VTK (ASCII).  Returns false on
/// I/O failure.
bool write_vtk(const Mesh& mesh, const std::vector<VtkField>& fields,
               const std::string& path);

}  // namespace tsem
