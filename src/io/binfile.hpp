// Versioned, checksummed binary section container.
//
// The checkpoint/restart path (src/resilience/checkpoint.*) must detect a
// truncated or bit-flipped file and reject it with a diagnosable error —
// never crash, never silently restart from garbage.  This container gives
// it that property generically:
//
//   file   := magic[8] version:u32 nsections:u32 header_crc:u32 section*
//   section:= id:u32 nbytes:u64 payload_crc:u32 payload[nbytes]
//
// All integers are little-endian native (the format is a single-machine
// restart artifact, not an interchange format).  header_crc covers magic,
// version and nsections; each payload carries its own CRC-32, so
// corruption is localized to a named section in the error message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

namespace tsem {

/// CRC-32 (IEEE 802.3 polynomial, reflected).
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

/// Crash-safe whole-file write: the bytes land in `path + ".tmp"`, are
/// fsync'ed, and are then atomically rename(2)d over `path`.  A process
/// killed at ANY instant therefore leaves either the old file (or no
/// file) or the complete new one at `path` — never a torn prefix that
/// passes an existence check.  A stale ".tmp" from a previous crash is
/// simply overwritten.  Returns false with *err on any failure (the temp
/// file is removed; `path` is untouched).
bool write_file_atomic(const std::string& path, const void* data,
                       std::size_t n, std::string* err = nullptr);

/// Append-only little serializer for section payloads.
class ByteWriter {
 public:
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }
  void put_vec(const std::vector<double>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
  }
  /// Length-prefixed vector of any trivially-copyable element (the setup
  /// cache serializes int32/int64/float payloads beside the doubles).
  template <class T>
  void put_pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }
  void put_bytes(const std::vector<std::uint8_t>& v) { put_pod_vec(v); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a section payload.  All getters return
/// false on overrun instead of reading past the end — including the
/// length prefixes themselves, which are validated against the remaining
/// bytes BEFORE any allocation.  That makes the reader safe even over a
/// buffer another process may be rewriting (the setup cache decodes
/// straight out of shared memory): torn bytes produce a clean false or
/// wrong-but-bounded data, never an attempted multi-terabyte resize.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  /// View over raw bytes the caller keeps alive (zero-copy attach path).
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}

  template <class T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool get_vec(std::vector<double>* v) { return get_pod_vec(v); }
  template <class T>
  bool get_pod_vec(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    if (!get(&n)) return false;
    if (n > (size_ - pos_) / sizeof(T)) return false;
    v->resize(static_cast<std::size_t>(n));
    std::memcpy(v->data(), data_ + pos_, n * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return true;
  }
  bool get_bytes(std::vector<std::uint8_t>* v) { return get_pod_vec(v); }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Write a section container.  Sections are written in insertion order.
class BinFileWriter {
 public:
  BinFileWriter(const char magic[8], std::uint32_t version);
  void add_section(std::uint32_t id, std::vector<std::uint8_t> payload);
  /// Atomic, crash-safe write via write_file_atomic: the container is
  /// assembled in memory, written to `path + ".tmp"`, fsync'ed, and
  /// renamed into place.  A writer killed mid-write can never leave a
  /// torn file at `path`; the per-section CRCs remain the second line of
  /// defense against bytes corrupted after the write.
  bool write(const std::string& path, std::string* err = nullptr) const;

 private:
  char magic_[8];
  std::uint32_t version_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections_;
};

/// Read and fully validate a section container: magic, version, header
/// CRC, section framing and every payload CRC.  Returns false with a
/// specific *err message on the first defect found.
bool read_bin_file(const std::string& path, const char magic[8],
                   std::uint32_t expected_version,
                   std::map<std::uint32_t, std::vector<std::uint8_t>>* out,
                   std::string* err = nullptr);

}  // namespace tsem
