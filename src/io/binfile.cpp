#include "io/binfile.hpp"

#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace tsem {
namespace {

// Slice-by-16 CRC-32 (reflected, poly 0xEDB88320): sixteen derived
// tables let the hot loop fold 16 input bytes per iteration instead
// of 1.  Same polynomial, same bit order, bit-identical digests to the
// classic bytewise loop — only an order of magnitude faster, which
// matters because the fleet setup cache and the checkpoint layer both
// checksum multi-megabyte payloads on every worker launch.
const std::array<std::array<std::uint32_t, 256>, 16>& crc_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 16> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (int k = 1; k < 16; ++k)
      for (std::uint32_t i = 0; i < 256; ++i)
        t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
    return t;
  }();
  return tables;
}

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& t = crc_tables();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 16) {
      std::uint32_t w0 = 0, w1 = 0, w2 = 0, w3 = 0;
      std::memcpy(&w0, p, 4);
      std::memcpy(&w1, p + 4, 4);
      std::memcpy(&w2, p + 8, 4);
      std::memcpy(&w3, p + 12, 4);
      w0 ^= c;
      c = t[15][w0 & 0xffu] ^ t[14][(w0 >> 8) & 0xffu] ^
          t[13][(w0 >> 16) & 0xffu] ^ t[12][w0 >> 24] ^ t[11][w1 & 0xffu] ^
          t[10][(w1 >> 8) & 0xffu] ^ t[9][(w1 >> 16) & 0xffu] ^
          t[8][w1 >> 24] ^ t[7][w2 & 0xffu] ^ t[6][(w2 >> 8) & 0xffu] ^
          t[5][(w2 >> 16) & 0xffu] ^ t[4][w2 >> 24] ^ t[3][w3 & 0xffu] ^
          t[2][(w3 >> 8) & 0xffu] ^ t[1][(w3 >> 16) & 0xffu] ^
          t[0][w3 >> 24];
      p += 16;
      n -= 16;
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    c = t[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

BinFileWriter::BinFileWriter(const char magic[8], std::uint32_t version)
    : version_(version) {
  std::memcpy(magic_, magic, 8);
}

void BinFileWriter::add_section(std::uint32_t id,
                                std::vector<std::uint8_t> payload) {
  sections_.emplace_back(id, std::move(payload));
}

bool write_file_atomic(const std::string& path, const void* data,
                       std::size_t n, std::string* err) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    return fail(err, "cannot open " + tmp + " for writing: " +
                         std::strerror(errno));
  bool ok = n == 0 || std::fwrite(data, 1, n, f) == n;
  ok = ok && std::fflush(f) == 0;
  // fsync before rename: the rename must not become durable before the
  // bytes it points at (a crash between the two would resurrect a torn
  // file — exactly what this function exists to rule out).
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return fail(err, "write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(err, "rename " + tmp + " -> " + path + " failed: " +
                         std::strerror(errno));
  }
  return true;
}

bool BinFileWriter::write(const std::string& path, std::string* err) const {
  std::vector<std::uint8_t> bytes;
  auto put = [&bytes](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  const auto nsec = static_cast<std::uint32_t>(sections_.size());
  put(magic_, 8);
  put(&version_, sizeof version_);
  put(&nsec, sizeof nsec);
  std::uint32_t hcrc = crc32(magic_, 8);
  hcrc = crc32(&version_, sizeof version_, hcrc);
  hcrc = crc32(&nsec, sizeof nsec, hcrc);
  put(&hcrc, sizeof hcrc);

  for (const auto& [id, payload] : sections_) {
    const auto nbytes = static_cast<std::uint64_t>(payload.size());
    const std::uint32_t pcrc = crc32(payload.data(), payload.size());
    put(&id, sizeof id);
    put(&nbytes, sizeof nbytes);
    put(&pcrc, sizeof pcrc);
    put(payload.data(), payload.size());
  }
  return write_file_atomic(path, bytes.data(), bytes.size(), err);
}

bool read_bin_file(const std::string& path, const char magic[8],
                   std::uint32_t expected_version,
                   std::map<std::uint32_t, std::vector<std::uint8_t>>* out,
                   std::string* err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(err, "cannot open " + path);

  auto get = [&f](void* p, std::size_t n) {
    f.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return f.good();
  };

  char m[8];
  std::uint32_t version = 0, nsec = 0, hcrc = 0;
  if (!get(m, 8) || !get(&version, sizeof version) ||
      !get(&nsec, sizeof nsec) || !get(&hcrc, sizeof hcrc))
    return fail(err, path + ": truncated header");
  if (std::memcmp(m, magic, 8) != 0)
    return fail(err, path + ": bad magic (not a " +
                         std::string(magic, magic + 8) + " file)");
  std::uint32_t want = crc32(m, 8);
  want = crc32(&version, sizeof version, want);
  want = crc32(&nsec, sizeof nsec, want);
  if (want != hcrc) return fail(err, path + ": header checksum mismatch");
  if (version != expected_version)
    return fail(err, path + ": version " + std::to_string(version) +
                         " != expected " + std::to_string(expected_version));

  out->clear();
  for (std::uint32_t s = 0; s < nsec; ++s) {
    std::uint32_t id = 0, pcrc = 0;
    std::uint64_t nbytes = 0;
    if (!get(&id, sizeof id) || !get(&nbytes, sizeof nbytes) ||
        !get(&pcrc, sizeof pcrc))
      return fail(err, path + ": truncated section header (section " +
                           std::to_string(s) + ")");
    // Guard absurd lengths before allocating (a flipped bit in nbytes
    // must not turn into a bad_alloc).
    f.seekg(0, std::ios::cur);
    const auto here = f.tellg();
    f.seekg(0, std::ios::end);
    const auto end = f.tellg();
    f.seekg(here);
    if (here < 0 || end < 0 ||
        nbytes > static_cast<std::uint64_t>(end - here))
      return fail(err, path + ": section " + std::to_string(id) +
                           " length exceeds file size (truncated or corrupt)");
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(nbytes));
    if (nbytes > 0 && !get(payload.data(), payload.size()))
      return fail(err, path + ": truncated payload (section " +
                           std::to_string(id) + ")");
    if (crc32(payload.data(), payload.size()) != pcrc)
      return fail(err, path + ": checksum mismatch in section " +
                           std::to_string(id));
    if (!out->emplace(id, std::move(payload)).second)
      return fail(err, path + ": duplicate section " + std::to_string(id));
  }
  return true;
}

}  // namespace tsem
