// Distributed XXT coarse solve: the executed-tier fan-in/fan-out tree
// walk of the paper's X X^T method over real rank processes.
//
// Distribution.  For P = 2^levels ranks (levels <= nd.nlevels), dof d is
// owned by rank leaf_of[d] >> (nlevels - levels), matching ClusterSim's
// rank granularity.  A column k of X "touches" the ranks owning its
// nonzero rows.  Rank r computes the partial z_k = sum over its owned
// rows (an ascending subsequence of the CSC entries, so the association
// is deterministic), then the partials ride the binary fan-in tree:
// level s merges sibling subtrees [m*2^s, (m+1)*2^s), the odd node's rep
// sending the columns that touch its subtree but are not contained in it
// (the "carry list").  The receiver combines acc += v for columns its
// own subtree already touched and acc = v otherwise — the same fixed
// left+right association the single-process reference executes, so z is
// BITWISE equal between executed ranks and dist_xxt_reference.  Fan-out
// mirrors fan-in with the same lists, delivering final z to every rank
// that needs it; the output accumulation out[row] += val * z[k] runs
// ascending k over rank-owned rows — an ascending subsequence of the
// sequential XxtSolver::solve loop, so given equal z the executed out is
// also bitwise equal to that subsequence evaluation.
//
// (z itself differs from the sequential solver only in summation
// association, so executed-vs-XxtSolver::solve is compared with a
// tolerance; executed-vs-reference is exact.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mp/runtime.hpp"
#include "solver/xxt.hpp"

namespace tsem::mp {

/// One edge of the rank-level fan-in tree, from this rank's viewpoint.
struct XxtFanStep {
  int level = 0;  ///< rank-tree level s (0 = leaf-pair merges)
  int peer = 0;
  bool send = false;  ///< fan-in role (fan-out mirrors it)
  std::vector<std::int32_t> cols;  ///< carry list, ascending
  ShmChannel* up = nullptr;    ///< fan-in message (odd rep -> even rep)
  ShmChannel* down = nullptr;  ///< fan-out message (reverse)
};

struct DistXxtRank {
  int rank = 0;
  /// Columns touching this rank (ascending elimination index), with the
  /// rank-owned slice of each column's CSC entries.
  std::vector<std::int32_t> cols;
  std::vector<std::int32_t> col_off;
  std::vector<std::int32_t> ent_row;  ///< global dof
  std::vector<double> ent_val;
  std::vector<std::int32_t> owned;  ///< owned dofs, ascending
  /// Fan-in participation, ascending level; at most one send step (the
  /// last).  Fan-out walks this in reverse with roles flipped.
  std::vector<XxtFanStep> steps;
};

struct DistXxtPlan {
  int nranks = 0;
  int levels = 0;  ///< log2(nranks)
  int n = 0;       ///< coarse problem size
  std::vector<int> rank_of_dof;
  std::vector<DistXxtRank> ranks;
  /// Executed fan-in words per rank-tree level, max over edges; entry s
  /// corresponds to XxtSolver::level_msg_words_at(levels)[levels-1-s]
  /// (that vector is root-first) — the fidelity cross-check that the
  /// executed schedule IS the measured one.
  std::vector<std::int64_t> level_max_words;

  /// Create the per-step shm channels (parent, pre-fork).
  void attach_channels(MpSession& session);
};

/// nranks must be a power of two with log2(nranks) <= xxt.nlevels().
DistXxtPlan build_dist_xxt(const XxtSolver& xxt, int nranks);

/// Per-rank solve scratch (z accumulator + touched flags + pack buffer).
struct XxtScratch {
  std::vector<double> z;
  std::vector<unsigned char> touched;
  std::vector<double> msg;
};

/// Execute one solve on rank r: reads b (full-length; only owned rows
/// are accessed), writes final values into out at owned rows only
/// (zeroing them first) — ranks share one out array with disjoint rows.
bool dist_xxt_solve(const DistXxtPlan& plan, int r, MpRank& ctx,
                    const double* b, double* out, XxtScratch& scratch);

/// Single-process reference: identical partials, merges, and output
/// association, on plain buffers.  out must have length n.
void dist_xxt_reference(const DistXxtPlan& plan, const double* b,
                        double* out);

}  // namespace tsem::mp
