#include "mp/dist_schwarz.hpp"

#include "common/check.hpp"

namespace tsem::mp {

DistGhost::DistGhost(const GhostExchange& gx,
                     const std::vector<int>& elem_rank, int nranks)
    : dim_(gx.dim()),
      ng1_(gx.ng1()),
      nt_(gx.tang_slots()),
      nlayers_(gx.nlayers()) {
  npe_press_ = 1;
  for (int d = 0; d < dim_; ++d) npe_press_ *= static_cast<std::size_t>(ng1_);
  // The anchor-id gather-scatter is the whole exchange; its dense ids
  // preserve the sharing structure, and slots are element-major with
  // 2*dim*nt per element, so the generic dist-gs builder applies as-is.
  plan_ = build_dist_gs(gx.gather_scatter().dense_id(), 2 * dim_ * nt_,
                        elem_rank, nranks);
}

std::size_t DistGhost::donor_node(std::size_t slot, int layer) const {
  // GhostExchange::donor_node with a rank-local element index — same
  // index math, local e.
  const int t = static_cast<int>(slot % static_cast<std::size_t>(nt_));
  const int f = static_cast<int>((slot / static_cast<std::size_t>(nt_)) %
                                 static_cast<std::size_t>(2 * dim_));
  const std::size_t e =
      slot / (static_cast<std::size_t>(nt_) * 2 * static_cast<std::size_t>(dim_));
  const int axis = f / 2;
  const int side = f % 2;
  int idx[3] = {0, 0, 0};
  idx[axis] = side == 0 ? layer : ng1_ - 1 - layer;
  if (dim_ == 2) {
    idx[1 - axis] = t;
    return (e * ng1_ + idx[1]) * ng1_ + idx[0];
  }
  int taxes[2], ti = 0;
  for (int d = 0; d < 3; ++d)
    if (d != axis) taxes[ti++] = d;
  idx[taxes[0]] = t % ng1_;
  idx[taxes[1]] = t / ng1_;
  return ((e * ng1_ + idx[2]) * ng1_ + idx[1]) * ng1_ + idx[0];
}

bool DistGhost::exchange_begin(int rank, MpRank& ctx, const GsChannels& ch,
                               const double* p, Scratch& s) const {
  const DistGsRank& rk = plan_.ranks[static_cast<std::size_t>(rank)];
  const std::size_t ns = rk.nlocal;
  s.own.resize(static_cast<std::size_t>(nlayers_) * ns);
  s.buf.resize(static_cast<std::size_t>(nlayers_) * ns);
  for (int l = 0; l < nlayers_; ++l) {
    double* own = s.own.data() + static_cast<std::size_t>(l) * ns;
    double* buf = s.buf.data() + static_cast<std::size_t>(l) * ns;
    for (std::size_t slot = 0; slot < ns; ++slot) {
      own[slot] = p[donor_node(slot, l)];
      buf[slot] = own[slot];
    }
    // All layers' messages go out before any boundary wait; the per-nbr
    // channels are rings with >= nlayers slots, so nothing blocks here.
    if (!dist_gs_begin(rk, ctx, ch, buf, GsOp::Add, s.gs)) return false;
  }
  return true;
}

bool DistGhost::exchange_finish(int rank, MpRank& ctx, const GsChannels& ch,
                                const double* p, double* ghost,
                                Scratch& s) const {
  (void)p;
  const DistGsRank& rk = plan_.ranks[static_cast<std::size_t>(rank)];
  const std::size_t ns = rk.nlocal;
  for (int l = 0; l < nlayers_; ++l) {
    double* own = s.own.data() + static_cast<std::size_t>(l) * ns;
    double* buf = s.buf.data() + static_cast<std::size_t>(l) * ns;
    if (!dist_gs_finish(rk, ctx, ch, buf, GsOp::Add, s.gs)) return false;
    double* g = ghost + static_cast<std::size_t>(l) * ns;
    for (std::size_t slot = 0; slot < ns; ++slot)
      g[slot] = buf[slot] - own[slot];
  }
  return true;
}

bool DistGhost::finish_boundary(int rank, MpRank& ctx, const GsChannels& ch,
                                Scratch& s) const {
  const DistGsRank& rk = plan_.ranks[static_cast<std::size_t>(rank)];
  const std::size_t ns = rk.nlocal;
  for (int l = 0; l < nlayers_; ++l) {
    double* buf = s.buf.data() + static_cast<std::size_t>(l) * ns;
    if (!dist_gs_finish(rk, ctx, ch, buf, GsOp::Add, s.gs)) return false;
  }
  return true;
}

void DistGhost::extract_ghost(int rank, const std::int32_t* elems,
                              std::size_t nelems, double* ghost,
                              const Scratch& s) const {
  const DistGsRank& rk = plan_.ranks[static_cast<std::size_t>(rank)];
  const std::size_t ns = rk.nlocal;
  const std::size_t spe =
      static_cast<std::size_t>(2 * dim_) * static_cast<std::size_t>(nt_);
  for (std::size_t i = 0; i < nelems; ++i) {
    const std::size_t s0 = static_cast<std::size_t>(elems[i]) * spe;
    for (int l = 0; l < nlayers_; ++l) {
      const double* own = s.own.data() + static_cast<std::size_t>(l) * ns;
      const double* buf = s.buf.data() + static_cast<std::size_t>(l) * ns;
      double* g = ghost + static_cast<std::size_t>(l) * ns;
      for (std::size_t slot = s0; slot < s0 + spe; ++slot)
        g[slot] = buf[slot] - own[slot];
    }
  }
}

bool DistGhost::exchange(int rank, MpRank& ctx, const GsChannels& ch,
                         const double* p, double* ghost, Scratch& s) const {
  return exchange_begin(rank, ctx, ch, p, s) &&
         exchange_finish(rank, ctx, ch, p, ghost, s);
}

bool DistGhost::scatter_add(int rank, MpRank& ctx, const GsChannels& ch,
                            const double* v, double* p, Scratch& s) const {
  const DistGsRank& rk = plan_.ranks[static_cast<std::size_t>(rank)];
  const std::size_t ns = rk.nlocal;
  s.own.resize(ns);
  s.buf.resize(ns);
  for (int l = 0; l < nlayers_; ++l) {
    const double* g = v + static_cast<std::size_t>(l) * ns;
    for (std::size_t slot = 0; slot < ns; ++slot) {
      s.own[slot] = g[slot];
      s.buf[slot] = g[slot];
    }
    // One full op per layer (send + drain) — the reverse path has no
    // compute to hide, so no multi-layer in-flight window is needed.
    if (!dist_gs_op(rk, ctx, ch, s.buf.data(), GsOp::Add, s.gs))
      return false;
    for (std::size_t slot = 0; slot < ns; ++slot)
      p[donor_node(slot, l)] += s.buf[slot] - s.own[slot];
  }
  return true;
}

}  // namespace tsem::mp
