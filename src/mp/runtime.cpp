#include "mp/runtime.hpp"

#include <fcntl.h>
#include <sched.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <new>
#include <utility>

#include "common/check.hpp"
#include "fleet/proc.hpp"

namespace tsem::mp {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool fail_err(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

/// Exit code for a rank whose comm wait aborted/timed out (distinct from
/// user failure codes so the parent's report names the mechanism).
constexpr int kRankExitAborted = 74;
constexpr int kRankExitException = 75;

void sleep_us(int us) {
  timespec ts{};
  ts.tv_sec = us / 1'000'000;
  ts.tv_nsec = static_cast<long>(us % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

/// TSEM_MP_SEND_DELAY="rank:us" — per-publish delay injected on one rank
/// (slow-neighbor test seam).  Returns {-1, 0} when unset/malformed.
std::pair<int, int> parse_send_delay() {
  const char* env = std::getenv("TSEM_MP_SEND_DELAY");
  if (!env) return {-1, 0};
  int rank = -1, us = 0;
  if (std::sscanf(env, "%d:%d", &rank, &us) != 2 || rank < 0 || us < 0)
    return {-1, 0};
  return {rank, us};
}

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Compute: return "compute";
    case Phase::Gs: return "gs";
    case Phase::Allreduce: return "allreduce";
    case Phase::Coarse: return "coarse";
  }
  return "?";
}

MpSession::MpSession(MpOptions opt) : opt_(opt) {
  TSEM_REQUIRE(opt_.nranks >= 1);
  // Oversubscription: with more ranks than cores every liveness bound
  // must stretch by the scheduling slowdown factor, and spin waits must
  // back off (a descheduled peer needs OUR timeslice to make progress).
  const long ncores = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncores > 0 && opt_.nranks > ncores)
    oversub_ = static_cast<int>(
        (opt_.nranks + ncores - 1) / ncores);
  if (opt_.auto_oversubscribe && oversub_ > 1) {
    opt_.comm_timeout_ms *= oversub_;
    opt_.watchdog_ms *= oversub_;
  }
  if (opt_.spin_sleep_us < 0)
    opt_.spin_sleep_us = oversub_ > 1 ? 50 : 0;
  void* mem = arena_.alloc(sizeof(Control));
  ctl_ = new (mem) Control{};
  ctl_->abort.store(0, std::memory_order_relaxed);
  ctl_->barrier.init(opt_.nranks);
  allreduce_slots_ =
      arena_.alloc_n<double>(2 * static_cast<std::size_t>(opt_.nranks));
  phase_sec_ = arena_.alloc_n<double>(static_cast<std::size_t>(opt_.nranks) *
                                      kNumPhases);
}

double MpSession::phase_max_seconds(Phase p) const {
  double mx = 0.0;
  for (int r = 0; r < opt_.nranks; ++r)
    mx = std::max(mx, phase_seconds(r, p));
  return mx;
}

double MpSession::phase_seconds(int rank, Phase p) const {
  return phase_sec_[static_cast<std::size_t>(rank) * kNumPhases +
                    static_cast<int>(p)];
}

bool MpSession::run(const std::function<int(MpRank&)>& fn,
                    std::string* err) {
  TSEM_REQUIRE(!ran_);
  ran_ = true;
  arena_.seal();
  // The parent may be about to die too (test drills); a rank writing a
  // heartbeat must get EPIPE, not SIGPIPE — same contract as fleet
  // workers, and children inherit the disposition.
  fleet::ignore_sigpipe();
  const auto [delay_rank, delay_us] = parse_send_delay();

  struct RankProc {
    pid_t pid = -1;
    int fd = -1;
    Clock::time_point last_beat{};
    bool exited = false;
    int status = 0;
  };
  std::vector<RankProc> procs(static_cast<std::size_t>(opt_.nranks));

  for (int r = 0; r < opt_.nranks; ++r) {
    int p[2];
    if (::pipe(p) != 0) {
      ctl_->abort.store(1, std::memory_order_release);
      for (int k = 0; k < r; ++k) ::kill(procs[k].pid, SIGKILL);
      for (int k = 0; k < r; ++k) {
        int st = 0;
        fleet::xwaitpid(procs[k].pid, &st, 0);
        ::close(procs[k].fd);
      }
      return fail_err(err, std::string("mp: pipe: ") + std::strerror(errno));
    }
    // Children inherit fully-buffered stdio; drain before fork so rank
    // output is never duplicated (same hazard as the fleet supervisor).
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(p[0]);
      ::close(p[1]);
      ctl_->abort.store(1, std::memory_order_release);
      for (int k = 0; k < r; ++k) ::kill(procs[k].pid, SIGKILL);
      for (int k = 0; k < r; ++k) {
        int st = 0;
        fleet::xwaitpid(procs[k].pid, &st, 0);
        ::close(procs[k].fd);
      }
      return fail_err(err, std::string("mp: fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Rank process: drop parent-side fds, run the rank body, _exit —
      // never return into the caller's stack.
      ::close(p[0]);
      for (int k = 0; k < r; ++k) ::close(procs[k].fd);
      MpRank ctx;
      ctx.ctl_ = ctl_;
      ctx.allreduce_slots_ = allreduce_slots_;
      ctx.phase_sec_ = phase_sec_;
      ctx.rank_ = r;
      ctx.nranks_ = opt_.nranks;
      ctx.comm_timeout_ms_ = opt_.comm_timeout_ms;
      ctx.spin_sleep_us_ = opt_.spin_sleep_us;
      ctx.send_delay_us_ = (r == delay_rank) ? delay_us : 0;
      ctx.hb_fd_ = p[1];
      ctx.maybe_beat();  // announce liveness before any user code
      int code = 0;
      try {
        code = fn(ctx);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[mp rank %d] exception: %s\n", r, e.what());
        code = kRankExitException;
      } catch (...) {
        std::fprintf(stderr, "[mp rank %d] unknown exception\n", r);
        code = kRankExitException;
      }
      if (code != 0) ctl_->abort.store(1, std::memory_order_release);
      std::fflush(stdout);
      std::fflush(stderr);
      ::_exit(code & 0xff);
    }
    ::close(p[1]);
    ::fcntl(p[0], F_SETFL, O_NONBLOCK);
    procs[static_cast<std::size_t>(r)].pid = pid;
    procs[static_cast<std::size_t>(r)].fd = p[0];
    procs[static_cast<std::size_t>(r)].last_beat = Clock::now();
  }

  // Supervisor loop (fleet shape): poll heartbeats, reap, watchdog.
  std::string first_failure;
  bool abort_raised = false;
  Clock::time_point abort_since{};
  auto note_failure = [&](int r, const std::string& what) {
    // Chronological (reap-order) join: an aborted peer often exits before
    // the root cause is reaped, so one entry alone can mislead.
    if (!first_failure.empty()) first_failure += "; ";
    first_failure += "mp rank " + std::to_string(r) + ": " + what;
    if (!abort_raised) {
      ctl_->abort.store(1, std::memory_order_release);
      abort_raised = true;
      abort_since = Clock::now();
    }
  };

  int alive = opt_.nranks;
  std::vector<pollfd> fds;
  char buf[256];
  while (alive > 0) {
    fds.clear();
    for (const RankProc& rp : procs)
      if (!rp.exited) fds.push_back(pollfd{rp.fd, POLLIN, 0});
    fleet::xpoll(fds.data(), fds.size(), opt_.poll_ms);

    for (RankProc& rp : procs) {
      if (rp.exited) continue;
      for (;;) {
        const ssize_t n = fleet::xread(rp.fd, buf, sizeof buf);
        if (n <= 0) break;
        rp.last_beat = Clock::now();
      }
    }

    for (int r = 0; r < opt_.nranks; ++r) {
      RankProc& rp = procs[static_cast<std::size_t>(r)];
      if (rp.exited) continue;
      int status = 0;
      const pid_t got = fleet::xwaitpid(rp.pid, &status, WNOHANG);
      if (got != rp.pid) continue;
      rp.exited = true;
      rp.status = status;
      ::close(rp.fd);
      --alive;
      if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
        std::string what = fleet::wait_status_str(status);
        if (WIFEXITED(status) && WEXITSTATUS(status) == kRankExitAborted)
          what += " (comm wait aborted/timed out)";
        if (WIFEXITED(status) && WEXITSTATUS(status) == kRankExitException)
          what += " (uncaught exception)";
        note_failure(r, what);
      }
    }

    const Clock::time_point now = Clock::now();
    for (int r = 0; r < opt_.nranks; ++r) {
      RankProc& rp = procs[static_cast<std::size_t>(r)];
      if (rp.exited) continue;
      if (seconds_between(rp.last_beat, now) * 1000.0 >
          static_cast<double>(opt_.watchdog_ms)) {
        note_failure(r, "watchdog: no heartbeat for " +
                            std::to_string(opt_.watchdog_ms) + "ms");
        ::kill(rp.pid, SIGKILL);
      }
    }

    // Abort escalation: peers get a grace window to observe the flag
    // and exit on their own (clean logs); stragglers are killed.
    if (abort_raised &&
        seconds_between(abort_since, Clock::now()) > 2.0) {
      for (RankProc& rp : procs)
        if (!rp.exited) ::kill(rp.pid, SIGKILL);
      abort_since = Clock::now();  // re-arm, don't spam
    }
  }

  if (!first_failure.empty()) return fail_err(err, first_failure);
  return true;
}

// ---------------------------------------------------------------------------
// MpRank

void MpRank::maybe_beat() {
  if (hb_fd_ < 0) return;
  const std::int64_t t = now_ns();
  if (t - last_beat_ns_ < 50'000'000) return;  // 50ms cadence
  last_beat_ns_ = t;
  errno = 0;
  if (::write(hb_fd_, ".", 1) < 0 && errno == EPIPE) {
    // Supervisor gone: nobody will reap results, so tear the session
    // down instead of spinning as an orphan.
    ctl_->abort.store(1, std::memory_order_release);
    hb_fd_ = -1;
  }
}

template <class Pred>
bool MpRank::spin_until(Pred&& ready) {
  const std::int64_t start = now_ns();
  const std::int64_t timeout =
      static_cast<std::int64_t>(comm_timeout_ms_) * 1'000'000;
  int iter = 0;
  long probes = 0;
  for (;;) {
    if (ready()) return true;
    if (ctl_->abort.load(std::memory_order_acquire)) return false;
    // Single-core friendliness: the peer we are waiting on may need our
    // timeslice to make progress, so always yield between probes.
    ::sched_yield();
    // Oversubscribed backpressure: a yield storm among waiting ranks
    // starves the runnable ones, so after a burst of pure yields (fast
    // path for an almost-ready peer) back off with short sleeps that
    // hand the core over for a full scheduler tick's worth of work.
    if (spin_sleep_us_ > 0 && ++probes > 256) sleep_us(spin_sleep_us_);
    if (++iter >= 64) {
      iter = 0;
      maybe_beat();
      if (now_ns() - start > timeout) {
        fail();  // convert a protocol deadlock into an error, not a hang
        return false;
      }
    }
  }
}

bool MpRank::ok() const {
  return ctl_->abort.load(std::memory_order_acquire) == 0;
}

void MpRank::fail() { ctl_->abort.store(1, std::memory_order_release); }

bool MpRank::barrier() {
  maybe_beat();
  const int my_sense = 1 - barrier_sense_;
  if (ctl_->barrier.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      nranks_) {
    // Last arrival: reset the counter for the next episode, then flip
    // the shared sense to release everyone (order matters: the counter
    // must be reset before any peer can arrive at the next barrier).
    ctl_->barrier.arrived.store(0, std::memory_order_relaxed);
    ctl_->barrier.sense.store(my_sense, std::memory_order_release);
  } else {
    if (!spin_until([&] {
          return ctl_->barrier.sense.load(std::memory_order_acquire) ==
                 my_sense;
        }))
      return false;
  }
  barrier_sense_ = my_sense;
  return true;
}

bool MpRank::send(ShmChannel* ch, const double* data, std::size_t n) {
  maybe_beat();
  if (send_delay_us_ > 0) sleep_us(send_delay_us_);  // slow-neighbor seam
  TSEM_REQUIRE(n <= ch->cap_words);
  // Single producer: seq is ours to read relaxed.
  const std::uint64_t m = ch->seq.load(std::memory_order_relaxed);
  if (!spin_until([&] {
        return m - ch->ack.load(std::memory_order_acquire) < ch->nslots;
      }))
    return false;
  *ch->slot_len(m) = n;
  std::memcpy(ch->slot_data(m), data, n * sizeof(double));
  ch->seq.store(m + 1, std::memory_order_release);
  return true;
}

bool MpRank::recv(ShmChannel* ch, double* data, std::size_t n) {
  maybe_beat();
  // Single consumer: ack is ours to read relaxed.
  const std::uint64_t m = ch->ack.load(std::memory_order_relaxed);
  if (!spin_until(
          [&] { return ch->seq.load(std::memory_order_acquire) > m; }))
    return false;
  if (*ch->slot_len(m) != n) {
    fail();  // protocol mismatch: lengths are part of the plan
    return false;
  }
  std::memcpy(data, ch->slot_data(m), n * sizeof(double));
  ch->ack.store(m + 1, std::memory_order_release);
  return true;
}

bool MpRank::allreduce_sum(double x, double* out) {
  // Two slot arrays alternated by call parity: the barrier of call k+1
  // orders every rank's read of array (k mod 2) before any rank's write
  // of call k+2 into the same array, so one barrier per call suffices.
  double* slots =
      allreduce_slots_ + (allreduce_calls_ & 1u) * nranks_;
  ++allreduce_calls_;
  slots[rank_] = x;
  if (!barrier()) return false;
  // Fixed ascending-rank association: bitwise identical on every rank,
  // every run, and equal to the single-process reference sum.
  double acc = 0.0;
  for (int r = 0; r < nranks_; ++r) acc += slots[r];
  *out = acc;
  return true;
}

void MpRank::phase_add(Phase p, double seconds) {
  phase_sec_[static_cast<std::size_t>(rank_) * kNumPhases +
             static_cast<int>(p)] += seconds;
}

}  // namespace tsem::mp
