// Overlap engine for the executed tier (DESIGN.md "Overlap protocol"):
// per-rank interior/boundary element classification derived from the
// dist-gs plan's shared-dof sets, plus overlapped apply drivers that
// publish, run interior-element compute while neighbor messages are in
// flight, then finish and complete the boundary elements.
//
// Bitwise contract.  Per-element compute (core/operators.hpp element-list
// kernels, solver/schwarz.hpp SchwarzLocalSolver) touches disjoint
// element blocks, so sweeping boundary-then-interior produces the same
// values as one full sweep; the dist-gs publish packs pre-reduction
// copies and the canonical-order merges are untouched — ONLY the
// placement of publish/finish relative to the compute calls differs
// between the serialized and overlapped schedules.  Overlapped results
// are therefore bitwise equal to back-to-back by construction, which the
// bench and test_mp assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "mp/dist_gs.hpp"
#include "mp/dist_schwarz.hpp"

namespace tsem::mp {

/// Rank-local element index lists (indices into DistGsRank::elems, i.e.
/// block indices of the rank-local field), each ascending, disjoint, and
/// jointly covering every local element.
struct OverlapSplit {
  std::vector<std::int32_t> interior;
  std::vector<std::int32_t> boundary;
  [[nodiscard]] std::size_t nelems() const {
    return interior.size() + boundary.size();
  }
};

/// Classify rank rk's elements under its dist-gs plan: an element is
/// BOUNDARY iff it owns at least one dof copy in a cross-rank boundary
/// group (a bnd_entry own entry — exactly the dofs whose final value
/// waits on neighbor messages; send_ix indices are a subset of these).
/// Rank-local shared groups (int_ix) do NOT make an element boundary:
/// they are reduced in the begin phase.  npe is the plan's
/// values-per-element (DistGsPlan::npe).
OverlapSplit classify_elements(const DistGsRank& rk, int npe);

/// Element-sweep callback: fn(elems, nelems) runs the per-element work
/// for the listed rank-local element indices.
using ElemFn = std::function<void(const std::int32_t*, std::size_t)>;

/// Wall-clock split of one overlapped apply (seconds, accumulated).
struct OverlapTimes {
  double compute = 0.0;   ///< element sweeps (and ghost extraction)
  double exchange = 0.0;  ///< publish / interior reduce / finish wait
};

/// One operator apply + gather-scatter with the compute sweep hidden
/// behind the exchange.  compute(elems, n) must fill the listed
/// elements' blocks of u; then u is gs-assembled in place.
///
/// Schedule (overlap = false, the serialized reference):
///   compute(boundary); compute(interior); publish; interior-reduce;
///   finish.
/// Schedule (overlap = true):
///   compute(boundary); publish; compute(interior); interior-reduce;
///   finish.
/// The interior reduce always runs after ALL compute (rank-local shared
/// groups may span interior and boundary elements); both schedules issue
/// the identical compute and merge operations, so results are bitwise
/// equal.  Returns false if the session aborted.
bool overlapped_gs_apply(const DistGsRank& rk, const OverlapSplit& split,
                         MpRank& ctx, const GsChannels& ch, double* u,
                         GsOp op, GsScratch& scratch, const ElemFn& compute,
                         bool overlap, OverlapTimes* times);

/// One Schwarz ghost exchange + local-solve sweep with the interior
/// solves hidden behind the anchor exchange.  local_solve(elems, n) must
/// consume ghost_out for exactly the listed elements' slots (all layers
/// of those slots are final when it runs).  split must be the
/// classification of ghost.plan() (anchor sharing), not of an operator
/// plan.
///
/// Schedule (overlap = false): begin; finish; extract(interior);
///   solve(interior); extract(boundary); solve(boundary).
/// Schedule (overlap = true): begin; extract(interior); solve(interior);
///   finish; extract(boundary); solve(boundary).
/// Interior elements' anchor groups are rank-local and reduced in the
/// begin phase, so their ghost slots are final before finish; every slot
/// is extracted by the same expression either way.  Returns false if the
/// session aborted.
bool overlapped_ghost_exchange(const DistGhost& ghost,
                               const OverlapSplit& split, int rank,
                               MpRank& ctx, const GsChannels& ch,
                               const double* p, double* ghost_out,
                               DistGhost::Scratch& s,
                               const ElemFn& local_solve, bool overlap,
                               OverlapTimes* times);

}  // namespace tsem::mp
