#include "mp/dist_gs.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace tsem::mp {
namespace {

// Same reduction algebra as GatherScatter::run_groups — the bitwise
// contract needs identical init values and apply expressions, not just
// mathematically equal ones.
inline double reduce_init(GsOp o) {
  switch (o) {
    case GsOp::Add: return 0.0;
    case GsOp::Mul: return 1.0;
    case GsOp::Min: return std::numeric_limits<double>::infinity();
    case GsOp::Max: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double reduce_apply(GsOp o, double a, double b) {
  switch (o) {
    case GsOp::Add: return a + b;
    case GsOp::Mul: return a * b;
    case GsOp::Min: return a < b ? a : b;
    case GsOp::Max: return a > b ? a : b;
  }
  return a;
}

int nbr_ordinal(const std::vector<int>& nbrs, int rank) {
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), rank);
  TSEM_REQUIRE(it != nbrs.end() && *it == rank);
  return static_cast<int>(it - nbrs.begin());
}

}  // namespace

std::int64_t DistGsPlan::send_words(int r) const {
  std::int64_t w = 0;
  for (const auto& six : ranks[static_cast<std::size_t>(r)].send_ix)
    w += static_cast<std::int64_t>(six.size());
  return w;
}

std::int64_t DistGsPlan::max_pair_words() const {
  std::int64_t m = 0;
  for (const DistGsRank& rk : ranks)
    for (const auto& six : rk.send_ix)
      m = std::max(m, static_cast<std::int64_t>(six.size()));
  return m;
}

DistGsPlan build_dist_gs(const std::vector<std::int64_t>& ids, int npe,
                         const std::vector<int>& elem_rank, int nranks) {
  TSEM_REQUIRE(npe > 0);
  TSEM_REQUIRE(ids.size() % static_cast<std::size_t>(npe) == 0);
  const std::size_t nelem = ids.size() / static_cast<std::size_t>(npe);
  TSEM_REQUIRE(elem_rank.size() == nelem);

  DistGsPlan plan;
  plan.nranks = nranks;
  plan.npe = npe;
  plan.nglobal = ids.size();
  plan.ranks.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) plan.ranks[r].rank = r;

  // Element ownership: rank-local element order preserves the global
  // ascending order, so the rank-local field layout is a subsequence of
  // the global element-major layout (what makes the canonical sweep
  // order below identical in both views).
  std::vector<std::int32_t> local_elem(nelem);
  for (std::size_t e = 0; e < nelem; ++e) {
    const int r = elem_rank[e];
    TSEM_REQUIRE(r >= 0 && r < nranks);
    local_elem[e] =
        static_cast<std::int32_t>(plan.ranks[r].elems.size());
    plan.ranks[r].elems.push_back(static_cast<std::int32_t>(e));
  }
  for (DistGsRank& rk : plan.ranks)
    rk.nlocal = rk.elems.size() * static_cast<std::size_t>(npe);

  const auto rank_of = [&](std::size_t g) {
    return elem_rank[g / static_cast<std::size_t>(npe)];
  };
  const auto local_ix = [&](std::size_t g) {
    return static_cast<std::int32_t>(
        static_cast<std::size_t>(local_elem[g / npe]) *
            static_cast<std::size_t>(npe) +
        g % static_cast<std::size_t>(npe));
  };

  // Canonical sweep order: ascending (id, global local index).  This is
  // the exact member order GatherScatter uses inside each group.
  std::vector<std::int32_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              return ids[a] < ids[b] || (ids[a] == ids[b] && a < b);
            });

  // Pass 1: find shared groups; interior groups land directly, boundary
  // groups are remembered (with their participant rank sets) for pass 2
  // once neighbor ordinals exist.
  struct BndGroup {
    std::size_t begin, end;  ///< range in `order`
  };
  std::vector<BndGroup> bnd_groups;
  std::vector<std::pair<int, int>> nbr_pairs;  ///< (rank, neighbor rank)
  std::vector<int> parts;                      ///< scratch participant set
  for (DistGsRank& rk : plan.ranks) rk.int_off.push_back(0);
  std::size_t i = 0;
  const std::size_t n = ids.size();
  while (i < n) {
    std::size_t j = i;
    while (j < n && ids[order[j]] == ids[order[i]]) ++j;
    if (j - i >= 2) {
      parts.clear();
      for (std::size_t k = i; k < j; ++k) {
        const int r = rank_of(static_cast<std::size_t>(order[k]));
        if (std::find(parts.begin(), parts.end(), r) == parts.end())
          parts.push_back(r);
      }
      if (parts.size() == 1) {
        DistGsRank& rk = plan.ranks[static_cast<std::size_t>(parts[0])];
        for (std::size_t k = i; k < j; ++k)
          rk.int_ix.push_back(
              local_ix(static_cast<std::size_t>(order[k])));
        rk.int_off.push_back(static_cast<std::int32_t>(rk.int_ix.size()));
      } else {
        bnd_groups.push_back(BndGroup{i, j});
        for (int a : parts)
          for (int b : parts)
            if (a != b) nbr_pairs.emplace_back(a, b);
      }
    }
    i = j;
  }

  std::sort(nbr_pairs.begin(), nbr_pairs.end());
  nbr_pairs.erase(std::unique(nbr_pairs.begin(), nbr_pairs.end()),
                  nbr_pairs.end());
  for (const auto& [a, b] : nbr_pairs)
    plan.ranks[static_cast<std::size_t>(a)].nbrs.push_back(b);
  for (DistGsRank& rk : plan.ranks) {
    rk.send_ix.resize(rk.nbrs.size());
    rk.bnd_off.push_back(0);
  }

  // Pass 2: boundary groups in sweep order.  Each participant sends its
  // raw copies (ascending) to every other participant, and records the
  // group's merge recipe: own copies by local index, remote copies by
  // neighbor ordinal (consumed via a cursor, in this same global order —
  // which matches the sender's append order by construction).
  for (const BndGroup& bg : bnd_groups) {
    parts.clear();
    for (std::size_t k = bg.begin; k < bg.end; ++k) {
      const int r = rank_of(static_cast<std::size_t>(order[k]));
      if (std::find(parts.begin(), parts.end(), r) == parts.end())
        parts.push_back(r);
    }
    for (std::size_t k = bg.begin; k < bg.end; ++k) {
      const std::size_t g = static_cast<std::size_t>(order[k]);
      const int owner = rank_of(g);
      const std::int32_t lix = local_ix(g);
      DistGsRank& own_rk = plan.ranks[static_cast<std::size_t>(owner)];
      for (int p : parts) {
        if (p == owner) continue;
        own_rk.send_ix[static_cast<std::size_t>(
                           nbr_ordinal(own_rk.nbrs, p))]
            .push_back(lix);
      }
    }
    for (int p : parts) {
      DistGsRank& rk = plan.ranks[static_cast<std::size_t>(p)];
      for (std::size_t k = bg.begin; k < bg.end; ++k) {
        const std::size_t g = static_cast<std::size_t>(order[k]);
        const int owner = rank_of(g);
        if (owner == p)
          rk.bnd_entry.push_back(~local_ix(g));
        else
          rk.bnd_entry.push_back(nbr_ordinal(rk.nbrs, owner));
      }
      rk.bnd_off.push_back(static_cast<std::int32_t>(rk.bnd_entry.size()));
    }
  }

  // Receive sizes mirror the peer's send sizes.
  for (DistGsRank& rk : plan.ranks) {
    rk.recv_words.resize(rk.nbrs.size());
    rk.recv_off.assign(rk.nbrs.size() + 1, 0);
    for (std::size_t q = 0; q < rk.nbrs.size(); ++q) {
      const DistGsRank& peer =
          plan.ranks[static_cast<std::size_t>(rk.nbrs[q])];
      rk.recv_words[q] = static_cast<std::int64_t>(
          peer.send_ix[static_cast<std::size_t>(
                           nbr_ordinal(peer.nbrs, rk.rank))]
              .size());
      rk.recv_off[q + 1] = rk.recv_off[q] + rk.recv_words[q];
    }
  }
  return plan;
}

bool dist_gs_publish(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                     const double* u, GsScratch& scratch) {
  for (std::size_t q = 0; q < r.nbrs.size(); ++q) {
    const auto& six = r.send_ix[q];
    scratch.send.resize(six.size());
    for (std::size_t k = 0; k < six.size(); ++k)
      scratch.send[k] = u[six[k]];
    if (!ctx.send(ch.to[q], scratch.send.data(), six.size())) return false;
  }
  return true;
}

void dist_gs_interior(const DistGsRank& r, double* u, GsOp op) {
  const std::size_t ng = r.int_off.size() - 1;
  for (std::size_t g = 0; g < ng; ++g) {
    const std::int32_t b = r.int_off[g];
    const std::int32_t e = r.int_off[g + 1];
    double acc = reduce_init(op);
    for (std::int32_t k = b; k < e; ++k)
      acc = reduce_apply(op, acc, u[r.int_ix[k]]);
    for (std::int32_t k = b; k < e; ++k) u[r.int_ix[k]] = acc;
  }
}

bool dist_gs_begin(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                   double* u, GsOp op, GsScratch& scratch) {
  if (!dist_gs_publish(r, ctx, ch, u, scratch)) return false;
  // Interior groups overlap against neighbor completion.
  dist_gs_interior(r, u, op);
  return true;
}

bool dist_gs_finish(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                    double* u, GsOp op, GsScratch& scratch) {
  const std::size_t total =
      static_cast<std::size_t>(r.recv_off[r.nbrs.size()]);
  scratch.recv.resize(total);
  for (std::size_t q = 0; q < r.nbrs.size(); ++q)
    if (!ctx.recv(ch.from[q], scratch.recv.data() + r.recv_off[q],
                  static_cast<std::size_t>(r.recv_words[q])))
      return false;
  scratch.cursor.assign(r.nbrs.size(), 0);
  const std::size_t ng = r.bnd_off.size() - 1;
  for (std::size_t g = 0; g < ng; ++g) {
    const std::int32_t b = r.bnd_off[g];
    const std::int32_t e = r.bnd_off[g + 1];
    double acc = reduce_init(op);
    for (std::int32_t k = b; k < e; ++k) {
      const std::int32_t ent = r.bnd_entry[k];
      if (ent < 0)
        acc = reduce_apply(op, acc, u[~ent]);
      else
        acc = reduce_apply(
            op, acc,
            scratch.recv[static_cast<std::size_t>(r.recv_off[ent]) +
                         static_cast<std::size_t>(scratch.cursor[ent]++)]);
    }
    for (std::int32_t k = b; k < e; ++k) {
      const std::int32_t ent = r.bnd_entry[k];
      if (ent < 0) u[~ent] = acc;
    }
  }
  return true;
}

bool dist_gs_op(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                double* u, GsOp op, GsScratch& scratch) {
  return dist_gs_begin(r, ctx, ch, u, op, scratch) &&
         dist_gs_finish(r, ctx, ch, u, op, scratch);
}

void dist_gs_reference(const DistGsPlan& plan, double* u_global, GsOp op) {
  // Pack every rank's sends first (values BEFORE any reduction), exactly
  // as the concurrent ranks do.
  std::vector<std::vector<std::vector<double>>> sent(
      static_cast<std::size_t>(plan.nranks));
  for (int r = 0; r < plan.nranks; ++r) {
    const DistGsRank& rk = plan.ranks[static_cast<std::size_t>(r)];
    sent[r].resize(rk.nbrs.size());
    for (std::size_t q = 0; q < rk.nbrs.size(); ++q) {
      sent[r][q].reserve(rk.send_ix[q].size());
      for (std::int32_t lix : rk.send_ix[q])
        sent[r][q].push_back(
            u_global[plan.global_index(r, static_cast<std::size_t>(lix))]);
    }
  }
  for (int r = 0; r < plan.nranks; ++r) {
    const DistGsRank& rk = plan.ranks[static_cast<std::size_t>(r)];
    // Interior groups.
    for (std::size_t g = 0; g + 1 < rk.int_off.size(); ++g) {
      double acc = reduce_init(op);
      for (std::int32_t k = rk.int_off[g]; k < rk.int_off[g + 1]; ++k)
        acc = reduce_apply(
            op, acc,
            u_global[plan.global_index(
                r, static_cast<std::size_t>(rk.int_ix[k]))]);
      for (std::int32_t k = rk.int_off[g]; k < rk.int_off[g + 1]; ++k)
        u_global[plan.global_index(
            r, static_cast<std::size_t>(rk.int_ix[k]))] = acc;
    }
    // Boundary groups, consuming each neighbor's packed copies in order.
    std::vector<std::int64_t> cursor(rk.nbrs.size(), 0);
    for (std::size_t g = 0; g + 1 < rk.bnd_off.size(); ++g) {
      double acc = reduce_init(op);
      for (std::int32_t k = rk.bnd_off[g]; k < rk.bnd_off[g + 1]; ++k) {
        const std::int32_t ent = rk.bnd_entry[k];
        if (ent < 0)
          acc = reduce_apply(
              op, acc,
              u_global[plan.global_index(r,
                                         static_cast<std::size_t>(~ent))]);
        else {
          const int peer_ord =
              nbr_ordinal(plan.ranks[static_cast<std::size_t>(rk.nbrs[ent])]
                              .nbrs,
                          r);
          acc = reduce_apply(
              op, acc,
              sent[static_cast<std::size_t>(rk.nbrs[ent])]
                  [static_cast<std::size_t>(peer_ord)]
                  [static_cast<std::size_t>(cursor[ent]++)]);
        }
      }
      for (std::int32_t k = rk.bnd_off[g]; k < rk.bnd_off[g + 1]; ++k) {
        const std::int32_t ent = rk.bnd_entry[k];
        if (ent < 0)
          u_global[plan.global_index(r, static_cast<std::size_t>(~ent))] =
              acc;
      }
    }
  }
}

}  // namespace tsem::mp
