// Distributed gather-scatter: the executed-tier counterpart of
// GatherScatter::op, moving real bytes between rank address spaces over
// mp shm channels.
//
// Bitwise contract.  The production kernel reduces each shared-id group
// over its members in ascending (id, local index) order.  The plan below
// preserves exactly that association across ranks: every sharing rank
// sends its RAW local copies (not partial sums) to every other sharing
// rank, appended in the canonical ascending (id, local index) sweep
// order, and every rank merges each boundary group's copies — its own
// and the received ones — in that same canonical order via per-neighbor
// read cursors.  Floating-point reduction order is therefore identical
// to the single-process kernel, so the executed result is BITWISE equal
// to GatherScatter::op on the assembled field, for every GsOp.
//
// Overlap protocol.  dist_gs_begin packs and publishes all neighbor
// sends, then reduces the rank-interior groups (no remote copies) while
// neighbors are still working; dist_gs_finish consumes the neighbor
// messages and merges the boundary groups.  Callers that have interior
// compute to hide call begin, compute, then finish.
//
// Relation to ClusterSim's CommProfile: the neighbor pairs are the same
// (a rank pair exchanges iff it shares an id), but the executed payload
// carries one word per local COPY of each shared id, where the profile
// counts one word per id per pair — the raw-copy refinement is what buys
// the bitwise guarantee.  Both counts are exposed for the bench JSON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "mp/runtime.hpp"

namespace tsem::mp {

/// One rank's executable share of a distributed gather-scatter.
struct DistGsRank {
  int rank = 0;
  /// Global element ids owned by this rank, ascending — the rank-local
  /// field layout is the subsequence of the global element-major layout
  /// restricted to these elements (npe values per element).
  std::vector<std::int32_t> elems;
  std::size_t nlocal = 0;
  /// Neighbor ranks (ascending) this rank exchanges with.
  std::vector<int> nbrs;
  /// Per neighbor: local indices sent, in canonical sweep order.
  std::vector<std::vector<std::int32_t>> send_ix;
  /// Per neighbor: words received per op (== that neighbor's send size).
  std::vector<std::int64_t> recv_words;
  /// Prefix offsets of each neighbor's segment in the recv scratch.
  std::vector<std::int64_t> recv_off;
  /// Interior groups (every copy rank-local): GatherScatter layout.
  std::vector<std::int32_t> int_ix;
  std::vector<std::int32_t> int_off;
  /// Boundary groups: entries in canonical (ascending global local
  /// index) order.  entry < 0 encodes own local index ~entry; entry >= 0
  /// is a neighbor ordinal whose next unread recv word is this copy.
  std::vector<std::int32_t> bnd_entry;
  std::vector<std::int32_t> bnd_off;
};

/// Partition-wide plan (built once in the parent; ranks read it through
/// fork copy-on-write).
struct DistGsPlan {
  int nranks = 0;
  int npe = 0;
  std::size_t nglobal = 0;  ///< total local values across ranks
  std::vector<DistGsRank> ranks;
  /// Global local-index of rank r's local value l.
  [[nodiscard]] std::size_t global_index(int r, std::size_t l) const {
    const DistGsRank& rk = ranks[static_cast<std::size_t>(r)];
    return static_cast<std::size_t>(
               rk.elems[l / static_cast<std::size_t>(npe)]) *
               static_cast<std::size_t>(npe) +
           l % static_cast<std::size_t>(npe);
  }
  /// Total words rank r sends per op (raw copies).
  [[nodiscard]] std::int64_t send_words(int r) const;
  /// Largest single-neighbor message in the plan (channel sizing).
  [[nodiscard]] std::int64_t max_pair_words() const;
};

DistGsPlan build_dist_gs(const std::vector<std::int64_t>& ids, int npe,
                         const std::vector<int>& elem_rank, int nranks);

/// Channels for one rank, parallel to DistGsRank::nbrs.
struct GsChannels {
  std::vector<ShmChannel*> to;    ///< this rank -> nbrs[i]
  std::vector<ShmChannel*> from;  ///< nbrs[i] -> this rank
};

/// Reusable per-rank buffers (sized on first use).
struct GsScratch {
  std::vector<double> send;
  std::vector<double> recv;
  std::vector<std::int64_t> cursor;  ///< per-neighbor read cursor
};

/// Pack + publish all neighbor messages for u (values BEFORE any
/// reduction — the raw copies the bitwise contract requires).  Returns
/// false if the session aborted.
bool dist_gs_publish(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                     const double* u, GsScratch& scratch);
/// Reduce the rank-interior groups (no remote copies) in place.  Pure
/// local compute — legal anywhere between publish and finish.
void dist_gs_interior(const DistGsRank& r, double* u, GsOp op);
/// publish + interior: pack + publish all neighbor messages for u, then
/// reduce the interior groups in place while neighbors are still
/// working.  Returns false if the session aborted.
bool dist_gs_begin(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                   double* u, GsOp op, GsScratch& scratch);
/// Consume neighbor messages and merge the boundary groups in place.
bool dist_gs_finish(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                    double* u, GsOp op, GsScratch& scratch);
/// begin + finish (no compute overlapped).
bool dist_gs_op(const DistGsRank& r, MpRank& ctx, const GsChannels& ch,
                double* u, GsOp op, GsScratch& scratch);

/// Single-process reference executor: runs the identical partitioned
/// algorithm (same packing, same canonical merges) on the assembled
/// element-major field, in place.  Bitwise equal to both the executed
/// ranks and GatherScatter::op.
void dist_gs_reference(const DistGsPlan& plan, double* u_global, GsOp op);

}  // namespace tsem::mp
