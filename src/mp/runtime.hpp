// Rank-parallel execution runtime: fork-per-rank processes over the shm
// arena, with the fleet engine's fork/heartbeat/reap machinery running
// rank lifecycle.
//
// Execution model
//   * The parent (the bench or test process) builds every shared object
//     — channels, barriers, result buffers — in the ShmArena BEFORE
//     launching.  MpSession::run() then forks P ranks; each child
//     ignores SIGPIPE (fleet/proc.hpp), runs the user function with an
//     MpRank view, and _exit()s with its return code.  Forked children
//     inherit the arena pages at identical addresses, so plans built in
//     parent memory (read-only to ranks, shared copy-on-write) and
//     pointers into the arena both work verbatim.
//   * The parent then runs the supervisor loop shape from src/fleet/:
//     xpoll over per-rank heartbeat pipes, drain for liveness, WNOHANG
//     reap, watchdog SIGKILL on silence.  On the first rank failure it
//     raises the shared abort flag (unblocking every spin wait), reaps
//     the rest, and reports the failure — a crashed rank converts to an
//     error return, never a hang.
//   * Ranks synchronize with a sense-reversing barrier and SPSC message
//     channels (shm.hpp).  All spin waits beat the rank's heartbeat
//     pipe, honor the abort flag, and convert a comm timeout into a
//     clean nonzero exit, so a deadlocked protocol is also an error
//     return, never a hang.
//
// OpenMP caveat: run() must be called before the process enters any
// OpenMP parallel region in flight, and rank functions must stay serial
// (forked children of an OpenMP process may not enter parallel regions).
// The dist_* executors are all serial loops for exactly this reason.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mp/shm.hpp"

namespace tsem::mp {

/// Per-rank phase accounting, mirroring ClusterSim's simulated step
/// breakdown so executed and simulated tiers are directly comparable.
enum class Phase : int { Compute = 0, Gs = 1, Allreduce = 2, Coarse = 3 };
inline constexpr int kNumPhases = 4;
const char* phase_name(Phase p);

struct MpOptions {
  int nranks = 2;
  int comm_timeout_ms = 120000;  ///< spin-wait bound inside ranks
  int watchdog_ms = 120000;      ///< parent-side heartbeat silence bound
  int poll_ms = 20;              ///< parent event-loop tick
  /// Oversubscription support (nranks beyond the machine's cores — the
  /// bench's P=8..16 executed cases on a 4-core runner).  When true and
  /// nranks > online cores, the session stretches comm_timeout_ms and
  /// watchdog_ms by ceil(nranks / cores) — descheduled ranks beat and
  /// drain rings at 1/oversubscription speed, so the liveness bounds
  /// must scale with the same factor or the watchdog false-kills — and
  /// ranks back off their spin waits with short sleeps (see
  /// spin_sleep_us) so waiting ranks donate timeslices instead of
  /// yield-storming against the runnable ones.
  bool auto_oversubscribe = true;
  /// Spin-wait backoff: after a burst of sched_yield probes, sleep this
  /// many microseconds between further probes.  -1 = auto (0 when
  /// nranks <= cores, 50us when oversubscribed); 0 = pure yield.
  int spin_sleep_us = -1;
};

class MpRank;

/// One parent-side rank-parallel session: build shared state, run one
/// fleet of ranks, read back results.  Single-shot by design — the
/// barrier/channel epochs assume a fresh launch.
class MpSession {
 public:
  explicit MpSession(MpOptions opt);

  ShmArena& arena() { return arena_; }
  int nranks() const { return opt_.nranks; }
  /// ceil(nranks / online cores), >= 1: the factor the liveness bounds
  /// were stretched by (1 = not oversubscribed).
  int oversubscription() const { return oversub_; }
  /// The options after oversubscription stretching (what ranks run with).
  const MpOptions& options() const { return opt_; }

  /// Shared zeroed buffer visible to parent and all ranks.
  double* shared_doubles(std::size_t n) { return arena_.alloc_n<double>(n); }

  /// SPSC channel; direction is by convention of the caller's plan.
  ShmChannel* channel(std::size_t cap_words, std::size_t nslots = 1) {
    return make_channel(arena_, cap_words, nslots);
  }

  /// Fork nranks processes, run `fn(rank)` in each, supervise to
  /// completion.  Returns true iff every rank exited 0; otherwise *err
  /// describes the first failure.  fn's return value is the rank's exit
  /// code.  Callable once.
  bool run(const std::function<int(MpRank&)>& fn, std::string* err);

  /// Max over ranks of seconds attributed to `p` during the last run —
  /// the critical-path executed time for that phase.
  double phase_max_seconds(Phase p) const;
  /// Seconds rank r spent in phase p during the last run.
  double phase_seconds(int rank, Phase p) const;

 private:
  friend class MpRank;
  struct Control {
    std::atomic<int> abort;
    ShmBarrier barrier;
  };
  MpOptions opt_;
  int oversub_ = 1;
  ShmArena arena_;
  Control* ctl_ = nullptr;
  double* allreduce_slots_ = nullptr;  ///< 2 * nranks (parity-alternated)
  double* phase_sec_ = nullptr;        ///< nranks * kNumPhases
  bool ran_ = false;
};

/// A rank's private view of the session (lives in the child process).
/// All blocking calls return false when the session aborted or the comm
/// timeout expired; the rank function should then return nonzero.
class MpRank {
 public:
  int rank() const { return rank_; }
  int nranks() const { return nranks_; }

  bool barrier();
  /// Publish n doubles into ch (blocks while the ring is full).  The
  /// TSEM_MP_SEND_DELAY="rank:us" environment variable (read at launch)
  /// injects a us-microsecond sleep before every publish on that one
  /// rank — the seeded slow-neighbor seam test_mp uses to prove the
  /// overlap finish phase blocks for late messages.
  bool send(ShmChannel* ch, const double* data, std::size_t n);
  /// Consume the next message from ch; fails if its length is not n.
  bool recv(ShmChannel* ch, double* data, std::size_t n);
  /// Deterministic sum: every rank deposits, one barrier, every rank
  /// reduces the slots in ascending rank order — bitwise identical on
  /// every rank and across runs.
  bool allreduce_sum(double x, double* out);

  void phase_add(Phase p, double seconds);
  /// True while no rank has failed; spin-free snapshot of the abort flag.
  bool ok() const;
  /// Raise the session abort flag (unblocks all peers' waits).
  void fail();

 private:
  friend class MpSession;
  template <class Pred>
  bool spin_until(Pred&& ready);
  void maybe_beat();

  MpSession::Control* ctl_ = nullptr;
  double* allreduce_slots_ = nullptr;
  double* phase_sec_ = nullptr;
  int rank_ = 0;
  int nranks_ = 0;
  int comm_timeout_ms_ = 0;
  int spin_sleep_us_ = 0;  ///< spin-wait backoff (oversubscribed runs)
  int send_delay_us_ = 0;  ///< TSEM_MP_SEND_DELAY test seam
  int hb_fd_ = -1;
  int barrier_sense_ = 0;
  std::uint64_t allreduce_calls_ = 0;
  std::int64_t last_beat_ns_ = 0;
};

}  // namespace tsem::mp
