#include "mp/dist_xxt.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tsem::mp {
namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2i(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

}  // namespace

DistXxtPlan build_dist_xxt(const XxtSolver& xxt, int nranks) {
  TSEM_REQUIRE(is_pow2(nranks));
  const NestedDissection& nd = xxt.dissection();
  const int levels = log2i(nranks);
  TSEM_REQUIRE(levels <= nd.nlevels);
  const int shift = nd.nlevels - levels;

  DistXxtPlan plan;
  plan.nranks = nranks;
  plan.levels = levels;
  plan.n = xxt.n();
  plan.rank_of_dof.resize(static_cast<std::size_t>(plan.n));
  for (int d = 0; d < plan.n; ++d)
    plan.rank_of_dof[d] = nd.leaf_of[d] >> shift;
  plan.ranks.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) plan.ranks[r].rank = r;

  const auto& col_ptr = xxt.col_ptr();
  const auto& rows = xxt.rows();
  const auto& vals = xxt.values();

  // Per-column touched-rank sets drive both the rank-local entry slices
  // and the carry lists.  Carry list of the level-s edge from odd node m
  // (ranks [m<<s, (m+1)<<s)): columns whose rank set spans more than one
  // node at level s and touches node m — spanning implies "touches but
  // is not contained", which is exactly the fan-in traffic.
  std::vector<std::vector<std::vector<std::int32_t>>> edge_cols(
      static_cast<std::size_t>(levels));
  for (int s = 0; s < levels; ++s)
    edge_cols[s].resize(static_cast<std::size_t>(nranks) >> s);

  std::vector<int> rset, nodes;
  for (int k = 0; k < plan.n; ++k) {
    rset.clear();
    for (std::int32_t p = col_ptr[k]; p < col_ptr[k + 1]; ++p) {
      const int r = plan.rank_of_dof[rows[p]];
      if (std::find(rset.begin(), rset.end(), r) == rset.end())
        rset.push_back(r);
    }
    for (int r : rset) {
      DistXxtRank& rk = plan.ranks[static_cast<std::size_t>(r)];
      rk.cols.push_back(k);
      if (rk.col_off.empty()) rk.col_off.push_back(0);
      for (std::int32_t p = col_ptr[k]; p < col_ptr[k + 1]; ++p)
        if (plan.rank_of_dof[rows[p]] == r) {
          rk.ent_row.push_back(rows[p]);
          rk.ent_val.push_back(vals[p]);
        }
      rk.col_off.push_back(static_cast<std::int32_t>(rk.ent_row.size()));
    }
    if (rset.size() < 2) continue;
    for (int s = 0; s < levels; ++s) {
      nodes.clear();
      for (int r : rset) {
        const int m = r >> s;
        if (std::find(nodes.begin(), nodes.end(), m) == nodes.end())
          nodes.push_back(m);
      }
      if (nodes.size() == 1) break;  // contained from here up: no traffic
      for (int m : nodes)
        if (m & 1)
          edge_cols[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)]
              .push_back(k);
    }
  }
  for (DistXxtRank& rk : plan.ranks)
    if (rk.col_off.empty()) rk.col_off.push_back(0);

  for (int d = 0; d < plan.n; ++d)
    plan.ranks[static_cast<std::size_t>(plan.rank_of_dof[d])]
        .owned.push_back(d);

  // Fan-in steps: rank r receives at level s while its node index r>>s
  // is even, and sends (then idles) at the level where it turns odd.
  for (int r = 0; r < nranks; ++r) {
    DistXxtRank& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (int s = 0; s < levels; ++s) {
      if (r % (1 << s) != 0) break;  // no longer a rep at this level
      const int m = r >> s;
      XxtFanStep step;
      step.level = s;
      if (m & 1) {
        step.send = true;
        step.peer = (m - 1) << s;
        step.cols = edge_cols[static_cast<std::size_t>(s)]
                             [static_cast<std::size_t>(m)];
        rk.steps.push_back(std::move(step));
        break;
      }
      step.send = false;
      step.peer = (m + 1) << s;
      step.cols = edge_cols[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(m + 1)];
      rk.steps.push_back(std::move(step));
    }
  }

  plan.level_max_words.assign(static_cast<std::size_t>(levels), 0);
  for (int s = 0; s < levels; ++s)
    for (const auto& cols : edge_cols[static_cast<std::size_t>(s)])
      plan.level_max_words[static_cast<std::size_t>(s)] =
          std::max(plan.level_max_words[static_cast<std::size_t>(s)],
                   static_cast<std::int64_t>(cols.size()));
  return plan;
}

void DistXxtPlan::attach_channels(MpSession& session) {
  // One channel per direction per tree edge; the sender-side step and
  // the receiver-side step of the same edge must share them.  Edges are
  // identified by (level, odd-rep rank); the odd rep allocates, the even
  // rep looks its channels up by peer match.
  for (DistXxtRank& rk : ranks)
    for (XxtFanStep& st : rk.steps)
      if (st.send) {
        st.up = session.channel(st.cols.size());
        st.down = session.channel(st.cols.size());
      }
  for (DistXxtRank& rk : ranks)
    for (XxtFanStep& st : rk.steps)
      if (!st.send) {
        DistXxtRank& peer = ranks[static_cast<std::size_t>(st.peer)];
        for (XxtFanStep& pst : peer.steps)
          if (pst.send && pst.level == st.level && pst.peer == rk.rank) {
            st.up = pst.up;
            st.down = pst.down;
          }
        TSEM_REQUIRE(st.up != nullptr && st.down != nullptr);
      }
}

bool dist_xxt_solve(const DistXxtPlan& plan, int r, MpRank& ctx,
                    const double* b, double* out, XxtScratch& scratch) {
  const DistXxtRank& rk = plan.ranks[static_cast<std::size_t>(r)];
  const std::size_t n = static_cast<std::size_t>(plan.n);
  scratch.z.assign(n, 0.0);
  scratch.touched.assign(n, 0);
  double* const z = scratch.z.data();
  unsigned char* const touched = scratch.touched.data();

  // Rank-local partials over owned rows (ascending CSC subsequence).
  for (std::size_t c = 0; c < rk.cols.size(); ++c) {
    double s = 0.0;
    for (std::int32_t p = rk.col_off[c]; p < rk.col_off[c + 1]; ++p)
      s += rk.ent_val[p] * b[rk.ent_row[p]];
    z[rk.cols[c]] = s;
    touched[rk.cols[c]] = 1;
  }

  // Fan-in: combine up the tree with the fixed left+right association.
  for (const XxtFanStep& st : rk.steps) {
    if (st.send) {
      scratch.msg.resize(st.cols.size());
      for (std::size_t i = 0; i < st.cols.size(); ++i)
        scratch.msg[i] = z[st.cols[i]];
      if (!ctx.send(st.up, scratch.msg.data(), st.cols.size()))
        return false;
    } else {
      scratch.msg.resize(st.cols.size());
      if (!ctx.recv(st.up, scratch.msg.data(), st.cols.size()))
        return false;
      for (std::size_t i = 0; i < st.cols.size(); ++i) {
        const std::int32_t k = st.cols[i];
        if (touched[k]) {
          z[k] += scratch.msg[i];
        } else {
          z[k] = scratch.msg[i];
          touched[k] = 1;
        }
      }
    }
  }

  // Fan-out: reverse walk, same lists, final values flowing down.
  for (auto it = rk.steps.rbegin(); it != rk.steps.rend(); ++it) {
    const XxtFanStep& st = *it;
    if (st.send) {
      scratch.msg.resize(st.cols.size());
      if (!ctx.recv(st.down, scratch.msg.data(), st.cols.size()))
        return false;
      for (std::size_t i = 0; i < st.cols.size(); ++i)
        z[st.cols[i]] = scratch.msg[i];
    } else {
      scratch.msg.resize(st.cols.size());
      for (std::size_t i = 0; i < st.cols.size(); ++i)
        scratch.msg[i] = z[st.cols[i]];
      if (!ctx.send(st.down, scratch.msg.data(), st.cols.size()))
        return false;
    }
  }

  // Output: ascending-k accumulation over owned rows — the sequential
  // solver's loop restricted to this rank's subsequence (same zk == 0
  // skip, for the identical instruction stream).
  for (std::int32_t d : rk.owned) out[d] = 0.0;
  for (std::size_t c = 0; c < rk.cols.size(); ++c) {
    const double zk = z[rk.cols[c]];
    if (zk == 0.0) continue;
    for (std::int32_t p = rk.col_off[c]; p < rk.col_off[c + 1]; ++p)
      out[rk.ent_row[p]] += rk.ent_val[p] * zk;
  }
  return true;
}

void dist_xxt_reference(const DistXxtPlan& plan, const double* b,
                        double* out) {
  const std::size_t n = static_cast<std::size_t>(plan.n);
  const std::size_t P = static_cast<std::size_t>(plan.nranks);
  std::vector<std::vector<double>> z(P, std::vector<double>(n, 0.0));
  std::vector<std::vector<unsigned char>> touched(
      P, std::vector<unsigned char>(n, 0));

  for (std::size_t r = 0; r < P; ++r) {
    const DistXxtRank& rk = plan.ranks[r];
    for (std::size_t c = 0; c < rk.cols.size(); ++c) {
      double s = 0.0;
      for (std::int32_t p = rk.col_off[c]; p < rk.col_off[c + 1]; ++p)
        s += rk.ent_val[p] * b[rk.ent_row[p]];
      z[r][rk.cols[c]] = s;
      touched[r][rk.cols[c]] = 1;
    }
  }

  // Fan-in by ascending level: sender (odd rep) -> receiver.
  for (int s = 0; s < plan.levels; ++s) {
    for (std::size_t r = 0; r < P; ++r) {
      const DistXxtRank& rk = plan.ranks[r];
      for (const XxtFanStep& st : rk.steps) {
        if (st.level != s || !st.send) continue;
        const std::size_t a = static_cast<std::size_t>(st.peer);
        for (std::int32_t k : st.cols) {
          if (touched[a][k]) {
            z[a][k] += z[r][k];
          } else {
            z[a][k] = z[r][k];
            touched[a][k] = 1;
          }
        }
      }
    }
  }
  // Fan-out by descending level: receiver's final values flow back.
  for (int s = plan.levels - 1; s >= 0; --s) {
    for (std::size_t r = 0; r < P; ++r) {
      const DistXxtRank& rk = plan.ranks[r];
      for (const XxtFanStep& st : rk.steps) {
        if (st.level != s || !st.send) continue;
        const std::size_t a = static_cast<std::size_t>(st.peer);
        for (std::int32_t k : st.cols) z[r][k] = z[a][k];
      }
    }
  }

  for (std::size_t r = 0; r < P; ++r) {
    const DistXxtRank& rk = plan.ranks[r];
    for (std::int32_t d : rk.owned) out[d] = 0.0;
    for (std::size_t c = 0; c < rk.cols.size(); ++c) {
      const double zk = z[r][rk.cols[c]];
      if (zk == 0.0) continue;
      for (std::int32_t p = rk.col_off[c]; p < rk.col_off[c + 1]; ++p)
        out[rk.ent_row[p]] += rk.ent_val[p] * zk;
    }
  }
}

}  // namespace tsem::mp
