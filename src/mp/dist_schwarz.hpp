// Distributed ghost-volume exchange for the overlapping Schwarz
// preconditioner — the executed-tier counterpart of
// GhostExchange::exchange / scatter_add.
//
// The production exchange is per layer a pure gather-scatter over the
// face-anchor ids (ghost = gs(buf) - own), so the distributed version
// rides entirely on the dist_gs bitwise contract: slot values are packed
// from the rank-local pressure field with the same donor_node index math
// (local element indices), the anchor gs runs over mp channels, and the
// subtraction is elementwise.  Executed ghost volumes are therefore
// BITWISE equal to the single-process exchange restricted to the rank's
// elements.
//
// Overlap protocol (the NekRS-motivated shape): exchange_begin publishes
// every layer's anchor messages and reduces rank-interior anchor groups;
// the caller then does interior-element compute; exchange_finish
// consumes neighbor messages and completes the boundary anchors.  The
// multi-layer sends are why mp channels support nslots > 1 — all layers
// are in flight before either side drains.
#pragma once

#include <cstddef>
#include <vector>

#include "mp/dist_gs.hpp"
#include "solver/overlap.hpp"

namespace tsem::mp {

/// Partition-wide plan for one GhostExchange under an element partition.
class DistGhost {
 public:
  DistGhost(const GhostExchange& gx, const std::vector<int>& elem_rank,
            int nranks);

  [[nodiscard]] const DistGsPlan& plan() const { return plan_; }
  [[nodiscard]] int nlayers() const { return nlayers_; }
  /// Anchor slots per layer on rank r (= local elems * 2*dim * nt).
  [[nodiscard]] std::size_t rank_nslots(int r) const {
    return plan_.ranks[static_cast<std::size_t>(r)].nlocal;
  }
  /// Pressure dofs per element (ng1^dim).
  [[nodiscard]] std::size_t npress_per_elem() const { return npe_press_; }

  /// Rank-local donor_node: pressure dof of (local slot, layer).
  [[nodiscard]] std::size_t donor_node(std::size_t slot, int layer) const;

  struct Scratch {
    std::vector<double> own;  ///< one layer's packed donor values
    std::vector<double> buf;  ///< gs workspace (nlayers * nslots)
    GsScratch gs;
  };

  /// Publish all layers' messages from the rank-local pressure field p
  /// (length local elems * ng1^dim) and reduce interior anchors.
  bool exchange_begin(int rank, MpRank& ctx, const GsChannels& ch,
                      const double* p, Scratch& s) const;
  /// Complete boundary anchors and write ghost (nlayers * rank_nslots).
  bool exchange_finish(int rank, MpRank& ctx, const GsChannels& ch,
                       const double* p, double* ghost, Scratch& s) const;

  /// Split-phase finish (mp/overlap.hpp): drain every layer's neighbor
  /// messages and merge the boundary anchor groups into s.buf — the
  /// blocking half of exchange_finish, with NO ghost extraction.
  bool finish_boundary(int rank, MpRank& ctx, const GsChannels& ch,
                       Scratch& s) const;
  /// Extract ghost = buf - own for the listed rank-local elements' slots,
  /// every layer.  Pure local arithmetic; interior elements' slots are
  /// extractable right after exchange_begin (their anchor groups are
  /// rank-local and already reduced), boundary elements' only after
  /// finish_boundary.  Each slot's value is the same expression as
  /// exchange_finish computes, so any disjoint element split reproduces
  /// the full ghost volume bitwise.
  void extract_ghost(int rank, const std::int32_t* elems, std::size_t nelems,
                     double* ghost, const Scratch& s) const;
  /// begin + finish (no overlapped compute).
  bool exchange(int rank, MpRank& ctx, const GsChannels& ch,
                const double* p, double* ghost, Scratch& s) const;

  /// Reverse path: route each ghost-point value to the owning neighbor
  /// dof and accumulate into p (bitwise = GhostExchange::scatter_add
  /// restricted to the rank).
  bool scatter_add(int rank, MpRank& ctx, const GsChannels& ch,
                   const double* v, double* p, Scratch& s) const;

 private:
  DistGsPlan plan_;
  int dim_, ng1_, nt_, nlayers_;
  std::size_t npe_press_;
};

}  // namespace tsem::mp
