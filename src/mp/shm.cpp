#include "mp/shm.hpp"

#include <sys/mman.h>

#include <cstring>
#include <new>

#include "common/check.hpp"

namespace tsem::mp {

ShmArena::ShmArena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  TSEM_REQUIRE(chunk_bytes_ >= 4096);
}

ShmArena::~ShmArena() {
  for (const Chunk& c : chunks_) ::munmap(c.base, c.size);
}

void* ShmArena::alloc(std::size_t bytes) {
  TSEM_REQUIRE(!sealed_);
  const std::size_t need = (bytes + 63u) & ~std::size_t{63};
  if (chunks_.empty() || chunks_.back().used + need > chunks_.back().size) {
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    TSEM_REQUIRE(p != MAP_FAILED);
    chunks_.push_back(Chunk{static_cast<unsigned char*>(p), size, 0});
    mapped_ += size;
  }
  Chunk& c = chunks_.back();
  void* out = c.base + c.used;
  c.used += need;
  return out;  // anonymous mappings are zero-filled by the kernel
}

std::size_t ShmChannel::slot_stride() const {
  return (sizeof(std::uint64_t) + cap_words * sizeof(double) + 63u) &
         ~std::size_t{63};
}

std::uint64_t* ShmChannel::slot_len(std::uint64_t m) {
  return reinterpret_cast<std::uint64_t*>(raw() +
                                          (m % nslots) * slot_stride());
}

double* ShmChannel::slot_data(std::uint64_t m) {
  return reinterpret_cast<double*>(raw() + (m % nslots) * slot_stride() +
                                   sizeof(std::uint64_t));
}

ShmChannel* make_channel(ShmArena& arena, std::size_t cap_words,
                         std::size_t nslots) {
  TSEM_REQUIRE(nslots >= 1);
  // Header and slots in one allocation so the whole channel is a single
  // pointer valid in every rank.
  ShmChannel proto{};
  proto.cap_words = cap_words;
  const std::size_t stride = proto.slot_stride();
  void* mem = arena.alloc(sizeof(ShmChannel) + nslots * stride);
  auto* ch = new (mem) ShmChannel{};
  ch->seq.store(0, std::memory_order_relaxed);
  ch->ack.store(0, std::memory_order_relaxed);
  ch->nslots = nslots;
  ch->cap_words = cap_words;
  return ch;
}

}  // namespace tsem::mp
