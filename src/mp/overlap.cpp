#include "mp/overlap.hpp"

#include <chrono>

#include "common/check.hpp"

namespace tsem::mp {
namespace {

inline double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Scoped accumulator: adds the elapsed wall time to *slot (if any).
class Timed {
 public:
  explicit Timed(double* slot) : slot_(slot), t0_(slot ? now_s() : 0.0) {}
  ~Timed() {
    if (slot_) *slot_ += now_s() - t0_;
  }
  Timed(const Timed&) = delete;
  Timed& operator=(const Timed&) = delete;

 private:
  double* slot_;
  double t0_;
};

}  // namespace

OverlapSplit classify_elements(const DistGsRank& rk, int npe) {
  TSEM_REQUIRE(npe > 0);
  const std::size_t nelems = rk.elems.size();
  TSEM_REQUIRE(rk.nlocal == nelems * static_cast<std::size_t>(npe));
  std::vector<char> bnd(nelems, 0);
  for (std::int32_t ent : rk.bnd_entry)
    if (ent < 0) bnd[static_cast<std::size_t>(~ent) /
                     static_cast<std::size_t>(npe)] = 1;
  OverlapSplit split;
  for (std::size_t e = 0; e < nelems; ++e)
    (bnd[e] ? split.boundary : split.interior)
        .push_back(static_cast<std::int32_t>(e));
  return split;
}

bool overlapped_gs_apply(const DistGsRank& rk, const OverlapSplit& split,
                         MpRank& ctx, const GsChannels& ch, double* u,
                         GsOp op, GsScratch& scratch, const ElemFn& compute,
                         bool overlap, OverlapTimes* times) {
  double* tc = times ? &times->compute : nullptr;
  double* tx = times ? &times->exchange : nullptr;
  {
    Timed t(tc);
    compute(split.boundary.data(), split.boundary.size());
    if (!overlap) compute(split.interior.data(), split.interior.size());
  }
  {
    Timed t(tx);
    if (!dist_gs_publish(rk, ctx, ch, u, scratch)) return false;
  }
  if (overlap) {
    Timed t(tc);
    compute(split.interior.data(), split.interior.size());
  }
  {
    Timed t(tx);
    dist_gs_interior(rk, u, op);
    if (!dist_gs_finish(rk, ctx, ch, u, op, scratch)) return false;
  }
  return true;
}

bool overlapped_ghost_exchange(const DistGhost& ghost,
                               const OverlapSplit& split, int rank,
                               MpRank& ctx, const GsChannels& ch,
                               const double* p, double* ghost_out,
                               DistGhost::Scratch& s,
                               const ElemFn& local_solve, bool overlap,
                               OverlapTimes* times) {
  double* tc = times ? &times->compute : nullptr;
  double* tx = times ? &times->exchange : nullptr;
  {
    Timed t(tx);
    if (!ghost.exchange_begin(rank, ctx, ch, p, s)) return false;
    if (!overlap && !ghost.finish_boundary(rank, ctx, ch, s)) return false;
  }
  {
    Timed t(tc);
    ghost.extract_ghost(rank, split.interior.data(), split.interior.size(),
                        ghost_out, s);
    local_solve(split.interior.data(), split.interior.size());
  }
  if (overlap) {
    Timed t(tx);
    if (!ghost.finish_boundary(rank, ctx, ch, s)) return false;
  }
  {
    Timed t(tc);
    ghost.extract_ghost(rank, split.boundary.data(), split.boundary.size(),
                        ghost_out, s);
    local_solve(split.boundary.data(), split.boundary.size());
  }
  return true;
}

}  // namespace tsem::mp
