// Process-shared memory primitives for the mp rank-parallel backend.
//
// Everything here is dependency-free POSIX: the arena is anonymous
// MAP_SHARED memory created BEFORE fork, so every rank inherits the same
// physical pages at the same virtual addresses.  That address stability
// is load-bearing — plain pointers into the arena (channel structs,
// shared buffers) stay valid verbatim in every rank, no offset
// translation needed.  Synchronization is lock-free std::atomic on
// arena cachelines; std::atomic<int>/<uint64_t> are address-free on
// every platform we target (always_lock_free is static_asserted), which
// is what makes them process-shared without pshared mutex machinery.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsem::mp {

/// Bump allocator over anonymous MAP_SHARED mappings.  alloc() is
/// parent-only and pre-fork only: chunks mapped after fork would not be
/// shared with already-forked ranks, so the session seals the arena when
/// it launches ranks.  Grows by whole chunks, so callers never need to
/// pre-compute a total size.
class ShmArena {
 public:
  explicit ShmArena(std::size_t chunk_bytes = 1u << 22);
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  /// Zero-initialized, cacheline-aligned shared bytes.
  void* alloc(std::size_t bytes);
  template <class T>
  T* alloc_n(std::size_t n) {
    static_assert(alignof(T) <= 64, "arena alignment is 64 bytes");
    return static_cast<T*>(alloc(n * sizeof(T)));
  }

  /// No further alloc() calls are legal (ranks have been forked).
  void seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }
  std::size_t bytes_mapped() const { return mapped_; }

 private:
  struct Chunk {
    unsigned char* base;
    std::size_t size;
    std::size_t used;
  };
  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t mapped_ = 0;
  bool sealed_ = false;
};

/// Sense-reversing barrier living in the arena.  The counter and sense
/// are shared; each rank keeps its *local* sense in private memory
/// (MpRank), which is what makes the classic algorithm reusable
/// back-to-back without a second rendezvous.
struct ShmBarrier {
  std::atomic<int> arrived;
  std::atomic<int> sense;
  int nranks;
  void init(int p) {
    arrived.store(0, std::memory_order_relaxed);
    sense.store(0, std::memory_order_relaxed);
    nranks = p;
  }
};
static_assert(std::atomic<int>::is_always_lock_free,
              "process-shared barrier needs address-free atomics");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "process-shared channels need address-free atomics");

/// Generation-stamped state word for cross-process publish protocols
/// (the fleet setup cache's seqlock slots).  The low 32 bits hold a
/// small state enum, the high 32 a generation counter; EVERY transition
/// goes through try_transition, which bumps the generation, so a reader
/// that loads the word, copies payload, and reloads the word knows the
/// payload is consistent iff the two loads are equal — eviction or
/// republication in between necessarily changes the word.
struct ShmStateCell {
  std::atomic<std::uint64_t> word;  ///< (generation << 32) | state

  static constexpr std::uint64_t pack(std::uint32_t gen, std::uint32_t st) {
    return (static_cast<std::uint64_t>(gen) << 32) | st;
  }
  static constexpr std::uint32_t state_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w);
  }
  static constexpr std::uint32_t generation_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }

  std::uint64_t load(std::memory_order mo = std::memory_order_acquire) const {
    return word.load(mo);
  }
  /// CAS from the exact observed word to (generation + 1, to_state).
  /// Release order: payload writes before a successful transition are
  /// visible to any reader that acquires the new word.
  bool try_transition(std::uint64_t observed, std::uint32_t to_state) {
    const std::uint64_t next = pack(generation_of(observed) + 1, to_state);
    return word.compare_exchange_strong(observed, next,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }
};

/// Single-producer single-consumer message ring in the arena.  seq
/// counts published messages, ack counts consumed ones; the payload of
/// message m lives in slot m % nslots.  A send blocks (spins) while the
/// ring is full (seq - ack == nslots), a recv while it is empty
/// (seq == ack).  The release-store of seq after the payload write and
/// the acquire-load before the payload read are the only fences needed.
///
/// nslots > 1 exists for the Schwarz multi-layer exchange, where a rank
/// publishes several messages to a neighbor before either side drains —
/// with a single slot two ranks blocked on their second send to each
/// other would deadlock.
struct ShmChannel {
  std::atomic<std::uint64_t> seq;
  std::atomic<std::uint64_t> ack;
  std::uint64_t nslots;
  std::uint64_t cap_words;  ///< per-slot payload capacity (doubles)

  /// Slot layout: [len:uint64][cap_words doubles], 64-byte strided.
  std::uint64_t* slot_len(std::uint64_t m);
  double* slot_data(std::uint64_t m);
  unsigned char* raw() { return reinterpret_cast<unsigned char*>(this + 1); }
  std::size_t slot_stride() const;
};

/// Allocate a channel (header + slots) from the arena.
ShmChannel* make_channel(ShmArena& arena, std::size_t cap_words,
                         std::size_t nslots = 1);

}  // namespace tsem::mp
