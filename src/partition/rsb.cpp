#include "partition/rsb.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>
#include <random>

#include "common/check.hpp"
#include "tensor/linalg.hpp"

namespace tsem {

std::vector<std::vector<int>> element_graph(const Mesh& mesh) {
  const int ncorner = 1 << mesh.dim;
  const int faces = 2 * mesh.dim;
  // Face key: sorted corner-vertex ids.
  std::map<std::array<std::int64_t, 4>, std::vector<int>> face_elems;
  for (int e = 0; e < mesh.nelem; ++e) {
    const std::int64_t* v =
        &mesh.vert_id[static_cast<std::size_t>(e) * ncorner];
    for (int f = 0; f < faces; ++f) {
      const int axis = f / 2, side = f % 2;
      std::array<std::int64_t, 4> key{-1, -1, -1, -1};
      int k = 0;
      for (int c = 0; c < ncorner; ++c) {
        if (((c >> axis) & 1) == side) key[k++] = v[c];
      }
      std::sort(key.begin(), key.end());
      face_elems[key].push_back(e);
    }
  }
  std::vector<std::vector<int>> adj(mesh.nelem);
  for (const auto& [key, elems] : face_elems) {
    for (std::size_t a = 0; a < elems.size(); ++a)
      for (std::size_t b = a + 1; b < elems.size(); ++b) {
        adj[elems[a]].push_back(elems[b]);
        adj[elems[b]].push_back(elems[a]);
      }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return adj;
}

namespace {

// y = L x for the graph Laplacian.
void laplacian_apply(const std::vector<std::vector<int>>& adj,
                     const double* x, double* y) {
  const int n = static_cast<int>(adj.size());
  for (int i = 0; i < n; ++i) {
    double s = static_cast<double>(adj[i].size()) * x[i];
    for (int j : adj[i]) s -= x[j];
    y[i] = s;
  }
}

void orth_ones(std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double& x : v) x -= mean;
}

}  // namespace

std::vector<double> fiedler_vector(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  TSEM_REQUIRE(n >= 2);
  if (n == 2) return {-1.0, 1.0};
  const int m = std::min(n - 1, 60);  // Lanczos steps

  std::vector<std::vector<double>> v;  // Lanczos vectors
  std::vector<double> alpha, beta;
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> w(n);
  for (auto& x : w) x = dist(rng);
  orth_ones(w);
  double nrm = norm2(w.data(), n);
  for (auto& x : w) x /= nrm;
  v.push_back(w);

  std::vector<double> lw(n);
  for (int k = 0; k < m; ++k) {
    laplacian_apply(adj, v[k].data(), lw.data());
    const double a = dot(v[k].data(), lw.data(), n);
    alpha.push_back(a);
    axpy(-a, v[k].data(), lw.data(), n);
    if (k > 0) axpy(-beta[k - 1], v[k - 1].data(), lw.data(), n);
    // Full reorthogonalization (incl. constants).
    orth_ones(lw);
    for (const auto& vi : v) {
      const double c = dot(vi.data(), lw.data(), n);
      axpy(-c, vi.data(), lw.data(), n);
    }
    const double b = norm2(lw.data(), n);
    if (b < 1e-12) break;
    beta.push_back(b);
    for (auto& x : lw) x /= b;
    v.push_back(lw);
  }
  const int steps = static_cast<int>(alpha.size());
  // Tridiagonal eigenproblem; tridiag_eig expects e[i] coupling (i-1, i).
  std::vector<double> d(alpha.begin(), alpha.end());
  std::vector<double> e(steps, 0.0);
  for (int i = 1; i < steps; ++i) e[i] = beta[i - 1];
  std::vector<double> z(static_cast<std::size_t>(steps) * steps, 0.0);
  for (int i = 0; i < steps; ++i) z[i * steps + i] = 1.0;
  TSEM_REQUIRE(tridiag_eig(d, e, z, steps));
  // Smallest Ritz pair approximates the Fiedler pair (constants deflated).
  std::vector<double> fied(n, 0.0);
  for (int k = 0; k < steps; ++k)
    axpy(z[k * steps + 0], v[k].data(), fied.data(), n);
  return fied;
}

namespace {

void rsb_recurse(const std::vector<std::vector<int>>& adj,
                 const std::vector<int>& elems, int level,
                 std::vector<int>& part, int base) {
  if (level == 0) {
    for (int e : elems) part[e] = base;
    return;
  }
  const int n = static_cast<int>(elems.size());
  if (n <= 1) {
    for (int e : elems) part[e] = base << level;
    return;
  }
  // Subgraph adjacency (may be disconnected; Lanczos still yields a
  // usable splitting vector, and ties fall to the median split).
  std::vector<int> local(adj.size(), -1);
  for (int i = 0; i < n; ++i) local[elems[i]] = i;
  std::vector<std::vector<int>> sub(n);
  for (int i = 0; i < n; ++i)
    for (int j : adj[elems[i]])
      if (local[j] >= 0) sub[i].push_back(local[j]);

  const auto f = fiedler_vector(sub);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return f[a] < f[b]; });
  std::vector<int> lo, hi;
  for (int i = 0; i < n; ++i)
    (i < n / 2 ? lo : hi).push_back(elems[order[i]]);
  rsb_recurse(adj, lo, level - 1, part, base * 2);
  rsb_recurse(adj, hi, level - 1, part, base * 2 + 1);
}

int log2_exact(int nparts) {
  int l = 0;
  while ((1 << l) < nparts) ++l;
  TSEM_REQUIRE((1 << l) == nparts);
  return l;
}

}  // namespace

std::vector<int> recursive_spectral_bisection(const Mesh& mesh, int nparts) {
  const int levels = log2_exact(nparts);
  const auto adj = element_graph(mesh);
  std::vector<int> part(mesh.nelem, 0);
  std::vector<int> all(mesh.nelem);
  std::iota(all.begin(), all.end(), 0);
  rsb_recurse(adj, all, levels, part, 0);
  return part;
}

namespace {

void rcb_recurse(const std::vector<std::array<double, 3>>& c,
                 std::vector<int>& elems, int level, std::vector<int>& part,
                 int base) {
  if (level == 0) {
    for (int e : elems) part[e] = base;
    return;
  }
  double lo[3] = {1e300, 1e300, 1e300}, hi[3] = {-1e300, -1e300, -1e300};
  for (int e : elems)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], c[e][d]);
      hi[d] = std::max(hi[d], c[e][d]);
    }
  int axis = 0;
  for (int d = 1; d < 3; ++d)
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = d;
  std::sort(elems.begin(), elems.end(),
            [&](int a, int b) { return c[a][axis] < c[b][axis]; });
  std::vector<int> left(elems.begin(), elems.begin() + elems.size() / 2);
  std::vector<int> right(elems.begin() + elems.size() / 2, elems.end());
  rcb_recurse(c, left, level - 1, part, base * 2);
  rcb_recurse(c, right, level - 1, part, base * 2 + 1);
}

}  // namespace

std::vector<int> recursive_coordinate_bisection(const Mesh& mesh,
                                                int nparts) {
  const int levels = log2_exact(nparts);
  std::vector<std::array<double, 3>> cent(mesh.nelem, {0, 0, 0});
  for (int e = 0; e < mesh.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * mesh.npe;
    for (int n = 0; n < mesh.npe; ++n) {
      cent[e][0] += mesh.x[off + n];
      cent[e][1] += mesh.y[off + n];
      if (mesh.dim == 3) cent[e][2] += mesh.z[off + n];
    }
    for (int d = 0; d < 3; ++d) cent[e][d] /= mesh.npe;
  }
  std::vector<int> part(mesh.nelem, 0);
  std::vector<int> all(mesh.nelem);
  std::iota(all.begin(), all.end(), 0);
  rcb_recurse(cent, all, levels, part, 0);
  return part;
}

std::vector<int> block_partition(int nelem, int nparts) {
  std::vector<int> part(nelem);
  for (int e = 0; e < nelem; ++e)
    part[e] = static_cast<int>(static_cast<std::int64_t>(e) * nparts / nelem);
  return part;
}

}  // namespace tsem
