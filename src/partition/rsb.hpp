// Element partitioning (paper §6): recursive spectral bisection
// (Pothen, Simon & Liou [22]) minimizes the number of interface vertices
// shared between processors and hence the gather-scatter communication;
// a geometric recursive coordinate bisection baseline is provided for
// comparison.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"

namespace tsem {

/// Face-adjacency graph of the elements: adj[e] = face neighbors of e.
std::vector<std::vector<int>> element_graph(const Mesh& mesh);

/// Fiedler vector (second Laplacian eigenvector) of a connected graph via
/// Lanczos with full reorthogonalization on the span orthogonal to
/// constants.  Returned vector has size adj.size().
std::vector<double> fiedler_vector(const std::vector<std::vector<int>>& adj);

/// Partition the mesh elements into nparts (power of two) parts by
/// recursive spectral bisection.  Returns elem -> rank.
std::vector<int> recursive_spectral_bisection(const Mesh& mesh, int nparts);

/// Geometric baseline: recursive coordinate bisection on element
/// centroids.
std::vector<int> recursive_coordinate_bisection(const Mesh& mesh, int nparts);

/// Naive baseline: contiguous blocks of element indices.
std::vector<int> block_partition(int nelem, int nparts);

}  // namespace tsem
