#include "fleet/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "fleet/proc.hpp"
#include "io/binfile.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"

namespace tsem::fleet {
namespace {

// Heartbeat lines are tiny (<< PIPE_BUF), so each write is atomic and the
// supervisor never sees an interleaved or torn line.  Returns false when
// the supervisor end of the pipe is gone (EPIPE): with SIGPIPE ignored
// the worker survives the write and can classify itself as orphaned
// instead of dying silently from the signal.
bool beat(int fd, const char* tag, int a, int b = INT32_MIN) {
  if (fd < 0) return true;
  errno = 0;
  int rc;
  if (b == INT32_MIN)
    rc = ::dprintf(fd, "%s %d\n", tag, a);
  else
    rc = ::dprintf(fd, "%s %d %d\n", tag, a, b);
  return !(rc < 0 && errno == EPIPE);
}

// The supervisor closed its read end (it exited or crashed mid-run).
// Continuing would burn CPU producing results nobody will collect, so
// exit with the dedicated orphan code — distinct from a crash so a
// post-mortem of the workdir logs shows "supervisor died", not "worker
// bug".
[[noreturn]] void orphan_exit(int step) {
  std::printf("[worker] heartbeat pipe closed (supervisor gone) at step %d; "
              "exiting as orphan\n", step);
  std::fflush(stdout);
  ::_exit(kExitOrphaned);
}

bool fault_fires(const ProcessFault& f, ProcessFault::Kind kind, int step,
                 int attempt, bool at_or_past = false) {
  if (f.kind != kind) return false;
  if (f.attempt != 0 && f.attempt != attempt) return false;
  return at_or_past ? step >= f.step : step == f.step;
}

Space make_space(const JobSpec& job) {
  auto spec = box_spec_2d(linspace(0.0, 2.0 * M_PI, job.mesh_k),
                          linspace(0.0, 2.0 * M_PI, job.mesh_k));
  spec.periodic_x = spec.periodic_y = true;
  return Space(build_mesh(spec, job.order));
}

void init_taylor_green(NavierStokes& ns, const Space& s) {
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
  }
}

std::string digest_hex(std::uint32_t d) {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%08x", d);
  return buf;
}

bool get_req_int(const obs::Json& o, const char* key, int* out) {
  const obs::Json* v = o.find(key);
  if (!v || !v->is_number()) return false;
  *out = static_cast<int>(v->as_int());
  return true;
}

bool get_req_double(const obs::Json& o, const char* key, double* out) {
  const obs::Json* v = o.find(key);
  if (!v || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

}  // namespace

JobPaths job_paths(const std::string& workdir, int index) {
  const std::string stem = workdir + "/job_" + std::to_string(index);
  return JobPaths{stem + ".ckpt", stem + ".result.json", stem + ".log"};
}

void worker_main(const JobSpec& job, const std::string& workdir,
                 int heartbeat_fd, int attempt) {
  // Without this, a supervisor death turns every worker's next dprintf
  // into a fatal SIGPIPE — the workers die silently with no log line and
  // the failure reads as a worker crash.  Ignore the signal so the write
  // fails visibly with EPIPE instead.
  ignore_sigpipe();
  const JobPaths paths = job_paths(workdir, job.index);
  // The log is the job's captured failure report: append across attempts
  // so a quarantine shows the whole incident history, not just the last.
  std::freopen(paths.log.c_str(), "a", stdout);
  std::freopen(paths.log.c_str(), "a", stderr);
  // The forked child inherits the parent's process-wide registry; reset
  // so the result's counters are this attempt's own.
  obs::MetricsRegistry::instance().reset();

  // The fleet's recovery contract is BIT-identity: a retried or resumed
  // attempt must reproduce exactly what an uninterrupted run computes.
  // The one nondeterministic input across worker processes is the timed
  // mxm autotuner, so pin it to the fixed shape heuristic (a user who
  // prefers timed tuning can export TSEM_MXM_DETERMINISTIC=0).
  ::setenv("TSEM_MXM_DETERMINISTIC", "1", /*overwrite=*/0);

  ProcessFault fault = job.fault;
  if (fault.kind == ProcessFault::Kind::None)
    fault = process_fault_from_env();

  std::printf("[worker] job %d '%s' attempt %d pid %d fault %s\n", job.index,
              job.name.c_str(), attempt, static_cast<int>(::getpid()),
              format_process_fault(fault).c_str());
  std::fflush(stdout);

  Space space = make_space(job);
  NsOptions opt;
  opt.dt = job.dt;
  opt.viscosity = 1.0 / job.reynolds;
  opt.torder = 2;
  opt.proj_len = 8;
  NavierStokes ns(space, 0u, opt);
  init_taylor_green(ns, space);

  int start_step = 0;
  if (::access(paths.checkpoint.c_str(), F_OK) == 0) {
    NsState st;
    std::string rerr;
    if (load_checkpoint(paths.checkpoint, &st, &rerr) &&
        ns.import_state(st, &rerr)) {
      start_step = st.step;
      std::printf("[worker] resumed from checkpoint at step %d\n",
                  start_step);
    } else {
      // Second line of defense: a checkpoint that slipped past the atomic
      // write (e.g. bytes corrupted at rest) fails its CRC here and the
      // job cold-starts — deterministic integration reproduces the same
      // final state, only the saved work is lost.
      std::printf("[worker] checkpoint rejected (%s); cold start\n",
                  rerr.c_str());
    }
    std::fflush(stdout);
  }
  if (!beat(heartbeat_fd, "A", attempt, start_step)) orphan_exit(start_step);

  // Test pacing seam: the fleet tests stretch these tiny canonical jobs
  // past the supervisor's poll tick so preemption/watchdog behavior is
  // exercised deterministically instead of racing worker speed.
  int step_sleep_us = 0;
  if (const char* pace = std::getenv("TSEM_FLEET_STEP_SLEEP_US"))
    step_sleep_us = std::atoi(pace);

  int recovered_steps = 0;
  for (int n = start_step + 1; n <= job.steps; ++n) {
    if (fault_fires(fault, ProcessFault::Kind::KillWorker, n, attempt)) {
      std::printf("[worker] injected kill before step %d\n", n);
      std::fflush(stdout);
      ::_exit(kExitInjectedKill);
    }
    if (fault_fires(fault, ProcessFault::Kind::Hang, n, attempt)) {
      std::printf("[worker] injected hang before step %d\n", n);
      std::fflush(stdout);
      for (;;) ::sleep(1000);  // no heartbeats: watchdog food
    }

    const StepStats st = ns.step();
    if (st.failed) {
      std::printf("[worker] step %d failed: resilience ladder exhausted\n",
                  n);
      std::fflush(stdout);
      ::_exit(kExitStepFailed);
    }
    if (st.recovered) ++recovered_steps;
    if (!beat(heartbeat_fd, "S", n)) orphan_exit(n);
    if (step_sleep_us > 0) ::usleep(static_cast<useconds_t>(step_sleep_us));

    if (job.checkpoint_every > 0 && n % job.checkpoint_every == 0) {
      if (fault_fires(fault, ProcessFault::Kind::TornCheckpoint, n, attempt,
                      /*at_or_past=*/true)) {
        // Die mid-checkpoint-write: a partial temp file is all that ever
        // exists, because the real writer only renames a complete,
        // fsync'ed file into place.  The previous good checkpoint (and
        // therefore resumability) survives this by construction.
        std::printf("[worker] injected torn checkpoint write at step %d\n",
                    n);
        std::fflush(stdout);
        std::FILE* f = std::fopen((paths.checkpoint + ".tmp").c_str(), "wb");
        if (f) {
          std::fputs("TSEMCKPT torn mid-write", f);
          std::fclose(f);
        }
        ::_exit(kExitInjectedTorn);
      }
      std::string cerr_;
      if (save_checkpoint(ns, paths.checkpoint, &cerr_)) {
        if (!beat(heartbeat_fd, "C", n)) orphan_exit(n);
      } else {
        // A failed checkpoint write is not fatal to the attempt; the job
        // just has a longer replay window if it is later killed.
        std::printf("[worker] checkpoint write failed: %s\n", cerr_.c_str());
        std::fflush(stdout);
      }
    }
  }

  obs::Json result = obs::Json::object();
  result["schema"] = "terasem-fleet-job-1";
  result["name"] = job.name;
  result["index"] = job.index;
  result["attempt"] = attempt;
  result["steps_done"] = job.steps;
  result["resumed_from_step"] = start_step;
  result["final_time"] = ns.time();
  result["digest"] = digest_hex(ns.state_digest());
  result["kinetic_energy"] = ns.kinetic_energy();
  result["divergence"] = ns.divergence_norm();
  result["recovered_steps"] = recovered_steps;
  const obs::Json snap = obs::MetricsRegistry::instance().snapshot();
  if (const obs::Json* counters = snap.find("counters"))
    result["counters"] = *counters;
  else
    result["counters"] = obs::Json::object();

  const std::string text = result.dump(2);
  std::string werr;
  if (!write_file_atomic(paths.result, text.data(), text.size(), &werr)) {
    std::printf("[worker] result write failed: %s\n", werr.c_str());
    std::fflush(stdout);
    ::_exit(kExitResultFailed);
  }
  ::_exit(kExitOk);
}

bool read_job_result(const std::string& path, JobResult* out,
                     std::string* err) {
  obs::Json doc;
  obs::Json::ParseError perr;
  if (!obs::Json::parse_file(path, &doc, &perr)) {
    if (err) *err = perr.to_string();
    return false;
  }
  auto fail = [&](const std::string& what) {
    if (err) *err = path + ": " + what;
    return false;
  };
  if (!doc.is_object()) return fail("result is not an object");
  const obs::Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "terasem-fleet-job-1")
    return fail("missing or wrong result schema");

  JobResult r;
  const obs::Json* name = doc.find("name");
  const obs::Json* digest = doc.find("digest");
  if (!name || !name->is_string() || !digest || !digest->is_string())
    return fail("missing name/digest");
  r.name = name->as_string();
  r.digest = digest->as_string();
  if (!get_req_int(doc, "index", &r.index) ||
      !get_req_int(doc, "attempt", &r.attempt) ||
      !get_req_int(doc, "steps_done", &r.steps_done) ||
      !get_req_int(doc, "resumed_from_step", &r.resumed_from_step) ||
      !get_req_int(doc, "recovered_steps", &r.recovered_steps) ||
      !get_req_double(doc, "final_time", &r.final_time) ||
      !get_req_double(doc, "kinetic_energy", &r.kinetic_energy) ||
      !get_req_double(doc, "divergence", &r.divergence))
    return fail("missing numeric result fields");
  if (const obs::Json* counters = doc.find("counters"))
    r.counters = *counters;
  *out = std::move(r);
  return true;
}

}  // namespace tsem::fleet
