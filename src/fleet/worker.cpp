#include "fleet/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "fleet/proc.hpp"
#include "fleet/setup_cache.hpp"
#include "io/binfile.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "solver/setup_bundle.hpp"
#include "tensor/mxm.hpp"

namespace tsem::fleet {
namespace {

// Heartbeat lines are tiny (<< PIPE_BUF), so each write is atomic and the
// supervisor never sees an interleaved or torn line.  Returns false when
// the supervisor end of the pipe is gone (EPIPE): with SIGPIPE ignored
// the worker survives the write and can classify itself as orphaned
// instead of dying silently from the signal.
bool beat(int fd, const char* tag, int a, int b = INT32_MIN) {
  if (fd < 0) return true;
  errno = 0;
  int rc;
  if (b == INT32_MIN)
    rc = ::dprintf(fd, "%s %d\n", tag, a);
  else
    rc = ::dprintf(fd, "%s %d %d\n", tag, a, b);
  return !(rc < 0 && errno == EPIPE);
}

// The supervisor closed its read end (it exited or crashed mid-run).
// Continuing would burn CPU producing results nobody will collect, so
// exit with the dedicated orphan code — distinct from a crash so a
// post-mortem of the workdir logs shows "supervisor died", not "worker
// bug".
[[noreturn]] void orphan_exit(int step) {
  std::printf("[worker] heartbeat pipe closed (supervisor gone) at step %d; "
              "exiting as orphan\n", step);
  std::fflush(stdout);
  ::_exit(kExitOrphaned);
}

bool fault_fires(const ProcessFault& f, ProcessFault::Kind kind, int step,
                 int attempt, bool at_or_past = false) {
  if (f.kind != kind) return false;
  if (f.attempt != 0 && f.attempt != attempt) return false;
  return at_or_past ? step >= f.step : step == f.step;
}

// The cache faults fire during setup, before any step exists; only the
// kind and attempt gate them (the parsed step is round-trip baggage).
bool setup_fault_fires(const ProcessFault& f, ProcessFault::Kind kind,
                       int attempt) {
  if (f.kind != kind) return false;
  return f.attempt == 0 || f.attempt == attempt;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Space make_space(const JobSpec& job) {
  auto spec = box_spec_2d(linspace(0.0, 2.0 * M_PI, job.mesh_k),
                          linspace(0.0, 2.0 * M_PI, job.mesh_k));
  spec.periodic_x = spec.periodic_y = true;
  return Space(build_mesh(spec, job.order));
}

void init_taylor_green(NavierStokes& ns, const Space& s) {
  const auto& m = s.mesh();
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    ns.u(0)[i] = std::sin(m.x[i]) * std::cos(m.y[i]);
    ns.u(1)[i] = -std::cos(m.x[i]) * std::sin(m.y[i]);
  }
}

std::string digest_hex(std::uint32_t d) {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%08x", d);
  return buf;
}

bool get_req_int(const obs::Json& o, const char* key, int* out) {
  const obs::Json* v = o.find(key);
  if (!v || !v->is_number()) return false;
  *out = static_cast<int>(v->as_int());
  return true;
}

bool get_req_double(const obs::Json& o, const char* key, double* out) {
  const obs::Json* v = o.find(key);
  if (!v || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

}  // namespace

JobPaths job_paths(const std::string& workdir, int index) {
  const std::string stem = workdir + "/job_" + std::to_string(index);
  return JobPaths{stem + ".ckpt", stem + ".result.json", stem + ".log"};
}

void worker_main(const JobSpec& job, const std::string& workdir,
                 int heartbeat_fd, int attempt, SetupCache* cache,
                 bool allow_cache) {
  // Without this, a supervisor death turns every worker's next dprintf
  // into a fatal SIGPIPE — the workers die silently with no log line and
  // the failure reads as a worker crash.  Ignore the signal so the write
  // fails visibly with EPIPE instead.
  ignore_sigpipe();
  const JobPaths paths = job_paths(workdir, job.index);
  // The log is the job's captured failure report: append across attempts
  // so a quarantine shows the whole incident history, not just the last.
  std::freopen(paths.log.c_str(), "a", stdout);
  std::freopen(paths.log.c_str(), "a", stderr);
  // The forked child inherits the parent's process-wide registry; reset
  // so the result's counters are this attempt's own.
  obs::MetricsRegistry::instance().reset();

  // The fleet's recovery contract is BIT-identity: a retried or resumed
  // attempt must reproduce exactly what an uninterrupted run computes.
  // The one nondeterministic input across worker processes is the timed
  // mxm autotuner, so pin it to the fixed shape heuristic (a user who
  // prefers timed tuning can export TSEM_MXM_DETERMINISTIC=0).
  ::setenv("TSEM_MXM_DETERMINISTIC", "1", /*overwrite=*/0);

  ProcessFault fault = job.fault;
  if (fault.kind == ProcessFault::Kind::None)
    fault = process_fault_from_env();

  std::printf("[worker] job %d '%s' attempt %d pid %d fault %s cache %s\n",
              job.index, job.name.c_str(), attempt,
              static_cast<int>(::getpid()),
              format_process_fault(fault).c_str(),
              cache ? (allow_cache ? "on" : "cold") : "off");
  std::fflush(stdout);

  const auto t_setup0 = std::chrono::steady_clock::now();
  // Setup-phase attribution for cache tuning: TSEM_FLEET_SETUP_TRACE=1
  // prints per-phase wall times into the job log.
  auto t_phase = t_setup0;
  const bool phase_trace = [] {
    const char* e = std::getenv("TSEM_FLEET_SETUP_TRACE");
    return e != nullptr && *e != '\0' && *e != '0';
  }();
  auto mark = [&](const char* what) {
    if (!phase_trace) return;
    const auto now = std::chrono::steady_clock::now();
    std::printf("[worker] setup-phase %-8s %8.3f ms\n", what,
                std::chrono::duration<double, std::milli>(now - t_phase)
                    .count());
    std::fflush(stdout);
    t_phase = now;
  };

  // ---- setup-cache attach / claim (DESIGN.md "Setup cache") ----
  const char* cache_tag = cache ? (allow_cache ? "miss" : "cold") : "off";
  int publish_slot = -1;
  SetupBundle imported, recorded;
  bool importing = false, recording = false;
  if (cache != nullptr && allow_cache) {
    if (setup_fault_fires(fault, ProcessFault::Kind::CacheFail, attempt)) {
      std::printf("[worker] injected cache failure at lookup\n");
      std::fflush(stdout);
      ::_exit(kExitCacheFailed);
    }
    const SetupKey key = setup_key_for(job);
    SetupCache::Lookup lk = cache->lookup(key);
    switch (lk.outcome) {
      case SetupCache::Outcome::Hit: {
        // Zero-copy attach: decode straight out of the shared arena (the
        // one copy of each section lands in the bundle's own vectors),
        // then revalidate the seqlock generation — only a stable entry
        // is trusted.
        const bool decoded =
            decode_setup_bundle(lk.data, lk.size, &imported);
        if (!cache->confirm(lk)) {
          // The entry was evicted/republished while we read it; what we
          // decoded may be torn.  The new entry is somebody else's
          // problem — just build cold without recording.
          imported = SetupBundle{};
          std::printf("[worker] cache entry '%s' changed mid-read; "
                      "building cold\n",
                      key.text.c_str());
          std::fflush(stdout);
        } else if (decoded) {
          importing = true;
          cache_tag = "hit";
          obs::count("fleet/cache/hits");
        } else {
          // CRC passed but the framing is wrong — a version skew or a
          // serializer bug, not bit rot.  Same policy: evict the entry,
          // relaunch the job cold.
          cache->evict(lk.slot);
          obs::count("fleet/cache/evictions");
          std::printf("[worker] cache entry '%s' undecodable; evicted\n",
                      key.text.c_str());
          std::fflush(stdout);
          ::_exit(kExitCacheFailed);
        }
        break;
      }
      case SetupCache::Outcome::Corrupt:
        obs::count("fleet/cache/evictions");
        std::printf("[worker] cache entry '%s' failed CRC; evicted\n",
                    key.text.c_str());
        std::fflush(stdout);
        ::_exit(kExitCacheFailed);
      case SetupCache::Outcome::Claimed:
        recording = true;
        publish_slot = lk.slot;
        obs::count("fleet/cache/misses");
        break;
      case SetupCache::Outcome::Miss:
        obs::count("fleet/cache/misses");
        break;
    }
  }

  mark("lookup");

  // Install the shared kernel table BEFORE the first mxm call so every
  // worker of a key computes with identical kernel choices (belt and
  // suspenders on top of TSEM_MXM_DETERMINISTIC).
  if (importing && !imported.mxm.empty())
    mxm_autotune_import_table(imported.mxm);

  Space space = [&] {
    if (importing && !imported.mesh.empty()) {
      Mesh m;
      if (deserialize_mesh(imported.mesh, &m)) {
        // Replay the C0 connectivity too when its section validates
        // against this mesh; otherwise rebuild just that (same bits).
        if (!imported.gs.empty()) {
          ByteReader r(imported.gs);
          GatherScatter g;
          if (g.deserialize(r) && r.exhausted() &&
              g.nlocal() == m.nlocal())
            return Space(std::move(m), std::move(g));
        }
        return Space(std::move(m));
      }
    }
    return make_space(job);
  }();
  mark("space");
  NsOptions opt;
  opt.dt = job.dt;
  opt.viscosity = 1.0 / job.reynolds;
  opt.torder = 2;
  opt.proj_len = 8;
  opt.dealias = job.dealias;
  opt.setup_import = importing ? &imported : nullptr;
  opt.setup_record = recording ? &recorded : nullptr;
  NavierStokes ns(space, 0u, opt);
  mark("ns");
  init_taylor_green(ns, space);
  mark("init");

  if (recording) {
    serialize_mesh(space.mesh(), &recorded.mesh);
    {
      ByteWriter w;
      space.gs().serialize(w);
      recorded.gs = w.take();
    }
    recorded.mxm = mxm_autotune_export_table();
    const std::vector<std::uint8_t> blob = encode_setup_bundle(recorded);
    const bool torn = setup_fault_fires(
        fault, ProcessFault::Kind::TornPublish, attempt);
    if (cache->publish(publish_slot, blob, torn)) {
      obs::count("fleet/cache/publishes");
      if (torn) {
        // The slot now reads Ready with a full-payload CRC over a
        // half-written payload — the torn entry the next attach must
        // reject by checksum.  Die like a mid-copy crash.
        std::printf("[worker] injected torn cache publish\n");
        std::fflush(stdout);
        ::_exit(kExitInjectedTornPublish);
      }
    } else {
      obs::count("fleet/cache/publish_failures");
      std::printf("[worker] cache publish failed (entry disabled)\n");
      std::fflush(stdout);
    }
    mark("publish");
  }

  int start_step = 0;
  if (::access(paths.checkpoint.c_str(), F_OK) == 0) {
    NsState st;
    std::string rerr;
    if (load_checkpoint(paths.checkpoint, &st, &rerr) &&
        ns.import_state(st, &rerr)) {
      start_step = st.step;
      std::printf("[worker] resumed from checkpoint at step %d\n",
                  start_step);
    } else {
      // Second line of defense: a checkpoint that slipped past the atomic
      // write (e.g. bytes corrupted at rest) fails its CRC here and the
      // job cold-starts — deterministic integration reproduces the same
      // final state, only the saved work is lost.
      std::printf("[worker] checkpoint rejected (%s); cold start\n",
                  rerr.c_str());
    }
    std::fflush(stdout);
  }
  const double setup_seconds = seconds_since(t_setup0);
  if (!beat(heartbeat_fd, "A", attempt, start_step)) orphan_exit(start_step);
  const auto t_steps0 = std::chrono::steady_clock::now();

  // Test pacing seam: the fleet tests stretch these tiny canonical jobs
  // past the supervisor's poll tick so preemption/watchdog behavior is
  // exercised deterministically instead of racing worker speed.
  int step_sleep_us = 0;
  if (const char* pace = std::getenv("TSEM_FLEET_STEP_SLEEP_US"))
    step_sleep_us = std::atoi(pace);

  int recovered_steps = 0;
  for (int n = start_step + 1; n <= job.steps; ++n) {
    if (fault_fires(fault, ProcessFault::Kind::KillWorker, n, attempt)) {
      std::printf("[worker] injected kill before step %d\n", n);
      std::fflush(stdout);
      ::_exit(kExitInjectedKill);
    }
    if (fault_fires(fault, ProcessFault::Kind::Hang, n, attempt)) {
      std::printf("[worker] injected hang before step %d\n", n);
      std::fflush(stdout);
      for (;;) ::sleep(1000);  // no heartbeats: watchdog food
    }

    const StepStats st = ns.step();
    if (st.failed) {
      std::printf("[worker] step %d failed: resilience ladder exhausted\n",
                  n);
      std::fflush(stdout);
      ::_exit(kExitStepFailed);
    }
    if (st.recovered) ++recovered_steps;
    if (!beat(heartbeat_fd, "S", n)) orphan_exit(n);
    if (step_sleep_us > 0) ::usleep(static_cast<useconds_t>(step_sleep_us));

    if (job.checkpoint_every > 0 && n % job.checkpoint_every == 0) {
      if (fault_fires(fault, ProcessFault::Kind::TornCheckpoint, n, attempt,
                      /*at_or_past=*/true)) {
        // Die mid-checkpoint-write: a partial temp file is all that ever
        // exists, because the real writer only renames a complete,
        // fsync'ed file into place.  The previous good checkpoint (and
        // therefore resumability) survives this by construction.
        std::printf("[worker] injected torn checkpoint write at step %d\n",
                    n);
        std::fflush(stdout);
        std::FILE* f = std::fopen((paths.checkpoint + ".tmp").c_str(), "wb");
        if (f) {
          std::fputs("TSEMCKPT torn mid-write", f);
          std::fclose(f);
        }
        ::_exit(kExitInjectedTorn);
      }
      std::string cerr_;
      if (save_checkpoint(ns, paths.checkpoint, &cerr_)) {
        if (!beat(heartbeat_fd, "C", n)) orphan_exit(n);
      } else {
        // A failed checkpoint write is not fatal to the attempt; the job
        // just has a longer replay window if it is later killed.
        std::printf("[worker] checkpoint write failed: %s\n", cerr_.c_str());
        std::fflush(stdout);
      }
    }
  }

  obs::Json result = obs::Json::object();
  result["schema"] = "terasem-fleet-job-1";
  result["name"] = job.name;
  result["index"] = job.index;
  result["attempt"] = attempt;
  result["steps_done"] = job.steps;
  result["resumed_from_step"] = start_step;
  result["final_time"] = ns.time();
  result["digest"] = digest_hex(ns.state_digest());
  result["kinetic_energy"] = ns.kinetic_energy();
  result["divergence"] = ns.divergence_norm();
  result["recovered_steps"] = recovered_steps;
  result["setup_seconds"] = setup_seconds;
  result["step_seconds"] = seconds_since(t_steps0);
  result["cache"] = cache_tag;
  const obs::Json snap = obs::MetricsRegistry::instance().snapshot();
  if (const obs::Json* counters = snap.find("counters"))
    result["counters"] = *counters;
  else
    result["counters"] = obs::Json::object();

  const std::string text = result.dump(2);
  std::string werr;
  if (!write_file_atomic(paths.result, text.data(), text.size(), &werr)) {
    std::printf("[worker] result write failed: %s\n", werr.c_str());
    std::fflush(stdout);
    ::_exit(kExitResultFailed);
  }
  ::_exit(kExitOk);
}

bool read_job_result(const std::string& path, JobResult* out,
                     std::string* err) {
  obs::Json doc;
  obs::Json::ParseError perr;
  if (!obs::Json::parse_file(path, &doc, &perr)) {
    if (err) *err = perr.to_string();
    return false;
  }
  auto fail = [&](const std::string& what) {
    if (err) *err = path + ": " + what;
    return false;
  };
  if (!doc.is_object()) return fail("result is not an object");
  const obs::Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "terasem-fleet-job-1")
    return fail("missing or wrong result schema");

  JobResult r;
  const obs::Json* name = doc.find("name");
  const obs::Json* digest = doc.find("digest");
  if (!name || !name->is_string() || !digest || !digest->is_string())
    return fail("missing name/digest");
  r.name = name->as_string();
  r.digest = digest->as_string();
  if (!get_req_int(doc, "index", &r.index) ||
      !get_req_int(doc, "attempt", &r.attempt) ||
      !get_req_int(doc, "steps_done", &r.steps_done) ||
      !get_req_int(doc, "resumed_from_step", &r.resumed_from_step) ||
      !get_req_int(doc, "recovered_steps", &r.recovered_steps) ||
      !get_req_double(doc, "final_time", &r.final_time) ||
      !get_req_double(doc, "kinetic_energy", &r.kinetic_energy) ||
      !get_req_double(doc, "divergence", &r.divergence) ||
      !get_req_double(doc, "setup_seconds", &r.setup_seconds) ||
      !get_req_double(doc, "step_seconds", &r.step_seconds))
    return fail("missing numeric result fields");
  const obs::Json* cache = doc.find("cache");
  if (!cache || !cache->is_string()) return fail("missing cache field");
  r.cache = cache->as_string();
  if (const obs::Json* counters = doc.find("counters"))
    r.counters = *counters;
  *out = std::move(r);
  return true;
}

}  // namespace tsem::fleet
