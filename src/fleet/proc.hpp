// Shared POSIX process helpers for the fork-based engines (the fleet
// supervisor and the mp rank-parallel backend).
//
// Both engines run the same loop shape — fork children with a heartbeat
// pipe, poll the pipes, reap with waitpid — and both are exposed to the
// same two classes of POSIX sharp edge this header owns:
//
//   * EINTR: a stray signal (profiler tick, test-injected SIGALRM, a
//     debugger attach) interrupts poll/read/waitpid.  The raw calls
//     return -1/EINTR, which the callers used to misread as a timeout
//     tick or end-of-data.  xpoll/xread/xwaitpid retry, with xpoll
//     re-arming on the *remaining* timeout so an interrupt storm cannot
//     shorten (or extend) a watchdog window.
//   * SIGPIPE: a child whose supervisor died writes its next heartbeat
//     into a pipe with no reader and is killed by SIGPIPE unless the
//     signal is ignored.  ignore_sigpipe() turns that death into a
//     visible EPIPE the writer can classify (orphaned, not crashed).
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>
#include <string>

namespace tsem::fleet {

/// poll(2) retrying EINTR with the remaining timeout.  Returns poll's
/// result (>= 0, or -1 with errno for real failures only, never EINTR).
/// timeout_ms < 0 blocks indefinitely, as poll does.
int xpoll(struct pollfd* fds, unsigned long nfds, int timeout_ms);

/// read(2) retrying EINTR.  Returns read's result otherwise unchanged
/// (0 = EOF, -1/EAGAIN on a drained nonblocking fd).
ssize_t xread(int fd, void* buf, std::size_t n);

/// waitpid(2) retrying EINTR.
pid_t xwaitpid(pid_t pid, int* status, int options);

/// Idempotently install SIG_IGN for SIGPIPE in the calling process.
/// Every forked child that writes a heartbeat pipe must call this before
/// its first write (children inherit the disposition across fork, so the
/// parent may also install it once before forking).
void ignore_sigpipe();

/// Human-readable wait(2) status: "exit N" / "signal N".
std::string wait_status_str(int status);

}  // namespace tsem::fleet
