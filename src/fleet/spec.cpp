#include "fleet/spec.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace tsem::fleet {
namespace {

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

bool get_int(const obs::Json& o, const char* key, int* out,
             std::string* err) {
  const obs::Json* v = o.find(key);
  if (!v) return true;
  if (!v->is_number())
    return fail(err, std::string("spec: '") + key + "' must be a number");
  *out = static_cast<int>(v->as_int());
  return true;
}

bool get_bool(const obs::Json& o, const char* key, bool* out,
              std::string* err) {
  const obs::Json* v = o.find(key);
  if (!v) return true;
  if (!v->is_bool())
    return fail(err, std::string("spec: '") + key + "' must be a boolean");
  *out = v->as_bool();
  return true;
}

bool get_double(const obs::Json& o, const char* key, double* out,
                std::string* err) {
  const obs::Json* v = o.find(key);
  if (!v) return true;
  if (!v->is_number())
    return fail(err, std::string("spec: '") + key + "' must be a number");
  *out = v->as_double();
  return true;
}

bool get_int_axis(const obs::Json& o, const char* key,
                  std::vector<int>* out, std::string* err) {
  const obs::Json* v = o.find(key);
  if (!v) return true;
  if (!v->is_array())
    return fail(err, std::string("spec: sweep axis '") + key +
                         "' must be an array");
  for (const auto& item : v->items()) {
    if (!item.is_number())
      return fail(err, std::string("spec: sweep axis '") + key +
                           "' has a non-numeric entry");
    out->push_back(static_cast<int>(item.as_int()));
  }
  return true;
}

bool get_double_axis(const obs::Json& o, const char* key,
                     std::vector<double>* out, std::string* err) {
  const obs::Json* v = o.find(key);
  if (!v) return true;
  if (!v->is_array())
    return fail(err, std::string("spec: sweep axis '") + key +
                         "' must be an array");
  for (const auto& item : v->items()) {
    if (!item.is_number())
      return fail(err, std::string("spec: sweep axis '") + key +
                           "' has a non-numeric entry");
    out->push_back(item.as_double());
  }
  return true;
}

bool check_keys(const obs::Json& o, std::initializer_list<const char*> known,
                const char* where, std::string* err) {
  for (const auto& [key, value] : o.members()) {
    bool ok = false;
    for (const char* k : known)
      if (key == k) {
        ok = true;
        break;
      }
    if (!ok)
      return fail(err, std::string("spec: unknown key '") + key + "' in " +
                           where);
  }
  return true;
}

}  // namespace

int retry_backoff_ms(const FleetOptions& opt, int attempt) {
  if (opt.backoff_base_ms <= 0) return 0;
  const int cap = std::max(opt.backoff_max_ms, 0);
  // Clamp the exponent before shifting: 2^30 ms is already ~12 days, so
  // any real cap has long since saturated, and the shift itself stays
  // defined for attempt counts like a max_attempts = 40 ladder (where
  // the old `base * (1 << (attempt - 1))` was UB).
  const int shift = std::min(std::max(attempt - 1, 0), 30);
  const std::int64_t raw = static_cast<std::int64_t>(opt.backoff_base_ms)
                           << shift;
  return static_cast<int>(std::min<std::int64_t>(raw, cap));
}

bool parse_sweep(const obs::Json& doc, SweepSpec* out, std::string* err) {
  if (!doc.is_object()) return fail(err, "spec: document must be an object");
  if (!check_keys(doc,
                  {"name", "case", "sweep", "fleet", "faults", "priorities"},
                  "document", err))
    return false;

  SweepSpec s;
  if (const obs::Json* v = doc.find("name")) {
    if (!v->is_string()) return fail(err, "spec: 'name' must be a string");
    s.name = v->as_string();
  }

  if (const obs::Json* c = doc.find("case")) {
    if (!c->is_object()) return fail(err, "spec: 'case' must be an object");
    if (!check_keys(*c,
                    {"mesh_k", "order", "dt", "steps", "reynolds",
                     "checkpoint_every", "dealias", "priority"},
                    "'case'", err))
      return false;
    if (!get_int(*c, "mesh_k", &s.base.mesh_k, err) ||
        !get_int(*c, "order", &s.base.order, err) ||
        !get_double(*c, "dt", &s.base.dt, err) ||
        !get_int(*c, "steps", &s.base.steps, err) ||
        !get_double(*c, "reynolds", &s.base.reynolds, err) ||
        !get_int(*c, "checkpoint_every", &s.base.checkpoint_every, err) ||
        !get_bool(*c, "dealias", &s.base.dealias, err) ||
        !get_int(*c, "priority", &s.base.priority, err))
      return false;
  }

  if (const obs::Json* w = doc.find("sweep")) {
    if (!w->is_object()) return fail(err, "spec: 'sweep' must be an object");
    if (!check_keys(*w, {"reynolds", "mesh_k", "order", "dt", "steps"},
                    "'sweep'", err))
      return false;
    if (!get_double_axis(*w, "reynolds", &s.reynolds, err) ||
        !get_int_axis(*w, "mesh_k", &s.mesh_k, err) ||
        !get_int_axis(*w, "order", &s.order, err) ||
        !get_double_axis(*w, "dt", &s.dt, err) ||
        !get_int_axis(*w, "steps", &s.steps, err))
      return false;
  }

  if (const obs::Json* f = doc.find("fleet")) {
    if (!f->is_object()) return fail(err, "spec: 'fleet' must be an object");
    if (!check_keys(*f,
                    {"concurrency", "watchdog_ms", "max_attempts",
                     "backoff_base_ms", "backoff_max_ms", "quantum_steps",
                     "poll_ms", "workdir", "cache", "cache_entry_kb",
                     "scheduler"},
                    "'fleet'", err))
      return false;
    if (!get_int(*f, "concurrency", &s.fleet.concurrency, err) ||
        !get_int(*f, "watchdog_ms", &s.fleet.watchdog_ms, err) ||
        !get_int(*f, "max_attempts", &s.fleet.max_attempts, err) ||
        !get_int(*f, "backoff_base_ms", &s.fleet.backoff_base_ms, err) ||
        !get_int(*f, "backoff_max_ms", &s.fleet.backoff_max_ms, err) ||
        !get_int(*f, "quantum_steps", &s.fleet.quantum_steps, err) ||
        !get_int(*f, "poll_ms", &s.fleet.poll_ms, err) ||
        !get_bool(*f, "cache", &s.fleet.cache, err) ||
        !get_int(*f, "cache_entry_kb", &s.fleet.cache_entry_kb, err))
      return false;
    if (const obs::Json* wd = f->find("workdir")) {
      if (!wd->is_string())
        return fail(err, "spec: 'fleet.workdir' must be a string");
      s.fleet.workdir = wd->as_string();
    }
    if (const obs::Json* sc = f->find("scheduler")) {
      if (!sc->is_string())
        return fail(err, "spec: 'fleet.scheduler' must be a string");
      const std::string name = sc->as_string();
      if (name == "fifo")
        s.fleet.scheduler = FleetOptions::Scheduler::Fifo;
      else if (name == "sjf")
        s.fleet.scheduler = FleetOptions::Scheduler::Sjf;
      else
        return fail(err, "spec: 'fleet.scheduler' must be 'fifo' or 'sjf'");
    }
  }

  if (const obs::Json* fl = doc.find("faults")) {
    if (!fl->is_array()) return fail(err, "spec: 'faults' must be an array");
    for (const auto& entry : fl->items()) {
      if (!entry.is_object())
        return fail(err, "spec: each 'faults' entry must be an object");
      if (!check_keys(entry, {"job", "fault"}, "'faults' entry", err))
        return false;
      const obs::Json* job = entry.find("job");
      const obs::Json* fault = entry.find("fault");
      if (!job || !job->is_number() || !fault || !fault->is_string())
        return fail(err,
                    "spec: 'faults' entry needs numeric 'job' and string "
                    "'fault'");
      ProcessFault pf;
      if (!parse_process_fault(fault->as_string(), &pf, err)) return false;
      s.faults.emplace_back(static_cast<int>(job->as_int()), pf);
    }
  }

  if (const obs::Json* pl = doc.find("priorities")) {
    if (!pl->is_array())
      return fail(err, "spec: 'priorities' must be an array");
    for (const auto& entry : pl->items()) {
      if (!entry.is_object())
        return fail(err, "spec: each 'priorities' entry must be an object");
      if (!check_keys(entry, {"job", "priority"}, "'priorities' entry", err))
        return false;
      const obs::Json* job = entry.find("job");
      const obs::Json* prio = entry.find("priority");
      if (!job || !job->is_number() || !prio || !prio->is_number())
        return fail(err,
                    "spec: 'priorities' entry needs numeric 'job' and "
                    "'priority'");
      s.priorities.emplace_back(static_cast<int>(job->as_int()),
                                static_cast<int>(prio->as_int()));
    }
  }

  // Sanity floor: a malformed spec must surface here, not as a crashed
  // worker that burns its retry budget on a nonsense discretization.
  if (s.base.mesh_k < 1 || s.base.order < 2 || s.base.steps < 1 ||
      !(s.base.dt > 0.0) || !(s.base.reynolds > 0.0))
    return fail(err, "spec: implausible base case (mesh_k/order/dt/steps)");
  for (int k : s.mesh_k)
    if (k < 1) return fail(err, "spec: mesh_k axis value < 1");
  for (int n : s.order)
    if (n < 2) return fail(err, "spec: order axis value < 2");
  for (double d : s.dt)
    if (!(d > 0.0)) return fail(err, "spec: dt axis value <= 0");
  for (int n : s.steps)
    if (n < 1) return fail(err, "spec: steps axis value < 1");
  for (double re : s.reynolds)
    if (!(re > 0.0)) return fail(err, "spec: reynolds axis value <= 0");
  if (s.fleet.concurrency < 1 || s.fleet.max_attempts < 1 ||
      s.fleet.watchdog_ms < 1 || s.fleet.poll_ms < 1 ||
      s.fleet.backoff_base_ms < 0 || s.fleet.backoff_max_ms < 0 ||
      s.fleet.quantum_steps < 0 || s.fleet.cache_entry_kb < 0)
    return fail(err, "spec: implausible fleet options");

  *out = std::move(s);
  return true;
}

bool parse_sweep_text(std::string_view text, SweepSpec* out,
                      std::string* err) {
  obs::Json doc;
  obs::Json::ParseError perr;
  if (!obs::Json::parse(text, &doc, &perr))
    return fail(err, "spec: " + perr.to_string());
  return parse_sweep(doc, out, err);
}

std::vector<JobSpec> expand_sweep(const SweepSpec& spec) {
  // Absent axes collapse to the base value so the product below is
  // always over five non-empty axes.
  const std::vector<double> res =
      spec.reynolds.empty() ? std::vector<double>{spec.base.reynolds}
                            : spec.reynolds;
  const std::vector<int> ks =
      spec.mesh_k.empty() ? std::vector<int>{spec.base.mesh_k} : spec.mesh_k;
  const std::vector<int> orders =
      spec.order.empty() ? std::vector<int>{spec.base.order} : spec.order;
  const std::vector<double> dts =
      spec.dt.empty() ? std::vector<double>{spec.base.dt} : spec.dt;
  const std::vector<int> steps =
      spec.steps.empty() ? std::vector<int>{spec.base.steps} : spec.steps;

  std::vector<JobSpec> jobs;
  jobs.reserve(res.size() * ks.size() * orders.size() * dts.size() *
               steps.size());
  for (double re : res)
    for (int k : ks)
      for (int order : orders)
        for (double dt : dts)
          for (int nsteps : steps) {
            JobSpec j = spec.base;
            j.index = static_cast<int>(jobs.size());
            j.reynolds = re;
            j.mesh_k = k;
            j.order = order;
            j.dt = dt;
            j.steps = nsteps;
            j.name = spec.name + "/re" + fmt_g(re) + "_k" +
                     std::to_string(k) + "_N" + std::to_string(order) +
                     "_dt" + fmt_g(dt) + "_s" + std::to_string(nsteps);
            jobs.push_back(std::move(j));
          }
  for (const auto& [index, fault] : spec.faults)
    if (index >= 0 && index < static_cast<int>(jobs.size()))
      jobs[static_cast<std::size_t>(index)].fault = fault;
  for (const auto& [index, priority] : spec.priorities)
    if (index >= 0 && index < static_cast<int>(jobs.size()))
      jobs[static_cast<std::size_t>(index)].priority = priority;
  return jobs;
}

}  // namespace tsem::fleet
