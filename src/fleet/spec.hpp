// Declarative ensemble case specs and parameter-sweep expansion.
//
// The fleet engine (src/fleet/supervisor.hpp) consumes one JSON document
// describing a family of Navier-Stokes runs — a base case plus sweep axes
// (Reynolds number, mesh resolution, polynomial order, dt, step count) —
// and expands it into a deterministic job queue.  Expansion is a plain
// cartesian product in a FIXED axis order (reynolds, mesh_k, order, dt,
// steps), so the same spec always yields the same job list in the same
// order with the same names: job index i is a stable identity that fault
// plans, checkpoints, and reports key on.
//
// Spec document shape (all sweep axes optional; absent = base value):
//
//   {
//     "name": "re_sweep",
//     "case": { "mesh_k": 2, "order": 4, "dt": 0.01, "steps": 6,
//               "reynolds": 20.0, "checkpoint_every": 2,
//               "dealias": false, "priority": 0 },
//     "sweep": { "reynolds": [10, 20], "order": [3, 4] },
//     "fleet": { "concurrency": 4, "watchdog_ms": 2000,
//                "max_attempts": 3, "backoff_base_ms": 10,
//                "quantum_steps": 0, "cache": true, "cache_entry_kb": 0,
//                "scheduler": "sjf" },
//     "faults": [ { "job": 3, "fault": "kill@5" } ],
//     "priorities": [ { "job": 7, "priority": 2 } ]
//   }
//
// "faults" is the spec-driven activation seam for the process-level
// FaultInjector kinds (resilience/fault_injector.hpp): each entry pins a
// ProcessFault onto one expanded job index, which is how the fleet tests
// drive worker crashes, hangs, and torn checkpoint writes end to end.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "resilience/fault_injector.hpp"

namespace tsem::fleet {

/// One fully-instantiated ensemble member: a 2D Taylor-Green box run
/// (periodic [0,2pi]^2, mesh_k x mesh_k elements) at the given
/// discretization.  The physics is deliberately canonical — the fleet
/// layer is about *running* many cases, and Taylor-Green gives every job
/// a deterministic, digest-comparable final state.
struct JobSpec {
  std::string name;         ///< "<sweep>/<axis values>" (unique, stable)
  int index = 0;            ///< position in the expanded queue
  int mesh_k = 2;           ///< elements per side of the periodic box
  int order = 4;            ///< polynomial order N
  double dt = 0.01;
  int steps = 6;            ///< total steps the job must complete
  double reynolds = 20.0;   ///< viscosity = 1/Re
  int checkpoint_every = 2; ///< checkpoint cadence in steps (0 = never)
  /// Over-integrate convection on the 3/2 fine grid (NsOptions::dealias);
  /// part of the setup-cache shape key — the interpolation matrices are
  /// cached artifacts.
  bool dealias = false;
  /// Scheduler lane: higher-priority jobs dispatch before lower ones
  /// regardless of their run-time estimate (Sjf orders within a lane).
  int priority = 0;
  ProcessFault fault;       ///< injected process fault (tests; default none)
};

/// Supervisor policy knobs (see supervisor.hpp for the state machine).
struct FleetOptions {
  int concurrency = 2;       ///< max simultaneously forked workers
  int watchdog_ms = 4000;    ///< heartbeat silence before SIGKILL
  int max_attempts = 3;      ///< crash/hang attempts before quarantine
  int backoff_base_ms = 10;  ///< retry n delays base * 2^(n-1) ms
  int backoff_max_ms = 30000;  ///< ceiling on any single retry delay
  /// Preempt a running job once it has completed this many steps in the
  /// current attempt AND written a checkpoint (durable progress), when
  /// other jobs are waiting.  0 disables preemption.
  int quantum_steps = 0;
  int poll_ms = 5;           ///< supervisor event-loop tick
  std::string workdir = "fleet_work";  ///< checkpoints/results/logs
  /// Shape-keyed shared setup cache (fleet/setup_cache.hpp): the first
  /// worker per (mesh, order, precision, ISA) key publishes its setup
  /// artifacts into a MAP_SHARED arena; later workers attach and skip
  /// straight to time-stepping.  $TSEM_FLEET_CACHE=0/1 overrides.
  bool cache = true;
  /// Per-entry arena capacity override in KiB (0 = analytic estimate).
  int cache_entry_kb = 0;
  /// Dispatch order: Fifo = expanded queue order; Sjf = shortest job
  /// first inside each priority lane, using measured per-key step times
  /// once available and a steps * order^3 prior before that.  Ties (and
  /// uniform sweeps under the prior) degrade to queue order, so Sjf is a
  /// safe default.
  enum class Scheduler { Fifo, Sjf };
  Scheduler scheduler = Scheduler::Sjf;
};

/// Parsed sweep document: base case + axes + fleet policy + fault plan.
struct SweepSpec {
  std::string name = "sweep";
  JobSpec base;
  FleetOptions fleet;
  // Sweep axes; an empty axis means "use the base value".
  std::vector<double> reynolds;
  std::vector<int> mesh_k;
  std::vector<int> order;
  std::vector<double> dt;
  std::vector<int> steps;
  // Spec-driven fault plan: (expanded job index, fault).
  std::vector<std::pair<int, ProcessFault>> faults;
  // Spec-driven priority lanes: (expanded job index, priority), applied
  // by index like the fault plan; out-of-range entries are ignored.
  std::vector<std::pair<int, int>> priorities;
};

/// Retry delay for the n-th attempt (attempt >= 1 is the attempt that
/// just failed): backoff_base_ms * 2^(attempt-1), with the shift clamped
/// and the product saturated at backoff_max_ms.  Well-defined for ANY
/// attempt — the naive `base * (1 << (attempt - 1))` is UB past
/// attempt 31 and overflows int long before a max_attempts = 40 ladder
/// finishes.
int retry_backoff_ms(const FleetOptions& opt, int attempt);

/// Parse a sweep document (already-parsed JSON).  Unknown keys are
/// rejected — a typo'd axis name must not silently run the wrong sweep.
/// Returns false with *err on any structural defect.
bool parse_sweep(const obs::Json& doc, SweepSpec* out, std::string* err);

/// Convenience: text -> Json (hardened parser) -> parse_sweep.
bool parse_sweep_text(std::string_view text, SweepSpec* out,
                      std::string* err);

/// Deterministic cartesian expansion (axis order: reynolds, mesh_k,
/// order, dt, steps) with the spec's fault plan applied by job index.
/// Fault entries whose index is out of range are ignored (the plan may
/// have been written for a larger sweep).
std::vector<JobSpec> expand_sweep(const SweepSpec& spec);

}  // namespace tsem::fleet
