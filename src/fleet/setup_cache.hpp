// Shape-keyed shared setup cache for the ensemble fleet (DESIGN.md
// "Setup cache").
//
// Expensive per-job setup — mesh construction, the Schwarz FDM
// eigendecompositions, the factored XXT coarse tree, the dealiasing
// interpolation operators, the mxm kernel-selection table — depends only
// on the job's SHAPE (mesh spec x order x precision policy x runtime
// ISA), not on its physics parameters.  A Reynolds sweep therefore
// rebuilds identical artifacts in every worker.  The supervisor instead
// owns a MAP_SHARED arena (src/mp/shm.hpp) with one fixed-capacity slot
// per distinct shape key, allocated and sealed BEFORE the first fork so
// every worker inherits the same pages: the first worker for a key
// builds cold and publishes the encoded SetupBundle under a
// generation-stamped seqlock word; later workers attach, verify the
// CRC-32 in place, decode zero-copy out of the shared pages, and skip
// straight to time-stepping.
//
// Trust model: a Ready entry is NEVER trusted.  The CRC (computed over
// the shared bytes) catches torn publishes (a worker killed mid-copy
// that already flipped the word — injected by the TornPublish fault);
// the generation recheck (confirm()) catches eviction/republication
// underneath a reader; the bounds-checked bundle decoders catch
// structural rot and make the zero-copy read crash-free even against a
// concurrent rewrite.  Any
// rejection evicts the ENTRY (generation bump to Empty) and the worker
// exits kExitCacheFailed so the supervisor can relaunch the JOB cold
// without burning its retry ladder — a poisoned cache must cost wall
// time, never a quarantine.
//
// The bitwise contract: a cache-hit job's state digest equals its
// cold-start digest bit for bit (asserted by the fleet cache drill).
// Serialization round-trips FP64 payloads exactly and re-derives FP32
// twins with the constructors' own expressions, and the shared mxm table
// pins every worker of a key to the same kernel choices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "mp/shm.hpp"

namespace tsem::fleet {

/// Canonical setup shape of a job.  digest is a CRC-32 of the canonical
/// text, which names every input the cached artifacts depend on: the
/// mesh spec (fleet jobs are periodic [0,2pi]^2 boxes, so mesh_k pins
/// it), polynomial order, dealiasing, the preconditioner precision
/// policy, and the runtime vector ISA (kernel-table validity).
struct SetupKey {
  std::string text;
  std::uint32_t digest = 0;
};

[[nodiscard]] SetupKey setup_key_for(const JobSpec& job);

/// Distinct keys of an expanded job list, in first-appearance order.
[[nodiscard]] std::vector<SetupKey> distinct_setup_keys(
    const std::vector<JobSpec>& jobs);

/// Analytic upper bound on one key's encoded-bundle size (bytes); the
/// slot capacity.  Deliberately generous (~1.5x a worst-case accounting
/// of every section) — an oversized publish disables the entry and the
/// job just runs cold, so the bound is a performance knob, not a
/// correctness one.
[[nodiscard]] std::size_t estimate_entry_bytes(const JobSpec& job);

class SetupCache {
 public:
  enum class Outcome {
    Hit,      ///< payload copied out, seqlock-consistent, CRC verified
    Claimed,  ///< slot transitioned Empty->Building; caller must publish
              ///< (or die and be reaped by evict_dead_builder)
    Miss,     ///< entry Building/Disabled/contended: build cold, don't
              ///< record
    Corrupt,  ///< Ready entry failed CRC: entry evicted; caller should
              ///< _exit(kExitCacheFailed) so the job relaunches cold
  };
  struct Lookup {
    Outcome outcome = Outcome::Miss;
    int slot = -1;  ///< valid whenever the key was found
    /// On Hit: a zero-copy view into the shared arena, CRC-verified in
    /// place.  Decode from it directly (the bundle decoders are bounds-
    /// checked, so even a concurrent rewrite cannot crash the reader),
    /// then call confirm() — a generation recheck — before trusting
    /// anything derived from the bytes.
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::uint64_t word = 0;  ///< seqlock snapshot confirm() revalidates
  };

  /// Parent-side, pre-fork: one slot per job-derived distinct key.
  /// entry_kb_override > 0 fixes every slot's capacity (KiB) instead of
  /// the analytic estimate.
  SetupCache(const std::vector<JobSpec>& jobs, int entry_kb_override = 0);

  /// Seal the arena: call after construction, before the first fork.
  void seal() { arena_.seal(); }

  [[nodiscard]] int nslots() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] std::size_t bytes_mapped() const {
    return arena_.bytes_mapped();
  }

  // ---- worker side (post-fork; also usable single-process in tests) ----

  /// Resolve the key and run the read/claim protocol (counts hit/miss).
  [[nodiscard]] Lookup lookup(const SetupKey& key);

  /// Seqlock validation of a Hit: true iff the slot's generation word is
  /// unchanged since lookup(), i.e. nobody evicted or republished the
  /// entry while the caller was decoding from the shared view.
  [[nodiscard]] bool confirm(const Lookup& lk) const;

  /// Publish an encoded bundle into a slot this process Claimed.  False
  /// (entry Disabled) when the payload exceeds capacity.  torn_for_test
  /// writes only half the payload while stamping the full size and full
  /// CRC before flipping Ready — the TornPublish fault's torn entry,
  /// which the next reader must reject by checksum.
  bool publish(int slot, const std::vector<std::uint8_t>& payload,
               bool torn_for_test = false);

  /// Evict a Ready entry (post-CRC structural decode failure).
  void evict(int slot);

  // ---- supervisor side ----

  /// Reap Building slots whose builder was pid (worker died mid-build or
  /// mid-publish).  Returns the number of slots evicted back to Empty.
  int evict_dead_builder(int pid);

  /// True while the key's entry could still be published by a builder in
  /// flight (slot Empty or Building).  Ready, Disabled, and unknown keys
  /// return false — waiting cannot improve those.  Dispatch hint only
  /// (cache-aware hold-back in the supervisor's launch scan); workers
  /// still run the full lookup() protocol and tolerate every race.
  [[nodiscard]] bool publish_pending(std::uint32_t digest) const;

  /// Shared counters (atomics in the arena, so worker-side events are
  /// visible to the supervisor's report).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t publishes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t publish_failures = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct SharedSlot;   // arena-resident header (defined in the .cpp)
  struct SharedStats;  // arena-resident counters
  struct SlotRef {
    std::uint32_t digest;
    SharedSlot* hdr;
    std::uint8_t* payload;
    std::size_t capacity;
  };

  [[nodiscard]] int find_slot(std::uint32_t digest) const;

  mp::ShmArena arena_;
  std::vector<SlotRef> slots_;  // private; inherited read-only via fork
  SharedStats* stats_ = nullptr;
};

}  // namespace tsem::fleet
