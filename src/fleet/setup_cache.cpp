#include "fleet/setup_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstring>

#include "common/check.hpp"
#include "io/binfile.hpp"
#include "solver/precision.hpp"
#include "tensor/mxm.hpp"

namespace tsem::fleet {
namespace {

// Slot states in the low half of the ShmStateCell word.
constexpr std::uint32_t kEmpty = 0;
constexpr std::uint32_t kBuilding = 1;
constexpr std::uint32_t kReady = 2;
constexpr std::uint32_t kDisabled = 3;

// A racing publisher can flip a slot between the two seqlock reads; the
// retry bound only caps livelock, since each retry observes a NEW
// generation (real progress by someone).
constexpr int kSeqlockRetries = 4;

}  // namespace

struct SetupCache::SharedSlot {
  mp::ShmStateCell cell;
  std::atomic<std::int32_t> builder_pid;
  std::atomic<std::uint32_t> crc;
  std::atomic<std::uint64_t> bytes;
};

struct SetupCache::SharedStats {
  std::atomic<std::uint64_t> hits;
  std::atomic<std::uint64_t> misses;
  std::atomic<std::uint64_t> publishes;
  std::atomic<std::uint64_t> evictions;
  std::atomic<std::uint64_t> publish_failures;
};

SetupKey setup_key_for(const JobSpec& job) {
  SetupKey k;
  // Canonical text: every setup input the cached artifacts depend on.
  // Fleet jobs are all periodic [0,2pi]^2 Taylor-Green boxes (see
  // worker.cpp make_space), so the mesh spec digests to "box2d" + k.
  k.text = "box2d/k" + std::to_string(job.mesh_k) + "/N" +
           std::to_string(job.order) +
           (job.dealias ? "/dealias" : "/collocated");
  k.text += std::string("/prec=") +
            precond_precision_name(precond_precision_from_env());
  k.text += std::string("/isa=") + mxm_isa_runtime_name();
  k.digest = crc32(k.text.data(), k.text.size());
  return k;
}

std::vector<SetupKey> distinct_setup_keys(const std::vector<JobSpec>& jobs) {
  std::vector<SetupKey> keys;
  for (const JobSpec& j : jobs) {
    const SetupKey k = setup_key_for(j);
    bool seen = false;
    for (const SetupKey& e : keys) seen = seen || e.digest == k.digest;
    if (!seen) keys.push_back(k);
  }
  return keys;
}

std::size_t estimate_entry_bytes(const JobSpec& job) {
  const std::size_t k = static_cast<std::size_t>(job.mesh_k);
  const std::size_t n1 = static_cast<std::size_t>(job.order) + 1;
  const std::size_t nelem = k * k;
  const std::size_t nl = nelem * n1 * n1;
  // Mesh: coords + jac/bm + g (3 sym terms in 2D) + drdx (4) + ids + bits.
  std::size_t total = nl * 104 + nelem * 40 + 256;
  // FDM, worst case every element unique: per dim two m x m matrices +
  // inv_lambda (m^2), m <= n1 + 2 extended points.
  const std::size_t m1 = n1 + 2;
  total += nelem * (40 * m1 * m1 + 128);
  // XXT on the vertex mesh (n = nvert <= k^2 + perimeter): generous
  // per-row fill bound for the 2D nested-dissection factor.
  const std::size_t nvert = (k + 1) * (k + 1);
  total += nvert * 64 * 8 + 4096;
  // Dealias: 4 interpolation/derivative matrices + fine-grid jw + md.
  const std::size_t mfine = (3 * n1) / 2 + 1;
  total += mfine * n1 * 32 + nelem * mfine * mfine * 40 + 256;
  // Ghost exchange: anchor gather-scatter over nelem * 2*dim * ng1^(dim-1)
  // slots (int64 dense ids + two int32 group tables).
  total += nelem * 4 * n1 * 24 + 512;
  // Space connectivity: dense ids for every local node + group tables
  // covering the interface nodes.
  total += nl * 16 + 1024;
  // mxm table + bundle framing.
  total += 8192;
  return total + total / 2 + 65536;
}

SetupCache::SetupCache(const std::vector<JobSpec>& jobs,
                       int entry_kb_override) {
  static_assert(sizeof(SharedSlot) <= 64,
                "slot header must fit the payload's 64-byte alignment pad");
  stats_ = static_cast<SharedStats*>(arena_.alloc(sizeof(SharedStats)));
  // One slot per distinct key.  Capacity is fixed when the key first
  // appears; same-shape jobs produce the same estimate, so first-wins is
  // exact.
  for (const JobSpec& j : jobs) {
    const SetupKey key = setup_key_for(j);
    const std::size_t cap =
        entry_kb_override > 0
            ? static_cast<std::size_t>(entry_kb_override) * 1024
            : estimate_entry_bytes(j);
    if (find_slot(key.digest) >= 0) continue;
    auto* mem = static_cast<std::uint8_t*>(arena_.alloc(64 + cap));
    SlotRef ref;
    ref.digest = key.digest;
    ref.hdr = reinterpret_cast<SharedSlot*>(mem);
    ref.payload = mem + 64;
    ref.capacity = cap;
    // Arena memory is zero-initialized: word == (gen 0, kEmpty) already.
    slots_.push_back(ref);
  }
}

int SetupCache::find_slot(std::uint32_t digest) const {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].digest == digest) return static_cast<int>(i);
  return -1;
}

SetupCache::Lookup SetupCache::lookup(const SetupKey& key) {
  Lookup res;
  res.slot = find_slot(key.digest);
  if (res.slot < 0) {  // key not pre-allocated (shouldn't happen): cold
    stats_->misses.fetch_add(1, std::memory_order_relaxed);
    return res;
  }
  SlotRef& s = slots_[static_cast<std::size_t>(res.slot)];
  for (int tries = 0; tries < kSeqlockRetries; ++tries) {
    const std::uint64_t w = s.hdr->cell.load();
    const std::uint32_t st = mp::ShmStateCell::state_of(w);
    if (st == kReady) {
      const std::uint64_t nbytes =
          s.hdr->bytes.load(std::memory_order_acquire);
      const std::uint32_t want = s.hdr->crc.load(std::memory_order_acquire);
      if (nbytes > s.capacity) {  // header rot: treat as corrupt
        if (s.hdr->cell.try_transition(w, kEmpty))
          stats_->evictions.fetch_add(1, std::memory_order_relaxed);
        res.outcome = Outcome::Corrupt;
        return res;
      }
      // CRC straight over the shared pages — no private copy.  The
      // generation recheck below (and confirm() after the caller's
      // decode) closes the seqlock: if anyone republished while we were
      // summing, the word moved and we re-observe.
      if (crc32(s.payload, static_cast<std::size_t>(nbytes)) != want) {
        if (s.hdr->cell.load() != w) continue;  // republished mid-read
        // Torn publish: the word says Ready but the payload is partial.
        // Quarantine the ENTRY (evict), not the job.
        if (s.hdr->cell.try_transition(w, kEmpty))
          stats_->evictions.fetch_add(1, std::memory_order_relaxed);
        res.outcome = Outcome::Corrupt;
        return res;
      }
      if (s.hdr->cell.load() != w) continue;  // republished underneath us
      res.outcome = Outcome::Hit;
      res.data = s.payload;
      res.size = static_cast<std::size_t>(nbytes);
      res.word = w;
      stats_->hits.fetch_add(1, std::memory_order_relaxed);
      return res;
    }
    if (st == kEmpty) {
      if (s.hdr->cell.try_transition(w, kBuilding)) {
        s.hdr->builder_pid.store(static_cast<std::int32_t>(getpid()),
                                 std::memory_order_release);
        res.outcome = Outcome::Claimed;
        stats_->misses.fetch_add(1, std::memory_order_relaxed);
        return res;
      }
      continue;  // lost the claim race; re-observe
    }
    break;  // Building (someone else) or Disabled: cold, don't record
  }
  res.outcome = Outcome::Miss;
  stats_->misses.fetch_add(1, std::memory_order_relaxed);
  return res;
}

bool SetupCache::confirm(const Lookup& lk) const {
  if (lk.outcome != Outcome::Hit) return false;
  const SlotRef& s = slots_[static_cast<std::size_t>(lk.slot)];
  return s.hdr->cell.load() == lk.word;
}

bool SetupCache::publish(int slot, const std::vector<std::uint8_t>& payload,
                         bool torn_for_test) {
  TSEM_REQUIRE(slot >= 0 && slot < nslots());
  SlotRef& s = slots_[static_cast<std::size_t>(slot)];
  const std::uint64_t w = s.hdr->cell.load();
  TSEM_REQUIRE(mp::ShmStateCell::state_of(w) == kBuilding);
  if (payload.size() > s.capacity) {
    s.hdr->cell.try_transition(w, kDisabled);
    stats_->publish_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Stamp size + CRC of the FULL payload first; the torn variant then
  // copies only half of it before flipping Ready, modeling a builder
  // killed mid-copy whose header writes already landed — exactly the
  // entry the CRC check exists to reject.
  s.hdr->bytes.store(payload.size(), std::memory_order_release);
  s.hdr->crc.store(crc32(payload.data(), payload.size()),
                   std::memory_order_release);
  const std::size_t ncopy = torn_for_test ? payload.size() / 2
                                          : payload.size();
  std::memcpy(s.payload, payload.data(), ncopy);
  TSEM_REQUIRE(s.hdr->cell.try_transition(w, kReady));
  stats_->publishes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SetupCache::evict(int slot) {
  TSEM_REQUIRE(slot >= 0 && slot < nslots());
  SlotRef& s = slots_[static_cast<std::size_t>(slot)];
  const std::uint64_t w = s.hdr->cell.load();
  if (mp::ShmStateCell::state_of(w) != kReady) return;
  if (s.hdr->cell.try_transition(w, kEmpty))
    stats_->evictions.fetch_add(1, std::memory_order_relaxed);
}

bool SetupCache::publish_pending(std::uint32_t digest) const {
  const int slot = find_slot(digest);
  if (slot < 0) return false;
  const std::uint64_t w = slots_[static_cast<std::size_t>(slot)].hdr->cell.load();
  const std::uint32_t st = mp::ShmStateCell::state_of(w);
  return st == kEmpty || st == kBuilding;
}

int SetupCache::evict_dead_builder(int pid) {
  int n = 0;
  for (SlotRef& s : slots_) {
    const std::uint64_t w = s.hdr->cell.load();
    if (mp::ShmStateCell::state_of(w) != kBuilding) continue;
    if (s.hdr->builder_pid.load(std::memory_order_acquire) != pid) continue;
    if (s.hdr->cell.try_transition(w, kEmpty)) {
      stats_->evictions.fetch_add(1, std::memory_order_relaxed);
      ++n;
    }
  }
  return n;
}

SetupCache::Stats SetupCache::stats() const {
  Stats st;
  st.hits = stats_->hits.load(std::memory_order_relaxed);
  st.misses = stats_->misses.load(std::memory_order_relaxed);
  st.publishes = stats_->publishes.load(std::memory_order_relaxed);
  st.evictions = stats_->evictions.load(std::memory_order_relaxed);
  st.publish_failures =
      stats_->publish_failures.load(std::memory_order_relaxed);
  return st;
}

}  // namespace tsem::fleet
