#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>

#include "fleet/proc.hpp"
#include "fleet/setup_cache.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"

namespace tsem::fleet {
namespace {

using Clock = std::chrono::steady_clock;

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// mkdir -p.  Races with concurrent creators are fine (EEXIST ignored).
bool ensure_dir(const std::string& path, std::string* err) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      cur += path[i];
      continue;
    }
    if (!cur.empty() && cur != ".") {
      if (::mkdir(cur.c_str(), 0777) != 0 && errno != EEXIST)
        return fail(err, "mkdir " + cur + ": " + std::strerror(errno));
    }
    if (i < path.size()) cur += '/';
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
    return fail(err, path + " is not a directory");
  return true;
}

/// Last `max` bytes of a file — the quarantine report's captured log.
std::string log_tail(const std::string& path, std::size_t max = 2048) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return "(no log captured)";
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  const long from = size > static_cast<long>(max)
                        ? size - static_cast<long>(max)
                        : 0;
  std::fseek(f, from, SEEK_SET);
  std::string out(static_cast<std::size_t>(size - from), '\0');
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

std::string exit_detail(int status) {
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    switch (code) {
      case kExitSetupFailed: return "exit 65 (setup failed)";
      case kExitStepFailed: return "exit 66 (resilience ladder exhausted)";
      case kExitResultFailed: return "exit 67 (result write failed)";
      case kExitOrphaned:
        return "exit 68 (orphaned: supervisor heartbeat pipe closed)";
      case kExitInjectedKill: return "exit 70 (injected kill)";
      case kExitInjectedTorn: return "exit 71 (injected torn checkpoint)";
      case kExitCacheFailed:
        return "exit 72 (cache entry rejected; relaunch cold)";
      case kExitInjectedTornPublish:
        return "exit 73 (injected torn cache publish)";
      default: return "exit " + std::to_string(code);
    }
  }
  if (WIFSIGNALED(status))
    return std::string("signal ") + std::to_string(WTERMSIG(status));
  return "unknown wait status " + std::to_string(status);
}

enum class JobState { Ready, Running, Done, Quarantined };

struct JobRt {
  JobState state = JobState::Ready;
  int failed_attempts = 0;  ///< crash/hang attempts consumed so far
  Clock::time_point eligible_at{};  ///< backoff gate while Ready
  /// Relaunch with the cache bypassed (set after kExitCacheFailed).
  bool force_cold = false;
  /// The free cold relaunch has been spent; a second kExitCacheFailed
  /// goes through the normal retry ladder (it can only be a worker bug —
  /// the cold path never touches the cache).
  bool cold_retry_used = false;
};

struct Slot {
  int job = -1;
  pid_t pid = -1;
  int fd = -1;
  int attempt = 0;
  std::string buf;            ///< partial heartbeat line
  Clock::time_point started;
  Clock::time_point last_beat;
  int last_step = 0;
  int steps_this_run = 0;
  bool durable = false;       ///< checkpoint written this attempt
};

}  // namespace

bool run_fleet(const SweepSpec& spec, FleetReport* report, std::string* err) {
  FleetOptions opt = spec.fleet;
  // Environment override for A/B runs of the same spec (the fleet-cache
  // CI leg runs the identical sweep with 0 and 1 and diffs the digests).
  if (const char* e = std::getenv("TSEM_FLEET_CACHE"))
    opt.cache = std::atoi(e) != 0;
  std::vector<JobSpec> jobs = expand_sweep(spec);
  if (jobs.empty()) return fail(err, "fleet: sweep expanded to zero jobs");
  if (!ensure_dir(opt.workdir, err)) return false;

  // Shared setup cache: allocated and sealed BEFORE the first fork so
  // every worker inherits the same MAP_SHARED pages (mp/shm.hpp).
  std::unique_ptr<SetupCache> cache;
  if (opt.cache) {
    cache = std::make_unique<SetupCache>(jobs, opt.cache_entry_kb);
    cache->seal();
  }
  std::vector<std::uint32_t> job_key(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    job_key[i] = setup_key_for(jobs[i]).digest;

  *report = FleetReport{};
  report->sweep_name = spec.name;
  report->options = opt;
  report->jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    report->jobs[i].spec = jobs[i];
    // Fresh fleet: stale artifacts from a previous run must not be
    // mistaken for this run's checkpoints or results.
    const JobPaths p = job_paths(opt.workdir, jobs[i].index);
    std::remove(p.checkpoint.c_str());
    std::remove((p.checkpoint + ".tmp").c_str());
    std::remove(p.result.c_str());
    std::remove((p.result + ".tmp").c_str());
    std::remove(p.log.c_str());
  }

  std::vector<JobRt> rt(jobs.size());
  std::deque<int> ready;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    ready.push_back(static_cast<int>(i));
  std::vector<Slot> slots;
  const Clock::time_point start = Clock::now();
  int terminal = 0;

  // Measured per-key stepping rate for the Sjf scheduler: seconds per
  // step averaged over completed attempts of the same shape key, plus a
  // global steps * order^3 prior calibration for keys not yet measured.
  std::map<std::uint32_t, std::pair<double, long>> measured;
  double calib_sum = 0.0;
  long calib_n = 0;
  auto estimate = [&](int j) -> double {
    const double steps = static_cast<double>(jobs[j].steps);
    const auto it = measured.find(job_key[j]);
    if (it != measured.end() && it->second.second > 0)
      return steps * (it->second.first /
                      static_cast<double>(it->second.second));
    const double n3 = std::pow(static_cast<double>(jobs[j].order), 3);
    const double unit =
        calib_n > 0 ? calib_sum / static_cast<double>(calib_n) : 1.0;
    return steps * n3 * unit;
  };
  auto note_measured = [&](int j, const JobResult& res) {
    const int fresh = res.steps_done - res.resumed_from_step;
    if (fresh <= 0 || res.step_seconds <= 0.0) return;
    const double per = res.step_seconds / static_cast<double>(fresh);
    auto& m = measured[job_key[j]];
    m.first += per;
    m.second++;
    calib_sum += per / std::pow(static_cast<double>(jobs[j].order), 3);
    calib_n++;
  };

  auto record = [&](const std::string& type, int job, int attempt, int step,
                    const std::string& detail) {
    report->events.push_back(FleetEvent{seconds_between(start, Clock::now()),
                                        type, job, attempt, step, detail});
    obs::count("fleet/events/" + type);
    obs::Json e = obs::Json::object();
    e["kind"] = "fleet/" + type;
    e["job"] = job;
    e["attempt"] = attempt;
    e["step"] = step;
    if (!detail.empty()) e["detail"] = detail;
    obs::emit_event(std::move(e));
  };

  auto reap_all = [&]() {
    for (Slot& s : slots) {
      ::kill(s.pid, SIGKILL);
      int status = 0;
      xwaitpid(s.pid, &status, 0);
      ::close(s.fd);
    }
    slots.clear();
  };

  auto launch = [&](int j) -> bool {
    int p[2];
    if (::pipe(p) != 0)
      return fail(err, std::string("fleet: pipe: ") + std::strerror(errno));
    const int attempt = rt[j].failed_attempts + 1;
    // When stdout/stderr are pipes they are fully buffered, and the child
    // would inherit (and later flush) any pending supervisor output,
    // duplicating it once per launch.  Drain both before forking.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(p[0]);
      ::close(p[1]);
      return fail(err, std::string("fleet: fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every supervisor-side fd it inherited, then become
      // the worker.  worker_main never returns.
      ::close(p[0]);
      for (const Slot& s : slots) ::close(s.fd);
      worker_main(jobs[j], opt.workdir, p[1], attempt, cache.get(),
                  !rt[j].force_cold);
    }
    ::close(p[1]);
    ::fcntl(p[0], F_SETFL, O_NONBLOCK);
    Slot s;
    s.job = j;
    s.pid = pid;
    s.fd = p[0];
    s.attempt = attempt;
    s.started = s.last_beat = Clock::now();
    slots.push_back(std::move(s));
    rt[j].state = JobState::Running;
    report->jobs[j].launches++;
    record("launch", j, attempt, 0,
           "pid " + std::to_string(pid) +
               (report->jobs[j].launches > 1 ? " (relaunch)" : ""));
    return true;
  };

  // Pull buffered heartbeat bytes; any data at all proves liveness.
  // xread retries EINTR: a stray signal here used to truncate the drain,
  // which the watchdog could then misread as heartbeat silence.
  auto drain = [&](Slot& s) {
    char buf[512];
    for (;;) {
      const ssize_t n = xread(s.fd, buf, sizeof buf);
      if (n <= 0) break;
      s.last_beat = Clock::now();
      s.buf.append(buf, static_cast<std::size_t>(n));
    }
    std::size_t nl;
    while ((nl = s.buf.find('\n')) != std::string::npos) {
      const std::string line = s.buf.substr(0, nl);
      s.buf.erase(0, nl + 1);
      int a = 0, b = 0;
      if (std::sscanf(line.c_str(), "S %d", &a) == 1) {
        s.last_step = a;
        s.steps_this_run++;
      } else if (std::sscanf(line.c_str(), "C %d", &a) == 1) {
        s.durable = true;
      } else if (std::sscanf(line.c_str(), "A %d %d", &a, &b) == 2) {
        s.last_step = b;
      }
    }
  };

  // A worker attempt ended in failure (crash, hang kill, torn result):
  // consume an attempt and either reschedule with exponential backoff or
  // quarantine with the captured report.
  auto retry_or_quarantine = [&](int j, int attempt, int step,
                                 const std::string& detail) {
    rt[j].failed_attempts = attempt;
    JobOutcome& out = report->jobs[j];
    out.attempts = attempt;
    if (attempt >= opt.max_attempts) {
      rt[j].state = JobState::Quarantined;
      out.quarantined = true;
      out.failure = detail + "\n--- log tail ---\n" +
                    log_tail(job_paths(opt.workdir, jobs[j].index).log);
      report->quarantined++;
      terminal++;
      record("quarantine", j, attempt, step, detail);
    } else {
      const int backoff_ms = retry_backoff_ms(opt, attempt);
      rt[j].state = JobState::Ready;
      rt[j].eligible_at =
          Clock::now() + std::chrono::milliseconds(backoff_ms);
      ready.push_back(j);
      report->retries++;
      record("retry", j, attempt, step,
             detail + "; backoff " + std::to_string(backoff_ms) + "ms");
    }
  };

  // A worker died (crash, hang kill, preempt): any cache slot it left in
  // Building must go back to Empty or the key would starve forever.
  auto reap_cache_builder = [&](pid_t pid, int j, int attempt, int step) {
    if (!cache) return;
    const int n = cache->evict_dead_builder(static_cast<int>(pid));
    if (n > 0)
      record("cache_evict", j, attempt, step,
             "reaped " + std::to_string(n) +
                 " half-built entries of dead builder pid " +
                 std::to_string(pid));
  };

  // Close out a slot whose process has been reaped; `status` is the wait
  // status.  Success means a validated result file; anything else goes
  // through the retry ladder.
  auto finish_exited = [&](Slot& s, int status) {
    drain(s);
    ::close(s.fd);
    JobOutcome& out = report->jobs[s.job];
    out.wall_seconds += seconds_between(s.started, Clock::now());
    if (WIFEXITED(status) && WEXITSTATUS(status) == kExitOk) {
      JobResult res;
      std::string rerr;
      const JobPaths p = job_paths(opt.workdir, jobs[s.job].index);
      if (read_job_result(p.result, &res, &rerr) &&
          res.index == jobs[s.job].index &&
          res.steps_done == jobs[s.job].steps) {
        rt[s.job].state = JobState::Done;
        out.completed = true;
        out.attempts = s.attempt;
        out.result = std::move(res);
        report->completed++;
        terminal++;
        note_measured(s.job, out.result);
        record("complete", s.job, s.attempt, s.last_step,
               "digest " + out.result.digest);
      } else {
        // Exit 0 but no believable result: treat exactly like a crash.
        record("torn_result", s.job, s.attempt, s.last_step, rerr);
        retry_or_quarantine(s.job, s.attempt, s.last_step,
                            "torn result: " + rerr);
      }
    } else if (WIFEXITED(status) &&
               WEXITSTATUS(status) == kExitCacheFailed &&
               !rt[s.job].cold_retry_used) {
      // The worker rejected (and evicted) a corrupt cache entry.  The
      // JOB did nothing wrong: relaunch it with the cache bypassed,
      // without consuming a retry attempt.  One free pass only.
      rt[s.job].cold_retry_used = true;
      rt[s.job].force_cold = true;
      rt[s.job].state = JobState::Ready;
      rt[s.job].eligible_at = Clock::now();
      ready.push_back(s.job);
      report->cold_retries++;
      record("cache_cold_retry", s.job, s.attempt, s.last_step,
             exit_detail(status));
    } else {
      reap_cache_builder(s.pid, s.job, s.attempt, s.last_step);
      record("crash", s.job, s.attempt, s.last_step, exit_detail(status));
      retry_or_quarantine(s.job, s.attempt, s.last_step,
                          exit_detail(status));
    }
  };

  while (terminal < static_cast<int>(jobs.size())) {
    // Launch phase: fill free pool slots with eligible ready jobs
    // (backoff holds a job back without blocking the jobs behind it).
    // Fifo takes the eligible jobs in queue order; Sjf picks, within the
    // highest occupied priority lane, the job with the smallest run-time
    // estimate — measured per-shape step seconds once a job of the shape
    // has completed, the steps * order^3 prior before that.  Ties break
    // on job index, so a uniform sweep under the prior degrades exactly
    // to Fifo (digests never depend on this choice; only order does).
    const Clock::time_point now = Clock::now();
    // Cache-aware hold-back: while a same-key builder is in flight and
    // the key is not yet published, launching another job of that key
    // can only MISS (the lookup finds the slot Building and goes cold).
    // Hold those jobs back; they launch as hits once the builder
    // publishes.  A dead builder lifts the hold automatically — the reap
    // phase removes it from the pool.  This briefly under-fills the pool
    // at the start of a sweep, trading idle slots for cache hits.
    auto held_for_cache = [&](int j) {
      if (!cache || rt[j].force_cold) return false;
      if (!cache->publish_pending(job_key[j])) return false;
      for (const Slot& s : slots)
        if (job_key[s.job] == job_key[j] && !rt[s.job].force_cold)
          return true;
      return false;
    };
    while (slots.size() < static_cast<std::size_t>(opt.concurrency)) {
      auto best = ready.end();
      double best_est = 0.0;
      for (auto it = ready.begin(); it != ready.end(); ++it) {
        if (rt[*it].eligible_at > now) continue;
        if (held_for_cache(*it)) continue;
        if (opt.scheduler == FleetOptions::Scheduler::Fifo) {
          best = it;
          break;
        }
        const double est = estimate(*it);
        const bool wins =
            best == ready.end() ||
            jobs[*it].priority > jobs[*best].priority ||
            (jobs[*it].priority == jobs[*best].priority &&
             (est < best_est || (est == best_est && *it < *best)));
        if (wins) {
          best = it;
          best_est = est;
        }
      }
      if (best == ready.end()) break;
      const int j = *best;
      ready.erase(best);
      if (!launch(j)) {
        reap_all();
        return false;
      }
    }

    // Heartbeat phase.
    if (!slots.empty()) {
      std::vector<pollfd> fds(slots.size());
      for (std::size_t i = 0; i < slots.size(); ++i)
        fds[i] = pollfd{slots[i].fd, POLLIN, 0};
      xpoll(fds.data(), fds.size(), opt.poll_ms);
      for (std::size_t i = 0; i < slots.size(); ++i)
        if (fds[i].revents != 0) drain(slots[i]);
    } else {
      ::usleep(static_cast<useconds_t>(opt.poll_ms) * 1000);
    }

    // Reap phase: exited workers (normal or crashed).
    for (std::size_t i = 0; i < slots.size();) {
      int status = 0;
      const pid_t got = xwaitpid(slots[i].pid, &status, WNOHANG);
      if (got == slots[i].pid) {
        finish_exited(slots[i], status);
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Watchdog phase: SIGKILL any worker whose heartbeat went silent.
    for (std::size_t i = 0; i < slots.size();) {
      Slot& s = slots[i];
      if (seconds_between(s.last_beat, Clock::now()) * 1000.0 >
          static_cast<double>(opt.watchdog_ms)) {
        ::kill(s.pid, SIGKILL);
        int status = 0;
        xwaitpid(s.pid, &status, 0);
        drain(s);
        ::close(s.fd);
        JobOutcome& out = report->jobs[s.job];
        out.wall_seconds += seconds_between(s.started, Clock::now());
        out.hang_kills++;
        report->hang_kills++;
        reap_cache_builder(s.pid, s.job, s.attempt, s.last_step);
        record("hang_kill", s.job, s.attempt, s.last_step,
               "no heartbeat for " + std::to_string(opt.watchdog_ms) +
                   "ms");
        retry_or_quarantine(s.job, s.attempt, s.last_step,
                            "hung (watchdog kill)");
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Preemption phase: when the pool is full and eligible work waits,
    // preempt one job that has made durable progress past its quantum.
    // Durable-progress gating (a checkpoint written THIS attempt) makes
    // preemption starvation-free for every quantum/cadence combination.
    if (opt.quantum_steps > 0 &&
        slots.size() == static_cast<std::size_t>(opt.concurrency)) {
      const Clock::time_point pnow = Clock::now();
      bool waiting = false;
      for (int j : ready)
        if (rt[j].eligible_at <= pnow) {
          waiting = true;
          break;
        }
      if (waiting) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
          Slot& s = slots[i];
          if (s.steps_this_run < opt.quantum_steps || !s.durable) continue;
          ::kill(s.pid, SIGKILL);
          int status = 0;
          xwaitpid(s.pid, &status, 0);
          drain(s);
          ::close(s.fd);
          JobOutcome& out = report->jobs[s.job];
          out.wall_seconds += seconds_between(s.started, Clock::now());
          out.preemptions++;
          report->preemptions++;
          reap_cache_builder(s.pid, s.job, s.attempt, s.last_step);
          record("preempt", s.job, s.attempt, s.last_step,
                 "quantum " + std::to_string(opt.quantum_steps) +
                     " steps; requeued");
          // No attempt consumed: preemption is scheduling, not failure.
          rt[s.job].state = JobState::Ready;
          rt[s.job].eligible_at = Clock::now();
          ready.push_back(s.job);
          slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
          break;  // at most one preemption per tick
        }
      }
    }
  }

  report->wall_seconds = seconds_between(start, Clock::now());

  if (cache) {
    const SetupCache::Stats st = cache->stats();
    report->cache_hits = static_cast<long>(st.hits);
    report->cache_misses = static_cast<long>(st.misses);
    report->cache_publishes = static_cast<long>(st.publishes);
    report->cache_evictions = static_cast<long>(st.evictions);
    report->cache_publish_failures = static_cast<long>(st.publish_failures);
    report->cache_bytes_mapped = cache->bytes_mapped();
  }
  // Setup/step wall totals and the intra-run savings estimate: for each
  // shape key, the mean setup wall of its COLD builds is what a hit
  // would have paid without the cache.
  std::map<std::uint32_t, std::pair<double, long>> cold_setup;
  double cold_sum = 0.0;
  long cold_n = 0;
  for (const JobOutcome& out : report->jobs) {
    if (!out.completed) continue;
    report->setup_seconds_total += out.result.setup_seconds;
    report->step_seconds_total += out.result.step_seconds;
    if (out.result.cache != "hit") {
      auto& c = cold_setup[job_key[static_cast<std::size_t>(
          out.spec.index)]];
      c.first += out.result.setup_seconds;
      c.second++;
      cold_sum += out.result.setup_seconds;
      cold_n++;
    }
  }
  for (const JobOutcome& out : report->jobs) {
    if (!out.completed || out.result.cache != "hit") continue;
    const auto it =
        cold_setup.find(job_key[static_cast<std::size_t>(out.spec.index)]);
    // Within one run the first build of a key is always cold, so the
    // per-key mean normally exists; the global mean is belt-and-
    // suspenders against a cold builder that never completed.
    double mean_cold = 0.0;
    if (it != cold_setup.end() && it->second.second > 0)
      mean_cold = it->second.first / static_cast<double>(it->second.second);
    else if (cold_n > 0)
      mean_cold = cold_sum / static_cast<double>(cold_n);
    report->setup_seconds_saved +=
        std::max(0.0, mean_cold - out.result.setup_seconds);
  }
  return true;
}

namespace {

void build_bench_report(const FleetReport& r, obs::BenchReport* rep) {
  obs::Json& meta = rep->meta();
  meta["sweep"] = r.sweep_name;
  meta["jobs"] = r.jobs.size();
  meta["concurrency"] = r.options.concurrency;
  meta["watchdog_ms"] = r.options.watchdog_ms;
  meta["max_attempts"] = r.options.max_attempts;
  meta["backoff_base_ms"] = r.options.backoff_base_ms;
  meta["backoff_max_ms"] = r.options.backoff_max_ms;
  meta["quantum_steps"] = r.options.quantum_steps;
  meta["cache"] = r.options.cache;
  meta["scheduler"] =
      r.options.scheduler == FleetOptions::Scheduler::Sjf ? "sjf" : "fifo";
  meta["wall_seconds"] = r.wall_seconds;
  meta["completed"] = r.completed;
  meta["quarantined"] = r.quarantined;
  meta["retries"] = r.retries;
  meta["preemptions"] = r.preemptions;
  meta["hang_kills"] = r.hang_kills;
  meta["cold_retries"] = r.cold_retries;
  meta["cache_hits"] = r.cache_hits;
  meta["cache_misses"] = r.cache_misses;
  meta["cache_publishes"] = r.cache_publishes;
  meta["cache_evictions"] = r.cache_evictions;
  meta["cache_publish_failures"] = r.cache_publish_failures;
  meta["cache_bytes_mapped"] = static_cast<std::int64_t>(r.cache_bytes_mapped);
  meta["setup_seconds_total"] = r.setup_seconds_total;
  meta["step_seconds_total"] = r.step_seconds_total;
  meta["setup_seconds_saved"] = r.setup_seconds_saved;

  obs::Json events = obs::Json::array();
  for (const FleetEvent& e : r.events) {
    obs::Json ev = obs::Json::object();
    ev["t"] = e.t;
    ev["type"] = e.type;
    ev["job"] = e.job;
    ev["attempt"] = e.attempt;
    ev["step"] = e.step;
    ev["detail"] = e.detail;
    events.push_back(std::move(ev));
  }
  meta["events"] = std::move(events);

  // Aggregate the per-worker obs counters (each completed job's result
  // carries its own registry snapshot) into one fleet-wide view.
  std::map<std::string, std::int64_t> sums;
  for (const JobOutcome& out : r.jobs) {
    if (!out.completed || !out.result.counters.is_object()) continue;
    for (const auto& [name, value] : out.result.counters.members())
      if (value.is_number()) sums[name] += value.as_int();
  }
  obs::Json wc = obs::Json::object();
  for (const auto& [name, value] : sums) wc[name] = value;
  meta["worker_counters"] = std::move(wc);

  for (const JobOutcome& out : r.jobs) {
    obs::Json& c = rep->add_case(out.spec.name);
    c["index"] = out.spec.index;
    c["reynolds"] = out.spec.reynolds;
    c["mesh_k"] = out.spec.mesh_k;
    c["order"] = out.spec.order;
    c["dt"] = out.spec.dt;
    c["steps"] = out.spec.steps;
    c["priority"] = out.spec.priority;
    c["dealias"] = out.spec.dealias;
    c["wall_seconds"] = out.wall_seconds;
    c["completed"] = out.completed;
    c["quarantined"] = out.quarantined;
    c["attempts"] = out.attempts;
    c["launches"] = out.launches;
    c["preemptions"] = out.preemptions;
    c["hang_kills"] = out.hang_kills;
    if (out.completed) {
      c["digest"] = out.result.digest;
      c["final_time"] = out.result.final_time;
      c["steps_done"] = out.result.steps_done;
      c["resumed_from_step"] = out.result.resumed_from_step;
      c["kinetic_energy"] = out.result.kinetic_energy;
      c["divergence"] = out.result.divergence;
      c["recovered_steps"] = out.result.recovered_steps;
      c["setup_seconds"] = out.result.setup_seconds;
      c["step_seconds"] = out.result.step_seconds;
      c["cache"] = out.result.cache;
    } else {
      c["failure"] = out.failure;
    }
  }
}

}  // namespace

obs::Json FleetReport::to_json(const std::string& bench_name) const {
  obs::BenchReport rep(bench_name);
  build_bench_report(*this, &rep);
  return rep.to_json();
}

std::string FleetReport::write_bench_json(
    const std::string& bench_name) const {
  obs::BenchReport rep(bench_name);
  build_bench_report(*this, &rep);
  return rep.write();
}

}  // namespace tsem::fleet
