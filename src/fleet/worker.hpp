// Crash-isolated ensemble worker: the body of one forked job process.
//
// The supervisor (supervisor.hpp) forks, and the child calls worker_main,
// which NEVER returns — it _exit()s so a worker can never fall back into
// the supervisor's code or flush its inherited stdio buffers twice.  The
// worker owns exactly one job attempt:
//
//   1. redirect stdout/stderr to the job's log file (the captured failure
//      report a quarantined job keeps);
//   2. build the discretization and solver for its JobSpec;
//   3. resume from the job's last good checkpoint when one exists and
//      validates (torn or corrupt checkpoints are rejected by the io
//      layer; the worker then falls back to the freshest earlier state —
//      ultimately a cold start, which reproduces the same final state
//      because the integrator is deterministic);
//   4. step to completion, writing a heartbeat line after every step and
//      an atomic checkpoint every checkpoint_every steps;
//   5. write the job result JSON atomically and _exit(0).
//
// Heartbeat protocol (newline-delimited ASCII over the supervisor pipe):
//   "A <attempt> <resume_step>"  worker alive, resumed from resume_step
//   "S <step>"                   step completed
//   "C <step>"                   checkpoint durable at step
//
// Injected process faults (resilience/fault_injector.hpp) fire here:
// KillWorker/Hang before computing the fault's step, TornCheckpoint at
// the first checkpoint write at or past it — each only on the matching
// attempt, so the retry ladder is exercised deterministically.
#pragma once

#include <cstdint>
#include <string>

#include "fleet/spec.hpp"
#include "obs/json.hpp"

namespace tsem::fleet {

/// Filesystem layout of one job inside the fleet workdir (keyed by the
/// stable job index, not the name, so paths never contain sweep values).
struct JobPaths {
  std::string checkpoint;  ///< <workdir>/job_<index>.ckpt
  std::string result;      ///< <workdir>/job_<index>.result.json
  std::string log;         ///< <workdir>/job_<index>.log
};
JobPaths job_paths(const std::string& workdir, int index);

/// Worker exit codes the supervisor maps to incident details.
enum WorkerExit : int {
  kExitOk = 0,
  kExitSetupFailed = 65,    ///< mesh/solver construction threw
  kExitStepFailed = 66,     ///< resilience ladder exhausted inside a step
  kExitResultFailed = 67,   ///< could not write the result file
  kExitOrphaned = 68,       ///< heartbeat pipe EPIPE: supervisor died
  kExitInjectedKill = 70,   ///< ProcessFault::KillWorker fired
  kExitInjectedTorn = 71,   ///< ProcessFault::TornCheckpoint fired
  /// Setup-cache incident: a Ready entry failed its CRC (torn publish)
  /// or structural decode at attach.  The worker EVICTED the entry
  /// before exiting; the supervisor relaunches the job cold without
  /// consuming a retry attempt — quarantine the entry, never the job.
  kExitCacheFailed = 72,
  kExitInjectedTornPublish = 73,  ///< ProcessFault::TornPublish fired
};

class SetupCache;  // fleet/setup_cache.hpp

/// Run one job attempt in the current (forked) process and _exit.
/// `heartbeat_fd` is the write end of the supervisor pipe (-1 for a
/// standalone run, e.g. driven by $TSEM_FLEET_FAULT from a shell).
/// `cache` is the supervisor's pre-fork shared setup cache (nullptr =
/// disabled); `allow_cache` is cleared on a cold relaunch after a
/// kExitCacheFailed incident so a poisoned entry cannot refire.
[[noreturn]] void worker_main(const JobSpec& job, const std::string& workdir,
                              int heartbeat_fd, int attempt,
                              SetupCache* cache = nullptr,
                              bool allow_cache = true);

/// Parsed job result file (schema "terasem-fleet-job-1").
struct JobResult {
  std::string name;
  int index = 0;
  int attempt = 0;
  int steps_done = 0;
  int resumed_from_step = 0;  ///< 0 = cold start
  double final_time = 0.0;
  std::string digest;         ///< 8-hex-digit NavierStokes::state_digest
  double kinetic_energy = 0.0;
  double divergence = 0.0;
  int recovered_steps = 0;    ///< steps accepted via the resilience ladder
  /// Wall split: everything before the first step (mesh, solver setup,
  /// checkpoint load — the part the setup cache elides) vs the stepping
  /// loop itself.
  double setup_seconds = 0.0;
  double step_seconds = 0.0;
  /// Cache disposition of this attempt: "hit" (attached to a published
  /// entry), "miss" (built cold; includes the publisher), "cold"
  /// (supervisor forced cache off after an incident), "off" (cache
  /// disabled).
  std::string cache = "off";
  obs::Json counters;         ///< worker-side obs counter snapshot
};

/// Read and validate a worker-written result file with the hardened JSON
/// parser; a partial file left by a killed worker is reported as an
/// error, never UB.
bool read_job_result(const std::string& path, JobResult* out,
                     std::string* err);

}  // namespace tsem::fleet
