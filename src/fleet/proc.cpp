#include "fleet/proc.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace tsem::fleet {

int xpoll(struct pollfd* fds, unsigned long nfds, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                      : Clock::time_point::max();
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), remaining);
    if (rc >= 0 || errno != EINTR) return rc;
    if (timeout_ms < 0) continue;  // infinite wait: just retry
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return 0;  // window elapsed: report timeout
    remaining = static_cast<int>(left.count());
  }
}

ssize_t xread(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t rc = ::read(fd, buf, n);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

pid_t xwaitpid(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t rc = ::waitpid(pid, status, options);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

void ignore_sigpipe() {
  struct sigaction sa{};
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
}

std::string wait_status_str(int status) {
  if (WIFEXITED(status))
    return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "signal " + std::to_string(WTERMSIG(status));
  return "unknown wait status " + std::to_string(status);
}

}  // namespace tsem::fleet
