// Fault-tolerant ensemble fleet supervisor.
//
// Executes an expanded job queue (fleet/spec.hpp) in fork-based
// crash-isolated worker processes under a bounded concurrency pool.  The
// supervisor owns the robustness contract; workers own exactly one job
// attempt each (fleet/worker.hpp).
//
// Per-job state machine:
//
//   Ready --launch--> Running --result ok--> Completed
//     ^                  |
//     |                  +-- exit!=0 / torn result / watchdog SIGKILL
//     |                  |      attempts < cap: backoff, requeue (retry)
//     |                  |      attempts = cap: --> Quarantined
//     +---- preempt -----+   (SIGKILL after quantum_steps of durable
//                             progress when others wait; no attempt
//                             consumed — the job resumes from its last
//                             good checkpoint, bit-identical to an
//                             uninterrupted run)
//
// Robustness mechanisms:
//   * Heartbeats: each worker writes "A/S/C" lines over a private pipe;
//     the watchdog SIGKILLs any worker silent for watchdog_ms (a hung
//     solve, a stuck NFS write, an injected Hang fault) and reschedules
//     the job through the retry ladder.
//   * Retry ladder: a failed attempt n waits backoff_base_ms * 2^(n-1)
//     before relaunch; after max_attempts failures the job is
//     quarantined with a captured failure report (exit detail + log
//     tail) while the rest of the fleet completes.
//   * Preemption: with quantum_steps > 0, a running job that has
//     completed quantum_steps steps this attempt AND written a durable
//     checkpoint is SIGKILLed in favor of waiting jobs (round-robin
//     requeue at the back).  Durable-progress gating guarantees forward
//     progress under any quantum/checkpoint-cadence combination.
//   * Crash-safe state: checkpoints and results are written
//     atomically (io/binfile.hpp write_file_atomic), so a SIGKILL at any
//     instant leaves either the previous good file or the complete new
//     one — the supervisor's hardened JSON reads reject anything less.
//
// Every incident is recorded as a FleetEvent in the report (and mirrored
// into the obs event trace), and per-job worker counters are aggregated
// into one terasem-bench-1 fleet report (BENCH_ensemble.json).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "fleet/worker.hpp"
#include "obs/json.hpp"

namespace tsem::fleet {

/// One supervisor incident, timestamped relative to fleet start.
struct FleetEvent {
  double t = 0.0;     ///< seconds since run_fleet entry
  std::string type;   ///< launch|complete|crash|hang_kill|preempt|
                      ///< retry|quarantine|torn_result|
                      ///< cache_cold_retry|cache_evict
  int job = -1;
  int attempt = 0;    ///< crash-attempt number in flight
  int step = 0;       ///< last step heard from the worker
  std::string detail;
};

/// Terminal record of one job.
struct JobOutcome {
  JobSpec spec;
  bool completed = false;
  bool quarantined = false;
  int attempts = 0;     ///< crash-attempts consumed (incl. the successful one)
  int launches = 0;     ///< total forks (attempts + preemption relaunches)
  int preemptions = 0;
  int hang_kills = 0;
  double wall_seconds = 0.0;  ///< summed worker occupancy across launches
  JobResult result;           ///< valid when completed
  std::string failure;        ///< quarantine report (exit detail + log tail)
};

/// Aggregated fleet run record.
struct FleetReport {
  std::string sweep_name;
  FleetOptions options;
  std::vector<JobOutcome> jobs;
  std::vector<FleetEvent> events;
  double wall_seconds = 0.0;
  int completed = 0;
  int quarantined = 0;
  int retries = 0;      ///< failed attempts that were rescheduled
  int preemptions = 0;
  int hang_kills = 0;
  /// kExitCacheFailed relaunches: the worker evicted a corrupt cache
  /// entry and the job went again cold WITHOUT consuming an attempt.
  int cold_retries = 0;
  // --- setup-cache accounting (zero when the cache is off) ---
  long cache_hits = 0;
  long cache_misses = 0;        ///< cold builds (includes the publishers)
  long cache_publishes = 0;
  long cache_evictions = 0;     ///< CRC/decode rejections + dead builders
  long cache_publish_failures = 0;  ///< payload exceeded slot capacity
  std::size_t cache_bytes_mapped = 0;
  double setup_seconds_total = 0.0;  ///< summed over completed jobs
  double step_seconds_total = 0.0;
  /// Sum over cache hits of (mean cold setup wall of the same shape key
  /// minus the hit's setup wall, floored at 0): the wall the cache
  /// provably elided within THIS run.
  double setup_seconds_saved = 0.0;

  /// Full terasem-bench-1 document: meta carries the fleet policy,
  /// totals, the event log, and the summed per-worker obs counters; one
  /// case per job.
  [[nodiscard]] obs::Json to_json(const std::string& bench_name) const;
  /// Write BENCH_<bench_name>.json via obs::BenchReport pathing
  /// ($TSEM_BENCH_DIR honored); returns the path written, or "" on
  /// failure.
  std::string write_bench_json(const std::string& bench_name) const;
};

/// Run every job of the expanded sweep to a terminal state.  Returns
/// false with *err only on supervisor-level failures (workdir creation,
/// fork/pipe exhaustion); job failures are reported in the FleetReport,
/// not as errors.  The workdir is created if needed and any stale
/// per-job files from a previous run are removed first.
///
/// Fork-safety contract: run_fleet must be called from a process that
/// has not yet entered an OpenMP parallel region (workers initialize
/// OpenMP freshly in the child; the supervisor itself never runs solver
/// code).
bool run_fleet(const SweepSpec& spec, FleetReport* report, std::string* err);

}  // namespace tsem::fleet
