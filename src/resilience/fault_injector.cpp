#include "resilience/fault_injector.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>

namespace tsem {
namespace {

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

}  // namespace

std::vector<std::size_t> FaultInjector::pick(std::size_t lo, std::size_t hi,
                                             std::size_t count) {
  std::set<std::size_t> chosen;
  const std::size_t span = hi - lo;
  count = std::min(count, span);
  std::uniform_int_distribution<std::size_t> dist(0, span - 1);
  while (chosen.size() < count) chosen.insert(lo + dist(rng_));
  return {chosen.begin(), chosen.end()};
}

std::vector<std::size_t> FaultInjector::poison_nan(double* v, std::size_t n,
                                                   std::size_t count) {
  if (n == 0 || count == 0) return {};
  auto idx = pick(0, n, count);
  for (std::size_t i : idx) v[i] = std::numeric_limits<double>::quiet_NaN();
  return idx;
}

void FaultInjector::perturb(double* v, std::size_t n, double magnitude,
                            std::size_t count) {
  if (n == 0 || count == 0) return;
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t i : pick(0, n, count)) v[i] *= 1.0 + magnitude * u(rng_);
}

bool FaultInjector::corrupt_file(const std::string& path, std::size_t count,
                                 std::size_t skip_prefix, std::string* err) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return fail(err, "cannot open " + path);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  if (size <= skip_prefix)
    return fail(err, path + " too small to corrupt past prefix");
  for (std::size_t off : pick(skip_prefix, size, count)) {
    f.seekg(static_cast<std::streamoff>(off));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xff);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&c, 1);
  }
  f.flush();
  if (!f) return fail(err, "write to " + path + " failed");
  return true;
}

bool FaultInjector::truncate_file(const std::string& path,
                                  double keep_fraction, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(err, "cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * std::clamp(keep_fraction, 0.0, 1.0));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return fail(err, "cannot rewrite " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(keep));
  out.close();
  if (!out) return fail(err, "truncating " + path + " failed");
  return true;
}

}  // namespace tsem
