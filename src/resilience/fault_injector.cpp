#include "resilience/fault_injector.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>

namespace tsem {
namespace {

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

/// strtol-free digits-only parse; returns false on empty/non-digit input.
bool parse_int(std::string_view s, int* out) {
  if (s.empty()) return false;
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1'000'000'000L) return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

const char* to_string(ProcessFault::Kind k) {
  switch (k) {
    case ProcessFault::Kind::None: return "none";
    case ProcessFault::Kind::KillWorker: return "kill";
    case ProcessFault::Kind::Hang: return "hang";
    case ProcessFault::Kind::TornCheckpoint: return "torn";
    case ProcessFault::Kind::TornPublish: return "tornpub";
    case ProcessFault::Kind::CacheFail: return "cachefail";
  }
  return "none";
}

bool parse_process_fault(std::string_view spec, ProcessFault* out,
                         std::string* err) {
  *out = ProcessFault{};
  if (spec.empty() || spec == "none") return true;

  const std::size_t at = spec.find('@');
  if (at == std::string_view::npos)
    return fail(err, "process fault '" + std::string(spec) +
                         "': expected <kind>@<step>[#<attempt>]");
  const std::string_view kind = spec.substr(0, at);
  std::string_view rest = spec.substr(at + 1);

  ProcessFault f;
  if (kind == "kill") f.kind = ProcessFault::Kind::KillWorker;
  else if (kind == "hang") f.kind = ProcessFault::Kind::Hang;
  else if (kind == "torn") f.kind = ProcessFault::Kind::TornCheckpoint;
  else if (kind == "tornpub") f.kind = ProcessFault::Kind::TornPublish;
  else if (kind == "cachefail") f.kind = ProcessFault::Kind::CacheFail;
  else
    return fail(err, "process fault kind '" + std::string(kind) +
                         "': expected kill, hang, torn, tornpub, or "
                         "cachefail");

  const std::size_t hash = rest.find('#');
  if (hash != std::string_view::npos) {
    if (!parse_int(rest.substr(hash + 1), &f.attempt))
      return fail(err, "process fault '" + std::string(spec) +
                           "': bad attempt number");
    rest = rest.substr(0, hash);
  }
  if (!parse_int(rest, &f.step) || f.step < 1)
    return fail(err, "process fault '" + std::string(spec) +
                         "': bad step number");
  *out = f;
  return true;
}

std::string format_process_fault(const ProcessFault& f) {
  if (f.kind == ProcessFault::Kind::None) return "none";
  std::string s = std::string(to_string(f.kind)) + "@" +
                  std::to_string(f.step);
  if (f.attempt != 1) s += "#" + std::to_string(f.attempt);
  return s;
}

ProcessFault process_fault_from_env() {
  ProcessFault f;
  const char* v = std::getenv(kProcessFaultEnvVar);
  if (!v) return f;
  if (!parse_process_fault(v, &f)) return ProcessFault{};
  return f;
}

std::vector<std::size_t> FaultInjector::pick(std::size_t lo, std::size_t hi,
                                             std::size_t count) {
  std::set<std::size_t> chosen;
  const std::size_t span = hi - lo;
  count = std::min(count, span);
  std::uniform_int_distribution<std::size_t> dist(0, span - 1);
  while (chosen.size() < count) chosen.insert(lo + dist(rng_));
  return {chosen.begin(), chosen.end()};
}

std::vector<std::size_t> FaultInjector::poison_nan(double* v, std::size_t n,
                                                   std::size_t count) {
  if (n == 0 || count == 0) return {};
  auto idx = pick(0, n, count);
  for (std::size_t i : idx) v[i] = std::numeric_limits<double>::quiet_NaN();
  return idx;
}

void FaultInjector::perturb(double* v, std::size_t n, double magnitude,
                            std::size_t count) {
  if (n == 0 || count == 0) return;
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t i : pick(0, n, count)) v[i] *= 1.0 + magnitude * u(rng_);
}

bool FaultInjector::corrupt_file(const std::string& path, std::size_t count,
                                 std::size_t skip_prefix, std::string* err) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return fail(err, "cannot open " + path);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  if (size <= skip_prefix)
    return fail(err, path + " too small to corrupt past prefix");
  for (std::size_t off : pick(skip_prefix, size, count)) {
    f.seekg(static_cast<std::streamoff>(off));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xff);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&c, 1);
  }
  f.flush();
  if (!f) return fail(err, "write to " + path + " failed");
  return true;
}

std::vector<std::pair<int, ProcessFault>> FaultInjector::plan_worker_kills(
    int njobs, std::size_t count, int max_step) {
  std::vector<std::pair<int, ProcessFault>> plan;
  if (njobs <= 0 || count == 0 || max_step < 1) return plan;
  std::uniform_int_distribution<int> step_dist(1, max_step);
  for (std::size_t job : pick(0, static_cast<std::size_t>(njobs), count)) {
    ProcessFault f;
    f.kind = ProcessFault::Kind::KillWorker;
    f.step = step_dist(rng_);
    plan.emplace_back(static_cast<int>(job), f);
  }
  return plan;
}

bool FaultInjector::truncate_file(const std::string& path,
                                  double keep_fraction, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(err, "cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * std::clamp(keep_fraction, 0.0, 1.0));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return fail(err, "cannot rewrite " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(keep));
  out.close();
  if (!out) return fail(err, "truncating " + path + " failed");
  return true;
}

}  // namespace tsem
