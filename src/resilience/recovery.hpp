// Recovery policy knobs for the time-stepping resilience layer.
//
// The paper's production runs (§6: the 10^8-gridpoint hairpin and the
// Rayleigh-Bénard campaigns) survive multi-day horizons only because a
// failed solve is never allowed to propagate.  NavierStokes::step applies
// a deterministic escalation ladder when a pressure or Helmholtz solve
// hard-fails (SolveStatus::NonFinite / Breakdown, see solver/cg.hpp):
//
//   rung 0  the normal warm-started, Schwarz-preconditioned step;
//   rung 1  roll back, retry with zero initial guesses and a flushed
//           pressure-projection basis (a poisoned warm start is the most
//           common contaminant);
//   rung 2  roll back, additionally swap the Schwarz preconditioner for
//           diagonal (pressure-mass) scaling — slower but structurally
//           immune to a corrupted subdomain/coarse solve;
//   rung 3+ reject the step: roll back, halve dt, restart the BDF/OIFS
//           ramp at first order (the history spacing no longer matches),
//           and climb rungs 1-2 again at the reduced dt; at most
//           max_dt_halvings rejections per step.
//
// A CFL watchdog can trigger the rung-3 rejection preemptively before any
// solver money is spent on a step that is already hopeless.  Every action
// taken is recorded in StepStats so long-horizon drivers can log and react.
#pragma once

namespace tsem {

struct ResilienceOptions {
  /// Master switch.  Off = the pre-resilience behavior: statuses are still
  /// recorded in StepStats but nothing is retried or rolled back.
  bool enabled = true;
  /// Bound on dt rejections within one step() call (rung 3+).
  int max_dt_halvings = 3;
  /// Reject a step preemptively (halve dt) when the convective CFL of the
  /// entering field exceeds this.  0 disables the watchdog.  OIFS absorbs
  /// CFL up to ~5 by sub-stepping, so a useful production setting is
  /// somewhat above that; EXTk wants ~0.5.
  double cfl_limit = 0.0;
  /// Escalate on SolveStatus::MaxIter too (default: only NonFinite and
  /// Breakdown are hard failures; MaxIter/Stalled keep the best iterate).
  bool maxiter_is_failure = false;
};

}  // namespace tsem
