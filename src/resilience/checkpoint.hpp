// Checkpoint/restart for the Navier-Stokes integrator.
//
// A checkpoint is a binfile section container (io/binfile.hpp, magic
// "TSEMCKPT", version 1) holding the complete NsState: metadata, velocity
// and history fields, pressure, scalars, and the successive-RHS projection
// basis.  Restoring into a solver built on the same discretization
// reproduces the continued run bit-for-bit — StepStats of the restored run
// match the uninterrupted one exactly (tests/test_resilience.cpp).
//
// Loading validates everything before touching the solver: magic, version,
// header CRC, per-section CRC and framing (binfile), then field sizes
// against the target solver (NavierStokes::import_state).  A truncated or
// bit-flipped file is rejected with a specific error message; the solver
// is never left half-restored.
#pragma once

#include <string>

#include "ns/navier_stokes.hpp"

namespace tsem {

/// Serialize the solver's full time-stepping state to `path`.
/// Returns false with *err on I/O failure (no partial file remains).
bool save_checkpoint(const NavierStokes& ns, const std::string& path,
                     std::string* err = nullptr);

/// Deserialize `path` into `state` with full integrity validation.
/// On any defect returns false with *err; `state` contents are undefined.
bool load_checkpoint(const std::string& path, NsState* state,
                     std::string* err = nullptr);

/// Convenience: load + import into a live solver.  The solver is left
/// untouched on any failure.
bool restore_checkpoint(NavierStokes& ns, const std::string& path,
                        std::string* err = nullptr);

}  // namespace tsem
