#include "resilience/checkpoint.hpp"

#include <cstdint>

#include "io/binfile.hpp"

namespace tsem {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'E', 'M', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

// Section ids.  Scalars and projection vectors live in per-index sections
// so a corrupted payload is pinpointed in the error message.
enum : std::uint32_t {
  kSecMeta = 1,
  kSecVelocity = 2,    // u, ubc, uh, ch (all components/levels)
  kSecPressure = 3,
  kSecProjection = 4,  // interleaved q/w pairs
  kSecScalarBase = 16, // + scalar index
};

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

}  // namespace

bool save_checkpoint(const NavierStokes& ns, const std::string& path,
                     std::string* err) {
  const NsState s = ns.export_state();
  BinFileWriter w(kMagic, kVersion);

  {
    ByteWriter b;
    b.put(s.dim);
    b.put(s.nscalars);
    b.put(s.nlocal);
    b.put(s.npressure);
    b.put(s.step);
    b.put(s.order_ramp);
    b.put(s.bc_frozen);
    b.put<std::int32_t>(0);  // pad for alignment-stable layout
    b.put(s.time);
    b.put(s.dt);
    b.put(s.flops_total);
    w.add_section(kSecMeta, b.take());
  }
  {
    ByteWriter b;
    for (int c = 0; c < 3; ++c) b.put_vec(s.u[c]);
    for (int c = 0; c < 3; ++c) b.put_vec(s.ubc[c]);
    for (const auto& lvl : s.uh)
      for (int c = 0; c < 3; ++c) b.put_vec(lvl[c]);
    for (const auto& lvl : s.ch)
      for (int c = 0; c < 3; ++c) b.put_vec(lvl[c]);
    w.add_section(kSecVelocity, b.take());
  }
  {
    ByteWriter b;
    b.put_vec(s.p);
    w.add_section(kSecPressure, b.take());
  }
  {
    ByteWriter b;
    b.put<std::uint64_t>(s.proj_q.size());
    for (std::size_t i = 0; i < s.proj_q.size(); ++i) {
      b.put_vec(s.proj_q[i]);
      b.put_vec(s.proj_w[i]);
    }
    w.add_section(kSecProjection, b.take());
  }
  for (std::size_t sc = 0; sc < s.scalars.size(); ++sc) {
    ByteWriter b;
    b.put_vec(s.scalars[sc].th);
    b.put_vec(s.scalars[sc].thbc);
    for (const auto& h : s.scalars[sc].hist) b.put_vec(h);
    w.add_section(kSecScalarBase + static_cast<std::uint32_t>(sc), b.take());
  }
  return w.write(path, err);
}

bool load_checkpoint(const std::string& path, NsState* state,
                     std::string* err) {
  std::map<std::uint32_t, std::vector<std::uint8_t>> sec;
  if (!read_bin_file(path, kMagic, kVersion, &sec, err)) return false;

  auto need = [&](std::uint32_t id) -> const std::vector<std::uint8_t>* {
    auto it = sec.find(id);
    return it == sec.end() ? nullptr : &it->second;
  };

  NsState s;
  {
    const auto* p = need(kSecMeta);
    if (!p) return fail(err, path + ": missing metadata section");
    ByteReader b(*p);
    std::int32_t pad = 0;
    if (!b.get(&s.dim) || !b.get(&s.nscalars) || !b.get(&s.nlocal) ||
        !b.get(&s.npressure) || !b.get(&s.step) || !b.get(&s.order_ramp) ||
        !b.get(&s.bc_frozen) || !b.get(&pad) || !b.get(&s.time) ||
        !b.get(&s.dt) || !b.get(&s.flops_total) || !b.exhausted())
      return fail(err, path + ": malformed metadata section");
    if (s.dim < 2 || s.dim > 3 || s.nscalars < 0)
      return fail(err, path + ": implausible metadata (dim/nscalars)");
  }
  {
    const auto* p = need(kSecVelocity);
    if (!p) return fail(err, path + ": missing velocity section");
    ByteReader b(*p);
    bool ok = true;
    for (int c = 0; c < 3; ++c) ok = ok && b.get_vec(&s.u[c]);
    for (int c = 0; c < 3; ++c) ok = ok && b.get_vec(&s.ubc[c]);
    for (auto& lvl : s.uh)
      for (int c = 0; c < 3; ++c) ok = ok && b.get_vec(&lvl[c]);
    for (auto& lvl : s.ch)
      for (int c = 0; c < 3; ++c) ok = ok && b.get_vec(&lvl[c]);
    if (!ok || !b.exhausted())
      return fail(err, path + ": malformed velocity section");
  }
  {
    const auto* p = need(kSecPressure);
    if (!p) return fail(err, path + ": missing pressure section");
    ByteReader b(*p);
    if (!b.get_vec(&s.p) || !b.exhausted())
      return fail(err, path + ": malformed pressure section");
  }
  {
    const auto* p = need(kSecProjection);
    if (!p) return fail(err, path + ": missing projection section");
    ByteReader b(*p);
    std::uint64_t nvec = 0;
    if (!b.get(&nvec))
      return fail(err, path + ": malformed projection section");
    // Framing guard: each vector needs at least its length prefix.
    if (nvec > p->size())
      return fail(err, path + ": implausible projection basis size");
    s.proj_q.resize(static_cast<std::size_t>(nvec));
    s.proj_w.resize(static_cast<std::size_t>(nvec));
    for (std::uint64_t i = 0; i < nvec; ++i)
      if (!b.get_vec(&s.proj_q[i]) || !b.get_vec(&s.proj_w[i]))
        return fail(err, path + ": malformed projection section");
    if (!b.exhausted())
      return fail(err, path + ": trailing bytes in projection section");
  }
  s.scalars.resize(static_cast<std::size_t>(s.nscalars));
  for (std::int32_t sc = 0; sc < s.nscalars; ++sc) {
    const auto* p = need(kSecScalarBase + static_cast<std::uint32_t>(sc));
    if (!p)
      return fail(err, path + ": missing scalar section " +
                           std::to_string(sc));
    ByteReader b(*p);
    auto& sd = s.scalars[static_cast<std::size_t>(sc)];
    bool ok = b.get_vec(&sd.th) && b.get_vec(&sd.thbc);
    for (auto& h : sd.hist) ok = ok && b.get_vec(&h);
    if (!ok || !b.exhausted())
      return fail(err,
                  path + ": malformed scalar section " + std::to_string(sc));
  }
  *state = std::move(s);
  return true;
}

bool restore_checkpoint(NavierStokes& ns, const std::string& path,
                        std::string* err) {
  NsState s;
  if (!load_checkpoint(path, &s, err)) return false;
  std::string ierr;
  if (!ns.import_state(s, &ierr))
    return fail(err, path + ": " + ierr);
  return true;
}

}  // namespace tsem
