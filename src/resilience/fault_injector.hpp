// Seeded, deterministic fault injection for resilience testing.
//
// Every recovery path in the resilience layer (escalation ladder,
// checkpoint rejection) is exercised by tests that *inject* the faults
// they claim to survive, rather than trusting the paths on faith.  All
// fault positions are drawn from a private mt19937_64 stream, so a given
// seed reproduces the exact same corruption — a failing test is always
// replayable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace tsem {

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Poison `count` distinct entries of v[0..n) with quiet NaN; returns
  /// the poisoned indices (sorted).
  std::vector<std::size_t> poison_nan(double* v, std::size_t n,
                                      std::size_t count = 1);

  /// Multiply `count` distinct entries of v[0..n) by (1 + magnitude * u),
  /// u uniform in [-1, 1] — models a residual perturbed by e.g. a silent
  /// data corruption that stays finite.
  void perturb(double* v, std::size_t n, double magnitude,
               std::size_t count = 1);

  /// XOR-flip `count` bytes of the file at deterministic offsets in
  /// [skip_prefix, file size).  Returns false (with *err set) if the file
  /// cannot be read/written or is not larger than skip_prefix.
  bool corrupt_file(const std::string& path, std::size_t count = 1,
                    std::size_t skip_prefix = 0, std::string* err = nullptr);

  /// Truncate the file to floor(keep_fraction * size) bytes — models a
  /// checkpoint cut short by a crash mid-write.
  bool truncate_file(const std::string& path, double keep_fraction,
                     std::string* err = nullptr);

  /// Raw draw from the stream (for tests composing their own faults).
  std::uint64_t draw() { return rng_(); }

 private:
  /// `count` distinct indices in [lo, hi), sorted.
  std::vector<std::size_t> pick(std::size_t lo, std::size_t hi,
                                std::size_t count);

  std::mt19937_64 rng_;
};

}  // namespace tsem
