// Seeded, deterministic fault injection for resilience testing.
//
// Every recovery path in the resilience layer (escalation ladder,
// checkpoint rejection) is exercised by tests that *inject* the faults
// they claim to survive, rather than trusting the paths on faith.  All
// fault positions are drawn from a private mt19937_64 stream, so a given
// seed reproduces the exact same corruption — a failing test is always
// replayable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsem {

/// Process-level fault directive for the fleet's crash-isolated workers
/// (src/fleet/): what to do to the worker process, at which step, on
/// which attempt.  The fleet supervisor passes these through the job
/// spec; standalone workers can also pick one up from $TSEM_FLEET_FAULT
/// (process_fault_from_env) so the whole retry ladder is drivable from
/// the environment.
struct ProcessFault {
  enum class Kind {
    None,
    KillWorker,      ///< _exit() without warning before the step (crash)
    Hang,            ///< stop heartbeating and sleep (watchdog food)
    TornCheckpoint,  ///< die mid-checkpoint-write, leaving a torn temp file
    TornPublish,     ///< die mid-cache-publish after flipping the slot Ready:
                     ///< half the payload written, CRC covers the full size —
                     ///< the next reader MUST reject the entry by checksum
    CacheFail,       ///< _exit(kExitCacheFailed) at cache lookup — drives the
                     ///< supervisor's requeue-cold path deterministically
  };
  Kind kind = Kind::None;
  int step = 0;     ///< 1-based step before which the fault fires
  int attempt = 1;  ///< attempt on which it fires; 0 = every attempt
};

[[nodiscard]] const char* to_string(ProcessFault::Kind k);

/// Parse a compact fault spec: "<kind>@<step>[#<attempt>]" with kind in
/// {kill, hang, torn, tornpub, cachefail}; "" and "none" parse to
/// Kind::None.  The cache kinds fire during setup, so their step field is
/// ignored by the worker (keep it for round-trip formatting).  Examples:
/// "kill@5" (crash before step 5, attempt 1), "hang@3#2" (hang on the
/// second attempt), "torn@4#0" (torn checkpoint write on every attempt).
bool parse_process_fault(std::string_view spec, ProcessFault* out,
                         std::string* err = nullptr);
[[nodiscard]] std::string format_process_fault(const ProcessFault& f);

/// Name of the activation env var read by process_fault_from_env.
inline constexpr const char* kProcessFaultEnvVar = "TSEM_FLEET_FAULT";

/// Read $TSEM_FLEET_FAULT; unset, empty, or malformed values yield
/// Kind::None (a bad env var must never take a production worker down).
[[nodiscard]] ProcessFault process_fault_from_env();

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Poison `count` distinct entries of v[0..n) with quiet NaN; returns
  /// the poisoned indices (sorted).
  std::vector<std::size_t> poison_nan(double* v, std::size_t n,
                                      std::size_t count = 1);

  /// Multiply `count` distinct entries of v[0..n) by (1 + magnitude * u),
  /// u uniform in [-1, 1] — models a residual perturbed by e.g. a silent
  /// data corruption that stays finite.
  void perturb(double* v, std::size_t n, double magnitude,
               std::size_t count = 1);

  /// XOR-flip `count` bytes of the file at deterministic offsets in
  /// [skip_prefix, file size).  Returns false (with *err set) if the file
  /// cannot be read/written or is not larger than skip_prefix.
  bool corrupt_file(const std::string& path, std::size_t count = 1,
                    std::size_t skip_prefix = 0, std::string* err = nullptr);

  /// Truncate the file to floor(keep_fraction * size) bytes — models a
  /// checkpoint cut short by a crash mid-write.
  bool truncate_file(const std::string& path, double keep_fraction,
                     std::string* err = nullptr);

  /// Seeded plan of `count` worker-crash faults over distinct jobs in
  /// [0, njobs): each entry is (job index, KillWorker fault with a step
  /// drawn uniformly from [1, max_step]), sorted by job index.  The same
  /// seed always produces the same plan, so a failing fleet drill is
  /// replayable.
  std::vector<std::pair<int, ProcessFault>> plan_worker_kills(
      int njobs, std::size_t count, int max_step);

  /// Raw draw from the stream (for tests composing their own faults).
  std::uint64_t draw() { return rng_(); }

 private:
  /// `count` distinct indices in [lo, hi), sorted.
  std::vector<std::size_t> pick(std::size_t lo, std::size_t hi,
                                std::size_t count);

  std::mt19937_64 rng_;
};

}  // namespace tsem
