// Dense linear algebra kernels used by the preconditioner setup paths.
//
// Everything here operates on small-to-moderate dense matrices (local
// Schwarz blocks, 1D eigenproblems for the fast diagonalization method,
// coarse-grid factorizations, the Orr-Sommerfeld reference solver).  All
// matrices are row-major.
#pragma once

#include <complex>
#include <vector>

namespace tsem {

// ---- level-1 helpers -----------------------------------------------------

double dot(const double* x, const double* y, std::size_t n);
double norm2(const double* x, std::size_t n);
/// y += alpha * x
void axpy(double alpha, const double* x, double* y, std::size_t n);

// ---- dense SPD / general factorizations ----------------------------------

/// In-place Cholesky A = L L^T (lower triangle of a is overwritten by L;
/// the strict upper triangle is ignored).  Returns false if A is not
/// numerically positive definite.
bool cholesky_factor(double* a, int n);

/// Solve L L^T x = b in place given the factor from cholesky_factor.
void cholesky_solve(const double* l, int n, double* b);

/// In-place LU with partial pivoting; piv must have length n.
/// Returns false on singularity.
bool lu_factor(double* a, int n, int* piv);
void lu_solve(const double* lu, const int* piv, int n, double* b);

/// Invert a dense matrix in place (via LU).  Returns false on singularity.
bool invert(double* a, int n);

// ---- banded SPD (coarse-grid redundant solve baseline) --------------------

/// Symmetric banded matrix with kd sub-diagonals stored row-major as
/// band[i*(kd+1) + (i-j)] = A(i,j) for 0 <= i-j <= kd.
class BandedCholesky {
 public:
  /// Factors the band in place.  Returns false if not SPD.
  bool factor(std::vector<double> band, int n, int kd);
  void solve(double* b) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int bandwidth() const { return kd_; }
  /// Flops for one solve (forward + back substitution), for cost models.
  [[nodiscard]] double solve_flops() const {
    return 4.0 * static_cast<double>(n_) * (kd_ + 1);
  }

 private:
  std::vector<double> l_;
  int n_ = 0;
  int kd_ = 0;
};

// ---- complex LU (Orr-Sommerfeld inverse iteration) -------------------------

using Complex = std::complex<double>;
bool zlu_factor(Complex* a, int n, int* piv);
void zlu_solve(const Complex* lu, const int* piv, int n, Complex* b);

// ---- symmetric eigenproblems ----------------------------------------------

/// Cyclic Jacobi eigensolver for a dense symmetric matrix.
/// On return eigvals[i] ascending and eigvecs row-major with *columns* as
/// eigenvectors (eigvecs[r*n + i] = component r of eigenvector i).
void sym_eig(const double* a, int n, std::vector<double>& eigvals,
             std::vector<double>& eigvecs);

/// Generalized problem A z = lambda B z with B SPD, via Cholesky reduction.
/// Eigenvectors are B-orthonormal: Z^T B Z = I.
void generalized_sym_eig(const double* a, const double* b, int n,
                         std::vector<double>& eigvals,
                         std::vector<double>& eigvecs);

/// Eigen-decomposition of a symmetric tridiagonal matrix (diagonal d,
/// off-diagonal e with e[0] unused), EISPACK tql2 style.  On return d holds
/// ascending eigenvalues and z (n x n row-major, columns = vectors) is
/// overwritten by Q such that T = Q diag(d) Q^T.  z must be initialized to
/// the identity (or to a basis to be rotated, as in Lanczos).
bool tridiag_eig(std::vector<double>& d, std::vector<double>& e,
                 std::vector<double>& z, int n);

}  // namespace tsem
