#include "tensor/mxm.hpp"

#include <utility>

namespace tsem {
namespace {

// Hand-unrolled kernels in the style of the paper's f2/f3 routines: the
// contraction (n2) loop trip count is a compile-time constant so the
// compiler fully unrolls it and keeps the dot-product accumulator in
// registers.
template <int K2>
struct F2Impl {
  static void run(const double* a, int m, const double* b, double* c,
                  int n) {
    // n3 (columns of C) controls the outer loop.
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
        double s = 0.0;
        for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
        c[i * n + j] = s;
      }
    }
  }
};

template <int K2>
struct F3Impl {
  static void run(const double* a, int m, const double* b, double* c,
                  int n) {
    // n1 (rows of C) controls the outer loop.
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        double s = 0.0;
        for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
        ci[j] = s;
      }
    }
  }
};

// Unrolled contraction extents 1..kMaxUnrollK, instantiated once for both
// loop orders (this replaces a 24-case switch macro duplicated per
// variant).  The short-circuiting fold runs the matching specialization
// and reports whether one was found.
constexpr int kMaxUnrollK = 24;

template <template <int> class Impl, int... Ks>
bool run_unrolled(std::integer_sequence<int, Ks...>, const double* a, int m,
                  const double* b, int k, double* c, int n) {
  return (((k == Ks + 1) ? (Impl<Ks + 1>::run(a, m, b, c, n), true)
                         : false) ||
          ...);
}

template <template <int> class Impl>
void dispatch_by_k(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  if (!run_unrolled<Impl>(std::make_integer_sequence<int, kMaxUnrollK>{}, a,
                          m, b, k, c, n))
    mxm_generic(a, m, b, k, c, n);
}

}  // namespace

void mxm_generic(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
      for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

void mxm_blocked(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  constexpr int kBlock = 32;
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l0 = 0; l0 < k; l0 += kBlock) {
    const int l1 = l0 + kBlock < k ? l0 + kBlock : k;
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int l = l0; l < l1; ++l) {
        const double ail = ai[l];
        const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
        for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
      }
    }
  }
}

void mxm_f2(const double* a, int m, const double* b, int k, double* c,
            int n) {
  dispatch_by_k<F2Impl>(a, m, b, k, c, n);
}

void mxm_f3(const double* a, int m, const double* b, int k, double* c,
            int n) {
  dispatch_by_k<F3Impl>(a, m, b, k, c, n);
}

void mxm_bt(const double* a, int m, const double* b, int k, double* c,
            int n) {
  // C[i][j] = sum_l A[i][l] * B[j][l], B stored (n x k).
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

void mxm_at(const double* a, int m, const double* b, int k, double* c,
            int n) {
  // C[i][j] = sum_l A[l][i] * B[l][j], A stored (k x m).
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l = 0; l < k; ++l) {
    const double* al = a + static_cast<std::ptrdiff_t>(l) * m;
    const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
    for (int i = 0; i < m; ++i) {
      const double ali = al[i];
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) ci[j] += ali * bl[j];
    }
  }
}

}  // namespace tsem
