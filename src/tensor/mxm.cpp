#include "tensor/mxm.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <utility>

#include "obs/metrics.hpp"
#include "tensor/kernels_avx512.hpp"
#include "tensor/kernels_fixed.hpp"
#include "tensor/kernels_simd.hpp"

namespace tsem {
namespace {

// Hand-unrolled kernels in the style of the paper's f2/f3 routines: the
// contraction (n2) loop trip count is a compile-time constant so the
// compiler fully unrolls it and keeps the dot-product accumulator in
// registers.
template <int K2>
struct F2Impl {
  static void run(const double* a, int m, const double* b, double* c,
                  int n) {
    // n3 (columns of C) controls the outer loop.
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
        double s = 0.0;
        for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
        c[i * n + j] = s;
      }
    }
  }
};

template <int K2>
struct F3Impl {
  static void run(const double* a, int m, const double* b, double* c,
                  int n) {
    // n1 (rows of C) controls the outer loop.
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        double s = 0.0;
        for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
        ci[j] = s;
      }
    }
  }
};

// Unrolled contraction extents 1..kMaxUnrollK, instantiated once for both
// loop orders (this replaces a 24-case switch macro duplicated per
// variant).  The short-circuiting fold runs the matching specialization
// and reports whether one was found.
constexpr int kMaxUnrollK = 24;

template <template <int> class Impl, int... Ks>
bool run_unrolled(std::integer_sequence<int, Ks...>, const double* a, int m,
                  const double* b, int k, double* c, int n) {
  return (((k == Ks + 1) ? (Impl<Ks + 1>::run(a, m, b, c, n), true)
                         : false) ||
          ...);
}

template <template <int> class Impl>
void dispatch_by_k(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  if (!run_unrolled<Impl>(std::make_integer_sequence<int, kMaxUnrollK>{}, a,
                          m, b, k, c, n))
    mxm_generic(a, m, b, k, c, n);
}

}  // namespace

void mxm_generic(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
      for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

void mxm_blocked(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  constexpr int kBlock = 32;
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l0 = 0; l0 < k; l0 += kBlock) {
    const int l1 = l0 + kBlock < k ? l0 + kBlock : k;
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int l = l0; l < l1; ++l) {
        const double ail = ai[l];
        const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
        for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
      }
    }
  }
}

void mxm_f2(const double* a, int m, const double* b, int k, double* c,
            int n) {
  dispatch_by_k<F2Impl>(a, m, b, k, c, n);
}

void mxm_f3(const double* a, int m, const double* b, int k, double* c,
            int n) {
  dispatch_by_k<F3Impl>(a, m, b, k, c, n);
}

void mxm_bt_scalar(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  // C[i][j] = sum_l A[i][l] * B[j][l], B stored (n x k).
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

void mxm_at(const double* a, int m, const double* b, int k, double* c,
            int n) {
  // C[i][j] = sum_l A[l][i] * B[l][j], A stored (k x m).
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l = 0; l < k; ++l) {
    const double* al = a + static_cast<std::ptrdiff_t>(l) * m;
    const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
    for (int i = 0; i < m; ++i) {
      const double ali = al[i];
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) ci[j] += ali * bl[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel registry.

const std::vector<MxmVariant>& mxm_registry() {
  // Registration order is preference order: on a timing tie (within the
  // autotuner margin) the earlier entry wins, so the deterministic scalar
  // defaults sit first and the SIMD family must beat them outright.
  static const std::vector<MxmVariant> reg = [] {
    // "fixed" leads: at its covered shapes it is the restrict-qualified
    // compile-time-extent tier and should win ties against the other
    // portable variants.  Like every variant here it is deterministic
    // for a given build+machine; cross-variant agreement is the family's
    // relative tolerance, not bitwise.
    std::vector<MxmVariant> r = {{"fixed", mxm_fixed_dispatch, false},
                                 {"f3", mxm_f3, false},
                                 {"f2", mxm_f2, false},
                                 {"blocked", mxm_blocked, false},
                                 {"generic", mxm_generic, false}};
    if (simd_available()) {
      r.push_back({"avx2_b4x8", mxm_avx2_b4x8, true});
      r.push_back({"avx2_b8x4", mxm_avx2_b8x4, true});
    }
    if (avx512_available()) {
      r.push_back({"avx512_b8x8", mxm_avx512_b8x8, true});
      r.push_back({"avx512_b4x16", mxm_avx512_b4x16, true});
    }
    return r;
  }();
  return reg;
}

const std::vector<MxmVariant>& mxm_bt_registry() {
  static const std::vector<MxmVariant> reg = [] {
    std::vector<MxmVariant> r = {{"bt_scalar", mxm_bt_scalar, false}};
    if (simd_available()) r.push_back({"bt_avx2", mxm_bt_avx2, true});
    // Appended last: deterministic mode takes mxm_bt_registry().back() as
    // the machine's best bt variant, which AVX-512 is when runnable.
    if (avx512_available()) r.push_back({"bt_avx512", mxm_bt_avx512, true});
    return r;
  }();
  return reg;
}

const MxmVariant* mxm_variant_by_name(const char* name) {
  for (const auto& v : mxm_registry())
    if (std::strcmp(v.name, name) == 0) return &v;
  for (const auto& v : mxm_bt_registry())
    if (std::strcmp(v.name, name) == 0) return &v;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Autotuner.
//
// The discretization only ever multiplies with m, k <= N1 = 16 (the
// contraction index is a point count per direction); n is either another
// point count (<= 16) or a collapsed plane/volume extent (up to N1^2 or
// more).  The table therefore buckets shapes into (m, k) cells with a
// short-n and a long-n class, each tuned once at a representative shape.
// Anything outside the table (dealiasing grids can reach 24) takes a
// fixed heuristic.  The table is built once per process and cached, so a
// given shape always runs the same kernel (bitwise run-to-run and
// thread-count invariance within the process).

namespace {

constexpr int kMaxTuned = 16;
// Representative long-n for cell (m, k): the collapsed extent a
// tensor3_apply final stage sees (n = my*mx), clamped into the class.
int long_n_for(int m) { return m * m > kMaxTuned ? m * m : kMaxTuned + 1; }

struct TuneTable {
  MxmKernelFn small_fn[kMaxTuned + 1][kMaxTuned + 1] = {};
  const char* small_nm[kMaxTuned + 1][kMaxTuned + 1] = {};
  MxmKernelFn long_fn[kMaxTuned + 1][kMaxTuned + 1] = {};
  const char* long_nm[kMaxTuned + 1][kMaxTuned + 1] = {};
  MxmKernelFn bt_fn[kMaxTuned + 1] = {};
  const char* bt_nm[kMaxTuned + 1] = {};
  // Set when TSEM_MXM_KERNEL pins a variant; dispatch short-circuits.
  MxmKernelFn forced_fn = nullptr;
  const char* forced_nm = nullptr;
  MxmKernelFn forced_bt_fn = nullptr;
  const char* forced_bt_nm = nullptr;
};

// Time one variant on one shape: fixed rep count sized to a ~100 kflop
// budget, best of three samples.  Operands are seeded once by the caller;
// in-cache timing is the right condition here because the operator code
// runs these kernels on hot element workspaces.
double time_variant(MxmKernelFn fn, int m, int k, int n, const double* a,
                    const double* b, double* c) {
  const double flops = 2.0 * m * k * n;
  int reps = static_cast<int>(1.0e5 / flops) + 1;
  if (reps < 2) reps = 2;
  if (reps > 64) reps = 64;
  fn(a, m, b, k, c, n);  // warm instruction + data paths
  double best = 1.0e300;
  for (int s = 0; s < 3; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn(a, m, b, k, c, n);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(t1 - t0).count() / reps;
    if (dt < best) best = dt;
  }
  return best;
}

// Challenger must beat the incumbent by >3% to displace it, so noise on
// near-equal variants resolves to the registration (preference) order.
constexpr double kWinMargin = 0.97;

// Fixed (non-timed) shape heuristic, defined below; also the deterministic
// selection when TSEM_MXM_DETERMINISTIC is set.
MxmKernelFn fallback_kernel(int m, int n);
const char* fallback_name(int m, int n);

const MxmVariant* pick(const std::vector<MxmVariant>& reg, int m, int k,
                       int n, const double* a, const double* b, double* c) {
  const MxmVariant* best = &reg.front();
  double best_t = time_variant(best->fn, m, k, n, a, b, c);
  for (std::size_t i = 1; i < reg.size(); ++i) {
    const double t = time_variant(reg[i].fn, m, k, n, a, b, c);
    if (t < best_t * kWinMargin) {
      best = &reg[i];
      best_t = t;
    }
  }
  return best;
}

std::unique_ptr<TuneTable> build_table() {
  auto t = std::make_unique<TuneTable>();

  // Cross-process determinism switch: two processes of the same build can
  // time-tune to different variants (and therefore different FP rounding),
  // which breaks workloads that compare states bit-for-bit across
  // processes — the ensemble fleet's crash/retry contract above all.  With
  // TSEM_MXM_DETERMINISTIC set (non-empty, not "0"), any dispatch not
  // explicitly pinned via TSEM_MXM_KERNEL uses the fixed shape heuristic
  // instead of timed picks: same build + same machine -> same kernels.
  const char* det_env = std::getenv("TSEM_MXM_DETERMINISTIC");
  const bool deterministic =
      det_env != nullptr && *det_env != '\0' && std::strcmp(det_env, "0") != 0;

  const char* bad_pin = nullptr;
  if (const char* env = std::getenv("TSEM_MXM_KERNEL");
      env != nullptr && *env != '\0') {
    if (const MxmVariant* v = mxm_variant_by_name(env)) {
      // A name from the bt registry pins only mxm_bt; anything else pins
      // only mxm.  The other dispatch keeps its tuned table.
      bool is_bt = false;
      for (const auto& b : mxm_bt_registry())
        if (&b == v) is_bt = true;
      if (is_bt) {
        t->forced_bt_fn = v->fn;
        t->forced_bt_nm = v->name;
      } else {
        t->forced_fn = v->fn;
        t->forced_nm = v->name;
      }
    } else {
      // The pin names no registered variant — either a typo or a SIMD
      // family this host's CPU fails the runtime ISA gate for (ungated
      // families never enter the registry).  Fall back to normal
      // selection, but say so: a silently ignored pin defeats the
      // reproducibility the knob exists for.
      bad_pin = env;
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "tsem: TSEM_MXM_KERNEL=%s names no runnable kernel "
                     "variant (unknown name or CPU fails its ISA gate); "
                     "falling back to autotuned selection\n",
                     env);
      }
    }
  }

  // Seeded operands, sized for the largest representative shapes
  // (mxm: 16 x 16 by 16 x 256; bt: 256 x 16 by B (16 x 16)).
  std::vector<double> a(256 * kMaxTuned), b(kMaxTuned * 256),
      c(256 * kMaxTuned);
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  if (t->forced_fn == nullptr && deterministic) {
    for (int m = 1; m <= kMaxTuned; ++m)
      for (int k = 1; k <= kMaxTuned; ++k) {
        t->small_fn[m][k] = fallback_kernel(m, m);
        t->small_nm[m][k] = fallback_name(m, m);
        const int nl = long_n_for(m);
        t->long_fn[m][k] = fallback_kernel(m, nl);
        t->long_nm[m][k] = fallback_name(m, nl);
      }
  } else if (t->forced_fn == nullptr) {
    for (int m = 1; m <= kMaxTuned; ++m) {
      for (int k = 1; k <= kMaxTuned; ++k) {
        const MxmVariant* s =
            pick(mxm_registry(), m, k, m, a.data(), b.data(), c.data());
        t->small_fn[m][k] = s->fn;
        t->small_nm[m][k] = s->name;
        const int nl = long_n_for(m);
        const MxmVariant* l =
            pick(mxm_registry(), m, k, nl, a.data(), b.data(), c.data());
        t->long_fn[m][k] = l->fn;
        t->long_nm[m][k] = l->name;
      }
    }
  } else {
    for (int m = 1; m <= kMaxTuned; ++m)
      for (int k = 1; k <= kMaxTuned; ++k) {
        t->small_fn[m][k] = t->long_fn[m][k] = t->forced_fn;
        t->small_nm[m][k] = t->long_nm[m][k] = t->forced_nm;
      }
  }

  if (t->forced_bt_fn == nullptr && deterministic) {
    // Best registered bt variant for this machine; registry order is a
    // compile-time property, so the choice is process-independent.
    const MxmVariant& v = mxm_bt_registry().back();
    for (int k = 1; k <= kMaxTuned; ++k) {
      t->bt_fn[k] = v.fn;
      t->bt_nm[k] = v.name;
    }
  } else if (t->forced_bt_fn == nullptr) {
    for (int k = 1; k <= kMaxTuned; ++k) {
      // Representative bt shape: the tensor3_apply first stage, which
      // contracts k points across a k^2-row plane block.
      const int m = k * k > 4 ? k * k : 4;
      const MxmVariant* v =
          pick(mxm_bt_registry(), m, k, k, a.data(), b.data(), c.data());
      t->bt_fn[k] = v->fn;
      t->bt_nm[k] = v->name;
    }
  } else {
    for (int k = 1; k <= kMaxTuned; ++k) {
      t->bt_fn[k] = t->forced_bt_fn;
      t->bt_nm[k] = t->forced_bt_nm;
    }
  }

  if (bad_pin != nullptr) {
    obs::count("mxm/autotune/pin_fallbacks");
    obs::Json pe;
    pe["type"] = "mxm_kernel_pin_fallback";
    pe["requested"] = bad_pin;
    // Representative actual selections the fallback landed on (the full
    // per-shape map follows in the mxm_autotune event).
    pe["actual"] = t->small_nm[8][8];
    pe["actual_bt"] = t->bt_nm[8];
    obs::emit_event(std::move(pe));
  }

  obs::count("mxm/autotune/builds");
  obs::Json ev;
  ev["type"] = "mxm_autotune";
  ev["isa"] = simd_isa_name();
  ev["isa_runtime"] = mxm_isa_runtime_name();
  ev["simd_compiled"] = simd_compiled();
  ev["simd_available"] = simd_available();
  ev["avx512_compiled"] = avx512_compiled();
  ev["avx512_available"] = avx512_available();
  if (t->forced_nm != nullptr) ev["forced"] = t->forced_nm;
  if (t->forced_bt_nm != nullptr) ev["forced_bt"] = t->forced_bt_nm;
  if (deterministic) ev["deterministic"] = true;
  for (int d = 2; d <= kMaxTuned; d += 2) {
    char key[32];
    std::snprintf(key, sizeof(key), "small/%dx%dx%d", d, d, d);
    ev["selections"][key] = t->small_nm[d][d];
    std::snprintf(key, sizeof(key), "long/%dx%dx%d", d, d, long_n_for(d));
    ev["selections"][key] = t->long_nm[d][d];
    std::snprintf(key, sizeof(key), "bt/k=%d", d);
    ev["selections"][key] = t->bt_nm[d];
  }
  obs::emit_event(std::move(ev));

  return t;
}

std::atomic<const TuneTable*> g_table{nullptr};
std::mutex g_table_mu;

// Replaced tables (reset_for_testing) are retired here instead of freed:
// a racing reader may still hold the old pointer, and keeping them makes
// the hook leak-sanitizer clean.
std::vector<std::unique_ptr<TuneTable>>& retired_tables() {
  static std::vector<std::unique_ptr<TuneTable>> v;
  return v;
}

const TuneTable& tune_table() {
  const TuneTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::lock_guard<std::mutex> lk(g_table_mu);
  t = g_table.load(std::memory_order_relaxed);
  if (t == nullptr) {
    auto built = build_table();
    t = built.get();
    retired_tables().push_back(std::move(built));
    g_table.store(t, std::memory_order_release);
  }
  return *t;
}

// Fixed heuristic for shapes outside the tuned range (m or k > 16, e.g.
// dealiasing grids): SIMD when runnable and the row is wide enough to
// vectorize, else the historical f2/f3 shape rule.
MxmKernelFn fallback_kernel(int m, int n) {
  if (simd_available() && n >= 4) return mxm_avx2_b4x8;
  return m > n ? mxm_f2 : mxm_f3;
}

const char* fallback_name(int m, int n) {
  if (simd_available() && n >= 4) return "avx2_b4x8";
  return m > n ? "f2" : "f3";
}

}  // namespace

const char* mxm_isa_runtime_name() {
#if defined(__x86_64__) || defined(__i386__)
  static const char* const name = [] {
    if (__builtin_cpu_supports("avx512f")) return "avx512";
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return "avx2";
    return "none";
  }();
  return name;
#else
  return "none";
#endif
}

void mxm_autotune_init() { (void)tune_table(); }

void detail::mxm_tuned(const double* a, int m, const double* b, int k,
                       double* c, int n) {
  const TuneTable& t = tune_table();
  if (t.forced_fn != nullptr) {
    t.forced_fn(a, m, b, k, c, n);
    return;
  }
  if (m >= 1 && m <= kMaxTuned && k >= 1 && k <= kMaxTuned) {
    (n <= kMaxTuned ? t.small_fn : t.long_fn)[m][k](a, m, b, k, c, n);
    return;
  }
  fallback_kernel(m, n)(a, m, b, k, c, n);
}

void mxm_bt(const double* a, int m, const double* b, int k, double* c,
            int n) {
  const TuneTable& t = tune_table();
  if (t.forced_bt_fn != nullptr) {
    t.forced_bt_fn(a, m, b, k, c, n);
    return;
  }
  if (k >= 1 && k <= kMaxTuned) {
    t.bt_fn[k](a, m, b, k, c, n);
    return;
  }
  if (simd_available()) {
    mxm_bt_avx2(a, m, b, k, c, n);
    return;
  }
  mxm_bt_scalar(a, m, b, k, c, n);
}

const char* mxm_selected_name(int m, int k, int n) {
  const TuneTable& t = tune_table();
  if (t.forced_nm != nullptr) return t.forced_nm;
  if (m >= 1 && m <= kMaxTuned && k >= 1 && k <= kMaxTuned)
    return (n <= kMaxTuned ? t.small_nm : t.long_nm)[m][k];
  return fallback_name(m, n);
}

const char* mxm_bt_selected_name(int k) {
  const TuneTable& t = tune_table();
  if (t.forced_bt_nm != nullptr) return t.forced_bt_nm;
  if (k >= 1 && k <= kMaxTuned) return t.bt_nm[k];
  return simd_available() ? "bt_avx2" : "bt_scalar";
}

std::vector<std::pair<std::string, std::string>> mxm_autotune_selections() {
  const TuneTable& t = tune_table();
  std::vector<std::pair<std::string, std::string>> out;
  char key[32];
  for (int d = 2; d <= kMaxTuned; d += 2) {
    std::snprintf(key, sizeof(key), "small/%dx%dx%d", d, d, d);
    out.emplace_back(key, t.small_nm[d][d]);
  }
  for (int d = 2; d <= kMaxTuned; d += 2) {
    std::snprintf(key, sizeof(key), "long/%dx%dx%d", d, d, long_n_for(d));
    out.emplace_back(key, t.long_nm[d][d]);
  }
  for (int d = 2; d <= kMaxTuned; d += 2) {
    std::snprintf(key, sizeof(key), "bt/k=%d", d);
    out.emplace_back(key, t.bt_nm[d]);
  }
  return out;
}

namespace {

// Table blob framing: magic, version, then every name as u8-length +
// bytes.  A name of length 0 encodes "no entry" (unset forced pin).
constexpr std::uint32_t kTableMagic = 0x544d584du;  // "MXMT"
constexpr std::uint32_t kTableVersion = 1;

void put_name(std::vector<std::uint8_t>* out, const char* name) {
  const std::size_t n = name != nullptr ? std::strlen(name) : 0;
  out->push_back(static_cast<std::uint8_t>(n > 255 ? 255 : n));
  out->insert(out->end(), name, name + (n > 255 ? 255 : n));
}

bool take_name(const std::vector<std::uint8_t>& in, std::size_t* pos,
               std::string* name) {
  if (*pos >= in.size()) return false;
  const std::size_t n = in[*pos];
  ++*pos;
  if (*pos + n > in.size()) return false;
  name->assign(reinterpret_cast<const char*>(in.data() + *pos), n);
  *pos += n;
  return true;
}

/// Resolve a recorded name against ONE registry (small/long entries must
/// come from mxm_registry, bt entries from mxm_bt_registry — the two
/// families have different call conventions for B).
const MxmVariant* find_in(const std::vector<MxmVariant>& reg,
                          const std::string& name) {
  for (const auto& v : reg)
    if (name == v.name) return &v;
  return nullptr;
}

}  // namespace

std::vector<std::uint8_t> mxm_autotune_export_table() {
  const TuneTable& t = tune_table();
  std::vector<std::uint8_t> out;
  const auto put_u32 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  put_u32(kTableMagic);
  put_u32(kTableVersion);
  put_u32(static_cast<std::uint32_t>(kMaxTuned));
  put_name(&out, t.forced_nm);
  put_name(&out, t.forced_bt_nm);
  for (int m = 1; m <= kMaxTuned; ++m)
    for (int k = 1; k <= kMaxTuned; ++k) {
      put_name(&out, t.small_nm[m][k]);
      put_name(&out, t.long_nm[m][k]);
    }
  for (int k = 1; k <= kMaxTuned; ++k) put_name(&out, t.bt_nm[k]);
  return out;
}

bool mxm_autotune_import_table(const std::vector<std::uint8_t>& blob) {
  // An explicit local pin outranks any shipped table: the user asked for
  // one specific kernel, and importing would silently override that.
  if (const char* env = std::getenv("TSEM_MXM_KERNEL");
      env != nullptr && *env != '\0' && mxm_variant_by_name(env) != nullptr)
    return false;

  std::size_t pos = 0;
  const auto get_u32 = [&blob, &pos](std::uint32_t* v) {
    if (pos + 4 > blob.size()) return false;
    *v = static_cast<std::uint32_t>(blob[pos]) |
         static_cast<std::uint32_t>(blob[pos + 1]) << 8 |
         static_cast<std::uint32_t>(blob[pos + 2]) << 16 |
         static_cast<std::uint32_t>(blob[pos + 3]) << 24;
    pos += 4;
    return true;
  };
  std::uint32_t magic = 0, version = 0, ntuned = 0;
  if (!get_u32(&magic) || !get_u32(&version) || !get_u32(&ntuned) ||
      magic != kTableMagic || version != kTableVersion ||
      ntuned != static_cast<std::uint32_t>(kMaxTuned))
    return false;

  auto t = std::make_unique<TuneTable>();
  std::string name;
  if (!take_name(blob, &pos, &name)) return false;
  if (!name.empty()) {
    const MxmVariant* v = find_in(mxm_registry(), name);
    if (v == nullptr) return false;
    t->forced_fn = v->fn;
    t->forced_nm = v->name;
  }
  if (!take_name(blob, &pos, &name)) return false;
  if (!name.empty()) {
    const MxmVariant* v = find_in(mxm_bt_registry(), name);
    if (v == nullptr) return false;
    t->forced_bt_fn = v->fn;
    t->forced_bt_nm = v->name;
  }
  for (int m = 1; m <= kMaxTuned; ++m)
    for (int k = 1; k <= kMaxTuned; ++k) {
      if (!take_name(blob, &pos, &name)) return false;
      const MxmVariant* s = find_in(mxm_registry(), name);
      if (s == nullptr) return false;
      t->small_fn[m][k] = s->fn;
      t->small_nm[m][k] = s->name;
      if (!take_name(blob, &pos, &name)) return false;
      const MxmVariant* l = find_in(mxm_registry(), name);
      if (l == nullptr) return false;
      t->long_fn[m][k] = l->fn;
      t->long_nm[m][k] = l->name;
    }
  for (int k = 1; k <= kMaxTuned; ++k) {
    if (!take_name(blob, &pos, &name)) return false;
    const MxmVariant* v = find_in(mxm_bt_registry(), name);
    if (v == nullptr) return false;
    t->bt_fn[k] = v->fn;
    t->bt_nm[k] = v->name;
  }
  if (pos != blob.size()) return false;

  obs::count("mxm/autotune/imports");
  obs::Json ev;
  ev["type"] = "mxm_autotune_import";
  ev["isa_runtime"] = mxm_isa_runtime_name();
  ev["selection_8x8"] = t->small_nm[8][8];
  ev["selection_bt_8"] = t->bt_nm[8];
  obs::emit_event(std::move(ev));

  std::lock_guard<std::mutex> lk(g_table_mu);
  const TuneTable* raw = t.get();
  retired_tables().push_back(std::move(t));
  g_table.store(raw, std::memory_order_release);
  return true;
}

void detail::mxm_autotune_reset_for_testing() {
  std::lock_guard<std::mutex> lk(g_table_mu);
  g_table.store(nullptr, std::memory_order_release);
}

}  // namespace tsem
