#include "tensor/mxm.hpp"

namespace tsem {
namespace {

// Hand-unrolled kernels in the style of the paper's f2/f3 routines: the
// contraction (n2) loop trip count is a compile-time constant so the
// compiler fully unrolls it and keeps the dot-product accumulator in
// registers.
template <int K2>
void f2_impl(const double* a, int m, const double* b, double* c, int n) {
  // n3 (columns of C) controls the outer loop.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
      double s = 0.0;
      for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
      c[i * n + j] = s;
    }
  }
}

template <int K2>
void f3_impl(const double* a, int m, const double* b, double* c, int n) {
  // n1 (rows of C) controls the outer loop.
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * K2;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int l = 0; l < K2; ++l) s += ai[l] * b[l * n + j];
      ci[j] = s;
    }
  }
}

}  // namespace

void mxm_generic(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
      for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

void mxm_blocked(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  constexpr int kBlock = 32;
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l0 = 0; l0 < k; l0 += kBlock) {
    const int l1 = l0 + kBlock < k ? l0 + kBlock : k;
    for (int i = 0; i < m; ++i) {
      const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int l = l0; l < l1; ++l) {
        const double ail = ai[l];
        const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
        for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
      }
    }
  }
}

#define TSEM_MXM_DISPATCH(IMPL)                                      \
  switch (k) {                                                       \
    case 1:  IMPL<1>(a, m, b, c, n);  return;                        \
    case 2:  IMPL<2>(a, m, b, c, n);  return;                        \
    case 3:  IMPL<3>(a, m, b, c, n);  return;                        \
    case 4:  IMPL<4>(a, m, b, c, n);  return;                        \
    case 5:  IMPL<5>(a, m, b, c, n);  return;                        \
    case 6:  IMPL<6>(a, m, b, c, n);  return;                        \
    case 7:  IMPL<7>(a, m, b, c, n);  return;                        \
    case 8:  IMPL<8>(a, m, b, c, n);  return;                        \
    case 9:  IMPL<9>(a, m, b, c, n);  return;                        \
    case 10: IMPL<10>(a, m, b, c, n); return;                        \
    case 11: IMPL<11>(a, m, b, c, n); return;                        \
    case 12: IMPL<12>(a, m, b, c, n); return;                        \
    case 13: IMPL<13>(a, m, b, c, n); return;                        \
    case 14: IMPL<14>(a, m, b, c, n); return;                        \
    case 15: IMPL<15>(a, m, b, c, n); return;                        \
    case 16: IMPL<16>(a, m, b, c, n); return;                        \
    case 17: IMPL<17>(a, m, b, c, n); return;                        \
    case 18: IMPL<18>(a, m, b, c, n); return;                        \
    case 19: IMPL<19>(a, m, b, c, n); return;                        \
    case 20: IMPL<20>(a, m, b, c, n); return;                        \
    case 21: IMPL<21>(a, m, b, c, n); return;                        \
    case 22: IMPL<22>(a, m, b, c, n); return;                        \
    case 23: IMPL<23>(a, m, b, c, n); return;                        \
    case 24: IMPL<24>(a, m, b, c, n); return;                        \
    default: break;                                                  \
  }                                                                  \
  mxm_generic(a, m, b, k, c, n)

void mxm_f2(const double* a, int m, const double* b, int k, double* c,
            int n) {
  TSEM_MXM_DISPATCH(f2_impl);
}

void mxm_f3(const double* a, int m, const double* b, int k, double* c,
            int n) {
  TSEM_MXM_DISPATCH(f3_impl);
}

#undef TSEM_MXM_DISPATCH

void mxm_bt(const double* a, int m, const double* b, int k, double* c,
            int n) {
  // C[i][j] = sum_l A[i][l] * B[j][l], B stored (n x k).
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

void mxm_at(const double* a, int m, const double* b, int k, double* c,
            int n) {
  // C[i][j] = sum_l A[l][i] * B[l][j], A stored (k x m).
  for (int i = 0; i < m; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
  }
  for (int l = 0; l < k; ++l) {
    const double* al = a + static_cast<std::ptrdiff_t>(l) * m;
    const double* bl = b + static_cast<std::ptrdiff_t>(l) * n;
    for (int i = 0; i < m; ++i) {
      const double ali = al[i];
      double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) ci[j] += ali * bl[j];
    }
  }
}

}  // namespace tsem
