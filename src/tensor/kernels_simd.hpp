// AVX2/FMA mxm kernel family (paper §6 modernized: the hand-unrolled f2/f3
// idea carried to a register-blocked SIMD micro-kernel, as NekRS does for
// its shape-specialized operator kernels).
//
// Compile gating: the kernels are built only when the TSEM_SIMD CMake
// option is ON and the toolchain accepts -mavx2 -mfma (the build then
// defines TSEM_SIMD_ENABLED and compiles this translation unit with those
// flags).  Runtime gating: simd_available() additionally requires the
// executing CPU to report AVX2 and FMA, so a TSEM_SIMD binary stays
// correct on older hardware — the registry in mxm.cpp simply does not
// register the family there.
//
// Numerics: each C entry is accumulated over the contraction index in the
// same sequential order as the scalar kernels, but with fused
// multiply-adds (single rounding per term) and, in mxm_bt_avx2, four-lane
// partial sums.  Results therefore agree with the scalar reference to a
// tight relative tolerance, not bitwise — see the tolerance policy in
// DESIGN.md (Kernel registry & autotuner).
#pragma once

namespace tsem {

/// True when the SIMD family is compiled in AND the executing CPU reports
/// AVX2 + FMA.  Cached after the first call.
bool simd_available();

/// True when the family was compiled in (TSEM_SIMD=ON at configure time).
bool simd_compiled();

/// Human-readable ISA tag for bench metadata: "avx2+fma" when
/// simd_available(), "none" otherwise.
const char* simd_isa_name();

// C (m x n) = A (m x k) * B (k x n), all dense row-major, C overwritten.
// Register tiles: 4 rows x 8 cols and 8 rows x 4 cols of C respectively;
// the autotuner picks between them (and the scalar variants) per shape.
// Callable only when simd_available() — they TSEM_REQUIRE-fail otherwise.
void mxm_avx2_b4x8(const double* a, int m, const double* b, int k, double* c,
                   int n);
void mxm_avx2_b8x4(const double* a, int m, const double* b, int k, double* c,
                   int n);

/// C (m x n) = A (m x k) * B^T with B stored (n x k) row-major — the
/// SIMD twin of mxm_bt (both operands are contraction-contiguous, so this
/// vectorizes the dot products with 4-lane FMA partial sums).
void mxm_bt_avx2(const double* a, int m, const double* b, int k, double* c,
                 int n);

// Single-precision twins for the FP32 preconditioner path (DESIGN.md
// "Precision policy"): 8-lane float tiles, twice the lane width of the
// double kernels at the same register budget.  Reached through the
// smxm/smxm_bt dispatchers in tensor/mxm_f32.cpp, never the double
// registry.  Callable only when simd_available().
void smxm_avx2(const float* a, int m, const float* b, int k, float* c,
               int n);
void smxm_bt_avx2(const float* a, int m, const float* b, int k, float* c,
                  int n);

}  // namespace tsem
