// Single-precision mxm kernels for the FP32 Schwarz/FDM preconditioner
// path (DESIGN.md "Precision policy").
//
// smxm/smxm_bt dispatch once per process to the widest runnable float
// tier: the hand-vectorized AVX-512 (16-lane) or AVX2/FMA (8-lane)
// kernels when compiled in and supported by the CPU, else portable
// scalar loops.  At a given ISA width a float product moves half the
// bytes and runs twice the lanes of its double counterpart, which is
// where the preconditioner-apply speedup comes from — the hand tiers
// matter because the compiler cannot reassociate the bt dot-product
// reductions.  They are NOT part of the kernel registry — the registry,
// autotuner, and TSEM_MXM_KERNEL pinning govern the FP64 operator path
// only; the FP32 tier is reached solely through
// FdmLocal::solve_batch_f32 under TSEM_PRECOND_FP32.
//
// Numerics: ascending-l accumulation like the scalar FP64 kernels, but in
// float — results carry single-precision rounding by design.  The
// preconditioner contract that absorbs this is iteration-count +
// achieved-residual, not bitwise (tests/convergence_contract.hpp).
#pragma once

namespace tsem {

/// C (m x n) = A (m x k) * B (k x n), dense row-major float, C
/// overwritten.
void smxm(const float* a, int m, const float* b, int k, float* c, int n);

/// C (m x n) = A (m x k) * B^T with B stored (n x k) row-major float.
void smxm_bt(const float* a, int m, const float* b, int k, float* c, int n);

}  // namespace tsem
