#include "tensor/tensor_apply.hpp"

#include "tensor/mxm.hpp"

namespace tsem {

// With x fastest, element data viewed row-major is a (slow x fast) matrix:
// applying a factor to the fastest index is a product with the transposed
// factor on the right; applying to the slowest index is a product on the
// left; the middle (3D y) index is handled slab by slab.

void tensor2_apply(const double* ax, int mx, int nx, const double* ay, int my,
                   int ny, const double* u, double* out, double* work) {
  mxm_bt(u, ny, ax, nx, work, mx);  // (ny x mx) = (ny x nx)(nx x mx)
  mxm(ay, my, work, ny, out, mx);   // (my x mx)
}

void tensor3_apply(const double* ax, int mx, int nx, const double* ay, int my,
                   int ny, const double* az, int mz, int nz, const double* u,
                   double* out, double* work) {
  double* t1 = work;                 // nz*ny*mx
  double* t2 = work + static_cast<std::ptrdiff_t>(nz) * ny * mx;  // nz*my*mx
  mxm_bt(u, nz * ny, ax, nx, t1, mx);
  for (int k = 0; k < nz; ++k) {
    mxm(ay, my, t1 + static_cast<std::ptrdiff_t>(k) * ny * mx, ny,
        t2 + static_cast<std::ptrdiff_t>(k) * my * mx, mx);
  }
  mxm(az, mz, t2, nz, out, my * mx);
}

void tensor2_apply_x(const double* ax, int n, int ny, const double* u,
                     double* out) {
  mxm_bt(u, ny, ax, n, out, n);
}

void tensor2_apply_y(const double* ay, int n, int nx, const double* u,
                     double* out) {
  mxm(ay, n, u, n, out, nx);
}

void tensor3_apply_x(const double* ax, int n, int ny, int nz, const double* u,
                     double* out) {
  mxm_bt(u, nz * ny, ax, n, out, n);
}

void tensor3_apply_y(const double* ay, int n, int nx, int nz, const double* u,
                     double* out) {
  for (int k = 0; k < nz; ++k) {
    mxm(ay, n, u + static_cast<std::ptrdiff_t>(k) * nx * n, n,
        out + static_cast<std::ptrdiff_t>(k) * nx * n, nx);
  }
}

void tensor3_apply_z(const double* az, int n, int nx, int ny, const double* u,
                     double* out) {
  mxm(az, n, u, n, out, nx * ny);
}

}  // namespace tsem
