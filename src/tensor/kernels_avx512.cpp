#include "tensor/kernels_avx512.hpp"

#include "common/check.hpp"

#if defined(TSEM_SIMD_AVX512_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define TSEM_AVX512_IMPL 1
#include <immintrin.h>
#endif

namespace tsem {

bool avx512_compiled() {
#ifdef TSEM_AVX512_IMPL
  return true;
#else
  return false;
#endif
}

bool avx512_available() {
#ifdef TSEM_AVX512_IMPL
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
#else
  return false;
#endif
}

#ifdef TSEM_AVX512_IMPL

namespace {

// One ROWS x (8*NV) register tile of C.  a points at row i0 of A (stride
// k), bj at column j0 of B (stride n), cij at C[i0][j0] (stride n).  The
// contraction runs in the same l order as the scalar kernels; each entry
// sees one FMA per term.  ROWS*NV <= 16 keeps the accumulators plus the
// broadcast and B vectors inside the 32-register file.
template <int ROWS, int NV>
inline void tile(const double* a, const double* bj, double* cij, int k,
                 int n) {
  __m512d acc[ROWS][NV];
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_setzero_pd();
  for (int l = 0; l < k; ++l) {
    __m512d bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] = _mm512_loadu_pd(bj + static_cast<std::ptrdiff_t>(l) * n + 8 * v);
    for (int r = 0; r < ROWS; ++r) {
      const __m512d av =
          _mm512_set1_pd(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm512_fmadd_pd(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v)
      _mm512_storeu_pd(cij + static_cast<std::ptrdiff_t>(r) * n + 8 * v,
                       acc[r][v]);
}

// Masked column tail: one partial zmm covering the last n % 8 columns,
// same l-ascending FMA accumulation as the full tiles.
template <int ROWS>
inline void tile_masked(const double* a, const double* bj, double* cij, int k,
                        int n, int cols) {
  const __mmask8 mask = static_cast<__mmask8>((1u << cols) - 1u);
  __m512d acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm512_setzero_pd();
  for (int l = 0; l < k; ++l) {
    const __m512d bv = _mm512_maskz_loadu_pd(
        mask, bj + static_cast<std::ptrdiff_t>(l) * n);
    for (int r = 0; r < ROWS; ++r) {
      const __m512d av =
          _mm512_set1_pd(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      acc[r] = _mm512_fmadd_pd(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    _mm512_mask_storeu_pd(cij + static_cast<std::ptrdiff_t>(r) * n, mask,
                          acc[r]);
}

template <int ROWS, int NV>
void mxm_avx512_impl(const double* a, int m, const double* b, int k,
                     double* c, int n) {
  constexpr int JB = 8 * NV;
  int i = 0;
  for (; i + ROWS <= m; i += ROWS) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + JB <= n; j += JB) tile<ROWS, NV>(ai, b + j, ci + j, k, n);
    for (; j + 8 <= n; j += 8) tile<ROWS, 1>(ai, b + j, ci + j, k, n);
    if (j < n) tile_masked<ROWS>(ai, b + j, ci + j, k, n, n - j);
  }
  for (; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) tile<1, 1>(ai, b + j, ci + j, k, n);
    if (j < n) tile_masked<1>(ai, b + j, ci + j, k, n, n - j);
  }
}

}  // namespace

void mxm_avx512_b8x8(const double* a, int m, const double* b, int k,
                     double* c, int n) {
  mxm_avx512_impl<8, 1>(a, m, b, k, c, n);
}

void mxm_avx512_b4x16(const double* a, int m, const double* b, int k,
                      double* c, int n) {
  mxm_avx512_impl<4, 2>(a, m, b, k, c, n);
}

void mxm_bt_avx512(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  // C[i][j] = sum_l A[i][l] * B[j][l], B stored (n x k): both operands are
  // contraction-contiguous, so each dot runs 8-lane partial sums with a
  // masked final chunk, reduced left to right.
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      __m512d s = _mm512_setzero_pd();
      int l = 0;
      for (; l + 8 <= k; l += 8)
        s = _mm512_fmadd_pd(_mm512_loadu_pd(ai + l), _mm512_loadu_pd(bj + l),
                            s);
      if (l < k) {
        const __mmask8 mask = static_cast<__mmask8>((1u << (k - l)) - 1u);
        s = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(mask, ai + l),
                            _mm512_maskz_loadu_pd(mask, bj + l), s);
      }
      ci[j] = _mm512_reduce_add_pd(s);
    }
  }
}

namespace {

// ROWS x (16*NV) float tile — the double tile<> at twice the lane count.
template <int ROWS, int NV>
inline void stile(const float* a, const float* bj, float* cij, int k,
                  int n) {
  __m512 acc[ROWS][NV];
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_setzero_ps();
  for (int l = 0; l < k; ++l) {
    __m512 bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] =
          _mm512_loadu_ps(bj + static_cast<std::ptrdiff_t>(l) * n + 16 * v);
    for (int r = 0; r < ROWS; ++r) {
      const __m512 av =
          _mm512_set1_ps(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm512_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v)
      _mm512_storeu_ps(cij + static_cast<std::ptrdiff_t>(r) * n + 16 * v,
                       acc[r][v]);
}

template <int ROWS>
inline void stile_masked(const float* a, const float* bj, float* cij, int k,
                         int n, int cols) {
  const __mmask16 mask = static_cast<__mmask16>((1u << cols) - 1u);
  __m512 acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm512_setzero_ps();
  for (int l = 0; l < k; ++l) {
    const __m512 bv =
        _mm512_maskz_loadu_ps(mask, bj + static_cast<std::ptrdiff_t>(l) * n);
    for (int r = 0; r < ROWS; ++r) {
      const __m512 av =
          _mm512_set1_ps(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      acc[r] = _mm512_fmadd_ps(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    _mm512_mask_storeu_ps(cij + static_cast<std::ptrdiff_t>(r) * n, mask,
                          acc[r]);
}

// ROWS full rows of C for n <= 16: one masked zmm per row, the whole
// row blocked in registers across the contraction.  This is the common
// FDM subdomain case (m1 <= 16 at orders up to 15).
template <int ROWS>
inline void srows_1v(const float* a, const float* b, float* c, int k, int n,
                     __mmask16 mask) {
  __m512 acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm512_setzero_ps();
  for (int l = 0; l < k; ++l) {
    const __m512 bv =
        _mm512_maskz_loadu_ps(mask, b + static_cast<std::ptrdiff_t>(l) * n);
    for (int r = 0; r < ROWS; ++r)
      acc[r] = _mm512_fmadd_ps(
          _mm512_set1_ps(a[static_cast<std::ptrdiff_t>(r) * k + l]), bv,
          acc[r]);
  }
  for (int r = 0; r < ROWS; ++r)
    _mm512_mask_storeu_ps(c + static_cast<std::ptrdiff_t>(r) * n, mask,
                          acc[r]);
}

// ROWS full rows for 16 < n <= 32: one full + one masked vector per row,
// both advanced in the SAME l loop so the tail costs one extra FMA per
// term instead of a second k-sweep (order 16 runs n = 17 here — a
// second sweep for one column would waste half the kernel).
template <int ROWS>
inline void srows_2v(const float* a, const float* b, float* c, int k, int n,
                     __mmask16 mask2) {
  __m512 acc0[ROWS], acc1[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc0[r] = _mm512_setzero_ps();
    acc1[r] = _mm512_setzero_ps();
  }
  for (int l = 0; l < k; ++l) {
    const float* bl = b + static_cast<std::ptrdiff_t>(l) * n;
    const __m512 bv0 = _mm512_loadu_ps(bl);
    const __m512 bv1 = _mm512_maskz_loadu_ps(mask2, bl + 16);
    for (int r = 0; r < ROWS; ++r) {
      const __m512 av =
          _mm512_set1_ps(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      acc0[r] = _mm512_fmadd_ps(av, bv0, acc0[r]);
      acc1[r] = _mm512_fmadd_ps(av, bv1, acc1[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    float* cr = c + static_cast<std::ptrdiff_t>(r) * n;
    _mm512_storeu_ps(cr, acc0[r]);
    _mm512_mask_storeu_ps(cr + 16, mask2, acc1[r]);
  }
}

}  // namespace

void smxm_avx512(const float* a, int m, const float* b, int k, float* c,
                 int n) {
  if (n <= 16) {
    const __mmask16 mask = static_cast<__mmask16>((1u << n) - 1u);
    int i = 0;
    for (; i + 8 <= m; i += 8)
      srows_1v<8>(a + static_cast<std::ptrdiff_t>(i) * k, b,
                  c + static_cast<std::ptrdiff_t>(i) * n, k, n, mask);
    for (; i < m; ++i)
      srows_1v<1>(a + static_cast<std::ptrdiff_t>(i) * k, b,
                  c + static_cast<std::ptrdiff_t>(i) * n, k, n, mask);
    return;
  }
  if (n <= 32) {
    const __mmask16 mask2 = static_cast<__mmask16>((1u << (n - 16)) - 1u);
    int i = 0;
    for (; i + 4 <= m; i += 4)
      srows_2v<4>(a + static_cast<std::ptrdiff_t>(i) * k, b,
                  c + static_cast<std::ptrdiff_t>(i) * n, k, n, mask2);
    for (; i < m; ++i)
      srows_2v<1>(a + static_cast<std::ptrdiff_t>(i) * k, b,
                  c + static_cast<std::ptrdiff_t>(i) * n, k, n, mask2);
    return;
  }
  constexpr int ROWS = 8;
  int i = 0;
  for (; i + ROWS <= m; i += ROWS) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 16 <= n; j += 16) stile<ROWS, 1>(ai, b + j, ci + j, k, n);
    if (j < n) stile_masked<ROWS>(ai, b + j, ci + j, k, n, n - j);
  }
  for (; i < m; ++i) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 16 <= n; j += 16) stile<1, 1>(ai, b + j, ci + j, k, n);
    if (j < n) stile_masked<1>(ai, b + j, ci + j, k, n, n - j);
  }
}

void smxm_bt_avx512(const float* a, int m, const float* b, int k, float* c,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      __m512 s = _mm512_setzero_ps();
      int l = 0;
      for (; l + 16 <= k; l += 16)
        s = _mm512_fmadd_ps(_mm512_loadu_ps(ai + l), _mm512_loadu_ps(bj + l),
                            s);
      if (l < k) {
        const __mmask16 mask =
            static_cast<__mmask16>((1u << (k - l)) - 1u);
        s = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, ai + l),
                            _mm512_maskz_loadu_ps(mask, bj + l), s);
      }
      ci[j] = _mm512_reduce_add_ps(s);
    }
  }
}

#else  // !TSEM_AVX512_IMPL — declared so the registry code links; never
       // registered (avx512_available() is false), so never reachable.

void mxm_avx512_b8x8(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_avx512_b8x8 called without TSEM_SIMD_AVX512 support");
}
void mxm_avx512_b4x16(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_avx512_b4x16 called without TSEM_SIMD_AVX512 support");
}
void mxm_bt_avx512(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_bt_avx512 called without TSEM_SIMD_AVX512 support");
}
void smxm_avx512(const float*, int, const float*, int, float*, int) {
  TSEM_REQUIRE(!"smxm_avx512 called without TSEM_SIMD_AVX512 support");
}
void smxm_bt_avx512(const float*, int, const float*, int, float*, int) {
  TSEM_REQUIRE(!"smxm_bt_avx512 called without TSEM_SIMD_AVX512 support");
}

#endif

}  // namespace tsem
