#include "tensor/kernels_simd.hpp"

#include "common/check.hpp"

#if defined(TSEM_SIMD_ENABLED) && (defined(__x86_64__) || defined(__i386__))
#define TSEM_SIMD_IMPL 1
#include <immintrin.h>
#endif

namespace tsem {

bool simd_compiled() {
#ifdef TSEM_SIMD_IMPL
  return true;
#else
  return false;
#endif
}

bool simd_available() {
#ifdef TSEM_SIMD_IMPL
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

const char* simd_isa_name() { return simd_available() ? "avx2+fma" : "none"; }

#ifdef TSEM_SIMD_IMPL

namespace {

// One ROWS x (4*NV) register tile of C.  a points at row i0 of A (stride
// k), bj at column j0 of B (stride n), cij at C[i0][j0] (stride n).  The
// contraction runs in the same l order as the scalar kernels; each entry
// sees one FMA per term.
template <int ROWS, int NV>
inline void tile(const double* a, const double* bj, double* cij, int k,
                 int n) {
  __m256d acc[ROWS][NV];
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_setzero_pd();
  for (int l = 0; l < k; ++l) {
    __m256d bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] = _mm256_loadu_pd(bj + static_cast<std::ptrdiff_t>(l) * n + 4 * v);
    for (int r = 0; r < ROWS; ++r) {
      const __m256d av =
          _mm256_set1_pd(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_pd(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v)
      _mm256_storeu_pd(cij + static_cast<std::ptrdiff_t>(r) * n + 4 * v,
                       acc[r][v]);
}

// Scalar column tail for ROWS rows (sequential dot, same order).
inline void tail_col(const double* a, const double* bj, double* cij, int k,
                     int n, int rows) {
  for (int r = 0; r < rows; ++r) {
    const double* ar = a + static_cast<std::ptrdiff_t>(r) * k;
    double s = 0.0;
    for (int l = 0; l < k; ++l)
      s += ar[l] * bj[static_cast<std::ptrdiff_t>(l) * n];
    cij[static_cast<std::ptrdiff_t>(r) * n] = s;
  }
}

template <int ROWS, int NV>
void mxm_avx2_impl(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  constexpr int JB = 4 * NV;
  int i = 0;
  for (; i + ROWS <= m; i += ROWS) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + JB <= n; j += JB) tile<ROWS, NV>(ai, b + j, ci + j, k, n);
    for (; j + 4 <= n; j += 4) tile<ROWS, 1>(ai, b + j, ci + j, k, n);
    for (; j < n; ++j) tail_col(ai, b + j, ci + j, k, n, ROWS);
  }
  for (; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) tile<1, 1>(ai, b + j, ci + j, k, n);
    for (; j < n; ++j) tail_col(ai, b + j, ci + j, k, n, 1);
  }
}

// Sum the four lanes of s0..s3 into one vector whose lane t holds the
// full horizontal sum of st (classic hadd/permute reduction).
inline __m256d hsum4(__m256d s0, __m256d s1, __m256d s2, __m256d s3) {
  const __m256d t0 = _mm256_hadd_pd(s0, s1);  // s0[0]+s0[1], s1[0]+s1[1],
                                              // s0[2]+s0[3], s1[2]+s1[3]
  const __m256d t1 = _mm256_hadd_pd(s2, s3);
  const __m256d swap = _mm256_permute2f128_pd(t0, t1, 0x21);
  const __m256d blend = _mm256_blend_pd(t0, t1, 0b1100);
  return _mm256_add_pd(swap, blend);
}

}  // namespace

void mxm_avx2_b4x8(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  mxm_avx2_impl<4, 2>(a, m, b, k, c, n);
}

void mxm_avx2_b8x4(const double* a, int m, const double* b, int k, double* c,
                   int n) {
  mxm_avx2_impl<8, 1>(a, m, b, k, c, n);
}

void mxm_bt_avx2(const double* a, int m, const double* b, int k, double* c,
                 int n) {
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    double* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + static_cast<std::ptrdiff_t>(j) * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d s0 = _mm256_setzero_pd(), s1 = s0, s2 = s0, s3 = s0;
      int l = 0;
      for (; l + 4 <= k; l += 4) {
        const __m256d av = _mm256_loadu_pd(ai + l);
        s0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + l), s0);
        s1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + l), s1);
        s2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + l), s2);
        s3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + l), s3);
      }
      double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
      for (; l < k; ++l) {
        const double av = ai[l];
        t0 += av * b0[l];
        t1 += av * b1[l];
        t2 += av * b2[l];
        t3 += av * b3[l];
      }
      const __m256d sum =
          _mm256_add_pd(hsum4(s0, s1, s2, s3), _mm256_set_pd(t3, t2, t1, t0));
      _mm256_storeu_pd(ci + j, sum);
    }
    for (; j < n; ++j) {
      const double* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

namespace {

// One ROWS x (8*NV) float register tile of C — same structure as tile<>
// above at twice the lane count.
template <int ROWS, int NV>
inline void stile(const float* a, const float* bj, float* cij, int k,
                  int n) {
  __m256 acc[ROWS][NV];
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_setzero_ps();
  for (int l = 0; l < k; ++l) {
    __m256 bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] = _mm256_loadu_ps(bj + static_cast<std::ptrdiff_t>(l) * n + 8 * v);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av =
          _mm256_set1_ps(a[static_cast<std::ptrdiff_t>(r) * k + l]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NV; ++v)
      _mm256_storeu_ps(cij + static_cast<std::ptrdiff_t>(r) * n + 8 * v,
                       acc[r][v]);
}

inline void stail_col(const float* a, const float* bj, float* cij, int k,
                      int n, int rows) {
  for (int r = 0; r < rows; ++r) {
    const float* ar = a + static_cast<std::ptrdiff_t>(r) * k;
    float s = 0.0f;
    for (int l = 0; l < k; ++l)
      s += ar[l] * bj[static_cast<std::ptrdiff_t>(l) * n];
    cij[static_cast<std::ptrdiff_t>(r) * n] = s;
  }
}

inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

}  // namespace

void smxm_avx2(const float* a, int m, const float* b, int k, float* c,
               int n) {
  constexpr int ROWS = 4, NV = 2, JB = 8 * NV;
  int i = 0;
  for (; i + ROWS <= m; i += ROWS) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + JB <= n; j += JB) stile<ROWS, NV>(ai, b + j, ci + j, k, n);
    for (; j + 8 <= n; j += 8) stile<ROWS, 1>(ai, b + j, ci + j, k, n);
    for (; j < n; ++j) stail_col(ai, b + j, ci + j, k, n, ROWS);
  }
  for (; i < m; ++i) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) stile<1, 1>(ai, b + j, ci + j, k, n);
    for (; j < n; ++j) stail_col(ai, b + j, ci + j, k, n, 1);
  }
}

void smxm_bt_avx2(const float* a, int m, const float* b, int k, float* c,
                  int n) {
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<std::ptrdiff_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 s0 = _mm256_setzero_ps(), s1 = s0, s2 = s0, s3 = s0;
      int l = 0;
      for (; l + 8 <= k; l += 8) {
        const __m256 av = _mm256_loadu_ps(ai + l);
        s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + l), s0);
        s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + l), s1);
        s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + l), s2);
        s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + l), s3);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; l < k; ++l) {
        const float av = ai[l];
        t0 += av * b0[l];
        t1 += av * b1[l];
        t2 += av * b2[l];
        t3 += av * b3[l];
      }
      ci[j] = hsum8(s0) + t0;
      ci[j + 1] = hsum8(s1) + t1;
      ci[j + 2] = hsum8(s2) + t2;
      ci[j + 3] = hsum8(s3) + t3;
    }
    for (; j < n; ++j) {
      const float* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      float s = 0.0f;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

#else  // !TSEM_SIMD_IMPL — declared so the registry code links; never
       // registered (simd_available() is false), so never reachable.

void mxm_avx2_b4x8(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_avx2_b4x8 called without TSEM_SIMD support");
}
void mxm_avx2_b8x4(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_avx2_b8x4 called without TSEM_SIMD support");
}
void mxm_bt_avx2(const double*, int, const double*, int, double*, int) {
  TSEM_REQUIRE(!"mxm_bt_avx2 called without TSEM_SIMD support");
}
void smxm_avx2(const float*, int, const float*, int, float*, int) {
  TSEM_REQUIRE(!"smxm_avx2 called without TSEM_SIMD support");
}
void smxm_bt_avx2(const float*, int, const float*, int, float*, int) {
  TSEM_REQUIRE(!"smxm_bt_avx2 called without TSEM_SIMD support");
}

#endif

}  // namespace tsem
