#include "tensor/kernels_fixed.hpp"

#include <utility>

#include "tensor/mxm.hpp"

namespace tsem {
namespace {

// The instantiation set: for each d in 2..16, the cube (d, d, d) and the
// collapsed-plane shape (d, d, d*d).  The fold short-circuits on the
// first exact match; the compiler sees fixed trip counts and fully
// unrolls the d <= 16 loops.
constexpr int kMaxFixed = 16;

// Each instantiation stays an outlined function: inlining all thirty
// bodies into the dispatch would make one I-cache-hostile mega-function
// out of what should be thirty small hot loops.
template <int M, int K, int N>
[[gnu::noinline]] void call_fixed(const double* a, const double* b,
                                  double* c) {
  mxm_fixed<M, K, N>(a, b, c);
}

template <int D>
bool try_shapes(const double* a, int m, const double* b, int k, double* c,
                int n) {
  if (m == D && k == D) {
    if (n == D) {
      call_fixed<D, D, D>(a, b, c);
      return true;
    }
    if (n == D * D) {
      call_fixed<D, D, D * D>(a, b, c);
      return true;
    }
  }
  return false;
}

template <int... Ds>
bool run_fixed(std::integer_sequence<int, Ds...>, const double* a, int m,
               const double* b, int k, double* c, int n) {
  return (try_shapes<Ds + 2>(a, m, b, k, c, n) || ...);
}

}  // namespace

bool mxm_fixed_covers(int m, int k, int n) {
  return m == k && m >= 2 && m <= kMaxFixed && (n == m || n == m * m);
}

void mxm_fixed_dispatch(const double* a, int m, const double* b, int k,
                        double* c, int n) {
  if (run_fixed(std::make_integer_sequence<int, kMaxFixed - 1>{}, a, m, b, k,
                c, n))
    return;
  // Same scalar shape rule as the autotuner's out-of-table fallback.
  // Accuracy matches the registry's relative contract, not bitwise: the
  // dot-product form contracts into FMA differently from the row-update
  // generic at vector tails.
  if (m > n)
    mxm_f2(a, m, b, k, c, n);
  else
    mxm_f3(a, m, b, k, c, n);
}

}  // namespace tsem
