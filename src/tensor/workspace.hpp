// Per-thread persistent scratch arena for the element-loop kernels.
//
// Every matrix-free operator needs a few element-sized scratch buffers.
// With the element loops OpenMP-parallel (operators.cpp, dealias.cpp,
// schwarz.cpp), a single shared buffer would race, and allocating inside
// the loop would put malloc on the hot path.  Workspace gives each OpenMP
// thread its own slab that persists across calls: the first get() on a
// thread allocates, every later get() of an equal-or-smaller size returns
// the same pointer with nothing but an index load and a size check.
//
// Ownership rules (also documented in DESIGN.md):
//   * get(n) returns a slab private to the CALLING thread; two threads
//     never share a slab, so element loops may call get() freely inside
//     `#pragma omp parallel for`.
//   * A thread's slab is a single region reused by every get() from that
//     thread: a nested kernel that calls get() on the SAME Workspace
//     clobbers its caller's scratch.  Operators that call other operators
//     (helmholtz_solve -> apply_helmholtz_local) must keep their own
//     buffers outside the arena they pass down.
//   * get() must not be called from nested parallel regions (thread ids
//     would collide between teams); terasem does not nest.
//   * Slabs grow monotonically and are freed only by the destructor, so
//     steady-state use performs no allocation.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/check.hpp"

namespace tsem {

class Workspace {
 public:
  static constexpr int kMaxThreads = 256;

  /// Slab of at least n doubles owned by the calling thread (uninitialized
  /// beyond what the caller last wrote there).  Stable across calls with
  /// non-increasing n.
  double* get(std::size_t n) {
    int tid = 0;
#ifdef _OPENMP
    tid = omp_get_thread_num();
    TSEM_REQUIRE(tid < kMaxThreads);
#endif
    auto& slab = slabs_[tid];
    // Lazy creation is race-free: index tid is touched only by the thread
    // that owns it, and slabs live in separate heap blocks so neighboring
    // entries do not share mutable cache lines after creation.
    if (!slab) slab = std::make_unique<std::vector<double>>();
    if (slab->size() < n) slab->resize(n);
    return slab->data();
  }

  /// Number of thread slabs materialized so far (tests / diagnostics).
  [[nodiscard]] int slabs_in_use() const {
    int c = 0;
    for (const auto& s : slabs_)
      if (s) ++c;
    return c;
  }

 private:
  std::array<std::unique_ptr<std::vector<double>>, kMaxThreads> slabs_{};
};

}  // namespace tsem
