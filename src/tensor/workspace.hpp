// Per-thread persistent scratch arena for the element-loop kernels.
//
// Every matrix-free operator needs a few element-sized scratch buffers.
// With the element loops OpenMP-parallel (operators.cpp, dealias.cpp,
// schwarz.cpp), a single shared buffer would race, and allocating inside
// the loop would put malloc on the hot path.  Workspace gives each OpenMP
// thread its own slab that persists across calls: the first get() on a
// thread allocates, every later get() of an equal-or-smaller size returns
// the same pointer with nothing but an index load and a size check.
//
// Slabs are 64-byte aligned (kAlign) so the SIMD mxm kernels get aligned
// vector loads/stores on slab-rooted operands and no element buffer
// straddles a cache line pair.
//
// Ownership rules (also documented in DESIGN.md):
//   * get(n) returns a slab private to the CALLING thread; two threads
//     never share a slab, so element loops may call get() freely inside
//     `#pragma omp parallel for`.
//   * A thread's slab is a single region reused by every get() from that
//     thread: a nested kernel that calls get() on the SAME Workspace
//     clobbers its caller's scratch.  Operators that call other operators
//     (helmholtz_solve -> apply_helmholtz_local) must keep their own
//     buffers outside the arena they pass down.
//   * get() must not be called from nested parallel regions (thread ids
//     would collide between teams); terasem does not nest.
//   * Slabs grow monotonically and are freed only by the destructor, so
//     steady-state use performs no allocation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/check.hpp"

namespace tsem {

class Workspace {
 public:
  static constexpr int kMaxThreads = 256;
  static constexpr std::size_t kAlign = 64;  // bytes; one full cache line
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be a power of 2");
  static_assert(kAlign % alignof(double) == 0,
                "slab alignment must satisfy double alignment");

  /// Slab of at least n doubles owned by the calling thread (uninitialized
  /// beyond what the caller last wrote there).  Stable across calls with
  /// non-increasing n; always kAlign-byte aligned.
  double* get(std::size_t n) {
    int tid = 0;
#ifdef _OPENMP
    tid = omp_get_thread_num();
    TSEM_REQUIRE(tid < kMaxThreads);
#endif
    // Lazy growth is race-free: index tid is touched only by the thread
    // that owns it, and slab blocks are separate heap allocations so
    // neighboring entries do not share mutable cache lines after creation.
    Slab& slab = slabs_[tid];
    if (slab.cap < n) grow(slab, n);
    return slab.data.get();
  }

  /// Number of thread slabs materialized so far (tests / diagnostics).
  [[nodiscard]] int slabs_in_use() const {
    int c = 0;
    for (const auto& s : slabs_)
      if (s.data) ++c;
    return c;
  }

 private:
  struct Freer {
    void operator()(double* p) const { std::free(p); }
  };
  struct Slab {
    std::size_t cap = 0;  // doubles
    std::unique_ptr<double[], Freer> data;
  };

  static void grow(Slab& slab, std::size_t n) {
    // aligned_alloc requires the size to be a multiple of the alignment;
    // round the byte count up (std::free releases it, bypassing any
    // replaced operator new — see tests/test_threading.cpp).
    std::size_t bytes = n * sizeof(double);
    bytes = (bytes + kAlign - 1) / kAlign * kAlign;
    auto* p = static_cast<double*>(std::aligned_alloc(kAlign, bytes));
    TSEM_REQUIRE(p != nullptr);
    if (slab.cap > 0) std::memcpy(p, slab.data.get(), slab.cap * sizeof(double));
    slab.data.reset(p);
    slab.cap = bytes / sizeof(double);
  }

  std::array<Slab, kMaxThreads> slabs_{};
};

}  // namespace tsem
