// Tensor-product operator application (paper eq. 3).
//
// Element-local data u is stored lexicographically with the x index
// fastest: in 2D u[i + nx*j], in 3D u[i + nx*(j + ny*k)].  Applying a
// separable operator (Az (x) Ay (x) Ax) then reduces to a short sequence
// of dense matrix-matrix products — this is the mechanism that gives the
// spectral element method its O(K N^{d+1}) work bound with a mat-mat,
// not mat-vec, inner kernel.
//
// The A* factors may be rectangular (m* x n*), which is how interpolation
// between the velocity (GLL, order N) and pressure (Gauss, order N-2)
// meshes is expressed.
#pragma once

#include "tensor/workspace.hpp"

namespace tsem {

/// out = (Ay (x) Ax) u.
/// Ax is (mx x nx), Ay is (my x ny); u has nx*ny entries, out mx*my.
/// work must hold at least ny*mx doubles; out may not alias u or work.
void tensor2_apply(const double* ax, int mx, int nx, const double* ay, int my,
                   int ny, const double* u, double* out, double* work);

/// out = (Az (x) Ay (x) Ax) u.
/// work must hold at least nz*ny*mx + nz*my*mx doubles.
void tensor3_apply(const double* ax, int mx, int nx, const double* ay, int my,
                   int ny, const double* az, int mz, int nz, const double* u,
                   double* out, double* work);

/// out = (I (x) Ax) u  in 2D — apply a square operator along x only.
void tensor2_apply_x(const double* ax, int n, int ny, const double* u,
                     double* out);
/// out = (Ay (x) I) u  in 2D.
void tensor2_apply_y(const double* ay, int n, int nx, const double* u,
                     double* out);

/// 3D single-direction applications with a square (n x n) factor.
void tensor3_apply_x(const double* ax, int n, int ny, int nz, const double* u,
                     double* out);
void tensor3_apply_y(const double* ay, int n, int nx, int nz, const double* u,
                     double* out);
void tensor3_apply_z(const double* az, int n, int nx, int ny, const double* u,
                     double* out);

/// Historical name for the kernel scratch arena.  Once a single-buffer
/// wrapper; now the thread-safe per-thread Workspace so the same object
/// can be handed to OpenMP-parallel element loops (see workspace.hpp for
/// the ownership rules).
using TensorWork = Workspace;

}  // namespace tsem
