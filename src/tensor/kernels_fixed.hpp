// Fixed-(m,k,n) kernel tier — the "ghm" specialized-library stand-in,
// promoted from the header-only mxm_fixed<M,K,N> template into a registry
// variant the autotuner can select.
//
// mxm_fixed_dispatch exact-matches the runtime shape against a set of
// precompiled instantiations covering the shapes the discretization
// actually runs at orders N = 8..16:
//
//   cubes        (d, d, d)    for d = 2..16   — tensor middle stages and
//                                               2D element products
//   long shapes  (d, d, d*d)  for d = 2..16   — tensor3_apply final stage
//                                               (collapsed plane extent)
//
// and falls back to the scalar f2/f3 shape rule otherwise, so the variant
// is safe under ANY call shape the dispatch table routes to it (a tuned
// cell is keyed by (m, k) but sees every n in its class).  The
// restrict-qualified constant-extent loops let the compiler vectorize
// aggressively, so agreement with the other variants is the family's
// relative accuracy contract, not bitwise (DESIGN.md "Tolerance vs.
// bitwise policy"); like every registry member the selection stays
// deterministic per build+machine.  Registers with simd = false (no
// runtime ISA gate — the codegen is whatever -march allows everywhere).
#pragma once

namespace tsem {

/// C (m x n) = A (m x k) * B (k x n) through a compile-time-extent
/// instantiation when (m, k, n) is covered, scalar f2/f3 otherwise.
void mxm_fixed_dispatch(const double* a, int m, const double* b, int k,
                        double* c, int n);

/// True when (m, k, n) hits a precompiled fixed instantiation (bench and
/// test introspection; dispatch itself never needs asking).
bool mxm_fixed_covers(int m, int k, int n);

}  // namespace tsem
