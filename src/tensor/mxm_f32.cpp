#include "tensor/mxm_f32.hpp"

#include <cstddef>

#include "tensor/kernels_avx512.hpp"
#include "tensor/kernels_simd.hpp"

namespace tsem {

namespace {

void smxm_scalar(const float* a, int m, const float* b, int k, float* c,
                 int n) {
  // Row-update form: the j loop is stride-1 over both C and B rows, so
  // the vectorizer turns it into wide fused multiply-adds.
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0f;
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int l = 0; l < k; ++l) {
      const float ail = ai[l];
      const float* bl = b + static_cast<std::ptrdiff_t>(l) * n;
      for (int j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

void smxm_bt_scalar(const float* a, int m, const float* b, int k, float* c,
                    int n) {
  // C[i][j] = sum_l A[i][l] * B[j][l], B stored (n x k): sequential dot
  // products (the compiler cannot reassociate the FP reduction, so this
  // stays scalar — the hand-vectorized tiers below exist for exactly
  // that reason).
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::ptrdiff_t>(i) * k;
    float* ci = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::ptrdiff_t>(j) * k;
      float s = 0.0f;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

// Best runnable tier, resolved once per process.  The FP32 path carries
// no bitwise contract (its whole output is absorbed by the convergence
// contract), so a plain runtime ISA pick needs no registry, autotuner,
// or TSEM_MXM_KERNEL plumbing.
using SmxmFn = void (*)(const float*, int, const float*, int, float*, int);

SmxmFn pick_smxm() {
  if (avx512_available()) return smxm_avx512;
  if (simd_available()) return smxm_avx2;
  return smxm_scalar;
}

SmxmFn pick_smxm_bt() {
  if (avx512_available()) return smxm_bt_avx512;
  if (simd_available()) return smxm_bt_avx2;
  return smxm_bt_scalar;
}

}  // namespace

void smxm(const float* a, int m, const float* b, int k, float* c, int n) {
  static const SmxmFn fn = pick_smxm();
  fn(a, m, b, k, c, n);
}

void smxm_bt(const float* a, int m, const float* b, int k, float* c, int n) {
  static const SmxmFn fn = pick_smxm_bt();
  fn(a, m, b, k, c, n);
}

}  // namespace tsem
