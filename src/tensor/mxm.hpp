// Small dense matrix-matrix product kernels.
//
// The spectral element method casts every operator application as a
// sequence of small matrix-matrix products (paper eq. 3); >90% of the
// flops in a simulation pass through these kernels (paper §6), so a
// family of variants is provided and benchmarked in bench_table3_mxm:
//
//   mxm_generic  — portable i-k-j triple loop (accumulates into C rows);
//                  stand-in for the stock vendor BLAS ("lkm").
//   mxm_blocked  — register/cache blocked variant ("csm" stand-in).
//   mxm_f2       — inner (k = n2) dimension fully unrolled, n3 outer
//                  (the paper's hand-unrolled "f2").
//   mxm_f3       — inner dimension fully unrolled, n1 outer ("f3").
//   mxm_fixed<M,K,N> — all extents compile-time (the "ghm" specialized
//                  library stand-in for n2 <= 20); registered as the
//                  "fixed" variant via mxm_fixed_dispatch
//                  (kernels_fixed.hpp), which exact-matches the common
//                  order-8..16 shapes against precompiled instantiations.
//   mxm_avx2_*   — AVX2/FMA register-tiled family (kernels_simd.hpp),
//                  present when TSEM_SIMD is compiled in and the CPU
//                  supports it.
//   mxm_avx512_* — AVX-512F family (kernels_avx512.hpp), present when
//                  TSEM_SIMD_AVX512 is compiled in and the CPU reports
//                  AVX512F.
//
// The variants are collected in a runtime registry (mxm_registry) and a
// one-time autotuner (mxm_autotune_init) times every registered variant
// on the shape classes the discretization uses (m, k <= 16, with short
// and long n) and installs the winner per shape in a dispatch table.
// mxm() and mxm_bt() route through that table.  Selection is cached for
// the life of the process, so every call with a given shape runs the
// same kernel — the PR-3 bitwise thread-count invariance is preserved.
// Set TSEM_MXM_KERNEL=<variant name> to bypass tuning and pin one
// variant (useful for cross-process reproducibility; scalar variants are
// bitwise reorder-free, SIMD variants match to relative tolerance — see
// DESIGN.md "Kernel registry & autotuner").
//
// All matrices are dense row-major. C is overwritten:
//   C (m x n) = A (m x k) * B (k x n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tsem {

void mxm_generic(const double* a, int m, const double* b, int k, double* c,
                 int n);
void mxm_blocked(const double* a, int m, const double* b, int k, double* c,
                 int n);
void mxm_f2(const double* a, int m, const double* b, int k, double* c, int n);
void mxm_f3(const double* a, int m, const double* b, int k, double* c, int n);

/// C (m x n) = A (m x k) * B^T where B is stored (n x k) row-major.
/// Routed through the autotuned dispatch table (see mxm_bt_scalar for the
/// portable reference kernel).
void mxm_bt(const double* a, int m, const double* b, int k, double* c, int n);

/// Portable reference implementation of mxm_bt (sequential dot products).
void mxm_bt_scalar(const double* a, int m, const double* b, int k, double* c,
                   int n);

/// C (m x n) = A^T * B where A is stored (k x m) row-major.
void mxm_at(const double* a, int m, const double* b, int k, double* c, int n);

// ---------------------------------------------------------------------------
// Kernel registry + autotuner.

using MxmKernelFn = void (*)(const double* a, int m, const double* b, int k,
                             double* c, int n);

struct MxmVariant {
  const char* name;  // stable identifier ("f2", "avx2_b4x8", ...)
  MxmKernelFn fn;
  bool simd;  // true for the AVX2/FMA family (tolerance, not bitwise)
};

/// Registered C = A*B variants, in registration (preference) order.
/// SIMD variants appear only when compiled in AND runnable on this CPU.
const std::vector<MxmVariant>& mxm_registry();

/// Registered C = A*B^T variants (same rules).
const std::vector<MxmVariant>& mxm_bt_registry();

/// Look up a registered variant (either registry) by name; nullptr if
/// absent.
const MxmVariant* mxm_variant_by_name(const char* name);

/// Build the dispatch table now (idempotent, thread-safe; otherwise it is
/// built lazily on the first mxm()/mxm_bt() call).  Timing uses seeded
/// operands and fixed rep counts; within a process the table is built
/// once and never changes.
///
/// Environment knobs, read when the table is built:
///   TSEM_MXM_KERNEL=<name>        pin one dispatch to a named variant.
///   TSEM_MXM_DETERMINISTIC=1      skip timed selection entirely and use
///     the fixed shape heuristic — same build + machine always picks the
///     same kernels.  Timing noise can otherwise tune two processes of
///     the same binary onto different variants with different FP
///     rounding; fleet workers set this so crash-retried attempts stay
///     bit-identical to their baselines (fleet/worker.hpp).
void mxm_autotune_init();

/// Name of the variant mxm() dispatches to for this shape.
const char* mxm_selected_name(int m, int k, int n);

/// Name of the variant mxm_bt() dispatches to for this contraction size.
const char* mxm_bt_selected_name(int k);

/// Digest of the tuned table for bench/obs metadata: one (shape label,
/// variant name) pair per tuned shape class, deterministic order.
std::vector<std::pair<std::string, std::string>> mxm_autotune_selections();

/// Serialize the COMPLETE tuned dispatch table (every (m, k) cell of the
/// small-n and long-n classes, every bt contraction size, and any forced
/// pins) as variant names.  Unlike mxm_autotune_selections — a lossy
/// even-diagonal digest for bench metadata — this captures enough to
/// reproduce every dispatch decision in another process of the same
/// build: the fleet's setup cache ships it to cache-hit workers so all
/// workers of a shape run the exact same kernels even under timed tuning
/// (DESIGN.md "Setup cache").  Builds the table first if needed.
std::vector<std::uint8_t> mxm_autotune_export_table();

/// Install a table exported by mxm_autotune_export_table, replacing any
/// table already built in this process.  Declines (returns false, table
/// untouched) when (a) TSEM_MXM_KERNEL names a runnable variant — an
/// explicit pin outranks a shipped table — or (b) any recorded variant
/// name is not runnable here (version skew, or an ISA the executing CPU
/// fails the runtime gate for).  On decline the caller falls back to
/// mxm_autotune_init().
bool mxm_autotune_import_table(const std::vector<std::uint8_t>& blob);

/// Best vector ISA the executing CPU reports, detected at runtime and
/// independent of compile flags: "avx512", "avx2", or "none".  Bench
/// meta carries this beside the compile-time `isa` so artifacts from
/// heterogeneous CI runners are distinguishable.
const char* mxm_isa_runtime_name();

namespace detail {
/// Table-dispatched product; the inline mxm() below forwards here.
void mxm_tuned(const double* a, int m, const double* b, int k, double* c,
               int n);
/// Drop the cached dispatch table so the next use re-tunes (re-reading
/// TSEM_MXM_KERNEL).  Testing hook only — not safe while other threads
/// are inside mxm().
void mxm_autotune_reset_for_testing();
}  // namespace detail

/// Default product used throughout the library: dispatches to the
/// autotuner-selected variant for the shape (built on first use).
inline void mxm(const double* a, int m, const double* b, int k, double* c,
                int n) {
  detail::mxm_tuned(a, m, b, k, c, n);
}

/// Fully compile-time-sized product, M x K times K x N.  The operands
/// must not alias C (true of every call site in the library): without
/// the restrict promise gcc refuses to vectorize these small
/// constant-trip-count loops at all, which is the whole point of the
/// fixed tier.
///
/// Short rows (N <= 16, the cube shapes) process eight C rows per block
/// with the whole block accumulated in a local array the vectorizer
/// keeps in registers — eight independent FMA chains hide the latency a
/// single accumulator row is bound by.  Wide rows (the collapsed-plane
/// N = d*d shapes) stream one row at a time; they are bandwidth-bound
/// and extra chains only add register pressure.
template <int M, int K, int N>
inline void mxm_fixed(const double* __restrict a, const double* __restrict b,
                      double* __restrict c) {
  constexpr int RB = (N <= 16) ? (M < 8 ? M : 8) : 1;
  int i = 0;
  for (; i + RB <= M; i += RB) {
    double acc[RB][N];
    for (int r = 0; r < RB; ++r)
      for (int j = 0; j < N; ++j) acc[r][j] = 0.0;
    for (int l = 0; l < K; ++l) {
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * N;
      for (int r = 0; r < RB; ++r) {
        const double ail = a[(i + r) * K + l];
        for (int j = 0; j < N; ++j) acc[r][j] += ail * bl[j];
      }
    }
    for (int r = 0; r < RB; ++r) {
      double* ci = c + static_cast<std::ptrdiff_t>(i + r) * N;
      for (int j = 0; j < N; ++j) ci[j] = acc[r][j];
    }
  }
  for (; i < M; ++i) {
    double acc[N];
    for (int j = 0; j < N; ++j) acc[j] = 0.0;
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * K;
    for (int l = 0; l < K; ++l) {
      const double ail = ai[l];
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * N;
      for (int j = 0; j < N; ++j) acc[j] += ail * bl[j];
    }
    double* ci = c + static_cast<std::ptrdiff_t>(i) * N;
    for (int j = 0; j < N; ++j) ci[j] = acc[j];
  }
}

}  // namespace tsem
