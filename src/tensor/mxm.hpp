// Small dense matrix-matrix product kernels.
//
// The spectral element method casts every operator application as a
// sequence of small matrix-matrix products (paper eq. 3); >90% of the
// flops in a simulation pass through these kernels (paper §6), so a
// family of variants is provided and benchmarked in bench_table3_mxm:
//
//   mxm_generic  — portable i-k-j triple loop (accumulates into C rows);
//                  stand-in for the stock vendor BLAS ("lkm").
//   mxm_blocked  — register/cache blocked variant ("csm" stand-in).
//   mxm_f2       — inner (k = n2) dimension fully unrolled, n3 outer
//                  (the paper's hand-unrolled "f2").
//   mxm_f3       — inner dimension fully unrolled, n1 outer ("f3").
//   mxm_fixed<M,K,N> — all extents compile-time (the "ghm" specialized
//                  library stand-in for n2 <= 20).
//
// All matrices are dense row-major. C is overwritten:
//   C (m x n) = A (m x k) * B (k x n).
#pragma once

#include <cstddef>

namespace tsem {

void mxm_generic(const double* a, int m, const double* b, int k, double* c,
                 int n);
void mxm_blocked(const double* a, int m, const double* b, int k, double* c,
                 int n);
void mxm_f2(const double* a, int m, const double* b, int k, double* c, int n);
void mxm_f3(const double* a, int m, const double* b, int k, double* c, int n);

/// Default product used throughout the library: the unrolled variant is
/// picked by the shape of C.  Tall C (m > n) goes to f2, whose
/// column-outer order loads each short B column once and amortizes it
/// over the many A rows; wide or square C goes to f3, whose row-outer
/// order streams contiguous C rows against a register-resident A row.
/// Both compute every C entry with the identical dot-product loop, so the
/// choice never changes the result.
inline void mxm(const double* a, int m, const double* b, int k, double* c,
                int n) {
  if (m > n)
    mxm_f2(a, m, b, k, c, n);
  else
    mxm_f3(a, m, b, k, c, n);
}

/// C (m x n) = A (m x k) * B^T where B is stored (n x k) row-major.
void mxm_bt(const double* a, int m, const double* b, int k, double* c, int n);

/// C (m x n) = A^T * B where A is stored (k x m) row-major.
void mxm_at(const double* a, int m, const double* b, int k, double* c, int n);

/// Fully compile-time-sized product, M x K times K x N.
template <int M, int K, int N>
inline void mxm_fixed(const double* a, const double* b, double* c) {
  for (int i = 0; i < M; ++i) {
    double* ci = c + static_cast<std::ptrdiff_t>(i) * N;
    for (int j = 0; j < N; ++j) ci[j] = 0.0;
    for (int l = 0; l < K; ++l) {
      const double ail = a[i * K + l];
      const double* bl = b + static_cast<std::ptrdiff_t>(l) * N;
      for (int j = 0; j < N; ++j) ci[j] += ail * bl[j];
    }
  }
}

}  // namespace tsem
