// AVX-512F mxm kernel family — the third ISA tier above the scalar and
// AVX2/FMA families (kernels_simd.hpp).  512-bit registers hold 8 doubles,
// so one zmm covers a full row of C at the discretization's common orders
// (n = 8..16 needs one or two vectors), and the 32-register file lets an
// 8x8 or 8x16 C tile live entirely in registers across the contraction.
//
// Compile gating: built only when the TSEM_SIMD_AVX512 CMake option is ON
// and the toolchain accepts -mavx512f (the build then defines
// TSEM_SIMD_AVX512_ENABLED and compiles this sole translation unit with
// that flag).  Runtime gating: avx512_available() additionally requires
// the executing CPU to report AVX512F, so a TSEM_SIMD_AVX512 binary stays
// correct on AVX2-only hardware — the registry in mxm.cpp simply does not
// register the family there.
//
// Numerics: identical contract to the AVX2 family — each C entry is
// accumulated over the contraction index in the same sequential order as
// the scalar kernels, with fused multiply-adds (single rounding per
// term); mxm_bt_avx512 uses 8-lane partial sums.  Results agree with the
// scalar reference to a tight relative tolerance, not bitwise (DESIGN.md
// "Tolerance vs. bitwise policy").
#pragma once

namespace tsem {

/// True when the AVX-512 family is compiled in AND the executing CPU
/// reports AVX512F.  Cached after the first call.
bool avx512_available();

/// True when the family was compiled in (TSEM_SIMD_AVX512=ON at
/// configure time).
bool avx512_compiled();

// C (m x n) = A (m x k) * B (k x n), all dense row-major, C overwritten.
// Register tiles: 8 rows x 8 cols (one zmm per row) and 4 rows x 16 cols
// (two zmm per row); the autotuner picks among them per shape.
// Callable only when avx512_available() — they TSEM_REQUIRE-fail
// otherwise.
void mxm_avx512_b8x8(const double* a, int m, const double* b, int k,
                     double* c, int n);
void mxm_avx512_b4x16(const double* a, int m, const double* b, int k,
                      double* c, int n);

/// C (m x n) = A (m x k) * B^T with B stored (n x k) row-major — the
/// AVX-512 twin of mxm_bt (8-lane FMA partial sums over the contraction).
void mxm_bt_avx512(const double* a, int m, const double* b, int k, double* c,
                   int n);

// Single-precision twins for the FP32 preconditioner path (DESIGN.md
// "Precision policy"): one zmm holds 16 floats, so a full C row of the
// Schwarz subdomain solves (m <= 19 at order 16, overlap 1) needs at
// most one vector plus a masked tail.  Reached through the smxm/smxm_bt
// dispatchers in tensor/mxm_f32.cpp, never the double registry.
// Callable only when avx512_available().
void smxm_avx512(const float* a, int m, const float* b, int k, float* c,
                 int n);
void smxm_bt_avx512(const float* a, int m, const float* b, int k, float* c,
                    int n);

}  // namespace tsem
