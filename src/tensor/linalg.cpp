#include "tensor/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tsem {

double dot(const double* x, const double* y, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double norm2(const double* x, std::size_t n) {
  return std::sqrt(dot(x, x, n));
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

bool cholesky_factor(double* a, int n) {
  for (int j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (int l = 0; l < j; ++l) d -= a[j * n + l] * a[j * n + l];
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (int l = 0; l < j; ++l) s -= a[i * n + l] * a[j * n + l];
      a[i * n + j] = s / ljj;
    }
  }
  return true;
}

void cholesky_solve(const double* l, int n, double* b) {
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int j = 0; j < i; ++j) s -= l[i * n + j] * b[j];
    b[i] = s / l[i * n + i];
  }
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int j = i + 1; j < n; ++j) s -= l[j * n + i] * b[j];
    b[i] = s / l[i * n + i];
  }
}

bool lu_factor(double* a, int n, int* piv) {
  for (int j = 0; j < n; ++j) {
    int p = j;
    double pmax = std::fabs(a[j * n + j]);
    for (int i = j + 1; i < n; ++i) {
      const double v = std::fabs(a[i * n + j]);
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax == 0.0) return false;
    piv[j] = p;
    if (p != j) {
      for (int c = 0; c < n; ++c) std::swap(a[j * n + c], a[p * n + c]);
    }
    const double inv = 1.0 / a[j * n + j];
    for (int i = j + 1; i < n; ++i) {
      const double m = a[i * n + j] * inv;
      a[i * n + j] = m;
      for (int c = j + 1; c < n; ++c) a[i * n + c] -= m * a[j * n + c];
    }
  }
  return true;
}

void lu_solve(const double* lu, const int* piv, int n, double* b) {
  // The factorization swaps whole rows (LAPACK convention), so all row
  // interchanges must be applied to b before the triangular solves.
  for (int j = 0; j < n; ++j)
    if (piv[j] != j) std::swap(b[j], b[piv[j]]);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) b[i] -= lu[i * n + j] * b[j];
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int j = i + 1; j < n; ++j) s -= lu[i * n + j] * b[j];
    b[i] = s / lu[i * n + i];
  }
}

bool invert(double* a, int n) {
  std::vector<double> lu(a, a + static_cast<std::size_t>(n) * n);
  std::vector<int> piv(n);
  if (!lu_factor(lu.data(), n, piv.data())) return false;
  std::vector<double> col(n);
  for (int j = 0; j < n; ++j) {
    std::fill(col.begin(), col.end(), 0.0);
    col[j] = 1.0;
    lu_solve(lu.data(), piv.data(), n, col.data());
    for (int i = 0; i < n; ++i) a[i * n + j] = col[i];
  }
  return true;
}

bool BandedCholesky::factor(std::vector<double> band, int n, int kd) {
  TSEM_REQUIRE(static_cast<int>(band.size()) >= n * (kd + 1));
  n_ = n;
  kd_ = kd;
  l_ = std::move(band);
  const int w = kd + 1;
  for (int j = 0; j < n; ++j) {
    double d = l_[j * w + 0];
    const int l0 = std::max(0, j - kd);
    for (int l = l0; l < j; ++l) {
      const double v = l_[j * w + (j - l)];
      d -= v * v;
    }
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    l_[j * w + 0] = ljj;
    const int imax = std::min(n - 1, j + kd);
    for (int i = j + 1; i <= imax; ++i) {
      double s = l_[i * w + (i - j)];
      const int lo = std::max({0, i - kd, j - kd});
      for (int l = lo; l < j; ++l)
        s -= l_[i * w + (i - l)] * l_[j * w + (j - l)];
      l_[i * w + (i - j)] = s / ljj;
    }
  }
  return true;
}

void BandedCholesky::solve(double* b) const {
  const int w = kd_ + 1;
  for (int i = 0; i < n_; ++i) {
    double s = b[i];
    const int j0 = std::max(0, i - kd_);
    for (int j = j0; j < i; ++j) s -= l_[i * w + (i - j)] * b[j];
    b[i] = s / l_[i * w + 0];
  }
  for (int i = n_ - 1; i >= 0; --i) {
    double s = b[i];
    const int jmax = std::min(n_ - 1, i + kd_);
    for (int j = i + 1; j <= jmax; ++j) s -= l_[j * w + (j - i)] * b[j];
    b[i] = s / l_[i * w + 0];
  }
}

bool zlu_factor(Complex* a, int n, int* piv) {
  for (int j = 0; j < n; ++j) {
    int p = j;
    double pmax = std::abs(a[j * n + j]);
    for (int i = j + 1; i < n; ++i) {
      const double v = std::abs(a[i * n + j]);
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax == 0.0) return false;
    piv[j] = p;
    if (p != j) {
      for (int c = 0; c < n; ++c) std::swap(a[j * n + c], a[p * n + c]);
    }
    const Complex inv = 1.0 / a[j * n + j];
    for (int i = j + 1; i < n; ++i) {
      const Complex m = a[i * n + j] * inv;
      a[i * n + j] = m;
      for (int c = j + 1; c < n; ++c) a[i * n + c] -= m * a[j * n + c];
    }
  }
  return true;
}

void zlu_solve(const Complex* lu, const int* piv, int n, Complex* b) {
  for (int j = 0; j < n; ++j)
    if (piv[j] != j) std::swap(b[j], b[piv[j]]);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) b[i] -= lu[i * n + j] * b[j];
  for (int i = n - 1; i >= 0; --i) {
    Complex s = b[i];
    for (int j = i + 1; j < n; ++j) s -= lu[i * n + j] * b[j];
    b[i] = s / lu[i * n + i];
  }
}

namespace {

// One cyclic Jacobi sweep; returns the off-diagonal Frobenius norm before
// the sweep.
double jacobi_sweep(std::vector<double>& a, std::vector<double>& v, int n) {
  double off = 0.0;
  for (int p = 0; p < n - 1; ++p)
    for (int q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
  off = std::sqrt(2.0 * off);
  for (int p = 0; p < n - 1; ++p) {
    for (int q = p + 1; q < n; ++q) {
      const double apq = a[p * n + q];
      if (apq == 0.0) continue;
      const double tau = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
      const double t = (tau >= 0.0)
                           ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                           : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
      const double c = 1.0 / std::sqrt(1.0 + t * t);
      const double s = t * c;
      for (int r = 0; r < n; ++r) {
        const double arp = a[r * n + p];
        const double arq = a[r * n + q];
        a[r * n + p] = c * arp - s * arq;
        a[r * n + q] = s * arp + c * arq;
      }
      for (int cidx = 0; cidx < n; ++cidx) {
        const double apc = a[p * n + cidx];
        const double aqc = a[q * n + cidx];
        a[p * n + cidx] = c * apc - s * aqc;
        a[q * n + cidx] = s * apc + c * aqc;
      }
      for (int r = 0; r < n; ++r) {
        const double vrp = v[r * n + p];
        const double vrq = v[r * n + q];
        v[r * n + p] = c * vrp - s * vrq;
        v[r * n + q] = s * vrp + c * vrq;
      }
    }
  }
  return off;
}

}  // namespace

void sym_eig(const double* a, int n, std::vector<double>& eigvals,
             std::vector<double>& eigvecs) {
  std::vector<double> w(a, a + static_cast<std::size_t>(n) * n);
  eigvecs.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) eigvecs[i * n + i] = 1.0;

  double scale = 0.0;
  for (int i = 0; i < n; ++i) scale = std::max(scale, std::fabs(w[i * n + i]));
  scale = std::max(scale, 1e-300);
  for (int sweep = 0; sweep < 60; ++sweep) {
    if (jacobi_sweep(w, eigvecs, n) < 1e-15 * scale * n) break;
  }

  eigvals.resize(n);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    eigvals[i] = w[i * n + i];
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](int i, int j) {
    return w[i * n + i] < w[j * n + j];
  });
  std::vector<double> vals(n);
  std::vector<double> vecs(static_cast<std::size_t>(n) * n);
  for (int c = 0; c < n; ++c) {
    vals[c] = eigvals[order[c]];
    for (int r = 0; r < n; ++r) vecs[r * n + c] = eigvecs[r * n + order[c]];
  }
  eigvals = std::move(vals);
  eigvecs = std::move(vecs);
}

void generalized_sym_eig(const double* a, const double* b, int n,
                         std::vector<double>& eigvals,
                         std::vector<double>& eigvecs) {
  // B = L L^T, C = L^{-1} A L^{-T}; standard problem for C, then
  // z = L^{-T} y gives B-orthonormal generalized eigenvectors.
  std::vector<double> l(b, b + static_cast<std::size_t>(n) * n);
  TSEM_REQUIRE(cholesky_factor(l.data(), n));

  std::vector<double> c(a, a + static_cast<std::size_t>(n) * n);
  // C <- L^{-1} C: forward-substitute each column.
  for (int col = 0; col < n; ++col) {
    for (int i = 0; i < n; ++i) {
      double s = c[i * n + col];
      for (int j = 0; j < i; ++j) s -= l[i * n + j] * c[j * n + col];
      c[i * n + col] = s / l[i * n + i];
    }
  }
  // C <- C L^{-T}: forward-substitute each row (since (C L^{-T})^T =
  // L^{-1} C^T uses the same lower factor).
  for (int row = 0; row < n; ++row) {
    for (int i = 0; i < n; ++i) {
      double s = c[row * n + i];
      for (int j = 0; j < i; ++j) s -= l[i * n + j] * c[row * n + j];
      c[row * n + i] = s / l[i * n + i];
    }
  }

  sym_eig(c.data(), n, eigvals, eigvecs);

  // z_col = L^{-T} y_col (back substitution per column).
  for (int col = 0; col < n; ++col) {
    for (int i = n - 1; i >= 0; --i) {
      double s = eigvecs[i * n + col];
      for (int j = i + 1; j < n; ++j) s -= l[j * n + i] * eigvecs[j * n + col];
      eigvecs[i * n + col] = s / l[i * n + i];
    }
  }
}

bool tridiag_eig(std::vector<double>& d, std::vector<double>& e,
                 std::vector<double>& z, int n) {
  // EISPACK tql2: implicit QL with Wilkinson shifts.
  if (n == 1) return true;
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-16 * dd) break;
      }
      if (m != l) {
        if (iter++ == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (int i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = z[k * n + i + 1];
            z[k * n + i + 1] = s * z[k * n + i] + c * f;
            z[k * n + i] = c * z[k * n + i] - s * f;
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  // Sort ascending, permuting columns of z.
  for (int i = 0; i < n - 1; ++i) {
    int kmin = i;
    for (int j = i + 1; j < n; ++j)
      if (d[j] < d[kmin]) kmin = j;
    if (kmin != i) {
      std::swap(d[kmin], d[i]);
      for (int r = 0; r < n; ++r) std::swap(z[r * n + kmin], z[r * n + i]);
    }
  }
  return true;
}

}  // namespace tsem
