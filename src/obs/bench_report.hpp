// Uniform machine-readable bench output: every bench_* harness builds one
// BenchReport and writes BENCH_<name>.json next to the binary (or into
// $TSEM_BENCH_DIR when set), so perf runs are diffable across PRs.
//
// Schema "terasem-bench-1":
//   {
//     "schema": "terasem-bench-1",
//     "name": "<bench name>",
//     "meta": { ... free-form run configuration ... },
//     "cases": [ { "name": ..., "wall_seconds": ..., "sim_seconds": ...,
//                  "flops": ..., "mflops": ..., "iterations": ..., ... } ],
//     "metrics": { "counters": {...}, "stats": {...}, "events": [...],
//                  "events_dropped": n }
//   }
// Per-case keys beyond "name" are bench-specific; wall_seconds always
// means measured wall clock, sim_seconds always means a sim::Machine
// model prediction (the two are never mixed in one key).  "metrics" is
// the MetricsRegistry snapshot at write() time.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace tsem::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Free-form run configuration (sizes, flags, machine model name, ...).
  Json& meta() { return meta_; }

  /// Append one case object; fill in its fields through the returned
  /// reference.  "name" is pre-set.
  Json& add_case(std::string_view case_name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t case_count() const { return cases_.size(); }

  /// Assemble the full document, including the current MetricsRegistry
  /// snapshot under "metrics".
  [[nodiscard]] Json to_json() const;

  /// Where write() will put the file: $TSEM_BENCH_DIR/BENCH_<name>.json
  /// when the env var is set, else ./BENCH_<name>.json.
  [[nodiscard]] std::string output_path() const;

  /// Write the report (pretty-printed).  Returns the path written, or an
  /// empty string on I/O failure (reported to stderr; benches should not
  /// die over a report).
  std::string write() const;

 private:
  std::string name_;
  Json meta_ = Json::object();
  Json cases_ = Json::array();
};

}  // namespace tsem::obs
