#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tsem::obs {

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::Null) type_ = Type::Object;
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  items_.push_back(std::move(v));
  return items_.back();
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; see json.hpp
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  // Keep a Double a double through a parse cycle: "3" would re-parse as
  // an Int, so force a decimal point onto bare integral output.
  if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos)
    out += ".0";
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Int: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::Double:
      write_double(out, dbl_);
      break;
    case Type::String:
      write_escaped(out, str_);
      break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ",";
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ",";
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---- parser -----------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  std::size_t err_pos = 0;

  bool fail(const std::string& what) {
    if (err.empty()) {
      err = what;
      err_pos = pos;
    }
    return false;
  }

  bool expect(char c) {
    if (at_end() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_literal(std::string_view lit, Json value, Json* out) {
    if (text.substr(pos, lit.size()) != lit) return fail("bad literal");
    pos += lit.size();
    *out = std::move(value);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    std::string s;
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') break;
      if (c == '\\') {
        if (at_end()) return fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs are not produced by
            // our writer and are rejected here).
            if (code >= 0xD800 && code <= 0xDFFF)
              return fail("surrogate \\u escape unsupported");
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        s += c;
      }
    }
    *out = std::move(s);
    return true;
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (!at_end() && text[pos] == '-') ++pos;
    while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    bool is_double = false;
    if (!at_end() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!at_end() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (!at_end() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-'))
      return fail("bad number");
    const std::string tok(text.substr(start, pos - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        *out = static_cast<std::int64_t>(v);
        return true;
      }
      // Integer overflow: fall through to double.
    }
    *out = std::strtod(tok.c_str(), nullptr);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > 200) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return parse_literal("null", Json(), out);
      case 't': return parse_literal("true", Json(true), out);
      case 'f': return parse_literal("false", Json(false), out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = std::move(s);
        return true;
      }
      case '[': {
        ++pos;
        *out = Json::array();
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
          return true;
        }
        while (true) {
          Json item;
          if (!parse_value(&item, depth + 1)) return false;
          out->push_back(std::move(item));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        *out = Json::object();
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!expect(':')) return false;
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          (*out)[key] = std::move(value);
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

std::string Json::ParseError::to_string() const {
  return message + " at line " + std::to_string(line) + ", column " +
         std::to_string(column) + " (offset " + std::to_string(offset) + ")";
}

namespace {

Json::ParseError locate_error(std::string_view text, std::size_t offset,
                              std::string message) {
  Json::ParseError e;
  e.offset = offset;
  e.message = std::move(message);
  const std::size_t stop = std::min(offset, text.size());
  for (std::size_t i = 0; i < stop; ++i) {
    if (text[i] == '\n') {
      ++e.line;
      e.column = 1;
    } else {
      ++e.column;
    }
  }
  return e;
}

}  // namespace

bool Json::parse(std::string_view text, Json* out, ParseError* err) {
  Parser p;
  p.text = text;
  Json result;
  if (!p.parse_value(&result, 0)) {
    if (err) *err = locate_error(text, p.err_pos, p.err);
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (err) *err = locate_error(text, p.pos, "trailing characters");
    return false;
  }
  *out = std::move(result);
  return true;
}

bool Json::parse(std::string_view text, Json* out, std::string* err) {
  ParseError e;
  if (parse(text, out, &e)) return true;
  if (err) *err = e.to_string();
  return false;
}

bool Json::parse_file(const std::string& path, Json* out, ParseError* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = ParseError{0, 1, 1, "cannot open " + path};
    return false;
  }
  std::string text;
  char buf[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    text.append(buf, got);
  const bool read_failed = std::ferror(f) != 0;
  std::fclose(f);
  if (read_failed) {
    if (err) *err = ParseError{0, 1, 1, "cannot read " + path};
    return false;
  }
  ParseError e;
  if (parse(text, out, &e)) return true;
  if (err) {
    e.message = path + ": " + e.message;
    *err = e;
  }
  return false;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Int: return a.int_ == b.int_;
    case Json::Type::Double: return a.dbl_ == b.dbl_;
    case Json::Type::String: return a.str_ == b.str_;
    case Json::Type::Array: return a.items_ == b.items_;
    case Json::Type::Object: return a.members_ == b.members_;
  }
  return false;
}

}  // namespace tsem::obs
