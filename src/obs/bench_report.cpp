#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"

namespace tsem::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

Json& BenchReport::add_case(std::string_view case_name) {
  Json c = Json::object();
  c["name"] = std::string(case_name);
  return cases_.push_back(std::move(c));
}

Json BenchReport::to_json() const {
  Json j = Json::object();
  j["schema"] = "terasem-bench-1";
  j["name"] = name_;
  j["meta"] = meta_;
  j["cases"] = cases_;
  j["metrics"] = MetricsRegistry::instance().snapshot();
  return j;
}

std::string BenchReport::output_path() const {
  std::string dir = ".";
  if (const char* env = std::getenv("TSEM_BENCH_DIR"); env && *env) dir = env;
  return dir + "/BENCH_" + name_ + ".json";
}

std::string BenchReport::write() const {
  const std::string path = output_path();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return {};
  }
  out << to_json().dump(2) << '\n';
  if (!out) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
    return {};
  }
  return path;
}

}  // namespace tsem::obs
