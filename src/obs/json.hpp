// Minimal dependency-free JSON document model for the observability layer.
//
// Covers exactly what the BENCH_*.json reports and the metrics snapshots
// need: the seven JSON value kinds, insertion-ordered objects (so reports
// diff cleanly across runs), a writer, and a strict parser used by the
// round-trip tests.  Integers are kept apart from doubles so counter
// values survive a dump/parse cycle exactly; non-finite doubles serialize
// as null (JSON has no NaN/Inf) and the schema documents that convention.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsem::obs {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}             // NOLINT(google-explicit-constructor)
  Json(int v) : type_(Type::Int), int_(v) {}                // NOLINT
  Json(std::int64_t v) : type_(Type::Int), int_(v) {}       // NOLINT
  Json(std::size_t v)                                       // NOLINT
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), dbl_(v) {}          // NOLINT
  Json(const char* s) : type_(Type::String), str_(s) {}     // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return type_ == Type::Double ? static_cast<std::int64_t>(dbl_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return type_ == Type::Int ? static_cast<double>(int_) : dbl_;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Object access: inserts a null member on first use (object-typed
  /// values only; a fresh Null value is promoted to an object).
  Json& operator[](std::string_view key);
  /// Lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array append (a fresh Null value is promoted to an array).
  Json& push_back(Json v);

  [[nodiscard]] std::size_t size() const {
    return type_ == Type::Array ? items_.size()
                                : (type_ == Type::Object ? members_.size() : 0);
  }
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  /// Serialize.  indent = 0 emits a compact single line; indent > 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Structured syntax-error report.  The supervisor-facing parse entry
  /// points never assert or invoke UB on malformed bytes: any truncated,
  /// bit-flipped, or garbage input produces one of these instead (the
  /// fleet supervisor routinely reads files a SIGKILLed worker left
  /// half-written).
  struct ParseError {
    std::size_t offset = 0;  ///< byte offset of the defect
    int line = 1;            ///< 1-based line of the defect
    int column = 1;          ///< 1-based column of the defect
    std::string message;     ///< what was expected / found
    /// "message at line L, column C (offset O)".
    [[nodiscard]] std::string to_string() const;
  };

  /// Strict recursive-descent parse of a complete JSON document.  Returns
  /// false (with *err set when provided) on any syntax error or trailing
  /// garbage.
  static bool parse(std::string_view text, Json* out,
                    std::string* err = nullptr);
  /// Same, with a structured error (position + message) instead of a
  /// formatted string.
  static bool parse(std::string_view text, Json* out, ParseError* err);
  /// Read and parse a whole file.  A missing/unreadable file reports a
  /// ParseError with offset 0 and a "cannot open/read" message.
  static bool parse_file(const std::string& path, Json* out,
                         ParseError* err = nullptr);

  /// Structural equality (Int and Double compare as distinct types).
  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                             // Array
  std::vector<std::pair<std::string, Json>> members_;   // Object (ordered)
};

}  // namespace tsem::obs
