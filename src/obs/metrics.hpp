// Process-wide metrics registry: named counters, value histograms
// (summary statistics), RAII phase timers, and a bounded structured-event
// trace.  This is the observability spine the paper's quantitative
// evaluation needs — per-solve iteration counts, per-phase times, and
// communication volumes, all exportable as JSON for the BENCH_*.json
// reports (obs/bench_report.hpp).
//
// Naming scheme: `phase/subphase` slash-separated labels, lowercase
// (e.g. "pcg/iterations", "schwarz/apply/local", "xxt/solve").  Wall-clock
// phase timings live under "time/<phase path>" and are seconds; anything
// derived from the simulated machine (sim/machine.hpp) is *never* written
// into the registry — simulated times appear only in bench report cases,
// tagged `sim_seconds` (see DESIGN.md "Observability").
//
// Threading: counters are relaxed atomics; histograms and the event trace
// take a short mutex.  Instrumentation sites sit outside the OpenMP
// element loops (per solve / per apply / per step), so contention is nil.
//
// Compile-out: configuring with -DTSEM_OBS=OFF defines TSEM_OBS_DISABLED,
// which turns every record/emit below into a no-op the optimizer deletes
// (the registry API itself stays so code always compiles).  enabled()
// reports which build this is.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace tsem::obs {

#ifdef TSEM_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// True when the instrumentation layer is compiled in (TSEM_OBS=ON).
constexpr bool enabled() { return kEnabled; }

/// Monotonically increasing named count (events, iterations, words).
class Counter {
 public:
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Streaming summary histogram: count / sum / min / max / mean.
class Histogram {
 public:
  void record(double x);
  [[nodiscard]] std::int64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  void reset();
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mu_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create; returned references stay valid for the process
  /// lifetime (node-based storage).
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Append a structured event (a Json object) to the bounded trace.
  /// When the trace is full the OLDEST event is dropped (the recent past
  /// is what post-mortems want) and events_dropped grows.
  void emit(Json event);
  void set_max_events(std::size_t n);
  [[nodiscard]] std::size_t max_events() const;
  [[nodiscard]] std::int64_t events_dropped() const;

  /// Full dump: {"counters": {...}, "histograms": {...},
  /// "events": [...], "events_dropped": n}.
  [[nodiscard]] Json snapshot() const;

  /// Zero every counter/histogram and clear the trace (tests, and bench
  /// harnesses that want per-phase registry deltas).
  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::deque<Json> events_;
  std::size_t max_events_ = 4096;
  std::int64_t events_dropped_ = 0;
};

// ---- convenience free functions (no-ops when compiled out) ------------

inline void count(std::string_view name, std::int64_t d = 1) {
  if constexpr (kEnabled) MetricsRegistry::instance().counter(name).add(d);
}

inline void record(std::string_view name, double value) {
  if constexpr (kEnabled)
    MetricsRegistry::instance().histogram(name).record(value);
}

inline void emit_event(Json event) {
  if constexpr (kEnabled)
    MetricsRegistry::instance().emit(std::move(event));
}

/// One iterative-solve record: bumps `<which>/solves`,
/// `<which>/iterations` (counter + histogram), `<which>/status/<status>`,
/// and the residual histograms.
void record_solve(std::string_view which, int iterations,
                  double initial_residual, double final_residual,
                  const char* status);

/// RAII wall-clock phase timer.  Labels nest through a thread-local phase
/// stack: a ScopedTimer("apply") inside a ScopedTimer("schwarz") records
/// seconds into the histogram "time/schwarz/apply".
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at destruction (for back-to-back phases in one
  /// scope).  Timers must stop in LIFO order relative to any nested ones.
  void stop();

  /// Seconds elapsed so far (0 when compiled out).
  [[nodiscard]] double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_{};
  bool stopped_ = false;
};

}  // namespace tsem::obs
