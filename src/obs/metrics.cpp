#include "obs/metrics.hpp"

#include <limits>
#include <utility>
#include <vector>

namespace tsem::obs {

void Histogram::record(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Json Histogram::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["min"] = min_;
  j["max"] = max_;
  j["mean"] = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  return j;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::emit(Json event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    events_.pop_front();
    ++events_dropped_;
  }
  events_.push_back(std::move(event));
}

void MetricsRegistry::set_max_events(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_events_ = n;
  while (events_.size() > max_events_) {
    events_.pop_front();
    ++events_dropped_;
  }
}

std::size_t MetricsRegistry::max_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_events_;
}

std::int64_t MetricsRegistry::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_dropped_;
}

Json MetricsRegistry::snapshot() const {
  // Copy name lists under the lock, then read each metric through its own
  // synchronization (counter loads / histogram locks) so snapshot never
  // holds the registry mutex while formatting.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  Json events = Json::array();
  std::int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
    for (const auto& e : events_) events.push_back(e);
    dropped = events_dropped_;
  }
  Json j = Json::object();
  Json& jc = (j["counters"] = Json::object());
  for (const auto& [name, c] : counters) jc[name] = c->value();
  Json& jh = (j["stats"] = Json::object());
  for (const auto& [name, h] : histograms) jh[name] = h->to_json();
  j["events"] = std::move(events);
  j["events_dropped"] = dropped;
  return j;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
  events_.clear();
  events_dropped_ = 0;
}

void record_solve(std::string_view which, int iterations,
                  double initial_residual, double final_residual,
                  const char* status) {
  if constexpr (!kEnabled) {
    (void)which;
    (void)iterations;
    (void)initial_residual;
    (void)final_residual;
    (void)status;
    return;
  }
  const std::string base(which);
  auto& reg = MetricsRegistry::instance();
  reg.counter(base + "/solves").increment();
  reg.counter(base + "/iterations").add(iterations);
  reg.histogram(base + "/iterations").record(iterations);
  reg.histogram(base + "/residual/initial").record(initial_residual);
  reg.histogram(base + "/residual/final").record(final_residual);
  reg.counter(base + "/status/" + status).increment();
}

namespace {

// Thread-local nesting stack for ScopedTimer labels, e.g.
// "time/schwarz/apply" from ScopedTimer("apply") inside
// ScopedTimer("schwarz").
thread_local std::vector<std::string> g_phase_stack;  // NOLINT

}  // namespace

ScopedTimer::ScopedTimer(const char* label) {
  if constexpr (!kEnabled) {
    (void)label;
    return;
  }
  if (g_phase_stack.empty())
    g_phase_stack.emplace_back(label);
  else
    g_phase_stack.push_back(g_phase_stack.back() + "/" + label);
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if constexpr (!kEnabled) return;
  if (!stopped_) stop();
}

void ScopedTimer::stop() {
  if constexpr (!kEnabled) return;
  if (stopped_) return;
  stopped_ = true;
  const double s = seconds();
  MetricsRegistry::instance()
      .histogram("time/" + g_phase_stack.back())
      .record(s);
  g_phase_stack.pop_back();
}

double ScopedTimer::seconds() const {
  if constexpr (!kEnabled) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace tsem::obs
