// Minimal CSR sparse matrix used by the coarse-grid solvers and the
// partitioner.  Built from triplets; duplicate entries are summed.
#pragma once

#include <cstdint>
#include <vector>

namespace tsem {

struct Triplet {
  std::int32_t row;
  std::int32_t col;
  double val;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int n, std::vector<Triplet> triplets);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::size_t nnz() const { return val_.size(); }

  void matvec(const double* x, double* y) const;

  [[nodiscard]] const std::vector<std::int32_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& col() const { return col_; }
  [[nodiscard]] const std::vector<double>& val() const { return val_; }

  /// Dense copy (small systems only).
  [[nodiscard]] std::vector<double> to_dense() const;

  /// y = A e_j as a sparse column: returns (row, value) pairs.  Symmetric
  /// matrices only need row j.
  void column(int j, std::vector<std::pair<std::int32_t, double>>& out) const;

 private:
  int n_ = 0;
  std::vector<std::int32_t> row_ptr_;
  std::vector<std::int32_t> col_;
  std::vector<double> val_;
};

}  // namespace tsem
