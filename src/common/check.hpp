// Lightweight precondition / invariant checking for terasem.
//
// TSEM_REQUIRE is used for API preconditions that must hold in all build
// types (mesh/solver setup paths, not inner loops); TSEM_ASSERT compiles
// away in release builds and may be used in hot kernels.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tsem {

[[noreturn]] inline void check_fail(const char* what, const char* expr,
                                    const char* file, int line) {
  std::fprintf(stderr, "terasem: %s failed: %s (%s:%d)\n", what, expr, file,
               line);
  std::abort();
}

}  // namespace tsem

#define TSEM_REQUIRE(expr)                                            \
  do {                                                                \
    if (!(expr))                                                      \
      ::tsem::check_fail("requirement", #expr, __FILE__, __LINE__);   \
  } while (0)

#ifdef NDEBUG
#define TSEM_ASSERT(expr) ((void)0)
#else
#define TSEM_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr))                                                      \
      ::tsem::check_fail("assertion", #expr, __FILE__, __LINE__);     \
  } while (0)
#endif
