#include "common/csr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tsem {

CsrMatrix::CsrMatrix(int n, std::vector<Triplet> triplets) : n_(n) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row < b.row || (a.row == b.row && a.col < b.col);
            });
  row_ptr_.assign(n + 1, 0);
  std::size_t i = 0;
  while (i < triplets.size()) {
    std::size_t j = i;
    double s = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      s += triplets[j].val;
      ++j;
    }
    TSEM_REQUIRE(triplets[i].row >= 0 && triplets[i].row < n);
    TSEM_REQUIRE(triplets[i].col >= 0 && triplets[i].col < n);
    col_.push_back(triplets[i].col);
    val_.push_back(s);
    ++row_ptr_[triplets[i].row + 1];
    i = j;
  }
  for (int r = 0; r < n; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

void CsrMatrix::matvec(const double* x, double* y) const {
  for (int r = 0; r < n_; ++r) {
    double s = 0.0;
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += val_[k] * x[col_[k]];
    y[r] = s;
  }
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> d(static_cast<std::size_t>(n_) * n_, 0.0);
  for (int r = 0; r < n_; ++r)
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      d[static_cast<std::size_t>(r) * n_ + col_[k]] += val_[k];
  return d;
}

void CsrMatrix::column(
    int j, std::vector<std::pair<std::int32_t, double>>& out) const {
  out.clear();
  for (std::int32_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k)
    out.emplace_back(col_[k], val_[k]);
}

}  // namespace tsem
