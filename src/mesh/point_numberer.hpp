// Stable geometric point numbering: merges points that coincide to within
// an absolute tolerance.  Used for C0 node numbering, vertex numbering,
// and the Schwarz ghost-exchange face anchors.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tsem {

/// Quantized spatial hash with neighbor-cell probing, so coincident points
/// straddling a cell boundary are still merged.
class PointNumberer {
 public:
  PointNumberer(double cell, double tol) : cell_(cell), tol2_(tol * tol) {}

  std::int64_t id_of(double x, double y, double z) {
    const std::array<double, 3> p{x, y, z};
    const long cx = cell_index(x), cy = cell_index(y), cz = cell_index(z);
    for (long dx = -1; dx <= 1; ++dx)
      for (long dy = -1; dy <= 1; ++dy)
        for (long dz = -1; dz <= 1; ++dz) {
          const auto it = cells_.find(key(cx + dx, cy + dy, cz + dz));
          if (it == cells_.end()) continue;
          for (const auto& [q, id] : it->second) {
            const double d2 = (p[0] - q[0]) * (p[0] - q[0]) +
                              (p[1] - q[1]) * (p[1] - q[1]) +
                              (p[2] - q[2]) * (p[2] - q[2]);
            if (d2 <= tol2_) return id;
          }
        }
    const std::int64_t id = next_++;
    cells_[key(cx, cy, cz)].emplace_back(p, id);
    return id;
  }

  [[nodiscard]] std::int64_t count() const { return next_; }

 private:
  [[nodiscard]] long cell_index(double v) const {
    return static_cast<long>(std::floor(v / cell_));
  }
  static std::uint64_t key(long a, long b, long c) {
    const auto h = [](long v) {
      return static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ull;
    };
    return h(a) ^ (h(b) << 21 | h(b) >> 43) ^ (h(c) << 42 | h(c) >> 22);
  }

  double cell_;
  double tol2_;
  std::int64_t next_ = 0;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::array<double, 3>, std::int64_t>>>
      cells_;
};

}  // namespace tsem
