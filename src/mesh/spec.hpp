// Mesh specifications: a pre-discretization description of a domain as a
// collection of analytically mapped elements.
//
// Each element is a smooth map from the reference square/cube [-1,1]^d.
// Refinement (the paper's quad-/oct-refinement used to generate the
// Table 2 and §7 meshes) composes the parent map with an affine reference
// sub-cell map, so curved geometry stays exact under refinement.
#pragma once

#include <array>
#include <functional>
#include <vector>

namespace tsem {

using MapFn2D = std::function<std::array<double, 2>(double r, double s)>;
using MapFn3D =
    std::function<std::array<double, 3>(double r, double s, double t)>;

/// Classifies a boundary face by its centroid; returns a tag in [0, 32).
using BoundaryClassifier =
    std::function<int(double x, double y, double z)>;

struct MeshSpec2D {
  std::vector<MapFn2D> elems;
  BoundaryClassifier classify;  ///< optional; default tag 0 for all faces
  /// Periodic directions: nodes at coordinate hi are identified with lo.
  bool periodic_x = false, periodic_y = false;
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
};

struct MeshSpec3D {
  std::vector<MapFn3D> elems;
  BoundaryClassifier classify;
  bool periodic_x = false, periodic_y = false, periodic_z = false;
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0, z_lo = 0, z_hi = 0;
};

/// Split every element into 4 (2D) children in reference space.
MeshSpec2D quad_refine(const MeshSpec2D& spec);
/// Split every element into 8 (3D) children in reference space.
MeshSpec3D oct_refine(const MeshSpec3D& spec);

// ---- canonical domains -----------------------------------------------------

/// Tensor box with prescribed breakpoints (elements kx = xs.size()-1 etc).
MeshSpec2D box_spec_2d(const std::vector<double>& xs,
                       const std::vector<double>& ys);
MeshSpec3D box_spec_3d(const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       const std::vector<double>& zs);

/// Uniform breakpoints helper.
std::vector<double> linspace(double lo, double hi, int nseg);
/// Geometrically graded breakpoints (ratio r between successive widths).
std::vector<double> geomspace(double lo, double hi, int nseg, double ratio);

/// Annulus between radii r0 < r1 with kr radial (geometrically graded
/// toward r0, grading `ratio`) and kt azimuthal elements; exact circular
/// arcs.  Stands in for the paper's cylinder-wake mesh: thin high-aspect
/// elements near the inner circle.  Boundary tags: 0 inner, 1 outer.
MeshSpec2D annulus_spec(double r0, double r1, int kr, int kt, double ratio);

/// 3D channel [0,Lx]x[0,Ly]x[0,Lz] with a smooth wall bump (hemispherical
/// roughness stand-in) of height h and radius rad centered at (cx, cy) on
/// the z=0 wall.  Used by the hairpin-mini experiment.
MeshSpec3D bump_channel_spec(const std::vector<double>& xs,
                             const std::vector<double>& ys,
                             const std::vector<double>& zs, double cx,
                             double cy, double rad, double h);

// Standard boundary tags produced by the box classifiers.
enum BoxFace : int {
  kFaceXLo = 0,
  kFaceXHi = 1,
  kFaceYLo = 2,
  kFaceYHi = 3,
  kFaceZLo = 4,
  kFaceZHi = 5,
};

}  // namespace tsem
