// Discretize a MeshSpec into a Mesh at a given polynomial order.
#pragma once

#include "mesh/mesh.hpp"
#include "mesh/spec.hpp"

namespace tsem {

Mesh build_mesh(const MeshSpec2D& spec, int order);
Mesh build_mesh(const MeshSpec3D& spec, int order);

}  // namespace tsem
