#include "mesh/build.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/check.hpp"
#include "mesh/point_numberer.hpp"
#include "poly/basis1d.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {
namespace {

double wrap(double v, bool periodic, double lo, double hi, double tol) {
  if (periodic && std::fabs(v - hi) < tol) return lo;
  return v;
}

struct BBox {
  double diag = 0.0;
};

BBox bbox_of(const std::vector<double>& x, const std::vector<double>& y,
             const std::vector<double>& z) {
  double lo[3] = {1e300, 1e300, 1e300}, hi[3] = {-1e300, -1e300, -1e300};
  for (std::size_t i = 0; i < x.size(); ++i) {
    lo[0] = std::min(lo[0], x[i]);
    hi[0] = std::max(hi[0], x[i]);
    lo[1] = std::min(lo[1], y[i]);
    hi[1] = std::max(hi[1], y[i]);
    if (!z.empty()) {
      lo[2] = std::min(lo[2], z[i]);
      hi[2] = std::max(hi[2], z[i]);
    }
  }
  const double dz = z.empty() ? 0.0 : hi[2] - lo[2];
  return {std::sqrt((hi[0] - lo[0]) * (hi[0] - lo[0]) +
                    (hi[1] - lo[1]) * (hi[1] - lo[1]) + dz * dz)};
}

}  // namespace

double Mesh::bbox_diag() const { return bbox_of(x, y, z).diag; }

Mesh build_mesh(const MeshSpec2D& spec, int order) {
  TSEM_REQUIRE(!spec.elems.empty());
  TSEM_REQUIRE(order >= 2);
  Mesh m;
  m.dim = 2;
  m.order = order;
  m.nelem = static_cast<int>(spec.elems.size());
  const int n1 = order + 1;
  m.npe = n1 * n1;
  const std::size_t nl = m.nlocal();
  const auto& basis = Basis1D::get(order);

  m.x.resize(nl);
  m.y.resize(nl);
  for (int e = 0; e < m.nelem; ++e) {
    const auto& map = spec.elems[e];
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i) {
        const auto p = map(basis.z[i], basis.z[j]);
        const std::size_t idx = static_cast<std::size_t>(e) * m.npe + j * n1 + i;
        m.x[idx] = p[0];
        m.y[idx] = p[1];
      }
  }

  const double diag = bbox_of(m.x, m.y, m.z).diag;
  const double tol = 1e-8 * diag;
  const double cell = 1e-5 * diag;

  // ---- C0 global numbering (with periodic identification) ----
  m.node_id.resize(nl);
  {
    PointNumberer num(cell, tol);
    const double ptol_x = 1e-8 * (spec.x_hi - spec.x_lo + diag);
    const double ptol_y = 1e-8 * (spec.y_hi - spec.y_lo + diag);
    for (std::size_t i = 0; i < nl; ++i) {
      const double xx =
          wrap(m.x[i], spec.periodic_x, spec.x_lo, spec.x_hi, ptol_x);
      const double yy =
          wrap(m.y[i], spec.periodic_y, spec.y_lo, spec.y_hi, ptol_y);
      m.node_id[i] = num.id_of(xx, yy, 0.0);
    }
    m.nglob = num.count();
  }

  // ---- corner-vertex numbering ----
  m.vert_id.resize(static_cast<std::size_t>(m.nelem) * 4);
  {
    PointNumberer num(cell, tol);
    const double ptol_x = 1e-8 * (spec.x_hi - spec.x_lo + diag);
    const double ptol_y = 1e-8 * (spec.y_hi - spec.y_lo + diag);
    for (int e = 0; e < m.nelem; ++e) {
      for (int b = 0; b < 2; ++b)
        for (int a = 0; a < 2; ++a) {
          const std::size_t idx =
              static_cast<std::size_t>(e) * m.npe + (b * order) * n1 + a * order;
          const double xx =
              wrap(m.x[idx], spec.periodic_x, spec.x_lo, spec.x_hi, ptol_x);
          const double yy =
              wrap(m.y[idx], spec.periodic_y, spec.y_lo, spec.y_hi, ptol_y);
          m.vert_id[e * 4 + b * 2 + a] = num.id_of(xx, yy, 0.0);
        }
    }
    m.nvert = num.count();
  }

  // ---- metrics and geometric factors ----
  m.jac.resize(nl);
  m.bm.resize(nl);
  m.g.resize(3 * nl);
  m.drdx.resize(4 * nl);
  std::vector<double> xr(m.npe), xs(m.npe), yr(m.npe), ys(m.npe);
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    tensor2_apply_x(basis.d.data(), n1, n1, m.x.data() + off, xr.data());
    tensor2_apply_y(basis.d.data(), n1, n1, m.x.data() + off, xs.data());
    tensor2_apply_x(basis.d.data(), n1, n1, m.y.data() + off, yr.data());
    tensor2_apply_y(basis.d.data(), n1, n1, m.y.data() + off, ys.data());
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i) {
        const int n = j * n1 + i;
        const double jac = xr[n] * ys[n] - xs[n] * yr[n];
        TSEM_REQUIRE(jac > 0.0);
        const double rx = ys[n] / jac, ry = -xs[n] / jac;
        const double sx = -yr[n] / jac, sy = xr[n] / jac;
        const double w = basis.w[i] * basis.w[j];
        m.jac[off + n] = jac;
        m.bm[off + n] = w * jac;
        m.g[0 * nl + off + n] = w * jac * (rx * rx + ry * ry);
        m.g[1 * nl + off + n] = w * jac * (rx * sx + ry * sy);
        m.g[2 * nl + off + n] = w * jac * (sx * sx + sy * sy);
        m.drdx[0 * nl + off + n] = rx;
        m.drdx[1 * nl + off + n] = ry;
        m.drdx[2 * nl + off + n] = sx;
        m.drdx[3 * nl + off + n] = sy;
      }
  }

  // ---- boundary faces ----
  m.bdry_bits.assign(nl, 0u);
  // Face key = sorted pair of corner vertex ids; faces seen once are
  // physical boundary.
  std::map<std::pair<std::int64_t, std::int64_t>, int> face_count;
  auto face_key = [&](int e, int f) {
    // f: 0 = s-lo, 1 = r-hi, 2 = s-hi, 3 = r-lo
    const std::int64_t* v = &m.vert_id[static_cast<std::size_t>(e) * 4];
    std::int64_t a, b;
    switch (f) {
      case 0: a = v[0]; b = v[1]; break;
      case 1: a = v[1]; b = v[3]; break;
      case 2: a = v[2]; b = v[3]; break;
      default: a = v[0]; b = v[2]; break;
    }
    if (a > b) std::swap(a, b);
    return std::make_pair(a, b);
  };
  for (int e = 0; e < m.nelem; ++e)
    for (int f = 0; f < 4; ++f) ++face_count[face_key(e, f)];
  auto face_nodes = [&](int e, int f, auto&& fn) {
    for (int q = 0; q < n1; ++q) {
      int i, j;
      switch (f) {
        case 0: i = q; j = 0; break;
        case 1: i = order; j = q; break;
        case 2: i = q; j = order; break;
        default: i = 0; j = q; break;
      }
      fn(static_cast<std::size_t>(e) * m.npe + j * n1 + i);
    }
  };
  for (int e = 0; e < m.nelem; ++e) {
    for (int f = 0; f < 4; ++f) {
      if (face_count[face_key(e, f)] != 1) continue;
      // Centroid of the face (mean of its nodes).
      double cx = 0, cy = 0;
      face_nodes(e, f, [&](std::size_t idx) {
        cx += m.x[idx];
        cy += m.y[idx];
      });
      cx /= n1;
      cy /= n1;
      const int tag = spec.classify ? spec.classify(cx, cy, 0.0) : 0;
      TSEM_REQUIRE(tag >= 0 && tag < 32);
      face_nodes(e, f,
                 [&](std::size_t idx) { m.bdry_bits[idx] |= 1u << tag; });
    }
  }

  return m;
}

Mesh build_mesh(const MeshSpec3D& spec, int order) {
  TSEM_REQUIRE(!spec.elems.empty());
  TSEM_REQUIRE(order >= 2);
  Mesh m;
  m.dim = 3;
  m.order = order;
  m.nelem = static_cast<int>(spec.elems.size());
  const int n1 = order + 1;
  m.npe = n1 * n1 * n1;
  const std::size_t nl = m.nlocal();
  const auto& basis = Basis1D::get(order);

  m.x.resize(nl);
  m.y.resize(nl);
  m.z.resize(nl);
  for (int e = 0; e < m.nelem; ++e) {
    const auto& map = spec.elems[e];
    for (int k = 0; k < n1; ++k)
      for (int j = 0; j < n1; ++j)
        for (int i = 0; i < n1; ++i) {
          const auto p = map(basis.z[i], basis.z[j], basis.z[k]);
          const std::size_t idx = static_cast<std::size_t>(e) * m.npe +
                                  (static_cast<std::size_t>(k) * n1 + j) * n1 +
                                  i;
          m.x[idx] = p[0];
          m.y[idx] = p[1];
          m.z[idx] = p[2];
        }
  }

  const double diag = bbox_of(m.x, m.y, m.z).diag;
  const double tol = 1e-8 * diag;
  const double cell = 1e-5 * diag;
  const double ptx = 1e-8 * (spec.x_hi - spec.x_lo + diag);
  const double pty = 1e-8 * (spec.y_hi - spec.y_lo + diag);
  const double ptz = 1e-8 * (spec.z_hi - spec.z_lo + diag);

  auto wrapped = [&](std::size_t idx) {
    return std::array<double, 3>{
        wrap(m.x[idx], spec.periodic_x, spec.x_lo, spec.x_hi, ptx),
        wrap(m.y[idx], spec.periodic_y, spec.y_lo, spec.y_hi, pty),
        wrap(m.z[idx], spec.periodic_z, spec.z_lo, spec.z_hi, ptz)};
  };

  m.node_id.resize(nl);
  {
    PointNumberer num(cell, tol);
    for (std::size_t i = 0; i < nl; ++i) {
      const auto p = wrapped(i);
      m.node_id[i] = num.id_of(p[0], p[1], p[2]);
    }
    m.nglob = num.count();
  }

  m.vert_id.resize(static_cast<std::size_t>(m.nelem) * 8);
  {
    PointNumberer num(cell, tol);
    for (int e = 0; e < m.nelem; ++e) {
      for (int c = 0; c < 2; ++c)
        for (int b = 0; b < 2; ++b)
          for (int a = 0; a < 2; ++a) {
            const std::size_t idx =
                static_cast<std::size_t>(e) * m.npe +
                (static_cast<std::size_t>(c * order) * n1 + b * order) * n1 +
                a * order;
            const auto p = wrapped(idx);
            m.vert_id[e * 8 + (c * 2 + b) * 2 + a] =
                num.id_of(p[0], p[1], p[2]);
          }
    }
    m.nvert = num.count();
  }

  // ---- metrics ----
  m.jac.resize(nl);
  m.bm.resize(nl);
  m.g.resize(6 * nl);
  m.drdx.resize(9 * nl);
  std::vector<double> d[9];
  for (auto& v : d) v.resize(m.npe);
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    const double* coords[3] = {m.x.data() + off, m.y.data() + off,
                               m.z.data() + off};
    for (int c = 0; c < 3; ++c) {
      tensor3_apply_x(basis.d.data(), n1, n1, n1, coords[c], d[c * 3 + 0].data());
      tensor3_apply_y(basis.d.data(), n1, n1, n1, coords[c], d[c * 3 + 1].data());
      tensor3_apply_z(basis.d.data(), n1, n1, n1, coords[c], d[c * 3 + 2].data());
    }
    for (int k = 0; k < n1; ++k)
      for (int j = 0; j < n1; ++j)
        for (int i = 0; i < n1; ++i) {
          const int n = (k * n1 + j) * n1 + i;
          const double xr = d[0][n], xs = d[1][n], xt = d[2][n];
          const double yr = d[3][n], ys = d[4][n], yt = d[5][n];
          const double zr = d[6][n], zs = d[7][n], zt = d[8][n];
          const double jac = xr * (ys * zt - yt * zs) -
                             xs * (yr * zt - yt * zr) +
                             xt * (yr * zs - ys * zr);
          TSEM_REQUIRE(jac > 0.0);
          const double rx = (ys * zt - yt * zs) / jac;
          const double ry = (xt * zs - xs * zt) / jac;
          const double rz = (xs * yt - xt * ys) / jac;
          const double sx = (yt * zr - yr * zt) / jac;
          const double sy = (xr * zt - xt * zr) / jac;
          const double sz = (xt * yr - xr * yt) / jac;
          const double tx = (yr * zs - ys * zr) / jac;
          const double ty = (xs * zr - xr * zs) / jac;
          const double tz = (xr * ys - xs * yr) / jac;
          const double w = basis.w[i] * basis.w[j] * basis.w[k];
          m.jac[off + n] = jac;
          m.bm[off + n] = w * jac;
          const double wj = w * jac;
          m.g[0 * nl + off + n] = wj * (rx * rx + ry * ry + rz * rz);
          m.g[1 * nl + off + n] = wj * (rx * sx + ry * sy + rz * sz);
          m.g[2 * nl + off + n] = wj * (rx * tx + ry * ty + rz * tz);
          m.g[3 * nl + off + n] = wj * (sx * sx + sy * sy + sz * sz);
          m.g[4 * nl + off + n] = wj * (sx * tx + sy * ty + sz * tz);
          m.g[5 * nl + off + n] = wj * (tx * tx + ty * ty + tz * tz);
          const double dr[9] = {rx, ry, rz, sx, sy, sz, tx, ty, tz};
          for (int c = 0; c < 9; ++c) m.drdx[c * nl + off + n] = dr[c];
        }
  }

  // ---- boundary faces ----
  m.bdry_bits.assign(nl, 0u);
  std::map<std::array<std::int64_t, 4>, int> face_count;
  // Local faces: 0 r-lo, 1 r-hi, 2 s-lo, 3 s-hi, 4 t-lo, 5 t-hi.
  auto face_verts = [&](int e, int f) {
    const std::int64_t* v = &m.vert_id[static_cast<std::size_t>(e) * 8];
    std::array<std::int64_t, 4> key{};
    auto vid = [&](int a, int b, int c) { return v[(c * 2 + b) * 2 + a]; };
    switch (f) {
      case 0: key = {vid(0, 0, 0), vid(0, 1, 0), vid(0, 0, 1), vid(0, 1, 1)}; break;
      case 1: key = {vid(1, 0, 0), vid(1, 1, 0), vid(1, 0, 1), vid(1, 1, 1)}; break;
      case 2: key = {vid(0, 0, 0), vid(1, 0, 0), vid(0, 0, 1), vid(1, 0, 1)}; break;
      case 3: key = {vid(0, 1, 0), vid(1, 1, 0), vid(0, 1, 1), vid(1, 1, 1)}; break;
      case 4: key = {vid(0, 0, 0), vid(1, 0, 0), vid(0, 1, 0), vid(1, 1, 0)}; break;
      default: key = {vid(0, 0, 1), vid(1, 0, 1), vid(0, 1, 1), vid(1, 1, 1)}; break;
    }
    std::sort(key.begin(), key.end());
    return key;
  };
  for (int e = 0; e < m.nelem; ++e)
    for (int f = 0; f < 6; ++f) ++face_count[face_verts(e, f)];
  auto face_nodes = [&](int e, int f, auto&& fn) {
    for (int q2 = 0; q2 < n1; ++q2)
      for (int q1 = 0; q1 < n1; ++q1) {
        int i, j, k;
        switch (f) {
          case 0: i = 0; j = q1; k = q2; break;
          case 1: i = order; j = q1; k = q2; break;
          case 2: i = q1; j = 0; k = q2; break;
          case 3: i = q1; j = order; k = q2; break;
          case 4: i = q1; j = q2; k = 0; break;
          default: i = q1; j = q2; k = order; break;
        }
        fn(static_cast<std::size_t>(e) * m.npe +
           (static_cast<std::size_t>(k) * n1 + j) * n1 + i);
      }
  };
  for (int e = 0; e < m.nelem; ++e) {
    for (int f = 0; f < 6; ++f) {
      if (face_count[face_verts(e, f)] != 1) continue;
      double cx = 0, cy = 0, cz = 0;
      face_nodes(e, f, [&](std::size_t idx) {
        cx += m.x[idx];
        cy += m.y[idx];
        cz += m.z[idx];
      });
      const double nn = static_cast<double>(n1) * n1;
      cx /= nn;
      cy /= nn;
      cz /= nn;
      const int tag = spec.classify ? spec.classify(cx, cy, cz) : 0;
      TSEM_REQUIRE(tag >= 0 && tag < 32);
      face_nodes(e, f,
                 [&](std::size_t idx) { m.bdry_bits[idx] |= 1u << tag; });
    }
  }

  return m;
}

}  // namespace tsem
