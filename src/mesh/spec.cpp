#include "mesh/spec.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tsem {
namespace {

MapFn2D sub_map_2d(MapFn2D parent, double r0, double r1, double s0,
                   double s1) {
  return [parent = std::move(parent), r0, r1, s0, s1](double r, double s) {
    const double rr = 0.5 * ((1 - r) * r0 + (1 + r) * r1);
    const double ss = 0.5 * ((1 - s) * s0 + (1 + s) * s1);
    return parent(rr, ss);
  };
}

MapFn3D sub_map_3d(MapFn3D parent, double r0, double r1, double s0, double s1,
                   double t0, double t1) {
  return [parent = std::move(parent), r0, r1, s0, s1, t0,
          t1](double r, double s, double t) {
    const double rr = 0.5 * ((1 - r) * r0 + (1 + r) * r1);
    const double ss = 0.5 * ((1 - s) * s0 + (1 + s) * s1);
    const double tt = 0.5 * ((1 - t) * t0 + (1 + t) * t1);
    return parent(rr, ss, tt);
  };
}

}  // namespace

MeshSpec2D quad_refine(const MeshSpec2D& spec) {
  MeshSpec2D out = spec;
  out.elems.clear();
  out.elems.reserve(spec.elems.size() * 4);
  for (const auto& map : spec.elems) {
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 2; ++i) {
        out.elems.push_back(
            sub_map_2d(map, -1.0 + i, i, -1.0 + j, j));
      }
    }
  }
  return out;
}

MeshSpec3D oct_refine(const MeshSpec3D& spec) {
  MeshSpec3D out = spec;
  out.elems.clear();
  out.elems.reserve(spec.elems.size() * 8);
  for (const auto& map : spec.elems) {
    for (int k = 0; k < 2; ++k)
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i)
          out.elems.push_back(sub_map_3d(map, -1.0 + i, i, -1.0 + j, j,
                                         -1.0 + k, k));
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, int nseg) {
  TSEM_REQUIRE(nseg >= 1);
  std::vector<double> pts(nseg + 1);
  for (int i = 0; i <= nseg; ++i)
    pts[i] = lo + (hi - lo) * static_cast<double>(i) / nseg;
  return pts;
}

std::vector<double> geomspace(double lo, double hi, int nseg, double ratio) {
  TSEM_REQUIRE(nseg >= 1 && ratio > 0.0);
  std::vector<double> w(nseg);
  double sum = 0.0, cur = 1.0;
  for (int i = 0; i < nseg; ++i) {
    w[i] = cur;
    sum += cur;
    cur *= ratio;
  }
  std::vector<double> pts(nseg + 1);
  pts[0] = lo;
  double acc = 0.0;
  for (int i = 0; i < nseg; ++i) {
    acc += w[i];
    pts[i + 1] = lo + (hi - lo) * acc / sum;
  }
  pts[nseg] = hi;
  return pts;
}

MeshSpec2D box_spec_2d(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  MeshSpec2D spec;
  const int kx = static_cast<int>(xs.size()) - 1;
  const int ky = static_cast<int>(ys.size()) - 1;
  TSEM_REQUIRE(kx >= 1 && ky >= 1);
  spec.x_lo = xs.front();
  spec.x_hi = xs.back();
  spec.y_lo = ys.front();
  spec.y_hi = ys.back();
  for (int j = 0; j < ky; ++j) {
    for (int i = 0; i < kx; ++i) {
      const double x0 = xs[i], x1 = xs[i + 1], y0 = ys[j], y1 = ys[j + 1];
      spec.elems.push_back([x0, x1, y0, y1](double r, double s) {
        return std::array<double, 2>{0.5 * ((1 - r) * x0 + (1 + r) * x1),
                                     0.5 * ((1 - s) * y0 + (1 + s) * y1)};
      });
    }
  }
  const double xlo = spec.x_lo, xhi = spec.x_hi, ylo = spec.y_lo,
               yhi = spec.y_hi;
  const double tol = 1e-8 * (std::fabs(xhi - xlo) + std::fabs(yhi - ylo));
  spec.classify = [=](double x, double y, double) {
    if (std::fabs(x - xlo) < tol) return kFaceXLo;
    if (std::fabs(x - xhi) < tol) return kFaceXHi;
    if (std::fabs(y - ylo) < tol) return kFaceYLo;
    return kFaceYHi;
  };
  return spec;
}

MeshSpec3D box_spec_3d(const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       const std::vector<double>& zs) {
  MeshSpec3D spec;
  const int kx = static_cast<int>(xs.size()) - 1;
  const int ky = static_cast<int>(ys.size()) - 1;
  const int kz = static_cast<int>(zs.size()) - 1;
  TSEM_REQUIRE(kx >= 1 && ky >= 1 && kz >= 1);
  spec.x_lo = xs.front();
  spec.x_hi = xs.back();
  spec.y_lo = ys.front();
  spec.y_hi = ys.back();
  spec.z_lo = zs.front();
  spec.z_hi = zs.back();
  for (int k = 0; k < kz; ++k)
    for (int j = 0; j < ky; ++j)
      for (int i = 0; i < kx; ++i) {
        const double x0 = xs[i], x1 = xs[i + 1];
        const double y0 = ys[j], y1 = ys[j + 1];
        const double z0 = zs[k], z1 = zs[k + 1];
        spec.elems.push_back([=](double r, double s, double t) {
          return std::array<double, 3>{0.5 * ((1 - r) * x0 + (1 + r) * x1),
                                       0.5 * ((1 - s) * y0 + (1 + s) * y1),
                                       0.5 * ((1 - t) * z0 + (1 + t) * z1)};
        });
      }
  const double xlo = spec.x_lo, xhi = spec.x_hi, ylo = spec.y_lo,
               yhi = spec.y_hi, zlo = spec.z_lo, zhi = spec.z_hi;
  const double tol = 1e-8 * (std::fabs(xhi - xlo) + std::fabs(yhi - ylo) +
                             std::fabs(zhi - zlo));
  spec.classify = [=](double x, double y, double z) {
    if (std::fabs(x - xlo) < tol) return kFaceXLo;
    if (std::fabs(x - xhi) < tol) return kFaceXHi;
    if (std::fabs(y - ylo) < tol) return kFaceYLo;
    if (std::fabs(y - yhi) < tol) return kFaceYHi;
    if (std::fabs(z - zlo) < tol) return kFaceZLo;
    return kFaceZHi;
  };
  return spec;
}

MeshSpec2D annulus_spec(double r0, double r1, int kr, int kt, double ratio) {
  TSEM_REQUIRE(r0 > 0.0 && r1 > r0 && kr >= 1 && kt >= 3);
  MeshSpec2D spec;
  const auto radii = geomspace(r0, r1, kr, ratio);
  for (int j = 0; j < kt; ++j) {
    const double th0 = 2.0 * M_PI * j / kt;
    const double th1 = 2.0 * M_PI * (j + 1) / kt;
    for (int i = 0; i < kr; ++i) {
      const double ra = radii[i], rb = radii[i + 1];
      spec.elems.push_back([ra, rb, th0, th1](double r, double s) {
        const double rad = 0.5 * ((1 - r) * ra + (1 + r) * rb);
        const double th = 0.5 * ((1 - s) * th0 + (1 + s) * th1);
        return std::array<double, 2>{rad * std::cos(th), rad * std::sin(th)};
      });
    }
  }
  spec.x_lo = -r1;
  spec.x_hi = r1;
  spec.y_lo = -r1;
  spec.y_hi = r1;
  spec.classify = [r0, r1](double x, double y, double) {
    const double rad = std::sqrt(x * x + y * y);
    return (std::fabs(rad - r0) < std::fabs(rad - r1)) ? 0 : 1;
  };
  return spec;
}

MeshSpec3D bump_channel_spec(const std::vector<double>& xs,
                             const std::vector<double>& ys,
                             const std::vector<double>& zs, double cx,
                             double cy, double rad, double h) {
  MeshSpec3D spec = box_spec_3d(xs, ys, zs);
  const double zlo = spec.z_lo, zhi = spec.z_hi;
  // Wrap each element map: shift z by a smooth compactly supported bump
  // that decays linearly to zero at the top wall.
  auto bump = [=](double x, double y) {
    const double d2 = ((x - cx) * (x - cx) + (y - cy) * (y - cy)) / (rad * rad);
    if (d2 >= 1.0) return 0.0;
    const double c = std::cos(0.5 * M_PI * std::sqrt(d2));
    return h * c * c;
  };
  for (auto& map : spec.elems) {
    map = [map, bump, zlo, zhi](double r, double s, double t) {
      auto p = map(r, s, t);
      const double b = bump(p[0], p[1]);
      p[2] += b * (zhi - p[2]) / (zhi - zlo);
      return p;
    };
  }
  return spec;
}

}  // namespace tsem
