// Spectral element mesh: an unstructured array of deformed quadrilateral /
// hexahedral elements, each carrying a tensor-product GLL node grid
// (paper §2, Fig 2).
//
// The Mesh owns everything geometry-derived that operators need:
//   * GLL node coordinates per element,
//   * the C0 global numbering (which nodes coincide across elements),
//   * Jacobians, the diagonal local mass matrix W*J,
//   * the symmetric geometric factors G_ij of eq. (4),
//   * the metric terms dr_i/dx_j used by convection and divergence,
//   * boundary-face tags (as per-node tag bitmasks).
//
// Fields on a mesh are flat arrays of length nelem * npe with the x index
// fastest within each element (see tensor_apply.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace tsem {

class Mesh {
 public:
  int dim = 0;     ///< 2 or 3
  int order = 0;   ///< polynomial order N
  int nelem = 0;   ///< K
  int npe = 0;     ///< (N+1)^dim nodes per element

  /// GLL node coordinates, nelem*npe each (z empty in 2D).
  std::vector<double> x, y, z;

  /// C0 global node id per local node, and the number of distinct ids.
  std::vector<std::int64_t> node_id;
  std::int64_t nglob = 0;

  /// Element corner-vertex global ids (2^dim per element, lexicographic in
  /// (r,s,t)) — the "spectral element vertex mesh" used by the coarse grid.
  std::vector<std::int64_t> vert_id;
  std::int64_t nvert = 0;

  /// Jacobian determinant at each node (positive for valid meshes).
  std::vector<double> jac;
  /// Diagonal of the local mass matrix: w_i w_j (w_k) * J.
  std::vector<double> bm;
  /// Geometric factors, component-major: g[c * nelem*npe + idx].
  /// 2D: c = rr, rs, ss.  3D: c = rr, rs, rt, ss, st, tt.
  /// Each includes the quadrature weights: G_ij = W J grad(r_i).grad(r_j).
  std::vector<double> g;
  /// Metric terms dr_i/dx_j, component-major with c = i*dim + j.
  std::vector<double> drdx;

  /// Per-node boundary tag bitmask: bit t set if the node lies on a
  /// boundary face classified with tag t.  0 for interior nodes.
  std::vector<std::uint32_t> bdry_bits;

  [[nodiscard]] int n1d() const { return order + 1; }
  [[nodiscard]] std::size_t nlocal() const {
    return static_cast<std::size_t>(nelem) * npe;
  }
  [[nodiscard]] int ngeo() const { return dim == 2 ? 3 : 6; }

  [[nodiscard]] const double* geo(int c) const { return g.data() + c * nlocal(); }
  [[nodiscard]] const double* metric(int i, int j) const {
    return drdx.data() + (static_cast<std::size_t>(i) * dim + j) * nlocal();
  }

  /// Bounding-box diagonal (used for tolerances).
  [[nodiscard]] double bbox_diag() const;

  /// Total number of velocity gridpoints as the paper counts them
  /// (distinct global nodes).
  [[nodiscard]] std::int64_t gridpoints() const { return nglob; }
};

}  // namespace tsem
