// Fast diagonalization method (Lynch, Rice & Thomas [17]; paper §5).
//
// Inverts the separable low-order Laplacian
//     A~ = B (x) A + A (x) B            (2D, and the analogous 3D sum)
// built from 1D P1 FEM operators on the extended Schwarz subdomain grids:
//     A~^{-1} = (S_y (x) S_x) [I (x) L_x + L_y (x) I]^{-1}
//               (S_y^T (x) S_x^T) ... with S generalized eigenvectors,
// applied as fast tensor products — the same O(K N^{d+1}) complexity as a
// matrix-free operator application, which is what makes the FDM-based
// Schwarz preconditioner cheaper than the FEM-based one (Table 2).
#pragma once

#include <array>
#include <vector>

namespace tsem {

class ByteWriter;
class ByteReader;

class FdmLocal {
 public:
  FdmLocal() = default;
  /// pts[d]: 1D node positions in direction d INCLUDING the two Dirichlet
  /// ring endpoints; the solve acts on the interior tensor product
  /// (size prod_d (pts[d].size() - 2)).
  FdmLocal(const std::array<std::vector<double>, 3>& pts, int dim);

  /// z = A~^{-1} r (z may alias r).  work must hold >= 3 * size() doubles.
  void solve(const double* r, double* z, double* work) const;

  /// Batched solve over nb element-contiguous blocks: r and z hold nb
  /// size()-sized blocks back to back, work >= 3 * nb * size() doubles
  /// (z may alias r).  The first tensor stage contracts the whole batch
  /// in ONE tall mxm_bt call (the per-element row blocks concatenate
  /// because x is the fastest index); later stages sweep the batch
  /// slab-by-slab with hot factor matrices.  Each block's result is
  /// bitwise identical to a solve() on that block — every row of every
  /// stage runs the same kernel on the same operands.
  void solve_batch(const double* r, double* z, int nb, double* work) const;

  /// Single-precision twin of solve_batch (DESIGN.md "Precision
  /// policy"): same stage structure, float factor matrices and float
  /// mxm kernels (tensor/mxm_f32.hpp), work >= 3 * nb * size() floats.
  /// Results carry FP32 rounding — callers promote to double when
  /// restoring into the FP64 field.
  void solve_batch_f32(const float* r, float* z, int nb, float* work) const;

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] int extent(int d) const { return m_[d]; }
  [[nodiscard]] std::size_t size() const { return inv_lambda_.size(); }
  /// Flops for one solve (for the Table 2 cost accounting).
  [[nodiscard]] double solve_flops() const;

  /// Append the FP64 factorization (dim, extents, eigenvector matrices,
  /// inverse eigenvalue sums) to w.  The FP32 twins are NOT written:
  /// deserialize() re-demotes them with the constructor's expression, so
  /// the restored object is bitwise-identical on every member while the
  /// payload stays half the size (setup cache, DESIGN.md "Setup cache").
  void serialize(ByteWriter& w) const;
  /// Rebuild *this from r.  Returns false (object unspecified) on a
  /// truncated or structurally inconsistent payload; integrity against
  /// bit rot is the enclosing cache entry's CRC, not this check.
  bool deserialize(ByteReader& r);

 private:
  int dim_ = 0;
  int m_[3] = {0, 0, 0};
  // Eigenvector matrices (m x m, row-major, columns = eigenvectors) and
  // transposes (pre-stored for the tensor kernels).
  std::array<std::vector<double>, 3> s_;
  std::array<std::vector<double>, 3> st_;
  std::vector<double> inv_lambda_;
  // FP32 twins (demoted once at setup) for solve_batch_f32.
  std::array<std::vector<float>, 3> s32_;
  std::array<std::vector<float>, 3> st32_;
  std::vector<float> inv_lambda32_;
};

}  // namespace tsem
