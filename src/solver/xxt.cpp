#include "solver/xxt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "io/binfile.hpp"
#include "obs/metrics.hpp"

namespace tsem {
namespace {

void bisect(const CsrMatrix& a, const std::vector<double>* coords[3],
            std::vector<std::int32_t>& dofs, int level, int nlevels,
            int leaf_base, std::vector<std::int32_t>& order,
            std::vector<std::int32_t>& leaf_of) {
  if (level == nlevels || dofs.size() <= 1) {
    // Leaf: interior dofs, eliminated first (appended before ancestors'
    // separators by construction of the recursion).
    for (auto d : dofs) {
      leaf_of[d] = leaf_base;
      order.push_back(d);
    }
    return;
  }
  // Split along the widest coordinate direction at the median.
  double lo[3] = {1e300, 1e300, 1e300}, hi[3] = {-1e300, -1e300, -1e300};
  for (auto d : dofs)
    for (int c = 0; c < 3; ++c) {
      const double v = (*coords[c])[d];
      lo[c] = std::min(lo[c], v);
      hi[c] = std::max(hi[c], v);
    }
  int axis = 0;
  for (int c = 1; c < 3; ++c)
    if (hi[c] - lo[c] > hi[axis] - lo[axis]) axis = c;
  std::vector<std::int32_t> sorted = dofs;
  std::sort(sorted.begin(), sorted.end(), [&](std::int32_t p, std::int32_t q) {
    return (*coords[axis])[p] < (*coords[axis])[q];
  });
  const std::size_t half = sorted.size() / 2;
  // side[d]: 0 = left, 1 = right (only meaningful for dofs in this call).
  std::vector<std::int32_t> left(sorted.begin(), sorted.begin() + half);
  std::vector<std::int32_t> right(sorted.begin() + half, sorted.end());
  std::vector<char> in_left(a.n(), 0), in_here(a.n(), 0);
  for (auto d : left) in_left[d] = 1;
  for (auto d : dofs) in_here[d] = 1;
  // Separator: left-side dofs adjacent to the right side.
  std::vector<std::int32_t> sep;
  std::vector<std::int32_t> left2;
  const auto& rp = a.row_ptr();
  const auto& cols = a.col();
  for (auto d : left) {
    bool boundary = false;
    for (std::int32_t k = rp[d]; k < rp[d + 1]; ++k) {
      const auto c = cols[k];
      if (in_here[c] && !in_left[c]) {
        boundary = true;
        break;
      }
    }
    (boundary ? sep : left2).push_back(d);
  }
  bisect(a, coords, left2, level + 1, nlevels, leaf_base * 2, order, leaf_of);
  bisect(a, coords, right, level + 1, nlevels, leaf_base * 2 + 1, order,
         leaf_of);
  // Separator dofs eliminated after both subtrees; distribute their
  // ownership round-robin across the subtree's leaves so the per-rank
  // work statistics stay balanced (as the production code's distribution
  // of separator columns does).
  const int first_leaf = leaf_base << (nlevels - level);
  const int nleaves = 1 << (nlevels - level);
  int rr = 0;
  for (auto d : sep) {
    leaf_of[d] = first_leaf + (rr++ % nleaves);
    order.push_back(d);
  }
}

}  // namespace

NestedDissection nested_dissection(const CsrMatrix& a,
                                   const std::vector<double>& x,
                                   const std::vector<double>& y,
                                   const std::vector<double>& z,
                                   int nlevels) {
  TSEM_REQUIRE(nlevels >= 0);
  const int n = a.n();
  TSEM_REQUIRE(static_cast<int>(x.size()) == n);
  TSEM_REQUIRE(static_cast<int>(y.size()) == n);
  std::vector<double> zz;
  const std::vector<double>* coords[3] = {&x, &y, &z};
  if (static_cast<int>(z.size()) != n) {
    zz.assign(n, 0.0);
    coords[2] = &zz;
  }
  NestedDissection nd;
  nd.nlevels = nlevels;
  nd.leaf_of.assign(n, 0);
  nd.perm.reserve(n);
  std::vector<std::int32_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  bisect(a, coords, all, 0, nlevels, 0, nd.perm, nd.leaf_of);
  TSEM_REQUIRE(static_cast<int>(nd.perm.size()) == n);
  return nd;
}

XxtSolver::XxtSolver(const CsrMatrix& a, const NestedDissection& nd)
    : n_(a.n()), nd_(nd) {
  const obs::ScopedTimer timer("xxt/factor");
  col_ptr_.assign(1, 0);
  row_.clear();
  val_.clear();

  // rowlist[r]: columns (in elimination order) with a nonzero in row r.
  std::vector<std::vector<std::int32_t>> rowlist(n_);
  std::vector<double> dense_aj(n_, 0.0);   // scatter of A e_j
  std::vector<double> acc(n_, 0.0);        // accumulator for x_k
  std::vector<char> touched(n_, 0);
  std::vector<std::int32_t> touch_list;
  std::vector<std::int32_t> cand;
  std::vector<char> cand_mark(n_, 0);
  std::vector<std::pair<std::int32_t, double>> aj;

  const auto& rp = a.row_ptr();
  const auto& cols = a.col();
  const auto& vals = a.val();

  // All scratch above is reused across the n_ column sweeps; reserving
  // up front keeps the factor loop free of incremental regrowth (the
  // touched set of a late column can span most of the matrix).
  touch_list.reserve(n_);
  cand.reserve(n_);
  {
    std::int32_t max_row = 0;
    for (int r = 0; r < n_; ++r) max_row = std::max(max_row, rp[r + 1] - rp[r]);
    aj.reserve(static_cast<std::size_t>(max_row));
  }

  for (int k = 0; k < n_; ++k) {
    const std::int32_t j = nd_.perm[k];
    a.column(j, aj);  // symmetric: row j
    for (const auto& [r, v] : aj) dense_aj[r] = v;

    // Candidate previous columns: those with support meeting supp(A e_j).
    cand.clear();
    for (const auto& [r, v] : aj) {
      for (auto i : rowlist[r]) {
        if (!cand_mark[i]) {
          cand_mark[i] = 1;
          cand.push_back(i);
        }
      }
    }

    // x_k = e_j - sum_i (x_i . A e_j) x_i
    touch_list.clear();
    acc[j] = 1.0;
    touched[j] = 1;
    touch_list.push_back(j);
    for (auto i : cand) {
      cand_mark[i] = 0;
      double coef = 0.0;
      for (std::int32_t p = col_ptr_[i]; p < col_ptr_[i + 1]; ++p)
        coef += val_[p] * dense_aj[row_[p]];
      if (coef == 0.0) continue;
      for (std::int32_t p = col_ptr_[i]; p < col_ptr_[i + 1]; ++p) {
        const auto r = row_[p];
        if (!touched[r]) {
          touched[r] = 1;
          touch_list.push_back(r);
          acc[r] = 0.0;
        }
        acc[r] -= coef * val_[p];
      }
    }
    for (const auto& [r, v] : aj) dense_aj[r] = 0.0;

    // Normalize: x_k /= sqrt(x_k^T A x_k).
    double norm2 = 0.0;
    for (auto r : touch_list) {
      if (acc[r] == 0.0) continue;
      double ar = 0.0;
      for (std::int32_t p = rp[r]; p < rp[r + 1]; ++p) {
        const auto c = cols[p];
        if (touched[c]) ar += vals[p] * acc[c];
      }
      norm2 += acc[r] * ar;
    }
    TSEM_REQUIRE(norm2 > 0.0);
    const double inv = 1.0 / std::sqrt(norm2);

    std::sort(touch_list.begin(), touch_list.end());
    for (auto r : touch_list) {
      touched[r] = 0;
      const double v = acc[r] * inv;
      acc[r] = 0.0;
      if (v == 0.0) continue;
      row_.push_back(r);
      val_.push_back(v);
      rowlist[r].push_back(k);
    }
    col_ptr_.push_back(static_cast<std::int32_t>(row_.size()));
  }
  nnz_ = static_cast<std::int64_t>(row_.size());

  // ---- measured communication statistics ----
  const int nl = nd_.nlevels;
  level_msg_.assign(nl, 0);
  total_msg_ = 0;
  if (nl > 0) {
    // Heap-indexed tree: root = 1, leaves = 2^nl .. 2^(nl+1)-1.
    // For each column, the set of leaves its support touches defines the
    // edges its partial sums travel during fan-in: all edges on the paths
    // from touched leaves up to the LCA.
    edge_msg_.assign(static_cast<std::size_t>(2) << nl, 0);
    leaf_nnz_.assign(static_cast<std::size_t>(1) << nl, 0);
    auto& edge_msg = edge_msg_;
    auto& leaf_nnz = leaf_nnz_;
    std::vector<std::int32_t> leaves;
    std::vector<std::int32_t> edges;
    leaves.reserve(static_cast<std::size_t>(1) << nl);
    edges.reserve(static_cast<std::size_t>(2) << nl);
    for (int k = 0; k < n_; ++k) {
      leaves.clear();
      for (std::int32_t p = col_ptr_[k]; p < col_ptr_[k + 1]; ++p) {
        const int lf = nd_.leaf_of[row_[p]];
        leaves.push_back(lf);
        leaf_nnz[lf] += 1;
      }
      std::sort(leaves.begin(), leaves.end());
      leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
      if (leaves.size() < 2) continue;
      // LCA of all touched leaves (heap ids).
      auto heap = [nl](int leaf) { return (1 << nl) + leaf; };
      int lca = heap(leaves[0]);
      for (std::size_t t = 1; t < leaves.size(); ++t) {
        int u = heap(leaves[t]), v = lca;
        while (u != v) {
          if (u > v)
            u >>= 1;
          else
            v >>= 1;
        }
        lca = u;
      }
      // Each edge on the union of leaf->LCA paths carries ONE combined
      // partial sum per column (parents merge their children's partials),
      // so count each edge once.
      edges.clear();
      for (int lf : leaves)
        for (int u = heap(lf); u > lca; u >>= 1)
          edges.push_back(u);
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
      for (auto u : edges) edge_msg[u] += 1;
    }
    for (std::size_t u = 2; u < edge_msg.size(); ++u) {
      if (edge_msg[u] == 0) continue;
      // Level of the merge this edge feeds: parent depth.
      int depth = 0;
      for (std::size_t v = u >> 1; v > 1; v >>= 1) ++depth;
      level_msg_[depth] = std::max(level_msg_[depth], edge_msg[u]);
      total_msg_ += edge_msg[u];
    }
    for (auto v : leaf_nnz) max_leaf_nnz_ = std::max(max_leaf_nnz_, v);
  } else {
    leaf_nnz_.assign(1, nnz_);
    max_leaf_nnz_ = nnz_;
  }
}

std::vector<std::int64_t> XxtSolver::level_msg_words_at(int levels) const {
  TSEM_REQUIRE(levels >= 0 && levels <= nd_.nlevels);
  // A machine of 2^levels ranks maps rank r to the dissection subtree of
  // leaves with high bits r; tree edges at parent depth >= levels connect
  // nodes inside one rank and cost nothing, so the measured schedule is
  // the leading `levels` entries of the full per-level maxima.
  return {level_msg_.begin(), level_msg_.begin() + levels};
}

std::int64_t XxtSolver::max_rank_nnz(int levels) const {
  TSEM_REQUIRE(levels >= 0 && levels <= nd_.nlevels);
  const int shift = nd_.nlevels - levels;
  std::vector<std::int64_t> rank_nnz(static_cast<std::size_t>(1) << levels, 0);
  for (std::size_t lf = 0; lf < leaf_nnz_.size(); ++lf)
    rank_nnz[lf >> shift] += leaf_nnz_[lf];
  std::int64_t m = 0;
  for (auto v : rank_nnz) m = std::max(m, v);
  return m;
}

void XxtSolver::solve(const double* b, double* out) const {
  const obs::ScopedTimer timer("xxt/solve");
  if constexpr (obs::kEnabled) {
    obs::count("xxt/solves");
    // Per-solve communication volume a message-passing execution would
    // need: fan-in plus the mirroring fan-out (measured from the real
    // column supports in the ctor).
    obs::count("xxt/msg_words", 2 * total_msg_);
    obs::count("xxt/flops", 4 * nnz_);
  }
  if (zscratch_.size() < static_cast<std::size_t>(n_)) zscratch_.resize(n_);
  double* const z = zscratch_.data();
  for (int k = 0; k < n_; ++k) {
    double s = 0.0;
    for (std::int32_t p = col_ptr_[k]; p < col_ptr_[k + 1]; ++p)
      s += val_[p] * b[row_[p]];
    z[k] = s;
  }
  std::fill(out, out + n_, 0.0);
  for (int k = 0; k < n_; ++k) {
    const double zk = z[k];
    if (zk == 0.0) continue;
    for (std::int32_t p = col_ptr_[k]; p < col_ptr_[k + 1]; ++p)
      out[row_[p]] += val_[p] * zk;
  }
}

void XxtSolver::serialize(ByteWriter& w) const {
  w.put<std::int32_t>(n_);
  w.put<std::int64_t>(nnz_);
  w.put<std::int32_t>(nd_.nlevels);
  w.put_pod_vec(nd_.perm);
  w.put_pod_vec(nd_.leaf_of);
  w.put_pod_vec(col_ptr_);
  w.put_pod_vec(row_);
  w.put_vec(val_);
  w.put_pod_vec(level_msg_);
  w.put_pod_vec(edge_msg_);
  w.put_pod_vec(leaf_nnz_);
  w.put<std::int64_t>(max_leaf_nnz_);
  w.put<std::int64_t>(total_msg_);
}

std::unique_ptr<XxtSolver> XxtSolver::deserialize(ByteReader& r) {
  auto s = std::unique_ptr<XxtSolver>(new XxtSolver());
  std::int32_t n = 0, nlevels = 0;
  if (!r.get(&n) || !r.get(&s->nnz_) || !r.get(&nlevels)) return nullptr;
  s->n_ = n;
  s->nd_.nlevels = nlevels;
  if (!r.get_pod_vec(&s->nd_.perm) || !r.get_pod_vec(&s->nd_.leaf_of) ||
      !r.get_pod_vec(&s->col_ptr_) || !r.get_pod_vec(&s->row_) ||
      !r.get_vec(&s->val_) || !r.get_pod_vec(&s->level_msg_) ||
      !r.get_pod_vec(&s->edge_msg_) || !r.get_pod_vec(&s->leaf_nnz_) ||
      !r.get(&s->max_leaf_nnz_) || !r.get(&s->total_msg_))
    return nullptr;
  // Structural sanity: solve() indexes through col_ptr_/row_ unchecked,
  // so a payload that decodes but is internally inconsistent must be
  // rejected here, not trusted into out-of-bounds reads.
  if (n < 0 || nlevels < 0) return nullptr;
  if (s->col_ptr_.size() != static_cast<std::size_t>(n) + 1) return nullptr;
  if (s->nd_.perm.size() != static_cast<std::size_t>(n) ||
      s->nd_.leaf_of.size() != static_cast<std::size_t>(n))
    return nullptr;
  if (n > 0 && s->col_ptr_[0] != 0) return nullptr;
  for (int k = 0; k < n; ++k)
    if (s->col_ptr_[k + 1] < s->col_ptr_[k]) return nullptr;
  const std::size_t nnz =
      n > 0 ? static_cast<std::size_t>(s->col_ptr_[n]) : 0;
  if (s->row_.size() != nnz || s->val_.size() != nnz) return nullptr;
  for (const std::int32_t rr : s->row_)
    if (rr < 0 || rr >= n) return nullptr;
  s->zscratch_.resize(static_cast<std::size_t>(n));
  return s;
}

}  // namespace tsem
