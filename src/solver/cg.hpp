// Preconditioned conjugate gradient iteration (paper §1, §5).
//
// Generic over the operator, preconditioner and inner product so the same
// driver serves the Jacobi-preconditioned Helmholtz solves, the
// Schwarz-preconditioned pressure solves, and the unit tests.
//
// Every exit is classified by SolveStatus so callers can distinguish a
// solve that reached its tolerance from one that stalled at the attainable
// floor, lost positive definiteness, went non-finite, or merely ran out of
// iterations — the raw material of the resilience layer's recovery policy
// (src/resilience/).
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"

namespace tsem {

/// Disposition of an iterative solve.
enum class SolveStatus {
  Converged,  ///< residual reached the requested tolerance
  Stalled,    ///< no progress over stall_window iterations (roundoff floor)
  Breakdown,  ///< p'Ap <= 0 with finite arithmetic: operator not SPD
  NonFinite,  ///< NaN/Inf detected in a residual norm or curvature term
  MaxIter,    ///< iteration budget exhausted before the tolerance
};

/// Stable short name (logging / StepStats reporting).
inline const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::Stalled: return "stalled";
    case SolveStatus::Breakdown: return "breakdown";
    case SolveStatus::NonFinite: return "non-finite";
    case SolveStatus::MaxIter: return "max-iter";
  }
  return "unknown";
}

/// True for outcomes the recovery ladder treats as hard failures: the
/// iterate can no longer be trusted at all (as opposed to Stalled/MaxIter,
/// where x is the best attainable approximation).
inline bool is_hard_failure(SolveStatus s) {
  return s == SolveStatus::Breakdown || s == SolveStatus::NonFinite;
}

/// Allreduce schedule of pcg below, counted for the simulated-machine
/// timing (each dot() is one scalar allreduce in a message-passing run).
/// Setup performs kPcgSetupDots dots — the initial dot(r, r) and the
/// dot(r, z) after the first precond.  Every full iteration performs
/// kPcgDotsPerIteration — dot(p, ap), dot(r, r), dot(r, z) — except the
/// terminating one, which exits after dot(r, r); a solve converging in
/// `iters` iterations therefore performs exactly
///     kPcgSetupDots + kPcgDotsPerIteration * iters - 1
/// dots (asserted by a counting-dot test in tests/test_sim_cluster.cpp).
inline constexpr int kPcgSetupDots = 2;
inline constexpr int kPcgDotsPerIteration = 3;

struct CgOptions {
  int max_iter = 2000;
  double tol = 1e-8;        ///< on the 2-norm of the (preconditioned) residual
  bool relative = false;    ///< scale tol by the initial residual norm
  bool record_history = false;
  /// Stop (non-converged) if the best residual has not improved over this
  /// many iterations — guards against spinning on a roundoff floor when an
  /// absolute tolerance is set below what the system can attain.
  int stall_window = 100;
};

struct CgResult {
  int iterations = 0;
  double final_residual = 0.0;
  double initial_residual = 0.0;
  bool converged = false;  ///< == (status == SolveStatus::Converged)
  SolveStatus status = SolveStatus::MaxIter;
  std::vector<double> history;  ///< residual norm per iteration if recorded
};

/// Reusable Krylov vectors for pcg.  A caller that solves the same-sized
/// system every time step keeps one of these alive so the four
/// field-length work vectors are allocated once, not per solve.
struct CgScratch {
  std::vector<double> r, z, p, ap;
  void ensure(std::size_t n) {
    if (r.size() < n) {
      r.resize(n);
      z.resize(n);
      p.resize(n);
      ap.resize(n);
    }
  }
};

/// Solve A x = b.  `apply(p, ap)` computes ap = A p; `precond(r, z)`
/// computes z = M^{-1} r (may alias-copy for identity); `dot(u, v)` is the
/// inner product in which A is self-adjoint.  x holds the initial guess on
/// entry and the solution on return.  Pass a persistent `scratch` to make
/// repeated solves allocation-free (nullptr allocates locally).
template <class Apply, class Precond, class Dot>
CgResult pcg(std::size_t n, Apply&& apply, Precond&& precond, Dot&& dot,
             const double* b, double* x, const CgOptions& opt = {},
             CgScratch* scratch = nullptr) {
  CgScratch local;
  CgScratch& work = scratch ? *scratch : local;
  work.ensure(n);
  double* const r = work.r.data();
  double* const z = work.z.data();
  double* const p = work.p.data();
  double* const ap = work.ap.data();

  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  CgResult res;
  double rnorm = std::sqrt(dot(r, r));
  res.initial_residual = rnorm;
  // Invariant on EVERY exit path: with record_history on,
  // history.size() == iterations + 1 (entry 0 is the initial residual).
  if (opt.record_history) res.history.push_back(rnorm);
  if (!std::isfinite(rnorm)) {
    // Poisoned rhs or initial guess: bail before touching x.
    res.status = SolveStatus::NonFinite;
    res.final_residual = rnorm;
    obs::record_solve("pcg", 0, rnorm, rnorm, to_string(res.status));
    return res;
  }
  const double target = opt.relative ? opt.tol * (rnorm > 0 ? rnorm : 1.0)
                                     : opt.tol;
  if (rnorm <= target) {
    res.converged = true;
    res.status = SolveStatus::Converged;
    res.final_residual = rnorm;
    obs::record_solve("pcg", 0, rnorm, rnorm, to_string(res.status));
    return res;
  }

  precond(r, z);
  for (std::size_t i = 0; i < n; ++i) p[i] = z[i];
  double rz = dot(r, z);

  double best = rnorm;
  double last_finite = rnorm;
  int best_it = 0;
  res.status = SolveStatus::MaxIter;
  for (int it = 1; it <= opt.max_iter; ++it) {
    apply(p, ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0)) {
      // Loss of positive definiteness — or a NaN that poisons every
      // comparison.  The two demand different responses upstream
      // (indefinite operator vs corrupted data), so classify them apart.
      res.status = std::isfinite(pap) ? SolveStatus::Breakdown
                                      : SolveStatus::NonFinite;
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    rnorm = std::sqrt(dot(r, r));
    res.iterations = it;
    if (opt.record_history) res.history.push_back(rnorm);
    if (!std::isfinite(rnorm)) {
      res.status = SolveStatus::NonFinite;
      break;
    }
    last_finite = rnorm;
    if (rnorm <= target) {
      res.converged = true;
      res.status = SolveStatus::Converged;
      break;
    }
    if (rnorm < 0.999 * best) {
      best = rnorm;
      best_it = it;
    } else if (it - best_it >= opt.stall_window) {
      res.status = SolveStatus::Stalled;
      break;  // stagnated at the attainable floor
    }
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  // A NonFinite exit leaves rnorm = NaN; report the last finite residual
  // instead of a value no caller can act on.  (On a Breakdown exit rnorm
  // is still the previous iteration's finite norm — x was not updated —
  // so this is the identity there.)
  res.final_residual = std::isfinite(rnorm) ? rnorm : last_finite;
  obs::record_solve("pcg", res.iterations, res.initial_residual,
                    res.final_residual, to_string(res.status));
  return res;
}

/// Identity preconditioner.
inline auto identity_precond(std::size_t n) {
  return [n](const double* r, double* z) {
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i];
  };
}

/// Diagonal (Jacobi) preconditioner from a diagonal vector.  The diagonal
/// is captured by value: the returned callable owns its copy and stays
/// valid after the argument goes out of scope (temporaries included).
inline auto jacobi_precond(std::vector<double> diag) {
  return [d = std::move(diag)](const double* r, double* z) {
    for (std::size_t i = 0; i < d.size(); ++i) z[i] = r[i] / d[i];
  };
}

}  // namespace tsem
