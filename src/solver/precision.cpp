#include "solver/precision.hpp"

#include <cstdlib>
#include <cstring>

namespace tsem {

PrecondPrecision precond_precision_parse(const char* v) {
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0)
    return PrecondPrecision::Fp64;
  return PrecondPrecision::Fp32;
}

PrecondPrecision precond_precision_from_env() {
  return precond_precision_parse(std::getenv("TSEM_PRECOND_FP32"));
}

const char* precond_precision_name(PrecondPrecision p) {
  return p == PrecondPrecision::Fp32 ? "fp32" : "fp64";
}

}  // namespace tsem
