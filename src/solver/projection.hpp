// Projection onto previous solutions (paper §5; Fischer [7]).
//
// When solving a sequence of slowly varying systems E p^n = g^n, project
// g^n onto the span of up to L previous solutions kept E-orthonormal,
// solve only for the (O(dt^l) small) perturbation, and fold the converged
// correction back into the basis.  Costs two operator applications per
// step (one inside project's residual, one in update) and reduces the
// pressure iteration count by 2.5-5x (paper Fig 4).
#pragma once

#include <functional>
#include <vector>

namespace tsem {

class SolutionProjection {
 public:
  using Apply = std::function<void(const double*, double*)>;

  /// n: vector length; lmax: maximum stored basis size (L ~ 25 typ.).
  SolutionProjection(std::size_t n, int lmax);

  /// p0 = sum_i (q_i . g) q_i — the best E-norm approximation from the
  /// basis — and r = g - E p0 assembled from the stored images (no E
  /// application needed).  Returns the 2-norm of r.
  double project(const double* g, double* p0, double* r) const;

  /// Fold in a converged solution p (with the p0 returned by project):
  /// E-orthonormalizes delta = p - p0 against the basis.  Applies E once
  /// (twice on the rare basis restart when the window is full).
  void update(const double* p, const double* p0, const Apply& apply);

  [[nodiscard]] int size() const { return static_cast<int>(q_.size()); }
  [[nodiscard]] int capacity() const { return lmax_; }
  /// Drop the basis.  The freed buffers are recycled into an internal
  /// pool, so the clear/regrow cycle at each window restart does not
  /// return to the allocator in steady state.
  void clear();

  /// Read access to the stored basis and its images (checkpointing and
  /// snapshot rollback in the resilience layer).
  [[nodiscard]] const std::vector<std::vector<double>>& basis_q() const {
    return q_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& basis_w() const {
    return w_;
  }
  /// Replace the basis with a previously exported one (restart / rollback).
  /// q and w must be parallel arrays of length-n vectors; entries beyond
  /// the window capacity are dropped.
  void restore_basis(std::vector<std::vector<double>> q,
                     std::vector<std::vector<double>> w);

 private:
  /// Orthonormalize the candidate held in delta_/image_ against the basis
  /// and append it (via pooled buffers); drops it if linearly dependent.
  void push_current();
  /// Draw a length-n buffer from the recycle pool (allocates only when
  /// the pool is dry — i.e. until the basis has been full once).
  std::vector<double> take();

  std::size_t n_;
  int lmax_;
  std::vector<std::vector<double>> q_;  // E-orthonormal solutions
  std::vector<std::vector<double>> w_;  // images E q_i
  std::vector<std::vector<double>> pool_;  // retired basis buffers
  std::vector<double> delta_, image_;      // update() candidates
};

}  // namespace tsem
