// XX^T parallel coarse-grid solver (paper §5; Tufo & Fischer [24]).
//
// The coarse problem x0 = A0^{-1} b0 is the classic scalability
// bottleneck: A0^{-1} is full, the data is distributed, and there is O(1)
// work per processor.  The XX^T method factors A0^{-1} = X X^T where
// X = (x_1 ... x_n) is a sparse A0-conjugate basis (x_i^T A0 x_j =
// delta_ij) computed with a nested-dissection elimination order, so the
// solve is a pair of fully concurrent sparse mat-vecs whose communication
// is bounded by the separator structure: 3 n^{2/3} log2 P words in 3D
// (3 n^{1/2} log2 P in 2D), versus O(n) or n log2 P for the redundant-LU
// and row-distributed-inverse alternatives (Fig 6).
//
// The factorization and solve below are numerically real; the per-level
// message counts are measured from the actual column supports and drive
// the simulated-machine timing in bench_fig6_coarse.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/csr.hpp"

namespace tsem {

class ByteWriter;
class ByteReader;

/// Nested dissection from recursive coordinate bisection.
struct NestedDissection {
  int nlevels = 0;                 ///< L: 2^L leaf subdomains
  std::vector<std::int32_t> perm;  ///< elimination order: perm[k] = dof
  std::vector<std::int32_t> leaf_of;  ///< dof -> leaf id in [0, 2^L)
};

/// Bisect dofs geometrically into 2^nlevels leaves; separators are chosen
/// as the boundary vertices of one side (adjacency from the matrix graph)
/// and ordered after their subtrees (interiors first, root separator
/// last).
NestedDissection nested_dissection(const CsrMatrix& a,
                                   const std::vector<double>& x,
                                   const std::vector<double>& y,
                                   const std::vector<double>& z, int nlevels);

class XxtSolver {
 public:
  /// a must be SPD (pin a dof first for singular Neumann operators).
  XxtSolver(const CsrMatrix& a, const NestedDissection& nd);

  /// out = A^{-1} b (exact up to roundoff: the basis spans R^n).
  void solve(const double* b, double* out) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::int64_t nnz() const { return nnz_; }
  [[nodiscard]] int nlevels() const { return nd_.nlevels; }

  /// Measured fan-in message words per tree level (level 0 = the merge at
  /// the root), maximized over the nodes of that level.  The fan-out pass
  /// mirrors it, so a P = 2^L processor solve sends
  /// 2 * sum_l max_msg[l] words on the critical path.
  [[nodiscard]] const std::vector<std::int64_t>& level_msg_words() const {
    return level_msg_;
  }
  /// Max over leaves of the number of nonzeros in the columns owned by a
  /// leaf (local mat-vec work per solve = 4 * this, two mat-vecs).
  [[nodiscard]] std::int64_t max_leaf_nnz() const { return max_leaf_nnz_; }
  /// Total communication volume (words, fan-in only) per solve.
  [[nodiscard]] std::int64_t total_msg_words() const { return total_msg_; }

  // ---- measured-schedule exposures (sim::ClusterSim, fidelity tests) ----
  /// Fan-in schedule for a machine of 2^levels ranks, levels <=
  /// nlevels(): rank r owns the dissection subtree of 2^(nlevels-levels)
  /// leaves whose ids share prefix r, so the edges deeper than `levels`
  /// are rank-internal and only the leading `levels` entries of the full
  /// per-level schedule are real messages.
  [[nodiscard]] std::vector<std::int64_t> level_msg_words_at(int levels) const;
  /// Measured nonzeros of the X columns owned by each dissection leaf
  /// (separator columns are owned round-robin across their subtree).
  [[nodiscard]] const std::vector<std::int64_t>& leaf_nnz() const {
    return leaf_nnz_;
  }
  /// Max over the 2^levels ranks of the nonzeros owned by one rank
  /// (its local mat-vec work per solve = 4 * this).
  [[nodiscard]] std::int64_t max_rank_nnz(int levels) const;
  /// Heap-indexed fan-in words per tree edge: entry u > 1 is the words
  /// carried on the edge from node u to its parent u/2 (root = 1, leaves
  /// = 2^nlevels .. 2^(nlevels+1)-1).  The raw data behind
  /// level_msg_words(); exposed so tests can recompute the schedule from
  /// the factor's nonzero structure independently.
  [[nodiscard]] const std::vector<std::int64_t>& edge_msg_words() const {
    return edge_msg_;
  }
  /// The elimination ordering and leaf ownership this factor was built on.
  [[nodiscard]] const NestedDissection& dissection() const { return nd_; }
  /// Sparse columns of X in elimination order (CSC structure).
  [[nodiscard]] const std::vector<std::int32_t>& col_ptr() const {
    return col_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& rows() const { return row_; }
  /// Column values parallel to rows(); with col_ptr()/rows() this is the
  /// full CSC factor, which the mp executed tier partitions across real
  /// ranks (mp/dist_xxt.hpp).
  [[nodiscard]] const std::vector<double>& values() const { return val_; }

  /// Append the complete factored state (dissection, CSC factor columns,
  /// measured message schedule) to w — everything the constructor
  /// computes, so a deserialized solver's solve() is bitwise identical to
  /// the cold-built one (setup cache, DESIGN.md "Setup cache").
  void serialize(ByteWriter& w) const;
  /// Rebuild a solver from r without refactoring.  Returns nullptr on a
  /// truncated or structurally inconsistent payload; payload integrity
  /// against bit rot is the enclosing cache entry's CRC.
  static std::unique_ptr<XxtSolver> deserialize(ByteReader& r);

 private:
  XxtSolver() = default;  // deserialize() fills every member itself
  int n_ = 0;
  std::int64_t nnz_ = 0;
  NestedDissection nd_;
  // Sparse columns of X in elimination order.
  std::vector<std::int32_t> col_ptr_;
  std::vector<std::int32_t> row_;
  std::vector<double> val_;
  std::vector<std::int64_t> level_msg_;
  std::vector<std::int64_t> edge_msg_;  // heap-indexed, size 2*2^nlevels
  std::vector<std::int64_t> leaf_nnz_;  // per dissection leaf
  std::int64_t max_leaf_nnz_ = 0;
  std::int64_t total_msg_ = 0;
  // Fan-in coefficients z = X^T b, sized once in the ctor so the per-step
  // coarse solves inside the Schwarz preconditioner never allocate.
  mutable std::vector<double> zscratch_;
};

}  // namespace tsem
